// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md's
// per-experiment index), plus the §6.6 algorithm-overhead measurement and
// ablation benches for the design knobs called out in DESIGN.md.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Benches use shorter traces than cmd/experiments so a full sweep stays
// fast; the per-iteration work is the complete experiment computation.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchCfg keeps full-experiment benches tractable.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, AppDuration: 30 * time.Minute, UserDuration: time.Hour}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One bench per paper artifact.

func BenchmarkTab1Profiles(b *testing.B)        { benchExperiment(b, "tab1") }
func BenchmarkTab2Profiles(b *testing.B)        { benchExperiment(b, "tab2") }
func BenchmarkFig1EnergyBreakdown(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig3PowerTimeline(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig8EnergyError(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9PerApp(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10Verizon3G(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11VerizonLTE(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkFig12FalseSwitches(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13WindowSweep(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14TwaitTrace(b *testing.B)     { benchExperiment(b, "fig14") }
func BenchmarkFig15Delays(b *testing.B)         { benchExperiment(b, "fig15") }
func BenchmarkFig16LearningCurve(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFig17Carriers(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18Signaling(b *testing.B)      { benchExperiment(b, "fig18") }
func BenchmarkTab3SessionDelays(b *testing.B)   { benchExperiment(b, "tab3") }

func BenchmarkDormancySensitivity(b *testing.B) { benchExperiment(b, "sens") }
func BenchmarkBaseStationLoad(b *testing.B)     { benchExperiment(b, "bs") }
func BenchmarkDownlinkBuffering(b *testing.B)   { benchExperiment(b, "buf") }
func BenchmarkLifetimeEstimate(b *testing.B)    { benchExperiment(b, "life") }
func BenchmarkFleetExperiment(b *testing.B)     { benchExperiment(b, "fleet") }

// BenchmarkFleetReplay measures the fleet runtime on an N-user synthetic
// cohort: "serial" pins one worker, "sharded" uses every core. The two
// produce identical aggregates (fleet's determinism guarantee), so the
// ratio of their ns/op is the parallel speedup future scale-out PRs track.
func BenchmarkFleetReplay(b *testing.B) {
	cohort := fleet.Cohort{Users: 64, Seed: 1, Duration: 30 * time.Minute, Diurnal: true}
	jobs := cohort.Jobs(power.Verizon3G, []fleet.Scheme{fleet.MakeIdleScheme()})
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"sharded", 0}, // GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := fleet.RunSummary(jobs, fleet.Options{Workers: bc.workers}, fleet.SummaryConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Jobs != int64(len(jobs)) {
					b.Fatalf("folded %d/%d jobs", sum.Jobs, len(jobs))
				}
			}
			b.ReportMetric(float64(cohort.Users)*float64(b.N)/b.Elapsed().Seconds(), "users/s")
		})
	}
}

// BenchmarkEngineReuse contrasts the pooled package-level Run against a
// caller-held Engine on the same trace (the allocation-light hot path the
// fleet workers use).
func BenchmarkEngineReuse(b *testing.B) {
	tr := workload.Verizon3GUsers()[0].Generate(1, time.Hour)
	prof := power.Verizon3G
	b.Run("pooled-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("held-engine", func(b *testing.B) {
		b.ReportAllocs()
		e := sim.NewEngine()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(tr, prof, policy.StatusQuo{}, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgorithmOverhead is the §6.6 measurement: the per-packet cost
// of running the full control module (MakeIdle decision + MakeActive
// bookkeeping) on-device. The paper measured 1.7-1.9% battery overhead;
// here the equivalent claim is that one decision costs microseconds, orders
// of magnitude below the radio energy it manages.
func BenchmarkAlgorithmOverhead(b *testing.B) {
	prof := power.Verizon3G
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(1, time.Hour)

	mi, err := policy.NewMakeIdle(prof)
	if err != nil {
		b.Fatal(err)
	}
	ctrl, err := core.New(core.Config{Profile: prof, Demote: mi, Active: policy.NewLearnedDelay()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := tr[i%len(tr)]
		// Replay the trace cyclically with a monotonically advancing clock.
		cycle := time.Duration(i/len(tr)) * (tr.Duration() + time.Minute)
		ctrl.OnPacket(cycle+p.T, p.Dir, p.Size)
	}
	b.ReportMetric(float64(len(tr)), "packets/trace")
}

// BenchmarkMakeIdleDecision isolates the §4.2 decision (the per-packet
// expected-energy maximization over the wait grid).
func BenchmarkMakeIdleDecision(b *testing.B) {
	for _, n := range []int{10, 50, 100, 400} {
		b.Run(fmt.Sprintf("window=%d", n), func(b *testing.B) {
			mi, err := policy.NewMakeIdle(power.Verizon3G, policy.WithWindowSize(n))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				mi.Observe(time.Duration(i%20) * time.Second / 4)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mi.Observe(time.Duration(i%50) * 100 * time.Millisecond)
				mi.Decide(0)
			}
		})
	}
}

// BenchmarkSimulator measures raw engine throughput (packets/second of
// simulated replay) for the status quo and MakeIdle.
func BenchmarkSimulator(b *testing.B) {
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(1, 2*time.Hour)
	prof := power.Verizon3G

	b.Run("statusquo", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(tr)), "packets/run")
	})
	b.Run("makeidle", func(b *testing.B) {
		mi, err := policy.NewMakeIdle(prof)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(tr, prof, mi, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(tr)), "packets/run")
	})
}

// Ablations (DESIGN.md §5): how the design knobs move the headline result.

// BenchmarkAblationGridSteps sweeps the wait-grid resolution of MakeIdle's
// argmax and reports the savings each setting achieves.
func BenchmarkAblationGridSteps(b *testing.B) {
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(1, time.Hour)
	prof := power.Verizon3G
	sq, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	for _, steps := range []int{5, 10, 40, 100} {
		b.Run(fmt.Sprintf("grid=%d", steps), func(b *testing.B) {
			mi, err := policy.NewMakeIdle(prof, policy.WithGridSteps(steps))
			if err != nil {
				b.Fatal(err)
			}
			var saved float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(tr, prof, mi, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				saved = 100 * (sq.TotalJ() - r.TotalJ()) / sq.TotalJ()
			}
			b.ReportMetric(saved, "savings%")
		})
	}
}

// BenchmarkAblationGamma sweeps MakeActive's delay/batching trade-off and
// reports the mean session delay each gamma produces.
func BenchmarkAblationGamma(b *testing.B) {
	u := workload.Verizon3GUsers()[3]
	tr := u.Generate(1, time.Hour)
	prof := power.Verizon3G
	for _, gamma := range []float64{0.001, 0.008, 0.05, 0.5} {
		b.Run(fmt.Sprintf("gamma=%g", gamma), func(b *testing.B) {
			var meanDelay float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mi, err := policy.NewMakeIdle(prof)
				if err != nil {
					b.Fatal(err)
				}
				r, err := sim.Run(tr, prof, mi, policy.NewLearnedDelay(policy.WithGamma(gamma)), nil)
				if err != nil {
					b.Fatal(err)
				}
				var sum time.Duration
				for _, d := range r.BurstDelays {
					sum += d
				}
				if len(r.BurstDelays) > 0 {
					meanDelay = (sum / time.Duration(len(r.BurstDelays))).Seconds()
				}
			}
			b.ReportMetric(meanDelay, "mean-delay-s")
		})
	}
}

// BenchmarkAblationExpectation compares the default strategy expectation
// against the paper's literal E[E_wait_switch] formula (DESIGN.md §5,
// decision 2), reporting the savings and FP-driving switch ratio of each.
func BenchmarkAblationExpectation(b *testing.B) {
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(1, time.Hour)
	prof := power.Verizon3G
	sq, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		opts []policy.MakeIdleOption
	}{
		{"strategy", nil},
		{"paper-literal", []policy.MakeIdleOption{policy.WithPaperExpectation()}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			mi, err := policy.NewMakeIdle(prof, v.opts...)
			if err != nil {
				b.Fatal(err)
			}
			var saved, ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(tr, prof, mi, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				saved = 100 * (sq.TotalJ() - r.TotalJ()) / sq.TotalJ()
				ratio = float64(r.Promotions) / float64(sq.Promotions)
			}
			b.ReportMetric(saved, "savings%")
			b.ReportMetric(ratio, "switch-ratio")
		})
	}
}

// BenchmarkThreshold measures the closed-form t_threshold computation (it
// sits on MakeIdle's constructor path).
func BenchmarkThreshold(b *testing.B) {
	p := power.ATTHSPAPlus
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = energy.Threshold(&p)
	}
}

// benchPacketSource synthesizes n packets on demand: 10-packet bursts at
// 25 ms spacing separated by 8 s idle gaps — enough structure to exercise
// burst segmentation and tail accounting. It is the parametric workload
// for the stream-vs-slice memory benchmark (a trace.Source, O(1) state).
type benchPacketSource struct {
	n, i int
	t    time.Duration
}

func (s *benchPacketSource) Next() (trace.Packet, bool, error) {
	if s.i >= s.n {
		return trace.Packet{}, false, nil
	}
	if s.i > 0 {
		if s.i%10 == 0 {
			s.t += 8 * time.Second
		} else {
			s.t += 25 * time.Millisecond
		}
	}
	dir := trace.In
	if s.i%4 == 0 {
		dir = trace.Out
	}
	s.i++
	return trace.Packet{T: s.t, Dir: dir, Size: 900}, true, nil
}

// BenchmarkReplayStreamVsSlice is the O(1)-memory claim of the streaming
// data path, made measurable: the "slice" variant materializes the trace
// and replays it (B/op grows with n); the "stream" variant pulls the same
// packets through sim.RunSource (B/op and allocs/op stay flat from 10k to
// 1M packets — the engine's burst window is the only buffer). Run with
// -benchmem.
func BenchmarkReplayStreamVsSlice(b *testing.B) {
	prof := power.Verizon3G
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("slice/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			e := sim.NewEngine()
			for i := 0; i < b.N; i++ {
				tr, err := trace.Collect(&benchPacketSource{n: n})
				if err != nil {
					b.Fatal(err)
				}
				res, err := e.Run(tr, prof, policy.StatusQuo{}, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Packets != n {
					b.Fatalf("replayed %d packets, want %d", res.Packets, n)
				}
			}
		})
		b.Run(fmt.Sprintf("stream/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			e := sim.NewEngine()
			for i := 0; i < b.N; i++ {
				res, err := e.RunSource(&benchPacketSource{n: n}, prof, policy.StatusQuo{}, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Packets != n {
					b.Fatalf("replayed %d packets, want %d", res.Packets, n)
				}
			}
		})
	}
}

// BenchmarkWorkloadStream measures lazy generator emission against
// materialized generation for a day-scale diurnal user: the streamed form
// allocates per burst, not per trace.
func BenchmarkWorkloadStream(b *testing.B) {
	u := workload.DayUser(workload.Verizon3GUsers()[0])
	const day = 24 * time.Hour
	b.Run("generate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr := u.Generate(1, day); len(tr) == 0 {
				b.Fatal("empty trace")
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := u.Stream(1, day)
			n := 0
			for {
				_, ok, err := src.Next()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
				n++
			}
			if n == 0 {
				b.Fatal("empty stream")
			}
		}
	})
}

// BenchmarkTraceCodec measures binary trace round-trip throughput.
func BenchmarkTraceCodec(b *testing.B) {
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(1, time.Hour)
	b.Run("write", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var sink countingWriter
			if err := trace.WriteBinary(&sink, tr); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(sink))
		}
	})
}

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}
