package repro

import (
	"testing"
	"time"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr := GenerateApp(Email(), 1, time.Hour)
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	sq, err := Simulate(tr, Verizon3G(), StatusQuo(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := NewMakeIdle(Verizon3G())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, Verizon3G(), mi, NewLearnedDelay(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if SavingsPercent(sq, res) <= 0 {
		t.Fatalf("no savings through the facade: %v vs %v", sq.TotalJ(), res.TotalJ())
	}
}

func TestFacadeProfilesAndApps(t *testing.T) {
	if len(Carriers()) != 4 {
		t.Fatalf("carriers = %d", len(Carriers()))
	}
	if len(Apps()) != 7 {
		t.Fatalf("apps = %d", len(Apps()))
	}
	if len(Verizon3GUsers()) != 6 || len(VerizonLTEUsers()) != 3 {
		t.Fatal("user cohort sizes wrong")
	}
	if Threshold(VerizonLTE()) <= 0 {
		t.Fatal("threshold not positive")
	}
}

func TestFacadeBaselines(t *testing.T) {
	tr := GenerateApp(IM(), 2, 30*time.Minute)
	for _, d := range []DemotePolicy{
		NewFourPointFive(), NewPercentileIAT(tr, 0.95), NewOracle(TMobile3G()),
	} {
		if _, err := Simulate(tr, TMobile3G(), d, nil, nil); err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
	}
	fd := NewFixedDelay(tr, TMobile3G(), time.Second)
	if fd.Bound <= 0 {
		t.Fatal("fixed delay bound not positive")
	}
	if Delays([]time.Duration{time.Second}).Count != 1 {
		t.Fatal("Delays facade broken")
	}
}
