package sim

import (
	"math"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// prof is the hand-computable test profile: Pt1 = 1 W over t1 = 4 s,
// Pt2 = 0.5 W over t2 = 8 s, promotion 1 J (1 W for 1 s), dormancy 0.5 J,
// Eswitch = 1.5 J, threshold = 1.5 s, full tail = 8 J.
func prof() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func run(t *testing.T, tr trace.Trace, d policy.DemotePolicy, a policy.ActivePolicy, opts *Options) *Result {
	t.Helper()
	r, err := Run(tr, prof(), d, a, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, power.Profile{}, policy.StatusQuo{}, nil, nil); err == nil {
		t.Fatal("invalid profile accepted")
	}
	if _, err := Run(nil, prof(), nil, nil, nil); err == nil {
		t.Fatal("nil demote policy accepted")
	}
	bad := trace.Trace{{T: sec(2)}, {T: sec(1)}}
	if _, err := Run(bad, prof(), policy.StatusQuo{}, nil, nil); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	r := run(t, trace.Trace{}, policy.StatusQuo{}, nil, nil)
	if r.TotalJ() != 0 || r.Promotions != 0 || r.Packets != 0 {
		t.Fatalf("empty trace result: %+v", r)
	}
}

func TestSinglePacket(t *testing.T) {
	tr := trace.Trace{{T: 0, Dir: trace.In, Size: 0}}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	// Promotion (1 J) + full trailing tail (8 J) + trailing demotion (0.5 J).
	want := 1.0 + 8.0 + 0.5
	if math.Abs(r.TotalJ()-want) > 1e-9 {
		t.Fatalf("TotalJ = %v, want %v", r.TotalJ(), want)
	}
	if r.Promotions != 1 || r.Demotions != 1 {
		t.Fatalf("promotions=%d demotions=%d", r.Promotions, r.Demotions)
	}
}

func TestStatusQuoHandComputed(t *testing.T) {
	// Two zero-size packets 30 s apart.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(30), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	// promote(1) + gap: tail 8 J, demote 0.5, promote 1
	// + trailing tail 8 J + trailing demote 0.5.
	if math.Abs(r.Breakdown.T1TailJ-8.0) > 1e-9 { // 4 J per full tail x2
		t.Fatalf("T1TailJ = %v, want 8", r.Breakdown.T1TailJ)
	}
	if math.Abs(r.Breakdown.T2TailJ-8.0) > 1e-9 {
		t.Fatalf("T2TailJ = %v, want 8", r.Breakdown.T2TailJ)
	}
	if math.Abs(r.Breakdown.SwitchJ-3.0) > 1e-9 {
		t.Fatalf("SwitchJ = %v, want 3", r.Breakdown.SwitchJ)
	}
	if math.Abs(r.TotalJ()-19.0) > 1e-9 {
		t.Fatalf("TotalJ = %v, want 19", r.TotalJ())
	}
	if r.Promotions != 2 || r.Demotions != 2 {
		t.Fatalf("promotions=%d demotions=%d, want 2/2", r.Promotions, r.Demotions)
	}
}

func TestStatusQuoShortGapStaysUp(t *testing.T) {
	// Gap of 6 s: within the 12 s tail -> no demotion, tail energy
	// 4 s @ 1 W + 2 s @ 0.5 W = 5 J for the gap.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(6), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	// promote(1) + gap tail 5 + trailing tail 8 + trailing demote 0.5.
	want := 1 + 5 + 8 + 0.5
	if math.Abs(r.TotalJ()-want) > 1e-9 {
		t.Fatalf("TotalJ = %v, want %v", r.TotalJ(), want)
	}
	if r.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", r.Promotions)
	}
}

func TestOracleHandComputed(t *testing.T) {
	p := prof()
	th := energy.Threshold(&p) // 1.5 s
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(30), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.NewOracle(th), nil, nil)
	// promote(1) + immediate demote(0.5) + promote(1) + trailing
	// immediate demote(0.5). No tail energy at all.
	if math.Abs(r.TotalJ()-3.0) > 1e-9 {
		t.Fatalf("Oracle TotalJ = %v, want 3", r.TotalJ())
	}
	if r.Breakdown.T1TailJ != 0 || r.Breakdown.T2TailJ != 0 {
		t.Fatalf("Oracle should pay no tail: %+v", r.Breakdown)
	}
}

func TestOracleKeepsRadioUpOnShortGaps(t *testing.T) {
	p := prof()
	th := energy.Threshold(&p)
	// Gap of 1 s < threshold: oracle stays up, pays 1 J tail.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(1), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.NewOracle(th), nil, &Options{RecordDecisions: true})
	if len(r.Decisions) != 1 {
		t.Fatalf("decisions = %d", len(r.Decisions))
	}
	if r.Decisions[0].Demoted {
		t.Fatal("oracle demoted on a short gap")
	}
	// promote 1 + gap tail 1 + trailing demote 0.5 (trailing: oracle sees
	// end-of-trace as an infinite gap and demotes immediately).
	want := 1 + 1 + 0.5
	if math.Abs(r.TotalJ()-want) > 1e-9 {
		t.Fatalf("TotalJ = %v, want %v", r.TotalJ(), want)
	}
}

func TestDataEnergyCharged(t *testing.T) {
	// One uplink packet of 125000 B at 1 Mbps = 1 s at 2 W = 2 J.
	tr := trace.Trace{{T: 0, Dir: trace.Out, Size: 125000}}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	if math.Abs(r.Breakdown.DataJ-2.0) > 1e-9 {
		t.Fatalf("DataJ = %v, want 2", r.Breakdown.DataJ)
	}
}

func TestFixedTailDemotesEarly(t *testing.T) {
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(30), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, &policy.FixedTail{Wait: sec(2)}, nil, nil)
	// promote 1 + gap: tail(2s @1W)=2 + demote 0.5 + promote 1
	// + trailing tail 2 + trailing demote 0.5 = 7.
	if math.Abs(r.TotalJ()-7.0) > 1e-9 {
		t.Fatalf("TotalJ = %v, want 7", r.TotalJ())
	}
}

func TestPromotionDelayAccounting(t *testing.T) {
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(30), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	if r.PromotedPackets != 2 {
		t.Fatalf("PromotedPackets = %d, want 2", r.PromotedPackets)
	}
	if r.PromotionDelayTotal != 2*time.Second {
		t.Fatalf("PromotionDelayTotal = %v, want 2s", r.PromotionDelayTotal)
	}
}

func TestDecisionsRecorded(t *testing.T) {
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(5), Dir: trace.In, Size: 0},
		{T: sec(40), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.StatusQuo{}, nil, &Options{RecordDecisions: true})
	if len(r.Decisions) != 2 {
		t.Fatalf("decisions = %d, want 2", len(r.Decisions))
	}
	if r.Decisions[0].Gap != sec(5) || r.Decisions[0].Demoted {
		t.Fatalf("decision 0: %+v", r.Decisions[0])
	}
	if r.Decisions[1].Gap != sec(35) || !r.Decisions[1].Demoted {
		t.Fatalf("decision 1: %+v", r.Decisions[1])
	}
	// Without the option nothing is recorded.
	r2 := run(t, tr, policy.StatusQuo{}, nil, nil)
	if r2.Decisions != nil {
		t.Fatal("decisions recorded without option")
	}
}

func TestBatchingMergesBursts(t *testing.T) {
	// Three single-packet bursts at 0, 3, 6 s; fixed 7 s batching window.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 100},
		{T: sec(3), Dir: trace.In, Size: 100},
		{T: sec(6), Dir: trace.In, Size: 100},
	}
	demote := &policy.FixedTail{Wait: sec(1)}
	active := &policy.FixedDelay{Bound: sec(7)}
	r := run(t, tr, demote, active, &Options{RecordEpisodes: true})
	if r.Promotions != 1 {
		t.Fatalf("batched promotions = %d, want 1", r.Promotions)
	}
	if r.Episodes != 1 {
		t.Fatalf("episodes = %d, want 1", r.Episodes)
	}
	if len(r.EpisodeLog) != 1 || r.EpisodeLog[0].Buffered != 3 {
		t.Fatalf("episode log: %+v", r.EpisodeLog)
	}
	wantDelays := []time.Duration{sec(7), sec(4), sec(1)}
	if len(r.BurstDelays) != 3 {
		t.Fatalf("burst delays: %v", r.BurstDelays)
	}
	for i, w := range wantDelays {
		if r.BurstDelays[i] != w {
			t.Errorf("delay %d = %v, want %v", i, r.BurstDelays[i], w)
		}
	}

	// Without batching, each burst promotes separately (gaps 3 s > 1 s wait).
	r2 := run(t, tr, demote, nil, nil)
	if r2.Promotions != 3 {
		t.Fatalf("unbatched promotions = %d, want 3", r2.Promotions)
	}
}

func TestBatchingSkipsWhenRadioActive(t *testing.T) {
	// Bursts 2 s apart with a 3 s dormancy wait: radio never goes idle, so
	// no batching episodes happen after the first.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 100},
		{T: sec(2), Dir: trace.In, Size: 100},
		{T: sec(4), Dir: trace.In, Size: 100},
	}
	demote := &policy.FixedTail{Wait: sec(3)}
	active := &policy.FixedDelay{Bound: 0} // zero window: no shifting
	r := run(t, tr, demote, active, nil)
	if r.Episodes != 1 {
		t.Fatalf("episodes = %d, want only the initial one", r.Episodes)
	}
	if r.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", r.Promotions)
	}
}

func TestBatchingPreservesIntraBurstSpacing(t *testing.T) {
	// A two-packet burst delayed by a window keeps its 100 ms spacing:
	// total duration ends at release + 0.1 s.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 100},
		{T: sec(0.1), Dir: trace.In, Size: 100},
	}
	active := &policy.FixedDelay{Bound: sec(5)}
	r := run(t, tr, policy.StatusQuo{}, active, nil)
	if got, want := r.Duration, sec(5.1); got < want-time.Millisecond || got > want+time.Millisecond {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
}

func TestMakeIdleSavesEnergyOnRealisticWorkload(t *testing.T) {
	tr := workload.Generate(workload.Email(), 11, 2*time.Hour)
	p := prof()

	sq := run(t, tr, policy.StatusQuo{}, nil, nil)
	mi, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	miRes := run(t, tr, mi, nil, nil)
	or := run(t, tr, policy.NewOracle(energy.Threshold(&p)), nil, nil)

	if miRes.TotalJ() >= sq.TotalJ() {
		t.Fatalf("MakeIdle (%v J) did not beat status quo (%v J)", miRes.TotalJ(), sq.TotalJ())
	}
	if or.TotalJ() >= sq.TotalJ() {
		t.Fatalf("Oracle (%v J) did not beat status quo (%v J)", or.TotalJ(), sq.TotalJ())
	}
	// MakeIdle should land in the same ballpark as the Oracle (the paper
	// finds it consistently close); allow generous slack.
	if miRes.TotalJ() > or.TotalJ()*2.5 {
		t.Fatalf("MakeIdle (%v J) far from Oracle (%v J)", miRes.TotalJ(), or.TotalJ())
	}
}

func TestMakeActiveReducesSwitchesVersusMakeIdleAlone(t *testing.T) {
	u := workload.User{Name: "u", Apps: []workload.AppModel{workload.IM(), workload.Email(), workload.News()}}
	tr := u.Generate(3, 2*time.Hour)
	p := prof()

	mi1, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	alone := run(t, tr, mi1, nil, nil)

	mi2, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	batched := run(t, tr, mi2, policy.NewLearnedDelay(), nil)

	if batched.Promotions >= alone.Promotions {
		t.Fatalf("MakeActive did not reduce switches: %d -> %d", alone.Promotions, batched.Promotions)
	}
	if len(batched.BurstDelays) == 0 {
		t.Fatal("no burst delays recorded under MakeActive")
	}
}

func TestEnergyNonNegativeInvariants(t *testing.T) {
	for _, app := range workload.Apps() {
		tr := workload.Generate(app, 5, time.Hour)
		for _, d := range []policy.DemotePolicy{policy.StatusQuo{}, policy.NewFourPointFive()} {
			r := run(t, tr, d, nil, nil)
			b := r.Breakdown
			if b.DataJ < 0 || b.T1TailJ < 0 || b.T2TailJ < 0 || b.SwitchJ < 0 {
				t.Fatalf("%s/%s: negative energy component: %+v", app.Name(), d.Name(), b)
			}
			if r.Promotions < r.Demotions-1 || r.Promotions > r.Demotions+1 {
				t.Fatalf("%s/%s: promotions %d vs demotions %d implausible",
					app.Name(), d.Name(), r.Promotions, r.Demotions)
			}
		}
	}
}

func TestStatusQuoEnergyMatchesGapJSum(t *testing.T) {
	// For a zero-size trace, the engine's status-quo accounting must equal
	// the closed-form paper model: promote + sum over gaps of E(t) +
	// trailing tail + trailing demotion.
	p := prof()
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 0},
		{T: sec(2), Dir: trace.In, Size: 0},
		{T: sec(9), Dir: trace.In, Size: 0},
		{T: sec(60), Dir: trace.In, Size: 0},
		{T: sec(61), Dir: trace.In, Size: 0},
	}
	r := run(t, tr, policy.StatusQuo{}, nil, nil)
	want := p.PromotionJ() // initial promotion
	for _, g := range tr.InterArrivals() {
		want += energy.GapJ(&p, g)
	}
	want += energy.TailJ(&p, p.Tail()) + p.DormancyJ() // trailing
	// GapJ charges Eswitch = DormancyJ + PromotionJ on long gaps; the
	// engine charges the same split. Compare totals.
	if math.Abs(r.TotalJ()-want) > 1e-9 {
		t.Fatalf("engine %v J vs closed form %v J", r.TotalJ(), want)
	}
}

func TestRunResetsPolicies(t *testing.T) {
	p := prof()
	mi, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Generate(workload.Game(), 1, time.Hour)
	a := run(t, tr, mi, nil, nil)
	b := run(t, tr, mi, nil, nil) // same policy object reused
	if math.Abs(a.TotalJ()-b.TotalJ()) > 1e-9 {
		t.Fatalf("second run differs: %v vs %v (Reset not applied?)", a.TotalJ(), b.TotalJ())
	}
}

func TestResultLabels(t *testing.T) {
	tr := trace.Trace{{T: 0, Dir: trace.In, Size: 1}}
	r := run(t, tr, policy.StatusQuo{}, policy.NoBatching{}, nil)
	if r.Policy != "StatusQuo" || r.Active != "NoBatching" || r.Profile != "test" {
		t.Fatalf("labels: %+v", r)
	}
}
