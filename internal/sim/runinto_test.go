package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

// TestRunIntoMatchesRun is the reuse contract: RunInto writing over a
// dirty, previously-used Result must leave it deeply equal to what a
// fresh Run returns — across traces of different shapes and durations, so
// stale slice contents from a longer earlier run can never leak into a
// shorter later one.
func TestRunIntoMatchesRun(t *testing.T) {
	e := NewEngine()
	var res Result
	opts := &Options{RecordDecisions: true, RecordEpisodes: true}
	for i, tr := range []workloadTrace{
		{workload.Email(), 11, 2 * time.Hour},
		{workload.IM(), 3, 20 * time.Minute},
		{workload.News(), 7, time.Hour},
		{workload.Email(), 5, 5 * time.Minute},
	} {
		trace := workload.Generate(tr.app, tr.seed, tr.dur)
		want, err := Run(trace, prof(), &policy.FixedTail{Wait: 2 * time.Second}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RunInto(&res, trace, prof(), &policy.FixedTail{Wait: 2 * time.Second}, nil, opts); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&res, want) {
			t.Fatalf("case %d: RunInto result differs from Run", i)
		}
	}
}

type workloadTrace struct {
	app  workload.AppModel
	seed int64
	dur  time.Duration
}
