package sim

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// burstWindow is the engine's bounded burst-segmentation lookahead buffer:
// it pulls packets from a trace.Source one at a time, segments them into
// bursts incrementally (a burst ends at the first inter-arrival beyond the
// gap), and exposes a small window of upcoming bursts to the replay loop.
//
// The window is what bounds streaming replay memory. Without batching the
// engine only ever holds the burst in flight; with MakeActive it holds the
// bursts whose starts fall inside the current batching window plus the
// active policy's learning horizon (MaxDelay), and one burst beyond — the
// one whose first packet proved the lookahead bound was passed. Memory is
// therefore O(packets per burst x bursts per batching horizon), a function
// of traffic shape and policy bounds, never of trace length.
//
// Packets are validated as they are pulled (the same invariants
// trace.Validate enforces on slices), so both replay paths reject exactly
// the traces the slice API rejects.
type burstWindow struct {
	src trace.Source
	gap time.Duration

	peek    trace.Packet // first packet of the burst after the window
	have    bool
	srcDone bool

	lastT time.Duration // stream-wide monotonicity check
	idx   int           // packets pulled, for error positions

	bursts []trace.Burst // window entries [head, len)
	head   int
	free   []trace.Trace // recycled packet buffers
}

// reset points the window at a new source, recycling every buffer.
func (bw *burstWindow) reset(src trace.Source, gap time.Duration) {
	for i := bw.head; i < len(bw.bursts); i++ {
		bw.free = append(bw.free, bw.bursts[i].Packets[:0])
		bw.bursts[i] = trace.Burst{}
	}
	for i := 0; i < bw.head; i++ {
		bw.bursts[i] = trace.Burst{}
	}
	bw.src, bw.gap = src, gap
	bw.bursts, bw.head = bw.bursts[:0], 0
	bw.peek, bw.have, bw.srcDone = trace.Packet{}, false, false
	bw.lastT, bw.idx = 0, 0
}

// pull reads and validates one packet from the source.
func (bw *burstWindow) pull() (trace.Packet, bool, error) {
	if bw.srcDone {
		return trace.Packet{}, false, nil
	}
	p, ok, err := bw.src.Next()
	if err != nil {
		return trace.Packet{}, false, err
	}
	if !ok {
		bw.srcDone = true
		return trace.Packet{}, false, nil
	}
	if p.T < 0 {
		return trace.Packet{}, false, fmt.Errorf("%w: packet %d at %v", trace.ErrNegativeTime, bw.idx, p.T)
	}
	if p.T < bw.lastT {
		return trace.Packet{}, false, fmt.Errorf("%w: packet %d at %v after %v", trace.ErrUnsorted, bw.idx, p.T, bw.lastT)
	}
	if !p.Dir.Valid() {
		return trace.Packet{}, false, fmt.Errorf("%w: packet %d", trace.ErrBadDirection, bw.idx)
	}
	if p.Size < 0 {
		return trace.Packet{}, false, fmt.Errorf("%w: packet %d", trace.ErrNegativeSize, bw.idx)
	}
	bw.lastT = p.T
	bw.idx++
	return p, true, nil
}

// fill appends the next complete burst to the window; ok=false at end of
// stream.
func (bw *burstWindow) fill() (bool, error) {
	var pkts trace.Trace
	if n := len(bw.free); n > 0 {
		pkts, bw.free = bw.free[n-1][:0], bw.free[:n-1]
	}
	var first trace.Packet
	if bw.have {
		first, bw.have = bw.peek, false
	} else {
		p, ok, err := bw.pull()
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		first = p
	}
	pkts = append(pkts, first)
	last := first.T
	for {
		p, ok, err := bw.pull()
		if err != nil {
			return false, err
		}
		if !ok {
			break
		}
		if p.T-last > bw.gap {
			bw.peek, bw.have = p, true
			break
		}
		pkts = append(pkts, p)
		last = p.T
	}
	bw.bursts = append(bw.bursts, trace.Burst{Start: pkts[0].T, End: last, Packets: pkts})
	return true, nil
}

// burst returns the i-th unconsumed burst, loading lazily; ok=false when
// the stream ends before burst i exists.
func (bw *burstWindow) burst(i int) (trace.Burst, bool, error) {
	for bw.head+i >= len(bw.bursts) {
		ok, err := bw.fill()
		if err != nil {
			return trace.Burst{}, false, err
		}
		if !ok {
			return trace.Burst{}, false, nil
		}
	}
	return bw.bursts[bw.head+i], true, nil
}

// drop consumes the window's first n bursts, recycling their buffers.
func (bw *burstWindow) drop(n int) {
	for i := 0; i < n; i++ {
		b := bw.bursts[bw.head]
		bw.free = append(bw.free, b.Packets[:0])
		bw.bursts[bw.head] = trace.Burst{}
		bw.head++
	}
	if bw.head == len(bw.bursts) {
		bw.bursts, bw.head = bw.bursts[:0], 0
	} else if bw.head >= 64 && 2*bw.head >= len(bw.bursts) {
		m := copy(bw.bursts, bw.bursts[bw.head:])
		for i := m; i < len(bw.bursts); i++ {
			bw.bursts[i] = trace.Burst{}
		}
		bw.bursts, bw.head = bw.bursts[:m], 0
	}
}
