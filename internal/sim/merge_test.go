package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/trace"
)

// mergeInput lays out n time-sorted runs consecutively in one trace, with
// deliberately colliding timestamps across runs so stability is observable:
// packets carry their append position in Size, and equal-timestamp packets
// must come out in append order.
func mergeInput(r *rand.Rand, n int) (trace.Trace, []int) {
	var buf trace.Trace
	var runs []int
	for i := 0; i < n; i++ {
		runs = append(runs, len(buf))
		t := time.Duration(r.Intn(5)) * time.Millisecond
		for j, m := 0, r.Intn(6); j < m; j++ {
			buf = append(buf, trace.Packet{T: t, Dir: trace.In, Size: len(buf)})
			t += time.Duration(r.Intn(3)) * time.Millisecond
		}
	}
	return buf, runs
}

// TestMergeRunsMatchesStableSort checks the bottom-up pairwise merge against
// the sort.SliceStable ordering it replaced — by (timestamp, append
// position) — across run counts 1..8, including empty runs and heavy
// timestamp collisions.
func TestMergeRunsMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	e := NewEngine()
	for n := 1; n <= 8; n++ {
		for rep := 0; rep < 50; rep++ {
			base, offsets := mergeInput(r, n)
			want := append(trace.Trace(nil), base...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].T < want[j].T })

			buf := append(e.merged[:0], base...)
			runs := append(e.runs[:0], offsets...)
			got := e.mergeRuns(buf, runs)
			e.merged = got
			if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(want, got)) {
				t.Fatalf("n=%d rep=%d: merge diverged from stable sort\n got %v\nwant %v", n, rep, got, want)
			}
		}
	}
}

// TestMergeRunsSteadyStateAllocs pins the point of the in-place merge: after
// the ping-pong scratch buffers have grown to the episode's size, merging
// allocates nothing. This is the regression guard for reintroducing the
// per-episode sort.SliceStable closure (or any other hidden allocation) in
// the batching hot path.
func TestMergeRunsSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	base, offsets := mergeInput(r, 5)
	e := NewEngine()
	step := func() {
		buf := append(e.merged[:0], base...)
		runs := append(e.runs[:0], offsets...)
		e.merged = e.mergeRuns(buf, runs)
	}
	// Two warm-up merges grow both sides of the ping-pong pair.
	step()
	step()
	if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
		t.Fatalf("steady-state merge allocates: %.1f allocs/episode, want 0", allocs)
	}
}
