package sim

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/workload"
)

// TestEngineReuseMatchesFreshRuns replays the same traces through one
// long-lived Engine and through the package-level Run and requires
// bit-identical accounting: buffer reuse must not leak state across runs.
func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	prof := power.Verizon3G
	e := NewEngine()
	for i, u := range workload.Verizon3GUsers()[:3] {
		tr := u.Generate(int64(100+i), 30*time.Minute)
		for _, withActive := range []bool{false, true} {
			mk := func() policy.DemotePolicy {
				mi, err := policy.NewMakeIdle(prof)
				if err != nil {
					t.Fatal(err)
				}
				return mi
			}
			var a1, a2 policy.ActivePolicy
			if withActive {
				a1, a2 = policy.NewLearnedDelay(), policy.NewLearnedDelay()
			}
			got, err := e.Run(tr, prof, mk(), a1, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(tr, prof, mk(), a2, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Breakdown != want.Breakdown || got.Promotions != want.Promotions ||
				got.Demotions != want.Demotions || got.Episodes != want.Episodes ||
				got.Packets != want.Packets || got.Duration != want.Duration {
				t.Fatalf("user %d active=%v: reused engine %+v differs from fresh run %+v",
					i, withActive, got, want)
			}
			if len(got.BurstDelays) != len(want.BurstDelays) {
				t.Fatalf("burst delay counts differ: %d vs %d",
					len(got.BurstDelays), len(want.BurstDelays))
			}
		}
	}
}

// TestEngineSteadyStateAllocs checks the engine's replay loop does not
// allocate per run beyond the Result it hands back.
func TestEngineSteadyStateAllocs(t *testing.T) {
	prof := power.Verizon3G
	tr := workload.Verizon3GUsers()[0].Generate(1, 30*time.Minute)
	e := NewEngine()
	if _, err := e.Run(tr, prof, policy.StatusQuo{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := e.Run(tr, prof, policy.StatusQuo{}, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	// One Result plus the bursts view of the trace; anything beyond a small
	// constant means a reuse regression on the hot path.
	if allocs > 25 {
		t.Fatalf("engine allocates %v objects per run; scratch reuse regressed", allocs)
	}
}
