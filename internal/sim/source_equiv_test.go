package sim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// These tests enforce the refactor's determinism invariant at the engine
// level: replaying a workload materialized (Run on the generated slice)
// and streamed (RunSource on the lazy generator source) with the same seed
// must produce identical Results — every field, including the recorded
// decision and episode logs, bit for bit.

func policyPairs(t *testing.T, prof power.Profile) []struct {
	name   string
	demote func() policy.DemotePolicy
	active func() policy.ActivePolicy
} {
	t.Helper()
	mkIdle := func() policy.DemotePolicy {
		mi, err := policy.NewMakeIdle(prof)
		if err != nil {
			t.Fatal(err)
		}
		return mi
	}
	return []struct {
		name   string
		demote func() policy.DemotePolicy
		active func() policy.ActivePolicy
	}{
		{"statusquo", func() policy.DemotePolicy { return policy.StatusQuo{} }, func() policy.ActivePolicy { return nil }},
		{"makeidle", mkIdle, func() policy.ActivePolicy { return nil }},
		{"makeidle+learn", mkIdle, func() policy.ActivePolicy { return policy.NewLearnedDelay() }},
	}
}

func assertSameResult(t *testing.T, label string, slice, streamed *Result) {
	t.Helper()
	if !reflect.DeepEqual(slice, streamed) {
		t.Fatalf("%s: streamed replay differs from materialized:\nslice:  %+v\nstream: %+v", label, slice, streamed)
	}
}

// TestSourceSliceEquivalenceApps replays every application generator both
// ways under every policy pair.
func TestSourceSliceEquivalenceApps(t *testing.T) {
	prof := power.Verizon3G
	opts := &Options{RecordDecisions: true, RecordEpisodes: true}
	for _, app := range workload.Apps() {
		sm := app.(workload.StreamModel)
		for _, pp := range policyPairs(t, prof) {
			tr := workload.Generate(app, 21, time.Hour)
			slice, err := Run(tr, prof, pp.demote(), pp.active(), opts)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunSource(workload.Stream(sm, 21, time.Hour), prof, pp.demote(), pp.active(), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, app.Name()+"/"+pp.name, slice, streamed)
		}
	}
}

// TestSourceSliceEquivalenceUsers covers the multi-app merge and the
// diurnal day-mask on user mixes.
func TestSourceSliceEquivalenceUsers(t *testing.T) {
	prof := power.VerizonLTE
	opts := &Options{}
	users := workload.Verizon3GUsers()
	cases := []workload.User{users[0], users[4], workload.DayUser(users[1])}
	for _, u := range cases {
		for _, pp := range policyPairs(t, prof) {
			d := 3 * time.Hour
			slice, err := Run(u.Generate(77, d), prof, pp.demote(), pp.active(), opts)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := RunSource(u.Stream(77, d), prof, pp.demote(), pp.active(), opts)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, u.Name+"/"+pp.name, slice, streamed)
		}
	}
}

// TestRunSourceValidatesInline: streaming replay rejects exactly the
// traces the slice API rejects, with the same sentinel errors.
func TestRunSourceValidatesInline(t *testing.T) {
	prof := power.Verizon3G
	bad := map[string]trace.Trace{
		"unsorted":      {{T: time.Second, Dir: trace.In, Size: 1}, {T: 0, Dir: trace.In, Size: 1}},
		"negative-size": {{T: 0, Dir: trace.In, Size: -1}},
		"bad-direction": {{T: 0, Dir: trace.Direction(9), Size: 1}},
	}
	for name, tr := range bad {
		if _, err := RunSource(tr.Source(), prof, policy.StatusQuo{}, nil, nil); err == nil {
			t.Errorf("%s: streamed replay accepted invalid trace", name)
		}
		if _, err := Run(tr, prof, policy.StatusQuo{}, nil, nil); err == nil {
			t.Errorf("%s: slice replay accepted invalid trace", name)
		}
	}
}

// TestEngineDropsSourceAfterRunSource: a pooled/idle engine must not pin
// the caller's source (and through it the trace or generator state) after
// a run completes — Reset nils the window's source reference.
func TestEngineDropsSourceAfterRunSource(t *testing.T) {
	e := NewEngine()
	tr := trace.Trace{{T: 0, Dir: trace.In, Size: 1}, {T: time.Second, Dir: trace.In, Size: 1}}
	if _, err := e.RunSource(tr.Source(), power.Verizon3G, policy.StatusQuo{}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if e.window.src != nil {
		t.Fatal("window.src still set after successful RunSource")
	}
}

// TestRunSourceEmpty: an empty source yields the same empty Result as an
// empty trace.
func TestRunSourceEmpty(t *testing.T) {
	prof := power.Verizon3G
	slice, err := Run(nil, prof, policy.StatusQuo{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunSource(trace.Trace{}.Source(), prof, policy.StatusQuo{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "empty", slice, streamed)
}
