// Package sim is the trace-driven simulation engine (§6.1): it replays a
// packet trace against a carrier power profile under a pair of control
// policies — a DemotePolicy (MakeIdle or a baseline) and an optional
// ActivePolicy (MakeActive) — and accounts energy, state switches, packet
// promotion delays and session batching delays.
//
// # Model
//
// Data energy: each packet is charged its transmission time at the
// direction's bulk power (Table 1), per the paper's energy-per-second model.
//
// Tail energy: after each packet the demote policy picks a dormancy wait w.
// If the next packet arrives within min(w, t1+t2), the radio pays tail power
// (T1 power, then T2 power) for the gap and stays connected. Otherwise it
// pays tail power until the demotion point, a fast-dormancy demotion, an
// Idle stretch, and a promotion when the next packet arrives (which also
// delays that packet by the promotion latency). The status quo is the
// special case w = t1+t2, with its demotion charged the same way — exactly
// how the paper's E(t) charges Eswitch on gaps longer than the tail.
//
// Batching: when a burst arrives and finds the radio Idle, the active
// policy may open a batching window of length D. All bursts arriving inside
// the window are shifted to its end and released together, sharing a single
// promotion (§5). Sessions already begun are never stretched: each burst
// keeps its internal packet spacing.
//
// Demote decisions are made lazily, at the first event that needs them,
// which lets clairvoyant policies (the Oracle) receive the exact upcoming
// gap via policy.GapLookahead without a second pass.
//
// # Streaming replay
//
// The engine pulls packets from a trace.Source through a bounded
// burst-segmentation lookahead window (see burstWindow), so replay memory
// is a function of burst structure and the active policy's horizon — never
// of trace length. The slice API (Run) adapts the trace to a source and
// uses the same path, which is what makes materialized and streamed
// replays of identical packets byte-identical in every Result field.
package sim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
)

// Options tunes a simulation run. The zero value (or nil) gives defaults.
type Options struct {
	// BurstGap segments the trace into sessions for MakeActive (default
	// 1 s). Gaps larger than this start a new burst.
	BurstGap time.Duration
	// RecordDecisions keeps the per-gap decision list in the Result
	// (needed for FP/FN scoring and the Fig. 14 trajectory).
	RecordDecisions bool
	// RecordEpisodes keeps the batching-episode log (Fig. 16).
	RecordEpisodes bool
}

func (o *Options) burstGap() time.Duration {
	if o == nil || o.BurstGap <= 0 {
		return time.Second
	}
	return o.BurstGap
}

func (o *Options) recordDecisions() bool { return o != nil && o.RecordDecisions }
func (o *Options) recordEpisodes() bool  { return o != nil && o.RecordEpisodes }

// GapDecision records one demote decision and its outcome.
type GapDecision struct {
	// At is the time of the packet that opened the gap.
	At time.Duration
	// Gap is the realized inter-arrival to the next packet.
	Gap time.Duration
	// Wait is the dormancy wait the policy chose (policy.Never = timers).
	Wait time.Duration
	// Demoted reports whether the radio actually went Idle in this gap
	// (by fast dormancy or by the timers running out).
	Demoted bool
}

// Episode records one MakeActive batching window.
type Episode struct {
	// At is the arrival time of the first burst.
	At time.Duration
	// Delay is the batching window the policy chose.
	Delay time.Duration
	// Buffered is how many bursts were released together.
	Buffered int
}

// Result is the outcome of one simulation run.
type Result struct {
	Policy  string
	Active  string // "" when batching is disabled
	Profile string

	// Breakdown is the energy split into Fig. 1's categories.
	Breakdown energy.Breakdown
	// Promotions counts Idle->Active switches (signaling overhead,
	// Figs. 10b/11b/18).
	Promotions int
	// Demotions counts transitions into Idle.
	Demotions int
	// PromotedPackets is how many packets were delayed by a promotion.
	PromotedPackets int
	// PromotionDelayTotal accumulates that delay.
	PromotionDelayTotal time.Duration

	// BurstDelays holds, for every burst that passed through a batching
	// window, how long its start was deferred. Empty without MakeActive.
	BurstDelays []time.Duration
	// Episodes counts batching windows; EpisodeLog has details when
	// Options.RecordEpisodes is set.
	Episodes   int
	EpisodeLog []Episode

	// Decisions is the per-gap record when Options.RecordDecisions is set.
	Decisions []GapDecision

	// Packets and Duration describe the (possibly shifted) replayed trace.
	Packets  int
	Duration time.Duration
}

// TotalJ is the total energy consumed.
func (r *Result) TotalJ() float64 { return r.Breakdown.Total() }

// enginePool recycles engines (and their scratch buffers) across Run calls.
var enginePool = sync.Pool{New: func() interface{} { return NewEngine() }}

// Run simulates a trace under the given policies. demote must be non-nil
// (use policy.StatusQuo{} for the deployed behaviour); active may be nil to
// disable batching. Policies are Reset before the run.
//
// Run draws a reusable Engine from an internal pool; callers replaying many
// traces on one goroutine (fleet workers, sweeps) can hold their own Engine
// instead and skip the pool round-trip.
func Run(tr trace.Trace, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) (*Result, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.Run(tr, prof, demote, active, opts)
}

// RunSource is Run for a streaming packet source: the replay pulls packets
// on demand through the engine's bounded burst lookahead, so memory is
// independent of trace length. A slice-backed source and a streaming
// source yielding the same packets produce byte-identical Results.
func RunSource(src trace.Source, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) (*Result, error) {
	e := enginePool.Get().(*Engine)
	defer enginePool.Put(e)
	return e.RunSource(src, prof, demote, active, opts)
}

// Engine replays traces. An Engine is reusable: each Run resets its state
// and recycles its internal scratch buffers, so a long-lived Engine replays
// traces with near-zero steady-state allocation (only the Result and its
// caller-visible slices are fresh per run). An Engine is not safe for
// concurrent use; use one per goroutine.
type Engine struct {
	// prof is stored by value: taking the address of the parameter would
	// force a heap copy of the profile on every run.
	prof      power.Profile
	demote    policy.DemotePolicy
	active    policy.ActivePolicy
	lookahead policy.GapLookahead
	opts      *Options
	res       *Result
	tail      time.Duration

	// Per-run accounting coefficients, precomputed once in RunSource so the
	// per-gap hot path does no profile-method calls. The tail-stage values
	// keep the exact operand order of energy.TailBreakdown (only the
	// Duration->seconds conversions are hoisted, which is the same float),
	// so the fast accounting is bit-identical to the generic helpers.
	t1s, t2s   float64 // T1/T2 timer lengths in seconds
	t1MW, t2MW float64 // tail-stage powers
	dormJ      float64 // fast-dormancy demotion energy
	promJ      float64 // promotion energy
	promDelay  time.Duration
	recDec     bool // opts.recordDecisions(), hoisted out of the gap loop

	// Devirtualized decision fast path: the built-in constant-wait demote
	// policies (StatusQuo, FixedTail, PercentileIAT) are recognized by a
	// single type switch per run; every per-packet Decide/Observe interface
	// call is then skipped, with pending pinned to constVal. forceGeneric
	// (a test knob) disables this and the direct no-batching loop so
	// equivalence tests can drive the generic interface path on demand.
	constWait    bool
	constVal     time.Duration
	forceGeneric bool //rrclint:testseam

	started bool
	lastT   time.Duration // time of the last processed packet
	lastTx  time.Duration // transmission time of the last packet
	pending time.Duration // dormancy wait decided after the last packet
	decided bool          // whether pending is valid for lastT
	packets int

	// Scratch buffers reused across runs (never escape to the Result).
	group    []trace.Burst     //rrclint:scratch
	merged   trace.Trace       //rrclint:scratch
	mergeTmp trace.Trace       //rrclint:scratch
	runs     []int             //rrclint:scratch
	runsTmp  []int             //rrclint:scratch
	arrivals []time.Duration   //rrclint:scratch
	window   burstWindow       //rrclint:scratch
	slice    trace.SliceSource //rrclint:scratch
}

// NewEngine returns a reusable replay engine.
func NewEngine() *Engine { return &Engine{} }

// Reset clears all per-run state while keeping scratch buffer capacity.
// Run calls it implicitly; it is exported for callers that want to drop
// references to policies/profiles between runs.
func (e *Engine) Reset() {
	// Zero the burst scratch before truncating: its elements alias the
	// window's recycled packet buffers and must not pin stale data in an
	// idle pooled engine. merged/arrivals hold only value types.
	for i := range e.group {
		e.group[i] = trace.Burst{}
	}
	group, merged, arrivals := e.group[:0], e.merged[:0], e.arrivals[:0]
	window := e.window
	window.reset(nil, 0) // recycle burst buffers, drop the source reference
	// The slice adapter survives Reset unrewound: RunSource resets the
	// engine after wiring it up, so zeroing it here would drop the very
	// trace Run is about to replay. Run clears it once the replay ends.
	slice := e.slice
	*e = Engine{group: group, merged: merged, arrivals: arrivals, window: window, slice: slice,
		mergeTmp: e.mergeTmp[:0], runs: e.runs[:0], runsTmp: e.runsTmp[:0],
		forceGeneric: e.forceGeneric}
}

// Run replays one materialized trace on this engine. Semantics are
// identical to the package-level Run; internally the trace is replayed
// through the same streaming path RunSource uses, so the two agree bit for
// bit on identical packets.
func (e *Engine) Run(tr trace.Trace, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) (*Result, error) {
	res := new(Result)
	if err := e.RunInto(res, tr, prof, demote, active, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run writing into a caller-owned Result: res is overwritten
// wholesale, reusing its slice capacity, so a caller replaying in a loop
// allocates no Result (and, steady-state, no slices) per run. The fields
// are byte-identical to what Run would have returned. On error res is left
// in an unspecified state.
func (e *Engine) RunInto(res *Result, tr trace.Trace, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) error {
	e.slice.Reset(tr)
	err := e.RunSourceInto(res, &e.slice, prof, demote, active, opts)
	e.slice.Reset(nil) // drop the trace reference until the next run
	return err
}

// RunSource replays a streaming packet source on this engine. Semantics
// are identical to the package-level RunSource. Invalid input (unsorted or
// negative timestamps, bad directions, negative sizes) is rejected with
// the same errors Trace.Validate reports, discovered at the offending
// packet.
func (e *Engine) RunSource(src trace.Source, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) (*Result, error) {
	res := new(Result)
	if err := e.RunSourceInto(res, src, prof, demote, active, opts); err != nil {
		return nil, err
	}
	return res, nil
}

// RunSourceInto is RunSource writing into a caller-owned Result (see
// RunInto for the reuse contract).
func (e *Engine) RunSourceInto(res *Result, src trace.Source, prof power.Profile, demote policy.DemotePolicy, active policy.ActivePolicy, opts *Options) error {
	if err := prof.Validate(); err != nil {
		return err
	}
	if demote == nil {
		return fmt.Errorf("sim: demote policy is nil")
	}
	if src == nil {
		return fmt.Errorf("sim: source is nil")
	}
	demote.Reset()
	if active != nil {
		active.Reset()
	}

	// Overwrite every field; truncation (not nil) keeps a reused Result's
	// slice capacity. A fresh Result's nil slices stay nil under [:0], so
	// the non-reusing callers return exactly the bytes they always did.
	*res = Result{
		Policy:      demote.Name(),
		Profile:     prof.Name,
		BurstDelays: res.BurstDelays[:0],
		EpisodeLog:  res.EpisodeLog[:0],
		Decisions:   res.Decisions[:0],
	}
	if active != nil {
		res.Active = active.Name()
	}

	e.Reset()
	e.prof = prof
	e.demote = demote
	e.active = active
	e.opts = opts
	e.res = res
	e.tail = prof.Tail()
	e.lookahead, _ = demote.(policy.GapLookahead)
	e.t1s, e.t2s = prof.T1.Seconds(), prof.T2.Seconds()
	e.t1MW, e.t2MW = prof.T1MW, prof.T2MW
	e.dormJ, e.promJ = prof.DormancyJ(), prof.PromotionJ()
	e.promDelay = prof.PromotionDelay
	e.recDec = opts.recordDecisions()
	// Devirtualize constant-wait built-ins: one type switch here replaces
	// an interface Decide/Observe pair per packet. The recognized policies
	// are stateless (Observe is a no-op, Decide a constant), so skipping
	// their calls is behaviour-preserving; the clamp matches
	// ensureDecision's. Clairvoyant policies keep the generic path — they
	// need the per-gap lookahead feed.
	if !e.forceGeneric && e.lookahead == nil {
		switch d := demote.(type) {
		case policy.StatusQuo:
			e.constWait, e.constVal = true, policy.Never
		case *policy.FixedTail:
			e.constWait, e.constVal = true, d.Wait
		case *policy.PercentileIAT:
			e.constWait, e.constVal = true, d.Wait()
		}
		if e.constWait && e.constVal < 0 {
			e.constVal = 0
		}
	}
	e.window.reset(src, opts.burstGap())
	if err := e.run(); err != nil {
		e.Reset()
		return err
	}

	res.Packets = e.packets
	res.Duration = e.lastT
	// Byte-identity with Run: a run that recorded nothing into a reused
	// slice must leave the field nil, exactly as a fresh Result would —
	// the backing array is only dropped in that empty case.
	if len(res.BurstDelays) == 0 {
		res.BurstDelays = nil
	}
	if len(res.EpisodeLog) == 0 {
		res.EpisodeLog = nil
	}
	if len(res.Decisions) == 0 {
		res.Decisions = nil
	}
	e.Reset() // drop policy/profile/result references until the next run
	return nil
}

// ensureDecision fixes the demote decision for the gap that began at the
// last packet, if not already made. nextAt is the best current estimate of
// when the next packet arrives (policy.Never at end of trace); clairvoyant
// policies receive it as the upcoming gap.
func (e *Engine) ensureDecision(nextAt time.Duration) {
	if e.decided || !e.started {
		return
	}
	if e.constWait {
		e.pending = e.constVal
		e.decided = true
		return
	}
	if e.lookahead != nil {
		gap := policy.Never
		if nextAt != policy.Never {
			gap = nextAt - e.lastT
		}
		e.lookahead.ObserveNextGap(gap)
	}
	w := e.demote.Decide(e.lastT)
	if w < 0 {
		w = 0
	}
	e.pending = w
	e.decided = true
}

// idleAt returns the absolute time the radio reaches Idle after the last
// packet, given the pending decision (which must have been ensured).
func (e *Engine) idleAt() time.Duration {
	w := e.pending
	if w > e.tail {
		w = e.tail
	}
	return e.lastT + w
}

// horizon returns the learning horizon for episode observations: the
// maximum delay the active policy might propose.
func (e *Engine) horizon(chosen time.Duration) time.Duration {
	type maxDelayer interface{ MaxDelay() time.Duration }
	if md, ok := e.active.(maxDelayer); ok {
		if h := md.MaxDelay(); h > chosen {
			return h
		}
	}
	return chosen
}

// run drives the replay loop off the burst window: one burst at a time,
// opening a batching episode whenever the active policy finds the radio
// idle at a burst arrival. Without an active policy the burst structure is
// irrelevant — packets are processed strictly in arrival order either way —
// so the replay streams packets straight off the source instead of paying
// burst assembly and window bookkeeping per packet.
func (e *Engine) run() error {
	if e.active == nil && !e.forceGeneric {
		return e.runDirect()
	}
	for {
		b, ok, err := e.window.burst(0)
		if err != nil {
			return err
		}
		if !ok {
			break
		}

		if e.active != nil {
			// Radio idle at this arrival? Fix the pending decision using
			// the burst arrival as the next-packet estimate.
			e.ensureDecision(b.Start)
			if !e.started || b.Start > e.idleAt() {
				if err := e.batch(b); err != nil {
					return err
				}
				continue
			}
		}

		e.processPackets(b.Packets)
		e.window.drop(1)
	}
	e.finish()
	return nil
}

// runDirect is the no-batching replay loop: packets are pulled one at a
// time through the window's validator (so invalid input fails with exactly
// the errors the burst path reports, at the same packet) and stepped
// directly. No burst is ever assembled and nothing is buffered. Validated
// packets are monotone in time and never shifted, so the clamp in
// processPackets cannot fire and is skipped.
func (e *Engine) runDirect() error {
	for {
		p, ok, err := e.window.pull()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		e.step(p.T, p)
	}
	e.finish()
	return nil
}

// batch opens a batching window at burst b (the window's first burst),
// looks ahead through the window for the bursts inside the batching delay
// and the learning horizon, and processes the batched group.
func (e *Engine) batch(b trace.Burst) error {
	d := e.active.Delay(b.Start)
	if d < 0 {
		d = 0
	}
	release := b.Start + d
	group := append(e.group[:0], b)
	for {
		nb, ok, err := e.window.burst(len(group))
		if err != nil {
			return err
		}
		if !ok || nb.Start >= release {
			break
		}
		group = append(group, nb)
	}
	// Feed the learner all arrivals within its horizon, including those
	// beyond the chosen window: the device observes traffic regardless,
	// so counterfactual experts can be scored. The slice is scratch: the
	// policy must not retain it past the ObserveEpisode call.
	hor := e.horizon(d)
	arrivals := e.arrivals[:0]
	for k := 0; ; k++ {
		nb, ok, err := e.window.burst(k)
		if err != nil {
			return err
		}
		if !ok || nb.Start > b.Start+hor {
			break
		}
		arrivals = append(arrivals, nb.Start-b.Start)
	}
	e.arrivals = arrivals
	e.active.ObserveEpisode(d, arrivals)

	// Shift each grouped burst to the release point and merge. Each burst's
	// packets are already time-sorted, so the concatenation is a sequence of
	// sorted runs; a stable in-place merge of those runs produces exactly
	// the order sort.SliceStable computed here before — by (timestamp,
	// append position) — without the per-episode closure allocation.
	merged := e.merged[:0]
	runs := e.runs[:0]
	for _, g := range group {
		delta := release - g.Start
		e.res.BurstDelays = append(e.res.BurstDelays, delta)
		runs = append(runs, len(merged))
		for _, p := range g.Packets {
			p.T += delta
			merged = append(merged, p)
		}
	}
	merged = e.mergeRuns(merged, runs)
	e.res.Episodes++
	if e.opts.recordEpisodes() {
		e.res.EpisodeLog = append(e.res.EpisodeLog, Episode{At: b.Start, Delay: d, Buffered: len(group)})
	}
	e.group, e.merged = group, merged
	e.processPackets(merged)
	e.window.drop(len(group))
	return nil
}

// mergeRuns stable-merges the time-sorted runs laid out consecutively in
// buf (runs holds each run's start offset) and returns the sorted slice.
// Adjacent runs merge pairwise, bottom-up, ties taking the earlier run's
// packet first — precisely the (timestamp, original position) order a
// stable sort of the concatenation yields, so the episode's packet order
// is bit-identical to the sort.SliceStable this replaces. The ping-pong
// scratch buffers are the engine's, swapped in tandem with the caller's,
// so steady state allocates nothing (the closure-per-episode the stable
// sort cost is gone entirely).
func (e *Engine) mergeRuns(buf trace.Trace, runs []int) trace.Trace {
	alt, altRuns := e.mergeTmp, e.runsTmp
	for len(runs) > 1 {
		out := alt[:0]
		next := altRuns[:0]
		for i := 0; i < len(runs); i += 2 {
			lo := runs[i]
			next = append(next, len(out))
			if i+1 == len(runs) {
				out = append(out, buf[lo:]...)
				break
			}
			mid, hi := runs[i+1], len(buf)
			if i+2 < len(runs) {
				hi = runs[i+2]
			}
			a, b := buf[lo:mid], buf[mid:hi]
			for len(a) > 0 && len(b) > 0 {
				if b[0].T < a[0].T {
					out = append(out, b[0])
					b = b[1:]
				} else {
					out = append(out, a[0])
					a = a[1:]
				}
			}
			out = append(out, a...)
			out = append(out, b...)
		}
		buf, alt = out, buf
		runs, altRuns = next, runs
	}
	e.runs, e.runsTmp = runs[:0], altRuns[:0]
	e.mergeTmp = alt
	return buf
}

// processPackets feeds packets through the per-gap accounting. Packets may
// precede the engine clock slightly when a batching release overlaps the
// next burst; such packets are clamped to the clock (they arrive while the
// radio is certainly active, so only their data energy matters).
func (e *Engine) processPackets(pkts trace.Trace) {
	for _, p := range pkts {
		t := p.T
		if e.started && t < e.lastT {
			t = e.lastT
		}
		e.step(t, p)
	}
}

// step processes one packet at (possibly clamped) time t.
func (e *Engine) step(t time.Duration, p trace.Packet) {
	if !e.started {
		// The radio begins Idle: the first packet pays a promotion.
		e.promote()
		e.started = true
	} else {
		e.ensureDecision(t)
		gap := t - e.lastT
		e.accountGap(gap)
		if !e.constWait {
			// The recognized constant-wait policies' Observe is a no-op;
			// everything else gets the gap feed the interface promises.
			e.demote.Observe(gap)
		}
	}
	e.res.Breakdown.DataJ += energy.TxJ(&e.prof, p.Size, p.Dir == trace.Out)

	e.lastT = t
	e.lastTx = e.prof.TxTime(p.Size, p.Dir == trace.Out)
	e.packets++
	e.decided = false // the decision for this packet's gap is made lazily
}

// accountGap charges the energy of the gap that just closed, under the
// pending dormancy wait.
func (e *Engine) accountGap(gap time.Duration) {
	w := e.pending
	if w > e.tail {
		w = e.tail // the timers demote at the tail end regardless
	}
	demoted := gap > w
	stay := gap
	if demoted {
		stay = w
	}
	// The first lastTx of the gap is transmission time, already charged at
	// full power as data energy; only the remainder idles in the tail.
	stay -= e.lastTx
	if stay < 0 {
		stay = 0
	}
	t1J, t2J := e.tailBreakdown(stay)
	e.res.Breakdown.T1TailJ += t1J
	e.res.Breakdown.T2TailJ += t2J
	if demoted {
		e.res.Breakdown.SwitchJ += e.dormJ
		e.res.Demotions++
		e.promote()
	}
	if e.recDec {
		e.res.Decisions = append(e.res.Decisions, GapDecision{
			At: e.lastT, Gap: gap, Wait: e.pending, Demoted: demoted,
		})
	}
}

// tailBreakdown is energy.TailBreakdown against the run's precomputed
// coefficients: the operand order matches the generic helper exactly (only
// the Duration.Seconds conversions are hoisted), so the energies are the
// same floats bit for bit.
func (e *Engine) tailBreakdown(d time.Duration) (t1J, t2J float64) {
	if d <= 0 {
		return 0, 0
	}
	t := d.Seconds()
	t1J = math.Min(t, e.t1s) * e.t1MW / 1000
	if t > e.t1s {
		t2J = math.Min(t-e.t1s, e.t2s) * e.t2MW / 1000
	}
	return t1J, t2J
}

// promote charges one Idle->Active promotion and its packet delay.
func (e *Engine) promote() {
	e.res.Breakdown.SwitchJ += e.promJ
	e.res.Promotions++
	e.res.PromotedPackets++
	e.res.PromotionDelayTotal += e.promDelay
}

// finish settles the trailing tail after the last packet: the radio rides
// out min(pending, tail) and demotes (no promotion follows).
func (e *Engine) finish() {
	if !e.started {
		return
	}
	e.ensureDecision(policy.Never)
	w := e.pending
	if w > e.tail {
		w = e.tail
	}
	w -= e.lastTx
	if w < 0 {
		w = 0
	}
	t1J, t2J := e.tailBreakdown(w)
	e.res.Breakdown.T1TailJ += t1J
	e.res.Breakdown.T2TailJ += t2J
	e.res.Breakdown.SwitchJ += e.dormJ
	e.res.Demotions++
}
