package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// randTrace builds a random zero-size trace (so data energy is zero and
// closed-form accounting is exact).
func randTrace(r *rand.Rand, n int, maxGap time.Duration) trace.Trace {
	tr := make(trace.Trace, n)
	var t time.Duration
	for i := range tr {
		t += time.Duration(r.Int63n(int64(maxGap)))
		tr[i] = trace.Packet{T: t, Dir: trace.In, Size: 0}
	}
	return tr
}

// TestPropertyFixedTailMatchesClosedForm checks the engine against the
// closed-form per-gap cost for arbitrary fixed dormancy waits:
//
//	cost(g, w) = Tail(min(g, w')) + [g > w'] * Eswitch,  w' = min(w, tail)
//
// plus the initial promotion and the trailing Tail(w') + demotion.
func TestPropertyFixedTailMatchesClosedForm(t *testing.T) {
	p := prof()
	f := func(seed int64, waitMs uint16, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTrace(r, int(n)%50+1, 30*time.Second)
		w := time.Duration(waitMs) * time.Millisecond * 20 // 0 .. ~1300 s
		res, err := Run(tr, p, &policy.FixedTail{Wait: w}, nil, nil)
		if err != nil {
			return false
		}
		eff := w
		if eff > p.Tail() {
			eff = p.Tail()
		}
		want := p.PromotionJ()
		for _, g := range tr.InterArrivals() {
			if g <= eff {
				want += energy.TailJ(&p, g)
			} else {
				want += energy.TailJ(&p, eff) + p.SwitchJ()
			}
		}
		want += energy.TailJ(&p, eff) + p.DormancyJ()
		return math.Abs(res.TotalJ()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySwitchEnergyDecomposition: the switch-energy component must
// equal promotions*PromotionJ + demotions*DormancyJ exactly, and
// promotions must equal demotions (initial promote pairs with trailing
// demote).
func TestPropertySwitchEnergyDecomposition(t *testing.T) {
	p := prof()
	apps := workload.Apps()
	f := func(seed int64, appIdx uint8, waitMs uint16) bool {
		app := apps[int(appIdx)%len(apps)]
		tr := workload.Generate(app, seed, 30*time.Minute)
		if len(tr) == 0 {
			return true
		}
		w := time.Duration(waitMs%20000) * time.Millisecond
		res, err := Run(tr, p, &policy.FixedTail{Wait: w}, nil, nil)
		if err != nil {
			return false
		}
		if res.Promotions != res.Demotions {
			return false
		}
		want := float64(res.Promotions)*p.PromotionJ() + float64(res.Demotions)*p.DormancyJ()
		return math.Abs(res.Breakdown.SwitchJ-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecisionsMatchGaps: recorded decisions carry the true gaps
// and consistent demotion flags.
func TestPropertyDecisionsMatchGaps(t *testing.T) {
	p := prof()
	f := func(seed int64, waitMs uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTrace(r, 40, 20*time.Second)
		w := time.Duration(waitMs%15000) * time.Millisecond
		res, err := Run(tr, p, &policy.FixedTail{Wait: w}, nil, &Options{RecordDecisions: true})
		if err != nil {
			return false
		}
		gaps := tr.InterArrivals()
		if len(res.Decisions) != len(gaps) {
			return false
		}
		eff := w
		if eff > p.Tail() {
			eff = p.Tail()
		}
		for i, d := range res.Decisions {
			if d.Gap != gaps[i] {
				return false
			}
			if d.Demoted != (gaps[i] > eff) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// hostileDemote returns pathological waits to ensure the engine clamps.
type hostileDemote struct{ i int }

func (h *hostileDemote) Name() string { return "hostile" }
func (h *hostileDemote) Decide(time.Duration) time.Duration {
	h.i++
	switch h.i % 3 {
	case 0:
		return -time.Hour // negative: must clamp to 0
	case 1:
		return policy.Never
	default:
		return time.Duration(math.MaxInt64 - 1) // near-overflow wait
	}
}
func (h *hostileDemote) Observe(time.Duration) {}
func (h *hostileDemote) Reset()                { h.i = 0 }

// hostileActive returns pathological batching delays.
type hostileActive struct{ i int }

func (h *hostileActive) Name() string { return "hostile-active" }
func (h *hostileActive) Delay(time.Duration) time.Duration {
	h.i++
	if h.i%2 == 0 {
		return -time.Minute // negative: must clamp to 0
	}
	return 3 * time.Second
}
func (h *hostileActive) ObserveEpisode(time.Duration, []time.Duration) {}
func (h *hostileActive) Reset()                                        { h.i = 0 }

func TestFailureInjectionHostilePolicies(t *testing.T) {
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	res, err := Run(tr, prof(), &hostileDemote{}, &hostileActive{}, &Options{RecordDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	if b.DataJ < 0 || b.T1TailJ < 0 || b.T2TailJ < 0 || b.SwitchJ < 0 {
		t.Fatalf("negative energy under hostile policies: %+v", b)
	}
	if math.IsNaN(res.TotalJ()) || math.IsInf(res.TotalJ(), 0) {
		t.Fatalf("non-finite energy: %v", res.TotalJ())
	}
	for _, d := range res.BurstDelays {
		if d < 0 {
			t.Fatalf("negative burst delay %v", d)
		}
	}
}

// TestPropertyMakeIdleNeverCatastrophic: across random app workloads,
// MakeIdle must not consume more than marginally above the status quo
// (its positivity gate means it only demotes on expected gain).
func TestPropertyMakeIdleNeverCatastrophic(t *testing.T) {
	p := prof()
	apps := workload.Apps()
	f := func(seed int64, appIdx uint8) bool {
		app := apps[int(appIdx)%len(apps)]
		tr := workload.Generate(app, seed, 30*time.Minute)
		if len(tr) < 10 {
			return true
		}
		sq, err := Run(tr, p, policy.StatusQuo{}, nil, nil)
		if err != nil {
			return false
		}
		mi, err := policy.NewMakeIdle(p)
		if err != nil {
			return false
		}
		res, err := Run(tr, p, mi, nil, nil)
		if err != nil {
			return false
		}
		return res.TotalJ() <= sq.TotalJ()*1.10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBatchingPreservesPackets: MakeActive shifts but never drops
// or duplicates packets.
func TestPropertyBatchingPreservesPackets(t *testing.T) {
	p := prof()
	f := func(seed int64, boundMs uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randTrace(r, 60, 15*time.Second)
		bound := time.Duration(boundMs%12000) * time.Millisecond
		res, err := Run(tr, p, &policy.FixedTail{Wait: time.Second},
			&policy.FixedDelay{Bound: bound}, nil)
		if err != nil {
			return false
		}
		if res.Packets != len(tr) {
			return false
		}
		for _, d := range res.BurstDelays {
			if d < 0 || d > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
