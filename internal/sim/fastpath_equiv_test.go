package sim

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

// These tests pin the devirtualization refactor's core promise: the
// constant-wait fast path (one type switch per run instead of a Decide/
// Observe interface call pair per packet) is an optimization, never a
// behaviour change. forceGeneric is the test seam that disables the type
// switch, so both paths replay the same policies over the same packets.

// TestFastPathMatchesGenericAllSchemes replays every registered demote
// scheme — at default parameters — through a fast-path engine and a
// forced-generic engine, and requires bit-identical Results including the
// recorded decision logs. Iterating the registry (not a hand-kept list)
// means a newly registered scheme is covered the day it lands: if its
// policy type is ever added to the fast-path switch incorrectly, this test
// is the tripwire.
func TestFastPathMatchesGenericAllSchemes(t *testing.T) {
	reg := policy.Default()
	opts := &Options{RecordDecisions: true, RecordEpisodes: true}
	for _, prof := range []power.Profile{power.Verizon3G, power.VerizonLTE} {
		for _, schema := range reg.Schemas(policy.RoleDemote) {
			u := workload.Verizon3GUsers()[1]
			tr := u.Generate(33, time.Hour)
			mk := func() policy.DemotePolicy {
				d, err := reg.BuildDemote(policy.Spec{Name: schema.Name}, tr, prof)
				if err != nil {
					t.Fatalf("%s/%s: build: %v", prof.Name, schema.Name, err)
				}
				return d
			}
			fast := NewEngine()
			fastRes, err := fast.Run(tr, prof, mk(), nil, opts)
			if err != nil {
				t.Fatalf("%s/%s: fast path: %v", prof.Name, schema.Name, err)
			}
			gen := NewEngine()
			gen.forceGeneric = true
			genRes, err := gen.Run(tr, prof, mk(), nil, opts)
			if err != nil {
				t.Fatalf("%s/%s: generic path: %v", prof.Name, schema.Name, err)
			}
			assertSameResult(t, prof.Name+"/"+schema.Name, genRes, fastRes)
		}
	}
}

// TestEngineReuseAfterError runs a valid replay, then a replay that fails
// mid-stream (unsorted timestamps discovered at the offending packet), then
// the valid replay again on the same engine. The post-error run must be
// byte-identical to a fresh engine's: an aborted replay may leave no state
// behind.
func TestEngineReuseAfterError(t *testing.T) {
	prof := power.Verizon3G
	tr := workload.Verizon3GUsers()[0].Generate(5, 30*time.Minute)
	opts := &Options{RecordDecisions: true}
	mkIdle := func() policy.DemotePolicy {
		mi, err := policy.NewMakeIdle(prof)
		if err != nil {
			t.Fatal(err)
		}
		return mi
	}
	bad := trace.Trace{
		{T: time.Second, Dir: trace.In, Size: 1},
		{T: 0, Dir: trace.In, Size: 1},
	}

	e := NewEngine()
	if _, err := e.Run(tr, prof, mkIdle(), policy.NewLearnedDelay(), opts); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunSource(bad.Source(), prof, policy.StatusQuo{}, nil, nil); err == nil {
		t.Fatal("unsorted source accepted")
	}
	got, err := e.Run(tr, prof, mkIdle(), policy.NewLearnedDelay(), opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(tr, prof, mkIdle(), policy.NewLearnedDelay(), opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-error reuse", want, got)
}
