package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/workload"
)

// quickCfg keeps experiment tests fast while leaving enough traffic for
// stable qualitative results.
func quickCfg() Config {
	return Config{Seed: 42, AppDuration: time.Hour, UserDuration: 2 * time.Hour}
}

func TestAllExperimentsRun(t *testing.T) {
	cfg := Config{Seed: 7, AppDuration: 20 * time.Minute, UserDuration: 30 * time.Minute}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if strings.TrimSpace(out) == "" {
				t.Fatalf("%s: empty output", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Fatal("fig9 not registered")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id found")
	}
	if len(All()) < 15 {
		t.Fatalf("only %d experiments registered", len(All()))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.AppDuration == 0 || c.UserDuration == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	c2 := Config{Seed: 9, AppDuration: time.Minute, UserDuration: time.Minute}.withDefaults()
	if c2.Seed != 9 || c2.AppDuration != time.Minute {
		t.Fatalf("explicit values overridden: %+v", c2)
	}
}

// TestPaperShapeHoldsOnUserMix verifies the headline qualitative results of
// the paper on one user mix: MakeIdle beats the fixed baselines, lands near
// the Oracle, and MakeActive brings switches back toward the status quo.
func TestPaperShapeHoldsOnUserMix(t *testing.T) {
	cfg := quickCfg()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	_, schemes, err := RunSchemes(tr, power.Verizon3G, nil)
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]SchemeResult{}
	for _, s := range schemes {
		by[s.Scheme] = s
	}

	mi := by[SchemeMakeIdle]
	or := by[SchemeOracle]
	ff := by[SchemeFourFive]
	learn := by[SchemeCombLearn]
	fix := by[SchemeCombFix]

	if mi.SavingsPct <= 0 {
		t.Fatalf("MakeIdle savings %.1f%% not positive", mi.SavingsPct)
	}
	if or.SavingsPct <= 0 {
		t.Fatalf("Oracle savings %.1f%% not positive", or.SavingsPct)
	}
	if mi.SavingsPct <= ff.SavingsPct {
		t.Fatalf("MakeIdle (%.1f%%) should beat 4.5-second (%.1f%%)", mi.SavingsPct, ff.SavingsPct)
	}
	// MakeIdle close to the Oracle (paper: consistently close).
	if or.SavingsPct-mi.SavingsPct > 15 {
		t.Fatalf("MakeIdle (%.1f%%) far below Oracle (%.1f%%)", mi.SavingsPct, or.SavingsPct)
	}
	// MakeIdle alone multiplies switches; MakeActive brings them down.
	if mi.SwitchRatio <= 1 {
		t.Logf("note: MakeIdle switch ratio %.2f (usually > 1)", mi.SwitchRatio)
	}
	if learn.SwitchRatio >= mi.SwitchRatio {
		t.Fatalf("MakeActive-Learn did not reduce switches: %.2f vs %.2f",
			learn.SwitchRatio, mi.SwitchRatio)
	}
	if fix.SwitchRatio >= mi.SwitchRatio {
		t.Fatalf("MakeActive-Fix did not reduce switches: %.2f vs %.2f",
			fix.SwitchRatio, mi.SwitchRatio)
	}
	// Combined methods keep (or improve) the savings.
	if learn.SavingsPct < mi.SavingsPct-10 {
		t.Fatalf("combined learn savings collapsed: %.1f%% vs MakeIdle %.1f%%",
			learn.SavingsPct, mi.SavingsPct)
	}
}

func TestHeadlineSavingsBand(t *testing.T) {
	// The paper reports 51-66% savings for MakeIdle on 3G and 67% on LTE.
	// Synthetic traces will not match exactly; require the right ballpark
	// (>= 30% on both Verizon profiles for the averaged cohort).
	cfg := quickCfg()
	for _, prof := range []power.Profile{power.Verizon3G, power.VerizonLTE} {
		savings, _, err := CarrierResults(prof, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := savings[SchemeMakeIdle]; got < 30 {
			t.Errorf("%s: MakeIdle mean savings %.1f%% below plausibility band", prof.Name, got)
		}
		if savings[SchemeOracle] < savings[SchemeMakeIdle]-15 {
			t.Errorf("%s: Oracle (%.1f%%) implausibly below MakeIdle (%.1f%%)",
				prof.Name, savings[SchemeOracle], savings[SchemeMakeIdle])
		}
	}
}

func TestEnergyModelErrorWithinBand(t *testing.T) {
	// Fig. 8: the coarse model should sit within ~10-15% of the
	// fine-grained synthetic measurement.
	var errs []float64
	for _, prof := range []power.Profile{power.Verizon3G, power.VerizonLTE} {
		for _, kb := range []int{10, 100, 1000} {
			for run := 0; run < 5; run++ {
				e, err := EnergyModelError(prof, kb*1000, int64(kb+run))
				if err != nil {
					t.Fatal(err)
				}
				errs = append(errs, e)
				if math.Abs(e) > 0.25 {
					t.Errorf("%s %dkB run %d: error %.3f out of band", prof.Name, kb, run, e)
				}
			}
		}
	}
	if m := metrics.MeanAbs(errs); m > 0.15 {
		t.Errorf("mean |error| = %.3f, want <= 0.15", m)
	}
}

func TestWindowSweepShape(t *testing.T) {
	// Fig. 13: FP rate should not grow as the window grows; small windows
	// are the noisy ones.
	cfg := quickCfg()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)

	confusionAt := func(n int) metrics.Confusion {
		mi, err := policy.NewMakeIdle(power.Verizon3G, policy.WithWindowSize(n))
		if err != nil {
			t.Fatal(err)
		}
		c, err := ConfusionFor(tr, power.Verizon3G, mi)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	small := confusionAt(10)
	large := confusionAt(400)
	if large.FalsePositiveRate() > small.FalsePositiveRate()+5 {
		t.Errorf("FP grew with window size: n=10 %.1f%%, n=400 %.1f%%",
			small.FalsePositiveRate(), large.FalsePositiveRate())
	}
}

func TestTwaitTrajectoryNonEmpty(t *testing.T) {
	cfg := quickCfg()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	s, err := TwaitTrajectory(tr, power.Verizon3G, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.X) == 0 {
		t.Fatal("no t_wait points recorded")
	}
	p := power.Verizon3G
	_ = p
	for _, y := range s.Y {
		if y < 0 || y > power.Verizon3G.Tail().Seconds() {
			t.Fatalf("t_wait %v out of range", y)
		}
	}
}

func TestDelayComparisonLearnBeatsFixed(t *testing.T) {
	// Fig. 15: learning cuts the average delay versus the fixed bound.
	cfg := quickCfg()
	u := workload.Verizon3GUsers()[3] // four-app mix: plenty of batching
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	learn, fixed, err := DelayComparison(tr, power.Verizon3G)
	if err != nil {
		t.Fatal(err)
	}
	if learn.Count == 0 || fixed.Count == 0 {
		t.Fatalf("no delays recorded: learn=%d fixed=%d", learn.Count, fixed.Count)
	}
	if learn.Mean >= fixed.Mean {
		t.Errorf("learning mean delay %v not below fixed %v", learn.Mean, fixed.Mean)
	}
}

func TestCarrierResultsDeterministic(t *testing.T) {
	cfg := Config{Seed: 5, AppDuration: 30 * time.Minute, UserDuration: time.Hour}
	a, _, err := CarrierResults(power.Verizon3G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := CarrierResults(power.Verizon3G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a {
		if math.Abs(b[k]-v) > 1e-9 {
			t.Fatalf("scheme %s differs across identical runs: %v vs %v", k, v, b[k])
		}
	}
}
