// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the synthetic workload substrate. Each experiment is
// a pure function of a Config (seed + durations), returns renderable
// output, and is registered in All so cmd/experiments and the benchmark
// harness can enumerate them.
//
// The correspondence between experiment IDs, paper artifacts, workloads and
// modules is tabulated in DESIGN.md; measured-vs-paper numbers are recorded
// in EXPERIMENTS.md.
package experiments

import (
	"sort"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a run. The zero value is usable: DefaultConfig
// values are substituted for unset fields.
type Config struct {
	// Seed drives every generator; equal seeds give identical output.
	Seed int64
	// AppDuration is the length of per-application traces (Fig. 1, 9).
	AppDuration time.Duration
	// UserDuration is the length of per-user traces (Figs. 10-18).
	UserDuration time.Duration
	// Users is the cohort size of the fleet-scale replay experiment
	// (default 24; the CLI raises it into the thousands).
	Users int
	// Workers bounds the fleet's replay goroutines (0 = GOMAXPROCS;
	// 1 = serial). Worker count never changes results.
	Workers int
	// Shards is the fleet's aggregate partition count (0 = the fixed
	// fleet.DefaultShards, so defaults reproduce across machines).
	Shards int
}

// DefaultConfig mirrors the paper's 2-hour application traces and uses
// 4-hour user traces (long enough for stable statistics, short enough for
// quick regeneration; the CLI can raise it).
func DefaultConfig() Config {
	return Config{Seed: 1, AppDuration: 2 * time.Hour, UserDuration: 4 * time.Hour, Users: 24}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.AppDuration <= 0 {
		c.AppDuration = d.AppDuration
	}
	if c.UserDuration <= 0 {
		c.UserDuration = d.UserDuration
	}
	if c.Users <= 0 {
		c.Users = d.Users
	}
	return c
}

// fleetOpts maps the config's parallelism knobs onto the runtime's.
func (c Config) fleetOpts() fleet.Options {
	return fleet.Options{Workers: c.Workers, Shards: c.Shards}
}

// Experiment couples an ID (the paper artifact it regenerates) with its
// driver. Run returns human-readable output (tables/series rendered as
// text).
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (string, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table 1: send/receive power", Table1},
		{"tab2", "Table 2: power and inactivity timers", Table2},
		{"fig1", "Figure 1: energy by radio state per application", Fig1},
		{"fig3", "Figure 3: power timeline across a state-switch cycle", Fig3},
		{"fig8", "Figure 8: simulation energy error", Fig8},
		{"fig9", "Figure 9: energy savings per application", Fig9},
		{"fig10", "Figure 10: per-user results, Verizon 3G", Fig10},
		{"fig11", "Figure 11: per-user results, Verizon LTE", Fig11},
		{"fig12", "Figure 12: false and missed switches", Fig12},
		{"fig13", "Figure 13: FP/FN vs window size", Fig13},
		{"fig14", "Figure 14: t_wait trajectory", Fig14},
		{"fig15", "Figure 15: burst delays, learning vs fixed", Fig15},
		{"fig16", "Figure 16: learned delay vs iteration", Fig16},
		{"fig17", "Figure 17: energy saved per carrier", Fig17},
		{"fig18", "Figure 18: state switches per carrier", Fig18},
		{"tab3", "Table 3: session delays per carrier", Table3},
		{"sens", "Sensitivity: fast-dormancy cost fraction", DormancySensitivity},
		{"bs", "Extension (§8): base-station signaling load", BaseStationLoad},
		{"buf", "Extension (§8): base-station downlink buffering", DownlinkBufferingTrade},
		{"life", "Conclusion: battery lifetime estimate", LifetimeEstimate},
		{"fleet", "Extension: sharded fleet replay of a diurnal cohort", FleetReplay},
		{"sweep", "Extension: dormancy-tail parameter sweep via policy specs", TailSweep},
		{"grid", "Extension: scheme × profile × cohort sweep grid via the registries", GridSweep},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Scheme names, in the order the paper's figure legends use.
const (
	SchemeFourFive  = "4.5-second"
	Scheme95IAT     = "95% IAT"
	SchemeMakeIdle  = "MakeIdle"
	SchemeOracle    = "Oracle"
	SchemeCombLearn = "MakeIdle+MakeActive Learn"
	SchemeCombFix   = "MakeIdle+MakeActive Fix"
	SchemeStatusQuo = "StatusQuo"
)

// SchemeNames lists the six evaluated schemes (status quo is the baseline,
// not a scheme).
func SchemeNames() []string {
	return []string{
		SchemeFourFive, Scheme95IAT, SchemeMakeIdle, SchemeOracle,
		SchemeCombLearn, SchemeCombFix,
	}
}

// SchemeResult is one scheme's outcome on one trace, with the status-quo
// relative metrics the figures plot.
type SchemeResult struct {
	Scheme          string
	Result          *sim.Result
	SavingsPct      float64
	SwitchRatio     float64
	SavedPerSwitchJ float64
}

// FleetSchemes returns the six evaluated schemes as fleet schemes, in
// figure-legend order, built through the policy registry (the same specs
// the CLI flags and the /v1 HTTP API resolve) with the paper's
// figure-legend labels. burstGap parameterizes the trace-fitted
// MakeActive bound (<= 0 means the simulator's 1 s default).
func FleetSchemes(burstGap time.Duration) []fleet.Scheme {
	if burstGap <= 0 {
		burstGap = time.Second
	}
	demote := func(label, name string) fleet.SchemeSpec {
		return fleet.SchemeSpec{Label: label, Policy: policy.Spec{Name: name}}
	}
	combined := func(label, active string, params map[string]any) fleet.SchemeSpec {
		ss := demote(label, "makeidle")
		ss.Active = &policy.Spec{Name: active, Params: params}
		return ss
	}
	specs := []fleet.SchemeSpec{
		demote(SchemeFourFive, "4.5s"),
		demote(Scheme95IAT, "95iat"),
		demote(SchemeMakeIdle, "makeidle"),
		demote(SchemeOracle, "oracle"),
		combined(SchemeCombLearn, "learn", nil),
		combined(SchemeCombFix, "fix", map[string]any{"burstgap": burstGap}),
	}
	schemes := make([]fleet.Scheme, len(specs))
	for i, ss := range specs {
		s, err := fleet.SchemeFromSpec(policy.Default(), ss)
		if err != nil {
			panic(err) // impossible: the built-in registry resolves its own names
		}
		schemes[i] = s
	}
	return schemes
}

// statusQuoScheme is the baseline as a scheme row (always job 0 of a
// scheme-matrix cell, so relative metrics pair against it).
func statusQuoScheme() fleet.Scheme { return fleet.StatusQuoScheme() }

// schemeMatrixJobs expands (traces × [statusquo + schemes]) into fleet jobs
// in trace-major order: jobs[t*(1+len(schemes))] is trace t's status quo.
// Traces are shared across a row's jobs (replays only read them), so each
// is generated once however many schemes replay it — these experiment
// cohorts are small enough to hold, unlike the Gen-per-job fleet path.
func schemeMatrixJobs(traces []trace.Trace, seeds []int64, prof power.Profile, schemes []fleet.Scheme, opts *sim.Options) []fleet.Job {
	rows := append([]fleet.Scheme{statusQuoScheme()}, schemes...)
	jobs := make([]fleet.Job, 0, len(traces)*len(rows))
	for t := range traces {
		for _, s := range rows {
			jobs = append(jobs, fleet.Job{
				Seed:    seeds[t],
				Trace:   traces[t],
				Profile: prof,
				Scheme:  s.Name,
				Demote:  s.Demote,
				Active:  s.Active,
				Opts:    opts,
			})
		}
	}
	return jobs
}

// schemeResultsFrom pairs a trace's collected outcomes against its status
// quo (job base) and builds the relative SchemeResults in scheme order.
func schemeResultsFrom(cells map[int]fleet.Outcome, base int, schemes []fleet.Scheme) (*sim.Result, []SchemeResult) {
	statusQuo := cells[base].Result
	results := make([]SchemeResult, 0, len(schemes))
	for j, s := range schemes {
		r := cells[base+1+j].Result
		results = append(results, SchemeResult{
			Scheme:          s.Name,
			Result:          r,
			SavingsPct:      metrics.SavingsPercent(statusQuo, r),
			SwitchRatio:     metrics.SwitchRatio(statusQuo, r),
			SavedPerSwitchJ: metrics.EnergySavedPerSwitchJ(statusQuo, r),
		})
	}
	return statusQuo, results
}

// RunSchemes evaluates the six schemes (plus the status-quo baseline,
// returned first) on a trace under a profile. Options are applied to every
// run. The seven replays fan out across the fleet pool.
func RunSchemes(tr trace.Trace, prof power.Profile, opts *sim.Options) (*sim.Result, []SchemeResult, error) {
	return runSchemesFleet(tr, prof, opts, fleet.Options{})
}

func runSchemesFleet(tr trace.Trace, prof power.Profile, opts *sim.Options, fopts fleet.Options) (*sim.Result, []SchemeResult, error) {
	bg := time.Duration(0)
	if opts != nil {
		bg = opts.BurstGap
	}
	schemes := FleetSchemes(bg)
	rows := append([]fleet.Scheme{statusQuoScheme()}, schemes...)
	jobs := make([]fleet.Job, 0, len(rows))
	for _, s := range rows {
		jobs = append(jobs, fleet.Job{
			Trace:   tr,
			Profile: prof,
			Scheme:  s.Name,
			Demote:  s.Demote,
			Active:  s.Active,
			Opts:    opts,
		})
	}
	cells, err := fleet.Run(jobs, fopts, fleet.Collect())
	if err != nil {
		return nil, nil, err
	}
	statusQuo, results := schemeResultsFrom(cells, 0, schemes)
	return statusQuo, results, nil
}

// userTraces generates the per-user traces and seeds for a cohort (sharing
// the per-user seed spacing the figures have always used).
func userTraces(users []workload.User, seed int64, d time.Duration) (traces []trace.Trace, seeds []int64) {
	traces = make([]trace.Trace, len(users))
	seeds = make([]int64, len(users))
	for i, u := range users {
		seeds[i] = seed + int64(i)*7919
		traces[i] = u.Generate(seeds[i], d)
	}
	return traces, seeds
}

// sortedKeys returns map keys in SchemeNames order, then alphabetical for
// any extras.
func schemeOrder(m map[string]float64) []string {
	var keys []string
	seen := map[string]bool{}
	for _, k := range SchemeNames() {
		if _, ok := m[k]; ok {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	var rest []string
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(keys, rest...)
}
