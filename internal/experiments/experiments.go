// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the synthetic workload substrate. Each experiment is
// a pure function of a Config (seed + durations), returns renderable
// output, and is registered in All so cmd/experiments and the benchmark
// harness can enumerate them.
//
// The correspondence between experiment IDs, paper artifacts, workloads and
// modules is tabulated in DESIGN.md; measured-vs-paper numbers are recorded
// in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a run. The zero value is usable: DefaultConfig
// values are substituted for unset fields.
type Config struct {
	// Seed drives every generator; equal seeds give identical output.
	Seed int64
	// AppDuration is the length of per-application traces (Fig. 1, 9).
	AppDuration time.Duration
	// UserDuration is the length of per-user traces (Figs. 10-18).
	UserDuration time.Duration
}

// DefaultConfig mirrors the paper's 2-hour application traces and uses
// 4-hour user traces (long enough for stable statistics, short enough for
// quick regeneration; the CLI can raise it).
func DefaultConfig() Config {
	return Config{Seed: 1, AppDuration: 2 * time.Hour, UserDuration: 4 * time.Hour}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.AppDuration <= 0 {
		c.AppDuration = d.AppDuration
	}
	if c.UserDuration <= 0 {
		c.UserDuration = d.UserDuration
	}
	return c
}

// Experiment couples an ID (the paper artifact it regenerates) with its
// driver. Run returns human-readable output (tables/series rendered as
// text).
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (string, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tab1", "Table 1: send/receive power", Table1},
		{"tab2", "Table 2: power and inactivity timers", Table2},
		{"fig1", "Figure 1: energy by radio state per application", Fig1},
		{"fig3", "Figure 3: power timeline across a state-switch cycle", Fig3},
		{"fig8", "Figure 8: simulation energy error", Fig8},
		{"fig9", "Figure 9: energy savings per application", Fig9},
		{"fig10", "Figure 10: per-user results, Verizon 3G", Fig10},
		{"fig11", "Figure 11: per-user results, Verizon LTE", Fig11},
		{"fig12", "Figure 12: false and missed switches", Fig12},
		{"fig13", "Figure 13: FP/FN vs window size", Fig13},
		{"fig14", "Figure 14: t_wait trajectory", Fig14},
		{"fig15", "Figure 15: burst delays, learning vs fixed", Fig15},
		{"fig16", "Figure 16: learned delay vs iteration", Fig16},
		{"fig17", "Figure 17: energy saved per carrier", Fig17},
		{"fig18", "Figure 18: state switches per carrier", Fig18},
		{"tab3", "Table 3: session delays per carrier", Table3},
		{"sens", "Sensitivity: fast-dormancy cost fraction", DormancySensitivity},
		{"bs", "Extension (§8): base-station signaling load", BaseStationLoad},
		{"buf", "Extension (§8): base-station downlink buffering", DownlinkBufferingTrade},
		{"life", "Conclusion: battery lifetime estimate", LifetimeEstimate},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Scheme names, in the order the paper's figure legends use.
const (
	SchemeFourFive  = "4.5-second"
	Scheme95IAT     = "95% IAT"
	SchemeMakeIdle  = "MakeIdle"
	SchemeOracle    = "Oracle"
	SchemeCombLearn = "MakeIdle+MakeActive Learn"
	SchemeCombFix   = "MakeIdle+MakeActive Fix"
	SchemeStatusQuo = "StatusQuo"
)

// SchemeNames lists the six evaluated schemes (status quo is the baseline,
// not a scheme).
func SchemeNames() []string {
	return []string{
		SchemeFourFive, Scheme95IAT, SchemeMakeIdle, SchemeOracle,
		SchemeCombLearn, SchemeCombFix,
	}
}

// SchemeResult is one scheme's outcome on one trace, with the status-quo
// relative metrics the figures plot.
type SchemeResult struct {
	Scheme          string
	Result          *sim.Result
	SavingsPct      float64
	SwitchRatio     float64
	SavedPerSwitchJ float64
}

// RunSchemes evaluates the six schemes (plus the status-quo baseline,
// returned first) on a trace under a profile. Options are applied to every
// run.
func RunSchemes(tr trace.Trace, prof power.Profile, opts *sim.Options) (statusQuo *sim.Result, schemes []SchemeResult, err error) {
	statusQuo, err = sim.Run(tr, prof, policy.StatusQuo{}, nil, opts)
	if err != nil {
		return nil, nil, err
	}

	mk := func() (policy.DemotePolicy, error) { return policy.NewMakeIdle(prof) }
	th := energy.Threshold(&prof)

	type spec struct {
		name   string
		demote func() (policy.DemotePolicy, error)
		active func() policy.ActivePolicy
	}
	specs := []spec{
		{SchemeFourFive, func() (policy.DemotePolicy, error) { return policy.NewFourPointFive(), nil }, nil},
		{Scheme95IAT, func() (policy.DemotePolicy, error) { return policy.NewPercentileIAT(tr, 0.95), nil }, nil},
		{SchemeMakeIdle, mk, nil},
		{SchemeOracle, func() (policy.DemotePolicy, error) { return policy.NewOracle(th), nil }, nil},
		{SchemeCombLearn, mk, func() policy.ActivePolicy { return policy.NewLearnedDelay() }},
		{SchemeCombFix, mk, func() policy.ActivePolicy {
			bg := time.Second
			if opts != nil && opts.BurstGap > 0 {
				bg = opts.BurstGap
			}
			return policy.NewFixedDelay(tr, &prof, bg)
		}},
	}

	for _, s := range specs {
		d, err := s.demote()
		if err != nil {
			return nil, nil, fmt.Errorf("scheme %s: %w", s.name, err)
		}
		var a policy.ActivePolicy
		if s.active != nil {
			a = s.active()
		}
		r, err := sim.Run(tr, prof, d, a, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("scheme %s: %w", s.name, err)
		}
		schemes = append(schemes, SchemeResult{
			Scheme:          s.name,
			Result:          r,
			SavingsPct:      metrics.SavingsPercent(statusQuo, r),
			SwitchRatio:     metrics.SwitchRatio(statusQuo, r),
			SavedPerSwitchJ: metrics.EnergySavedPerSwitchJ(statusQuo, r),
		})
	}
	return statusQuo, schemes, nil
}

// userTraces generates the per-user traces for a carrier's cohort.
func userTraces(users []workload.User, seed int64, d time.Duration) []trace.Trace {
	out := make([]trace.Trace, len(users))
	for i, u := range users {
		out[i] = u.Generate(seed+int64(i)*7919, d)
	}
	return out
}

// meanOf averages a float extractor over scheme results grouped by scheme
// name across several runs.
func meanBy(results [][]SchemeResult, f func(SchemeResult) float64) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, rs := range results {
		for _, r := range rs {
			sums[r.Scheme] += f(r)
			counts[r.Scheme]++
		}
	}
	out := map[string]float64{}
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out
}

// sortedKeys returns map keys in SchemeNames order, then alphabetical for
// any extras.
func schemeOrder(m map[string]float64) []string {
	var keys []string
	seen := map[string]bool{}
	for _, k := range SchemeNames() {
		if _, ok := m[k]; ok {
			keys = append(keys, k)
			seen[k] = true
		}
	}
	var rest []string
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(keys, rest...)
}
