package experiments

import (
	"fmt"
	"sync"

	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig9 regenerates Figure 9: energy saved per application category by each
// of the six schemes, on a 3G profile (T-Mobile, the network of the
// paper's per-application phones).
func Fig9(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	headers := append([]string{"Application"}, SchemeNames()...)
	t := report.NewTable("Figure 9: energy saved per application (%, T-Mobile 3G)", headers...)
	for i, app := range workload.Apps() {
		tr := workload.Generate(app, cfg.Seed+int64(i), cfg.AppDuration)
		_, schemes, err := RunSchemes(tr, power.TMobile3G, nil)
		if err != nil {
			return "", fmt.Errorf("fig9 %s: %w", app.Name(), err)
		}
		row := []interface{}{app.Name()}
		for _, s := range schemes {
			row = append(row, s.SavingsPct)
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// perUserTables runs the six schemes for every user of a cohort and renders
// the three panels of Figs. 10/11: savings, normalized switches, and energy
// saved per switch.
func perUserTables(title string, users []workload.User, prof power.Profile, cfg Config) (string, error) {
	headers := append([]string{"User"}, SchemeNames()...)
	savings := report.NewTable(title+" (a) energy saved (%)", headers...)
	switches := report.NewTable(title+" (b) state switches normalized by status quo", headers...)
	perSwitch := report.NewTable(title+" (c) energy saved per state switch (J)", headers...)

	for i, u := range users {
		tr := u.Generate(cfg.Seed+int64(i)*7919, cfg.UserDuration)
		_, schemes, err := RunSchemes(tr, prof, nil)
		if err != nil {
			return "", fmt.Errorf("%s %s: %w", title, u.Name, err)
		}
		rowA := []interface{}{u.Name}
		rowB := []interface{}{u.Name}
		rowC := []interface{}{u.Name}
		for _, s := range schemes {
			rowA = append(rowA, s.SavingsPct)
			rowB = append(rowB, s.SwitchRatio)
			rowC = append(rowC, s.SavedPerSwitchJ)
		}
		savings.AddRowf(rowA...)
		switches.AddRowf(rowB...)
		perSwitch.AddRowf(rowC...)
	}
	return savings.String() + "\n" + switches.String() + "\n" + perSwitch.String(), nil
}

// Fig10 regenerates Figure 10: per-user results in the Verizon 3G network.
func Fig10(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	return perUserTables("Figure 10: Verizon 3G", workload.Verizon3GUsers(), power.Verizon3G, cfg)
}

// Fig11 regenerates Figure 11: per-user results in the Verizon LTE network.
func Fig11(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	return perUserTables("Figure 11: Verizon LTE", workload.VerizonLTEUsers(), power.VerizonLTE, cfg)
}

// CarrierResults runs every user cohort's traces against one carrier
// profile and averages each scheme's metrics — the computation behind
// Figs. 17/18 and Table 3. The same traces (the full 3G cohort) are
// replayed against every carrier, as in §6.5. Users are simulated in
// parallel: each run is a pure function of (trace, profile), so the only
// shared state is the result slice, written at distinct indices.
func CarrierResults(prof power.Profile, cfg Config) (map[string]float64, map[string]float64, []SchemeResult, error) {
	cfg = cfg.withDefaults()
	users := workload.Verizon3GUsers()
	traces := userTraces(users, cfg.Seed, cfg.UserDuration)

	all := make([][]SchemeResult, len(traces))
	errs := make([]error, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr trace.Trace) {
			defer wg.Done()
			_, schemes, err := RunSchemes(tr, prof, nil)
			all[i], errs[i] = schemes, err
		}(i, tr)
	}
	wg.Wait()
	var flat []SchemeResult
	for i := range all {
		if errs[i] != nil {
			return nil, nil, nil, errs[i]
		}
		flat = append(flat, all[i]...)
	}
	savings := meanBy(all, func(s SchemeResult) float64 { return s.SavingsPct })
	ratios := meanBy(all, func(s SchemeResult) float64 { return s.SwitchRatio })
	return savings, ratios, flat, nil
}

// Fig17 regenerates Figure 17: mean energy saved per carrier per scheme.
func Fig17(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	headers := append([]string{"Carrier"}, SchemeNames()...)
	t := report.NewTable("Figure 17: energy saved for different carrier parameters (%)", headers...)
	for _, prof := range power.Carriers() {
		savings, _, _, err := CarrierResults(prof, cfg)
		if err != nil {
			return "", fmt.Errorf("fig17 %s: %w", prof.Name, err)
		}
		row := []interface{}{prof.Name}
		for _, k := range schemeOrder(savings) {
			row = append(row, savings[k])
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// Fig18 regenerates Figure 18: mean state switches normalized by the status
// quo, per carrier per scheme.
func Fig18(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	headers := append([]string{"Carrier"}, SchemeNames()...)
	t := report.NewTable("Figure 18: state switches normalized by status quo", headers...)
	for _, prof := range power.Carriers() {
		_, ratios, _, err := CarrierResults(prof, cfg)
		if err != nil {
			return "", fmt.Errorf("fig18 %s: %w", prof.Name, err)
		}
		row := []interface{}{prof.Name}
		for _, k := range schemeOrder(ratios) {
			row = append(row, ratios[k])
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// DormancySensitivity re-runs MakeIdle with the fast-dormancy cost modelled
// at 10/20/40/50% of the radio-off energy (§6.1's robustness check).
func DormancySensitivity(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	t := report.NewTable("Sensitivity: MakeIdle savings vs fast-dormancy cost fraction (Verizon 3G, user1)",
		"Fraction", "Savings(%)", "Switches/statusquo")
	for _, f := range []float64{0.1, 0.2, 0.4, 0.5} {
		prof := power.Verizon3G.WithDormancyFraction(f)
		_, schemes, err := RunSchemes(tr, prof, nil)
		if err != nil {
			return "", err
		}
		for _, s := range schemes {
			if s.Scheme == SchemeMakeIdle {
				t.AddRowf(f, s.SavingsPct, s.SwitchRatio)
			}
		}
	}
	return t.String(), nil
}
