package experiments

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Fig9 regenerates Figure 9: energy saved per application category by each
// of the six schemes, on a 3G profile (T-Mobile, the network of the
// paper's per-application phones). The (app × scheme) matrix fans out
// across the fleet pool.
func Fig9(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	apps := workload.Apps()
	traces := make([]trace.Trace, len(apps))
	seeds := make([]int64, len(apps))
	for i, app := range apps {
		seeds[i] = cfg.Seed + int64(i)
		traces[i] = workload.Generate(app, seeds[i], cfg.AppDuration)
	}
	schemes := FleetSchemes(0)
	jobs := schemeMatrixJobs(traces, seeds, power.TMobile3G, schemes, nil)
	cells, err := fleet.Run(jobs, cfg.fleetOpts(), fleet.Collect())
	if err != nil {
		return "", fmt.Errorf("fig9: %w", err)
	}

	headers := append([]string{"Application"}, SchemeNames()...)
	t := report.NewTable("Figure 9: energy saved per application (%, T-Mobile 3G)", headers...)
	stride := 1 + len(schemes)
	for i, app := range apps {
		_, results := schemeResultsFrom(cells, i*stride, schemes)
		row := []interface{}{app.Name()}
		for _, s := range results {
			row = append(row, s.SavingsPct)
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// perUserTables runs the six schemes for every user of a cohort on the
// fleet and renders the three panels of Figs. 10/11: savings, normalized
// switches, and energy saved per switch.
func perUserTables(title string, users []workload.User, prof power.Profile, cfg Config) (string, error) {
	traces, seeds := userTraces(users, cfg.Seed, cfg.UserDuration)
	schemes := FleetSchemes(0)
	jobs := schemeMatrixJobs(traces, seeds, prof, schemes, nil)
	cells, err := fleet.Run(jobs, cfg.fleetOpts(), fleet.Collect())
	if err != nil {
		return "", fmt.Errorf("%s: %w", title, err)
	}

	headers := append([]string{"User"}, SchemeNames()...)
	savings := report.NewTable(title+" (a) energy saved (%)", headers...)
	switches := report.NewTable(title+" (b) state switches normalized by status quo", headers...)
	perSwitch := report.NewTable(title+" (c) energy saved per state switch (J)", headers...)

	stride := 1 + len(schemes)
	for i, u := range users {
		_, results := schemeResultsFrom(cells, i*stride, schemes)
		rowA := []interface{}{u.Name}
		rowB := []interface{}{u.Name}
		rowC := []interface{}{u.Name}
		for _, s := range results {
			rowA = append(rowA, s.SavingsPct)
			rowB = append(rowB, s.SwitchRatio)
			rowC = append(rowC, s.SavedPerSwitchJ)
		}
		savings.AddRowf(rowA...)
		switches.AddRowf(rowB...)
		perSwitch.AddRowf(rowC...)
	}
	return savings.String() + "\n" + switches.String() + "\n" + perSwitch.String(), nil
}

// Fig10 regenerates Figure 10: per-user results in the Verizon 3G network.
func Fig10(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	return perUserTables("Figure 10: Verizon 3G", workload.Verizon3GUsers(), power.Verizon3G, cfg)
}

// Fig11 regenerates Figure 11: per-user results in the Verizon LTE network.
func Fig11(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	return perUserTables("Figure 11: Verizon LTE", workload.VerizonLTEUsers(), power.VerizonLTE, cfg)
}

// CarrierResults runs the study cohort against one carrier profile and
// averages each scheme's metrics — the computation behind Figs. 17/18.
// The same cohort (the full 3G study mixes, stationary, one user per mix)
// is replayed against every carrier, as in §6.5. It is built on the grid
// path: the cohort comes from the cohort registry and each scheme is one
// independent fleet cell over the identical streamed cohort, so results
// are identical for any worker count and byte-identical to the service's
// grid cells on the same spec.
func CarrierResults(prof power.Profile, cfg Config) (map[string]float64, map[string]float64, error) {
	cfg = cfg.withDefaults()
	lc, err := CohortFor(fleet.CohortSpec{
		Name: "study-3g",
		Params: map[string]any{
			"users":    len(workload.Verizon3GUsers()),
			"duration": cfg.UserDuration.String(),
			"diurnal":  false,
		},
	}, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	cells, err := GridCells(cfg.fleetOpts(), []LabeledCohort{lc},
		[]power.Profile{prof}, FleetSchemes(0))
	if err != nil {
		return nil, nil, err
	}
	savings := map[string]float64{}
	ratios := map[string]float64{}
	for _, c := range cells {
		a := c.Summary.Schemes[c.Scheme]
		savings[c.Scheme] = a.SavingsPct.Mean
		ratios[c.Scheme] = a.SwitchRatio.Mean
	}
	return savings, ratios, nil
}

// carrierProfiles returns the four Table 2 carriers as registry-resolved
// profiles in figure order, keeping the paper display names as labels.
func carrierProfiles() ([]power.Profile, error) {
	reg := power.Default()
	profs := make([]power.Profile, 0, len(reg.Aliases()))
	for _, display := range []string{
		power.TMobile3G.Name, power.ATTHSPAPlus.Name, power.Verizon3G.Name, power.VerizonLTE.Name,
	} {
		prof, err := power.ProfileSpec{Label: display, Name: display}.Profile(reg)
		if err != nil {
			return nil, err
		}
		profs = append(profs, prof)
	}
	return profs, nil
}

// Fig17 regenerates Figure 17: mean energy saved per carrier per scheme.
func Fig17(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	headers := append([]string{"Carrier"}, SchemeNames()...)
	t := report.NewTable("Figure 17: energy saved for different carrier parameters (%)", headers...)
	profs, err := carrierProfiles()
	if err != nil {
		return "", err
	}
	for _, prof := range profs {
		savings, _, err := CarrierResults(prof, cfg)
		if err != nil {
			return "", fmt.Errorf("fig17 %s: %w", prof.Name, err)
		}
		row := []interface{}{prof.Name}
		for _, k := range schemeOrder(savings) {
			row = append(row, savings[k])
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// Fig18 regenerates Figure 18: mean state switches normalized by the status
// quo, per carrier per scheme.
func Fig18(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	headers := append([]string{"Carrier"}, SchemeNames()...)
	t := report.NewTable("Figure 18: state switches normalized by status quo", headers...)
	profs, err := carrierProfiles()
	if err != nil {
		return "", err
	}
	for _, prof := range profs {
		_, ratios, err := CarrierResults(prof, cfg)
		if err != nil {
			return "", fmt.Errorf("fig18 %s: %w", prof.Name, err)
		}
		row := []interface{}{prof.Name}
		for _, k := range schemeOrder(ratios) {
			row = append(row, ratios[k])
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// DormancySensitivity re-runs MakeIdle with the fast-dormancy cost modelled
// at 10/20/40/50% of the radio-off energy (§6.1's robustness check), one
// fleet job per (fraction, policy) over a shared trace.
func DormancySensitivity(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	fractions := []float64{0.1, 0.2, 0.4, 0.5}

	mi := fleet.MakeIdleScheme()
	var jobs []fleet.Job
	for _, f := range fractions {
		prof := power.Verizon3G.WithDormancyFraction(f)
		for _, s := range []fleet.Scheme{fleet.StatusQuoScheme(), mi} {
			jobs = append(jobs, fleet.Job{
				Trace:   tr,
				Profile: prof,
				Scheme:  s.Name,
				Demote:  s.Demote,
				Active:  s.Active,
			})
		}
	}
	cells, err := fleet.Run(jobs, cfg.fleetOpts(), fleet.Collect())
	if err != nil {
		return "", err
	}

	t := report.NewTable("Sensitivity: MakeIdle savings vs fast-dormancy cost fraction (Verizon 3G, user1)",
		"Fraction", "Savings(%)", "Switches/statusquo")
	for i, f := range fractions {
		_, results := schemeResultsFrom(cells, i*2, []fleet.Scheme{mi})
		t.AddRowf(f, results[0].SavingsPct, results[0].SwitchRatio)
	}
	return t.String(), nil
}
