package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
)

// TailSweep is the registry-era parameter study the paper's §6 implies
// but the fixed scheme list could not express: one diurnal cohort
// replayed under a grid of fixed dormancy tails (the knob Falaki et al.
// pin at 4.5 s) plus MakeIdle, every scheme built from a parameterized
// spec. Each scheme runs as its own fleet run over the identical streamed
// cohort, so rows are directly comparable and byte-reproducible at any
// worker count — the same execution shape the service's sweep jobs use.
func TailSweep(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	specs := []fleet.SchemeSpec{
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": time.Second}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": 2 * time.Second}}},
		{Policy: policy.Spec{Name: "fixedtail"}}, // the paper's 4.5 s default
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": 8 * time.Second}}},
		{Policy: policy.Spec{Name: "makeidle"}},
	}
	cohort := fleet.Cohort{
		Users:    cfg.Users,
		Seed:     cfg.Seed,
		Duration: cfg.UserDuration,
		Diurnal:  true,
	}
	prof := power.Verizon3G

	sum := fleet.NewSummary(fleet.SummaryConfig{})
	labels := make([]string, 0, len(specs))
	for _, ss := range specs {
		scheme, err := fleet.SchemeFromSpec(policy.Default(), ss)
		if err != nil {
			return "", fmt.Errorf("sweep: %w", err)
		}
		labels = append(labels, scheme.Name)
		one, err := fleet.RunSummary(cohort.Jobs(prof, []fleet.Scheme{scheme}),
			cfg.fleetOpts(), fleet.SummaryConfig{})
		if err != nil {
			return "", fmt.Errorf("sweep: scheme %s: %w", scheme.Name, err)
		}
		if err := sum.Merge(one); err != nil {
			return "", fmt.Errorf("sweep: scheme %s: %w", scheme.Name, err)
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Dormancy-tail sweep: %d diurnal users x %d schemes on %s (%s traces)\n",
		cfg.Users, len(specs), prof.Name, cfg.UserDuration)
	t := report.NewTable("per-scheme cohort aggregates (sweep order)",
		"scheme", "energy_mean_j", "savings_pct_mean", "switch_ratio_mean")
	for _, label := range labels {
		a := sum.Schemes[label]
		t.AddRowf(label, a.Energy.Mean, a.SavingsPct.Mean, a.SwitchRatio.Mean)
	}
	sb.WriteString(t.String())
	return sb.String(), nil
}
