package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/basestation"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BaseStationLoad explores the paper's §8 future work: the signaling load
// a cell sees as more fast-dormancy-triggering devices attach, and what a
// network-controlled (rate-limited) admission policy does to it. It
// reports, per fleet size, the total and peak per-minute signaling under
// always-grant and under a rate limit, plus the energy cost of the denials.
func BaseStationLoad(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	type combo struct {
		n   int
		adm basestation.AdmissionPolicy
	}
	var combos []combo
	for _, n := range []int{1, 4, 16} {
		combos = append(combos, combo{n, basestation.AlwaysGrant{}},
			combo{n, basestation.RateLimit{MaxPerWindow: 8 * n}})
	}
	results, err := fleet.Map(len(combos), cfg.fleetOpts(),
		func(i int, _ *sim.Engine) (*basestation.Result, error) {
			return cellFleet(cfg, combos[i].n, combos[i].adm)
		})
	if err != nil {
		return "", err
	}

	t := report.NewTable("Base station (future work §8): signaling vs fleet size, Verizon 3G",
		"Devices", "Admission", "Signals", "Peak/min", "Denied", "Energy(J)")
	for i, c := range combos {
		res := results[i]
		t.AddRowf(c.n, res.Admission, res.TotalSignals, res.PeakSignals(),
			res.TotalDenied, res.TotalEnergyJ())
	}
	return t.String(), nil
}

// DownlinkBufferingTrade explores §8's second future-work item: the base
// station buffering incoming traffic for idle phones. Buffering only helps
// traffic the *network* initiates (push notifications: no uplink request
// wakes the radio first), so the workload is clusters of downlink pushes —
// several apps being notified within a couple of seconds — arriving every
// ~40 s. The sweep varies the hold deadline and reports energy saved
// against the unbuffered replay and the delay imposed on pushed packets.
func DownlinkBufferingTrade(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	prof := power.Verizon3G
	tr := PushWorkload(cfg.Seed, cfg.AppDuration)

	t := report.NewTable("Base station (future work §8): downlink buffering, push workload on Verizon 3G",
		"Hold(s)", "Energy(J)", "Saved(%)", "Promotions", "Mean delay(s)", "Max delay(s)")

	mi := func() (policy.DemotePolicy, error) { return policy.NewMakeIdle(prof) }
	holds := []time.Duration{time.Millisecond, // index 0: the unbuffered baseline
		time.Second, 5 * time.Second, 10 * time.Second, 30 * time.Second}
	results, err := fleet.Map(len(holds), cfg.fleetOpts(),
		func(i int, _ *sim.Engine) (*basestation.BufferResult, error) {
			return bufferRun(prof, tr, mi, holds[i])
		})
	if err != nil {
		return "", err
	}
	base := results[0]
	for i, res := range results[1:] {
		d := metrics.Delays(res.Delays)
		saved := 100 * (base.EnergyJ - res.EnergyJ) / base.EnergyJ
		t.AddRowf(holds[i+1].Seconds(), res.EnergyJ, saved, res.Promotions,
			d.Mean.Seconds(), d.Max.Seconds())
	}
	return t.String(), nil
}

// PushWorkload generates network-initiated downlink traffic: clusters of
// 1-4 pushes (~500 B each) within ~2.5 s, clusters ~40 s apart. No uplink
// packet precedes a push, so an idle radio promotes purely to deliver it —
// the case station-side buffering can optimize.
func PushWorkload(seed int64, duration time.Duration) trace.Trace {
	r := rand.New(rand.NewSource(seed))
	var tr trace.Trace
	for t := 20 * time.Second; t < duration; t += 30*time.Second + time.Duration(r.Int63n(int64(20*time.Second))) {
		n := 1 + r.Intn(4)
		for j := 0; j < n; j++ {
			off := time.Duration(float64(j) * (0.4 + r.Float64()) * float64(time.Second))
			tr = append(tr, trace.Packet{T: t + off, Dir: trace.In, Size: 300 + r.Intn(600)})
		}
	}
	tr.Sort()
	return tr
}

func bufferRun(prof power.Profile, tr trace.Trace, mk func() (policy.DemotePolicy, error), hold time.Duration) (*basestation.BufferResult, error) {
	d, err := mk()
	if err != nil {
		return nil, err
	}
	return basestation.DownlinkBuffering(prof, tr, d, basestation.BufferPolicy{Hold: hold})
}

// LifetimeEstimate reproduces the paper's concluding arithmetic: the
// measured per-carrier MakeIdle savings translated into battery-lifetime
// gains on a Nexus-S-class battery, assuming the radio accounts for the
// 2G-vs-3G talk-time difference.
func LifetimeEstimate(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	t := report.NewTable("Conclusion estimate: battery lifetime gained (Nexus S class battery)",
		"Carrier", "MakeIdle saved(%)", "Gain(h)", "+MakeActive saved(%)", "Gain(h)")
	b := metrics.NexusS
	// Total draw calibrated to the Nexus S "up to 6h40m on 3G" figure;
	// the radio's share to the 2G/14h vs 3G/6.7h gap.
	totalMW := b.EnergyJ() / (6.7 * 3600) * 1000
	const radioShare = 0.52
	for _, prof := range power.Carriers() {
		savings, _, err := CarrierResults(prof, cfg)
		if err != nil {
			return "", err
		}
		mi := savings[SchemeMakeIdle]
		comb := savings[SchemeCombLearn]
		t.AddRowf(prof.Name,
			mi, b.LifetimeGain(totalMW, radioShare, mi).Hours(),
			comb, b.LifetimeGain(totalMW, radioShare, comb).Hours())
	}
	return t.String(), nil
}

// cellFleet simulates n MakeIdle devices with staggered user mixes.
func cellFleet(cfg Config, n int, adm basestation.AdmissionPolicy) (*basestation.Result, error) {
	users := workload.Verizon3GUsers()
	prof := power.Verizon3G
	var devices []basestation.Device
	for i := 0; i < n; i++ {
		u := users[i%len(users)]
		tr := u.Generate(cfg.Seed+int64(i)*104729, cfg.UserDuration)
		mi, err := policy.NewMakeIdle(prof)
		if err != nil {
			return nil, err
		}
		devices = append(devices, basestation.Device{
			Name:   fmt.Sprintf("%s-%d", u.Name, i),
			Trace:  tr,
			Demote: mi,
		})
	}
	return basestation.Simulate(prof, devices, adm, time.Minute)
}
