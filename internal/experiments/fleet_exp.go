package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/fleet"
	"repro/internal/power"
)

// FleetReplay is the fleet-scale extension: it replays a whole synthetic
// population — cfg.Users diurnal users, mixes cycled from the study cohort —
// under MakeIdle and the combined method on the fleet runtime, reducing
// into mergeable streaming aggregates. No per-user result is retained: the
// run's live state is one accumulator per shard plus one engine per worker,
// which is what lets the same code path scale to the ROADMAP's
// millions-of-users populations. Same seed, any worker count: identical
// numbers.
func FleetReplay(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	cohort := fleet.Cohort{
		Users:    cfg.Users,
		Seed:     cfg.Seed,
		Duration: cfg.UserDuration,
		Diurnal:  true,
	}
	prof := power.Verizon3G
	schemes := []fleet.Scheme{fleet.MakeIdleScheme(), fleet.CombinedScheme()}
	jobs := cohort.Jobs(prof, schemes)

	// Diurnal user traces land in the hundreds of joules at the default
	// 4 h duration; 25 J bins keep the printed distribution readable.
	sum, err := fleet.RunSummary(jobs, cfg.fleetOpts(), fleet.SummaryConfig{EnergyMaxJ: 2000, Bins: 80})
	if err != nil {
		return "", err
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet replay: %d diurnal users x %d schemes on %s (%s traces, %d workers)\n",
		cfg.Users, len(schemes), prof.Name, cfg.UserDuration, workers)
	sb.WriteString(sum.String())
	if mi := sum.Schemes["MakeIdle"]; mi != nil && mi.EnergyHist.Count() > 0 {
		sb.WriteString("\nper-user energy distribution, MakeIdle (J):\n")
		sb.WriteString(mi.EnergyHist.String())
	}
	return sb.String(), nil
}
