package experiments

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func TestClusteredSessions(t *testing.T) {
	tr := ClusteredSessions(1, time.Hour)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty clustered-session trace")
	}
	// Groups ~40 s apart: burst count at 5 s segmentation should be close
	// to duration/40s.
	groups := tr.Bursts(5 * time.Second)
	if len(groups) < 50 || len(groups) > 110 {
		t.Fatalf("got %d groups over an hour, want ~80", len(groups))
	}
	// Within a group, everything fits in a few seconds.
	for _, g := range groups {
		if g.Span() > 12*time.Second {
			t.Fatalf("group spans %v, want clustered", g.Span())
		}
	}
}

func TestPushWorkloadIsDownlinkOnly(t *testing.T) {
	tr := PushWorkload(2, time.Hour)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty push workload")
	}
	for _, p := range tr {
		if p.Dir != trace.In {
			t.Fatalf("push workload contains uplink packet: %+v", p)
		}
		if p.Size < 300 || p.Size > 900 {
			t.Fatalf("push size %d outside [300,900)", p.Size)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := PushWorkload(5, 30*time.Minute)
	b := PushWorkload(5, 30*time.Minute)
	if len(a) != len(b) {
		t.Fatal("PushWorkload not deterministic")
	}
	c := ClusteredSessions(5, 30*time.Minute)
	d := ClusteredSessions(5, 30*time.Minute)
	if len(c) != len(d) {
		t.Fatal("ClusteredSessions not deterministic")
	}
	for i := range c {
		if c[i] != d[i] {
			t.Fatal("ClusteredSessions packets differ")
		}
	}
}
