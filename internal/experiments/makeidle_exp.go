package experiments

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// ConfusionFor runs one demote policy over a trace and scores its per-gap
// decisions against the Oracle ground truth (the §6.3 methodology).
func ConfusionFor(tr trace.Trace, prof power.Profile, d policy.DemotePolicy) (metrics.Confusion, error) {
	r, err := sim.Run(tr, prof, d, nil, &sim.Options{RecordDecisions: true})
	if err != nil {
		return metrics.Confusion{}, err
	}
	th := energy.Threshold(&prof)
	return metrics.Score(r.Decisions, th), nil
}

// confusionPolicies are the three §6.3 policies as fleet schemes.
func confusionPolicies() []fleet.Scheme {
	all := FleetSchemes(0)
	return []fleet.Scheme{all[0], all[1], all[2]} // 4.5-second, 95% IAT, MakeIdle
}

// confusionTable renders FP/FN per user for the three §6.3 policies. Each
// (user × policy) decision-recording replay is a fleet job; the Oracle
// scoring runs in the fold and only the confusion counts survive.
func confusionTable(title string, users []workload.User, prof power.Profile, cfg Config) (string, error) {
	traces, seeds := userTraces(users, cfg.Seed, cfg.UserDuration)
	schemes := confusionPolicies()
	opts := &sim.Options{RecordDecisions: true}
	var jobs []fleet.Job
	for t := range traces {
		for _, s := range schemes {
			jobs = append(jobs, fleet.Job{
				Seed:    seeds[t],
				Trace:   traces[t],
				Profile: prof,
				Scheme:  s.Name,
				Demote:  s.Demote,
				Opts:    opts,
			})
		}
	}
	th := energy.Threshold(&prof)
	scores := fleet.Accumulator[map[int]metrics.Confusion]{
		New: func() map[int]metrics.Confusion { return map[int]metrics.Confusion{} },
		Fold: func(m map[int]metrics.Confusion, out fleet.Outcome) map[int]metrics.Confusion {
			m[out.Index] = metrics.Score(out.Result.Decisions, th)
			return m
		},
		Merge: func(a, b map[int]metrics.Confusion) map[int]metrics.Confusion {
			for k, v := range b {
				a[k] = v
			}
			return a
		},
	}
	cells, err := fleet.Run(jobs, cfg.fleetOpts(), scores)
	if err != nil {
		return "", fmt.Errorf("%s: %w", title, err)
	}

	t := report.NewTable(title,
		"User", "4.5-sec FP", "4.5-sec FN", "95% IAT FP", "95% IAT FN", "MakeIdle FP", "MakeIdle FN")
	for i, u := range users {
		row := []interface{}{u.Name}
		for j := range schemes {
			c := cells[i*len(schemes)+j]
			row = append(row, c.FalsePositiveRate(), c.FalseNegativeRate())
		}
		t.AddRowf(row...)
	}
	return t.String(), nil
}

// Fig12 regenerates Figure 12: false switches (FP) and missed switches
// (FN) per user, for Verizon 3G and LTE.
func Fig12(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	a, err := confusionTable("Figure 12(a): false/missed switches (%), Verizon 3G",
		workload.Verizon3GUsers(), power.Verizon3G, cfg)
	if err != nil {
		return "", err
	}
	b, err := confusionTable("Figure 12(b): false/missed switches (%), Verizon LTE",
		workload.VerizonLTEUsers(), power.VerizonLTE, cfg)
	if err != nil {
		return "", err
	}
	return a + "\n" + b, nil
}

// WindowSweep computes MakeIdle's FP/FN rates as a function of the sliding
// window size n (Figure 13), one fleet worker per window size.
func WindowSweep(tr trace.Trace, prof power.Profile, sizes []int, fopts fleet.Options) (*report.Table, error) {
	th := energy.Threshold(&prof)
	confusions, err := fleet.Map(len(sizes), fopts,
		func(i int, engine *sim.Engine) (metrics.Confusion, error) {
			mi, err := policy.NewMakeIdle(prof, policy.WithWindowSize(sizes[i]))
			if err != nil {
				return metrics.Confusion{}, err
			}
			r, err := engine.Run(tr, prof, mi, nil, &sim.Options{RecordDecisions: true})
			if err != nil {
				return metrics.Confusion{}, err
			}
			return metrics.Score(r.Decisions, th), nil
		})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 13: MakeIdle FP/FN vs window size n",
		"n", "FP(%)", "FN(%)")
	for i, n := range sizes {
		t.AddRowf(n, confusions[i].FalsePositiveRate(), confusions[i].FalseNegativeRate())
	}
	return t, nil
}

// Fig13 regenerates Figure 13 on the first Verizon 3G user.
func Fig13(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	t, err := WindowSweep(tr, power.Verizon3G, []int{10, 25, 50, 100, 200, 400}, cfg.fleetOpts())
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// TwaitTrajectory runs MakeIdle over a trace and returns the chosen waits
// over time (Figure 14). Gaps where MakeIdle deferred to the timers are
// omitted, as in the paper's plot of dynamic waiting times.
func TwaitTrajectory(tr trace.Trace, prof power.Profile, span time.Duration) (*report.Series, error) {
	mi, err := policy.NewMakeIdle(prof)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(tr, prof, mi, nil, &sim.Options{RecordDecisions: true})
	if err != nil {
		return nil, err
	}
	s := &report.Series{
		Name:   fmt.Sprintf("t_wait over time (%s)", prof.Name),
		XLabel: "time(s)",
		YLabel: "t_wait(s)",
	}
	for _, d := range r.Decisions {
		if span > 0 && d.At > span {
			break
		}
		if d.Wait == policy.Never {
			continue
		}
		s.Add(d.At.Seconds(), d.Wait.Seconds())
	}
	return s, nil
}

// Fig14 regenerates Figure 14: the first ten minutes of a Verizon 3G
// user's t_wait trajectory.
func Fig14(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	u := workload.Verizon3GUsers()[0]
	tr := u.Generate(cfg.Seed, cfg.UserDuration)
	s, err := TwaitTrajectory(tr, power.Verizon3G, 10*time.Minute)
	if err != nil {
		return "", err
	}
	return s.String(), nil
}
