package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/workload"
)

// This file is the experiments-layer face of the sweep grid: the same
// execution shape the service's grid jobs use — one deterministic fleet
// run per scheme × profile × cohort cell, cohort-major order — driven
// directly on the fleet runtime. The cross-carrier figures (17/18) and
// the grid experiment are built on it.

// LabeledCohort pairs a runnable cohort with its grid axis label.
type LabeledCohort struct {
	Cohort fleet.Cohort
	Label  string
}

// CohortFor resolves a cohort spec against the default registry, rooted
// at the experiment seed.
func CohortFor(cs fleet.CohortSpec, seed int64) (LabeledCohort, error) {
	cohort, err := fleet.CohortFromSpec(workload.Cohorts(), cs, seed, nil)
	if err != nil {
		return LabeledCohort{}, err
	}
	label, err := cs.ResolvedLabel(workload.Cohorts())
	if err != nil {
		return LabeledCohort{}, err
	}
	return LabeledCohort{Cohort: cohort, Label: label}, nil
}

// GridCells executes the cross product cohort-major (then profile, then
// scheme), one independent fleet run per cell over the cell's streamed
// cohort — so every cell's summary is byte-identical to a single-axis run
// of the same cell, at any worker count.
func GridCells(fopts fleet.Options, cohorts []LabeledCohort, profs []power.Profile, schemes []fleet.Scheme) ([]report.GridCell, error) {
	cells := make([]report.GridCell, 0, len(cohorts)*len(profs)*len(schemes))
	for _, lc := range cohorts {
		for _, prof := range profs {
			for _, s := range schemes {
				sum, err := fleet.RunSummary(lc.Cohort.Jobs(prof, []fleet.Scheme{s}),
					fopts, fleet.SummaryConfig{})
				if err != nil {
					return nil, fmt.Errorf("cell %s/%s/%s: %w", s.Name, prof.Name, lc.Label, err)
				}
				cells = append(cells, report.GridCell{
					Scheme: s.Name, Profile: prof.Name, Cohort: lc.Label, Summary: sum,
				})
			}
		}
	}
	return cells, nil
}

// GridSweep is the registry-era three-axis parameter study: a grid of
// dormancy schemes × carrier profiles (one a parameterized what-if: the
// paper's LTE carrier with its timer halved) × cohort families, every
// axis value a spec resolved against its registry — the §6.5
// cross-carrier question generalized to arbitrary carrier and workload
// hypotheticals, exactly as the service's grid jobs run it.
func GridSweep(cfg Config) (string, error) {
	cfg = cfg.withDefaults()

	schemes, err := schemesFromSpecs([]fleet.SchemeSpec{
		{Label: SchemeFourFive, Policy: policy.Spec{Name: "4.5s"}},
		{Label: SchemeMakeIdle, Policy: policy.Spec{Name: "makeidle"}},
	})
	if err != nil {
		return "", fmt.Errorf("grid: %w", err)
	}

	profSpecs := []power.ProfileSpec{
		{Name: "verizon-3g"},
		{Name: "verizon-lte"},
		{Name: "verizon-lte", Params: map[string]any{"t1": "5s"}},
	}
	profs := make([]power.Profile, 0, len(profSpecs))
	for _, ps := range profSpecs {
		prof, err := ps.Profile(power.Default())
		if err != nil {
			return "", fmt.Errorf("grid: %w", err)
		}
		profs = append(profs, prof)
	}

	dur := cfg.UserDuration.String()
	cohortSpecs := []fleet.CohortSpec{
		{Name: "study-3g", Params: map[string]any{"users": cfg.Users, "duration": dur}},
		{Name: "mix", Params: map[string]any{"users": cfg.Users, "duration": dur, "im": 2, "email": 1}},
	}
	cohorts := make([]LabeledCohort, 0, len(cohortSpecs))
	for _, cs := range cohortSpecs {
		lc, err := CohortFor(cs, cfg.Seed)
		if err != nil {
			return "", fmt.Errorf("grid: %w", err)
		}
		cohorts = append(cohorts, lc)
	}

	cells, err := GridCells(cfg.fleetOpts(), cohorts, profs, schemes)
	if err != nil {
		return "", fmt.Errorf("grid: %w", err)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Sweep grid: %d schemes x %d profiles x %d cohorts = %d cells (seed %d)\n",
		len(schemes), len(profs), len(cohorts), len(cells), cfg.Seed)
	sb.WriteString(report.GridTable(cells).String())
	return sb.String(), nil
}

// schemesFromSpecs resolves scheme specs through the default policy
// registry.
func schemesFromSpecs(specs []fleet.SchemeSpec) ([]fleet.Scheme, error) {
	schemes := make([]fleet.Scheme, 0, len(specs))
	for _, ss := range specs {
		s, err := fleet.SchemeFromSpec(policy.Default(), ss)
		if err != nil {
			return nil, err
		}
		schemes = append(schemes, s)
	}
	return schemes, nil
}
