package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DelayComparison runs MakeIdle with both MakeActive variants on one trace
// and returns the batching-delay statistics for each (Figure 15's bars).
func DelayComparison(tr trace.Trace, prof power.Profile) (learn, fixed metrics.DelayStats, err error) {
	miL, err := policy.NewMakeIdle(prof)
	if err != nil {
		return learn, fixed, err
	}
	rl, err := sim.Run(tr, prof, miL, policy.NewLearnedDelay(), nil)
	if err != nil {
		return learn, fixed, err
	}
	miF, err := policy.NewMakeIdle(prof)
	if err != nil {
		return learn, fixed, err
	}
	rf, err := sim.Run(tr, prof, miF, policy.NewFixedDelay(tr, &prof, time.Second), nil)
	if err != nil {
		return learn, fixed, err
	}
	return metrics.Delays(rl.BurstDelays), metrics.Delays(rf.BurstDelays), nil
}

// delayStatsAccumulator folds each outcome's burst delays into exact
// per-job DelayStats and drops the result — nothing else survives.
func delayStatsAccumulator() fleet.Accumulator[map[int]metrics.DelayStats] {
	return fleet.Accumulator[map[int]metrics.DelayStats]{
		New: func() map[int]metrics.DelayStats { return map[int]metrics.DelayStats{} },
		Fold: func(m map[int]metrics.DelayStats, out fleet.Outcome) map[int]metrics.DelayStats {
			m[out.Index] = metrics.Delays(out.Result.BurstDelays)
			return m
		},
		Merge: func(a, b map[int]metrics.DelayStats) map[int]metrics.DelayStats {
			for k, v := range b {
				a[k] = v
			}
			return a
		},
	}
}

// delayTable renders Fig. 15 for one user cohort: one fleet job per
// (user × MakeActive variant).
func delayTable(title string, users []workload.User, prof power.Profile, cfg Config) (string, error) {
	traces, seeds := userTraces(users, cfg.Seed, cfg.UserDuration)
	variants := []fleet.Scheme{
		{Name: "learn", Demote: fleet.MakeIdleScheme().Demote,
			Active: func(trace.Trace, power.Profile) (policy.ActivePolicy, error) {
				return policy.NewLearnedDelay(), nil
			}},
		{Name: "fixed", Demote: fleet.MakeIdleScheme().Demote,
			Active: func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error) {
				return policy.NewFixedDelay(tr, &prof, time.Second), nil
			}},
	}
	var jobs []fleet.Job
	for t := range traces {
		for _, v := range variants {
			jobs = append(jobs, fleet.Job{
				Seed: seeds[t], Trace: traces[t], Profile: prof,
				Scheme: v.Name, Demote: v.Demote, Active: v.Active,
			})
		}
	}
	cells, err := fleet.Run(jobs, cfg.fleetOpts(), delayStatsAccumulator())
	if err != nil {
		return "", fmt.Errorf("%s: %w", title, err)
	}

	t := report.NewTable(title,
		"User", "Learning mean(s)", "Learning median(s)", "Fixed mean(s)", "Fixed median(s)")
	for i, u := range users {
		learn, fixed := cells[i*2], cells[i*2+1]
		t.AddRowf(u.Name,
			learn.Mean.Seconds(), learn.Median.Seconds(),
			fixed.Mean.Seconds(), fixed.Median.Seconds())
	}
	return t.String(), nil
}

// Fig15 regenerates Figure 15: mean and median burst delays under the
// learning and fixed-bound MakeActive variants, per user, both networks.
func Fig15(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	a, err := delayTable("Figure 15(a): burst delays, Verizon 3G",
		workload.Verizon3GUsers(), power.Verizon3G, cfg)
	if err != nil {
		return "", err
	}
	b, err := delayTable("Figure 15(b): burst delays, Verizon LTE",
		workload.VerizonLTEUsers(), power.VerizonLTE, cfg)
	if err != nil {
		return "", err
	}
	return a + "\n" + b, nil
}

// LearningCurve runs MakeIdle+LearnedDelay over a trace and returns the
// per-episode learned delay and buffered-burst count (Figure 16).
func LearningCurve(tr trace.Trace, prof power.Profile, maxEpisodes int) (*report.Table, error) {
	mi, err := policy.NewMakeIdle(prof)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(tr, prof, mi, policy.NewLearnedDelay(), &sim.Options{RecordEpisodes: true})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 16: learned delay and buffered bursts per iteration",
		"Iteration", "Delay(s)", "Buffered bursts")
	for i, ep := range r.EpisodeLog {
		if maxEpisodes > 0 && i >= maxEpisodes {
			break
		}
		t.AddRowf(i+1, ep.Delay.Seconds(), ep.Buffered)
	}
	return t, nil
}

// Fig16 regenerates Figure 16. The paper's dynamic — the learned delay
// falling as buffered bursts accumulate — appears when several sessions
// start close together (multiple apps waking at once, e.g. on a push
// notification), so buffering a couple of seconds batches them all and any
// longer delay is pure cost. ClusteredSessions generates exactly that
// shape: groups of 2-4 bursts within ~2.5 s, groups ~40 s apart.
func Fig16(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	tr := ClusteredSessions(cfg.Seed, cfg.UserDuration)
	t, err := LearningCurve(tr, power.Verizon3G, 30)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// ClusteredSessions builds the Fig. 16 workload: session groups in which
// 2-4 bursts arrive within a couple of seconds of each other, separated by
// idle stretches long enough for the radio to sleep.
func ClusteredSessions(seed int64, duration time.Duration) trace.Trace {
	r := rand.New(rand.NewSource(seed))
	shape := workload.BurstShape{ReqBytes: 300, RespBytes: 2000, RespJitter: 0.3}
	var tr trace.Trace
	for t := 30 * time.Second; t < duration; t += 35*time.Second + time.Duration(r.Int63n(int64(10*time.Second))) {
		n := 2 + r.Intn(3)
		for j := 0; j < n; j++ {
			off := time.Duration(float64(j) * (0.5 + r.Float64()) * float64(time.Second))
			tr, _ = shape.Emit(r, tr, t+off)
		}
	}
	tr.Sort()
	return tr
}

// Table3 regenerates Table 3: mean and median session delays introduced by
// the combined method, per carrier, pooled over the user cohort. Every
// (carrier × user) replay is a fleet job; delays pool into a mergeable
// stream + histogram per carrier, so no per-user delay list is retained
// (the median is the histogram quantile at 50 ms resolution).
func Table3(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	users := workload.Verizon3GUsers()
	traces, seeds := userTraces(users, cfg.Seed, cfg.UserDuration)
	carriers := power.Carriers()

	comb := fleet.CombinedScheme()
	var jobs []fleet.Job
	for _, prof := range carriers {
		for t := range traces {
			jobs = append(jobs, fleet.Job{
				Seed: seeds[t], Trace: traces[t], Profile: prof,
				Scheme: prof.Name, Demote: comb.Demote, Active: comb.Active,
			})
		}
	}
	sum, err := fleet.RunSummary(jobs, cfg.fleetOpts(),
		fleet.SummaryConfig{DelayMaxS: 30, Bins: 600})
	if err != nil {
		return "", fmt.Errorf("tab3: %w", err)
	}

	t := report.NewTable("Table 3: session delays from MakeActive per carrier (seconds)",
		"Network", "Mean Delay", "Median Delay")
	for _, prof := range carriers {
		a := sum.Schemes[prof.Name]
		t.AddRowf(prof.Name, a.BurstDelay.Mean, a.DelayHist.Quantile(0.5))
	}
	return t.String(), nil
}
