package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// DelayComparison runs MakeIdle with both MakeActive variants on one trace
// and returns the batching-delay statistics for each (Figure 15's bars).
func DelayComparison(tr trace.Trace, prof power.Profile) (learn, fixed metrics.DelayStats, err error) {
	miL, err := policy.NewMakeIdle(prof)
	if err != nil {
		return learn, fixed, err
	}
	rl, err := sim.Run(tr, prof, miL, policy.NewLearnedDelay(), nil)
	if err != nil {
		return learn, fixed, err
	}
	miF, err := policy.NewMakeIdle(prof)
	if err != nil {
		return learn, fixed, err
	}
	rf, err := sim.Run(tr, prof, miF, policy.NewFixedDelay(tr, &prof, time.Second), nil)
	if err != nil {
		return learn, fixed, err
	}
	return metrics.Delays(rl.BurstDelays), metrics.Delays(rf.BurstDelays), nil
}

// delayTable renders Fig. 15 for one user cohort.
func delayTable(title string, users []workload.User, prof power.Profile, cfg Config) (string, error) {
	t := report.NewTable(title,
		"User", "Learning mean(s)", "Learning median(s)", "Fixed mean(s)", "Fixed median(s)")
	for i, u := range users {
		tr := u.Generate(cfg.Seed+int64(i)*7919, cfg.UserDuration)
		learn, fixed, err := DelayComparison(tr, prof)
		if err != nil {
			return "", fmt.Errorf("%s %s: %w", title, u.Name, err)
		}
		t.AddRowf(u.Name,
			learn.Mean.Seconds(), learn.Median.Seconds(),
			fixed.Mean.Seconds(), fixed.Median.Seconds())
	}
	return t.String(), nil
}

// Fig15 regenerates Figure 15: mean and median burst delays under the
// learning and fixed-bound MakeActive variants, per user, both networks.
func Fig15(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	a, err := delayTable("Figure 15(a): burst delays, Verizon 3G",
		workload.Verizon3GUsers(), power.Verizon3G, cfg)
	if err != nil {
		return "", err
	}
	b, err := delayTable("Figure 15(b): burst delays, Verizon LTE",
		workload.VerizonLTEUsers(), power.VerizonLTE, cfg)
	if err != nil {
		return "", err
	}
	return a + "\n" + b, nil
}

// LearningCurve runs MakeIdle+LearnedDelay over a trace and returns the
// per-episode learned delay and buffered-burst count (Figure 16).
func LearningCurve(tr trace.Trace, prof power.Profile, maxEpisodes int) (*report.Table, error) {
	mi, err := policy.NewMakeIdle(prof)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run(tr, prof, mi, policy.NewLearnedDelay(), &sim.Options{RecordEpisodes: true})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 16: learned delay and buffered bursts per iteration",
		"Iteration", "Delay(s)", "Buffered bursts")
	for i, ep := range r.EpisodeLog {
		if maxEpisodes > 0 && i >= maxEpisodes {
			break
		}
		t.AddRowf(i+1, ep.Delay.Seconds(), ep.Buffered)
	}
	return t, nil
}

// Fig16 regenerates Figure 16. The paper's dynamic — the learned delay
// falling as buffered bursts accumulate — appears when several sessions
// start close together (multiple apps waking at once, e.g. on a push
// notification), so buffering a couple of seconds batches them all and any
// longer delay is pure cost. ClusteredSessions generates exactly that
// shape: groups of 2-4 bursts within ~2.5 s, groups ~40 s apart.
func Fig16(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	tr := ClusteredSessions(cfg.Seed, cfg.UserDuration)
	t, err := LearningCurve(tr, power.Verizon3G, 30)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// ClusteredSessions builds the Fig. 16 workload: session groups in which
// 2-4 bursts arrive within a couple of seconds of each other, separated by
// idle stretches long enough for the radio to sleep.
func ClusteredSessions(seed int64, duration time.Duration) trace.Trace {
	r := rand.New(rand.NewSource(seed))
	shape := workload.BurstShape{ReqBytes: 300, RespBytes: 2000, RespJitter: 0.3}
	var tr trace.Trace
	for t := 30 * time.Second; t < duration; t += 35*time.Second + time.Duration(r.Int63n(int64(10*time.Second))) {
		n := 2 + r.Intn(3)
		for j := 0; j < n; j++ {
			off := time.Duration(float64(j) * (0.5 + r.Float64()) * float64(time.Second))
			tr, _ = shape.Emit(r, tr, t+off)
		}
	}
	tr.Sort()
	return tr
}

// Table3 regenerates Table 3: mean and median session delays introduced by
// the combined method, per carrier, averaged over the user cohort.
func Table3(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	t := report.NewTable("Table 3: session delays from MakeActive per carrier (seconds)",
		"Network", "Mean Delay", "Median Delay")
	users := workload.Verizon3GUsers()
	traces := userTraces(users, cfg.Seed, cfg.UserDuration)
	for _, prof := range power.Carriers() {
		var all []time.Duration
		for _, tr := range traces {
			mi, err := policy.NewMakeIdle(prof)
			if err != nil {
				return "", err
			}
			r, err := sim.Run(tr, prof, mi, policy.NewLearnedDelay(), nil)
			if err != nil {
				return "", fmt.Errorf("tab3 %s: %w", prof.Name, err)
			}
			all = append(all, r.BurstDelays...)
		}
		s := metrics.Delays(all)
		t.AddRowf(prof.Name, s.Mean.Seconds(), s.Median.Seconds())
	}
	return t.String(), nil
}
