package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/energy"
	"repro/internal/fleet"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/rrc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table1 renders the send/receive power inputs (Table 1 of the paper; the
// full per-carrier set lives in Table 2).
func Table1(Config) (string, error) {
	t := report.NewTable("Table 1: average bulk-transfer power (mW)",
		"Network", "Sending Power (mW)", "Receiving Power (mW)")
	for _, p := range []power.Profile{power.ATTHSPAPlus, power.VerizonLTE} {
		t.AddRowf(p.Name, p.SendMW, p.RecvMW)
	}
	return t.String(), nil
}

// Table2 renders the full carrier parameter set (Table 2), plus the derived
// quantities our model adds (Eswitch, t_threshold).
func Table2(Config) (string, error) {
	t := report.NewTable("Table 2: power and inactivity timer values",
		"Network", "Psnd(mW)", "Prcv(mW)", "Pt1(mW)", "Pt2(mW)", "t1(s)", "t2(s)",
		"Eswitch(J)", "t_threshold(s)")
	for _, p := range power.Carriers() {
		p := p
		t.AddRowf(p.Name, p.SendMW, p.RecvMW, p.T1MW, p.T2MW,
			p.T1.Seconds(), p.T2.Seconds(), p.SwitchJ(), energy.Threshold(&p).Seconds())
	}
	return t.String(), nil
}

// Fig1 regenerates Figure 1: the fraction of 3G interface energy spent in
// each radio state, per application, under the status quo (AT&T profile,
// matching the paper's HTC measurements). One fleet job per application.
func Fig1(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	apps := workload.Apps()
	breakdowns, err := fleet.Map(len(apps), cfg.fleetOpts(),
		func(i int, engine *sim.Engine) (energy.Breakdown, error) {
			tr := workload.Generate(apps[i], cfg.Seed+int64(i), cfg.AppDuration)
			r, err := engine.Run(tr, power.ATTHSPAPlus, policy.StatusQuo{}, nil, nil)
			if err != nil {
				return energy.Breakdown{}, fmt.Errorf("fig1 %s: %w", apps[i].Name(), err)
			}
			return r.Breakdown, nil
		})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Figure 1: energy consumed by the 3G interface (% of total, status quo, AT&T HSPA+)",
		"Application", "Data(%)", "DCH Timer(%)", "FACH Timer(%)", "State Switch(%)")
	for i, app := range apps {
		data, t1, t2, sw := breakdowns[i].Fractions()
		t.AddRowf(app.Name(), 100*data, 100*t1, 100*t2, 100*sw)
	}
	return t.String(), nil
}

// Fig3 regenerates Figure 3: the radio power level over time across one
// transmit-then-tail cycle, for AT&T 3G and Verizon LTE. The timeline is
// derived from the RRC machine's transition log plus the profile's state
// powers — the synthetic analogue of the paper's Monsoon capture.
func Fig3(cfg Config) (string, error) {
	var sb strings.Builder
	for _, prof := range []power.Profile{power.ATTHSPAPlus, power.VerizonLTE} {
		series, err := PowerTimeline(prof, 2*time.Second)
		if err != nil {
			return "", err
		}
		sb.WriteString(series.String())
		sb.WriteByte('\n')
	}
	return sb.String(), nil
}

// PowerTimeline simulates a single data burst of the given length followed
// by the full timer tail, and returns the stepwise power level (mW) over
// time. Each transition contributes a step point.
func PowerTimeline(prof power.Profile, burst time.Duration) (*report.Series, error) {
	m, err := rrc.New(prof, true)
	if err != nil {
		return nil, err
	}
	s := &report.Series{
		Name:   fmt.Sprintf("power timeline: %s", prof.Name),
		XLabel: "time(s)",
		YLabel: "power(mW)",
	}
	// Idle before the burst.
	s.Add(0, 0)
	// Burst: the radio is promoted and transmits at send power.
	m.OnPacket(time.Second)
	s.Add(1, prof.SendMW)
	end := time.Second + burst
	m.OnPacket(end)
	s.Add(end.Seconds(), prof.SendMW)
	// Transmission over: power falls to the Active-tail level.
	s.Add(end.Seconds(), prof.T1MW)
	// Tail: walk the machine through the timers and emit steps from the
	// transition log.
	m.AdvanceTo(end + prof.Tail() + 2*time.Second)
	for _, tr := range m.Log() {
		if tr.At < end {
			continue
		}
		var mw float64
		switch tr.To {
		case rrc.DCH:
			mw = prof.T1MW
		case rrc.FACH:
			mw = prof.T2MW
		case rrc.Idle:
			mw = 0
		}
		s.Add(tr.At.Seconds(), mw)
	}
	return s, nil
}

// Fig8 regenerates Figure 8: the error of the per-second energy model
// against an independently integrated "measurement".
//
// The paper compared its model with Monsoon power-monitor readings of TCP
// bulk transfers (10 kB, 100 kB, 1000 kB; five runs each) and found errors
// within 10%. Without hardware, the measurement is simulated: the ground
// truth integrates the RRC state timeline at fine granularity with
// per-packet transmission power and multiplicative measurement noise, while
// the estimate is the coarse per-packet model used everywhere else
// (DESIGN.md documents the substitution).
func Fig8(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	type trial struct {
		prof power.Profile
		kb   int
		run  int
	}
	var trials []trial
	for _, prof := range []power.Profile{power.Verizon3G, power.VerizonLTE} {
		for _, kb := range []int{10, 100, 1000} {
			for run := 0; run < 5; run++ {
				trials = append(trials, trial{prof, kb, run})
			}
		}
	}
	errVals, err := fleet.Map(len(trials), cfg.fleetOpts(),
		func(i int, _ *sim.Engine) (float64, error) {
			tc := trials[i]
			seed := cfg.Seed + int64(tc.kb)*10 + int64(tc.run)
			return EnergyModelError(tc.prof, tc.kb*1000, seed)
		})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Figure 8: simulation energy error (estimate vs synthetic measurement)",
		"Network", "Transfer", "Run", "Error")
	for i, tc := range trials {
		t.AddRowf(tc.prof.Name, fmt.Sprintf("%dkB", tc.kb), tc.run+1, errVals[i])
	}
	out := t.String()
	out += fmt.Sprintf("\nmean |error| = %.3f (paper: within 0.10)\n", metrics.MeanAbs(errVals))
	return out, nil
}

// EnergyModelError runs one Fig. 8 trial: a TCP bulk transfer of the given
// size, estimated by the simulator's coarse model and "measured" by
// fine-grained timeline integration with seeded noise. It returns the
// relative error.
func EnergyModelError(prof power.Profile, bytes int, seed int64) (float64, error) {
	r := rand.New(rand.NewSource(seed))
	uplink := r.Intn(2) == 0
	rate := prof.DownlinkMbps
	if uplink {
		rate = prof.UplinkMbps
	}
	tr := workload.Bulk(r, 0, bytes, uplink, rate, 1400)

	// Estimate: the engine's per-packet model.
	res, err := sim.Run(tr, prof, policy.StatusQuo{}, nil, nil)
	if err != nil {
		return 0, err
	}
	estimate := res.TotalJ()

	// "Measurement": integrate the power timeline directly.
	measured, err := integrateTimeline(prof, tr)
	if err != nil {
		return 0, err
	}
	// Measurement noise: +/- up to ~5% multiplicative (Monsoon-class
	// accuracy plus run-to-run device variation).
	measured *= 1 + 0.05*(2*r.Float64()-1)
	return metrics.RelativeError(estimate, measured), nil
}

// integrateTimeline computes the trace's energy by walking the RRC machine
// and integrating state power residencies plus per-packet transmission
// energy — an accounting independent of the sim engine's gap-based model.
func integrateTimeline(prof power.Profile, tr trace.Trace) (float64, error) {
	m, err := rrc.New(prof, false)
	if err != nil {
		return 0, err
	}
	var txJ float64
	var txTime time.Duration
	for _, p := range tr {
		m.OnPacket(p.T)
		txJ += energy.TxJ(&prof, p.Size, p.Dir == trace.Out)
		txTime += prof.TxTime(p.Size, p.Dir == trace.Out)
	}
	m.AdvanceTo(tr.Duration() + prof.Tail() + time.Second)
	// State residency energy: DCH residency is charged at tail power;
	// subtract the transmission time already charged at full power to
	// avoid double-counting the radio's base draw during transmission.
	dch := m.Residency(rrc.DCH) - txTime
	if dch < 0 {
		dch = 0
	}
	tailJ := dch.Seconds()*prof.T1MW/1000 + m.Residency(rrc.FACH).Seconds()*prof.T2MW/1000
	// Promotions and demotions.
	swJ := float64(m.Promotions())*prof.PromotionJ() + float64(m.Demotions())*prof.DormancyJ()
	return txJ + tailJ + swJ, nil
}
