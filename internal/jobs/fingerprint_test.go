package jobs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
)

func sweepSpec(schemes ...fleet.SchemeSpec) Spec {
	return Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute), Schemes: schemes}
}

// TestFingerprintStableAcrossParamEncodings: the v3 fingerprint hashes
// canonical scheme encodings, so every way of writing the same sweep —
// alias vs canonical name, omitted vs explicit defaults, string vs
// numeric parameter forms, any param-map construction order — produces
// one fingerprint.
func TestFingerprintStableAcrossParamEncodings(t *testing.T) {
	want := sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail"}}).Fingerprint()
	equivalents := []fleet.SchemeSpec{
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4.5s"}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4500ms"}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": 4500 * time.Millisecond}}},
		{Policy: policy.Spec{Name: "fixedtail"}, Active: &policy.Spec{Name: "none"}},
		{Label: "fixedtail", Policy: policy.Spec{Name: "fixedtail"}},
	}
	for i, ss := range equivalents {
		if got := sweepSpec(ss).Fingerprint(); got != want {
			t.Errorf("equivalent scheme %d changed the fingerprint", i)
		}
	}

	// Param-map construction order cannot matter: rebuild the same
	// multi-param map across trials (Go randomizes map iteration, so many
	// trials exercise many orders).
	multi := func() map[string]any {
		return map[string]any{"window": 200, "gridsteps": 50, "minsample": 20}
	}
	ref := sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: multi()}}).Fingerprint()
	for trial := 0; trial < 20; trial++ {
		if sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: multi()}}).Fingerprint() != ref {
			t.Fatal("fingerprint depends on param map ordering")
		}
	}
}

// TestFingerprintMovesWithAnyParamChange: changing any single parameter
// value, the scheme label, the scheme list, or its order changes the
// fingerprint.
func TestFingerprintMovesWithAnyParamChange(t *testing.T) {
	base := map[string]any{"window": 200, "gridsteps": 50, "minsample": 20}
	mk := func(params map[string]any) Spec {
		return sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: params}})
	}
	seen := map[string]string{mk(base).Fingerprint(): "base"}
	for k := range base {
		mutated := map[string]any{}
		for k2, v2 := range base {
			mutated[k2] = v2
		}
		mutated[k] = mutated[k].(int) + 1
		fp := mk(mutated).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("mutating %q collided with %s", k, prev)
		}
		seen[fp] = k
	}

	a := fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}}
	b := fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "8s"}}}
	distinct := []Spec{
		sweepSpec(a),
		sweepSpec(b),
		sweepSpec(a, b),
		sweepSpec(b, a), // scheme order is part of the computation's identity
		sweepSpec(fleet.SchemeSpec{Label: "renamed", Policy: a.Policy}),
		sweepSpec(fleet.SchemeSpec{Policy: a.Policy, Active: &policy.Spec{Name: "learn"}}),
		sweepSpec(fleet.SchemeSpec{Policy: a.Policy,
			Active: &policy.Spec{Name: "learn", Params: map[string]any{"gamma": 0.01}}}),
	}
	for i, s := range distinct {
		fp := s.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("spec %d collided with %s", i, prev)
		}
		seen[fp] = "distinct"
	}
}

// TestLegacyNameAliasFingerprints: every legacy flat-name payload
// fingerprints identically to its explicit spec form — the alias mapping
// the /v1 back-compat path relies on — for every old flat name.
func TestLegacyNameAliasFingerprints(t *testing.T) {
	base := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute)}
	cases := []struct {
		pol, act string
		scheme   fleet.SchemeSpec
	}{
		{"statusquo", "", fleet.SchemeSpec{Label: "statusquo", Policy: policy.Spec{Name: "statusquo"}}},
		{"4.5s", "", fleet.SchemeSpec{Label: "4.5s",
			Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4.5s"}}}},
		{"95iat", "", fleet.SchemeSpec{Label: "95iat",
			Policy: policy.Spec{Name: "pctiat", Params: map[string]any{"q": 0.95}}}},
		{"oracle", "", fleet.SchemeSpec{Label: "oracle", Policy: policy.Spec{Name: "oracle"}}},
		{"makeidle", "", fleet.SchemeSpec{Label: "makeidle", Policy: policy.Spec{Name: "makeidle"}}},
		{"makeidle", "learn", fleet.SchemeSpec{Label: "makeidle+learn",
			Policy: policy.Spec{Name: "makeidle"}, Active: &policy.Spec{Name: "learn"}}},
		{"makeidle", "fix", fleet.SchemeSpec{Label: "makeidle+fix",
			Policy: policy.Spec{Name: "makeidle"},
			Active: &policy.Spec{Name: "fix", Params: map[string]any{"burstgap": "1s"}}}},
	}
	for _, c := range cases {
		legacy := base
		legacy.Policy, legacy.Active = c.pol, c.act
		speced := base
		speced.Schemes = []fleet.SchemeSpec{c.scheme}
		if legacy.Fingerprint() != speced.Fingerprint() {
			t.Errorf("legacy %s/%s does not fingerprint like its spec form", c.pol, c.act)
		}
	}
}

// TestBurstGapSeedsFixScheme: the job-level burst gap reaches a "fix"
// active spec that does not pin its own, in both the legacy flat form
// and the schemes form — the two spellings fingerprint (and therefore
// compute) identically — while an explicit burstgap param wins.
func TestBurstGapSeedsFixScheme(t *testing.T) {
	legacy := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute),
		Policy: "makeidle", Active: "fix", BurstGap: Duration(2 * time.Second)}
	speced := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute),
		BurstGap: Duration(2 * time.Second),
		Schemes: []fleet.SchemeSpec{{Label: "makeidle+fix",
			Policy: policy.Spec{Name: "makeidle"}, Active: &policy.Spec{Name: "fix"}}}}
	if legacy.Fingerprint() != speced.Fingerprint() {
		t.Fatal("schemes form ignores the job burst gap the legacy form applies")
	}
	canon, err := speced.withDefaults().Schemes[0].Canonical(registry())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(canon, "fix(burstgap=2s)") {
		t.Fatalf("canonical %q does not carry the injected burst gap", canon)
	}
	pinned := speced
	pinned.Schemes = []fleet.SchemeSpec{{Label: "makeidle+fix",
		Policy: policy.Spec{Name: "makeidle"},
		Active: &policy.Spec{Name: "fix", Params: map[string]any{"burstgap": "500ms"}}}}
	if pinned.Fingerprint() == speced.Fingerprint() {
		t.Fatal("explicit burstgap param did not override the job burst gap")
	}
	if pinned.Schemes[0].Active.Params["burstgap"] != "500ms" {
		t.Fatal("normalization mutated the caller's scheme spec")
	}
}

// TestSpecValidateSchemes: sweep-specific admission rules.
func TestSpecValidateSchemes(t *testing.T) {
	good := sweepSpec(
		fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "8s"}}},
	).withDefaults()
	if err := good.validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	bad := []Spec{
		sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "warpdrive"}}),
		sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "20m"}}}),
		sweepSpec( // duplicate labels: both resolve to "fixedtail"
			fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail"}},
			fleet.SchemeSpec{Policy: policy.Spec{Name: "4.5s"}}),
		sweepSpec(fleet.SchemeSpec{Label: "a|b", Policy: policy.Spec{Name: "makeidle"}}),
		func() Spec {
			s := sweepSpec()
			for i := 0; i <= MaxSchemes; i++ {
				s.Schemes = append(s.Schemes, fleet.SchemeSpec{
					Label:  time.Duration(i).String(),
					Policy: policy.Spec{Name: "makeidle"},
				})
			}
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.withDefaults().validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
