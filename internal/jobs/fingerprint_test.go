package jobs

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
)

func sweepSpec(schemes ...fleet.SchemeSpec) Spec {
	return Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute), Schemes: schemes}
}

// TestFingerprintStableAcrossParamEncodings: the v3 fingerprint hashes
// canonical scheme encodings, so every way of writing the same sweep —
// alias vs canonical name, omitted vs explicit defaults, string vs
// numeric parameter forms, any param-map construction order — produces
// one fingerprint.
func TestFingerprintStableAcrossParamEncodings(t *testing.T) {
	want := sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail"}}).Fingerprint()
	equivalents := []fleet.SchemeSpec{
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4.5s"}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4500ms"}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": 4500 * time.Millisecond}}},
		{Policy: policy.Spec{Name: "fixedtail"}, Active: &policy.Spec{Name: "none"}},
		{Label: "fixedtail", Policy: policy.Spec{Name: "fixedtail"}},
	}
	for i, ss := range equivalents {
		if got := sweepSpec(ss).Fingerprint(); got != want {
			t.Errorf("equivalent scheme %d changed the fingerprint", i)
		}
	}

	// Param-map construction order cannot matter: rebuild the same
	// multi-param map across trials (Go randomizes map iteration, so many
	// trials exercise many orders).
	multi := func() map[string]any {
		return map[string]any{"window": 200, "gridsteps": 50, "minsample": 20}
	}
	ref := sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: multi()}}).Fingerprint()
	for trial := 0; trial < 20; trial++ {
		if sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: multi()}}).Fingerprint() != ref {
			t.Fatal("fingerprint depends on param map ordering")
		}
	}
}

// TestFingerprintMovesWithAnyParamChange: changing any single parameter
// value, the scheme label, the scheme list, or its order changes the
// fingerprint.
func TestFingerprintMovesWithAnyParamChange(t *testing.T) {
	base := map[string]any{"window": 200, "gridsteps": 50, "minsample": 20}
	mk := func(params map[string]any) Spec {
		return sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "makeidle", Params: params}})
	}
	seen := map[string]string{mk(base).Fingerprint(): "base"}
	for k := range base {
		mutated := map[string]any{}
		for k2, v2 := range base {
			mutated[k2] = v2
		}
		mutated[k] = mutated[k].(int) + 1
		fp := mk(mutated).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("mutating %q collided with %s", k, prev)
		}
		seen[fp] = k
	}

	a := fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}}
	b := fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "8s"}}}
	distinct := []Spec{
		sweepSpec(a),
		sweepSpec(b),
		sweepSpec(a, b),
		sweepSpec(b, a), // scheme order is part of the computation's identity
		sweepSpec(fleet.SchemeSpec{Label: "renamed", Policy: a.Policy}),
		sweepSpec(fleet.SchemeSpec{Policy: a.Policy, Active: &policy.Spec{Name: "learn"}}),
		sweepSpec(fleet.SchemeSpec{Policy: a.Policy,
			Active: &policy.Spec{Name: "learn", Params: map[string]any{"gamma": 0.01}}}),
	}
	for i, s := range distinct {
		fp := s.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Fatalf("spec %d collided with %s", i, prev)
		}
		seen[fp] = "distinct"
	}
}

// TestLegacyNameAliasFingerprints: every legacy flat-name payload
// fingerprints identically to its explicit spec form — the alias mapping
// the /v1 back-compat path relies on — for every old flat name.
func TestLegacyNameAliasFingerprints(t *testing.T) {
	base := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute)}
	cases := []struct {
		pol, act string
		scheme   fleet.SchemeSpec
	}{
		{"statusquo", "", fleet.SchemeSpec{Label: "statusquo", Policy: policy.Spec{Name: "statusquo"}}},
		{"4.5s", "", fleet.SchemeSpec{Label: "4.5s",
			Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "4.5s"}}}},
		{"95iat", "", fleet.SchemeSpec{Label: "95iat",
			Policy: policy.Spec{Name: "pctiat", Params: map[string]any{"q": 0.95}}}},
		{"oracle", "", fleet.SchemeSpec{Label: "oracle", Policy: policy.Spec{Name: "oracle"}}},
		{"makeidle", "", fleet.SchemeSpec{Label: "makeidle", Policy: policy.Spec{Name: "makeidle"}}},
		{"makeidle", "learn", fleet.SchemeSpec{Label: "makeidle+learn",
			Policy: policy.Spec{Name: "makeidle"}, Active: &policy.Spec{Name: "learn"}}},
		{"makeidle", "fix", fleet.SchemeSpec{Label: "makeidle+fix",
			Policy: policy.Spec{Name: "makeidle"},
			Active: &policy.Spec{Name: "fix", Params: map[string]any{"burstgap": "1s"}}}},
	}
	for _, c := range cases {
		legacy := base
		legacy.Policy, legacy.Active = c.pol, c.act
		speced := base
		speced.Schemes = []fleet.SchemeSpec{c.scheme}
		if legacy.Fingerprint() != speced.Fingerprint() {
			t.Errorf("legacy %s/%s does not fingerprint like its spec form", c.pol, c.act)
		}
	}
}

// TestBurstGapSeedsFixScheme: the job-level burst gap reaches a "fix"
// active spec that does not pin its own, in both the legacy flat form
// and the schemes form — the two spellings fingerprint (and therefore
// compute) identically — while an explicit burstgap param wins.
func TestBurstGapSeedsFixScheme(t *testing.T) {
	legacy := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute),
		Policy: "makeidle", Active: "fix", BurstGap: Duration(2 * time.Second)}
	speced := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute),
		BurstGap: Duration(2 * time.Second),
		Schemes: []fleet.SchemeSpec{{Label: "makeidle+fix",
			Policy: policy.Spec{Name: "makeidle"}, Active: &policy.Spec{Name: "fix"}}}}
	if legacy.Fingerprint() != speced.Fingerprint() {
		t.Fatal("schemes form ignores the job burst gap the legacy form applies")
	}
	canon, err := speced.withDefaults().Schemes[0].Canonical(registry())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(canon, "fix(burstgap=2s)") {
		t.Fatalf("canonical %q does not carry the injected burst gap", canon)
	}
	pinned := speced
	pinned.Schemes = []fleet.SchemeSpec{{Label: "makeidle+fix",
		Policy: policy.Spec{Name: "makeidle"},
		Active: &policy.Spec{Name: "fix", Params: map[string]any{"burstgap": "500ms"}}}}
	if pinned.Fingerprint() == speced.Fingerprint() {
		t.Fatal("explicit burstgap param did not override the job burst gap")
	}
	if pinned.Schemes[0].Active.Params["burstgap"] != "500ms" {
		t.Fatal("normalization mutated the caller's scheme spec")
	}
}

// TestFingerprintV4StableAcrossAxisSpellings: the v4 fingerprint hashes
// canonical encodings on all three axes, so every way of writing the same
// grid — display-name vs canonical profile names, omitted vs explicit
// defaults on any axis, flat legacy fields vs one-entry axis lists, any
// param-map construction order — produces one fingerprint.
func TestFingerprintV4StableAcrossAxisSpellings(t *testing.T) {
	base := Spec{Seed: 3, Shards: 8,
		Schemes:  []fleet.SchemeSpec{{Policy: policy.Spec{Name: "makeidle"}}},
		Profiles: []power.ProfileSpec{{Name: "verizon-lte"}},
		Cohorts:  []fleet.CohortSpec{{Name: "study-3g", Params: map[string]any{"users": 5, "duration": "30m"}}},
	}
	want := base.Fingerprint()
	equivalents := []Spec{
		// Explicit profile defaults.
		func() Spec {
			s := base
			s.Profiles = []power.ProfileSpec{{Name: "verizon-lte", Params: map[string]any{"t1": "10.2s"}}}
			return s
		}(),
		// Cohort value spellings and explicit defaults.
		func() Spec {
			s := base
			s.Cohorts = []fleet.CohortSpec{{Name: "study-3g",
				Params: map[string]any{"users": "5", "duration": "30m0s", "diurnal": true}}}
			return s
		}(),
	}
	for i, s := range equivalents {
		if got := s.Fingerprint(); got != want {
			t.Errorf("equivalent grid %d changed the fingerprint", i)
		}
	}
	// Param-map construction order cannot matter on the new axes either.
	mk := func() Spec {
		s := base
		s.Profiles = []power.ProfileSpec{{Name: "verizon-lte",
			Params: map[string]any{"t1": "9s", "dormancy": 0.4, "uplink": 2.0}}}
		return s
	}
	ref := mk().Fingerprint()
	for trial := 0; trial < 20; trial++ {
		if mk().Fingerprint() != ref {
			t.Fatal("fingerprint depends on profile param map ordering")
		}
	}
	// The flat legacy profile field and its labeled one-entry axis agree.
	flat := Spec{Users: 5, Seed: 3, Duration: Duration(30 * time.Minute), Profile: "Verizon LTE"}
	axis := Spec{Seed: 3,
		Profiles: []power.ProfileSpec{{Label: "Verizon LTE", Name: "Verizon LTE"}},
		Cohorts:  []fleet.CohortSpec{{Name: "study-3g", Params: map[string]any{"users": 5, "duration": "30m"}}},
	}
	if flat.Fingerprint() != axis.Fingerprint() {
		t.Fatal("flat profile/users payload does not fingerprint like its axis form")
	}
}

// TestFingerprintV4MovesWithAnyAxisChange: changing any single profile or
// cohort knob, an axis label, an axis list, or its order changes the
// fingerprint.
func TestFingerprintV4MovesWithAnyAxisChange(t *testing.T) {
	base := Spec{Seed: 3, Shards: 8,
		Schemes:  []fleet.SchemeSpec{{Policy: policy.Spec{Name: "makeidle"}}},
		Profiles: []power.ProfileSpec{{Name: "verizon-lte"}},
		Cohorts:  []fleet.CohortSpec{{Name: "study-3g", Params: map[string]any{"users": 5}}},
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	check := func(name string, s Spec) {
		t.Helper()
		fp := s.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collided with %s", name, prev)
		}
		seen[fp] = name
	}
	withProfiles := func(ps ...power.ProfileSpec) Spec { s := base; s.Profiles = ps; return s }
	withCohorts := func(cs ...fleet.CohortSpec) Spec { s := base; s.Cohorts = cs; return s }

	// Every profile knob moves the key.
	for _, knob := range []map[string]any{
		{"t1": "5s"}, {"t1power": 1200.0}, {"send": 3000.0}, {"recv": 1800.0},
		{"promodelay": "1s"}, {"promopower": 1000.0}, {"radiooff": 2.0},
		{"dormancy": 0.4}, {"uplink": 4.0}, {"downlink": 10.0},
	} {
		check(fmt.Sprintf("profile knob %v", knob),
			withProfiles(power.ProfileSpec{Name: "verizon-lte", Params: knob}))
	}
	// Every cohort knob moves the key.
	for _, knob := range []map[string]any{
		{"users": 6}, {"users": 5, "duration": "1h"}, {"users": 5, "diurnal": false},
		{"users": 5, "seedstride": 7},
	} {
		check(fmt.Sprintf("cohort knob %v", knob),
			withCohorts(fleet.CohortSpec{Name: "study-3g", Params: knob}))
	}
	// Different families, labels, list sizes and orders are all distinct.
	v3g := power.ProfileSpec{Name: "verizon-3g"}
	vlte := power.ProfileSpec{Name: "verizon-lte"}
	check("different family", withCohorts(fleet.CohortSpec{Name: "study-lte", Params: map[string]any{"users": 5}}))
	check("relabeled profile", withProfiles(power.ProfileSpec{Label: "renamed", Name: "verizon-lte"}))
	check("relabeled cohort", withCohorts(fleet.CohortSpec{Label: "renamed", Name: "study-3g", Params: map[string]any{"users": 5}}))
	check("two profiles", withProfiles(vlte, v3g))
	check("two profiles, other order", withProfiles(v3g, vlte))
	check("unknown profile", withProfiles(power.ProfileSpec{Name: "AT&T 3G"}))
}

// TestSpecValidateAxes: grid-specific admission rules on the profile and
// cohort axes.
func TestSpecValidateAxes(t *testing.T) {
	good := Spec{Seed: 1,
		Schemes:  []fleet.SchemeSpec{{Policy: policy.Spec{Name: "makeidle"}}},
		Profiles: []power.ProfileSpec{{Name: "verizon-3g"}, {Name: "verizon-lte", Params: map[string]any{"t1": "5s"}}},
		Cohorts: []fleet.CohortSpec{
			{Name: "study-3g", Params: map[string]any{"users": 2, "duration": "10m"}},
			{Name: "mix", Params: map[string]any{"users": 2, "duration": "10m"}},
		},
	}.withDefaults()
	if err := good.validate(); err != nil {
		t.Fatalf("valid grid rejected: %v", err)
	}
	// Legacy payloads with sub-minute durations predate the cohort schema
	// and must keep validating (the compat contract the flat→axis mapping
	// promises).
	if err := (Spec{Users: 2, Seed: 1, Duration: Duration(30 * time.Second)}).withDefaults().validate(); err != nil {
		t.Fatalf("sub-minute legacy duration rejected: %v", err)
	}
	// Stale flat fields next to an explicit cohort axis are documented as
	// ignored: they must neither fail validation nor survive normalization.
	stale := Spec{Users: MaxUsers + 1, Duration: MaxDuration + 1, Seed: 1,
		Cohorts: []fleet.CohortSpec{{Name: "study-3g", Params: map[string]any{"users": 2, "duration": "10m"}}},
	}.withDefaults()
	if err := stale.validate(); err != nil {
		t.Fatalf("ignored flat fields rejected a valid explicit-cohort spec: %v", err)
	}
	if stale.Users != 0 || stale.Duration != 0 {
		t.Fatalf("ignored flat fields survived normalization: %+v", stale)
	}
	mutate := func(f func(*Spec)) Spec {
		s := good
		f(&s)
		return s
	}
	bad := map[string]Spec{
		"unknown profile": mutate(func(s *Spec) {
			s.Profiles = []power.ProfileSpec{{Name: "warp-radio"}}
		}),
		"out-of-range profile knob": mutate(func(s *Spec) {
			s.Profiles = []power.ProfileSpec{{Name: "verizon-3g", Params: map[string]any{"dormancy": 2.0}}}
		}),
		"duplicate profile labels": mutate(func(s *Spec) {
			s.Profiles = []power.ProfileSpec{{Name: "verizon-3g"}, {Name: "Verizon 3G", Label: "verizon-3g"}}
		}),
		"reserved profile label": mutate(func(s *Spec) {
			s.Profiles = []power.ProfileSpec{{Label: "a|b", Name: "verizon-3g"}}
		}),
		"unknown cohort": mutate(func(s *Spec) {
			s.Cohorts = []fleet.CohortSpec{{Name: "commuters"}}
		}),
		"degenerate mix cohort": mutate(func(s *Spec) {
			s.Cohorts = []fleet.CohortSpec{{Name: "mix", Params: map[string]any{"im": 0, "email": 0, "news": 0}}}
		}),
		"too many profiles": mutate(func(s *Spec) {
			for i := 0; i <= MaxProfiles; i++ {
				s.Profiles = append(s.Profiles, power.ProfileSpec{
					Label: fmt.Sprintf("p%d", i), Name: "verizon-3g"})
			}
		}),
		// 40 schemes × 8 profiles × 2 cohorts = 640 cells: every axis within
		// its own limit, the product over MaxCells.
		"too many cells": mutate(func(s *Spec) {
			for i := 0; len(s.Profiles) < 8; i++ {
				s.Profiles = append(s.Profiles, power.ProfileSpec{
					Label: fmt.Sprintf("p%d", i), Name: "verizon-3g"})
			}
			for i := 0; len(s.Schemes) < 40; i++ {
				s.Schemes = append(s.Schemes, fleet.SchemeSpec{
					Label: fmt.Sprintf("s%d", i), Policy: policy.Spec{Name: "makeidle"}})
			}
		}),
	}
	for name, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestSpecValidateSchemes: sweep-specific admission rules.
func TestSpecValidateSchemes(t *testing.T) {
	good := sweepSpec(
		fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "8s"}}},
	).withDefaults()
	if err := good.validate(); err != nil {
		t.Fatalf("valid sweep rejected: %v", err)
	}
	bad := []Spec{
		sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "warpdrive"}}),
		sweepSpec(fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "20m"}}}),
		sweepSpec( // duplicate labels: both resolve to "fixedtail"
			fleet.SchemeSpec{Policy: policy.Spec{Name: "fixedtail"}},
			fleet.SchemeSpec{Policy: policy.Spec{Name: "4.5s"}}),
		sweepSpec(fleet.SchemeSpec{Label: "a|b", Policy: policy.Spec{Name: "makeidle"}}),
		func() Spec {
			s := sweepSpec()
			for i := 0; i <= MaxSchemes; i++ {
				s.Schemes = append(s.Schemes, fleet.SchemeSpec{
					Label:  time.Duration(i).String(),
					Policy: policy.Spec{Name: "makeidle"},
				})
			}
			return s
		}(),
	}
	for i, s := range bad {
		if err := s.withDefaults().validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}
