package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/sim"
)

// This file expands a normalized Spec into its grid of cells — the cross
// product of the scheme × profile × cohort axes — and gives each cell a
// deterministic identity for the cell-level result cache.
//
// Cells execute cohort-major, then profile, then scheme: a fixed order,
// so progress accounting and rendered output are reproducible. Every cell
// is one independent fleet run over the cell's cohort, which keeps each
// cell's reduction grouping exactly what a single-axis job with the same
// shard count would use — the invariant that makes a grid cell's summary
// byte-identical to the equivalent single job's.

// gridCell is one planned cell: its axis labels, the resolved cohort /
// profile / scheme that realize it, the cell cache key, and its progress
// denominators. The fleet job slice is NOT built here — a grid holds
// every planned cell for the job's lifetime, so cells materialize their
// O(users) job slices lazily (Jobs), one at a time as they run, and
// cache-served cells never build one at all.
type gridCell struct {
	// Scheme, Profile, Cohort are the axis labels keying the cell in
	// results.
	Scheme, Profile, Cohort string
	// Key is the deterministic cell identity: equal keys imply
	// byte-identical cell summaries (same reasoning as the job
	// fingerprint, restricted to one cell).
	Key string

	cohort  fleet.Cohort
	profile power.Profile
	scheme  fleet.Scheme

	// NumJobs and Shards are the cell's progress denominators: the fleet
	// run's job count (one per user — each cell is a single scheme) and
	// the shard count it will use under the job's options (the configured
	// count clamped to the job count).
	NumJobs, Shards int
}

// Jobs materializes the cell's fleet run.
func (c *gridCell) Jobs() []fleet.Job {
	return c.cohort.Jobs(c.profile, []fleet.Scheme{c.scheme})
}

// planFingerprint validates the normalized spec's axes, computes its v4
// fingerprint, and expands its grid cells — all from ONE registry
// resolution per axis value. This is the Submit path: the legacy
// three-pass pipeline (validate, Fingerprint, plan) re-resolved every axis
// value once per product, which dominated admission cost on parameter
// sweeps. validate and Fingerprint remain as standalone products with
// byte-identical outputs (the fingerprint hashes the same canonical
// encodings, the errors carry the same shapes); this path simply derives
// all three from one resolution. Axis errors are reported in validate's
// precedence order: schemes, then profiles, then cohorts.
//
// axes, when non-nil, memoizes successful resolutions across Submits (see
// axisCache); a nil cache resolves everything fresh.
func (s Spec) planFingerprint(opts fleet.Options, axes *axisCache) ([]gridCell, string, error) {
	if err := s.checkBounds(); err != nil {
		return nil, "", err
	}
	burstGap := time.Duration(s.BurstGap)

	sas := make([]fleet.ResolvedScheme, len(s.Schemes))
	seen := make(map[string]bool, len(s.Schemes))
	for i, ss := range s.Schemes {
		key := ""
		rs, ok := fleet.ResolvedScheme{}, false
		if axes != nil {
			key = schemeKey(ss)
			rs, ok = axes.getScheme(key)
		}
		if !ok {
			var err error
			rs, err = fleet.ResolveScheme(registry(), ss)
			if err != nil {
				return nil, "", fmt.Errorf("jobs: scheme %d: %w", i, err)
			}
			axes.putScheme(key, rs)
		}
		if err := checkLabel("scheme", i, rs.Label, seen); err != nil {
			return nil, "", err
		}
		sas[i] = rs
	}

	pas := make([]power.ResolvedProfile, len(s.Profiles))
	seen = make(map[string]bool, len(s.Profiles))
	for i, ps := range s.Profiles {
		key := ""
		rp, ok := power.ResolvedProfile{}, false
		if axes != nil {
			key = profileKey(ps)
			rp, ok = axes.getProfile(key)
		}
		if !ok {
			var err error
			rp, err = ps.Resolution(profiles())
			if err != nil {
				return nil, "", fmt.Errorf("jobs: profile %d: %w", i, err)
			}
			axes.putProfile(key, rp)
		}
		if err := checkLabel("profile", i, rp.Label, seen); err != nil {
			return nil, "", err
		}
		pas[i] = rp
	}

	cas := make([]fleet.ResolvedCohort, len(s.Cohorts))
	seen = make(map[string]bool, len(s.Cohorts))
	var simOpts *sim.Options
	for i, cs := range s.Cohorts {
		key := ""
		rc, ok := fleet.ResolvedCohort{}, false
		if axes != nil {
			key = cohortKey(cs, s.Seed, burstGap)
			rc, ok = axes.getCohort(key)
		}
		if !ok {
			if simOpts == nil {
				simOpts = &sim.Options{BurstGap: burstGap}
			}
			var err error
			rc, err = fleet.ResolveCohort(cohorts(), cs, s.Seed, simOpts)
			if err != nil {
				return nil, "", fmt.Errorf("jobs: cohort %d: %w", i, err)
			}
			// ResolveCohort stamps CacheKeyBase with the cohort canonical,
			// so every cell of this cohort replays the same memoized
			// traffic.
			axes.putCohort(key, rc)
		}
		if err := checkLabel("cohort", i, rc.Label, seen); err != nil {
			return nil, "", err
		}
		cas[i] = rc
	}

	// Both digests hash hand-appended bytes (strconv for the scalars,
	// Duration.String for the gap) — the exact bytes the historical
	// Fprintf-based hashing produced, without its per-verb overhead.
	scalars := make([]byte, 0, 64)
	scalars = append(scalars, "seed="...)
	scalars = strconv.AppendInt(scalars, s.Seed, 10)
	scalars = append(scalars, "|burstgap="...)
	scalars = append(scalars, burstGap.String()...)
	scalars = append(scalars, "|shards="...)
	scalars = strconv.AppendInt(scalars, int64(s.Shards), 10)

	b := make([]byte, 0, 512)
	b = append(b, "v4|"...)
	b = append(b, scalars...)
	b = append(b, "|schemes="...)
	b = strconv.AppendInt(b, int64(len(s.Schemes)), 10)
	b = append(b, "|profiles="...)
	b = strconv.AppendInt(b, int64(len(s.Profiles)), 10)
	b = append(b, "|cohorts="...)
	b = strconv.AppendInt(b, int64(len(s.Cohorts)), 10)
	for _, sa := range sas {
		b = append(b, "|S:"...)
		b = append(b, sa.Canonical...)
	}
	for _, pa := range pas {
		b = append(b, "|P:"...)
		b = append(b, pa.Canonical...)
	}
	for _, ca := range cas {
		b = append(b, "|C:"...)
		b = append(b, ca.Canonical...)
	}
	sum := sha256.Sum256(b)
	fp := hex.EncodeToString(sum[:])

	cells := make([]gridCell, 0, len(s.Schemes)*len(s.Profiles)*len(s.Cohorts))
	for _, ca := range cas {
		for _, pa := range pas {
			for _, sa := range sas {
				cells = append(cells, gridCell{
					Scheme:  sa.Scheme.Name,
					Profile: pa.Profile.Name,
					Cohort:  ca.Label,
					Key:     cellKey(scalars, sa.Canonical, pa.Canonical, ca.Canonical),
					cohort:  ca.Cohort,
					profile: pa.Profile,
					scheme:  sa.Scheme,
					NumJobs: ca.Cohort.Users,
					Shards:  opts.NumShards(ca.Cohort.Users),
				})
			}
		}
	}
	return cells, fp, nil
}

// checkLabel enforces the axis-label rules (no reserved characters, no
// duplicates within an axis — labels key grid cells).
func checkLabel(axis string, i int, label string, seen map[string]bool) error {
	if strings.ContainsAny(label, "|\n") {
		return fmt.Errorf("jobs: %s %d: label %q contains reserved characters", axis, i, label)
	}
	if seen[label] {
		return fmt.Errorf("jobs: %s %d: duplicate label %q (label axis values explicitly)", axis, i, label)
	}
	seen[label] = true
	return nil
}

// singleAxis reports whether the normalized spec's profile and cohort axes
// are both single-valued — the shape whose job-level result keeps the
// legacy flat rendering (one merged summary keyed by scheme label). Wider
// grids render per cell, because the same scheme label legitimately
// repeats across profile/cohort cells.
func (s Spec) singleAxis() bool {
	return len(s.Profiles) == 1 && len(s.Cohorts) == 1
}

// cellKey digests one cell's computation: the job-level scalars that
// shape every cell (scalars is the pre-rendered "seed=…|burstgap=…|
// shards=…" run, shared across the grid) plus the cell's three canonical
// axis encodings. Labels ride inside the canonicals, which is deliberate —
// a relabeled cell renders different bytes, so it must not share a cache
// entry.
func cellKey(scalars []byte, schemeCanon, profCanon, cohortCanon string) string {
	b := make([]byte, 0, 17+len(scalars)+len(schemeCanon)+len(profCanon)+len(cohortCanon))
	b = append(b, "cell|v4|"...)
	b = append(b, scalars...)
	b = append(b, "|S:"...)
	b = append(b, schemeCanon...)
	b = append(b, "|P:"...)
	b = append(b, profCanon...)
	b = append(b, "|C:"...)
	b = append(b, cohortCanon...)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
