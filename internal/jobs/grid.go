package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/sim"
)

// This file expands a normalized Spec into its grid of cells — the cross
// product of the scheme × profile × cohort axes — and gives each cell a
// deterministic identity for the cell-level result cache.
//
// Cells execute cohort-major, then profile, then scheme: a fixed order,
// so progress accounting and rendered output are reproducible. Every cell
// is one independent fleet run over the cell's cohort, which keeps each
// cell's reduction grouping exactly what a single-axis job with the same
// shard count would use — the invariant that makes a grid cell's summary
// byte-identical to the equivalent single job's.

// gridCell is one planned cell: its axis labels, the resolved cohort /
// profile / scheme that realize it, the cell cache key, and its progress
// denominators. The fleet job slice is NOT built here — a grid holds
// every planned cell for the job's lifetime, so cells materialize their
// O(users) job slices lazily (Jobs), one at a time as they run, and
// cache-served cells never build one at all.
type gridCell struct {
	// Scheme, Profile, Cohort are the axis labels keying the cell in
	// results.
	Scheme, Profile, Cohort string
	// Key is the deterministic cell identity: equal keys imply
	// byte-identical cell summaries (same reasoning as the job
	// fingerprint, restricted to one cell).
	Key string

	cohort  fleet.Cohort
	profile power.Profile
	scheme  fleet.Scheme

	// NumJobs and Shards are the cell's progress denominators: the fleet
	// run's job count (one per user — each cell is a single scheme) and
	// the shard count it will use under the job's options (the configured
	// count clamped to the job count).
	NumJobs, Shards int
}

// Jobs materializes the cell's fleet run.
func (c *gridCell) Jobs() []fleet.Job {
	return c.cohort.Jobs(c.profile, []fleet.Scheme{c.scheme})
}

// plan expands the normalized spec into its grid cells. Axis values are
// resolved through the registries; the spec must already have passed
// validate, so failures here are racing registry changes, not user error.
func (s Spec) plan(opts fleet.Options) ([]gridCell, error) {
	simOpts := &sim.Options{BurstGap: time.Duration(s.BurstGap)}
	cells := make([]gridCell, 0, len(s.Schemes)*len(s.Profiles)*len(s.Cohorts))
	for _, cs := range s.Cohorts {
		cohort, err := fleet.CohortFromSpec(cohorts(), cs, s.Seed, simOpts)
		if err != nil {
			return nil, fmt.Errorf("jobs: cohort: %w", err)
		}
		cohortLabel, err := cs.ResolvedLabel(cohorts())
		if err != nil {
			return nil, fmt.Errorf("jobs: cohort: %w", err)
		}
		cohortCanon, err := cs.Canonical(cohorts())
		if err != nil {
			return nil, fmt.Errorf("jobs: cohort: %w", err)
		}
		for _, ps := range s.Profiles {
			prof, err := ps.Profile(profiles())
			if err != nil {
				return nil, fmt.Errorf("jobs: profile: %w", err)
			}
			profCanon, err := ps.Canonical(profiles())
			if err != nil {
				return nil, fmt.Errorf("jobs: profile: %w", err)
			}
			for _, ss := range s.Schemes {
				scheme, err := fleet.SchemeFromSpec(registry(), ss)
				if err != nil {
					return nil, fmt.Errorf("jobs: scheme: %w", err)
				}
				schemeCanon, err := ss.Canonical(registry())
				if err != nil {
					return nil, fmt.Errorf("jobs: scheme: %w", err)
				}
				cells = append(cells, gridCell{
					Scheme:  scheme.Name,
					Profile: prof.Name,
					Cohort:  cohortLabel,
					Key:     cellKey(s, schemeCanon, profCanon, cohortCanon),
					cohort:  cohort,
					profile: prof,
					scheme:  scheme,
					NumJobs: cohort.Users,
					Shards:  opts.NumShards(cohort.Users),
				})
			}
		}
	}
	return cells, nil
}

// singleAxis reports whether the normalized spec's profile and cohort axes
// are both single-valued — the shape whose job-level result keeps the
// legacy flat rendering (one merged summary keyed by scheme label). Wider
// grids render per cell, because the same scheme label legitimately
// repeats across profile/cohort cells.
func (s Spec) singleAxis() bool {
	return len(s.Profiles) == 1 && len(s.Cohorts) == 1
}

// cellKey digests one cell's computation: the job-level scalars that
// shape every cell (seed, burst gap, shard config) plus the cell's three
// canonical axis encodings. Labels ride inside the canonicals, which is
// deliberate — a relabeled cell renders different bytes, so it must not
// share a cache entry.
func cellKey(s Spec, schemeCanon, profCanon, cohortCanon string) string {
	h := sha256.New()
	fmt.Fprintf(h, "cell|v4|seed=%d|burstgap=%s|shards=%d|S:%s|P:%s|C:%s",
		s.Seed, time.Duration(s.BurstGap), s.Shards, schemeCanon, profCanon, cohortCanon)
	return hex.EncodeToString(h.Sum(nil))
}
