package jobs

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkGridSweep measures grid-job execution end to end through the
// manager: a 2 schemes × 2 profiles × 1 cohort grid (4 cells, 4 streamed
// users each) per iteration, with both caches disabled so every iteration
// replays every cell. Reported: cells/sec and allocations per cell — the
// evidence that per-cell overhead (planning, canonical encodings,
// rendering) stays small next to the replays themselves.
func BenchmarkGridSweep(b *testing.B) {
	m := NewManager(Config{Runners: 1, CacheSize: -1, CellCacheSize: -1})
	defer m.Close()
	spec := BenchGridSpec()
	const cells = BenchGridCells

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := m.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if err := job.Err(); err != nil {
			b.Fatal(err)
		}
		if len(job.Result().Cells) != cells {
			b.Fatalf("grid produced %d cells", len(job.Result().Cells))
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	elapsed := time.Since(start)
	b.ReportMetric(float64(cells*b.N)/elapsed.Seconds(), "cells/sec")
	b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(cells*b.N), "allocs/cell")
}

// BenchmarkGridSweepSharedCohort measures cohort trace memoization: 6
// schemes sweep one shared 4-user diurnal cohort, so the uncached run
// re-synthesizes each user's traffic for every replay (twice per job —
// baseline and scheme — plus a materialization for the trace-fitted
// scheme) while the cached run generates each user once into an encoded
// slab and decodes every later replay straight out of the shared bytes.
// cached/uncached cells/sec is the memoization headline; results are
// byte-identical either way (TestTraceCacheEquivalence).
func BenchmarkGridSweepSharedCohort(b *testing.B) {
	for _, bc := range []struct {
		name  string
		bytes int64
	}{
		{"cached", 0},    // default budget
		{"uncached", -1}, // disabled
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := NewManager(Config{Runners: 1, CacheSize: -1, CellCacheSize: -1,
				TraceCacheBytes: bc.bytes})
			defer m.Close()
			spec := BenchSharedCohortGridSpec()
			const cells = BenchSharedCohortGridCells

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job, err := m.Submit(spec)
				if err != nil {
					b.Fatal(err)
				}
				<-job.Done()
				if err := job.Err(); err != nil {
					b.Fatal(err)
				}
				if len(job.Result().Cells) != cells {
					b.Fatalf("grid produced %d cells", len(job.Result().Cells))
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			elapsed := time.Since(start)
			b.ReportMetric(float64(cells*b.N)/elapsed.Seconds(), "cells/sec")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(cells*b.N), "allocs/cell")
		})
	}
}

// BenchmarkGridSweepWide measures cell-level scheduling on a wide grid: 32
// small cells whose replays are short enough that dispatch, budget handoff
// and ordered collection are a visible share of the work. The seq
// sub-benchmark pins CellParallel=1 (the historical strictly-sequential
// loop); par uses the budget-admitted default. On a multi-core machine
// par/seq cells/sec is the saturation ratio; results are byte-identical
// either way (TestCellParallelDeterminism).
func BenchmarkGridSweepWide(b *testing.B) {
	for _, bc := range []struct {
		name string
		par  int
	}{
		{"seq", 1},
		{"par", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			m := NewManager(Config{Runners: 1, CacheSize: -1, CellCacheSize: -1,
				CellParallel: bc.par})
			defer m.Close()
			spec := BenchWideGridSpec()
			const cells = BenchWideGridCells

			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job, err := m.Submit(spec)
				if err != nil {
					b.Fatal(err)
				}
				<-job.Done()
				if err := job.Err(); err != nil {
					b.Fatal(err)
				}
				if len(job.Result().Cells) != cells {
					b.Fatalf("grid produced %d cells", len(job.Result().Cells))
				}
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			elapsed := time.Since(start)
			b.ReportMetric(float64(cells*b.N)/elapsed.Seconds(), "cells/sec")
			b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(cells*b.N), "allocs/cell")
		})
	}
}
