package jobs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/store"
)

// Axis pools the resume tests draw random small grids from. Every value
// resolves against the real registries, so the cells replay real fleet
// runs — byte-identity claims are only meaningful against real output.
var (
	resumeSchemes = []fleet.SchemeSpec{
		{Policy: policy.Spec{Name: "makeidle"}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "5s"}}},
	}
	resumeProfiles = []power.ProfileSpec{
		{Name: "verizon-3g"},
		{Name: "verizon-lte"},
	}
	resumeCohorts = []fleet.CohortSpec{
		{Name: "study-3g", Params: map[string]any{"users": 2, "duration": "2m"}},
		{Name: "study-lte", Params: map[string]any{"users": 2, "duration": "2m"}},
	}
)

// storeManager opens a store over dir and a manager using it as the
// second cell tier. The caller closes both (manager first).
func storeManager(t *testing.T, dir string) (*Manager, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(Config{Runners: 1, Workers: 2, Store: st}), st
}

// runSpec submits spec and waits for completion.
func runSpec(t *testing.T, m *Manager, spec Spec) *Result {
	t.Helper()
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if err := job.Err(); err != nil {
		t.Fatal(err)
	}
	return job.Result()
}

// assertSameResult proves two results render byte-identically in every
// form, cell for cell, fingerprint for fingerprint.
func assertSameResult(t *testing.T, want, got *Result) {
	t.Helper()
	wantJSON, err1 := want.JSON()
	gotJSON, err2 := got.JSON()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("job JSON differs")
	}
	wantCSV, err1 := want.CSV()
	gotCSV, err2 := got.CSV()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(wantCSV, gotCSV) {
		t.Fatal("job CSV differs")
	}
	if want.Text() != got.Text() {
		t.Fatal("job text differs")
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("cell count %d vs %d", len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		if want.Cells[i].Key != got.Cells[i].Key {
			t.Fatalf("cell %d fingerprint %s vs %s", i, got.Cells[i].Key, want.Cells[i].Key)
		}
		wc, err1 := want.Cells[i].JSON()
		gc, err2 := got.Cells[i].JSON()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(wc, gc) {
			t.Fatalf("cell %d JSON differs", i)
		}
	}
}

// TestResumeEquivalence is the resume property over random small grids:
// run a grid cold against a store, tear the manager down (a clean proxy
// for the crash the store tests cover at the file layer — the store's
// durability does not depend on Close), bring a fresh manager up over
// the same directory, and submit a superset grid. Only the frontier —
// the cells the first life never computed — may execute, counted by the
// instrumented run counter; re-submitting the original grid executes
// nothing. Every rendered byte of the resumed runs must equal a
// never-interrupted reference manager's output: job JSON/CSV/text,
// per-cell JSON, and per-cell fingerprints.
func TestResumeEquivalence(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			nsch := 1 + rng.Intn(2) // 1 or 2: the pool holds 3, so a frontier always exists
			npr := 1 + rng.Intn(len(resumeProfiles))
			cohort := rng.Intn(len(resumeCohorts))
			base := Spec{Seed: int64(trial + 1), Shards: 2,
				Schemes:  resumeSchemes[:nsch],
				Profiles: resumeProfiles[:npr],
				Cohorts:  resumeCohorts[cohort : cohort+1],
			}
			superset := base
			superset.Schemes = resumeSchemes[:nsch+1]

			// Reference: an uninterrupted manager with no store at all.
			ref := NewManager(Config{Runners: 1, Workers: 2})
			refBase := runSpec(t, ref, base)
			refSuper := runSpec(t, ref, superset)
			ref.Close()

			// First life: cold run against an empty store — every cell executes.
			dir := t.TempDir()
			m1, st1 := storeManager(t, dir)
			cold := runSpec(t, m1, base)
			if got, want := m1.CellsExecuted(), uint64(len(cold.Cells)); got != want {
				t.Fatalf("cold run executed %d cells, want %d", got, want)
			}
			assertSameResult(t, refBase, cold)
			m1.Close()
			if err := st1.Close(); err != nil {
				t.Fatal(err)
			}

			// Second life: fresh manager, same directory. The superset goes
			// first so its overlap with the base grid is provably served from
			// the store, not from a memory cache the base run refilled.
			m2, st2 := storeManager(t, dir)
			defer st2.Close()
			defer m2.Close()
			super := runSpec(t, m2, superset)
			frontier := uint64(len(super.Cells) - len(cold.Cells))
			if got := m2.CellsExecuted(); got != frontier {
				t.Fatalf("resumed superset executed %d cells, want frontier %d", got, frontier)
			}
			assertSameResult(t, refSuper, super)

			// The original grid is now fully covered: zero executions.
			resumedBase := runSpec(t, m2, base)
			if got := m2.CellsExecuted(); got != frontier {
				t.Fatalf("resubmitted base executed %d extra cells, want 0", got-frontier)
			}
			assertSameResult(t, refBase, resumedBase)

			stats, ok := m2.StoreStats()
			if !ok || stats.Hits < uint64(len(cold.Cells)) {
				t.Fatalf("store hits = %d (ok=%v), want >= %d", stats.Hits, ok, len(cold.Cells))
			}
		})
	}
}

// TestStoreGarbageRecomputed plants a store record whose payload passes
// the store's digest check (it is exactly what was Put) but is not a
// valid cell encoding. The manager must quarantine it and recompute —
// never serve garbage — and the recomputed run heals the store and still
// matches a store-less reference byte for byte.
func TestStoreGarbageRecomputed(t *testing.T) {
	spec := Spec{Seed: 9, Shards: 2,
		Schemes:  resumeSchemes[:1],
		Profiles: resumeProfiles[:1],
		Cohorts:  resumeCohorts[:1],
	}
	ref := NewManager(Config{Runners: 1, Workers: 2})
	want := runSpec(t, ref, spec)
	ref.Close()
	key := want.Cells[0].Key

	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(key, []byte("not a cell payload")); err != nil {
		t.Fatal(err)
	}

	m := NewManager(Config{Runners: 1, Workers: 2, Store: st})
	defer m.Close()
	got := runSpec(t, m, spec)
	if m.CellsExecuted() != 1 {
		t.Fatalf("executed %d cells, want 1 (garbage must not be served)", m.CellsExecuted())
	}
	assertSameResult(t, want, got)
	if stats := st.Stats(); stats.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", stats.Quarantined)
	}

	// The recompute healed the store: a fresh manager over the same store
	// now serves the cell without executing anything.
	m2 := NewManager(Config{Runners: 1, Workers: 2, Store: st})
	defer m2.Close()
	healed := runSpec(t, m2, spec)
	if m2.CellsExecuted() != 0 {
		t.Fatalf("healed store still executed %d cells", m2.CellsExecuted())
	}
	assertSameResult(t, want, healed)
}

// TestCellLookupByKey exercises Manager.Cell — the GET /v1/cells handler's
// backend — across both tiers: memory hit, store hit after a restart, and
// a miss for an unknown key.
func TestCellLookupByKey(t *testing.T) {
	spec := Spec{Seed: 3, Shards: 2,
		Schemes:  resumeSchemes[:2],
		Profiles: resumeProfiles[:1],
		Cohorts:  resumeCohorts[:1],
	}
	dir := t.TempDir()
	m1, st1 := storeManager(t, dir)
	res := runSpec(t, m1, spec)
	key := res.Cells[1].Key
	wantJSON, err := res.Cells[1].JSON()
	if err != nil {
		t.Fatal(err)
	}

	// Memory tier.
	c, ok := m1.Cell(key)
	if !ok || c.Key != key {
		t.Fatalf("memory lookup failed (ok=%v)", ok)
	}
	m1.Close()
	st1.Close()

	// Store tier, fresh process life.
	m2, st2 := storeManager(t, dir)
	defer st2.Close()
	defer m2.Close()
	c, ok = m2.Cell(key)
	if !ok {
		t.Fatal("store lookup failed")
	}
	gotJSON, err := c.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if c.Key != key || !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("store-served cell differs from the computed one")
	}
	if _, ok := m2.Cell("0000000000000000000000000000000000000000000000000000000000000000"); ok {
		t.Fatal("unknown key should miss")
	}
}
