package jobs

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/store"
)

// TestCellParallelDeterminism is the scheduling-independence property: a
// grid run at any cell-concurrency level — 2, the machine width, more
// slots than cells — produces byte-identical output to the strictly
// sequential CellParallel=1 run. Every rendered form is compared (job
// JSON/CSV/text, per-cell JSON, per-cell fingerprints, via
// assertSameResult) plus the durable store contents record by record, so
// a scheduling-dependent byte anywhere in the pipeline fails loudly.
// Run under -race this also exercises the executor's synchronization.
func TestCellParallelDeterminism(t *testing.T) {
	spec := Spec{Seed: 11, Shards: 2,
		Schemes:  resumeSchemes,  // 3
		Profiles: resumeProfiles, // x2
		Cohorts:  resumeCohorts,  // x2 = 12 cells
	}

	// Reference: sequential cells writing through a store, caches disabled
	// so every cell truly executes.
	refStore, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	ref := NewManager(Config{Runners: 1, Workers: 2, CellParallel: 1,
		CacheSize: -1, CellCacheSize: -1, Store: refStore})
	want := runSpec(t, ref, spec)
	if got := ref.CellsExecuted(); got != uint64(len(want.Cells)) {
		t.Fatalf("reference executed %d cells, want %d", got, len(want.Cells))
	}
	ref.Close()

	for _, par := range []int{2, runtime.GOMAXPROCS(0), len(want.Cells) + 8} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			st, err := store.Open(store.Config{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			m := NewManager(Config{Runners: 1, Workers: 4, CellParallel: par,
				CacheSize: -1, CellCacheSize: -1, Store: st})
			defer m.Close()
			got := runSpec(t, m, spec)
			if n := m.CellsExecuted(); n != uint64(len(want.Cells)) {
				t.Fatalf("executed %d cells, want %d", n, len(want.Cells))
			}
			assertSameResult(t, want, got)
			// The store must hold the same records the sequential run wrote:
			// same keys, same bytes — completion-order writes are invisible.
			if st.Len() != refStore.Len() {
				t.Fatalf("store holds %d cells, reference %d", st.Len(), refStore.Len())
			}
			for _, c := range want.Cells {
				wantRec, ok1 := refStore.Get(c.Key)
				gotRec, ok2 := st.Get(c.Key)
				if !ok1 || !ok2 {
					t.Fatalf("cell %s missing from a store (ref=%v cur=%v)", c.Key, ok1, ok2)
				}
				if !bytes.Equal(wantRec, gotRec) {
					t.Fatalf("cell %s store record differs from sequential run", c.Key)
				}
			}
		})
	}
}

// TestConcurrentCellsSharedTiers drives two overlapping grids through two
// concurrent runners over one shared store and cell cache: their common
// cells race through store.Put and the cell-cache put from different cell
// goroutines. Same-key writes are idempotent upserts of byte-identical
// records, so both jobs must still match a quiet reference manager byte
// for byte — and under -race this is the executor/store/cache contention
// test.
func TestConcurrentCellsSharedTiers(t *testing.T) {
	base := Spec{Seed: 5, Shards: 2,
		Schemes:  resumeSchemes[:2],
		Profiles: resumeProfiles,
		Cohorts:  resumeCohorts[:1],
	}
	super := base
	super.Schemes = resumeSchemes // superset: shares base's 4 cells, adds 2

	ref := NewManager(Config{Runners: 1, Workers: 2})
	wantBase := runSpec(t, ref, base)
	wantSuper := runSpec(t, ref, super)
	ref.Close()

	for trial := 0; trial < 3; trial++ {
		st, err := store.Open(store.Config{Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		m := NewManager(Config{Runners: 2, Workers: 2, CacheSize: -1, Store: st})
		j1, err := m.Submit(base)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := m.Submit(super)
		if err != nil {
			t.Fatal(err)
		}
		<-j1.Done()
		<-j2.Done()
		if err := j1.Err(); err != nil {
			t.Fatal(err)
		}
		if err := j2.Err(); err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, wantBase, j1.Result())
		assertSameResult(t, wantSuper, j2.Result())
		m.Close()
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCellsInFlightSettles pins the health gauge's resting state: after
// every submitted job finishes, no cell goroutines remain in flight.
func TestCellsInFlightSettles(t *testing.T) {
	m := NewManager(Config{Runners: 2, Workers: 2, CacheSize: -1, CellCacheSize: -1})
	defer m.Close()
	spec := Spec{Seed: 2, Shards: 2,
		Schemes:  resumeSchemes[:2],
		Profiles: resumeProfiles[:1],
		Cohorts:  resumeCohorts[:1],
	}
	for i := 0; i < 2; i++ {
		runSpec(t, m, spec)
	}
	if n := m.CellsInFlight(); n != 0 {
		t.Fatalf("cells in flight after completion = %d, want 0", n)
	}
}
