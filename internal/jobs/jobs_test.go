package jobs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/fleet"
)

func testSpec(users int) Spec {
	return Spec{Users: users, Seed: 7, Duration: Duration(15 * time.Minute)}
}

// blockingRunner returns a fake fleet runner that reports one partial,
// signals `started`, then blocks until its Cancel channel closes (returning
// ErrCanceled) or `release` closes (returning an empty summary).
func blockingRunner(started, release chan struct{}) runFleetFunc {
	return func(fjobs []fleet.Job, opts fleet.Options, cfg fleet.SummaryConfig,
		onProgress func(func() *fleet.Summary, fleet.Progress)) (*fleet.Summary, error) {
		if onProgress != nil {
			onProgress(func() *fleet.Summary { return fleet.NewSummary(cfg) },
				fleet.Progress{DoneShards: 1, Shards: 4, DoneJobs: 1, TotalJobs: len(fjobs)})
		}
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-opts.Cancel:
			return nil, fleet.ErrCanceled
		case <-release:
			return fleet.NewSummary(cfg), nil
		}
	}
}

// TestQueueFullRejection fills the bounded queue behind a blocked runner
// and expects ErrQueueFull — fail-fast backpressure, not buffering.
func TestQueueFullRejection(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{QueueDepth: 2, Runners: 1, CacheSize: -1,
		runFleet: blockingRunner(started, release)})
	defer m.Close()

	// First job occupies the runner; the queue is empty again once popped.
	if _, err := m.Submit(testSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	// Two more fill the depth-2 queue (distinct specs: caching is off but
	// fingerprints must differ anyway to mirror real traffic).
	for i := 2; i <= 3; i++ {
		if _, err := m.Submit(testSpec(i)); err != nil {
			t.Fatalf("job %d should queue: %v", i, err)
		}
	}
	_, err := m.Submit(testSpec(4))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
}

// TestCancelRunningJob cancels a job mid-run (the fake runner is blocked
// between shards on the fleet Cancel channel) and expects the canceled
// terminal state with ErrCanceled.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{Runners: 1, CacheSize: -1,
		runFleet: blockingRunner(started, release)})
	defer m.Close()

	job, err := m.Submit(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if st := job.Status(); st.State != StateRunning || st.Progress.DoneShards != 1 {
		t.Fatalf("before cancel: %+v", st)
	}
	if job.Partial() == nil {
		t.Fatal("no partial snapshot before cancel")
	}
	if _, ok := m.Cancel(job.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	<-job.Done()
	st := job.Status()
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if !errors.Is(job.Err(), fleet.ErrCanceled) {
		t.Fatalf("err %v, want ErrCanceled", job.Err())
	}
	if job.Result() != nil {
		t.Fatal("canceled job exposes a result")
	}
}

// TestCancelQueuedJob cancels a job still in the queue: it must terminate
// immediately, before any runner touches it, and the runner must skip it.
func TestCancelQueuedJob(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	m := NewManager(Config{Runners: 1, CacheSize: -1,
		runFleet: blockingRunner(started, release)})
	defer m.Close()

	if _, err := m.Submit(testSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Cancel(queued.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	<-queued.Done()
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	close(release) // let the first job finish; the runner must skip job 2
	<-mustGet(t, m, "job-000001").Done()
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("runner resurrected a canceled job: %+v", st)
	}
}

// TestCancelFreesQueueSlot cancels a queued job and expects its queue
// capacity back immediately — canceled entries must not hold admission
// slots while they wait to be popped and discarded.
func TestCancelFreesQueueSlot(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{QueueDepth: 1, Runners: 1, CacheSize: -1,
		runFleet: blockingRunner(started, release)})
	defer m.Close()

	if _, err := m.Submit(testSpec(1)); err != nil { // occupies the runner
		t.Fatal(err)
	}
	<-started
	queued, err := m.Submit(testSpec(2)) // fills the depth-1 queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got %v", err)
	}
	if _, ok := m.Cancel(queued.ID()); !ok {
		t.Fatal("cancel: job not found")
	}
	<-queued.Done()
	if _, err := m.Submit(testSpec(3)); err != nil {
		t.Fatalf("canceled job still holds its queue slot: %v", err)
	}
}

// TestRegistryRetention bounds the job registry: beyond MaxRecords the
// oldest terminal jobs are forgotten, live ones never.
func TestRegistryRetention(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{QueueDepth: 16, Runners: 1, CacheSize: -1, MaxRecords: 3,
		runFleet: blockingRunner(started, release)})
	defer m.Close()

	running, err := m.Submit(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var canceled []*Job
	for i := 2; i <= 6; i++ {
		j, err := m.Submit(testSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		m.Cancel(j.ID())
		<-j.Done()
		canceled = append(canceled, j)
	}
	if n := m.Len(); n > 3 {
		t.Fatalf("registry holds %d jobs, want <= MaxRecords(3)", n)
	}
	if _, ok := m.Get(running.ID()); !ok {
		t.Fatal("live job was evicted")
	}
	if _, ok := m.Get(canceled[0].ID()); ok {
		t.Fatal("oldest terminal job not evicted")
	}
}

// TestSpecLimits rejects jobs whose admitted footprint is unbounded.
func TestSpecLimits(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	for _, spec := range []Spec{
		{Users: MaxUsers + 1},
		{Users: 1, Duration: MaxDuration + 1},
		{Users: 1, Shards: MaxShards + 1},
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("oversized spec %+v accepted", spec)
		}
	}
}

// TestCacheHitIsByteIdentical runs a real (small) cohort cold, resubmits
// the same spec, and requires a cache hit whose rendered JSON/CSV bytes
// are identical to the cold run's — the service's acceptance criterion.
func TestCacheHitIsByteIdentical(t *testing.T) {
	m := NewManager(Config{Runners: 1})
	defer m.Close()
	spec := Spec{Users: 3, Seed: 11, Duration: Duration(10 * time.Minute), Shards: 4}

	cold, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-cold.Done()
	if st := cold.Status(); st.State != StateDone || st.CacheHit {
		t.Fatalf("cold run: %+v (err %v)", st, cold.Err())
	}
	warm, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-warm.Done()
	st := warm.Status()
	if st.State != StateDone || !st.CacheHit {
		t.Fatalf("warm run not a cache hit: %+v", st)
	}
	if st.Fingerprint != cold.Status().Fingerprint {
		t.Fatal("fingerprints differ for identical specs")
	}
	cr, wr := cold.Result(), warm.Result()
	if cr == nil || wr == nil {
		t.Fatal("missing results")
	}
	crJSON, err := cr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	wrJSON, err := wr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crJSON, wrJSON) {
		t.Fatalf("cache hit JSON differs:\n%s\nvs\n%s", crJSON, wrJSON)
	}
	crCSV, err := cr.CSV()
	if err != nil {
		t.Fatal(err)
	}
	wrCSV, err := wr.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crCSV, wrCSV) {
		t.Fatal("cache hit CSV differs")
	}
	if len(crJSON) == 0 || cr.Stats().Jobs != 3 {
		t.Fatalf("implausible result: %d JSON bytes, %d jobs", len(crJSON), cr.Stats().Jobs)
	}
	// A different spec must not hit the cache.
	other, err := m.Submit(Spec{Users: 3, Seed: 12, Duration: Duration(10 * time.Minute), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if other.Status().CacheHit {
		t.Fatal("different seed produced a cache hit")
	}
	<-other.Done()
}

// TestFingerprintSensitivity checks every cache-key component moves the
// fingerprint, and that normalization (defaults) does not.
func TestFingerprintSensitivity(t *testing.T) {
	base := Spec{Users: 10, Seed: 1}.withDefaults()
	fp := base.Fingerprint()
	if explicit := base.Fingerprint(); explicit != fp {
		t.Fatal("fingerprint not stable")
	}
	if (Spec{Users: 10, Seed: 1}).Fingerprint() != fp {
		t.Fatal("normalization changed the fingerprint")
	}
	mutate := []Spec{
		{Users: 11, Seed: 1},
		{Users: 10, Seed: 2},
		{Users: 10, Seed: 1, Duration: Duration(time.Hour)},
		{Users: 10, Seed: 1, Profile: "AT&T 3G"},
		{Users: 10, Seed: 1, Policy: fleet.PolicyOracle},
		{Users: 10, Seed: 1, Active: fleet.ActiveLearn},
		{Users: 10, Seed: 1, Shards: 7},
	}
	seen := map[string]bool{fp: true}
	for i, s := range mutate {
		got := s.Fingerprint()
		if seen[got] {
			t.Fatalf("mutation %d did not change the fingerprint", i)
		}
		seen[got] = true
	}
}

// TestSubmitValidation rejects bad specs before they reach the queue.
func TestSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	for _, spec := range []Spec{
		{},                                   // no users
		{Users: 1, Profile: "Nokia 1G"},      // unknown profile
		{Users: 1, Policy: "extra-fast"},     // unknown policy
		{Users: 1, Active: "procrastinator"}, // unknown active policy
	} {
		if _, err := m.Submit(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

func mustGet(t *testing.T, m *Manager, id string) *Job {
	t.Helper()
	j, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return j
}
