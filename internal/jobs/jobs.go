// Package jobs is the asynchronous job layer between the HTTP service and
// the fleet runtime: a bounded queue of sweep-grid replay jobs — each a
// cross product of parameterized scheme × carrier-profile × cohort axis
// values — per-job lifecycle state (queued → running → done/failed/
// canceled), cooperative cancellation that propagates into the fleet via
// its Cancel channel, and two result caches keyed by deterministic
// identities: a job-level cache on the v4 fingerprint (seed, burst gap,
// shards, plus the canonical byte-stable encoding of every axis value on
// all three axes) and a cell-level cache on the per-cell restriction of
// the same identity, so overlapping grids reuse prior cells' work — and
// resubmitting an identical spec (however its axis values are spelled) is
// served with byte-identical rendered output.
//
// A grid executes as one fleet run per cell in a fixed order
// (cohort-major, then profile, then scheme), every cell of a cohort
// replaying the identical streamed population, which keeps each cell's
// reduction grouping equal to a single-axis job's — a grid's cell
// summaries are byte-identical to separate jobs on the same seed.
//
// Results are rendered (JSON/CSV/text) lazily, at most once per form, on
// first read; cache hits share the *Result and with it the memoized
// rendered bytes. Because the fleet reduction is deterministic and the
// shard count is part of both keys, a cache hit returns the same bytes a
// cold rerun would have produced.
package jobs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fleet"
	"repro/internal/store"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Queued and Running are live; the rest are
// terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrQueueFull is returned by Submit when the bounded queue has no room.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Progress mirrors fleet.Progress with JSON field names for the API.
type Progress struct {
	DoneShards int `json:"done_shards"`
	Shards     int `json:"shards"`
	DoneJobs   int `json:"done_jobs"`
	TotalJobs  int `json:"total_jobs"`
}

// Status is a point-in-time snapshot of a job, safe to serialize.
type Status struct {
	ID          string   `json:"id"`
	State       State    `json:"state"`
	Fingerprint string   `json:"fingerprint"`
	CacheHit    bool     `json:"cache_hit"`
	Spec        Spec     `json:"spec"`
	Progress    Progress `json:"progress"`
	Error       string   `json:"error,omitempty"`
	SubmittedAt string   `json:"submitted_at,omitempty"`
	StartedAt   string   `json:"started_at,omitempty"`
	FinishedAt  string   `json:"finished_at,omitempty"`
}

// Job is one submitted simulation. All mutable state is behind mu;
// external readers use Status, Partial, Result and Done.
type Job struct {
	id          string
	spec        Spec
	fingerprint string

	cancel     chan struct{}
	cancelOnce sync.Once
	done       chan struct{}

	// cells is the Submit-time grid plan (resolved axes, cell keys,
	// progress denominators); runners execute it without re-resolving.
	cells []gridCell

	mu       sync.Mutex
	state    State
	cacheHit bool
	progress Progress
	// partialFn lazily materializes the latest partial summary; partialVer
	// advances whenever the underlying snapshot does, so Partial memoizes
	// the merge and redoes it only after new work completes.
	partialFn   func() *fleet.Summary
	partialVer  uint64
	partialMemo *fleet.Summary
	memoVer     uint64
	result      *Result
	err         error
	submitted   time.Time
	started     time.Time
	finished    time.Time
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.id,
		State:       j.state,
		Fingerprint: j.fingerprint,
		CacheHit:    j.cacheHit,
		Spec:        j.spec,
		Progress:    j.progress,
		SubmittedAt: rfc3339(j.submitted),
		StartedAt:   rfc3339(j.started),
		FinishedAt:  rfc3339(j.finished),
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Partial returns the latest merged partial summary (nil before the first
// shard completes). The returned summary is an immutable snapshot. The
// merge materializes lazily on read and is memoized per snapshot version,
// so unread partials cost nothing and repeated polls of a quiet job reuse
// one merge.
func (j *Job) Partial() *fleet.Summary {
	j.mu.Lock()
	fn, ver := j.partialFn, j.partialVer
	if fn == nil {
		j.mu.Unlock()
		return nil
	}
	if ver == j.memoVer {
		memo := j.partialMemo
		j.mu.Unlock()
		return memo
	}
	j.mu.Unlock()
	sum := fn() // outside j.mu: may merge many shard accumulators
	j.mu.Lock()
	if ver > j.memoVer {
		j.memoVer, j.partialMemo = ver, sum
	}
	j.mu.Unlock()
	return sum
}

// setPartial installs a new lazy partial producer with its progress counts
// and advances the snapshot version so the next Partial re-materializes.
func (j *Job) setPartial(fn func() *fleet.Summary, p Progress) {
	j.mu.Lock()
	j.partialFn = fn
	j.partialVer++
	j.progress = p
	j.mu.Unlock()
}

// Result returns the rendered result, or nil unless the job is done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the failure (or cancellation) error, nil while live or done.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// finish moves the job to a terminal state exactly once.
func (j *Job) finish(state State, res *Result, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = res
	j.err = err
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// runFleetFunc is the seam between the job layer and the fleet runtime;
// tests substitute a controllable fake to exercise the lifecycle without
// replaying real cohorts. The progress callback carries a lazy snapshot
// function (fleet.RunSummaryLazyProgress's shape), so per-shard progress
// costs nothing until somebody reads a partial.
type runFleetFunc func(fjobs []fleet.Job, opts fleet.Options, cfg fleet.SummaryConfig,
	onProgress func(snap func() *fleet.Summary, p fleet.Progress)) (*fleet.Summary, error)

// Config tunes a Manager. The zero value gives a 32-deep queue, a
// 128-entry cache, one job runner, and all-core fleet workers per job.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run (default 32).
	// Submissions beyond it fail fast with ErrQueueFull — backpressure,
	// not unbounded buffering.
	QueueDepth int
	// CacheSize bounds the fingerprint → result cache (default 128
	// entries, LRU eviction). Negative disables caching.
	CacheSize int
	// CellCacheSize bounds the cell-key → cell-result cache (default 1024
	// entries, LRU eviction; negative disables). Cells are the unit of
	// cross-job reuse: a grid overlapping an earlier grid (or an earlier
	// single-axis job) replays only its novel cells.
	CellCacheSize int
	// DefaultProfile, when set, substitutes for an empty legacy flat
	// Profile field at submission (rrcsimd's -profile flag). It does not
	// touch explicit Profiles axes.
	DefaultProfile string
	// Runners is the number of jobs executing concurrently (default 1;
	// each job already parallelizes internally across Workers).
	Runners int
	// Workers sizes the manager-wide worker budget (<= 0 = all cores):
	// the bound on concurrent replay goroutines shared between intra-cell
	// fleet shards and inter-cell parallelism, across every runner. Worker
	// count never changes results.
	Workers int
	// CellParallel caps how many grid cells of one job execute
	// concurrently (0 = as many as the worker budget admits; 1 =
	// sequential cells, the historical behavior; results are
	// byte-identical at every setting). Cells dispatch onto the shared
	// worker budget either way, so raising it never over-subscribes the
	// machine — it only lets wide grids of small cells fill workers that
	// a single cell's shards would leave idle.
	CellParallel int
	// MaxRecords bounds the job registry (default 1024): once exceeded,
	// the oldest *terminal* jobs are forgotten (their id returns 404).
	// Live jobs are never evicted, so the registry — and with it the
	// memory pinned by retained results — cannot grow without bound on a
	// long-running daemon.
	MaxRecords int
	// Store, when non-nil, is the durable content-addressed cell store —
	// the second cache tier beneath the in-memory cell cache. Finished
	// cells are persisted to it (atomic, digest-protected writes) and
	// grid submissions diff their planned cells against it, so only the
	// frontier — cells no prior run of this or any earlier daemon ever
	// computed — executes. Store-served cells are byte-identical to cold
	// runs (the summary codec is bit-exact and rendering is
	// deterministic). The caller owns the store's lifecycle; close it
	// after Close.
	Store *store.Store
	// TraceCacheBytes budgets the shared trace cache (in bytes of
	// rrcstream-encoded slab, LRU eviction) that memoizes generated
	// cohort traffic across cells, jobs and runners, so a sweep
	// synthesizes each user's trace once — single-flight across
	// concurrent cells — instead of once per replay (default 32 MiB,
	// roughly 10M packets encoded; negative disables). Results are
	// unchanged: the codec round-trips bit-exactly and replaying the
	// slab is byte-identical to streaming the same seed.
	TraceCacheBytes int64

	// runFleet overrides the fleet call in tests; nil means the real one.
	runFleet runFleetFunc
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.CellCacheSize == 0 {
		c.CellCacheSize = 1024
	}
	if c.Runners <= 0 {
		c.Runners = 1
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 1024
	}
	if c.TraceCacheBytes == 0 {
		c.TraceCacheBytes = 32 << 20
	}
	if c.runFleet == nil {
		c.runFleet = fleet.RunSummaryLazyProgress
	}
	return c
}

// Manager owns the queue, the runners, the job registry and the result
// cache. Create with NewManager, dispose with Close.
type Manager struct {
	cfg Config
	wg  sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond // signals pending work or shutdown to runners
	// pending is the FIFO of jobs awaiting a runner. Canceled entries stay
	// until popped (and skipped), but QueueDepth admission counts only
	// still-queued jobs, so canceling frees its slot immediately.
	pending []*Job
	closed  bool
	nextID  int
	jobs    map[string]*Job
	order   []string
	cache   *lruCache[*Result]
	cells   *lruCache[*CellResult]

	// traces memoizes cohort traffic as encoded slabs across cells, jobs
	// and runners (nil when disabled). It has its own internal lock — the
	// fleet's workers consult it directly, outside mu — and its own
	// single-flight, so concurrently dispatched cells of one cohort share
	// one generation.
	traces *fleet.TraceCache

	// axes memoizes resolved grid-axis values across Submits (own lock;
	// consulted by planFingerprint outside mu).
	axes *axisCache

	// cellsRun counts cells actually executed by the fleet (as opposed to
	// served from a cache tier) — the observable the resume-equivalence
	// tests pin and a health gauge for cache effectiveness.
	cellsRun atomic.Uint64

	// cellsLive gauges cells currently executing across all runners (the
	// /healthz in-flight gauge).
	cellsLive atomic.Int64

	// budget is the manager-wide worker-token pool (cap = Config.Workers,
	// or GOMAXPROCS). A cell in flight holds one token (its first fleet
	// worker); extra fleet workers and additional concurrent cells each
	// hold one more, so total replay-goroutine pressure is capped at the
	// budget no matter how wide the grid or how many runners race.
	budget *fleet.Budget
}

// NewManager starts a manager with cfg.Runners runner goroutines.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:    cfg,
		jobs:   make(map[string]*Job),
		cache:  newLRUCache[*Result](cfg.CacheSize),
		cells:  newLRUCache[*CellResult](cfg.CellCacheSize),
		traces: fleet.NewTraceCache(cfg.TraceCacheBytes),
		axes:   newAxisCache(),
		budget: fleet.NewBudget(cfg.Workers),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Runners; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			for {
				m.mu.Lock()
				for len(m.pending) == 0 && !m.closed {
					m.cond.Wait()
				}
				if len(m.pending) == 0 { // closed and drained
					m.mu.Unlock()
					return
				}
				job := m.pending[0]
				m.pending = m.pending[1:]
				m.mu.Unlock()
				m.runJob(job)
			}
		}()
	}
	return m
}

// Close stops accepting submissions, cancels every live job, and waits for
// the runners to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	live := make([]*Job, 0, len(m.jobs))
	//rrclint:ordered shutdown cancel fan-out; cancellation order is unobservable in any result bytes
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	for _, j := range live {
		j.requestCancel()
	}
	m.wg.Wait()
}

// Submit validates and enqueues a job. A fingerprint already in the result
// cache short-circuits: the returned job is born done with CacheHit set
// and shares the cached rendered bytes. A full queue fails fast with
// ErrQueueFull and registers nothing. Validation, the fingerprint and the
// grid plan all come from one registry resolution per axis value
// (planFingerprint); the runner executes the stored plan without
// re-resolving.
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if spec.Profile == "" && len(spec.Profiles) == 0 && m.cfg.DefaultProfile != "" {
		spec.Profile = m.cfg.DefaultProfile
	}
	spec = spec.withDefaults()
	cells, fp, err := spec.planFingerprint(fleet.Options{Shards: spec.Shards}, m.axes)
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if res, ok := m.cache.get(fp); ok {
		job := m.newJobLocked(spec, fp)
		job.state = StateDone
		job.cacheHit = true
		job.result = res
		job.finished = job.submitted
		job.progress = Progress{
			DoneShards: res.Progress.Shards, Shards: res.Progress.Shards,
			DoneJobs: res.Progress.TotalJobs, TotalJobs: res.Progress.TotalJobs,
		}
		close(job.done)
		m.registerLocked(job)
		return job, nil
	}
	// Admission counts only still-queued pending jobs: canceled entries
	// linger in the FIFO until a runner pops them but hold no capacity.
	live := 0
	for _, j := range m.pending {
		if j.currentState() == StateQueued {
			live++
		}
	}
	if live >= m.cfg.QueueDepth {
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, m.cfg.QueueDepth)
	}
	job := m.newJobLocked(spec, fp)
	job.cells = cells
	m.pending = append(m.pending, job)
	m.registerLocked(job)
	m.cond.Signal()
	return job, nil
}

// currentState reads the job's state under its lock.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (m *Manager) newJobLocked(spec Spec, fp string) *Job {
	m.nextID++
	return &Job{
		id:          fmt.Sprintf("job-%06d", m.nextID),
		spec:        spec,
		fingerprint: fp,
		state:       StateQueued,
		cancel:      make(chan struct{}),
		done:        make(chan struct{}),
		submitted:   time.Now(),
	}
}

func (m *Manager) registerLocked(job *Job) {
	m.jobs[job.id] = job
	m.order = append(m.order, job.id)
	// Retention: evict the oldest terminal jobs beyond MaxRecords so the
	// registry (and the results it pins) stays bounded. Live jobs are
	// never evicted; if every record is live the registry may transiently
	// exceed the cap by the number of live jobs, which QueueDepth bounds.
	for len(m.order) > m.cfg.MaxRecords {
		evicted := false
		for i, id := range m.order {
			if m.jobs[id].currentState().Terminal() {
				delete(m.jobs, id)
				m.order = append(m.order[:i:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}

// Get returns a job by id.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	snapshot := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		snapshot = append(snapshot, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, 0, len(snapshot))
	for _, j := range snapshot {
		out = append(out, j.Status())
	}
	return out
}

// Cancel requests cancellation. A queued job cancels immediately; a
// running job cancels at the fleet's next between-jobs check. Canceling a
// terminal job is a no-op. The second return reports whether the job
// exists.
func (m *Manager) Cancel(id string) (Status, bool) {
	j, ok := m.Get(id)
	if !ok {
		return Status{}, false
	}
	j.requestCancel()
	return j.Status(), true
}

// requestCancel closes the cancel channel and terminates the job at once
// when it is not running (queued jobs must not wait for a runner to pop
// them to report canceled).
func (j *Job) requestCancel() {
	j.cancelOnce.Do(func() { close(j.cancel) })
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		j.finish(StateCanceled, nil, fleet.ErrCanceled)
	}
}

// runJob executes one popped job through the cell executor (exec.go):
// independent frontier cells dispatch concurrently onto the manager-wide
// worker budget while results are collected in planned cell order, so
// every rendering, partial snapshot, fingerprint and store record is
// byte-identical to a sequential run.
func (m *Manager) runJob(job *Job) {
	job.mu.Lock()
	if job.state.Terminal() { // canceled while queued
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.started = time.Now()
	spec := job.spec
	cells := job.cells
	job.mu.Unlock()
	newCellExec(m, job, spec, cells).run()
}

// CellsInFlight gauges how many grid cells are executing right now across
// all runners (for the health endpoint).
func (m *Manager) CellsInFlight() int64 { return m.cellsLive.Load() }

// lookupCell consults the cache tiers for a planned cell: the in-memory
// cell cache first, then the durable store. A store hit must survive
// three independent proofs before it is served: the store's record
// digest (these are the bytes Put wrote), the codec's framing (they
// mean a cell), and this function's cross-checks (they mean *this*
// cell: axis labels match the plan, and the summary's histogram layout
// equals the current default — mergePrior would panic on a drifted
// layout). Anything short of full proof quarantines the record and
// reports a miss; the cell recomputes, which is always safe.
func (m *Manager) lookupCell(cell gridCell) (*CellResult, bool) {
	m.mu.Lock()
	cached, hit := m.cells.get(cell.Key)
	m.mu.Unlock()
	if hit {
		return cached, true
	}
	if m.cfg.Store == nil {
		return nil, false
	}
	payload, ok := m.cfg.Store.Get(cell.Key)
	if !ok {
		return nil, false
	}
	res, err := decodeCellResult(payload)
	if err == nil && (res.Scheme != cell.Scheme || res.Profile != cell.Profile || res.Cohort != cell.Cohort) {
		err = fmt.Errorf("jobs: stored cell labels %s/%s/%s do not match plan %s/%s/%s",
			res.Scheme, res.Profile, res.Cohort, cell.Scheme, cell.Profile, cell.Cohort)
	}
	if err == nil && res.Summary.Config() != fleet.NewSummary(fleet.SummaryConfig{}).Config() {
		err = fmt.Errorf("jobs: stored cell summary layout drifted from current defaults")
	}
	if err != nil {
		m.cfg.Store.Quarantine(cell.Key)
		return nil, false
	}
	res.Key = cell.Key
	m.mu.Lock()
	m.cells.put(cell.Key, res)
	m.mu.Unlock()
	return res, true
}

// Cell returns a finished cell by its content-addressed key, consulting
// the in-memory cell cache and then the durable store (with the same
// verification lookupCell applies). It backs GET /v1/cells/{fingerprint}.
func (m *Manager) Cell(key string) (*CellResult, bool) {
	m.mu.Lock()
	cached, hit := m.cells.get(key)
	m.mu.Unlock()
	if hit {
		return cached, true
	}
	if m.cfg.Store == nil {
		return nil, false
	}
	payload, ok := m.cfg.Store.Get(key)
	if !ok {
		return nil, false
	}
	res, err := decodeCellResult(payload)
	if err == nil && res.Summary.Config() != fleet.NewSummary(fleet.SummaryConfig{}).Config() {
		err = fmt.Errorf("jobs: stored cell summary layout drifted from current defaults")
	}
	if err != nil {
		m.cfg.Store.Quarantine(key)
		return nil, false
	}
	res.Key = key
	m.mu.Lock()
	m.cells.put(key, res)
	m.mu.Unlock()
	return res, true
}

// CellsExecuted reports how many cells this manager actually ran through
// the fleet (cache- and store-served cells excluded) — the resume
// tests' frontier counter and a health gauge.
func (m *Manager) CellsExecuted() uint64 { return m.cellsRun.Load() }

// TraceCacheStats snapshots the trace cache's gauges (zeros when the
// cache is disabled) — hit/miss/eviction counters and retained slab
// bytes for the health endpoint.
func (m *Manager) TraceCacheStats() fleet.TraceCacheStats { return m.traces.Stats() }

// StoreStats snapshots the durable store's gauges; ok is false when the
// manager runs without a store.
func (m *Manager) StoreStats() (store.Stats, bool) {
	if m.cfg.Store == nil {
		return store.Stats{}, false
	}
	return m.cfg.Store.Stats(), true
}

// mustMerge folds src into dst; layout mismatches are impossible (every
// summary of a job shares one SummaryConfig), so the error path panics.
func mustMerge(dst, src *fleet.Summary) {
	if err := dst.Merge(src); err != nil {
		panic(err)
	}
}

// lruCache is a small LRU keyed by a deterministic identity (the job
// fingerprint, or a cell key). Guarded by the manager's lock.
type lruCache[V any] struct {
	cap     int
	entries map[string]V
	// lru holds keys, least recent first.
	lru []string
}

func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache[V]{cap: capacity, entries: make(map[string]V)}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	res, ok := c.entries[key]
	if ok {
		c.touch(key)
	}
	return res, ok
}

func (c *lruCache[V]) put(key string, res V) {
	if c.cap == 0 {
		return
	}
	if _, ok := c.entries[key]; ok {
		c.entries[key] = res
		c.touch(key)
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.lru[0]
		c.lru = c.lru[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = res
	c.lru = append(c.lru, key)
}

func (c *lruCache[V]) touch(key string) {
	for i, f := range c.lru {
		if f == key {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), key)
			return
		}
	}
}

// CacheLen reports the number of cached results (for the health endpoint).
func (m *Manager) CacheLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache.entries)
}

// CellCacheLen reports the number of cached grid cells (for the health
// endpoint).
func (m *Manager) CellCacheLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cells.entries)
}

// Len reports the number of registered jobs without materializing their
// statuses (for the health endpoint).
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// QueueDepth returns the configured queue bound.
func (m *Manager) QueueDepth() int { return m.cfg.QueueDepth }
