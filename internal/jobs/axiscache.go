package jobs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/power"
)

// axisCache memoizes successful grid-axis resolutions across Submits.
// Registries are append-only — Register and Alias both reject re-binding an
// existing name — so a name's resolution can never change for the life of
// the process and cached bundles stay valid indefinitely. Entries are keyed
// by the request's exact spelling (label, names, raw parameter types and
// values), so differently-spelled equivalents ("4500ms" vs "4.5s") miss and
// resolve fresh rather than risk a false hit. Failed resolutions are never
// cached: a name unknown today may be registered tomorrow.
//
// Cached bundles are shared across jobs. Everything they carry — profile
// values, cohort mixes, prepared source constructors, policy factories —
// is read-only after resolution, so sharing is race-free. The cohort key
// folds in the seed and burst gap because ResolveCohort bakes both into
// the bundle (the burst gap is the only sim option the planner sets, so
// equal gaps mean interchangeable Opts).
type axisCache struct {
	mu       sync.Mutex
	schemes  map[string]fleet.ResolvedScheme
	profiles map[string]power.ResolvedProfile
	cohorts  map[string]fleet.ResolvedCohort
}

// axisCacheMax bounds each axis map. Overflow clears the map wholesale:
// sweep traffic cycles a small axis vocabulary, so a reset beats LRU
// bookkeeping, and a full rebuild costs one resolution per distinct value.
const axisCacheMax = 4096

func newAxisCache() *axisCache {
	return &axisCache{
		schemes:  map[string]fleet.ResolvedScheme{},
		profiles: map[string]power.ResolvedProfile{},
		cohorts:  map[string]fleet.ResolvedCohort{},
	}
}

// appendSpecKey appends a collision-free encoding of one name+params spec:
// NUL-delimited name, then the parameters sorted by key, each as name,
// dynamic type and value ("%T"/"%v"). The type tag keeps int 4 and string
// "4" distinct, so a spelling that would fail coercion can never collide
// with one that resolved.
func appendSpecKey(b []byte, name string, params map[string]any) []byte {
	b = append(b, name...)
	b = append(b, 0)
	if len(params) > 1 {
		keys := make([]string, 0, len(params))
		for k := range params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = fmt.Appendf(b, "%s\x00%T\x00%v\x00", k, params[k], params[k])
		}
		return b
	}
	//rrclint:ordered at most one key: the len>1 branch above sorted and returned, so this loop runs 0 or 1 times
	for k, v := range params {
		b = fmt.Appendf(b, "%s\x00%T\x00%v\x00", k, v, v)
	}
	return b
}

func schemeKey(ss fleet.SchemeSpec) string {
	b := make([]byte, 0, 96)
	b = append(b, ss.Label...)
	b = append(b, 0)
	b = appendSpecKey(b, ss.Policy.Name, ss.Policy.Params)
	if ss.Active != nil {
		b = appendSpecKey(b, ss.Active.Name, ss.Active.Params)
	}
	return string(b)
}

func profileKey(ps power.ProfileSpec) string {
	b := make([]byte, 0, 96)
	b = append(b, ps.Label...)
	b = append(b, 0)
	b = appendSpecKey(b, ps.Name, ps.Params)
	return string(b)
}

func cohortKey(cs fleet.CohortSpec, seed int64, burstGap time.Duration) string {
	b := make([]byte, 0, 96)
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, 0)
	b = strconv.AppendInt(b, int64(burstGap), 10)
	b = append(b, 0)
	b = append(b, cs.Label...)
	b = append(b, 0)
	b = appendSpecKey(b, cs.Name, cs.Params)
	return string(b)
}

// All accessors are nil-receiver safe (a nil cache never hits and never
// stores), so the planner works uncached when no manager is involved.

func (c *axisCache) getScheme(key string) (fleet.ResolvedScheme, bool) {
	if c == nil {
		return fleet.ResolvedScheme{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.schemes[key]
	return v, ok
}

func (c *axisCache) putScheme(key string, v fleet.ResolvedScheme) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.schemes) >= axisCacheMax {
		clear(c.schemes)
	}
	c.schemes[key] = v
}

func (c *axisCache) getProfile(key string) (power.ResolvedProfile, bool) {
	if c == nil {
		return power.ResolvedProfile{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.profiles[key]
	return v, ok
}

func (c *axisCache) putProfile(key string, v power.ResolvedProfile) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.profiles) >= axisCacheMax {
		clear(c.profiles)
	}
	c.profiles[key] = v
}

func (c *axisCache) getCohort(key string) (fleet.ResolvedCohort, bool) {
	if c == nil {
		return fleet.ResolvedCohort{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.cohorts[key]
	return v, ok
}

func (c *axisCache) putCohort(key string, v fleet.ResolvedCohort) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cohorts) >= axisCacheMax {
		clear(c.cohorts)
	}
	c.cohorts[key] = v
}
