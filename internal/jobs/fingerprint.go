package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/fleet"
	"repro/internal/power"
	"repro/internal/sim"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("4h30m"), so job specs read naturally over the HTTP API. Integer
// nanoseconds are also accepted on input.
type Duration time.Duration

// MarshalJSON renders the duration as its canonical Go string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a Go duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobs: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("jobs: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// Spec describes one cohort replay job: the synthetic population (users,
// seed, per-user duration, diurnal mask), the carrier profile, the policy
// pair, and the shard count that pins the reduction grouping. A Spec is
// the entire job input — two equal normalized Specs denote the same
// computation, which is what makes the fingerprint a sound cache key.
type Spec struct {
	// Users is the cohort size (required, > 0).
	Users int `json:"users"`
	// Seed roots every per-user trace seed (fleet.UserSeed spacing).
	Seed int64 `json:"seed"`
	// Duration is the per-user trace length (default 4h).
	Duration Duration `json:"duration"`
	// Diurnal wraps users in the day/night activity mask (default true —
	// population-scale runs model day-scale load).
	Diurnal *bool `json:"diurnal,omitempty"`
	// Profile is the carrier profile name (default "Verizon 3G").
	Profile string `json:"profile"`
	// Policy is the demote policy name (default "makeidle"); see
	// fleet.NamedDemote for the accepted set.
	Policy string `json:"policy"`
	// Active is the batching policy name (default "none").
	Active string `json:"active"`
	// BurstGap is the session segmentation gap (default 1s).
	BurstGap Duration `json:"burst_gap"`
	// Shards is the aggregate partition count (default
	// fleet.DefaultShards). Part of the fingerprint: the shard count fixes
	// the floating-point reduction grouping, so two runs that differ only
	// in shards may differ in float rounding and must not share a cache
	// entry.
	Shards int `json:"shards"`
}

// withDefaults returns the normalized spec: every optional field resolved
// to its default so equal jobs normalize to equal specs.
func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = Duration(4 * time.Hour)
	}
	if s.Diurnal == nil {
		t := true
		s.Diurnal = &t
	}
	if s.Profile == "" {
		s.Profile = power.Verizon3G.Name
	}
	if s.Policy == "" {
		s.Policy = fleet.PolicyMakeIdle
	}
	if s.Active == "" {
		s.Active = fleet.ActiveNone
	}
	if s.BurstGap <= 0 {
		s.BurstGap = Duration(time.Second)
	}
	if s.Shards <= 0 {
		s.Shards = fleet.DefaultShards
	}
	return s
}

// Admission bounds on a single job: a spec is one HTTP request, so its
// resource footprint must be bounded before it reaches a runner. MaxUsers
// bounds the O(users) job-slice allocation (~150 MB at the limit);
// MaxDuration bounds per-user trace length; MaxShards bounds the partial
// accumulator array (the fleet clamps shards to the job count anyway).
const (
	MaxUsers    = 1_000_000
	MaxDuration = Duration(30 * 24 * time.Hour)
	MaxShards   = 1 << 16
)

// validate rejects unusable specs with a client-attributable error. The
// spec must already be normalized.
func (s Spec) validate() error {
	if s.Users <= 0 {
		return fmt.Errorf("jobs: users must be > 0")
	}
	if s.Users > MaxUsers {
		return fmt.Errorf("jobs: users %d exceeds the limit of %d", s.Users, MaxUsers)
	}
	if s.Duration > MaxDuration {
		return fmt.Errorf("jobs: duration %s exceeds the limit of %s",
			time.Duration(s.Duration), time.Duration(MaxDuration))
	}
	if s.Shards > MaxShards {
		return fmt.Errorf("jobs: shards %d exceeds the limit of %d", s.Shards, MaxShards)
	}
	if _, ok := power.ByName(s.Profile); !ok {
		return fmt.Errorf("jobs: unknown profile %q", s.Profile)
	}
	if _, err := fleet.NamedScheme(s.Policy, s.Active, time.Duration(s.BurstGap)); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}

// SourceSpec is the canonical description of the job's packet source: a
// source kind plus every parameter that determines the packets it emits.
// The fleet streams cohort traffic straight from source constructors, so
// there is never a materialized trace to hash — instead the cache key
// digests this spec, which identifies the packet streams exactly (same
// kind, params and seed ⇒ same packets, by the workload determinism
// contract).
func (s Spec) SourceSpec() string {
	s = s.withDefaults()
	return fmt.Sprintf("kind=synthetic-cohort|users=%d|seed=%d|dur=%s|diurnal=%t",
		s.Users, s.Seed, time.Duration(s.Duration), s.Diurnal != nil && *s.Diurnal)
}

// SourceHash digests the source spec; it stands in for hashing the traces
// themselves, which streaming never materializes.
func (s Spec) SourceHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", s.SourceSpec())
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint is the deterministic cache key of the normalized spec:
// sha256 over (source hash, profile, policy, seed, users, shards) plus the
// remaining replay parameters (active policy, burst gap) that change the
// output. Equal fingerprints imply byte-identical results, because the
// computation is deterministic given the spec and the shard count is part
// of the key.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "v2|source=%s|profile=%s|policy=%s|active=%s|burstgap=%s|seed=%d|users=%d|shards=%d",
		s.SourceHash(), s.Profile, s.Policy, s.Active,
		time.Duration(s.BurstGap), s.Seed, s.Users, s.Shards)
	return hex.EncodeToString(h.Sum(nil))
}

// fleetJobs expands the normalized spec into the cohort's fleet jobs.
func (s Spec) fleetJobs() ([]fleet.Job, error) {
	scheme, err := fleet.NamedScheme(s.Policy, s.Active, time.Duration(s.BurstGap))
	if err != nil {
		return nil, err
	}
	prof, ok := power.ByName(s.Profile)
	if !ok {
		return nil, fmt.Errorf("jobs: unknown profile %q", s.Profile)
	}
	cohort := fleet.Cohort{
		Users:    s.Users,
		Seed:     s.Seed,
		Duration: time.Duration(s.Duration),
		Diurnal:  s.Diurnal != nil && *s.Diurnal,
		Opts:     &sim.Options{BurstGap: time.Duration(s.BurstGap)},
	}
	return cohort.Jobs(prof, []fleet.Scheme{scheme}), nil
}
