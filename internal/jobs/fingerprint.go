package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("4h30m"), so job specs read naturally over the HTTP API. Integer
// nanoseconds are also accepted on input.
type Duration time.Duration

// MarshalJSON renders the duration as its canonical Go string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a Go duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobs: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("jobs: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// registry is the policy registry every job spec resolves against.
func registry() *policy.Registry { return policy.Default() }

// Spec describes one cohort replay job: the synthetic population (users,
// seed, per-user duration, diurnal mask), the carrier profile, the scheme
// specs to replay it under, and the shard count that pins the reduction
// grouping. A Spec is the entire job input — two Specs with equal
// canonical scheme encodings and equal cohort fields denote the same
// computation, which is what makes the fingerprint a sound cache key.
//
// Schemes is the parameterized form: each entry names a registered demote
// policy (and optionally a batching policy) with parameter overrides, so
// one job can sweep a whole parameter grid — every scheme replays the
// same streamed cohort and aggregates under its own label. The flat
// Policy/Active names are the legacy single-scheme form; when Schemes is
// empty they are mapped through the registry's aliases to an equivalent
// one-entry scheme list with the historical label.
type Spec struct {
	// Users is the cohort size (required, > 0).
	Users int `json:"users"`
	// Seed roots every per-user trace seed (fleet.UserSeed spacing).
	Seed int64 `json:"seed"`
	// Duration is the per-user trace length (default 4h).
	Duration Duration `json:"duration"`
	// Diurnal wraps users in the day/night activity mask (default true —
	// population-scale runs model day-scale load).
	Diurnal *bool `json:"diurnal,omitempty"`
	// Profile is the carrier profile name (default "Verizon 3G").
	Profile string `json:"profile"`
	// Schemes lists the scheme specs to replay (the sweep). Empty means
	// the legacy Policy/Active pair below.
	Schemes []fleet.SchemeSpec `json:"schemes,omitempty"`
	// Policy is the legacy flat demote-policy name (default "makeidle");
	// see GET /v1/policies for the accepted set. Ignored when Schemes is
	// set.
	Policy string `json:"policy,omitempty"`
	// Active is the legacy flat batching-policy name (default "none").
	// Ignored when Schemes is set.
	Active string `json:"active,omitempty"`
	// BurstGap is the session segmentation gap applied to every scheme's
	// replay (default 1s). It also seeds the "fix" active policy's
	// burstgap parameter for schemes that do not set their own.
	BurstGap Duration `json:"burst_gap"`
	// Shards is the aggregate partition count (default
	// fleet.DefaultShards). Part of the fingerprint: the shard count fixes
	// the floating-point reduction grouping, so two runs that differ only
	// in shards may differ in float rounding and must not share a cache
	// entry.
	Shards int `json:"shards"`
}

// withDefaults returns the normalized spec: every optional field resolved
// to its default and the legacy flat names expanded into Schemes, so
// equal jobs normalize to equal specs.
func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = Duration(4 * time.Hour)
	}
	if s.Diurnal == nil {
		t := true
		s.Diurnal = &t
	}
	if s.Profile == "" {
		s.Profile = power.Verizon3G.Name
	}
	if s.BurstGap <= 0 {
		s.BurstGap = Duration(time.Second)
	}
	if s.Shards <= 0 {
		s.Shards = fleet.DefaultShards
	}
	if len(s.Schemes) == 0 {
		// Legacy flat form: fill the flat fields too (not just the scheme
		// list) so the normalized spec echoed in Status keeps the shape
		// pre-/v1 clients parsed.
		if s.Policy == "" {
			s.Policy = fleet.PolicyMakeIdle
		}
		if s.Active == "" {
			s.Active = fleet.ActiveNone
		}
		s.Schemes = []fleet.SchemeSpec{
			fleet.LegacySchemeSpec(s.Policy, s.Active, time.Duration(s.BurstGap)),
		}
	} else {
		// The job's burst gap seeds the trace-fitted MakeActive bound for
		// schemes that do not pin their own, exactly as the legacy flat
		// form and the CLI do. Injection happens here, during
		// normalization, so the canonical encodings the fingerprint hashes
		// describe the computation that actually runs.
		schemes := make([]fleet.SchemeSpec, len(s.Schemes))
		for i, ss := range s.Schemes {
			schemes[i] = withSchemeBurstGap(ss, time.Duration(s.BurstGap))
		}
		s.Schemes = schemes
	}
	return s
}

// withSchemeBurstGap threads the job burst gap into a scheme's active
// spec via the shared fleet.WithFixBurstGap rule.
func withSchemeBurstGap(ss fleet.SchemeSpec, burstGap time.Duration) fleet.SchemeSpec {
	if ss.Active == nil {
		return ss
	}
	active := fleet.WithFixBurstGap(*ss.Active, burstGap)
	ss.Active = &active
	return ss
}

// Admission bounds on a single job: a spec is one HTTP request, so its
// resource footprint must be bounded before it reaches a runner. MaxUsers
// bounds the O(users) job-slice allocation (~150 MB at the limit);
// MaxDuration bounds per-user trace length; MaxShards bounds the partial
// accumulator array (the fleet clamps shards to the job count anyway);
// MaxSchemes bounds a sweep's replay multiplier.
const (
	MaxUsers    = 1_000_000
	MaxDuration = Duration(30 * 24 * time.Hour)
	MaxShards   = 1 << 16
	MaxSchemes  = 64
)

// validate rejects unusable specs with a client-attributable error. The
// spec must already be normalized.
func (s Spec) validate() error {
	if s.Users <= 0 {
		return fmt.Errorf("jobs: users must be > 0")
	}
	if s.Users > MaxUsers {
		return fmt.Errorf("jobs: users %d exceeds the limit of %d", s.Users, MaxUsers)
	}
	if s.Duration > MaxDuration {
		return fmt.Errorf("jobs: duration %s exceeds the limit of %s",
			time.Duration(s.Duration), time.Duration(MaxDuration))
	}
	if s.Shards > MaxShards {
		return fmt.Errorf("jobs: shards %d exceeds the limit of %d", s.Shards, MaxShards)
	}
	if len(s.Schemes) > MaxSchemes {
		return fmt.Errorf("jobs: %d schemes exceeds the limit of %d", len(s.Schemes), MaxSchemes)
	}
	if _, ok := power.ByName(s.Profile); !ok {
		return fmt.Errorf("jobs: unknown profile %q", s.Profile)
	}
	seen := make(map[string]bool, len(s.Schemes))
	for i, ss := range s.Schemes {
		label, err := ss.ResolvedLabel(registry())
		if err != nil {
			return fmt.Errorf("jobs: scheme %d: %w", i, err)
		}
		if strings.ContainsAny(label, "|\n") {
			return fmt.Errorf("jobs: scheme %d: label %q contains reserved characters", i, label)
		}
		if seen[label] {
			return fmt.Errorf("jobs: scheme %d: duplicate label %q (label sweeps explicitly)", i, label)
		}
		seen[label] = true
		if _, err := fleet.SchemeFromSpec(registry(), ss); err != nil {
			return fmt.Errorf("jobs: scheme %d: %w", i, err)
		}
	}
	return nil
}

// SourceSpec is the canonical description of the job's packet source: a
// source kind plus every parameter that determines the packets it emits.
// The fleet streams cohort traffic straight from source constructors, so
// there is never a materialized trace to hash — instead the cache key
// digests this spec, which identifies the packet streams exactly (same
// kind, params and seed ⇒ same packets, by the workload determinism
// contract).
func (s Spec) SourceSpec() string {
	s = s.withDefaults()
	return fmt.Sprintf("kind=synthetic-cohort|users=%d|seed=%d|dur=%s|diurnal=%t",
		s.Users, s.Seed, time.Duration(s.Duration), s.Diurnal != nil && *s.Diurnal)
}

// SourceHash digests the source spec; it stands in for hashing the traces
// themselves, which streaming never materializes.
func (s Spec) SourceHash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", s.SourceSpec())
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint is the deterministic cache key of the normalized spec:
// sha256 over (source hash, profile, burst gap, seed, users, shards) plus
// the canonical encoding of every scheme spec — label, resolved policy
// names and every parameter value in registry order — so the key is
// stable across param-map ordering, alias spelling and omitted defaults,
// and moves whenever any parameter value (or the scheme list, or its
// order) changes. Equal fingerprints imply byte-identical results,
// because the computation is deterministic given the spec and the shard
// count is part of the key.
//
// Unresolvable specs get a sentinel fingerprint; they can never produce a
// result, so the sentinel can never be paired with cached bytes.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "v3|source=%s|profile=%s|burstgap=%s|seed=%d|users=%d|shards=%d|schemes=%d",
		s.SourceHash(), s.Profile,
		time.Duration(s.BurstGap), s.Seed, s.Users, s.Shards, len(s.Schemes))
	for _, ss := range s.Schemes {
		canon, err := ss.Canonical(registry())
		if err != nil {
			canon = "unresolvable:" + err.Error()
		}
		fmt.Fprintf(h, "|%s", canon)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// schemeRuns expands the normalized spec into one fleet job slice per
// scheme — each an independent fleet run. Every run replays the identical
// streamed cohort (per-user seeds depend only on the cohort, never the
// scheme; per-scheme aggregates are keyed by Job.Scheme inside the
// fleet), and running schemes as separate fleet runs keeps each scheme's
// reduction grouping exactly what a single-scheme job with the same shard
// count would use — which is what makes a sweep's per-scheme summaries
// byte-identical to separate jobs.
func (s Spec) schemeRuns() ([][]fleet.Job, error) {
	prof, ok := power.ByName(s.Profile)
	if !ok {
		return nil, fmt.Errorf("jobs: unknown profile %q", s.Profile)
	}
	cohort := fleet.Cohort{
		Users:    s.Users,
		Seed:     s.Seed,
		Duration: time.Duration(s.Duration),
		Diurnal:  s.Diurnal != nil && *s.Diurnal,
		Opts:     &sim.Options{BurstGap: time.Duration(s.BurstGap)},
	}
	runs := make([][]fleet.Job, 0, len(s.Schemes))
	for i, ss := range s.Schemes {
		scheme, err := fleet.SchemeFromSpec(registry(), ss)
		if err != nil {
			return nil, fmt.Errorf("jobs: scheme %d: %w", i, err)
		}
		runs = append(runs, cohort.Jobs(prof, []fleet.Scheme{scheme}))
	}
	return runs, nil
}
