package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/workload"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("4h30m"), so job specs read naturally over the HTTP API. Integer
// nanoseconds are also accepted on input.
type Duration time.Duration

// MarshalJSON renders the duration as its canonical Go string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a Go duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobs: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("jobs: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// registry is the policy registry every job spec resolves against.
func registry() *policy.Registry { return policy.Default() }

// profiles is the carrier-profile registry every job spec resolves against.
func profiles() *power.Registry { return power.Default() }

// cohorts is the cohort registry every job spec resolves against.
func cohorts() *workload.CohortRegistry { return workload.Cohorts() }

// Spec describes one replay job as a sweep grid over the paper's three
// experiment axes: dormancy schemes × carrier profiles × synthetic
// cohorts. The cross product executes as one deterministic fleet run per
// cell (every cell of a cohort replays the identical streamed population),
// so each cell's summary is byte-identical to the equivalent single-axis
// job's. A Spec is the entire job input — two Specs with equal canonical
// axis encodings and equal scalar fields denote the same computation,
// which is what makes the fingerprint a sound cache key.
//
// Each axis has a parameterized list form (Schemes, Profiles, Cohorts)
// and a legacy flat form (Policy/Active, Profile, Users + Duration +
// Diurnal). When a list is empty the flat fields are mapped through the
// corresponding registry's aliases into an equivalent one-entry list with
// the historical label, so pre-grid payloads keep their fingerprints and
// summary keys. When a list is set, its flat fields are ignored.
type Spec struct {
	// Users is the legacy flat cohort size (required > 0 unless Cohorts is
	// set). Ignored when Cohorts is set.
	Users int `json:"users,omitempty"`
	// Seed roots every per-user trace seed (fleet.UserSeed spacing). It is
	// job-level state shared by every grid cell, so the same cohort axis
	// value replays the identical population in every cell.
	Seed int64 `json:"seed"`
	// Duration is the legacy flat per-user trace length (default 4h).
	// Ignored when Cohorts is set.
	Duration Duration `json:"duration"`
	// Diurnal is the legacy flat day/night-mask flag (default true).
	// Ignored when Cohorts is set.
	Diurnal *bool `json:"diurnal,omitempty"`
	// Profile is the legacy flat carrier profile name (default
	// "Verizon 3G"); see GET /v1/profiles for the accepted set. Ignored
	// when Profiles is set.
	Profile string `json:"profile,omitempty"`
	// Schemes lists the scheme axis values. Empty means the legacy
	// Policy/Active pair below.
	Schemes []fleet.SchemeSpec `json:"schemes,omitempty"`
	// Profiles lists the carrier-profile axis values, e.g.
	// {"name": "verizon-lte", "params": {"t1": "5s"}}. Empty means the
	// flat Profile name above.
	Profiles []power.ProfileSpec `json:"profiles,omitempty"`
	// Cohorts lists the cohort axis values, e.g.
	// {"name": "study-3g", "params": {"users": 1000}}; see GET
	// /v1/workloads. Empty means the flat Users/Duration/Diurnal fields.
	Cohorts []fleet.CohortSpec `json:"cohorts,omitempty"`
	// Policy is the legacy flat demote-policy name (default "makeidle").
	// Ignored when Schemes is set.
	Policy string `json:"policy,omitempty"`
	// Active is the legacy flat batching-policy name (default "none").
	// Ignored when Schemes is set.
	Active string `json:"active,omitempty"`
	// BurstGap is the session segmentation gap applied to every cell's
	// replay (default 1s). It also seeds the "fix" active policy's
	// burstgap parameter for schemes that do not set their own.
	BurstGap Duration `json:"burst_gap"`
	// Shards is the aggregate partition count (default
	// fleet.DefaultShards). Part of the fingerprint: the shard count fixes
	// the floating-point reduction grouping, so two runs that differ only
	// in shards may differ in float rounding and must not share a cache
	// entry.
	Shards int `json:"shards"`
}

// withDefaults returns the normalized spec: every optional field resolved
// to its default and every legacy flat axis expanded into its list form,
// so equal jobs normalize to equal specs.
func (s Spec) withDefaults() Spec {
	if s.Duration <= 0 {
		s.Duration = Duration(4 * time.Hour)
	}
	if s.Diurnal == nil {
		t := true
		s.Diurnal = &t
	}
	if s.BurstGap <= 0 {
		s.BurstGap = Duration(time.Second)
	}
	if s.Shards <= 0 {
		s.Shards = fleet.DefaultShards
	}
	if len(s.Profiles) == 0 {
		// Legacy flat profile: fill the flat field too (not just the list)
		// so the normalized spec echoed in Status keeps the shape pre-grid
		// clients parsed, and keep the historical display name as the axis
		// label.
		if s.Profile == "" {
			s.Profile = power.Verizon3G.Name
		}
		s.Profiles = []power.ProfileSpec{{Label: s.Profile, Name: s.Profile}}
	} else {
		// Explicit profile axis: the flat field is documented as ignored;
		// clear a stale value so the echoed normalized spec cannot suggest
		// it applied.
		s.Profile = ""
	}
	if len(s.Cohorts) == 0 {
		// Legacy flat population: users, per-user duration and the diurnal
		// mask map onto the historical default family (the Verizon 3G study
		// mixes). Users <= 0 stays unmapped so validation reports it.
		if s.Users > 0 {
			s.Cohorts = []fleet.CohortSpec{fleet.LegacyCohortSpec(
				s.Users, time.Duration(s.Duration).String(), *s.Diurnal)}
		}
	} else {
		// Explicit cohort axis: the flat population fields are documented
		// as ignored, so clear them — stale values must neither fail
		// validation nor suggest in the echoed normalized spec that they
		// applied. (They are not part of the fingerprint either way.)
		s.Users = 0
		s.Duration = 0
		s.Diurnal = nil
	}
	if len(s.Schemes) == 0 {
		// Legacy flat form: fill the flat fields too so the normalized spec
		// echoed in Status keeps the shape pre-/v1 clients parsed.
		if s.Policy == "" {
			s.Policy = fleet.PolicyMakeIdle
		}
		if s.Active == "" {
			s.Active = fleet.ActiveNone
		}
		s.Schemes = []fleet.SchemeSpec{
			fleet.LegacySchemeSpec(s.Policy, s.Active, time.Duration(s.BurstGap)),
		}
	} else {
		// The job's burst gap seeds the trace-fitted MakeActive bound for
		// schemes that do not pin their own, exactly as the legacy flat form
		// and the CLI do. Injection happens here, during normalization, so
		// the canonical encodings the fingerprint hashes describe the
		// computation that actually runs.
		schemes := make([]fleet.SchemeSpec, len(s.Schemes))
		for i, ss := range s.Schemes {
			schemes[i] = withSchemeBurstGap(ss, time.Duration(s.BurstGap))
		}
		s.Schemes = schemes
	}
	return s
}

// withSchemeBurstGap threads the job burst gap into a scheme's active
// spec via the shared fleet.WithFixBurstGap rule.
func withSchemeBurstGap(ss fleet.SchemeSpec, burstGap time.Duration) fleet.SchemeSpec {
	if ss.Active == nil {
		return ss
	}
	active := fleet.WithFixBurstGap(*ss.Active, burstGap)
	ss.Active = &active
	return ss
}

// Admission bounds on a single job: a spec is one HTTP request, so its
// resource footprint must be bounded before it reaches a runner. MaxUsers
// bounds each cohort's O(users) job-slice allocation (~150 MB at the
// limit; the cohort schemas enforce the same cap on their users knob);
// MaxDuration bounds per-user trace length; MaxShards bounds the partial
// accumulator array (the fleet clamps shards to the job count anyway);
// MaxSchemes/MaxProfiles/MaxCohorts bound each axis and MaxCells bounds
// the grid's total replay multiplier.
const (
	MaxUsers    = 1_000_000
	MaxDuration = Duration(30 * 24 * time.Hour)
	MaxShards   = 1 << 16
	MaxSchemes  = 64
	MaxProfiles = 16
	MaxCohorts  = 16
	MaxCells    = 512
)

// validate rejects unusable specs with a client-attributable error. The
// spec must already be normalized. Submit does not call this — it derives
// the same checks (same error shapes) from planFingerprint's single
// resolution pass; validate stays as the standalone product.
func (s Spec) validate() error {
	if err := s.checkBounds(); err != nil {
		return err
	}
	if err := validateAxis("scheme", s.Schemes, func(ss fleet.SchemeSpec) (string, error) {
		if _, err := fleet.SchemeFromSpec(registry(), ss); err != nil {
			return "", err
		}
		return ss.ResolvedLabel(registry())
	}); err != nil {
		return err
	}
	if err := validateAxis("profile", s.Profiles, func(ps power.ProfileSpec) (string, error) {
		if _, err := ps.Profile(profiles()); err != nil {
			return "", err
		}
		return ps.ResolvedLabel(profiles())
	}); err != nil {
		return err
	}
	return validateAxis("cohort", s.Cohorts, func(cs fleet.CohortSpec) (string, error) {
		if _, err := fleet.CohortFromSpec(cohorts(), cs, s.Seed, nil); err != nil {
			return "", err
		}
		return cs.ResolvedLabel(cohorts())
	})
}

// checkBounds enforces the scalar admission bounds shared by validate and
// planFingerprint.
func (s Spec) checkBounds() error {
	if len(s.Cohorts) == 0 {
		// Normalization maps every legal flat population; an empty cohort
		// axis means the legacy users field was unusable.
		return fmt.Errorf("jobs: users must be > 0")
	}
	if s.Users > MaxUsers {
		return fmt.Errorf("jobs: users %d exceeds the limit of %d", s.Users, MaxUsers)
	}
	if s.Duration > MaxDuration {
		return fmt.Errorf("jobs: duration %s exceeds the limit of %s",
			time.Duration(s.Duration), time.Duration(MaxDuration))
	}
	if s.Shards > MaxShards {
		return fmt.Errorf("jobs: shards %d exceeds the limit of %d", s.Shards, MaxShards)
	}
	if len(s.Schemes) > MaxSchemes {
		return fmt.Errorf("jobs: %d schemes exceeds the limit of %d", len(s.Schemes), MaxSchemes)
	}
	if len(s.Profiles) > MaxProfiles {
		return fmt.Errorf("jobs: %d profiles exceeds the limit of %d", len(s.Profiles), MaxProfiles)
	}
	if len(s.Cohorts) > MaxCohorts {
		return fmt.Errorf("jobs: %d cohorts exceeds the limit of %d", len(s.Cohorts), MaxCohorts)
	}
	if cells := len(s.Schemes) * len(s.Profiles) * len(s.Cohorts); cells > MaxCells {
		return fmt.Errorf("jobs: grid of %d cells exceeds the limit of %d", cells, MaxCells)
	}
	return nil
}

// validateAxis resolves every axis value eagerly (typos and out-of-range
// parameters fail at admission, before a fleet spins up) and rejects
// duplicate or reserved-character labels — labels key grid cells, so they
// must be distinct within their axis.
func validateAxis[T any](axis string, values []T, resolve func(T) (string, error)) error {
	seen := make(map[string]bool, len(values))
	for i, v := range values {
		label, err := resolve(v)
		if err != nil {
			return fmt.Errorf("jobs: %s %d: %w", axis, i, err)
		}
		if strings.ContainsAny(label, "|\n") {
			return fmt.Errorf("jobs: %s %d: label %q contains reserved characters", axis, i, label)
		}
		if seen[label] {
			return fmt.Errorf("jobs: %s %d: duplicate label %q (label axis values explicitly)", axis, i, label)
		}
		seen[label] = true
	}
	return nil
}

// Fingerprint is the deterministic cache key of the normalized spec:
// sha256 over (seed, burst gap, shards, axis sizes) plus the canonical
// encoding of every axis value — label, resolved canonical name and every
// parameter value in registry declaration order, for all three axes — so
// the key is stable across param-map ordering, alias spelling and omitted
// defaults, and moves whenever any axis value (or list, or its order)
// changes. Equal fingerprints imply byte-identical results, because the
// computation is deterministic given the spec and the shard count is part
// of the key. This is fingerprint v4: v3 hashed only the scheme axis plus
// a flat profile name and cohort scalars.
//
// Unresolvable axis values get a sentinel encoding; they can never produce
// a result, so the sentinel can never be paired with cached bytes.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "v4|seed=%d|burstgap=%s|shards=%d|schemes=%d|profiles=%d|cohorts=%d",
		s.Seed, time.Duration(s.BurstGap), s.Shards,
		len(s.Schemes), len(s.Profiles), len(s.Cohorts))
	for _, ss := range s.Schemes {
		fmt.Fprintf(h, "|S:%s", canonicalOrSentinel(ss.Canonical(registry())))
	}
	for _, ps := range s.Profiles {
		fmt.Fprintf(h, "|P:%s", canonicalOrSentinel(ps.Canonical(profiles())))
	}
	for _, cs := range s.Cohorts {
		fmt.Fprintf(h, "|C:%s", canonicalOrSentinel(cs.Canonical(cohorts())))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalOrSentinel substitutes the sentinel encoding for axis values
// that fail to resolve.
func canonicalOrSentinel(canon string, err error) string {
	if err != nil {
		return "unresolvable:" + err.Error()
	}
	return canon
}
