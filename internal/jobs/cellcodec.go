package jobs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fleet"
)

// This file is the store payload codec: the bytes persisted for one
// finished grid cell. A payload carries the cell's axis labels, its
// progress denominators, and the canonical fleet.Summary encoding, so a
// cell loaded from disk renders, merges and reports progress exactly
// like the freshly computed cell it was. Integrity is layered: the
// store's record format proves these are the bytes Put wrote (sha256),
// this codec proves they mean a cell (version tag, framing), and the
// job layer proves they mean *this* cell (labels and summary layout are
// cross-checked against the submitted grid plan before use).

// cellCodecVersion tags the payload encoding. Bump on any change; old
// cells then decode to an error, which the job layer treats as a miss.
const cellCodecVersion = "RCEL1"

// encodeCellResult serializes a finished cell for the store.
func encodeCellResult(c *CellResult) []byte {
	b := make([]byte, 0, 256)
	b = append(b, cellCodecVersion...)
	for _, label := range []string{c.Scheme, c.Profile, c.Cohort} {
		b = binary.AppendUvarint(b, uint64(len(label)))
		b = append(b, label...)
	}
	b = binary.AppendUvarint(b, uint64(c.shards))
	b = binary.AppendUvarint(b, uint64(c.jobs))
	return append(b, fleet.EncodeSummary(c.Summary)...)
}

// decodeCellResult reconstructs a cell from its store payload. The
// returned cell has no Key; the caller stamps the key it was looked up
// under after its own cross-checks.
func decodeCellResult(data []byte) (*CellResult, error) {
	if len(data) < len(cellCodecVersion) || string(data[:len(cellCodecVersion)]) != cellCodecVersion {
		return nil, fmt.Errorf("jobs: cell codec version mismatch (want %s)", cellCodecVersion)
	}
	data = data[len(cellCodecVersion):]
	var labels [3]string
	for i := range labels {
		n, taken := binary.Uvarint(data)
		if taken <= 0 || n > uint64(len(data)-taken) {
			return nil, fmt.Errorf("jobs: truncated cell label %d", i)
		}
		data = data[taken:]
		labels[i] = string(data[:n])
		data = data[n:]
	}
	shards, taken := binary.Uvarint(data)
	if taken <= 0 {
		return nil, fmt.Errorf("jobs: truncated cell shard count")
	}
	data = data[taken:]
	njobs, taken := binary.Uvarint(data)
	if taken <= 0 {
		return nil, fmt.Errorf("jobs: truncated cell job count")
	}
	data = data[taken:]
	sum, err := fleet.DecodeSummary(data)
	if err != nil {
		return nil, err
	}
	return &CellResult{
		Scheme: labels[0], Profile: labels[1], Cohort: labels[2],
		Summary: sum,
		shards:  int(shards), jobs: int(njobs),
	}, nil
}
