package jobs

import (
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
)

// BenchGridSpec is the canonical throughput-benchmark grid, shared by
// BenchmarkGridSweep and cmd/benchdump so the committed baseline
// (BENCH_grid.json) and the in-tree benchmark always measure the same
// computation: 2 schemes × 2 profiles × 1 cohort (4 cells), 4 streamed
// users of 10 minutes each, result and cell caches disabled by the caller
// so every run replays every cell.
func BenchGridSpec() Spec {
	return Spec{Seed: 1, Shards: 4,
		Schemes: []fleet.SchemeSpec{
			{Policy: policy.Spec{Name: "makeidle"}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		},
		Profiles: []power.ProfileSpec{
			{Name: "verizon-3g"},
			{Name: "verizon-lte"},
		},
		Cohorts: []fleet.CohortSpec{
			{Name: "study-3g", Params: map[string]any{"users": 4, "duration": "10m"}},
		},
	}
}

// BenchGridCells is BenchGridSpec's cell count (the benchmark's work unit).
const BenchGridCells = 4
