package jobs

import (
	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
)

// BenchGridSpec is the canonical throughput-benchmark grid, shared by
// BenchmarkGridSweep and cmd/benchdump so the committed baseline
// (BENCH_grid.json) and the in-tree benchmark always measure the same
// computation: 2 schemes × 2 profiles × 1 cohort (4 cells), 4 streamed
// users of 10 minutes each, result and cell caches disabled by the caller
// so every run replays every cell.
func BenchGridSpec() Spec {
	return Spec{Seed: 1, Shards: 4,
		Schemes: []fleet.SchemeSpec{
			{Policy: policy.Spec{Name: "makeidle"}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		},
		Profiles: []power.ProfileSpec{
			{Name: "verizon-3g"},
			{Name: "verizon-lte"},
		},
		Cohorts: []fleet.CohortSpec{
			{Name: "study-3g", Params: map[string]any{"users": 4, "duration": "10m"}},
		},
	}
}

// BenchGridCells is BenchGridSpec's cell count (the benchmark's work unit).
const BenchGridCells = 4

// BenchWideGridSpec is the wide scheduling benchmark: many small cells
// (4 schemes × 4 profiles × 2 cohorts = 32 cells of 2 users × 10 minutes,
// one shard each) so per-cell replay work is short and the cost under
// measurement is the executor itself — dispatch, budget handoff, ordered
// collection. BenchmarkGridSweepWide runs it at CellParallel=1 and at the
// budget-admitted default; the ratio is the machine-saturation headline.
func BenchWideGridSpec() Spec {
	return Spec{Seed: 1, Shards: 1,
		Schemes: []fleet.SchemeSpec{
			{Policy: policy.Spec{Name: "makeidle"}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "5s"}}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "10s"}}},
		},
		Profiles: []power.ProfileSpec{
			{Name: "verizon-3g"},
			{Name: "verizon-lte"},
			{Name: "tmobile-3g"},
			{Name: "att-hspa+"},
		},
		Cohorts: []fleet.CohortSpec{
			{Name: "study-3g", Params: map[string]any{"users": 2, "duration": "10m"}},
			{Name: "study-3g", Params: map[string]any{"users": 2, "duration": "15m"}},
		},
	}
}

// BenchWideGridCells is BenchWideGridSpec's cell count.
const BenchWideGridCells = 32

// BenchSharedCohortGridSpec is the trace-memoization benchmark: many
// schemes sweeping one shared cohort (6 schemes × 1 profile × 1 cohort =
// 6 cells of 4 diurnal users × 30 minutes), so the same per-user traffic
// would be synthesized once per replay without the trace cache — the
// diurnal mask and the reorder buffer make generation the dominant
// per-cell cost. BenchmarkGridSweepSharedCohort runs it with the cohort
// trace cache enabled and disabled; the ratio is the generate-once,
// replay-everywhere headline. One trace-fitted scheme (95iat) rides along
// so the fit-from-slab path is measured too.
func BenchSharedCohortGridSpec() Spec {
	return Spec{Seed: 1, Shards: 2,
		Schemes: []fleet.SchemeSpec{
			{Policy: policy.Spec{Name: "statusquo"}},
			{Policy: policy.Spec{Name: "makeidle"}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "5s"}}},
			{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "10s"}}},
			{Policy: policy.Spec{Name: "95iat"}},
		},
		Profiles: []power.ProfileSpec{
			{Name: "verizon-3g"},
		},
		Cohorts: []fleet.CohortSpec{
			{Name: "study-3g", Params: map[string]any{"users": 4, "duration": "30m"}},
		},
	}
}

// BenchSharedCohortGridCells is BenchSharedCohortGridSpec's cell count.
const BenchSharedCohortGridCells = 6
