package jobs

import (
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/power"
)

// TestPlanFingerprintMatchesFingerprint pins the contract that lets Submit
// derive validation, fingerprint and plan from one resolution pass: for any
// normalized spec, planFingerprint's digest is byte-for-byte the standalone
// Fingerprint(), whether the axis cache is absent, cold, or warm — and the
// planned cells (labels, keys, denominators) are identical in all three
// modes. A cache that changed any planned byte would silently corrupt the
// result cache, so this is the regression guard for axisCache.
func TestPlanFingerprintMatchesFingerprint(t *testing.T) {
	specs := map[string]Spec{
		"legacy-flat": {Users: 5, Seed: 3, Duration: Duration(20 * time.Minute)},
		"grid": {
			Seed:   1,
			Shards: 4,
			Schemes: []fleet.SchemeSpec{
				{Policy: policy.Spec{Name: fleet.PolicyMakeIdle}},
				{Label: "tail2s", Policy: policy.Spec{Name: "fixedtail",
					Params: map[string]any{"wait": "2s"}}},
				{Label: "batched", Policy: policy.Spec{Name: fleet.PolicyMakeIdle},
					Active: &policy.Spec{Name: fleet.ActiveFix}},
			},
			Profiles: []power.ProfileSpec{
				{Name: "verizon-3g"},
				{Label: "lte", Name: "verizon-lte"},
			},
			Cohorts: []fleet.CohortSpec{
				{Name: "study-3g", Params: map[string]any{"users": 4, "duration": "10m"}},
			},
		},
		// Alias spelling must fingerprint as its canonical resolution.
		"alias": {
			Users: 2, Seed: 9,
			Schemes: []fleet.SchemeSpec{{Policy: policy.Spec{Name: "4.5s"}}},
		},
	}
	for name, raw := range specs {
		t.Run(name, func(t *testing.T) {
			s := raw.withDefaults()
			want := s.Fingerprint()
			wantCells := len(s.Schemes) * len(s.Profiles) * len(s.Cohorts)
			opts := fleet.Options{Shards: s.Shards}

			shared := newAxisCache()
			var ref []gridCell
			passes := []struct {
				pass string
				axes *axisCache
			}{{"nil-cache", nil}, {"cold-cache", shared}, {"warm-cache", shared}}
			for _, p := range passes {
				pass, axes := p.pass, p.axes
				cells, fp, err := s.planFingerprint(opts, axes)
				if err != nil {
					t.Fatalf("%s: %v", pass, err)
				}
				if fp != want {
					t.Fatalf("%s: planFingerprint %s != Fingerprint %s", pass, fp, want)
				}
				if len(cells) != wantCells {
					t.Fatalf("%s: %d cells, want %d", pass, len(cells), wantCells)
				}
				if ref == nil {
					ref = cells
					continue
				}
				for i := range cells {
					got, exp := cells[i], ref[i]
					if got.Key != exp.Key || got.Scheme != exp.Scheme ||
						got.Profile != exp.Profile || got.Cohort != exp.Cohort ||
						got.NumJobs != exp.NumJobs || got.Shards != exp.Shards {
						t.Fatalf("%s: cell %d diverged: %+v != %+v", pass, i, got, exp)
					}
				}
			}
		})
	}
}

// TestAxisCacheTypeTaggedKeys pins the collision property of the spec-key
// encoding: parameter values that differ only in dynamic type (int 4 vs
// string "4") must produce distinct keys, so a spelling that fails coercion
// can never hit a cached success.
func TestAxisCacheTypeTaggedKeys(t *testing.T) {
	a := cohortKey(fleet.CohortSpec{Name: "study-3g",
		Params: map[string]any{"users": 4}}, 1, time.Second)
	b := cohortKey(fleet.CohortSpec{Name: "study-3g",
		Params: map[string]any{"users": "4"}}, 1, time.Second)
	if a == b {
		t.Fatalf("int and string params collide: %q", a)
	}
}
