package jobs

// The cell executor: one grid job's cells dispatch concurrently onto the
// manager-wide worker budget while results are collected in planned cell
// order, so every rendering, partial snapshot and store record is
// byte-identical to the historical strictly-sequential loop.
//
// Roles:
//
//   - The dispatcher (one goroutine per job) walks the plan in cell order.
//     A cell found in a cache tier finishes its slot immediately — no slot
//     in the concurrency window, no worker token. A frontier cell first
//     claims a window slot (Config.CellParallel) and then blocks for ONE
//     budget token — the cell's first fleet worker — before its goroutine
//     launches. The fleet run acquires any workers beyond the first from
//     the same budget opportunistically (fleet.Options.Budget), so replay
//     goroutine pressure is capped by the budget no matter how many cells
//     or runner jobs are in flight.
//
//   - Cell goroutines run the fleet, publish per-shard progress into their
//     slot, then write the finished cell through the cache and store
//     tiers. Store writes therefore happen in completion order rather than
//     plan order — safe, because the store keys records by the cell's
//     content address and concurrent same-key puts are idempotent upserts
//     of byte-identical records.
//
//   - The collector (the runner goroutine itself) awaits slots strictly in
//     plan order and assembles results exactly as the sequential loop did:
//     the cell list, the single-axis combined merge (cell order), the
//     terminal progress. Determinism follows: each cell's summary is a
//     pure function of its key (the fleet's shard-ordered reduction), and
//     every ordered artifact is assembled from those summaries in plan
//     order — scheduling decides only WHEN a cell's bytes exist, never
//     what they are.
//
// Cancellation and failure drain: the dispatcher stops launching (marking
// undispatched slots canceled), in-flight cells observe job.cancel through
// the fleet and return, and the collector waits for every launched cell
// goroutine before finishing the job — no cell goroutine ever outlives its
// job, so Manager.Close's drain semantics are unchanged.

import (
	"errors"
	"sync"

	"repro/internal/fleet"
)

// cellSlot carries one planned cell's execution state between the
// goroutine computing it and the collector.
type cellSlot struct {
	res  *CellResult
	err  error
	done chan struct{} // closed once res/err are final

	// snap/prog are the in-flight fleet feed for partials; finished marks
	// res/err published. All guarded by cellExec.mu.
	snap     func() *fleet.Summary
	prog     fleet.Progress
	finished bool
}

// cellExec executes one job's planned cells. See the file comment.
type cellExec struct {
	m      *Manager
	job    *Job
	cells  []gridCell
	slots  []cellSlot
	opts   fleet.Options
	sumCfg fleet.SummaryConfig
	totals Progress
	single bool

	parSem chan struct{} // cell-concurrency window
	stop   chan struct{} // closed on first failure or at collector exit
	halted sync.Once
	haltCh chan struct{} // closed when stop OR job.cancel closes
	wg     sync.WaitGroup

	// mu guards the slots' live fields and orders setPartial installs so
	// published progress stays monotone.
	mu      sync.Mutex
	partial func() *fleet.Summary
}

func newCellExec(m *Manager, job *Job, spec Spec, cells []gridCell) *cellExec {
	e := &cellExec{
		m:     m,
		job:   job,
		cells: cells,
		slots: make([]cellSlot, len(cells)),
		opts: fleet.Options{
			Workers:    m.cfg.Workers,
			Shards:     spec.Shards,
			Cancel:     job.cancel,
			TraceCache: m.traces,
			Budget:     m.budget,
		},
		single: spec.singleAxis(),
		stop:   make(chan struct{}),
		haltCh: make(chan struct{}),
	}
	for i := range e.slots {
		e.slots[i].done = make(chan struct{})
	}
	for _, cell := range cells {
		e.totals.Shards += cell.Shards
		e.totals.TotalJobs += cell.NumJobs
	}
	par := m.cfg.CellParallel
	if par <= 0 {
		par = m.budget.Cap()
	}
	if par > len(cells) {
		par = len(cells)
	}
	if par < 1 {
		par = 1
	}
	e.parSem = make(chan struct{}, par)
	// One partial closure for the whole job: installs advance the version,
	// and the closure reads slot state at materialize time, so per-shard
	// progress events allocate nothing. Contributions are gathered in plan
	// order — at CellParallel=1 that is exactly the sequential loop's
	// "merged prefix plus the in-flight cell's snapshot".
	if e.single {
		e.partial = e.partialSingleAxis
	} else {
		e.partial = e.partialGrid
	}
	return e
}

// run drives the job to a terminal state. It runs on the runner goroutine
// and is the only writer of job.finish for a running job.
func (e *cellExec) run() {
	go e.watchHalt()
	go e.dispatch()

	results := make([]*CellResult, 0, len(e.cells))
	var firstErr error
	for i := range e.slots {
		<-e.slots[i].done
		if err := e.slots[i].err; err != nil {
			firstErr = err
			break
		}
		results = append(results, e.slots[i].res)
	}
	// Stop the dispatcher (it may still be walking the plan when the
	// collector broke on an error) and drain every launched cell before
	// finishing — a finished job must have no goroutines still replaying.
	e.halt()
	e.wg.Wait()

	if firstErr != nil {
		if errors.Is(firstErr, fleet.ErrCanceled) {
			e.job.finish(StateCanceled, nil, firstErr)
		} else {
			e.job.finish(StateFailed, nil, firstErr)
		}
		return
	}

	var combined *fleet.Summary
	if e.single {
		// Merging the cell summaries in cell order into one empty
		// aggregate reproduces, byte for byte, the incremental merge a
		// sequential run performs.
		combined = fleet.NewSummary(e.sumCfg)
		for _, r := range results {
			mustMerge(combined, r.Summary)
		}
	}
	done := Progress{Shards: e.totals.Shards, TotalJobs: e.totals.TotalJobs}
	for _, r := range results {
		done.DoneShards += r.shards
		done.DoneJobs += r.jobs
	}
	res := newResult(results, combined)
	res.Progress = done
	e.job.mu.Lock()
	e.job.progress = res.Progress
	e.job.mu.Unlock()
	e.m.mu.Lock()
	e.m.cache.put(e.job.fingerprint, res)
	e.m.mu.Unlock()
	e.job.finish(StateDone, res, nil)
}

// halt closes stop exactly once.
func (e *cellExec) halt() { e.halted.Do(func() { close(e.stop) }) }

// watchHalt folds job.cancel and stop into haltCh, the single channel the
// dispatcher's blocking acquires select on.
func (e *cellExec) watchHalt() {
	select {
	case <-e.job.cancel:
	case <-e.stop:
	}
	close(e.haltCh)
}

// dispatch walks the plan in cell order, finishing cached cells inline and
// launching one goroutine per frontier cell once a window slot and a
// budget token are held. It never outlives run(): every exit path first
// marks the remaining slots canceled so the collector cannot block on a
// slot nobody owns.
func (e *cellExec) dispatch() {
	for i := range e.cells {
		select {
		case <-e.haltCh:
			e.abandonFrom(i)
			return
		default:
		}
		cached, hit := e.m.lookupCell(e.cells[i])
		if hit {
			e.finishSlot(i, cached, nil)
			continue
		}
		select {
		case e.parSem <- struct{}{}:
		case <-e.haltCh:
			e.abandonFrom(i)
			return
		}
		// The token acquired here is the cell's first fleet worker; the
		// run releases it (via runCell's defer) when the cell completes.
		if !e.m.budget.Acquire(e.haltCh) {
			<-e.parSem
			e.abandonFrom(i)
			return
		}
		e.wg.Add(1)
		e.m.cellsLive.Add(1)
		go e.runCell(i)
	}
}

// abandonFrom marks slots i.. canceled (those not yet dispatched when the
// dispatcher bailed). Slots already finished by a cache hit are skipped;
// dispatched slots are owned by their cell goroutine and never appear here
// (the dispatcher abandons only indexes it has not reached).
func (e *cellExec) abandonFrom(i int) {
	for ; i < len(e.slots); i++ {
		e.mu.Lock()
		already := e.slots[i].finished
		if !already {
			e.slots[i].err = fleet.ErrCanceled
			e.slots[i].finished = true
		}
		e.mu.Unlock()
		if !already {
			close(e.slots[i].done)
		}
	}
}

// runCell executes one frontier cell: the fleet run (feeding per-shard
// progress into the slot), then the cache and store writes, then the slot
// publish. The deferred releases return the window slot and the budget
// token the dispatcher acquired.
func (e *cellExec) runCell(i int) {
	defer e.wg.Done()
	defer e.m.cellsLive.Add(-1)
	defer func() { <-e.parSem }()
	defer e.m.budget.Release()

	cell := &e.cells[i]
	sum, err := e.m.cfg.runFleet(cell.Jobs(), e.opts, e.sumCfg,
		func(snap func() *fleet.Summary, p fleet.Progress) {
			e.cellProgress(i, snap, p)
		})
	if err != nil {
		// One failed cell fails the job; stop dispatching new ones.
		e.halt()
		e.finishSlot(i, nil, err)
		return
	}
	e.m.cellsRun.Add(1)
	res := newCellResult(*cell, sum)
	e.m.mu.Lock()
	e.m.cells.put(cell.Key, res)
	e.m.mu.Unlock()
	if e.m.cfg.Store != nil {
		// Best effort: a full disk or dying store must not fail the job —
		// the result is already in memory; durability just degrades.
		_ = e.m.cfg.Store.Put(cell.Key, encodeCellResult(res))
	}
	e.finishSlot(i, res, nil)
}

// cellProgress records a cell's in-flight fleet feed and republishes the
// job-level partial. Everything happens under mu, so installed progress
// counts are sums of per-slot monotone quantities read atomically —
// monotone end to end.
func (e *cellExec) cellProgress(i int, snap func() *fleet.Summary, p fleet.Progress) {
	e.mu.Lock()
	e.slots[i].snap = snap
	e.slots[i].prog = p
	e.publishLocked()
	e.mu.Unlock()
}

// finishSlot publishes a slot's terminal state and wakes the collector.
func (e *cellExec) finishSlot(i int, res *CellResult, err error) {
	e.mu.Lock()
	e.slots[i].res = res
	e.slots[i].err = err
	e.slots[i].finished = true
	if err == nil {
		e.publishLocked()
	}
	e.mu.Unlock()
	close(e.slots[i].done)
}

// publishLocked recomputes overall progress (finished cells at full
// weight, live cells at their fleet counts) and installs the job's lazy
// partial. Requires mu.
func (e *cellExec) publishLocked() {
	overall := Progress{Shards: e.totals.Shards, TotalJobs: e.totals.TotalJobs}
	any := false
	for i := range e.slots {
		s := &e.slots[i]
		switch {
		case s.finished && s.err == nil:
			overall.DoneShards += s.res.shards
			overall.DoneJobs += s.res.jobs
			any = true
		case !s.finished && s.snap != nil:
			overall.DoneShards += s.prog.DoneShards
			overall.DoneJobs += s.prog.DoneJobs
			any = true
		}
	}
	if any {
		e.job.setPartial(e.partial, overall)
	}
}

// partialSingleAxis merges, in plan order, every finished cell's summary
// plus every live cell's shard snapshot — at CellParallel=1 exactly the
// sequential loop's "completed prefix plus the in-flight cell". Runs at
// Job.Partial materialize time, never per progress event.
func (e *cellExec) partialSingleAxis() *fleet.Summary {
	e.mu.Lock()
	parts := make([]func() *fleet.Summary, 0, len(e.slots))
	for i := range e.slots {
		s := &e.slots[i]
		switch {
		case s.finished && s.err == nil:
			sum := s.res.Summary
			parts = append(parts, func() *fleet.Summary { return sum })
		case !s.finished && s.snap != nil:
			parts = append(parts, s.snap)
		}
	}
	e.mu.Unlock()
	// Snap calls happen outside mu: they take the fleet run's own lock.
	merged := fleet.NewSummary(e.sumCfg)
	for _, p := range parts {
		mustMerge(merged, p())
	}
	return merged
}

// partialGrid picks one cell to expose for multi-axis grids (scheme labels
// repeat across cells, so a cross-cell merge would conflate them): the
// earliest live cell's snapshot, else the latest finished cell's summary.
func (e *cellExec) partialGrid() *fleet.Summary {
	e.mu.Lock()
	var live func() *fleet.Summary
	var lastDone *fleet.Summary
	for i := range e.slots {
		s := &e.slots[i]
		switch {
		case s.finished && s.err == nil:
			lastDone = s.res.Summary
		case !s.finished && s.snap != nil && live == nil:
			live = s.snap
		}
	}
	e.mu.Unlock()
	if live != nil {
		return live()
	}
	return lastDone
}
