package jobs

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/fleet"
	"repro/internal/policy"
	"repro/internal/store"
)

// traceCacheSchemes is the scheme pool for the trace-cache properties:
// it deliberately includes a trace-fitted scheme (95iat materializes the
// user's trace to fit its timer), so the tests cover both the streaming
// replay path and the fit-from-slab path.
var traceCacheSchemes = []fleet.SchemeSpec{
	{Policy: policy.Spec{Name: "makeidle"}},
	{Policy: policy.Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
	{Policy: policy.Spec{Name: "95iat"}},
}

// TestTraceCacheEquivalence is the memoization-is-invisible property: a
// grid run with the cohort trace cache enabled produces byte-identical
// output to the same grid with the cache disabled, at every cell
// concurrency level. Every rendered form is compared (job JSON/CSV/text,
// per-cell JSON, per-cell fingerprints) plus the durable store contents
// record by record — and the enabled runs must actually hit the cache,
// so the equality is between a replayed slab and a regenerated stream,
// not between two identical code paths.
func TestTraceCacheEquivalence(t *testing.T) {
	spec := Spec{Seed: 17, Shards: 2,
		Schemes:  traceCacheSchemes, // 3, one trace-fitted
		Profiles: resumeProfiles,    // x2
		Cohorts:  resumeCohorts[:1], // x1 = 6 cells, one shared cohort
	}
	const users = 2 // study-3g fixture population

	refStore, err := store.Open(store.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	ref := NewManager(Config{Runners: 1, Workers: 2, CellParallel: 1,
		CacheSize: -1, CellCacheSize: -1, TraceCacheBytes: -1, Store: refStore})
	want := runSpec(t, ref, spec)
	if st := ref.TraceCacheStats(); st != (fleet.TraceCacheStats{}) {
		t.Fatalf("disabled trace cache reported activity: %+v", st)
	}
	ref.Close()

	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("par%d", par), func(t *testing.T) {
			st, err := store.Open(store.Config{Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			m := NewManager(Config{Runners: 1, Workers: 4, CellParallel: par,
				CacheSize: -1, CellCacheSize: -1, Store: st})
			defer m.Close()
			got := runSpec(t, m, spec)
			assertSameResult(t, want, got)

			stats := m.TraceCacheStats()
			if stats.Misses != users {
				t.Fatalf("generated %d traces, want one per user (%d): %+v",
					stats.Misses, users, stats)
			}
			if stats.Hits == 0 {
				t.Fatalf("cached run never hit the trace cache: %+v", stats)
			}

			if st.Len() != refStore.Len() {
				t.Fatalf("store holds %d cells, reference %d", st.Len(), refStore.Len())
			}
			for _, c := range want.Cells {
				wantRec, ok1 := refStore.Get(c.Key)
				gotRec, ok2 := st.Get(c.Key)
				if !ok1 || !ok2 {
					t.Fatalf("cell %s missing from a store (ref=%v cur=%v)", c.Key, ok1, ok2)
				}
				if !bytes.Equal(wantRec, gotRec) {
					t.Fatalf("cell %s store record differs from uncached run", c.Key)
				}
			}
		})
	}
}

// TestTraceCacheSingleFlight pins the generate-once guarantee at the
// manager level: with every cell of a shared-cohort grid in flight at
// once, the cache's generation counter (Misses counts generations
// actually run; concurrent waiters count as hits) must equal the cohort
// population — N racing cells, one generation per user — and the output
// must match a sequential run of the same grid byte for byte. Under
// -race this is also the single-flight synchronization test.
func TestTraceCacheSingleFlight(t *testing.T) {
	spec := Spec{Seed: 23, Shards: 2,
		Schemes:  traceCacheSchemes,
		Profiles: resumeProfiles,
		Cohorts:  resumeCohorts[:1],
	}
	const users, cells = 2, 6

	ref := NewManager(Config{Runners: 1, Workers: 2, CellParallel: 1,
		CacheSize: -1, CellCacheSize: -1})
	want := runSpec(t, ref, spec)
	if len(want.Cells) != cells {
		t.Fatalf("fixture expanded to %d cells, want %d", len(want.Cells), cells)
	}
	ref.Close()

	m := NewManager(Config{Runners: 1, Workers: 4, CellParallel: cells,
		CacheSize: -1, CellCacheSize: -1})
	defer m.Close()
	got := runSpec(t, m, spec)
	assertSameResult(t, want, got)

	stats := m.TraceCacheStats()
	if stats.Misses != users {
		t.Fatalf("%d generations across %d concurrent cells, want %d (one per user): %+v",
			stats.Misses, cells, users, stats)
	}
	// Every job consults the cache once; all but the generating calls hit.
	if wantHits := uint64(cells*users - users); stats.Hits != wantHits {
		t.Fatalf("hits = %d, want %d: %+v", stats.Hits, wantHits, stats)
	}
}

// TestTraceCacheBudgetAdmission is the no-deadlock property the cache's
// single-flight design guarantees: with a single worker token and more
// concurrent cells than tokens, cells waiting on another cell's
// generation must not starve the generator. The grid simply completing
// (and matching the sequential run) is the assertion — a token/waiter
// cycle would hang the test.
func TestTraceCacheBudgetAdmission(t *testing.T) {
	spec := Spec{Seed: 29, Shards: 2,
		Schemes:  traceCacheSchemes,
		Profiles: resumeProfiles[:1],
		Cohorts:  resumeCohorts[:1],
	}
	ref := NewManager(Config{Runners: 1, Workers: 2, CellParallel: 1,
		CacheSize: -1, CellCacheSize: -1, TraceCacheBytes: -1})
	want := runSpec(t, ref, spec)
	ref.Close()

	m := NewManager(Config{Runners: 1, Workers: 1, CellParallel: 4,
		CacheSize: -1, CellCacheSize: -1})
	defer m.Close()
	assertSameResult(t, want, runSpec(t, m, spec))
}
