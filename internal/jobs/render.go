package jobs

import (
	"repro/internal/fleet"
	"repro/internal/report"
)

// Result is a finished job's output, rendered exactly once. Cache hits
// share these byte slices verbatim, which is what makes a warm response
// byte-identical to the cold run that produced it. Callers must treat the
// slices as immutable. All stats shapes live in internal/report so the
// HTTP service and the CLIs render fleet summaries through one
// implementation.
type Result struct {
	// Summary is the merged fleet aggregate.
	Summary *fleet.Summary
	// Stats is the serializable view of Summary.
	Stats report.SummaryStats
	// JSON is the indented JSON rendering of Stats.
	JSON []byte
	// CSV is the per-scheme table as CSV.
	CSV []byte
	// Text is the human-readable summary (fleet.Summary.String).
	Text string
	// Progress is the terminal progress count, replayed to late watchers.
	Progress Progress
}

// renderResult renders every output format of a finished summary.
func renderResult(sum *fleet.Summary) (*Result, error) {
	stats := report.SummaryStatsOf(sum)
	js, err := report.JSON(stats)
	if err != nil {
		return nil, err
	}
	csv, err := report.SummaryTable(sum).CSVBytes()
	if err != nil {
		return nil, err
	}
	return &Result{
		Summary: sum,
		Stats:   stats,
		JSON:    js,
		CSV:     csv,
		Text:    sum.String(),
	}, nil
}
