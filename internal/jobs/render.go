package jobs

import (
	"sync"

	"repro/internal/fleet"
	"repro/internal/report"
)

// CellResult is one finished grid cell: its axis labels, its fleet
// summary, and its rendered forms. Renderings are produced lazily, at most
// once per cell (the accessors memoize under sync.Once) — the cell cache
// shares the CellResult across overlapping grids, so whoever renders
// first renders for everyone, and a cell's JSON is byte-identical to the
// flat JSON of the equivalent single-axis job, because both are
// report.JSON(SummaryStatsOf) over the same deterministic summary.
// Laziness matters at sweep scale: a 10k-cell grid that is only ever read
// as CSV (or never read at all) skips 10k JSON marshals entirely.
type CellResult struct {
	// Scheme, Profile, Cohort are the cell's axis labels.
	Scheme, Profile, Cohort string
	// Key is the cell's deterministic identity (the per-cell restriction
	// of the v4 fingerprint) — the cell cache key, the store filename,
	// and the handle GET /v1/cells/{fingerprint} looks cells up by.
	Key string
	// Summary is the cell's fleet aggregate.
	Summary *fleet.Summary

	renderOnce sync.Once
	stats      report.SummaryStats
	json       []byte
	renderErr  error

	// shards/jobs are the cell's progress contribution, replayed when the
	// cell is served from the cell cache.
	shards, jobs int
}

// newCellResult wraps one cell's summary; rendering is deferred to the
// accessors.
func newCellResult(cell gridCell, sum *fleet.Summary) *CellResult {
	return &CellResult{
		Scheme: cell.Scheme, Profile: cell.Profile, Cohort: cell.Cohort,
		Key:     cell.Key,
		Summary: sum,
		shards:  cell.Shards, jobs: cell.NumJobs,
	}
}

func (c *CellResult) render() {
	c.renderOnce.Do(func() {
		c.stats = report.SummaryStatsOf(c.Summary)
		c.json, c.renderErr = report.JSON(c.stats)
	})
}

// Stats returns the serializable view of Summary.
func (c *CellResult) Stats() report.SummaryStats {
	c.render()
	return c.stats
}

// JSON returns the indented JSON rendering of Stats. The returned bytes
// are memoized and shared; callers must treat them as immutable.
func (c *CellResult) JSON() ([]byte, error) {
	c.render()
	return c.json, c.renderErr
}

// Result is a finished job's output. Rendered forms (JSON, CSV, text) are
// produced lazily, at most once each — cache hits share the *Result, so a
// warm response serves the same memoized bytes the cold run's first reader
// produced, byte for byte. Callers must treat returned slices as
// immutable. All stats shapes live in internal/report so the HTTP service
// and the CLIs render fleet summaries through one implementation.
//
// Single-axis jobs (one profile, one cohort — every pre-grid job) keep
// the legacy flat rendering: one summary merged across the scheme sweep,
// keyed by scheme label. Wider grids render per cell (Cells carries every
// cell either way), because a scheme label legitimately repeats across
// profile/cohort cells and a flat merge would conflate them.
type Result struct {
	// Summary is the merged fleet aggregate (single-axis jobs only; nil
	// for wider grids — the axis shape selects every rendering below).
	Summary *fleet.Summary
	// Cells lists every cell's result in execution order (cohort-major,
	// then profile, then scheme).
	Cells []*CellResult
	// Progress is the terminal progress count, replayed to late watchers.
	Progress Progress

	statsOnce sync.Once
	stats     report.SummaryStats
	gridOnce  sync.Once
	grid      *report.GridStats
	jsonOnce  sync.Once
	json      []byte
	jsonErr   error
	csvOnce   sync.Once
	csv       []byte
	csvErr    error
	textOnce  sync.Once
	text      string
}

// newResult wraps a finished job's cells (plus, for single-axis jobs, the
// label-keyed merge of every cell summary); rendering is deferred to the
// accessors.
func newResult(cells []*CellResult, combined *fleet.Summary) *Result {
	return &Result{Summary: combined, Cells: cells}
}

// Stats returns the flat serializable view (single-axis jobs only; the
// zero value for wider grids, which render through Grid).
func (r *Result) Stats() report.SummaryStats {
	if r.Summary == nil {
		return report.SummaryStats{}
	}
	r.statsOnce.Do(func() { r.stats = report.SummaryStatsOf(r.Summary) })
	return r.stats
}

// Grid returns the per-cell serializable view (nil for single-axis jobs,
// which render flat).
func (r *Result) Grid() *report.GridStats {
	if r.Summary != nil {
		return nil
	}
	r.gridOnce.Do(func() {
		grid := &report.GridStats{Cells: make([]report.GridCellStats, 0, len(r.Cells))}
		for _, c := range r.Cells {
			grid.Cells = append(grid.Cells, report.GridCellStats{
				Scheme: c.Scheme, Profile: c.Profile, Cohort: c.Cohort,
				Fingerprint: c.Key, Summary: c.Stats(),
			})
		}
		r.grid = grid
	})
	return r.grid
}

// gridCells adapts the cells for the table renderer.
func (r *Result) gridCells() []report.GridCell {
	gcells := make([]report.GridCell, 0, len(r.Cells))
	for _, c := range r.Cells {
		gcells = append(gcells, report.GridCell{
			Scheme: c.Scheme, Profile: c.Profile, Cohort: c.Cohort, Summary: c.Summary,
		})
	}
	return gcells
}

// JSON returns the indented JSON rendering: flat SummaryStats for
// single-axis jobs, GridStats for wider grids. Memoized and shared.
func (r *Result) JSON() ([]byte, error) {
	r.jsonOnce.Do(func() {
		if r.Summary != nil {
			r.json, r.jsonErr = report.JSON(r.Stats())
			return
		}
		r.json, r.jsonErr = report.JSON(r.Grid())
	})
	return r.json, r.jsonErr
}

// CSV returns the tabular rendering (per-scheme rows, or per-cell rows
// with axis columns for grids). Memoized and shared.
func (r *Result) CSV() ([]byte, error) {
	r.csvOnce.Do(func() {
		if r.Summary != nil {
			r.csv, r.csvErr = report.SummaryTable(r.Summary).CSVBytes()
			return
		}
		r.csv, r.csvErr = report.GridTable(r.gridCells()).CSVBytes()
	})
	return r.csv, r.csvErr
}

// Text returns the human-readable summary. Memoized and shared.
func (r *Result) Text() string {
	r.textOnce.Do(func() {
		if r.Summary != nil {
			r.text = r.Summary.String()
			return
		}
		r.text = report.GridTable(r.gridCells()).String()
	})
	return r.text
}
