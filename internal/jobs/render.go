package jobs

import (
	"repro/internal/fleet"
	"repro/internal/report"
)

// CellResult is one finished grid cell: its axis labels, its fleet
// summary, and its rendered JSON. Cell renderings are produced exactly
// once — the cell cache shares them across overlapping grids — and a
// cell's JSON is byte-identical to the flat JSON of the equivalent
// single-axis job, because both are report.JSON(SummaryStatsOf) over the
// same deterministic summary. Callers must treat the fields as immutable.
type CellResult struct {
	// Scheme, Profile, Cohort are the cell's axis labels.
	Scheme, Profile, Cohort string
	// Summary is the cell's fleet aggregate.
	Summary *fleet.Summary
	// Stats is the serializable view of Summary.
	Stats report.SummaryStats
	// JSON is the indented JSON rendering of Stats.
	JSON []byte
	// shards/jobs are the cell's progress contribution, replayed when the
	// cell is served from the cell cache.
	shards, jobs int
}

// renderCell renders one cell's summary.
func renderCell(cell gridCell, sum *fleet.Summary) (*CellResult, error) {
	stats := report.SummaryStatsOf(sum)
	js, err := report.JSON(stats)
	if err != nil {
		return nil, err
	}
	return &CellResult{
		Scheme: cell.Scheme, Profile: cell.Profile, Cohort: cell.Cohort,
		Summary: sum, Stats: stats, JSON: js,
		shards: cell.Shards, jobs: cell.NumJobs,
	}, nil
}

// Result is a finished job's output, rendered exactly once. Cache hits
// share these byte slices verbatim, which is what makes a warm response
// byte-identical to the cold run that produced it. Callers must treat the
// slices as immutable. All stats shapes live in internal/report so the
// HTTP service and the CLIs render fleet summaries through one
// implementation.
//
// Single-axis jobs (one profile, one cohort — every pre-grid job) keep
// the legacy flat rendering: one summary merged across the scheme sweep,
// keyed by scheme label. Wider grids render per cell (Cells carries every
// cell either way), because a scheme label legitimately repeats across
// profile/cohort cells and a flat merge would conflate them.
type Result struct {
	// Summary is the merged fleet aggregate (single-axis jobs only; nil
	// for wider grids).
	Summary *fleet.Summary
	// Stats is the serializable view of Summary (single-axis jobs only).
	Stats report.SummaryStats
	// Grid is the serializable per-cell view (wider grids only).
	Grid *report.GridStats
	// Cells lists every cell's result in execution order (cohort-major,
	// then profile, then scheme).
	Cells []*CellResult
	// JSON is the indented JSON rendering: flat SummaryStats for
	// single-axis jobs, GridStats for wider grids.
	JSON []byte
	// CSV is the tabular rendering (per-scheme rows, or per-cell rows with
	// axis columns for grids).
	CSV []byte
	// Text is the human-readable summary.
	Text string
	// Progress is the terminal progress count, replayed to late watchers.
	Progress Progress
}

// renderResult renders every output format of a finished job. combined is
// the label-keyed merge of every cell summary and is only meaningful (and
// only non-nil) for single-axis jobs.
func renderResult(cells []*CellResult, combined *fleet.Summary) (*Result, error) {
	res := &Result{Cells: cells}
	if combined != nil {
		stats := report.SummaryStatsOf(combined)
		js, err := report.JSON(stats)
		if err != nil {
			return nil, err
		}
		csv, err := report.SummaryTable(combined).CSVBytes()
		if err != nil {
			return nil, err
		}
		res.Summary = combined
		res.Stats = stats
		res.JSON = js
		res.CSV = csv
		res.Text = combined.String()
		return res, nil
	}
	grid := report.GridStats{Cells: make([]report.GridCellStats, 0, len(cells))}
	gcells := make([]report.GridCell, 0, len(cells))
	for _, c := range cells {
		grid.Cells = append(grid.Cells, report.GridCellStats{
			Scheme: c.Scheme, Profile: c.Profile, Cohort: c.Cohort, Summary: c.Stats,
		})
		gcells = append(gcells, report.GridCell{
			Scheme: c.Scheme, Profile: c.Profile, Cohort: c.Cohort, Summary: c.Summary,
		})
	}
	js, err := report.JSON(grid)
	if err != nil {
		return nil, err
	}
	table := report.GridTable(gcells)
	csv, err := table.CSVBytes()
	if err != nil {
		return nil, err
	}
	res.Grid = &grid
	res.JSON = js
	res.CSV = csv
	res.Text = table.String()
	return res, nil
}
