// Package dist provides the sliding-window empirical distributions the
// control policies learn from. MakeIdle (§4.2) keeps the last n packet
// inter-arrivals and treats them as an empirical gap distribution; Window is
// that structure: a fixed-capacity ring buffer of durations where Add
// overwrites the oldest sample once the window is full.
package dist

import "time"

// Window is a fixed-capacity sliding window over duration samples. The zero
// value is unusable; construct with NewWindow. Window is not safe for
// concurrent use.
type Window struct {
	buf   []time.Duration
	head  int // index of the slot the next Add writes
	count int // number of valid samples, <= len(buf)
}

// NewWindow returns a window holding the most recent n samples. n < 1 is
// treated as 1.
func NewWindow(n int) *Window {
	if n < 1 {
		n = 1
	}
	return &Window{buf: make([]time.Duration, n)}
}

// Cap returns the window capacity n.
func (w *Window) Cap() int { return len(w.buf) }

// Len returns how many samples the window currently holds.
func (w *Window) Len() int { return w.count }

// Add slides the window forward by one sample, evicting the oldest once the
// window is full.
func (w *Window) Add(d time.Duration) {
	w.buf[w.head] = d
	w.head = (w.head + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
}

// Each calls f for every sample currently in the window, oldest first.
func (w *Window) Each(f func(time.Duration)) {
	start := w.head - w.count
	if start < 0 {
		start += len(w.buf)
	}
	for i := 0; i < w.count; i++ {
		f(w.buf[(start+i)%len(w.buf)])
	}
}

// Reset empties the window without releasing its storage.
func (w *Window) Reset() {
	w.head = 0
	w.count = 0
}
