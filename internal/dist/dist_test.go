package dist

import (
	"testing"
	"time"
)

func collect(w *Window) []time.Duration {
	var out []time.Duration
	w.Each(func(d time.Duration) { out = append(out, d) })
	return out
}

func TestWindowFillsToCapacity(t *testing.T) {
	w := NewWindow(3)
	if w.Cap() != 3 || w.Len() != 0 {
		t.Fatalf("fresh window: cap=%d len=%d", w.Cap(), w.Len())
	}
	w.Add(1)
	w.Add(2)
	if w.Len() != 2 {
		t.Fatalf("len=%d after 2 adds", w.Len())
	}
	got := collect(w)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("partial window contents %v", got)
	}
}

func TestWindowWrapAroundEvictsOldest(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Add(time.Duration(i))
	}
	if w.Len() != 3 {
		t.Fatalf("len=%d after wrap, want 3", w.Len())
	}
	got := collect(w)
	want := []time.Duration{3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after wrap got %v, want %v", got, want)
		}
	}
	// Keep wrapping: the window must always hold the last 3, oldest first.
	for i := 6; i <= 103; i++ {
		w.Add(time.Duration(i))
		got := collect(w)
		if len(got) != 3 || got[0] != time.Duration(i-2) || got[2] != time.Duration(i) {
			t.Fatalf("after Add(%d): %v", i, got)
		}
	}
}

func TestWindowReset(t *testing.T) {
	w := NewWindow(4)
	for i := 0; i < 9; i++ {
		w.Add(time.Duration(i))
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("len=%d after reset", w.Len())
	}
	if got := collect(w); len(got) != 0 {
		t.Fatalf("Each visited %v after reset", got)
	}
	// The window must be fully usable again after Reset.
	w.Add(41)
	w.Add(42)
	got := collect(w)
	if len(got) != 2 || got[0] != 41 || got[1] != 42 {
		t.Fatalf("post-reset contents %v", got)
	}
}

func TestWindowMinCapacity(t *testing.T) {
	w := NewWindow(0)
	if w.Cap() != 1 {
		t.Fatalf("cap=%d, want clamp to 1", w.Cap())
	}
	w.Add(7)
	w.Add(8)
	got := collect(w)
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("unit window contents %v", got)
	}
}
