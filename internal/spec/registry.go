package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Schema is one registered entry: its canonical name, a one-line summary,
// its parameter declarations, and an arbitrary domain payload (policy
// builders, a carrier's radio tech, a cohort's mix builder) carried
// opaquely in Meta. Domain registries wrap Registry and type-assert Meta.
type Schema struct {
	Name    string
	Summary string
	Params  []ParamSpec
	Meta    any
}

// Param returns the declaration of a parameter name.
func (s *Schema) Param(name string) (ParamSpec, bool) {
	for _, p := range s.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// Has reports whether the schema declares a parameter of that name.
func (s *Schema) Has(name string) bool { _, ok := s.Param(name); return ok }

// validate rejects malformed schemas at registration time, which is what
// guarantees every registered entry is fully self-describing.
func (s *Schema) validate(noun string) error {
	if s.Name == "" {
		return fmt.Errorf("spec: %s schema with empty name", noun)
	}
	if strings.ContainsAny(s.Name, "(),=| \t\n") {
		return fmt.Errorf("spec: %s schema name %q contains reserved characters", noun, s.Name)
	}
	seen := map[string]bool{}
	for i, p := range s.Params {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("spec: %s schema %q: %w", noun, s.Name, err)
		}
		if seen[p.Name] {
			return fmt.Errorf("spec: %s schema %q declares parameter %q twice", noun, s.Name, p.Name)
		}
		seen[p.Name] = true
		s.Params[i].defstr = p.Kind.Format(p.Default)
	}
	return nil
}

// Registry holds schemas by name plus legacy aliases that expand to
// parameterized specs. It is the single authority on which entries exist
// and what their knobs are — every surface (CLI flags, job specs, the /v1
// HTTP API) resolves names through one. The noun ("demote policy",
// "profile", "cohort") labels error messages.
type Registry struct {
	noun    string
	schemas map[string]*Schema
	aliases map[string]Spec
	// check, when non-nil, runs after Register's structural validation so
	// domain registries can reject schemas whose Meta is malformed.
	check func(*Schema) error
}

// NewRegistry returns an empty registry whose error messages call its
// entries noun (e.g. "profile"). check, when non-nil, vets each schema's
// domain payload at Register time.
func NewRegistry(noun string, check func(*Schema) error) *Registry {
	return &Registry{
		noun:    noun,
		schemas: map[string]*Schema{},
		aliases: map[string]Spec{},
		check:   check,
	}
}

// Noun returns the registry's entry noun.
func (r *Registry) Noun() string { return r.noun }

// Register adds a schema, rejecting malformed or duplicate ones.
func (r *Registry) Register(s *Schema) error {
	if err := s.validate(r.noun); err != nil {
		return err
	}
	if r.check != nil {
		if err := r.check(s); err != nil {
			return err
		}
	}
	if _, dup := r.schemas[s.Name]; dup {
		return fmt.Errorf("spec: %s schema %q already registered", r.noun, s.Name)
	}
	if _, dup := r.aliases[s.Name]; dup {
		return fmt.Errorf("spec: %s name %q already taken by an alias", r.noun, s.Name)
	}
	r.schemas[s.Name] = s
	return nil
}

// Alias maps a legacy flat name to a spec, which must itself fully
// resolve — name, parameter coercion and bounds — so a broken alias can
// never register and poison later lookups. Unlike canonical names,
// aliases may contain spaces ("Verizon 3G"); the encoding-reserved
// characters stay forbidden.
func (r *Registry) Alias(name string, spec Spec) error {
	if name == "" {
		return fmt.Errorf("spec: empty %s alias", r.noun)
	}
	if strings.ContainsAny(name, "(),=|\t\n") {
		return fmt.Errorf("spec: %s alias %q contains reserved characters", r.noun, name)
	}
	if _, dup := r.schemas[name]; dup {
		return fmt.Errorf("spec: alias %q shadows a registered %s schema", name, r.noun)
	}
	if _, dup := r.aliases[name]; dup {
		return fmt.Errorf("spec: %s alias %q already registered", r.noun, name)
	}
	if _, _, err := r.Resolve(spec); err != nil {
		return fmt.Errorf("spec: %s alias %q: %w", r.noun, name, err)
	}
	r.aliases[name] = spec
	return nil
}

// Lookup returns the schema registered under a canonical name (aliases do
// not resolve here; use Resolve for full name resolution).
func (r *Registry) Lookup(name string) (*Schema, bool) {
	s, ok := r.schemas[name]
	return s, ok
}

// Schemas lists the registered schemas sorted by name.
func (r *Registry) Schemas() []*Schema {
	out := make([]*Schema, 0, len(r.schemas))
	for _, name := range SortedNames(r.schemas) {
		out = append(out, r.schemas[name])
	}
	return out
}

// Aliases lists the alias names sorted.
func (r *Registry) Aliases() []string { return SortedNames(r.aliases) }

// AliasTarget returns the spec an alias expands to.
func (r *Registry) AliasTarget(name string) (Spec, bool) {
	s, ok := r.aliases[name]
	return s, ok
}

// Names lists every accepted name — canonical schema names and aliases —
// sorted.
func (r *Registry) Names() []string {
	names := append(SortedNames(r.schemas), SortedNames(r.aliases)...)
	sort.Strings(names)
	return names
}

// resolveSchema expands an alias (layering the caller's param overrides on
// top of the alias's) and returns the schema plus the effective spec.
func (r *Registry) resolveSchema(spec Spec) (*Schema, Spec, error) {
	if alias, ok := r.aliases[spec.Name]; ok {
		merged := Spec{Name: alias.Name}
		if len(alias.Params) > 0 || len(spec.Params) > 0 {
			merged.Params = make(map[string]any, len(alias.Params)+len(spec.Params))
			//rrclint:ordered map-to-map copy; the overlay result is a map, no iteration order reaches bytes
			for k, v := range alias.Params {
				merged.Params[k] = v
			}
			//rrclint:ordered map-to-map overlay onto distinct destination keys; result content is order-independent
			for k, v := range spec.Params {
				merged.Params[k] = v
			}
		}
		spec = merged
	}
	schema, ok := r.schemas[spec.Name]
	if !ok {
		return nil, Spec{}, fmt.Errorf("unknown %s %q (valid: %s)",
			r.noun, spec.Name, strings.Join(r.Names(), ", "))
	}
	return schema, spec, nil
}

// Resolve expands aliases and resolves a spec's parameters against the
// schema: unknown parameters are rejected, values coerced to their
// canonical types and bounds-checked, and omitted parameters filled from
// defaults. The returned Params is complete — builders never see a
// missing key.
func (r *Registry) Resolve(spec Spec) (*Schema, Params, error) {
	schema, spec, err := r.resolveSchema(spec)
	if err != nil {
		return nil, nil, err
	}
	resolved := make(Params, len(schema.Params))
	for _, ps := range schema.Params {
		resolved[ps.Name] = ps.Default
	}
	// Sorted iteration so that, with several bad parameters, WHICH error a
	// caller sees is deterministic: validation errors are rendered into job
	// responses, so even the failure bytes must not depend on map order.
	// (Found by detrange; Resolve is memoized by jobs.axisCache, so the
	// sort never lands on the hot path.)
	names := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		raw := spec.Params[name]
		ps, ok := schema.Param(name)
		if !ok {
			return nil, nil, fmt.Errorf("%s %q has no parameter %q (has: %s)",
				r.noun, schema.Name, name, strings.Join(ParamNames(schema.Params), ", "))
		}
		v, err := ps.Kind.Coerce(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("%s %q parameter %q: %w", r.noun, schema.Name, name, err)
		}
		if err := ps.InBounds(v); err != nil {
			return nil, nil, fmt.Errorf("%s %q parameter %q: %w", r.noun, schema.Name, name, err)
		}
		resolved[ps.Name] = v
	}
	return schema, resolved, nil
}

// Canonical returns the byte-stable encoding of a spec: the canonical
// schema name followed by every parameter — defaults resolved — in schema
// declaration order, values in canonical string form. Two specs that
// denote the same configuration (alias vs canonical name, omitted vs
// explicit defaults, "4500ms" vs "4.5s", any param-map ordering) encode
// identically, and any parameter value change changes the encoding. The
// job fingerprint (v4) hashes these encodings for every axis.
func (r *Registry) Canonical(spec Spec) (string, error) {
	schema, resolved, err := r.Resolve(spec)
	if err != nil {
		return "", err
	}
	return schema.Name + EncodeParams(schema.Params, resolved, nil), nil
}

// Label returns the human-readable short form of a spec: the canonical
// name plus only the non-default parameters. Sweep summaries and grid
// cells key axis values by these, so "verizon-lte(t1=5s)" and plain
// "verizon-lte" stay distinct and readable.
func (r *Registry) Label(spec Spec) (string, error) {
	schema, resolved, err := r.Resolve(spec)
	if err != nil {
		return "", err
	}
	return schema.Name + labelParams(schema, resolved), nil
}

func labelParams(schema *Schema, resolved Params) string {
	return EncodeParams(schema.Params, resolved, func(ps ParamSpec, formatted string) bool {
		return formatted != ps.DefaultString()
	})
}

// Resolution bundles everything one Resolve pass derives from a spec: the
// schema, the fully resolved parameters, and both string encodings.
// Canonical and Label are byte-identical to the same-named methods. Hot
// admission paths that need several of these per axis value (the job
// layer's validate/fingerprint/plan) pay one alias expansion and one
// coercion pass instead of one per product.
type Resolution struct {
	Schema    *Schema
	Params    Params
	Canonical string
	Label     string
}

// Resolution resolves a spec once and returns the full bundle. The two
// encodings are built in a single pass — the label is the canonical
// filtered to non-default parameters, so each value formats once — and
// stay byte-identical to Canonical and Label.
func (r *Registry) Resolution(spec Spec) (Resolution, error) {
	schema, resolved, err := r.Resolve(spec)
	if err != nil {
		return Resolution{}, err
	}
	var canon, label strings.Builder
	canon.Grow(64)
	canon.WriteString(schema.Name)
	for _, ps := range schema.Params {
		formatted := ps.Kind.Format(resolved[ps.Name])
		encodePart(&canon, len(schema.Name), ps.Name, formatted)
		if formatted != ps.DefaultString() {
			if label.Len() == 0 {
				label.Grow(64)
				label.WriteString(schema.Name)
			}
			encodePart(&label, len(schema.Name), ps.Name, formatted)
		}
	}
	res := Resolution{Schema: schema, Params: resolved}
	res.Canonical = closeParams(&canon, len(schema.Name))
	if label.Len() == 0 {
		res.Label = schema.Name
	} else {
		res.Label = closeParams(&label, len(schema.Name))
	}
	return res, nil
}

// encodePart appends one "name=value" element to a builder holding the
// schema name (of length base) plus any earlier parts.
func encodePart(sb *strings.Builder, base int, name, formatted string) {
	if sb.Len() == base {
		sb.WriteByte('(')
	} else {
		sb.WriteByte(',')
	}
	sb.WriteString(name)
	sb.WriteByte('=')
	sb.WriteString(formatted)
}

// closeParams closes the parameter list opened by encodePart, or returns
// the bare schema name when no part was appended.
func closeParams(sb *strings.Builder, base int) string {
	if sb.Len() > base {
		sb.WriteByte(')')
	}
	return sb.String()
}

// ParamInfo is the serializable view of a ParamSpec, values in canonical
// string form (the same forms Canonical uses).
type ParamInfo struct {
	Name    string    `json:"name"`
	Kind    ParamKind `json:"kind"`
	Default string    `json:"default"`
	Min     string    `json:"min,omitempty"`
	Max     string    `json:"max,omitempty"`
	Help    string    `json:"help,omitempty"`
}

// InfoFor converts a ParamSpec into its serializable view.
func InfoFor(p ParamSpec) ParamInfo {
	pi := ParamInfo{Name: p.Name, Kind: p.Kind, Default: p.Kind.Format(p.Default), Help: p.Help}
	if p.Min != nil {
		pi.Min = p.Kind.Format(p.Min)
	}
	if p.Max != nil {
		pi.Max = p.Kind.Format(p.Max)
	}
	return pi
}

// SchemaInfo is the serializable view of a Schema plus its aliases — the
// payload shape of the /v1 discovery endpoints.
type SchemaInfo struct {
	Name    string      `json:"name"`
	Summary string      `json:"summary,omitempty"`
	Params  []ParamInfo `json:"params"`
	Aliases []string    `json:"aliases,omitempty"`
}

// Describe returns the serializable view of the registry's schemas, sorted
// by name, each carrying the alias names that expand to it.
func (r *Registry) Describe() []SchemaInfo {
	aliasOf := map[string][]string{}
	for _, name := range r.Aliases() {
		target := r.aliases[name].Name
		aliasOf[target] = append(aliasOf[target], name)
	}
	out := make([]SchemaInfo, 0, len(r.schemas))
	for _, s := range r.Schemas() {
		info := SchemaInfo{
			Name: s.Name, Summary: s.Summary,
			Aliases: aliasOf[s.Name],
			Params:  make([]ParamInfo, 0, len(s.Params)),
		}
		for _, p := range s.Params {
			info.Params = append(info.Params, InfoFor(p))
		}
		out = append(out, info)
	}
	return out
}

// Usage renders the registry as an indented reference block for CLI error
// messages: one line per schema with its parameter grid, then the aliases.
func (r *Registry) Usage() string {
	var sb strings.Builder
	for _, s := range r.Schemas() {
		fmt.Fprintf(&sb, "  %-12s %s\n", s.Name, s.Summary)
		for _, p := range s.Params {
			bounds := ""
			if p.Min != nil || p.Max != nil {
				lo, hi := "-inf", "+inf"
				if p.Min != nil {
					lo = p.Kind.Format(p.Min)
				}
				if p.Max != nil {
					hi = p.Kind.Format(p.Max)
				}
				bounds = fmt.Sprintf(" in [%s, %s]", lo, hi)
			}
			fmt.Fprintf(&sb, "    %s: %s (default %s%s) %s\n",
				p.Name, p.Kind, p.Kind.Format(p.Default), bounds, p.Help)
		}
	}
	for _, name := range r.Aliases() {
		target, _ := r.Canonical(Spec{Name: name})
		fmt.Fprintf(&sb, "  %-12s alias for %s\n", name, target)
	}
	return sb.String()
}

// ParamNames lists the declared parameter names in declaration order.
func ParamNames(params []ParamSpec) []string {
	names := make([]string, len(params))
	for i, p := range params {
		names[i] = p.Name
	}
	return names
}
