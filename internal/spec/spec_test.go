package spec

import (
	"strings"
	"testing"
	"time"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry("widget", nil)
	err := r.Register(&Schema{
		Name:    "gadget",
		Summary: "a test schema exercising every kind",
		Params: []ParamSpec{
			{Name: "wait", Kind: KindDuration, Default: 4500 * time.Millisecond,
				Min: time.Millisecond, Max: time.Minute, Help: "a duration"},
			{Name: "q", Kind: KindFloat, Default: 0.95, Min: 0.0, Max: 1.0, Help: "a float"},
			{Name: "n", Kind: KindInt, Default: 10, Min: 1, Max: 100, Help: "an int"},
			{Name: "on", Kind: KindBool, Default: true, Help: "a bool"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Alias("legacy name", Spec{Name: "gadget", Params: map[string]any{"n": 20}}); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"gadget", Spec{Name: "gadget"}},
		{" gadget ( wait = 2s , n = 5 ) ", Spec{Name: "gadget", Params: map[string]any{"wait": "2s", "n": "5"}}},
		{"gadget()", Spec{Name: "gadget"}},
		{"legacy name", Spec{Name: "legacy name"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got.Name != c.want.Name || len(got.Params) != len(c.want.Params) {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "gadget(", "gadget(x)", "(n=1)", "gadget(n=1,n=2)", "gadget(=1)"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestResolveCoercionAndBounds(t *testing.T) {
	r := testRegistry(t)
	// Every accepted input form coerces to the canonical type.
	_, p, err := r.Resolve(Spec{Name: "gadget", Params: map[string]any{
		"wait": "2s", "q": "0.5", "n": float64(7), "on": "false",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration("wait") != 2*time.Second || p.Float("q") != 0.5 || p.Int("n") != 7 || p.Bool("on") {
		t.Fatalf("coercion wrong: %+v", p)
	}
	// Omitted params resolve to defaults.
	_, p, err = r.Resolve(Spec{Name: "gadget"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration("wait") != 4500*time.Millisecond || !p.Bool("on") {
		t.Fatalf("defaults wrong: %+v", p)
	}
	for _, bad := range []map[string]any{
		{"wait": "2h"},          // above max
		{"wait": "0s"},          // below min
		{"q": 1.5},              // above max
		{"q": "NaN"},            // not finite
		{"n": 2.5},              // not an integer
		{"on": "maybe"},         // not a bool
		{"missing": 1},          // unknown param
		{"wait": []string{"x"}}, // uncoercible type
	} {
		if _, _, err := r.Resolve(Spec{Name: "gadget", Params: bad}); err == nil {
			t.Errorf("params %+v accepted", bad)
		}
	}
	if _, _, err := r.Resolve(Spec{Name: "nonesuch"}); err == nil ||
		!strings.Contains(err.Error(), "unknown widget") {
		t.Fatalf("unknown name error: %v", err)
	}
}

func TestCanonicalAndLabel(t *testing.T) {
	r := testRegistry(t)
	want, err := r.Canonical(Spec{Name: "gadget"})
	if err != nil {
		t.Fatal(err)
	}
	if want != "gadget(wait=4.5s,q=0.95,n=10,on=true)" {
		t.Fatalf("canonical %q", want)
	}
	// Equivalent spellings encode identically.
	for i, s := range []Spec{
		{Name: "gadget", Params: map[string]any{"wait": "4500ms"}},
		{Name: "gadget", Params: map[string]any{"q": 0.95, "on": true}},
	} {
		got, err := r.Canonical(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("spec %d canonical %q, want %q", i, got, want)
		}
	}
	// The alias layers its params under the caller's overrides.
	got, err := r.Canonical(Spec{Name: "legacy name"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "gadget(wait=4.5s,q=0.95,n=20,on=true)" {
		t.Fatalf("alias canonical %q", got)
	}
	got, err = r.Canonical(Spec{Name: "legacy name", Params: map[string]any{"n": 30}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "n=30") {
		t.Fatalf("override does not win over alias params: %q", got)
	}
	// Labels keep only the non-defaults.
	label, err := r.Label(Spec{Name: "gadget", Params: map[string]any{"wait": "2s", "n": 10}})
	if err != nil {
		t.Fatal(err)
	}
	if label != "gadget(wait=2s)" {
		t.Fatalf("label %q", label)
	}
}

func TestRegisterRejectsMalformedSchemas(t *testing.T) {
	bad := []*Schema{
		{Name: ""},
		{Name: "has space"},
		{Name: "has(paren"},
		{Name: "x", Params: []ParamSpec{{Name: "", Kind: KindInt, Default: 1}}},
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: "complex", Default: 1}}},
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: KindInt}}},                                                     // no default
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: KindInt, Default: 0, Min: 1}}},                                 // default out of bounds
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: KindInt, Default: "1"}}},                                       // mistyped default
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: KindBool, Default: true, Min: false}}},                         // bool bounds
		{Name: "x", Params: []ParamSpec{{Name: "p", Kind: KindInt, Default: 1}, {Name: "p", Kind: KindInt, Default: 2}}}, // dup
	}
	for i, s := range bad {
		r := NewRegistry("widget", nil)
		if err := r.Register(s); err == nil {
			t.Errorf("schema %d accepted: %+v", i, s)
		}
	}

	r := testRegistry(t)
	if err := r.Register(&Schema{Name: "gadget"}); err == nil {
		t.Error("duplicate schema accepted")
	}
	if err := r.Alias("gadget", Spec{Name: "gadget"}); err == nil {
		t.Error("alias shadowing a schema accepted")
	}
	if err := r.Alias("broken", Spec{Name: "gadget", Params: map[string]any{"n": -1}}); err == nil {
		t.Error("unresolvable alias accepted")
	}
	if err := r.Alias("bad|alias", Spec{Name: "gadget"}); err == nil {
		t.Error("alias with reserved characters accepted")
	}
}

func TestDescribeAndUsage(t *testing.T) {
	r := testRegistry(t)
	infos := r.Describe()
	if len(infos) != 1 || infos[0].Name != "gadget" {
		t.Fatalf("describe: %+v", infos)
	}
	if len(infos[0].Params) != 4 {
		t.Fatalf("describe lists %d params", len(infos[0].Params))
	}
	if got := infos[0].Aliases; len(got) != 1 || got[0] != "legacy name" {
		t.Fatalf("aliases: %v", got)
	}
	for _, pi := range infos[0].Params {
		if pi.Kind == "" || pi.Default == "" {
			t.Fatalf("param %q missing kind or default", pi.Name)
		}
	}
	usage := r.Usage()
	for _, want := range []string{"gadget", "wait", "legacy name", "alias for"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage missing %q:\n%s", want, usage)
		}
	}
}
