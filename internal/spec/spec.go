// Package spec is the shared parameter-spec machinery behind every
// self-describing registry in this codebase: dormancy policies
// (internal/policy), carrier power profiles (internal/power) and synthetic
// user cohorts (internal/workload) all declare their tunable knobs as
// ParamSpecs inside Schemas, resolve caller-supplied Specs against them
// (alias expansion, type coercion, inclusive bounds checks, defaults), and
// share one canonical byte-stable "name(param=value,...)" encoding.
//
// The encoding contract is what makes registries usable as cache-key
// material: two Specs that denote the same configuration — alias vs
// canonical name, omitted vs explicit defaults, "4500ms" vs "4.5s", any
// param-map construction order — encode identically, and any value change
// changes the encoding. The v4 job fingerprint hashes these encodings for
// all three experiment axes.
package spec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ParamKind is the value type of a registered parameter.
type ParamKind string

// The supported parameter kinds. Durations accept Go duration strings
// ("4.5s") or integer nanoseconds; floats and ints accept JSON numbers or
// their decimal string forms; bools accept JSON booleans or "true"/"false".
const (
	KindDuration ParamKind = "duration"
	KindFloat    ParamKind = "float"
	KindInt      ParamKind = "int"
	KindBool     ParamKind = "bool"
)

// ParamSpec declares one tunable parameter of a schema: its kind, default,
// and inclusive bounds. Default, Min and Max hold a time.Duration, float64,
// int or bool matching Kind; nil bounds are unbounded (bools take none).
type ParamSpec struct {
	Name    string
	Kind    ParamKind
	Default any
	Min     any
	Max     any
	Help    string

	// defstr caches Kind.Format(Default), filled at registration so the
	// label encoding (which compares every value against its default)
	// doesn't re-format defaults on each resolution.
	defstr string
}

// DefaultString returns the canonical string form of Default, cached at
// registration; unregistered ParamSpec values format on demand.
func (p ParamSpec) DefaultString() string {
	if p.defstr != "" {
		return p.defstr
	}
	return p.Kind.Format(p.Default)
}

// Validate checks the declaration itself (not a value): known kind,
// well-typed default and bounds, default within bounds.
func (p ParamSpec) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("parameter with empty name")
	}
	switch p.Kind {
	case KindDuration, KindFloat, KindInt:
	case KindBool:
		if p.Min != nil || p.Max != nil {
			return fmt.Errorf("parameter %q: bool parameters take no bounds", p.Name)
		}
	default:
		return fmt.Errorf("parameter %q has unknown kind %q", p.Name, p.Kind)
	}
	if p.Default == nil {
		return fmt.Errorf("parameter %q has no default", p.Name)
	}
	for _, v := range []any{p.Default, p.Min, p.Max} {
		if v == nil {
			continue
		}
		if err := p.Kind.check(v); err != nil {
			return fmt.Errorf("parameter %q: %w", p.Name, err)
		}
	}
	if err := p.InBounds(p.Default); err != nil {
		return fmt.Errorf("parameter %q default: %w", p.Name, err)
	}
	return nil
}

// check verifies a typed value matches the kind.
func (k ParamKind) check(v any) error {
	switch k {
	case KindDuration:
		if _, ok := v.(time.Duration); !ok {
			return fmt.Errorf("%v (%T) is not a duration", v, v)
		}
	case KindFloat:
		if _, ok := v.(float64); !ok {
			return fmt.Errorf("%v (%T) is not a float", v, v)
		}
	case KindInt:
		if _, ok := v.(int); !ok {
			return fmt.Errorf("%v (%T) is not an int", v, v)
		}
	case KindBool:
		if _, ok := v.(bool); !ok {
			return fmt.Errorf("%v (%T) is not a bool", v, v)
		}
	}
	return nil
}

// Format renders a typed value in its canonical string form: the one the
// byte-stable encoding, the discovery APIs, and error messages all share.
func (k ParamKind) Format(v any) string {
	switch k {
	case KindDuration:
		return v.(time.Duration).String()
	case KindFloat:
		return strconv.FormatFloat(v.(float64), 'g', -1, 64)
	case KindInt:
		return strconv.Itoa(v.(int))
	case KindBool:
		return strconv.FormatBool(v.(bool))
	}
	return fmt.Sprint(v)
}

// Coerce converts a caller-supplied value (typed Go value, JSON-decoded
// number or boolean, or string) into the kind's canonical Go type.
func (k ParamKind) Coerce(v any) (any, error) {
	switch k {
	case KindDuration:
		switch x := v.(type) {
		case time.Duration:
			return x, nil
		case string:
			d, err := time.ParseDuration(x)
			if err != nil {
				return nil, fmt.Errorf("bad duration %q: %w", x, err)
			}
			return d, nil
		case float64: // JSON number: integer nanoseconds
			if x != float64(int64(x)) {
				return nil, fmt.Errorf("duration %v must be whole nanoseconds or a string like \"4.5s\"", x)
			}
			return time.Duration(int64(x)), nil
		case int:
			return time.Duration(x), nil
		case int64:
			return time.Duration(x), nil
		}
	case KindFloat:
		// finite rejects NaN and ±Inf: NaN compares false against every
		// bound (so it would sail through InBounds into builders that
		// panic on it), and neither is a meaningful knob value.
		finite := func(f float64) (any, error) {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, fmt.Errorf("%v is not a finite number", f)
			}
			return f, nil
		}
		switch x := v.(type) {
		case float64:
			return finite(x)
		case int:
			return float64(x), nil
		case int64:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(x, 64)
			if err != nil {
				return nil, fmt.Errorf("bad float %q", x)
			}
			return finite(f)
		}
	case KindInt:
		switch x := v.(type) {
		case int:
			return x, nil
		case int64:
			return int(x), nil
		case float64:
			if x != float64(int64(x)) {
				return nil, fmt.Errorf("%v is not an integer", x)
			}
			return int(int64(x)), nil
		case string:
			n, err := strconv.Atoi(x)
			if err != nil {
				return nil, fmt.Errorf("bad int %q", x)
			}
			return n, nil
		}
	case KindBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case string:
			b, err := strconv.ParseBool(x)
			if err != nil {
				return nil, fmt.Errorf("bad bool %q", x)
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("cannot use %v (%T) as %s", v, v, k)
}

// InBounds checks a typed value against the inclusive [Min, Max] range.
func (p ParamSpec) InBounds(v any) error {
	less := func(a, b any) bool {
		switch p.Kind {
		case KindDuration:
			return a.(time.Duration) < b.(time.Duration)
		case KindFloat:
			return a.(float64) < b.(float64)
		case KindBool:
			return false // bools take no bounds
		default:
			return a.(int) < b.(int)
		}
	}
	if p.Min != nil && less(v, p.Min) {
		return fmt.Errorf("%s below minimum %s", p.Kind.Format(v), p.Kind.Format(p.Min))
	}
	if p.Max != nil && less(p.Max, v) {
		return fmt.Errorf("%s above maximum %s", p.Kind.Format(v), p.Kind.Format(p.Max))
	}
	return nil
}

// Spec selects a registered schema by name and overrides some of its
// parameters. Param values may be typed Go values, JSON-decoded values, or
// canonical strings; the registry coerces and bounds-checks them against
// the schema when the spec is resolved. The zero Spec is invalid (no name).
type Spec struct {
	Name   string         `json:"name"`
	Params map[string]any `json:"params,omitempty"`
}

// Params is a fully resolved parameter set: every schema parameter
// present, values in their canonical Go types. Builders read it with the
// typed accessors, which panic on schema mismatch — impossible for Params
// produced by Registry.Resolve.
type Params map[string]any

// Duration returns a duration parameter.
func (p Params) Duration(name string) time.Duration { return p[name].(time.Duration) }

// Float returns a float parameter.
func (p Params) Float(name string) float64 { return p[name].(float64) }

// Int returns an int parameter.
func (p Params) Int(name string) int { return p[name].(int) }

// Bool returns a bool parameter.
func (p Params) Bool(name string) bool { return p[name].(bool) }

// Parse parses the CLI spec syntax: a bare schema (or alias) name, or
// "name(k=v,k2=v2)" with values in their canonical string forms, e.g.
// "fixedtail(wait=2s)" or "verizon-lte(t1=5s)". Whitespace around names,
// keys and values is ignored. The result still needs registry resolution
// (alias expansion, coercion, bounds).
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if s == "" {
			return Spec{}, fmt.Errorf("empty spec")
		}
		return Spec{Name: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return Spec{}, fmt.Errorf("bad spec %q: missing closing parenthesis", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" {
		return Spec{}, fmt.Errorf("bad spec %q: missing name", s)
	}
	spec := Spec{Name: name}
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	if body == "" {
		return spec, nil
	}
	spec.Params = make(map[string]any)
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return Spec{}, fmt.Errorf("bad spec %q: parameter %q is not key=value", s, kv)
		}
		if _, dup := spec.Params[k]; dup {
			return Spec{}, fmt.Errorf("bad spec %q: duplicate parameter %q", s, k)
		}
		spec.Params[k] = v
	}
	return spec, nil
}

// EncodeParams renders a resolved parameter set in schema declaration
// order (a fixed order, so the encoding is byte-stable regardless of how
// the caller's param map was built). keep filters which params appear; it
// receives each value pre-formatted in canonical form, so filters that
// compare encodings (the label path) don't format twice.
func EncodeParams(params []ParamSpec, resolved Params, keep func(ParamSpec, string) bool) string {
	var sb strings.Builder
	for _, ps := range params {
		formatted := ps.Kind.Format(resolved[ps.Name])
		if keep != nil && !keep(ps, formatted) {
			continue
		}
		if sb.Len() == 0 {
			sb.WriteByte('(')
		} else {
			sb.WriteByte(',')
		}
		sb.WriteString(ps.Name)
		sb.WriteByte('=')
		sb.WriteString(formatted)
	}
	if sb.Len() == 0 {
		return ""
	}
	sb.WriteByte(')')
	return sb.String()
}

// SortedNames returns map keys sorted, for deterministic error messages.
func SortedNames[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
