package basestation

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestBufferPolicyValidate(t *testing.T) {
	if err := (BufferPolicy{}).Validate(); err == nil {
		t.Fatal("zero Hold accepted")
	}
	if err := (BufferPolicy{Hold: time.Second, MaxBytes: -1}).Validate(); err == nil {
		t.Fatal("negative MaxBytes accepted")
	}
	if err := (BufferPolicy{Hold: time.Second}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDownlinkBufferingValidates(t *testing.T) {
	tr := trace.Trace{{T: 0, Dir: trace.In, Size: 100}}
	if _, err := DownlinkBuffering(prof(), tr, nil, BufferPolicy{}); err == nil {
		t.Fatal("invalid buffer policy accepted")
	}
	bad := trace.Trace{{T: sec(2)}, {T: sec(1)}}
	if _, err := DownlinkBuffering(prof(), bad, nil, BufferPolicy{Hold: time.Second}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestBufferingDelaysIdleDownlink(t *testing.T) {
	// Radio idle (status quo, but first packet long gone): two downlink
	// pushes 2 s apart get held and delivered together at the first's
	// deadline.
	tr := trace.Trace{
		{T: 0, Dir: trace.Out, Size: 100},
		{T: sec(60), Dir: trace.In, Size: 500},
		{T: sec(62), Dir: trace.In, Size: 500},
	}
	res, err := DownlinkBuffering(prof(), tr, nil, BufferPolicy{Hold: sec(5)})
	if err != nil {
		t.Fatal(err)
	}
	// Both pushes delivered at t=65 (first deadline).
	if res.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", res.Flushes)
	}
	if len(res.Delays) != 2 {
		t.Fatalf("delays = %v", res.Delays)
	}
	if res.Delays[0] != sec(5) || res.Delays[1] != sec(3) {
		t.Fatalf("delays = %v, want [5s 3s]", res.Delays)
	}
	last := res.Rewritten[len(res.Rewritten)-1]
	if last.T != sec(65) {
		t.Fatalf("delivery at %v, want 65s", last.T)
	}
	if err := res.Rewritten.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferingPassesThroughWhenActive(t *testing.T) {
	// Downlink while the radio is still in its tail passes straight
	// through: no delays.
	tr := trace.Trace{
		{T: 0, Dir: trace.Out, Size: 100},
		{T: sec(2), Dir: trace.In, Size: 500}, // tail = 12 s: still active
	}
	res, err := DownlinkBuffering(prof(), tr, nil, BufferPolicy{Hold: sec(5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != 0 || res.Flushes != 0 {
		t.Fatalf("active-radio downlink was buffered: %+v", res)
	}
	if len(res.Rewritten) != 2 || res.Rewritten[1].T != sec(2) {
		t.Fatalf("rewritten: %+v", res.Rewritten)
	}
}

func TestBufferingUplinkFlushes(t *testing.T) {
	// A held push is flushed early when the device itself transmits.
	tr := trace.Trace{
		{T: 0, Dir: trace.Out, Size: 100},
		{T: sec(60), Dir: trace.In, Size: 500},  // held (deadline 70)
		{T: sec(62), Dir: trace.Out, Size: 100}, // uplink wakes radio
	}
	res, err := DownlinkBuffering(prof(), tr, nil, BufferPolicy{Hold: sec(10)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Delays) != 1 || res.Delays[0] != sec(2) {
		t.Fatalf("delays = %v, want [2s]", res.Delays)
	}
}

func TestBufferingByteBudgetFlushes(t *testing.T) {
	tr := trace.Trace{
		{T: 0, Dir: trace.Out, Size: 100},
		{T: sec(60), Dir: trace.In, Size: 900},
		{T: sec(61), Dir: trace.In, Size: 900}, // crosses 1500 B budget
		{T: sec(80), Dir: trace.In, Size: 100},
	}
	res, err := DownlinkBuffering(prof(), tr, nil, BufferPolicy{Hold: sec(30), MaxBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	// First two delivered at t=61 by the byte budget; the third waits for
	// its own deadline... unless the radio is still active at t=80
	// (tail = 12 s from 61: active until 73, so 80 is idle again).
	if res.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", res.Flushes)
	}
	if res.Delays[0] != sec(1) || res.Delays[1] != 0 {
		t.Fatalf("budget-flush delays = %v", res.Delays[:2])
	}
}

func TestBufferingSavesEnergyOnPushWorkload(t *testing.T) {
	// A push-heavy background workload: station buffering should cut
	// promotions and energy versus the unbuffered replay, at bounded delay.
	tr := workload.Generate(workload.MicroBlog(), 3, 2*time.Hour)
	p := prof()

	unbuffered, err := DownlinkBuffering(p, tr, &policy.FixedTail{Wait: time.Second},
		BufferPolicy{Hold: time.Millisecond}) // ~no buffering
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := DownlinkBuffering(p, tr, &policy.FixedTail{Wait: time.Second},
		BufferPolicy{Hold: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if buffered.Promotions > unbuffered.Promotions {
		t.Fatalf("buffering increased promotions: %d vs %d",
			buffered.Promotions, unbuffered.Promotions)
	}
	if buffered.EnergyJ > unbuffered.EnergyJ {
		t.Fatalf("buffering increased energy: %v vs %v",
			buffered.EnergyJ, unbuffered.EnergyJ)
	}
	for _, d := range buffered.Delays {
		if d > 10*time.Second {
			t.Fatalf("delay %v exceeds hold bound", d)
		}
	}
}

func TestBufferingRewrittenAlwaysValid(t *testing.T) {
	for i, app := range workload.Apps() {
		tr := workload.Generate(app, int64(i+1), time.Hour)
		res, err := DownlinkBuffering(prof(), tr, &policy.FixedTail{Wait: sec(2)},
			BufferPolicy{Hold: sec(8), MaxBytes: 64 * 1024})
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if err := res.Rewritten.Validate(); err != nil {
			t.Fatalf("%s: rewritten invalid: %v", app.Name(), err)
		}
		if len(res.Rewritten) != len(tr) {
			t.Fatalf("%s: packet count changed: %d vs %d", app.Name(), len(res.Rewritten), len(tr))
		}
	}
}
