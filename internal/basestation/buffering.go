package basestation

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/rrc"
	"repro/internal/trace"
)

// This file implements the paper's second §8 future-work item: "whether
// the base station can actively help the phone to make decisions on fast
// dormancy by buffering incoming traffic for the phone."
//
// DownlinkBuffering rewrites a device's trace the way a cooperating base
// station would: while the device's radio is Idle, *downlink* packets are
// held in the station's buffer and delivered together when either (a) the
// hold deadline expires, (b) the buffer exceeds a byte budget, or (c) the
// device itself transmits (uplink packets always wake the radio — the
// station cannot delay those). This is MakeActive's mirror image: the
// device batches session starts it controls; the station batches pushes it
// controls. Both trade bounded delay for shared promotions.

// BufferPolicy configures station-side downlink buffering.
type BufferPolicy struct {
	// Hold is the maximum time the station delays a downlink packet.
	Hold time.Duration
	// MaxBytes flushes the buffer early once this many bytes are held
	// (0 = unlimited within Hold).
	MaxBytes int
}

// Validate checks the policy.
func (b BufferPolicy) Validate() error {
	if b.Hold <= 0 {
		return fmt.Errorf("basestation: BufferPolicy.Hold must be positive")
	}
	if b.MaxBytes < 0 {
		return fmt.Errorf("basestation: BufferPolicy.MaxBytes must be >= 0")
	}
	return nil
}

// BufferResult reports a buffered replay.
type BufferResult struct {
	// Rewritten is the trace as the device saw it (downlink deliveries
	// possibly deferred).
	Rewritten trace.Trace
	// Delays holds the deferral of every buffered downlink packet.
	Delays []time.Duration
	// Flushes counts buffer deliveries (each is one promotion's worth of
	// downlink batched).
	Flushes int
	// EnergyJ and Promotions account the device's radio under the
	// rewritten trace with the given demote policy.
	EnergyJ    float64
	Promotions int
}

// DownlinkBuffering replays a device trace through a buffering station.
// The demote policy governs the device's dormancy (nil = status quo), so
// the station's view of "device idle" is consistent with the device's own
// behaviour.
func DownlinkBuffering(prof power.Profile, tr trace.Trace, demote policy.DemotePolicy, buf BufferPolicy) (*BufferResult, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := buf.Validate(); err != nil {
		return nil, err
	}
	if demote == nil {
		demote = policy.StatusQuo{}
	}
	demote.Reset()

	m, err := rrc.New(prof, false)
	if err != nil {
		return nil, err
	}
	res := &BufferResult{}

	type held struct {
		p        trace.Packet
		deadline time.Duration
	}
	var buffer []held
	var bufferedBytes int
	var lastPkt time.Duration
	sawPkt := false
	var dormancyAt time.Duration = policy.Never

	// deliver flushes the buffer at time t: all held packets reach the
	// device together.
	deliver := func(t time.Duration) {
		if len(buffer) == 0 {
			return
		}
		for _, h := range buffer {
			res.Delays = append(res.Delays, t-h.p.T)
			p := h.p
			p.T = t
			res.Rewritten = append(res.Rewritten, p)
		}
		buffer = buffer[:0]
		bufferedBytes = 0
		res.Flushes++
		// The delivery itself is traffic: radio promotes, timers reset.
		advanceDormancy(m, &dormancyAt, t, demote)
		m.OnPacket(t)
		if sawPkt {
			demote.Observe(t - lastPkt)
		}
		lastPkt = t
		sawPkt = true
		scheduleDormancy(&dormancyAt, t, demote)
	}

	for _, p := range tr {
		// Fire any due dormancy and earlier buffer deadlines first.
		for len(buffer) > 0 && buffer[0].deadline <= p.T {
			deliver(buffer[0].deadline)
		}
		advanceDormancy(m, &dormancyAt, p.T, demote)

		idle := m.State() == rrc.Idle
		if p.Dir == trace.In && idle {
			// Station holds the packet.
			buffer = append(buffer, held{p: p, deadline: p.T + buf.Hold})
			bufferedBytes += p.Size
			if buf.MaxBytes > 0 && bufferedBytes >= buf.MaxBytes {
				deliver(p.T)
			}
			continue
		}
		// Uplink traffic (or downlink to an already-active radio) passes
		// through and flushes anything held.
		if len(buffer) > 0 {
			deliver(p.T)
		}
		m.OnPacket(p.T)
		res.Rewritten = append(res.Rewritten, p)
		if sawPkt {
			demote.Observe(p.T - lastPkt)
		}
		lastPkt = p.T
		sawPkt = true
		scheduleDormancy(&dormancyAt, p.T, demote)
	}
	// Trailing buffer: deliver at the earliest deadline.
	if len(buffer) > 0 {
		deliver(buffer[0].deadline)
	}

	sort.SliceStable(res.Rewritten, func(i, j int) bool {
		return res.Rewritten[i].T < res.Rewritten[j].T
	})

	// Account energy of the rewritten trace.
	m.AdvanceTo(m.Now() + prof.Tail() + time.Second)
	var dataJ float64
	for _, p := range res.Rewritten {
		dataJ += energy.TxJ(&prof, p.Size, p.Dir == trace.Out)
	}
	res.EnergyJ = dataJ +
		m.Residency(rrc.DCH).Seconds()*prof.T1MW/1000 +
		m.Residency(rrc.FACH).Seconds()*prof.T2MW/1000 +
		float64(m.Promotions())*prof.PromotionJ() +
		float64(m.Demotions())*prof.DormancyJ()
	res.Promotions = m.Promotions()
	return res, nil
}

// advanceDormancy fires a scheduled fast dormancy if it came due by t.
func advanceDormancy(m *rrc.Machine, dormancyAt *time.Duration, t time.Duration, _ policy.DemotePolicy) {
	if *dormancyAt != policy.Never && *dormancyAt <= t {
		at := *dormancyAt
		*dormancyAt = policy.Never
		m.AdvanceTo(at)
		if m.State() != rrc.Idle {
			m.FastDormancy(at)
		}
	}
	m.AdvanceTo(t)
}

// scheduleDormancy records the device's next dormancy trigger.
func scheduleDormancy(dormancyAt *time.Duration, now time.Duration, demote policy.DemotePolicy) {
	w := demote.Decide(now)
	if w == policy.Never {
		*dormancyAt = policy.Never
		return
	}
	if w < 0 {
		w = 0
	}
	*dormancyAt = now + w
}
