// Package basestation explores the paper's first future-work item (§8):
// what happens at the base station when many devices trigger fast
// dormancy. It simulates one cell with multiple attached devices, each
// replaying its own trace under its own demotion policy, and lets the
// station apply a Release-8-style admission policy to fast-dormancy
// requests ("the mobile device first sends a fast dormancy request, and
// the base station will decide to release the channel or not", §2.2).
//
// The station counts signaling events (promotions and demotions each cost
// the cell control-channel messages) in fixed windows, so experiments can
// plot aggregate signaling load against the number of devices and compare
// always-grant against rate-limited admission.
package basestation

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/rrc"
	"repro/internal/trace"
)

// Device is one phone attached to the cell.
type Device struct {
	// Name identifies the device in results.
	Name string
	// Trace is the device's packet schedule.
	Trace trace.Trace
	// Demote is the device's dormancy policy (nil = status quo).
	Demote policy.DemotePolicy
}

// AdmissionPolicy is the station's fast-dormancy arbiter.
type AdmissionPolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Grant decides whether a dormancy request at now is honored, given
	// the number of signaling events the cell handled in the current
	// accounting window.
	Grant(now time.Duration, windowSignals int) bool
}

// AlwaysGrant models the paper's simplifying assumption: every request is
// honored.
type AlwaysGrant struct{}

// Name implements AdmissionPolicy.
func (AlwaysGrant) Name() string { return "always-grant" }

// Grant implements AdmissionPolicy.
func (AlwaysGrant) Grant(time.Duration, int) bool { return true }

// RateLimit grants requests only while the current window's signaling
// count is below a budget — a plausible network-controlled fast dormancy.
type RateLimit struct {
	// MaxPerWindow is the signaling budget per accounting window.
	MaxPerWindow int
}

// Name implements AdmissionPolicy.
func (r RateLimit) Name() string { return fmt.Sprintf("rate-limit(%d)", r.MaxPerWindow) }

// Grant implements AdmissionPolicy.
func (r RateLimit) Grant(_ time.Duration, windowSignals int) bool {
	return windowSignals < r.MaxPerWindow
}

// DeviceResult summarises one device's run.
type DeviceResult struct {
	Name        string
	EnergyJ     float64
	Promotions  int
	Demotions   int
	Denied      int // dormancy requests the station refused
	IdleSeconds float64
}

// WindowCount is one accounting window's signaling volume.
type WindowCount struct {
	Start   time.Duration
	Signals int
}

// Result is the outcome of a cell simulation.
type Result struct {
	Admission    string
	Devices      []DeviceResult
	Windows      []WindowCount
	TotalSignals int
	TotalDenied  int
}

// PeakSignals returns the largest per-window signaling count.
func (r *Result) PeakSignals() int {
	peak := 0
	for _, w := range r.Windows {
		if w.Signals > peak {
			peak = w.Signals
		}
	}
	return peak
}

// TotalEnergyJ sums device energies.
func (r *Result) TotalEnergyJ() float64 {
	var s float64
	for _, d := range r.Devices {
		s += d.EnergyJ
	}
	return s
}

// event is one entry in the cell's time-ordered queue.
type event struct {
	at   time.Duration
	dev  int
	kind eventKind
	// seq invalidates stale dormancy timers: a dormancy event only fires
	// if the device has seen no packet since it was scheduled.
	seq int
}

type eventKind uint8

const (
	evPacket eventKind = iota
	evDormancy
)

type eventQueue []event

func (q eventQueue) Len() int      { return len(q) }
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	// Packets before dormancy at the same instant: traffic wins.
	return q[i].kind == evPacket && q[j].kind == evDormancy
}
func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// devState is the per-device simulation state.
type devState struct {
	machine *rrc.Machine
	demote  policy.DemotePolicy
	pktIdx  int
	lastPkt time.Duration
	sawPkt  bool
	seq     int
	denied  int
	dataJ   float64
}

// Simulate runs the cell. window sets the signaling accounting granularity
// (e.g. one minute). Devices' traces share a time origin.
func Simulate(prof power.Profile, devices []Device, admission AdmissionPolicy, window time.Duration) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if admission == nil {
		admission = AlwaysGrant{}
	}
	if window <= 0 {
		window = time.Minute
	}
	states := make([]*devState, len(devices))
	var q eventQueue
	var horizon time.Duration
	for i, d := range devices {
		if err := d.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("basestation: device %s: %w", d.Name, err)
		}
		m, err := rrc.New(prof, false)
		if err != nil {
			return nil, err
		}
		dem := d.Demote
		if dem == nil {
			dem = policy.StatusQuo{}
		}
		dem.Reset()
		states[i] = &devState{machine: m, demote: dem}
		if len(d.Trace) > 0 {
			heap.Push(&q, event{at: d.Trace[0].T, dev: i, kind: evPacket})
			if end := d.Trace.Duration(); end > horizon {
				horizon = end
			}
		}
	}

	res := &Result{Admission: admission.Name()}
	windowStart := time.Duration(0)
	windowSignals := 0
	rollWindow := func(now time.Duration) {
		for now >= windowStart+window {
			res.Windows = append(res.Windows, WindowCount{Start: windowStart, Signals: windowSignals})
			windowStart += window
			windowSignals = 0
		}
	}
	signal := func(now time.Duration, n int) {
		rollWindow(now)
		windowSignals += n
		res.TotalSignals += n
	}

	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		st := states[ev.dev]
		switch ev.kind {
		case evPacket:
			promoBefore := st.machine.Promotions()
			demoBefore := st.machine.Demotions()
			st.machine.OnPacket(ev.at)
			// Timer demotions and the promotion both cost signaling.
			signal(ev.at, (st.machine.Promotions()-promoBefore)+(st.machine.Demotions()-demoBefore))

			p := devices[ev.dev].Trace[st.pktIdx]
			st.dataJ += energy.TxJ(&prof, p.Size, p.Dir == trace.Out)
			if st.sawPkt {
				st.demote.Observe(ev.at - st.lastPkt)
			}
			st.lastPkt = ev.at
			st.sawPkt = true
			st.seq++

			if w := st.demote.Decide(ev.at); w != policy.Never {
				if w < 0 {
					w = 0
				}
				heap.Push(&q, event{at: ev.at + w, dev: ev.dev, kind: evDormancy, seq: st.seq})
			}
			st.pktIdx++
			if st.pktIdx < len(devices[ev.dev].Trace) {
				heap.Push(&q, event{at: devices[ev.dev].Trace[st.pktIdx].T, dev: ev.dev, kind: evPacket})
			}
		case evDormancy:
			if ev.seq != st.seq {
				continue // canceled by newer traffic
			}
			st.machine.AdvanceTo(ev.at)
			if st.machine.State() == rrc.Idle {
				continue // timers got there first
			}
			rollWindow(ev.at)
			if admission.Grant(ev.at, windowSignals) {
				st.machine.FastDormancy(ev.at)
				signal(ev.at, 1)
			} else {
				st.denied++
				res.TotalDenied++
			}
		}
	}

	// Settle trailing tails and collect per-device accounting. Trailing
	// timer demotions are signaling too.
	end := horizon + prof.Tail() + time.Second
	for i, st := range states {
		demoBefore := st.machine.Demotions()
		st.machine.AdvanceTo(end)
		signal(end, st.machine.Demotions()-demoBefore)
		e := st.dataJ +
			st.machine.Residency(rrc.DCH).Seconds()*prof.T1MW/1000 +
			st.machine.Residency(rrc.FACH).Seconds()*prof.T2MW/1000 +
			float64(st.machine.Promotions())*prof.PromotionJ() +
			float64(st.machine.Demotions())*prof.DormancyJ()
		res.Devices = append(res.Devices, DeviceResult{
			Name:        devices[i].Name,
			EnergyJ:     e,
			Promotions:  st.machine.Promotions(),
			Demotions:   st.machine.Demotions(),
			Denied:      st.denied,
			IdleSeconds: st.machine.Residency(rrc.Idle).Seconds(),
		})
	}
	// Flush the final (possibly partial) accounting window.
	rollWindow(end)
	res.Windows = append(res.Windows, WindowCount{Start: windowStart, Signals: windowSignals})
	return res, nil
}
