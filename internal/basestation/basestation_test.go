package basestation

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func prof() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func sparseTrace(n int, gap time.Duration) trace.Trace {
	tr := make(trace.Trace, n)
	for i := range tr {
		tr[i] = trace.Packet{T: time.Duration(i) * gap, Dir: trace.In, Size: 100}
	}
	return tr
}

func TestSimulateValidates(t *testing.T) {
	if _, err := Simulate(power.Profile{}, nil, nil, time.Minute); err == nil {
		t.Fatal("invalid profile accepted")
	}
	bad := trace.Trace{{T: sec(2)}, {T: sec(1)}}
	if _, err := Simulate(prof(), []Device{{Name: "d", Trace: bad}}, nil, time.Minute); err == nil {
		t.Fatal("invalid device trace accepted")
	}
}

func TestEmptyCell(t *testing.T) {
	r, err := Simulate(prof(), nil, nil, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSignals != 0 || len(r.Devices) != 0 {
		t.Fatalf("empty cell result: %+v", r)
	}
}

func TestSingleDeviceStatusQuoSignaling(t *testing.T) {
	// 5 packets, 60 s apart, tail = 12 s: every gap demotes via timers and
	// every packet promotes. Signals = 5 promotions + 5 demotions.
	dev := Device{Name: "d1", Trace: sparseTrace(5, time.Minute)}
	r, err := Simulate(prof(), []Device{dev}, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	d := r.Devices[0]
	if d.Promotions != 5 || d.Demotions != 5 {
		t.Fatalf("promotions=%d demotions=%d, want 5/5", d.Promotions, d.Demotions)
	}
	if r.TotalSignals != 10 {
		t.Fatalf("TotalSignals = %d, want 10", r.TotalSignals)
	}
	if d.Denied != 0 {
		t.Fatalf("denied = %d under status quo", d.Denied)
	}
}

func TestFastDormancyIncreasesIdleTime(t *testing.T) {
	tr := sparseTrace(10, 30*time.Second)
	sq, err := Simulate(prof(), []Device{{Name: "sq", Trace: tr}}, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := Simulate(prof(), []Device{{Name: "fd", Trace: tr, Demote: &policy.FixedTail{Wait: time.Second}}},
		AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Devices[0].IdleSeconds <= sq.Devices[0].IdleSeconds {
		t.Fatalf("fast dormancy did not increase idle time: %v vs %v",
			fd.Devices[0].IdleSeconds, sq.Devices[0].IdleSeconds)
	}
	if fd.Devices[0].EnergyJ >= sq.Devices[0].EnergyJ {
		t.Fatalf("fast dormancy did not save energy: %v vs %v J",
			fd.Devices[0].EnergyJ, sq.Devices[0].EnergyJ)
	}
}

func TestDormancyCanceledByTraffic(t *testing.T) {
	// Packets 2 s apart with a 3 s dormancy wait: the timer is always
	// rescheduled before it fires; only the final one triggers.
	tr := sparseTrace(10, 2*time.Second)
	r, err := Simulate(prof(), []Device{{Name: "d", Trace: tr, Demote: &policy.FixedTail{Wait: sec(3)}}},
		AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Devices[0].Demotions; got != 1 {
		t.Fatalf("demotions = %d, want 1 (only the trailing dormancy)", got)
	}
}

func TestRateLimitDeniesUnderLoad(t *testing.T) {
	// Many devices all triggering dormancy constantly; a tight budget must
	// deny some requests, and always-grant must not.
	var devices []Device
	for i := 0; i < 8; i++ {
		devices = append(devices, Device{
			Name:   "d",
			Trace:  sparseTrace(20, 10*time.Second),
			Demote: &policy.FixedTail{Wait: time.Second},
		})
	}
	limited, err := Simulate(prof(), devices, RateLimit{MaxPerWindow: 5}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if limited.TotalDenied == 0 {
		t.Fatal("tight rate limit denied nothing")
	}
	open, err := Simulate(prof(), devices, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if open.TotalDenied != 0 {
		t.Fatal("always-grant denied requests")
	}
	if limited.PeakSignals() > open.PeakSignals() {
		t.Fatalf("rate limiting increased peak signaling: %d > %d",
			limited.PeakSignals(), open.PeakSignals())
	}
	// Denied dormancy leaves radios up longer: energy can only grow.
	if limited.TotalEnergyJ() < open.TotalEnergyJ()-1e-9 {
		t.Fatalf("denied dormancy reduced energy: %v < %v",
			limited.TotalEnergyJ(), open.TotalEnergyJ())
	}
}

func TestSignalingScalesWithDevices(t *testing.T) {
	mk := func(n int) int {
		var devices []Device
		for i := 0; i < n; i++ {
			devices = append(devices, Device{
				Name:   "d",
				Trace:  sparseTrace(10, time.Minute),
				Demote: &policy.FixedTail{Wait: time.Second},
			})
		}
		r, err := Simulate(prof(), devices, AlwaysGrant{}, time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		return r.TotalSignals
	}
	if s2, s8 := mk(2), mk(8); s8 != 4*s2 {
		t.Fatalf("signaling not linear in devices: 2->%d, 8->%d", s2, s8)
	}
}

func TestWindowsCoverTimeline(t *testing.T) {
	tr := sparseTrace(5, time.Minute)
	r, err := Simulate(prof(), []Device{{Name: "d", Trace: tr}}, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Windows) == 0 {
		t.Fatal("no accounting windows")
	}
	var total int
	for i, w := range r.Windows {
		if w.Start != time.Duration(i)*time.Minute {
			t.Fatalf("window %d starts at %v", i, w.Start)
		}
		total += w.Signals
	}
	if total != r.TotalSignals {
		t.Fatalf("window sum %d != total %d", total, r.TotalSignals)
	}
}

func TestMakeIdleFleet(t *testing.T) {
	// Integration: a small fleet of users running MakeIdle against the
	// cell; everything stays consistent and energy beats status quo.
	p := power.Verizon3G
	var withMI, statusQuo []Device
	for i := 0; i < 3; i++ {
		tr := workload.Generate(workload.Email(), int64(i+1), time.Hour)
		mi, err := policy.NewMakeIdle(p)
		if err != nil {
			t.Fatal(err)
		}
		withMI = append(withMI, Device{Name: "mi", Trace: tr, Demote: mi})
		statusQuo = append(statusQuo, Device{Name: "sq", Trace: tr})
	}
	a, err := Simulate(p, withMI, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p, statusQuo, AlwaysGrant{}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEnergyJ() >= b.TotalEnergyJ() {
		t.Fatalf("MakeIdle fleet used more energy: %v vs %v", a.TotalEnergyJ(), b.TotalEnergyJ())
	}
	if a.TotalSignals <= b.TotalSignals {
		t.Log("note: MakeIdle fleet signaling did not exceed status quo (workload dependent)")
	}
}
