package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/trace"
)

const hour = time.Hour

func TestAllAppsGenerateValidTraces(t *testing.T) {
	for _, app := range Apps() {
		tr := Generate(app, 42, hour)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid trace: %v", app.Name(), err)
		}
		if len(tr) == 0 {
			t.Errorf("%s: empty trace over an hour", app.Name())
		}
		if tr.Duration() > hour+time.Minute {
			t.Errorf("%s: trace overruns duration: %v", app.Name(), tr.Duration())
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, app := range Apps() {
		a := Generate(app, 7, 30*time.Minute)
		b := Generate(app, 7, 30*time.Minute)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same seed produced different traces", app.Name())
		}
		c := Generate(app, 8, 30*time.Minute)
		if reflect.DeepEqual(a, c) && len(a) > 0 {
			t.Errorf("%s: different seeds produced identical traces", app.Name())
		}
	}
}

func TestAppByName(t *testing.T) {
	a, ok := AppByName("Email")
	if !ok || a.Name() != "Email" {
		t.Fatalf("AppByName(Email) = %v %v", a, ok)
	}
	if _, ok := AppByName("Torrent"); ok {
		t.Fatal("unknown app found")
	}
}

func TestIMHeartbeatCadence(t *testing.T) {
	tr := Generate(IM(), 1, hour)
	// Heartbeats every 5-20 s -> between 180 and 720 intervals/hour, each
	// at least 2 packets.
	if len(tr) < 2*180 || len(tr) > 4*720*2 {
		t.Fatalf("IM packet count %d outside plausible heartbeat range", len(tr))
	}
	// Median gap must sit inside the heartbeat band (allowing the
	// request/response sub-second gap to pull it down).
	st := tr.Summarize(time.Second)
	if st.MaxGap > 25*time.Second {
		t.Fatalf("IM max gap %v exceeds heartbeat ceiling", st.MaxGap)
	}
}

func TestFinanceTicksRoughlyPerSecond(t *testing.T) {
	tr := Generate(Finance(), 2, 10*time.Minute)
	// ~600 ticks expected.
	if len(tr) < 400 || len(tr) > 900 {
		t.Fatalf("Finance packets = %d, want ~600", len(tr))
	}
}

func TestEmailPeriodicity(t *testing.T) {
	tr := Generate(Email(), 3, 2*hour)
	bursts := tr.Bursts(30 * time.Second)
	// Sync every ~5 min over 2 h -> ~24 wake-ups; follow-ups merge into
	// the same burst window, so expect 15..40.
	if len(bursts) < 15 || len(bursts) > 40 {
		t.Fatalf("Email bursts = %d, want ~24", len(bursts))
	}
}

func TestGameAdBarOncePerMinute(t *testing.T) {
	tr := Generate(Game(), 4, hour)
	bursts := tr.Bursts(20 * time.Second)
	if len(bursts) < 45 || len(bursts) > 75 {
		t.Fatalf("Game bursts = %d, want ~60", len(bursts))
	}
}

func TestSocialHasHeavyTailThinkTimes(t *testing.T) {
	tr := Generate(Social(), 5, 6*hour)
	if len(tr) == 0 {
		t.Fatal("empty social trace")
	}
	st := tr.Summarize(time.Second)
	if st.MaxGap < time.Minute {
		t.Fatalf("Social max gap %v suspiciously small for Pareto think times", st.MaxGap)
	}
}

func TestBurstShapeEmit(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	shape := BurstShape{ReqBytes: 100, RespBytes: 3000, MTU: 1400}
	tr, end := shape.Emit(r, nil, time.Second)
	if len(tr) != 4 { // 1 req + ceil(3000/1400)=3 resp
		t.Fatalf("burst has %d packets, want 4", len(tr))
	}
	if tr[0].Dir != trace.Out || tr[0].Size != 100 {
		t.Fatalf("first packet %+v", tr[0])
	}
	var respTotal int
	for _, p := range tr[1:] {
		if p.Dir != trace.In {
			t.Fatalf("response packet wrong direction: %+v", p)
		}
		respTotal += p.Size
	}
	if respTotal != 3000 {
		t.Fatalf("response bytes = %d", respTotal)
	}
	if end < tr[len(tr)-1].T {
		t.Fatal("end precedes last packet")
	}
}

func TestBurstShapeDefaults(t *testing.T) {
	var b BurstShape
	if b.mtu() != 1400 || b.meanGap() != 20*time.Millisecond {
		t.Fatalf("defaults: mtu=%d gap=%v", b.mtu(), b.meanGap())
	}
}

func TestBulkTransfer(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := Bulk(r, 0, 100_000, false, 8, 1400)
	if err := tr.Validate(); err != nil {
		t.Fatalf("bulk trace invalid: %v", err)
	}
	var down, up int
	for _, p := range tr {
		if p.Dir == trace.In {
			down += p.Size
		} else {
			up += p.Size
		}
	}
	if down != 100_000 {
		t.Fatalf("downlink bytes = %d", down)
	}
	if up == 0 {
		t.Fatal("bulk transfer produced no ACKs")
	}
	// At 8 Mbps, 100 kB should take ~0.1 s; allow jitter.
	if d := tr.Duration(); d < 50*time.Millisecond || d > 500*time.Millisecond {
		t.Fatalf("bulk duration = %v", d)
	}
}

func TestBulkUplinkDirection(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := Bulk(r, 0, 10_000, true, 1, 1400)
	if tr[0].Dir != trace.Out {
		t.Fatal("uplink bulk should start with Out packet")
	}
}

func TestBulkDegenerateArgs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	tr := Bulk(r, 0, 1000, false, 0, 0) // rate and mtu default
	if len(tr) == 0 {
		t.Fatal("degenerate bulk empty")
	}
}

func TestUserMixesValid(t *testing.T) {
	for _, u := range append(Verizon3GUsers(), VerizonLTEUsers()...) {
		tr := u.Generate(99, 2*hour)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", u.Name, err)
		}
		if len(tr) == 0 {
			t.Errorf("%s: empty", u.Name)
		}
	}
}

func TestUserMixMergesAllApps(t *testing.T) {
	u := User{Name: "test", Apps: []AppModel{IM(), Email()}}
	merged := u.Generate(1, hour)
	solo := Generate(IM(), 1, hour) // same seed as app index 0
	if len(merged) <= len(solo) {
		t.Fatalf("merged %d packets vs IM alone %d", len(merged), len(solo))
	}
}

func TestUserByName(t *testing.T) {
	users := Verizon3GUsers()
	u, ok := UserByName(users, "user3")
	if !ok || u.Name != "user3" {
		t.Fatalf("UserByName: %v %v", u, ok)
	}
	if _, ok := UserByName(users, "user99"); ok {
		t.Fatal("unknown user found")
	}
}

func TestUserString(t *testing.T) {
	u := Verizon3GUsers()[0]
	s := u.String()
	if s == "" || s == u.Name {
		t.Fatalf("String() should mention apps: %q", s)
	}
}

func TestUserDeterminism(t *testing.T) {
	u := Verizon3GUsers()[1]
	a := u.Generate(5, hour)
	b := u.Generate(5, hour)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("user generation not deterministic")
	}
}

func TestParetoBounds(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := pareto(r, 2, 1.5, 100)
		if v < 2 || v > 100 {
			t.Fatalf("pareto sample %v outside [2,100]", v)
		}
	}
}

func TestJittered(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	base := time.Second
	for i := 0; i < 1000; i++ {
		v := jittered(r, base, 0.25)
		if v < 750*time.Millisecond || v > 1250*time.Millisecond {
			t.Fatalf("jittered %v outside band", v)
		}
	}
	if jittered(r, base, 0) != base {
		t.Fatal("zero jitter should be identity")
	}
}

func TestPropertyGeneratorsProduceSortedNonNegative(t *testing.T) {
	apps := Apps()
	f := func(seed int64, appIdx uint8, minutes uint8) bool {
		app := apps[int(appIdx)%len(apps)]
		d := time.Duration(minutes%120+1) * time.Minute
		tr := Generate(app, seed, d)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBulkConservesBytes(t *testing.T) {
	f := func(seed int64, kb uint8) bool {
		r := rand.New(rand.NewSource(seed))
		total := (int(kb) + 1) * 1000
		tr := Bulk(r, 0, total, false, 8, 1400)
		var down int
		for _, p := range tr {
			if p.Dir == trace.In {
				down += p.Size
			}
		}
		return down == total && tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
