package workload

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// This file provides day-scale workload structure. The paper's user traces
// span two to five days each; traffic over such spans is not stationary —
// phones sleep at night, foreground apps run in sessions, background apps
// keep ticking. Diurnal wraps any AppModel with an activity mask so the
// generators above compose into realistic multi-day traces.

// Diurnal masks an underlying model with a daily activity cycle: during
// "awake" hours the model's full traffic passes; during "asleep" hours
// only a configurable fraction of wake-ups survive (background syncs still
// fire occasionally at night; foreground traffic does not).
type Diurnal struct {
	// Model is the underlying generator.
	Model AppModel
	// WakeHour and SleepHour bound the awake span within each 24 h day
	// (e.g. 8 and 23). WakeHour must be < SleepHour.
	WakeHour, SleepHour int
	// NightFraction is the probability a night-time burst survives
	// (0 = silent nights, 1 = no masking).
	NightFraction float64
	// JitterMinutes shifts each day's wake/sleep boundaries by up to this
	// many minutes either way, so days differ.
	JitterMinutes int
}

// Name implements AppModel.
func (d Diurnal) Name() string { return d.Model.Name() + "+diurnal" }

// Generate implements AppModel: it generates the underlying traffic for
// the full duration, then applies the day mask burst-by-burst (masking
// whole bursts, not individual packets, so surviving sessions stay intact).
func (d Diurnal) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	base := d.Model.Generate(r, duration)
	if len(base) == 0 {
		return base
	}
	wake, sleep := d.WakeHour, d.SleepHour
	if wake < 0 {
		wake = 0
	}
	if sleep > 24 {
		sleep = 24
	}
	if wake >= sleep {
		// Degenerate mask: pass everything through.
		return base
	}

	days := int(duration/(24*time.Hour)) + 1
	type span struct{ from, to time.Duration }
	awake := make([]span, days)
	for day := range awake {
		jitter := func() time.Duration {
			if d.JitterMinutes <= 0 {
				return 0
			}
			return time.Duration(r.Intn(2*d.JitterMinutes+1)-d.JitterMinutes) * time.Minute
		}
		start := time.Duration(day)*24*time.Hour + time.Duration(wake)*time.Hour + jitter()
		end := time.Duration(day)*24*time.Hour + time.Duration(sleep)*time.Hour + jitter()
		awake[day] = span{from: start, to: end}
	}
	isAwake := func(t time.Duration) bool {
		day := int(t / (24 * time.Hour))
		if day >= len(awake) {
			day = len(awake) - 1
		}
		s := awake[day]
		return t >= s.from && t < s.to
	}

	var out trace.Trace
	for _, b := range base.Bursts(time.Second) {
		if isAwake(b.Start) || r.Float64() < d.NightFraction {
			out = append(out, b.Packets...)
		}
	}
	out.Sort()
	return out
}

// DayUser wraps a User's apps in Diurnal masks appropriate to each
// category: background services (IM, Email, News, MicroBlog, Game) keep a
// small night-time trickle; foreground categories (Social, Finance) go
// silent at night.
func DayUser(u User) User {
	wrapped := make([]AppModel, len(u.Apps))
	for i, a := range u.Apps {
		night := 0.15
		switch a.Name() {
		case "Social", "Finance":
			night = 0
		}
		wrapped[i] = Diurnal{
			Model:         a,
			WakeHour:      8,
			SleepHour:     23,
			NightFraction: night,
			JitterMinutes: 45,
		}
	}
	return User{Name: u.Name + "-day", Apps: wrapped}
}
