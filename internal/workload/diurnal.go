package workload

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// This file provides day-scale workload structure. The paper's user traces
// span two to five days each; traffic over such spans is not stationary —
// phones sleep at night, foreground apps run in sessions, background apps
// keep ticking. Diurnal wraps any AppModel with an activity mask so the
// generators above compose into realistic multi-day traces.

// diurnalBurstGap segments the underlying traffic into the bursts the mask
// keeps or drops whole (masking sessions, not individual packets).
const diurnalBurstGap = time.Second

// Diurnal masks an underlying model with a daily activity cycle: during
// "awake" hours the model's full traffic passes; during "asleep" hours
// only a configurable fraction of wake-ups survive (background syncs still
// fire occasionally at night; foreground traffic does not).
type Diurnal struct {
	// Model is the underlying generator.
	Model AppModel
	// WakeHour and SleepHour bound the awake span within each 24 h day
	// (e.g. 8 and 23). WakeHour must be < SleepHour.
	WakeHour, SleepHour int
	// NightFraction is the probability a night-time burst survives
	// (0 = silent nights, 1 = no masking).
	NightFraction float64
	// JitterMinutes shifts each day's wake/sleep boundaries by up to this
	// many minutes either way, so days differ.
	JitterMinutes int
}

// Name implements AppModel.
func (d Diurnal) Name() string { return d.Model.Name() + "+diurnal" }

// Generate implements AppModel by draining Stream.
func (d Diurnal) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	return collect(d.Stream(r, duration))
}

// span is one day's awake window.
type span struct{ from, to time.Duration }

// Stream implements StreamModel: the day mask is applied burst-by-burst as
// the underlying stream flows, buffering only the burst in flight. The
// day-boundary jitters are drawn up front (one pair per simulated day);
// the per-burst night-survival draws interleave with the base stream in
// burst order.
func (d Diurnal) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	wake, sleep := d.WakeHour, d.SleepHour
	if wake < 0 {
		wake = 0
	}
	if sleep > 24 {
		sleep = 24
	}
	if wake >= sleep {
		// Degenerate mask: pass everything through.
		return streamModel(d.Model).Stream(r, duration)
	}

	days := int(duration/(24*time.Hour)) + 1
	awake := make([]span, days)
	for day := range awake {
		jitter := func() time.Duration {
			if d.JitterMinutes <= 0 {
				return 0
			}
			return time.Duration(r.Intn(2*d.JitterMinutes+1)-d.JitterMinutes) * time.Minute
		}
		start := time.Duration(day)*24*time.Hour + time.Duration(wake)*time.Hour + jitter()
		end := time.Duration(day)*24*time.Hour + time.Duration(sleep)*time.Hour + jitter()
		awake[day] = span{from: start, to: end}
	}
	return &diurnalSource{
		base:  streamModel(d.Model).Stream(r, duration),
		r:     r,
		awake: awake,
		night: d.NightFraction,
	}
}

// diurnalSource filters a base stream burst-by-burst through the day mask.
type diurnalSource struct {
	base  trace.Source
	r     *rand.Rand
	awake []span
	night float64

	burst  trace.Trace // scratch for the burst being assembled
	out    trace.Trace // kept burst being emitted
	outIdx int
	peek   trace.Packet // first packet of the next burst
	have   bool
	done   bool
	err    error
}

func (ds *diurnalSource) isAwake(t time.Duration) bool {
	day := int(t / (24 * time.Hour))
	if day >= len(ds.awake) {
		day = len(ds.awake) - 1
	}
	s := ds.awake[day]
	return t >= s.from && t < s.to
}

// Next implements trace.Source.
func (ds *diurnalSource) Next() (trace.Packet, bool, error) {
	for {
		if ds.outIdx < len(ds.out) {
			p := ds.out[ds.outIdx]
			ds.outIdx++
			return p, true, nil
		}
		if ds.err != nil {
			return trace.Packet{}, false, ds.err
		}
		if ds.done && !ds.have {
			return trace.Packet{}, false, nil
		}

		// Assemble the next burst: the buffered peek (if any) plus packets
		// until an inter-arrival beyond the burst gap.
		burst := ds.burst[:0]
		if ds.have {
			burst = append(burst, ds.peek)
			ds.have = false
		}
		for {
			p, ok, err := ds.base.Next()
			if err != nil {
				ds.err = err
				return trace.Packet{}, false, err
			}
			if !ok {
				ds.done = true
				break
			}
			if len(burst) > 0 && p.T-burst[len(burst)-1].T > diurnalBurstGap {
				ds.peek, ds.have = p, true
				break
			}
			burst = append(burst, p)
		}
		ds.burst = burst
		if len(burst) == 0 {
			continue // base exhausted with nothing buffered
		}
		if ds.isAwake(burst[0].T) || ds.r.Float64() < ds.night {
			ds.out, ds.outIdx = burst, 0
		}
	}
}

// DayUser wraps a User's apps in Diurnal masks appropriate to each
// category: background services (IM, Email, News, MicroBlog, Game) keep a
// small night-time trickle; foreground categories (Social, Finance) go
// silent at night.
func DayUser(u User) User {
	wrapped := make([]AppModel, len(u.Apps))
	for i, a := range u.Apps {
		night := 0.15
		switch a.Name() {
		case "Social", "Finance":
			night = 0
		}
		wrapped[i] = Diurnal{
			Model:         a,
			WakeHour:      8,
			SleepHour:     23,
			NightFraction: night,
			JitterMinutes: 45,
		}
	}
	return User{Name: u.Name + "-day", Apps: wrapped}
}
