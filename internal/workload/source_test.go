package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/trace"
)

// traceDigest compresses a packet sequence into a short stable hash.
func traceDigest(tr trace.Trace) string {
	h := sha256.New()
	for _, p := range tr {
		fmt.Fprintf(h, "%d|%d|%d\n", p.T, p.Dir, p.Size)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TestGeneratorGolden pins the exact packet streams of every generator at
// a fixed seed. Generate and Stream share one emission path, so the
// equivalence tests below cannot catch a rewrite that changes both sides
// together — these digests can. They were recorded from the streaming
// implementations of this refactor; the non-diurnal app and user digests
// also match the pre-refactor eager generators (the diurnal mask's RNG
// draw order intentionally changed: day jitters first, night draws
// interleaved per burst). If a deliberate generator change moves one,
// re-record it and say so in the commit.
func TestGeneratorGolden(t *testing.T) {
	golden := map[string]string{
		"News":      "c7cfe83b71f6a5e0",
		"IM":        "0119e4ccf33dd45b",
		"MicroBlog": "7d38a97add82e1cc",
		"Game":      "552a134e52fbfcfc",
		"Email":     "a3ca99739982a411",
		"Social":    "e746e28c1d291b85",
		"Finance":   "142b926cbf6e7c1c",
	}
	for _, app := range Apps() {
		if got := traceDigest(Generate(app, 1, 30*time.Minute)); got != golden[app.Name()] {
			t.Errorf("%s: digest %s, want %s", app.Name(), got, golden[app.Name()])
		}
	}
	if got := traceDigest(Verizon3GUsers()[1].Generate(1, 30*time.Minute)); got != "418cadfa987358fc" {
		t.Errorf("user2 mix: digest %s", got)
	}
	day := DayUser(Verizon3GUsers()[0])
	if got := traceDigest(day.Generate(1, 26*time.Hour)); got != "b8a75f3bd0a494b4" {
		t.Errorf("user1 diurnal: digest %s", got)
	}
}

// TestStreamMatchesGenerate pins the core streaming contract: for every
// model and seed, Collect(Stream) and Generate are packet-identical (the
// slice API is defined as the drained stream, and this guards against the
// two paths ever drifting apart again).
func TestStreamMatchesGenerate(t *testing.T) {
	for _, app := range Apps() {
		sm, ok := app.(StreamModel)
		if !ok {
			t.Fatalf("%s does not implement StreamModel", app.Name())
		}
		for _, seed := range []int64{1, 42, 9999} {
			want := Generate(app, seed, time.Hour)
			got, err := trace.Collect(Stream(sm, seed, time.Hour))
			if err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s seed %d: streamed packets differ from generated (%d vs %d)",
					app.Name(), seed, len(got), len(want))
			}
		}
	}
}

func TestUserStreamMatchesGenerate(t *testing.T) {
	for _, u := range append(Verizon3GUsers(), VerizonLTEUsers()...) {
		want := u.Generate(7, 2*time.Hour)
		got, err := trace.Collect(u.Stream(7, 2*time.Hour))
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streamed user traffic differs (%d vs %d packets)", u.Name, len(got), len(want))
		}
	}
}

func TestDayUserStreamMatchesGenerate(t *testing.T) {
	u := DayUser(Verizon3GUsers()[2])
	want := u.Generate(11, 30*time.Hour)
	got, err := trace.Collect(u.Stream(11, 30*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("diurnal user stream differs (%d vs %d packets)", len(got), len(want))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamIsSorted: sources must yield packets in non-decreasing
// timestamp order without any terminal sort.
func TestStreamIsSorted(t *testing.T) {
	for _, app := range Apps() {
		src := Stream(app.(StreamModel), 5, time.Hour)
		var last time.Duration
		n := 0
		for {
			p, ok, err := src.Next()
			if err != nil {
				t.Fatalf("%s: %v", app.Name(), err)
			}
			if !ok {
				break
			}
			if p.T < last {
				t.Fatalf("%s: packet %d at %v after %v", app.Name(), n, p.T, last)
			}
			last = p.T
			n++
		}
		if n == 0 {
			t.Fatalf("%s: empty stream over an hour", app.Name())
		}
	}
}

// TestStreamDeterminism: pulling the same stream twice yields identical
// packets.
func TestStreamDeterminism(t *testing.T) {
	u := Verizon3GUsers()[3]
	a, err := trace.Collect(u.Stream(13, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b, err := trace.Collect(u.Stream(13, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("user stream not deterministic")
	}
}

// TestSliceOnlyFallback: a custom AppModel without native Stream support
// still streams via the materializing adapter, identically to Generate.
func TestSliceOnlyFallback(t *testing.T) {
	m := Periodic{Label: "custom", Period: time.Minute, Shape: BurstShape{RespBytes: 500}}
	wrapped := sliceOnly{m}
	got, err := trace.Collect(Stream(wrapped, 3, 20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	want := Generate(m, 3, 20*time.Minute)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("slice-only adapter diverges from Generate")
	}
}
