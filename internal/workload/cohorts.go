package workload

import (
	"fmt"
	"time"

	"repro/internal/spec"
)

// This file makes synthetic cohorts a self-describing registry, the third
// experiment axis next to dormancy schemes and carrier profiles: a cohort
// spec names a registered user-mix family and overrides its knobs —
// population size, per-user duration, the diurnal mask, the per-user seed
// stride, and (for the homogeneous "mix" family) per-application weights.
// "study-3g(users=1000,duration=8h)" is a thousand diurnal users cycling
// the paper's Verizon 3G study mixes. The fleet turns a resolved CohortPlan
// into streamed replay jobs; the v4 job fingerprint hashes the canonical
// cohort encoding, so equal cohorts (however spelled) share cache entries.

// CohortPlan is a resolved cohort: everything the fleet needs to expand a
// population into replay jobs.
type CohortPlan struct {
	// Users is the population size; mixes cycle, so any size reuses the
	// family's app blends.
	Users int
	// Duration is the per-user trace length.
	Duration time.Duration
	// Diurnal wraps each user in the day/night activity mask.
	Diurnal bool
	// SeedStride multiplies the per-user seed index (user i draws seed
	// UserSeed(root, i*SeedStride)), so cohorts can be re-drawn against
	// disjoint RNG streams without changing the root seed.
	SeedStride int
	// Mixes are the user blends the population cycles through.
	Mixes []User
}

// mixBuilder is the domain payload of a cohort schema: it turns resolved
// params into the family's user mixes.
type mixBuilder func(p spec.Params) ([]User, error)

// CohortRegistry resolves cohort specs — "study-3g",
// "mix(im=2,email=1,users=500)", … — into CohortPlans.
type CohortRegistry struct {
	reg *spec.Registry
}

// NewCohortRegistry returns an empty cohort registry.
func NewCohortRegistry() *CohortRegistry {
	return &CohortRegistry{reg: spec.NewRegistry("cohort", func(s *spec.Schema) error {
		if _, ok := s.Meta.(mixBuilder); !ok {
			return fmt.Errorf("workload: cohort schema %q has no mix builder", s.Name)
		}
		return nil
	})}
}

// Register adds a cohort schema. params must include the shared population
// knobs (use CohortParams) plus any family-specific ones.
func (r *CohortRegistry) Register(name, summary string, params []spec.ParamSpec, build mixBuilder) error {
	return r.reg.Register(&spec.Schema{Name: name, Summary: summary, Params: params, Meta: build})
}

// Alias maps a legacy flat name to a cohort spec.
func (r *CohortRegistry) Alias(name string, s spec.Spec) error { return r.reg.Alias(name, s) }

// Resolve expands aliases and resolves a spec's parameters against the
// cohort schema.
func (r *CohortRegistry) Resolve(s spec.Spec) (*spec.Schema, spec.Params, error) {
	return r.reg.Resolve(s)
}

// Canonical returns the byte-stable encoding of a cohort spec (canonical
// name, every parameter in declaration order). The v4 job fingerprint
// hashes these.
func (r *CohortRegistry) Canonical(s spec.Spec) (string, error) { return r.reg.Canonical(s) }

// Label returns the short human-readable form: canonical name plus only
// the non-default parameters, e.g. "study-3g(users=1000)".
func (r *CohortRegistry) Label(s spec.Spec) (string, error) { return r.reg.Label(s) }

// Names lists every accepted cohort name — canonical and alias — sorted.
func (r *CohortRegistry) Names() []string { return r.reg.Names() }

// Aliases lists the registered alias names sorted.
func (r *CohortRegistry) Aliases() []string { return r.reg.Aliases() }

// Schemas lists the registered cohort schemas sorted by name.
func (r *CohortRegistry) Schemas() []*spec.Schema { return r.reg.Schemas() }

// Describe returns the serializable registry view — the payload of the
// GET /v1/workloads discovery endpoint.
func (r *CohortRegistry) Describe() []spec.SchemaInfo { return r.reg.Describe() }

// Usage renders the cohort catalog for CLI error messages.
func (r *CohortRegistry) Usage() string { return r.reg.Usage() }

// Plan resolves a cohort spec into a runnable plan.
func (r *CohortRegistry) Plan(s spec.Spec) (CohortPlan, error) {
	schema, params, err := r.Resolve(s)
	if err != nil {
		return CohortPlan{}, err
	}
	return buildPlan(schema, params)
}

// buildPlan assembles a CohortPlan from a resolved cohort schema.
func buildPlan(schema *spec.Schema, params spec.Params) (CohortPlan, error) {
	mixes, err := schema.Meta.(mixBuilder)(params)
	if err != nil {
		return CohortPlan{}, fmt.Errorf("cohort %q: %w", schema.Name, err)
	}
	return CohortPlan{
		Users:      params.Int("users"),
		Duration:   params.Duration("duration"),
		Diurnal:    params.Bool("diurnal"),
		SeedStride: params.Int("seedstride"),
		Mixes:      mixes,
	}, nil
}

// CohortResolution is one resolution pass over a cohort spec: the runnable
// plan plus both registry encodings, byte-identical to Canonical and
// Label.
type CohortResolution struct {
	Plan      CohortPlan
	Canonical string
	Label     string
}

// Resolution resolves a cohort spec once and returns the full bundle.
func (r *CohortRegistry) Resolution(s spec.Spec) (CohortResolution, error) {
	res, err := r.reg.Resolution(s)
	if err != nil {
		return CohortResolution{}, err
	}
	plan, err := buildPlan(res.Schema, res.Params)
	if err != nil {
		return CohortResolution{}, err
	}
	return CohortResolution{Plan: plan, Canonical: res.Canonical, Label: res.Label}, nil
}

// MaxCohortUsers bounds a single cohort's population (the fleet's
// O(users) job-slice allocation is the admission concern; this matches
// the job layer's historical cap).
const MaxCohortUsers = 1_000_000

// CohortParams returns the population knobs every cohort family shares.
// Declared first so canonical encodings lead with the population shape.
func CohortParams() []spec.ParamSpec {
	return []spec.ParamSpec{
		{Name: "users", Kind: spec.KindInt, Default: 100, Min: 1, Max: MaxCohortUsers,
			Help: "population size (mixes cycle through the family's blends)"},
		// Min is 1 ns, not something "sensible": the pre-grid job layer
		// accepted any positive duration, and the legacy flat payloads that
		// map onto this schema must keep resolving.
		{Name: "duration", Kind: spec.KindDuration, Default: 4 * time.Hour,
			Min: time.Nanosecond, Max: 30 * 24 * time.Hour,
			Help: "per-user trace length"},
		{Name: "diurnal", Kind: spec.KindBool, Default: true,
			Help: "wrap each user in the day/night activity mask"},
		{Name: "seedstride", Kind: spec.KindInt, Default: 1, Min: 1, Max: 1_000_000,
			Help: "per-user seed index multiplier (disjoint RNG streams per stride)"},
	}
}

// appParams returns one integer weight knob per §6.1 application category,
// in Fig. 9 order. A weight of n runs n concurrent copies of the category
// on every user of the cohort.
func appParams(defaults map[string]int) []spec.ParamSpec {
	out := make([]spec.ParamSpec, 0, len(Apps()))
	for _, a := range Apps() {
		name := canonicalAppParam(a.Name())
		out = append(out, spec.ParamSpec{
			Name: name, Kind: spec.KindInt, Default: defaults[name], Min: 0, Max: 8,
			Help: fmt.Sprintf("concurrent %s instances per user", a.Name()),
		})
	}
	return out
}

// canonicalAppParam lowercases an app category name into its knob name.
func canonicalAppParam(app string) string {
	switch app {
	case "News":
		return "news"
	case "IM":
		return "im"
	case "MicroBlog":
		return "microblog"
	case "Game":
		return "game"
	case "Email":
		return "email"
	case "Social":
		return "social"
	case "Finance":
		return "finance"
	}
	return app
}

// defaultCohorts holds the built-in cohort families; registration cannot
// fail, so errors panic (programming errors caught by any test).
var defaultCohorts = buildDefaultCohorts()

// Cohorts returns the registry of built-in cohort families: the two study
// cohorts (the 3G and LTE participant mixes of Figs. 10-12) and the
// homogeneous weighted "mix" family.
func Cohorts() *CohortRegistry { return defaultCohorts }

func buildDefaultCohorts() *CohortRegistry {
	r := NewCohortRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	fixed := func(users func() []User) mixBuilder {
		return func(spec.Params) ([]User, error) { return users(), nil }
	}
	must(r.Register("study-3g",
		"the six Verizon 3G study mixes (Figs. 10, 12a), cycled across the population",
		CohortParams(), fixed(Verizon3GUsers)))
	must(r.Register("study-lte",
		"the three Verizon LTE study mixes (Figs. 11, 12b), cycled across the population",
		CohortParams(), fixed(VerizonLTEUsers)))
	must(r.Register("mix",
		"homogeneous cohort: every user runs the same weighted blend of the §6.1 app categories",
		append(CohortParams(), appParams(map[string]int{"im": 1, "email": 1, "news": 1})...),
		func(p spec.Params) ([]User, error) {
			var apps []AppModel
			for _, a := range Apps() {
				for i := 0; i < p.Int(canonicalAppParam(a.Name())); i++ {
					apps = append(apps, a)
				}
			}
			if len(apps) == 0 {
				return nil, fmt.Errorf("every app weight is zero; give at least one app a weight")
			}
			return []User{{Name: "mix", Apps: apps}}, nil
		}))
	return r
}
