package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// TestCohortPlans: each built-in family resolves to the right mixes and
// population knobs.
func TestCohortPlans(t *testing.T) {
	r := Cohorts()

	plan, err := r.Plan(spec.Spec{Name: "study-3g"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Mixes) != len(Verizon3GUsers()) || plan.Users != 100 ||
		plan.Duration != 4*time.Hour || !plan.Diurnal || plan.SeedStride != 1 {
		t.Fatalf("study-3g default plan: %+v", plan)
	}

	plan, err = r.Plan(spec.Spec{Name: "study-lte", Params: map[string]any{
		"users": 7, "duration": "90m", "diurnal": false, "seedstride": 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Mixes) != len(VerizonLTEUsers()) || plan.Users != 7 ||
		plan.Duration != 90*time.Minute || plan.Diurnal || plan.SeedStride != 3 {
		t.Fatalf("study-lte plan: %+v", plan)
	}

	plan, err = r.Plan(spec.Spec{Name: "mix", Params: map[string]any{"im": 2, "social": 1, "news": 0, "email": 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Mixes) != 1 {
		t.Fatalf("mix should be homogeneous, got %d mixes", len(plan.Mixes))
	}
	names := make([]string, 0, len(plan.Mixes[0].Apps))
	for _, a := range plan.Mixes[0].Apps {
		names = append(names, a.Name())
	}
	if got := strings.Join(names, ","); got != "IM,IM,Social" {
		t.Fatalf("mix apps %q, want IM,IM,Social (Fig. 9 order, weight-expanded)", got)
	}
}

// TestCohortRejections: out-of-range knobs and degenerate mixes fail at
// resolution, before any fleet spins up.
func TestCohortRejections(t *testing.T) {
	r := Cohorts()
	bad := []spec.Spec{
		{Name: "commuters"},
		{Name: "study-3g", Params: map[string]any{"users": 0}},
		{Name: "study-3g", Params: map[string]any{"users": MaxCohortUsers + 1}},
		{Name: "study-3g", Params: map[string]any{"duration": "31d"}}, // bad syntax AND out of range
		{Name: "study-3g", Params: map[string]any{"duration": "0s"}},
		{Name: "study-3g", Params: map[string]any{"duration": "800h"}},
		{Name: "study-3g", Params: map[string]any{"im": 1}},                   // app weights only on mix
		{Name: "mix", Params: map[string]any{"im": 0, "email": 0, "news": 0}}, // all weights zero
		{Name: "mix", Params: map[string]any{"im": 99}},
	}
	for i, s := range bad {
		if _, err := r.Plan(s); err == nil {
			t.Errorf("spec %d (%+v) accepted", i, s)
		}
	}
}

// TestCohortCanonicalStability: omitted defaults, param order and value
// spellings encode identically; any knob change moves the encoding.
func TestCohortCanonicalStability(t *testing.T) {
	r := Cohorts()
	want, err := r.Canonical(spec.Spec{Name: "study-3g", Params: map[string]any{"users": 50}})
	if err != nil {
		t.Fatal(err)
	}
	same, err := r.Canonical(spec.Spec{Name: "study-3g", Params: map[string]any{
		"duration": "4h", "users": "50", "diurnal": true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if same != want {
		t.Fatalf("equivalent cohorts encode differently: %q vs %q", same, want)
	}
	for _, mutated := range []map[string]any{
		{"users": 51},
		{"users": 50, "duration": "5h"},
		{"users": 50, "diurnal": false},
		{"users": 50, "seedstride": 2},
	} {
		got, err := r.Canonical(spec.Spec{Name: "study-3g", Params: mutated})
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			t.Errorf("mutation %+v did not change the encoding", mutated)
		}
	}
}
