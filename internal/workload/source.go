package workload

import (
	"math/rand"
	"time"

	"repro/internal/trace"
)

// This file is the streaming side of the generators: every AppModel (and
// User mixes) can emit its traffic as a lazy trace.Source, synthesizing
// packets on demand from the seeded RNG instead of materializing a slice.
//
// The slice API is defined on top of the streams — each model's Generate
// is exactly Collect(Stream) — so materialized and streamed replays of the
// same seed see the same packets by construction, which is the determinism
// invariant the fleet's equivalence tests enforce.
//
// # How streaming preserves the sorted order
//
// The generators think in wake-ups: a periodic poll, a heartbeat, one
// interactive exchange. Each wake-up emits a bounded batch of packets
// whose timestamps may run past the next wake-up (a follow-up fetch, a
// straggling response), which is why the slice path ends with a stable
// sort. The streaming path reproduces that sort exactly with a bounded
// reorder buffer: batches carry a floor — a lower bound on every packet
// any future batch can emit — and a packet leaves the buffer only once
// its timestamp is at or below the floor, ties broken by emission order.
// Sorting by (timestamp, emission order) is precisely what a stable sort
// of the concatenated emissions computes, so the two paths agree packet
// for packet. The buffer holds only the packets of wake-ups still
// overlapping the floor — O(burst), never O(duration).

// StreamModel is an AppModel that can emit its traffic lazily. All models
// in this package implement it; Generate is Collect(Stream) for each.
type StreamModel interface {
	AppModel
	// Stream returns a source yielding the same packets Generate returns
	// for the same RNG, in the same order, without materializing them.
	Stream(r *rand.Rand, duration time.Duration) trace.Source
}

// Stream runs a model's lazy emission with a fresh deterministic RNG for
// the seed — the streaming counterpart of Generate. Models that do not
// implement StreamModel are generated eagerly and streamed from the slice.
func Stream(m AppModel, seed int64, duration time.Duration) trace.Source {
	return streamModel(m).Stream(rand.New(rand.NewSource(seed)), duration)
}

// collect materializes a generator stream. Generator sources never error
// (they synthesize valid packets by construction), so this is total.
func collect(src trace.Source) trace.Trace {
	tr, err := trace.Collect(src)
	if err != nil {
		panic("workload: generator source failed: " + err.Error())
	}
	return tr
}

// stepFunc emits one wake-up's packets by appending to buf (which the
// caller recycles) and returns the extended batch, a floor no future
// emission will precede, and ok=false once the model is exhausted (the
// other returns are then ignored).
type stepFunc func(buf trace.Trace) (batch trace.Trace, floor time.Duration, ok bool)

// stepSource adapts a stepFunc into a sorted trace.Source via the reorder
// buffer described in the file comment.
type stepSource struct {
	step    stepFunc
	buf     trace.Trace
	pending pendingHeap
	floor   time.Duration
	drained bool
	seq     uint64
}

func newStepSource(step stepFunc) *stepSource { return &stepSource{step: step} }

// Next implements trace.Source.
func (s *stepSource) Next() (trace.Packet, bool, error) {
	for {
		if len(s.pending) > 0 && (s.drained || s.pending[0].p.T <= s.floor) {
			return s.pending.pop(), true, nil
		}
		if s.drained {
			return trace.Packet{}, false, nil
		}
		batch, floor, ok := s.step(s.buf[:0])
		if !ok {
			s.drained = true
			continue
		}
		s.buf = batch
		for _, p := range batch {
			s.pending.push(pendingPkt{p: p, seq: s.seq})
			s.seq++
		}
		s.floor = floor
	}
}

// pendingPkt orders buffered packets by (timestamp, emission sequence).
type pendingPkt struct {
	p   trace.Packet
	seq uint64
}

func (a pendingPkt) less(b pendingPkt) bool {
	if a.p.T != b.p.T {
		return a.p.T < b.p.T
	}
	return a.seq < b.seq
}

// pendingHeap is a plain binary min-heap over pendingPkt. Hand-rolled
// (rather than container/heap) so push/pop stay allocation-free on the
// replay hot path.
type pendingHeap []pendingPkt

func (h *pendingHeap) push(x pendingPkt) {
	*h = append(*h, x)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h)[i].less((*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *pendingHeap) pop() trace.Packet {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && old[l].less(old[min]) {
			min = l
		}
		if r < n && old[r].less(old[min]) {
			min = r
		}
		if min == i {
			break
		}
		old[i], old[min] = old[min], old[i]
		i = min
	}
	return top.p
}

// Stream implements StreamModel: one poll exchange per step.
func (p Periodic) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	t := jittered(r, p.Period, p.Jitter)
	return newStepSource(func(buf trace.Trace) (trace.Trace, time.Duration, bool) {
		if t >= duration {
			return nil, 0, false
		}
		var end time.Duration
		buf, end = p.Shape.Emit(r, buf, t)
		if p.ExtraBurstP > 0 && r.Float64() < p.ExtraBurstP {
			follow := end + secsDur(0.2+0.6*r.Float64())
			buf, _ = p.Shape.Emit(r, buf, follow)
		}
		t += jittered(r, p.Period, p.Jitter)
		return buf, t, true
	})
}

// Stream implements StreamModel: one heartbeat interval per step.
func (h Heartbeat) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	period := func() time.Duration {
		span := h.MaxPeriod - h.MinPeriod
		if span <= 0 {
			return h.MinPeriod
		}
		return h.MinPeriod + time.Duration(r.Int63n(int64(span)))
	}
	t := period()
	return newStepSource(func(buf trace.Trace) (trace.Trace, time.Duration, bool) {
		if t >= duration {
			return nil, 0, false
		}
		buf = append(buf, trace.Packet{T: t, Dir: trace.Out, Size: 78})
		buf = append(buf, trace.Packet{T: t + secsDur(0.05+0.1*r.Float64()), Dir: trace.In, Size: 66})
		if h.MessageP > 0 && r.Float64() < h.MessageP {
			buf, _ = h.Message.Emit(r, buf, t+secsDur(1+2*r.Float64()))
		}
		t += period()
		return buf, t, true
	})
}

// Stream implements StreamModel: one exchange per step, sessions tracked
// across steps.
func (s Interactive) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	actions := s.ActionsMax
	if actions < 1 {
		actions = 1
	}
	think := func() time.Duration {
		return secsDur(pareto(r, s.ThinkMin.Seconds(), s.ThinkAlpha, s.ThinkCap.Seconds()))
	}
	t := think()
	remaining := 0 // exchanges left in the current session; 0 = between sessions
	return newStepSource(func(buf trace.Trace) (trace.Trace, time.Duration, bool) {
		if t >= duration {
			return nil, 0, false
		}
		if remaining == 0 {
			remaining = 1 + r.Intn(actions)
		}
		var end time.Duration
		buf, end = s.Shape.Emit(r, buf, t)
		// Short intra-session think time: 2-15 s.
		t = end + secsDur(2+13*r.Float64())
		remaining--
		if remaining == 0 || t >= duration {
			remaining = 0
			t += think()
		}
		return buf, t, true
	})
}

// Stream implements StreamModel: one tick per step.
func (tk Ticker) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	t := jittered(r, tk.Period, tk.Jitter)
	return newStepSource(func(buf trace.Trace) (trace.Trace, time.Duration, bool) {
		if t >= duration {
			return nil, 0, false
		}
		buf = append(buf, trace.Packet{T: t, Dir: trace.In, Size: tk.Size})
		if r.Intn(10) == 0 {
			buf = append(buf, trace.Packet{T: t + 30*time.Millisecond, Dir: trace.Out, Size: 120})
		}
		t += jittered(r, tk.Period, tk.Jitter)
		return buf, t, true
	})
}

// mergeSource is a k-way stable merge over sorted sources: it always
// yields the earliest head packet, ties broken by source index — exactly
// the order trace.Merge gives the concatenated materialized traces.
type mergeSource struct {
	srcs  []trace.Source
	heads []trace.Packet
	have  []bool
	done  []bool
}

func newMergeSource(srcs []trace.Source) *mergeSource {
	return &mergeSource{
		srcs:  srcs,
		heads: make([]trace.Packet, len(srcs)),
		have:  make([]bool, len(srcs)),
		done:  make([]bool, len(srcs)),
	}
}

// Next implements trace.Source.
func (m *mergeSource) Next() (trace.Packet, bool, error) {
	best := -1
	for i := range m.srcs {
		if !m.have[i] && !m.done[i] {
			p, ok, err := m.srcs[i].Next()
			if err != nil {
				return trace.Packet{}, false, err
			}
			if !ok {
				m.done[i] = true
				continue
			}
			m.heads[i], m.have[i] = p, true
		}
		if m.have[i] && (best < 0 || m.heads[i].T < m.heads[best].T) {
			best = i
		}
	}
	if best < 0 {
		return trace.Packet{}, false, nil
	}
	m.have[best] = false
	return m.heads[best], true, nil
}

// Stream produces the user's merged traffic lazily: each app gets the same
// independent seed-derived RNG as Generate, and the per-app streams merge
// in time order with ties broken by app index — packet for packet the
// trace Generate materializes.
func (u User) Stream(seed int64, duration time.Duration) trace.Source {
	srcs := make([]trace.Source, 0, len(u.Apps))
	for i, a := range u.Apps {
		r := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
		srcs = append(srcs, streamModel(a).Stream(r, duration))
	}
	return newMergeSource(srcs)
}

// streamModel asserts that a model supports lazy emission. Every model in
// this package does; a custom slice-only AppModel is wrapped to generate
// eagerly and stream the slice (correct, but not O(1) in memory).
func streamModel(a AppModel) StreamModel {
	if sm, ok := a.(StreamModel); ok {
		return sm
	}
	return sliceOnly{a}
}

// sliceOnly adapts a Generate-only AppModel to StreamModel by
// materializing.
type sliceOnly struct{ AppModel }

func (s sliceOnly) Stream(r *rand.Rand, duration time.Duration) trace.Source {
	return s.Generate(r, duration).Source()
}
