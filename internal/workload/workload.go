// Package workload generates synthetic packet traces that stand in for the
// paper's real user captures (tcpdump on 9 users over 28 days, plus 2-hour
// per-application traces; §6.1).
//
// The substitution is documented in DESIGN.md: the algorithms under study
// see only packet timestamps, directions and sizes, so what matters is the
// statistical structure of the traffic — heartbeat cadence, poll periods,
// burst shapes and heavy-tailed think times — which these models produce
// explicitly. Every generator is driven by a caller-supplied seed and is
// fully deterministic.
//
// Building blocks (periodic polls, Poisson sessions, Pareto think times,
// request/response bursts, TCP-like bulk transfers) combine into the paper's
// seven application categories and into multi-application per-user mixes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/trace"
)

// AppModel generates the traffic of one application category.
type AppModel interface {
	// Name identifies the model (matches the paper's Fig. 9 x-axis).
	Name() string
	// Generate produces a trace covering [0, duration] using r as the
	// sole source of randomness.
	Generate(r *rand.Rand, duration time.Duration) trace.Trace
}

// secsDur converts float seconds to a Duration.
func secsDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// jittered returns base scaled by a uniform factor in [1-j, 1+j].
func jittered(r *rand.Rand, base time.Duration, j float64) time.Duration {
	if j <= 0 {
		return base
	}
	f := 1 + j*(2*r.Float64()-1)
	return time.Duration(float64(base) * f)
}

// pareto samples a Pareto(xm, alpha) value, capped at cap to keep day-scale
// traces from degenerating into one infinite gap.
func pareto(r *rand.Rand, xm float64, alpha float64, cap float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	v := xm / math.Pow(1-u, 1/alpha)
	if v > cap {
		v = cap
	}
	return v
}

// BurstShape describes one request/response exchange: a small uplink
// request followed by a downlink payload split into MTU-sized packets,
// with millisecond-scale intra-burst gaps.
type BurstShape struct {
	// ReqBytes is the uplink request size (0 suppresses the request).
	ReqBytes int
	// RespBytes is the total downlink payload.
	RespBytes int
	// RespJitter scales RespBytes by up to this fraction either way.
	RespJitter float64
	// MTU bounds individual packet sizes (default 1400 if zero).
	MTU int
	// MeanGap is the mean intra-burst inter-packet gap (default 20 ms).
	MeanGap time.Duration
}

func (b BurstShape) mtu() int {
	if b.MTU <= 0 {
		return 1400
	}
	return b.MTU
}

func (b BurstShape) meanGap() time.Duration {
	if b.MeanGap <= 0 {
		return 20 * time.Millisecond
	}
	return b.MeanGap
}

// Emit appends the burst's packets starting at t and returns the extended
// trace plus the time just after the last packet.
func (b BurstShape) Emit(r *rand.Rand, tr trace.Trace, t time.Duration) (trace.Trace, time.Duration) {
	gap := func() time.Duration {
		// Exponential around the mean, floored at 1 ms.
		g := time.Duration(r.ExpFloat64() * float64(b.meanGap()))
		if g < time.Millisecond {
			g = time.Millisecond
		}
		return g
	}
	if b.ReqBytes > 0 {
		tr = append(tr, trace.Packet{T: t, Dir: trace.Out, Size: b.ReqBytes})
		t += gap()
	}
	resp := b.RespBytes
	if b.RespJitter > 0 {
		f := 1 + b.RespJitter*(2*r.Float64()-1)
		resp = int(float64(resp) * f)
	}
	for resp > 0 {
		sz := b.mtu()
		if resp < sz {
			sz = resp
		}
		tr = append(tr, trace.Packet{T: t, Dir: trace.In, Size: sz})
		resp -= sz
		if resp > 0 {
			t += gap()
		}
	}
	return tr, t
}

// Bulk emits a TCP-like bulk transfer of total bytes in the given direction
// starting at t: MTU-sized data packets at the link rate with periodic
// reverse-direction ACKs. Used by the Fig. 8 energy-model validation.
func Bulk(r *rand.Rand, t time.Duration, total int, uplink bool, rateMbps float64, mtu int) trace.Trace {
	if mtu <= 0 {
		mtu = 1400
	}
	if rateMbps <= 0 {
		rateMbps = 1
	}
	perPacket := secsDur(float64(mtu) * 8 / (rateMbps * 1e6))
	dir, ack := trace.In, trace.Out
	if uplink {
		dir, ack = trace.Out, trace.In
	}
	var tr trace.Trace
	sent := 0
	i := 0
	for sent < total {
		sz := mtu
		if total-sent < sz {
			sz = total - sent
		}
		tr = append(tr, trace.Packet{T: t, Dir: dir, Size: sz})
		sent += sz
		i++
		if i%2 == 0 { // delayed ACK every other segment
			tr = append(tr, trace.Packet{T: t + perPacket/2, Dir: ack, Size: 52})
		}
		t += jittered(r, perPacket, 0.1)
	}
	tr.Sort()
	return tr
}

// Periodic models an application that wakes up on a (jittered) period and
// performs one request/response exchange — the shape of the paper's News,
// Micro-blog, Email and ad-bar categories.
type Periodic struct {
	Label  string
	Period time.Duration
	Jitter float64 // fraction of Period
	Shape  BurstShape
	// ExtraBurstP is the probability that a wake-up performs a second
	// follow-up exchange (content fetch after a check).
	ExtraBurstP float64
}

// Name implements AppModel.
func (p Periodic) Name() string { return p.Label }

// Generate implements AppModel by draining Stream: the slice and streaming
// paths share one emission sequence.
func (p Periodic) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	return collect(p.Stream(r, duration))
}

// Heartbeat models keep-alive traffic: a tiny uplink packet answered by a
// tiny downlink packet on a uniformly random period in [MinPeriod,
// MaxPeriod] — the paper's IM category ("every 5 to 20 seconds").
type Heartbeat struct {
	Label                string
	MinPeriod, MaxPeriod time.Duration
	// MessageP is the probability that a heartbeat interval also carries
	// a real message exchange.
	MessageP float64
	Message  BurstShape
}

// Name implements AppModel.
func (h Heartbeat) Name() string { return h.Label }

// Generate implements AppModel by draining Stream.
func (h Heartbeat) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	return collect(h.Stream(r, duration))
}

// Interactive models foreground use: sessions arrive after Pareto think
// times; within a session the user performs several exchanges separated by
// short think times — the paper's Social category, and the backbone of the
// per-user mixes.
type Interactive struct {
	Label string
	// ThinkMin is the minimum think time between sessions (Pareto xm).
	ThinkMin time.Duration
	// ThinkAlpha is the Pareto shape (smaller = heavier tail).
	ThinkAlpha float64
	// ThinkCap bounds a single think time.
	ThinkCap time.Duration
	// ActionsMax is the maximum exchanges per session (>= 1).
	ActionsMax int
	Shape      BurstShape
}

// Name implements AppModel.
func (s Interactive) Name() string { return s.Label }

// Generate implements AppModel by draining Stream.
func (s Interactive) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	return collect(s.Stream(r, duration))
}

// Ticker models high-frequency foreground updates (the paper's Finance
// category: "updates roughly once per second").
type Ticker struct {
	Label  string
	Period time.Duration
	Jitter float64
	Size   int // downlink tick size
}

// Name implements AppModel.
func (tk Ticker) Name() string { return tk.Label }

// Generate implements AppModel by draining Stream.
func (tk Ticker) Generate(r *rand.Rand, duration time.Duration) trace.Trace {
	return collect(tk.Stream(r, duration))
}

// The seven application categories of §6.1. Parameters follow the paper's
// descriptions (IM heartbeats every 5-20 s, email sync every 5 min, ad bar
// about once a minute, finance about once a second, ...).

// News returns the news-reader model: breaking-news polls every few minutes
// with a follow-up story fetch on some polls.
func News() AppModel {
	return Periodic{
		Label:  "News",
		Period: 3 * time.Minute,
		Jitter: 0.3,
		Shape:  BurstShape{ReqBytes: 420, RespBytes: 6_000, RespJitter: 0.5},
		// About a third of checks find fresh content and fetch it.
		ExtraBurstP: 0.35,
	}
}

// IM returns the instant-messaging model: 5-20 s heartbeats with occasional
// message exchanges.
func IM() AppModel {
	return Heartbeat{
		Label:     "IM",
		MinPeriod: 5 * time.Second,
		MaxPeriod: 20 * time.Second,
		MessageP:  0.05,
		Message:   BurstShape{ReqBytes: 300, RespBytes: 800, RespJitter: 0.5},
	}
}

// MicroBlog returns the micro-blog model: tweet-timeline fetches roughly
// every 1-2 minutes without user input.
func MicroBlog() AppModel {
	return Periodic{
		Label:       "MicroBlog",
		Period:      90 * time.Second,
		Jitter:      0.4,
		Shape:       BurstShape{ReqBytes: 500, RespBytes: 12_000, RespJitter: 0.6},
		ExtraBurstP: 0.15,
	}
}

// Game returns the game-with-ad-bar model: the game runs offline but its
// advertisement bar refreshes about once a minute.
func Game() AppModel {
	return Periodic{
		Label:  "Game",
		Period: time.Minute,
		Jitter: 0.15,
		Shape:  BurstShape{ReqBytes: 350, RespBytes: 2_500, RespJitter: 0.4},
	}
}

// Email returns the email model: a background sync against the server every
// five minutes, sometimes pulling message bodies.
func Email() AppModel {
	return Periodic{
		Label:       "Email",
		Period:      5 * time.Minute,
		Jitter:      0.1,
		Shape:       BurstShape{ReqBytes: 600, RespBytes: 4_000, RespJitter: 1.0},
		ExtraBurstP: 0.25,
	}
}

// Social returns the social-network model: foreground browsing sessions
// (feed reads, picture views, comment posts) separated by heavy-tailed
// think times. The paper used foreground traffic for this category.
func Social() AppModel {
	return Interactive{
		Label:      "Social",
		ThinkMin:   30 * time.Second,
		ThinkAlpha: 1.2,
		ThinkCap:   20 * time.Minute,
		ActionsMax: 8,
		Shape:      BurstShape{ReqBytes: 700, RespBytes: 30_000, RespJitter: 0.8},
	}
}

// Finance returns the stock-ticker model: roughly one downlink update per
// second while foregrounded.
func Finance() AppModel {
	return Ticker{
		Label:  "Finance",
		Period: time.Second,
		Jitter: 0.2,
		Size:   450,
	}
}

// Apps returns the seven §6.1 categories in the order of Fig. 9.
func Apps() []AppModel {
	return []AppModel{News(), IM(), MicroBlog(), Game(), Email(), Social(), Finance()}
}

// AppByName returns the named category model.
func AppByName(name string) (AppModel, bool) {
	for _, a := range Apps() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Generate runs a model with a fresh deterministic RNG for the seed.
func Generate(m AppModel, seed int64, duration time.Duration) trace.Trace {
	return m.Generate(rand.New(rand.NewSource(seed)), duration)
}

// User describes one synthetic study participant: a named mix of
// application models that run concurrently.
type User struct {
	Name string
	Apps []AppModel
}

// Generate produces the user's merged trace: each app gets an independent
// RNG derived from the user seed, and the per-app traces are merged in time
// order, mirroring several apps running on one phone. It drains Stream, so
// materialized and streamed user traffic agree packet for packet.
func (u User) Generate(seed int64, duration time.Duration) trace.Trace {
	return collect(u.Stream(seed, duration))
}

// Verizon3GUsers returns the six synthetic users standing in for the
// paper's Verizon 3G participants (Figs. 10 and 12a). The mixes differ in
// which backgrounds run and how chatty the foreground is, producing the
// user-to-user spread the paper's figures show.
func Verizon3GUsers() []User {
	return []User{
		{Name: "user1", Apps: []AppModel{IM(), Email(), News()}},
		{Name: "user2", Apps: []AppModel{Email(), MicroBlog(), Social()}},
		{Name: "user3", Apps: []AppModel{IM(), Game(), Email()}},
		{Name: "user4", Apps: []AppModel{News(), MicroBlog(), Email(), Social()}},
		{Name: "user5", Apps: []AppModel{IM(), Social()}},
		{Name: "user6", Apps: []AppModel{Game(), Email(), News(), IM()}},
	}
}

// VerizonLTEUsers returns the three synthetic users standing in for the
// paper's Verizon LTE participants (Figs. 11 and 12b).
func VerizonLTEUsers() []User {
	return []User{
		{Name: "user1", Apps: []AppModel{IM(), Email(), MicroBlog()}},
		{Name: "user2", Apps: []AppModel{Social(), News(), Email()}},
		{Name: "user3", Apps: []AppModel{Game(), IM(), Social(), Email()}},
	}
}

// UserByName finds a user in a slice by name.
func UserByName(users []User, name string) (User, bool) {
	for _, u := range users {
		if u.Name == name {
			return u, true
		}
	}
	return User{}, false
}

// String describes the user mix.
func (u User) String() string {
	names := make([]string, len(u.Apps))
	for i, a := range u.Apps {
		names[i] = a.Name()
	}
	return fmt.Sprintf("%s%v", u.Name, names)
}
