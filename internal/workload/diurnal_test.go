package workload

import (
	"testing"
	"time"

	"repro/internal/trace"
)

func hourOf(t time.Duration) int {
	return int(t/time.Hour) % 24
}

func TestDiurnalMasksNights(t *testing.T) {
	d := Diurnal{Model: IM(), WakeHour: 8, SleepHour: 22, NightFraction: 0}
	tr := Generate(d, 1, 48*time.Hour)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty diurnal trace")
	}
	for _, p := range tr {
		h := hourOf(p.T)
		if h < 8 || h >= 22 {
			t.Fatalf("packet at hour %d despite silent nights (t=%v)", h, p.T)
		}
	}
}

func TestDiurnalNightTrickle(t *testing.T) {
	d := Diurnal{Model: IM(), WakeHour: 8, SleepHour: 22, NightFraction: 0.2}
	tr := Generate(d, 2, 48*time.Hour)
	night := 0
	for _, p := range tr {
		h := hourOf(p.T)
		if h < 8 || h >= 22 {
			night++
		}
	}
	if night == 0 {
		t.Fatal("NightFraction 0.2 produced no night traffic over 2 days")
	}
	// But nights must be much quieter than days.
	if night*3 > len(tr) {
		t.Fatalf("night traffic %d of %d packets is not a trickle", night, len(tr))
	}
}

func TestDiurnalDegenerateMaskPassesThrough(t *testing.T) {
	d := Diurnal{Model: Game(), WakeHour: 12, SleepHour: 12}
	masked := Generate(d, 3, 6*time.Hour)
	raw := Generate(Game(), 3, 6*time.Hour)
	if len(masked) != len(raw) {
		t.Fatalf("degenerate mask altered trace: %d vs %d", len(masked), len(raw))
	}
}

func TestDiurnalName(t *testing.T) {
	d := Diurnal{Model: Email()}
	if d.Name() != "Email+diurnal" {
		t.Fatalf("name %q", d.Name())
	}
}

func TestDiurnalReducesVolume(t *testing.T) {
	raw := Generate(IM(), 4, 24*time.Hour)
	masked := Generate(Diurnal{Model: IM(), WakeHour: 9, SleepHour: 21, NightFraction: 0.1}, 4, 24*time.Hour)
	if len(masked) >= len(raw) {
		t.Fatalf("mask did not reduce volume: %d vs %d", len(masked), len(raw))
	}
}

func TestDayUser(t *testing.T) {
	u := DayUser(User{Name: "u", Apps: []AppModel{IM(), Social()}})
	if u.Name != "u-day" || len(u.Apps) != 2 {
		t.Fatalf("DayUser: %+v", u)
	}
	tr := u.Generate(5, 24*time.Hour)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Day hours must carry most of the traffic.
	day := 0
	for _, p := range tr {
		if h := hourOf(p.T); h >= 9 && h < 22 {
			day++
		}
	}
	if day*2 < len(tr) {
		t.Fatalf("less than half the traffic in waking hours: %d of %d", day, len(tr))
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	d := Diurnal{Model: Email(), WakeHour: 8, SleepHour: 23, NightFraction: 0.2, JitterMinutes: 30}
	a := Generate(d, 9, 36*time.Hour)
	b := Generate(d, 9, 36*time.Hour)
	if len(a) != len(b) {
		t.Fatal("diurnal generation not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("diurnal packets differ across identical runs")
		}
	}
}

func TestConcatComposesDays(t *testing.T) {
	day1 := Generate(Email(), 1, 2*time.Hour)
	day2 := Generate(Email(), 2, 2*time.Hour)
	joined := trace.Concat(8*time.Hour, day1, day2)
	if err := joined.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(joined) != len(day1)+len(day2) {
		t.Fatalf("Concat lost packets: %d vs %d+%d", len(joined), len(day1), len(day2))
	}
	// The night gap must exist between the segments.
	gapSeen := false
	for _, g := range joined.InterArrivals() {
		if g >= 8*time.Hour {
			gapSeen = true
		}
	}
	if !gapSeen {
		t.Fatal("no 8h gap between concatenated days")
	}
}
