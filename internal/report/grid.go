package report

import (
	"fmt"

	"repro/internal/fleet"
)

// This file is the one serializable/tabular view of a sweep grid — the
// cross product of scheme × profile × cohort axes, one fleet summary per
// cell. The HTTP service renders grid job results through it, rrcsim's
// multi-axis fleet mode renders through it, and the grid experiment
// renders through it, so the three surfaces cannot drift apart.

// GridCell couples one cell's axis labels with its single-scheme summary.
type GridCell struct {
	Scheme  string
	Profile string
	Cohort  string
	Summary *fleet.Summary
}

// GridCellStats is the serializable view of one grid cell.
type GridCellStats struct {
	Scheme  string `json:"scheme"`
	Profile string `json:"profile"`
	Cohort  string `json:"cohort"`
	// Fingerprint is the cell's content-addressed identity: the key the
	// durable store files it under and GET /v1/cells/{fingerprint}
	// serves it by. Empty on surfaces that render grids without cache
	// identities (the CLI's ad-hoc sweeps).
	Fingerprint string       `json:"fingerprint,omitempty"`
	Summary     SummaryStats `json:"summary"`
}

// GridStats is the serializable view of a whole grid, cells in execution
// order (cohort-major, then profile, then scheme).
type GridStats struct {
	Cells []GridCellStats `json:"cells"`
}

// GridTable renders the grid as a report table, one row per cell in
// execution order, flattening each cell's single-scheme aggregate into
// the same columns SummaryTable uses.
func GridTable(cells []GridCell) *Table {
	t := NewTable("grid summary",
		"scheme", "profile", "cohort", "users", "energy_mean_j", "energy_std_j",
		"savings_pct_mean", "switch_ratio_mean", "promotions_mean", "delay_p50_s", "delay_p95_s")
	for _, c := range cells {
		a := c.Summary.Schemes[c.Scheme]
		if a == nil {
			// A cell whose summary lost its scheme aggregate cannot render a
			// row; make the hole visible instead of panicking.
			t.AddRowf(c.Scheme, c.Profile, c.Cohort, fmt.Sprintf("missing scheme %q", c.Scheme),
				"", "", "", "", "", "", "")
			continue
		}
		t.AddRowf(c.Scheme, c.Profile, c.Cohort, a.Energy.N, a.Energy.Mean, a.Energy.Std(),
			a.SavingsPct.Mean, a.SwitchRatio.Mean, a.Promotions.Mean,
			a.DelayHist.Quantile(0.5), a.DelayHist.Quantile(0.95))
	}
	return t
}
