package report

import (
	"repro/internal/fleet"
	"repro/internal/metrics"
)

// This file is the one serializable/tabular view of a fleet.Summary. The
// HTTP service renders job results through it and the CLIs render fleet
// runs through it, so the two surfaces cannot drift apart.

// StreamStats is the serializable view of a metrics.Stream.
type StreamStats struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
}

// StreamStatsOf converts a metrics.Stream into its serializable view.
func StreamStatsOf(s metrics.Stream) StreamStats {
	return StreamStats{N: s.N, Mean: s.Mean, Std: s.Std(), Min: s.Min, Max: s.Max, Sum: s.Sum()}
}

// HistogramStats is the serializable view of a metrics.Histogram.
type HistogramStats struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Count  int64   `json:"count"`
	Counts []int64 `json:"counts"`
}

// HistogramStatsOf converts a metrics.Histogram into its serializable view.
func HistogramStatsOf(h *metrics.Histogram) HistogramStats {
	return HistogramStats{Lo: h.Lo, Hi: h.Hi, Count: h.Count(), Counts: h.Counts}
}

// SchemeStats aggregates one scheme over the whole cohort.
type SchemeStats struct {
	EnergyJ     StreamStats    `json:"energy_j"`
	SavingsPct  StreamStats    `json:"savings_pct"`
	SwitchRatio StreamStats    `json:"switch_ratio"`
	Promotions  StreamStats    `json:"promotions"`
	BurstDelayS StreamStats    `json:"burst_delay_s"`
	DelayP50S   float64        `json:"delay_p50_s"`
	DelayP95S   float64        `json:"delay_p95_s"`
	EnergyHist  HistogramStats `json:"energy_hist"`
	DelayHist   HistogramStats `json:"delay_hist"`
	SignalHist  HistogramStats `json:"signal_hist"`
}

// SummaryStats is the serializable view of a fleet.Summary.
type SummaryStats struct {
	Jobs    int64                  `json:"jobs"`
	Schemes map[string]SchemeStats `json:"schemes"`
}

// SummaryStatsOf converts a fleet summary into its serializable view.
func SummaryStatsOf(s *fleet.Summary) SummaryStats {
	out := SummaryStats{Jobs: s.Jobs, Schemes: make(map[string]SchemeStats, len(s.Schemes))}
	for _, name := range s.SchemeNames() {
		a := s.Schemes[name]
		out.Schemes[name] = SchemeStats{
			EnergyJ:     StreamStatsOf(a.Energy),
			SavingsPct:  StreamStatsOf(a.SavingsPct),
			SwitchRatio: StreamStatsOf(a.SwitchRatio),
			Promotions:  StreamStatsOf(a.Promotions),
			BurstDelayS: StreamStatsOf(a.BurstDelay),
			DelayP50S:   a.DelayHist.Quantile(0.5),
			DelayP95S:   a.DelayHist.Quantile(0.95),
			EnergyHist:  HistogramStatsOf(&a.EnergyHist),
			DelayHist:   HistogramStatsOf(&a.DelayHist),
			SignalHist:  HistogramStatsOf(&a.SignalHist),
		}
	}
	return out
}

// SummaryTable renders the per-scheme aggregate as a report table, one row
// per scheme in sorted label order.
func SummaryTable(s *fleet.Summary) *Table {
	t := NewTable("fleet summary",
		"scheme", "users", "energy_mean_j", "energy_std_j", "savings_pct_mean",
		"switch_ratio_mean", "promotions_mean", "delay_p50_s", "delay_p95_s")
	for _, name := range s.SchemeNames() {
		a := s.Schemes[name]
		t.AddRowf(name, a.Energy.N, a.Energy.Mean, a.Energy.Std(),
			a.SavingsPct.Mean, a.SwitchRatio.Mean, a.Promotions.Mean,
			a.DelayHist.Quantile(0.5), a.DelayHist.Quantile(0.95))
	}
	return t
}
