package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Energy savings", "Policy", "Saved(%)")
	tb.AddRow("MakeIdle", "62.1")
	tb.AddRow("Oracle", "65.0")
	out := tb.String()
	if !strings.Contains(out, "Energy savings") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "MakeIdle") || !strings.Contains(out, "65.0") {
		t.Fatalf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns are aligned: header and first row start the second column at
	// the same offset.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "Saved(%)") != strings.Index(row, "62.1") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Fatal("short row dropped")
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "x") && strings.Count(line, "  ") < 1 {
			t.Fatalf("short row not padded: %q", line)
		}
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "Name", "Value", "Count")
	tb.AddRowf("a", 3.14159, 7)
	out := tb.String()
	if !strings.Contains(out, "3.14") {
		t.Fatalf("float not formatted to 2 places:\n%s", out)
	}
	if strings.Contains(out, "3.14159") {
		t.Fatalf("float not truncated:\n%s", out)
	}
	if !strings.Contains(out, "7") {
		t.Fatalf("int missing:\n%s", out)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "twait", XLabel: "time(s)", YLabel: "wait(s)"}
	s.Add(0, 1.5)
	s.Add(10, 0.8)
	out := s.String()
	if !strings.Contains(out, "# twait") {
		t.Fatal("series name missing")
	}
	if !strings.Contains(out, "10\t0.8") {
		t.Fatalf("data point missing:\n%s", out)
	}
	if len(s.X) != 2 || len(s.Y) != 2 {
		t.Fatal("points not stored")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("ignored", "Policy", "Saved")
	tb.AddRow("MakeIdle", "62.1")
	tb.AddRow("with,comma", "1")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Policy,Saved" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], `"with,comma"`) {
		t.Fatalf("comma cell not quoted: %q", lines[2])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("t", "only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Fatalf("header missing:\n%s", out)
	}
}
