// Package report renders simulation output for its consumers: fixed-width
// text tables and simple data series for cmd/experiments (rows correspond
// one-to-one with the paper's figures and tables), CSV for plotting tools,
// and deterministic JSON for the simulation service — the same value always
// serializes to the same bytes, which is what lets the job cache return
// byte-identical responses.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v unless it is a float64, which is rendered with %.2f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.2f", v))
		case string:
			row = append(row, v)
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// WriteTo renders the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if _, err := t.WriteTo(&sb); err != nil {
		// strings.Builder never errors; keep the method total anyway.
		return err.Error()
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as RFC-4180-style CSV (header row first),
// for feeding rows into plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSON renders v as indented JSON with a trailing newline. The encoding is
// deterministic — encoding/json sorts map keys — so equal values produce
// byte-identical output, the property the simulation service's result
// cache relies on.
func JSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// CSVBytes renders the table via WriteCSV into a byte slice.
func (t *Table) CSVBytes() ([]byte, error) {
	var sb strings.Builder
	if err := t.WriteCSV(&sb); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// Series is a labelled (x, y) data series, the textual analogue of one
// curve in a paper figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// WriteTo renders the series as aligned x/y columns.
func (s *Series) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	fmt.Fprintf(&sb, "# %s\t%s\n", s.XLabel, s.YLabel)
	for i := range s.X {
		fmt.Fprintf(&sb, "%g\t%g\n", s.X[i], s.Y[i])
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the series to a string.
func (s *Series) String() string {
	var sb strings.Builder
	if _, err := s.WriteTo(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}
