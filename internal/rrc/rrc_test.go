package rrc

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
)

// prof returns a round-number test profile: t1 = 4 s, t2 = 8 s.
func prof() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func lteProf() power.Profile {
	p := prof()
	p.Tech = power.TechLTE
	p.T2 = 0
	p.T2MW = 0
	return p
}

func mustNew(t *testing.T, p power.Profile, log bool) *Machine {
	t.Helper()
	m, err := New(p, log)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewRejectsInvalidProfile(t *testing.T) {
	if _, err := New(power.Profile{}, false); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestInitialState(t *testing.T) {
	m := mustNew(t, prof(), false)
	if m.State() != Idle || m.Now() != 0 {
		t.Fatalf("initial state %v at %v", m.State(), m.Now())
	}
}

func TestStateString(t *testing.T) {
	if Idle.String() != "IDLE" || FACH.String() != "FACH" || DCH.String() != "DCH" {
		t.Fatal("state strings wrong")
	}
	if State(9).String() == "" {
		t.Fatal("unknown state string empty")
	}
}

func TestPacketPromotesFromIdle(t *testing.T) {
	m := mustNew(t, prof(), false)
	promoted := m.OnPacket(time.Second)
	if !promoted {
		t.Fatal("first packet should promote")
	}
	if m.State() != DCH {
		t.Fatalf("state = %v, want DCH", m.State())
	}
	if m.Promotions() != 1 {
		t.Fatalf("promotions = %d", m.Promotions())
	}
}

func TestTimerDemotion3G(t *testing.T) {
	m := mustNew(t, prof(), true)
	m.OnPacket(0)
	// t1 = 4s: DCH until 4, FACH until 12, Idle after.
	m.AdvanceTo(3 * time.Second)
	if m.State() != DCH {
		t.Fatalf("at 3s state = %v, want DCH", m.State())
	}
	m.AdvanceTo(5 * time.Second)
	if m.State() != FACH {
		t.Fatalf("at 5s state = %v, want FACH", m.State())
	}
	m.AdvanceTo(11 * time.Second)
	if m.State() != FACH {
		t.Fatalf("at 11s state = %v, want FACH", m.State())
	}
	m.AdvanceTo(13 * time.Second)
	if m.State() != Idle {
		t.Fatalf("at 13s state = %v, want Idle", m.State())
	}
	if m.Demotions() != 1 {
		t.Fatalf("demotions = %d, want 1 (only FACH->Idle counts)", m.Demotions())
	}
}

func TestTimerDemotionLTE(t *testing.T) {
	m := mustNew(t, lteProf(), false)
	m.OnPacket(0)
	m.AdvanceTo(5 * time.Second) // t1 = 4s, no FACH stage
	if m.State() != Idle {
		t.Fatalf("LTE at 5s state = %v, want Idle", m.State())
	}
}

func TestPacketResetsTimer(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(0)
	m.OnPacket(3 * time.Second) // inside t1: timer resets
	m.AdvanceTo(6 * time.Second)
	if m.State() != DCH {
		t.Fatalf("at 6s state = %v, want DCH (timer was reset at 3s)", m.State())
	}
	m.AdvanceTo(7*time.Second + time.Millisecond)
	if m.State() != FACH {
		t.Fatalf("after reset+t1 state = %v, want FACH", m.State())
	}
}

func TestPacketInFACHPromotesWithoutSignaling(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(0)
	promoted := m.OnPacket(5 * time.Second) // radio is in FACH
	if promoted {
		t.Fatal("FACH->DCH should not count as a promotion from Idle")
	}
	if m.State() != DCH || m.Promotions() != 1 {
		t.Fatalf("state %v promotions %d", m.State(), m.Promotions())
	}
}

func TestFastDormancy(t *testing.T) {
	m := mustNew(t, prof(), true)
	m.OnPacket(0)
	m.FastDormancy(time.Second)
	if m.State() != Idle {
		t.Fatalf("state after FD = %v", m.State())
	}
	if m.FastDormancyDemotions() != 1 || m.Demotions() != 1 {
		t.Fatalf("fd=%d demotions=%d", m.FastDormancyDemotions(), m.Demotions())
	}
	// FD while already idle is a no-op.
	m.FastDormancy(2 * time.Second)
	if m.Demotions() != 1 {
		t.Fatal("FD while idle should not count")
	}
	// Next packet promotes again.
	if !m.OnPacket(3 * time.Second) {
		t.Fatal("packet after FD should promote")
	}
}

func TestResidencyAccounting(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(0)
	m.AdvanceTo(20 * time.Second)
	if got := m.Residency(DCH); got != 4*time.Second {
		t.Fatalf("DCH residency = %v, want 4s", got)
	}
	if got := m.Residency(FACH); got != 8*time.Second {
		t.Fatalf("FACH residency = %v, want 8s", got)
	}
	if got := m.Residency(Idle); got != 8*time.Second {
		t.Fatalf("Idle residency = %v, want 8s", got)
	}
}

func TestResidencySumsToElapsed(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(time.Second)
	m.OnPacket(2 * time.Second)
	m.FastDormancy(3 * time.Second)
	m.OnPacket(10 * time.Second)
	m.AdvanceTo(60 * time.Second)
	total := m.Residency(Idle) + m.Residency(FACH) + m.Residency(DCH)
	if total != 60*time.Second {
		t.Fatalf("residency sums to %v, want 60s", total)
	}
}

func TestTransitionLog(t *testing.T) {
	m := mustNew(t, prof(), true)
	m.OnPacket(0)
	m.AdvanceTo(20 * time.Second)
	log := m.Log()
	want := []Transition{
		{At: 0, From: Idle, To: DCH},
		{At: 4 * time.Second, From: DCH, To: FACH},
		{At: 12 * time.Second, From: FACH, To: Idle},
	}
	if len(log) != len(want) {
		t.Fatalf("log has %d entries, want %d: %+v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %+v, want %+v", i, log[i], want[i])
		}
	}
}

func TestNoLogWhenDisabled(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(0)
	m.AdvanceTo(20 * time.Second)
	if m.Log() != nil {
		t.Fatal("log kept despite keepLog=false")
	}
}

func TestAdvancePanicsOnBackwardsTime(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.AdvanceTo(5 * time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards advance did not panic")
		}
	}()
	m.AdvanceTo(time.Second)
}

func TestPowerMW(t *testing.T) {
	m := mustNew(t, prof(), false)
	if m.PowerMW() != 0 {
		t.Fatal("idle power should be 0")
	}
	m.OnPacket(0)
	if m.PowerMW() != 1000 {
		t.Fatalf("DCH power = %v", m.PowerMW())
	}
	m.AdvanceTo(5 * time.Second)
	if m.PowerMW() != 500 {
		t.Fatalf("FACH power = %v", m.PowerMW())
	}
}

func TestExactTimerBoundary(t *testing.T) {
	m := mustNew(t, prof(), false)
	m.OnPacket(0)
	// Advancing exactly to the t1 boundary fires the demotion.
	m.AdvanceTo(4 * time.Second)
	if m.State() != FACH {
		t.Fatalf("at exactly t1, state = %v, want FACH", m.State())
	}
	// A packet exactly at the t1+t2 boundary: timers fire first, then the
	// packet promotes from Idle.
	m2 := mustNew(t, prof(), false)
	m2.OnPacket(0)
	promoted := m2.OnPacket(12 * time.Second)
	if !promoted {
		t.Fatal("packet at exact tail end should promote from Idle")
	}
}

func TestPropertyResidencyConservation(t *testing.T) {
	// Under any packet/dormancy schedule, residency sums to elapsed time
	// and promotions never exceed demotions + 1.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := New(prof(), false)
		if err != nil {
			return false
		}
		var now time.Duration
		for i := 0; i < 200; i++ {
			now += time.Duration(r.Int63n(int64(6 * time.Second)))
			switch r.Intn(3) {
			case 0, 1:
				m.OnPacket(now)
			case 2:
				m.FastDormancy(now)
			}
		}
		end := now + 30*time.Second
		m.AdvanceTo(end)
		total := m.Residency(Idle) + m.Residency(FACH) + m.Residency(DCH)
		if total != end {
			return false
		}
		return m.Promotions() <= m.Demotions()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLogAlternatesIdleDCH(t *testing.T) {
	// Transitions in the log must be consistent: each entry's From equals
	// the previous entry's To.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := New(prof(), true)
		if err != nil {
			return false
		}
		var now time.Duration
		for i := 0; i < 100; i++ {
			now += time.Duration(r.Int63n(int64(8 * time.Second)))
			if r.Intn(2) == 0 {
				m.OnPacket(now)
			} else {
				m.FastDormancy(now)
			}
		}
		log := m.Log()
		for i := 1; i < len(log); i++ {
			if log[i].From != log[i-1].To {
				return false
			}
			if log[i].At < log[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
