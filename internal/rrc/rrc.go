// Package rrc simulates the Radio Resource Control state machine of Fig. 2:
// the three-state 3G automaton (Cell_DCH / Cell_FACH / Idle) and the
// two-state LTE automaton (RRC_CONNECTED / RRC_IDLE, modelled as the 3G
// machine with t2 = 0).
//
// The Machine is a discrete-event model: callers feed it packet activity and
// fast-dormancy requests with explicit timestamps, and it applies the
// base-station inactivity timers in between. It keeps full accounting of
// per-state residency, transition counts and a transition log, which is what
// internal/sim and the Fig. 3 power-timeline experiment consume.
package rrc

import (
	"fmt"
	"time"

	"repro/internal/power"
)

// State is one of the RRC machine's energy states.
type State uint8

const (
	// Idle is Cell_PCH/IDLE (3G) or RRC_IDLE (LTE): essentially no radio
	// power.
	Idle State = iota
	// FACH is the high-power idle state Cell_FACH (3G only).
	FACH
	// DCH is the Active state: Cell_DCH (3G) or RRC_CONNECTED (LTE).
	DCH
)

// String names the state following the 3G terminology used in the paper.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case FACH:
		return "FACH"
	case DCH:
		return "DCH"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Transition records one state change.
type Transition struct {
	At       time.Duration
	From, To State
	// FastDormancy marks demotions initiated by the device rather than by
	// a base-station timer.
	FastDormancy bool
}

// Machine simulates one device's RRC state against a carrier profile.
// Create one with New; the zero value is not usable.
type Machine struct {
	profile power.Profile

	state        State
	now          time.Duration // last time the machine was advanced to
	lastActivity time.Duration // time of the last packet

	residency   [3]time.Duration // time spent per state
	promotions  int              // Idle -> DCH
	demotions   int              // DCH/FACH -> Idle (timer or dormancy)
	fdDemotions int              // demotions triggered by fast dormancy
	log         []Transition
	keepLog     bool
}

// New returns a Machine in the Idle state at time zero. If keepLog is true
// the machine records every transition (needed for power timelines; costs
// memory on long traces).
func New(p power.Profile, keepLog bool) (*Machine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Machine{profile: p, state: Idle, keepLog: keepLog}, nil
}

// State returns the current state (after the last advance).
func (m *Machine) State() State { return m.state }

// Now returns the machine's current clock.
func (m *Machine) Now() time.Duration { return m.now }

// Promotions returns the number of Idle->Active transitions so far. This is
// the signaling-overhead metric of Figs. 10(b), 11(b) and 18.
func (m *Machine) Promotions() int { return m.promotions }

// Demotions returns the number of transitions into Idle.
func (m *Machine) Demotions() int { return m.demotions }

// FastDormancyDemotions returns how many demotions were device-initiated.
func (m *Machine) FastDormancyDemotions() int { return m.fdDemotions }

// Residency returns the cumulative time spent in a state.
func (m *Machine) Residency(s State) time.Duration { return m.residency[s] }

// Log returns the transition log (nil unless keepLog was set).
func (m *Machine) Log() []Transition { return m.log }

func (m *Machine) transition(at time.Duration, to State, fd bool) {
	if m.state == to {
		return
	}
	if m.keepLog {
		m.log = append(m.log, Transition{At: at, From: m.state, To: to, FastDormancy: fd})
	}
	if to == Idle {
		m.demotions++
		if fd {
			m.fdDemotions++
		}
	}
	if m.state == Idle && to == DCH {
		m.promotions++
	}
	m.state = to
}

// AdvanceTo moves the clock to t, applying any inactivity-timer demotions
// that fire in between and accumulating per-state residency. It panics if
// time would run backwards.
func (m *Machine) AdvanceTo(t time.Duration) {
	if t < m.now {
		panic(fmt.Sprintf("rrc: time running backwards: %v < %v", t, m.now))
	}
	for m.now < t {
		switch m.state {
		case DCH:
			fire := m.lastActivity + m.profile.T1
			if fire <= t {
				m.residency[DCH] += fire - m.now
				m.now = fire
				// T1 expired: demote to FACH (3G with t2 > 0) or Idle.
				if m.profile.T2 > 0 {
					m.transition(fire, FACH, false)
				} else {
					m.transition(fire, Idle, false)
				}
			} else {
				m.residency[DCH] += t - m.now
				m.now = t
			}
		case FACH:
			fire := m.lastActivity + m.profile.T1 + m.profile.T2
			if fire <= t {
				m.residency[FACH] += fire - m.now
				m.now = fire
				m.transition(fire, Idle, false)
			} else {
				m.residency[FACH] += t - m.now
				m.now = t
			}
		case Idle:
			m.residency[Idle] += t - m.now
			m.now = t
		}
	}
}

// OnPacket records packet activity at time t: the machine advances to t
// (letting timers fire first), promotes to DCH if needed, and resets the
// inactivity timers. It reports whether the packet found the radio Idle and
// therefore suffered a promotion (the caller charges promotion delay/energy).
func (m *Machine) OnPacket(t time.Duration) (promoted bool) {
	m.AdvanceTo(t)
	switch m.state {
	case Idle:
		m.transition(t, DCH, false)
		promoted = true
	case FACH:
		// FACH->DCH promotion is cheap and not counted as signaling in the
		// paper's Idle->Active metric.
		m.transition(t, DCH, false)
	}
	m.lastActivity = t
	return promoted
}

// FastDormancy demotes the radio straight to Idle at time t (3GPP Release 8
// request, always granted in our model, per §2.2). It is a no-op when the
// radio is already Idle.
func (m *Machine) FastDormancy(t time.Duration) {
	m.AdvanceTo(t)
	if m.state == Idle {
		return
	}
	m.transition(t, Idle, true)
}

// Profile returns the machine's carrier profile.
func (m *Machine) Profile() *power.Profile { return &m.profile }

// PowerMW reports the idle-path power draw of the current state (tail
// powers; transmission power is accounted separately by the energy model).
func (m *Machine) PowerMW() float64 {
	switch m.state {
	case DCH:
		return m.profile.T1MW
	case FACH:
		return m.profile.T2MW
	default:
		return 0
	}
}
