package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	old := pollInterval
	pollInterval = 5 * time.Millisecond
	m := jobs.NewManager(jobs.Config{})
	ts := httptest.NewServer(New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		pollInterval = old
	})
	return ts, m
}

func testSpecJSON(seed int64) string {
	return fmt.Sprintf(`{"users": 3, "seed": %d, "duration": "10m", "shards": 4}`, seed)
}

func postJob(t *testing.T, ts *httptest.Server, body string) (jobs.Status, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

func waitDone(t *testing.T, m *jobs.Manager, id string) {
	t.Helper()
	j, ok := m.Get(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
}

// TestSubmitPollResult drives the primary path: submit → 202 queued,
// status polls reach done, result served as JSON, CSV and text.
func TestSubmitPollResult(t *testing.T) {
	ts, m := newTestServer(t)
	st, code := postJob(t, ts, testSpecJSON(21))
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	if st.State != jobs.StateQueued && st.State != jobs.StateRunning {
		t.Fatalf("fresh job in state %s", st.State)
	}
	waitDone(t, m, st.ID)

	body, code := getBody(t, ts.URL+"/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status returned %d: %s", code, body)
	}
	var got jobs.Status
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateDone || got.Progress.DoneJobs != 3 {
		t.Fatalf("status after done: %+v", got)
	}

	js, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK || !json.Valid(js) {
		t.Fatalf("JSON result: code %d, valid=%v", code, json.Valid(js))
	}
	csv, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=csv")
	if code != http.StatusOK || !strings.HasPrefix(string(csv), "scheme,") {
		t.Fatalf("CSV result: code %d, body %q", code, csv)
	}
	text, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=text")
	if code != http.StatusOK || !strings.Contains(string(text), "fleet summary") {
		t.Fatalf("text result: code %d, body %q", code, text)
	}
}

// TestCacheHitIsByteIdenticalOverHTTP is the end-to-end acceptance
// criterion: resubmitting an identical spec returns 200 with cache_hit
// and its result bytes equal the first response's exactly.
func TestCacheHitIsByteIdenticalOverHTTP(t *testing.T) {
	ts, m := newTestServer(t)
	cold, code := postJob(t, ts, testSpecJSON(22))
	if code != http.StatusAccepted {
		t.Fatalf("cold submit returned %d", code)
	}
	waitDone(t, m, cold.ID)
	coldJSON, code := getBody(t, ts.URL+"/jobs/"+cold.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("cold result returned %d", code)
	}

	warm, code := postJob(t, ts, testSpecJSON(22))
	if code != http.StatusOK {
		t.Fatalf("warm submit returned %d, want 200 (cache hit)", code)
	}
	if !warm.CacheHit || warm.State != jobs.StateDone {
		t.Fatalf("warm submission not a completed cache hit: %+v", warm)
	}
	if warm.Fingerprint != cold.Fingerprint {
		t.Fatal("fingerprint changed between identical submissions")
	}
	warmJSON, code := getBody(t, ts.URL+"/jobs/"+warm.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("warm result returned %d", code)
	}
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("cache hit not byte-identical:\n%s\nvs\n%s", coldJSON, warmJSON)
	}
}

// TestStreamDeliversProgressAndTerminates reads the NDJSON stream of a
// running job: every line must parse, progress must be monotone, and the
// last line must carry the terminal state.
func TestStreamDeliversProgressAndTerminates(t *testing.T) {
	ts, _ := newTestServer(t)
	st, code := postJob(t, ts, `{"users": 4, "seed": 23, "duration": "10m", "shards": 8}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	last := events[len(events)-1]
	if last.State != jobs.StateDone {
		t.Fatalf("stream ended in state %s", last.State)
	}
	if last.Progress.DoneJobs != 4 {
		t.Fatalf("final progress %+v", last.Progress)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Progress.DoneShards < events[i-1].Progress.DoneShards {
			t.Fatalf("progress regressed at event %d: %+v after %+v",
				i, events[i].Progress, events[i-1].Progress)
		}
	}
}

// TestCancelOverHTTP cancels a queued/running job through DELETE and sees
// the canceled state; its result endpoint then answers 410.
func TestCancelOverHTTP(t *testing.T) {
	ts, m := newTestServer(t)
	// A bigger cohort so cancellation lands before completion most runs;
	// either way the lifecycle must stay coherent.
	st, code := postJob(t, ts, `{"users": 64, "seed": 24, "duration": "2h", "shards": 64}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel returned %d", resp.StatusCode)
	}
	waitDone(t, m, st.ID)
	body, _ := getBody(t, ts.URL+"/jobs/"+st.ID)
	var got jobs.Status
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != jobs.StateCanceled && got.State != jobs.StateDone {
		t.Fatalf("after cancel: %+v", got)
	}
	if got.State == jobs.StateCanceled {
		if _, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result"); code != http.StatusGone {
			t.Fatalf("result of canceled job returned %d, want 410", code)
		}
	}
}

// TestErrorsAndValidation exercises the failure surfaces: bad specs,
// unknown jobs, unknown formats, result-before-done.
func TestErrorsAndValidation(t *testing.T) {
	ts, m := newTestServer(t)
	for _, body := range []string{
		`{"users": 0}`,
		`{"users": 2, "profile": "Nokia 1G"}`,
		`{"users": 2, "policy": "warp-speed"}`,
		`{"users": 2, "bogus_field": 1}`,
		`not json at all`,
	} {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Fatalf("spec %q returned %d, want 400", body, code)
		}
	}
	if _, code := getBody(t, ts.URL+"/jobs/job-999999"); code != http.StatusNotFound {
		t.Fatalf("unknown job status returned %d", code)
	}
	if _, code := getBody(t, ts.URL+"/jobs/job-999999/result"); code != http.StatusNotFound {
		t.Fatalf("unknown job result returned %d", code)
	}

	st, code := postJob(t, ts, testSpecJSON(25))
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitDone(t, m, st.ID)
	if _, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("unknown format returned %d", code)
	}

	hb, code := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(hb), `"status"`) {
		t.Fatalf("healthz: %d %s", code, hb)
	}
}

// TestHealthzTraceCacheGauges pins the trace-cache health gauges: after a
// grid whose cells share a cohort, /healthz must report the cache's
// generations (misses), replays served from slabs (hits) and retained
// bytes — nonzero each — plus the eviction counter.
func TestHealthzTraceCacheGauges(t *testing.T) {
	ts, m := newTestServer(t)
	spec := `{"seed": 31, "duration": "2m", "shards": 2,
		"schemes": [{"policy": {"name": "makeidle"}},
		            {"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}],
		"profiles": [{"name": "verizon-3g"}],
		"cohorts": [{"name": "study-3g", "params": {"users": 2, "duration": "2m"}}]}`
	st, code := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitDone(t, m, st.ID)

	hb, code := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d %s", code, hb)
	}
	var health map[string]any
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, hb)
	}
	num := func(key string) float64 {
		t.Helper()
		v, ok := health[key].(float64)
		if !ok {
			t.Fatalf("healthz missing numeric %q:\n%s", key, hb)
		}
		return v
	}
	// 2 cells × 2 users consult the cache once per job: one generation per
	// user, the rest replay from the retained slabs.
	if got := num("trace_cache_misses"); got != 2 {
		t.Fatalf("trace_cache_misses = %v, want 2 (one generation per user)", got)
	}
	if got := num("trace_cache_hits"); got != 2 {
		t.Fatalf("trace_cache_hits = %v, want 2", got)
	}
	if got := num("trace_cache_bytes"); got <= 0 {
		t.Fatalf("trace_cache_bytes = %v, want > 0", got)
	}
	if got := num("trace_cache_evictions"); got != 0 {
		t.Fatalf("trace_cache_evictions = %v, want 0", got)
	}
}
