package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/spec"
	"repro/internal/workload"
)

// The grid acceptance axes: 2 schemes × 2 profiles × 2 cohorts = 8 cells.
// Populations are tiny so the whole grid replays in well under a second.
var (
	gridSchemes = []string{
		`{"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}`,
		`{"policy": {"name": "makeidle"}}`,
	}
	gridProfiles = []string{
		`{"name": "verizon-3g"}`,
		`{"name": "verizon-lte", "params": {"t1": "5s"}}`,
	}
	gridCohorts = []string{
		`{"name": "study-3g", "params": {"users": 3, "duration": "10m"}}`,
		`{"name": "mix", "params": {"users": 2, "duration": "10m", "im": 2, "email": 1}}`,
	}
)

// gridServer pairs a test server with its manager for the grid helpers.
type gridServer struct {
	srv *httptest.Server
	m   *jobs.Manager
}

func newGridServer(t *testing.T) *gridServer {
	t.Helper()
	srv, m := newTestServer(t)
	return &gridServer{srv: srv, m: m}
}

func submitAndWait(t *testing.T, ts *gridServer, body string) string {
	t.Helper()
	resp, err := http.Post(ts.srv.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusShim
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s returned %d: %+v", body, resp.StatusCode, st)
	}
	waitDone(t, ts.m, st.ID)
	return st.ID
}

// TestGridCellsMatchSingleAxisJobs is the acceptance criterion: a
// 2×2×2 grid job produces 8 cell summaries, each byte-identical to the
// corresponding single-axis job run on a *separate* service instance (so
// no cache can couple the two computations).
func TestGridCellsMatchSingleAxisJobs(t *testing.T) {
	gridSrv := newGridServer(t)
	singleSrv := newGridServer(t)

	common := `"seed": 61, "shards": 4`
	gridBody := fmt.Sprintf(`{%s, "schemes": [%s], "profiles": [%s], "cohorts": [%s]}`,
		common,
		strings.Join(gridSchemes, ", "),
		strings.Join(gridProfiles, ", "),
		strings.Join(gridCohorts, ", "))
	gridID := submitAndWait(t, gridSrv, gridBody)

	raw, code := getBody(t, gridSrv.srv.URL+"/v1/jobs/"+gridID+"/result")
	if code != http.StatusOK {
		t.Fatalf("grid result returned %d: %s", code, raw)
	}
	var grid report.GridStats
	if err := json.Unmarshal(raw, &grid); err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 8 {
		t.Fatalf("grid returned %d cells, want 8", len(grid.Cells))
	}

	// Cells execute cohort-major, then profile, then scheme.
	i := 0
	for _, cohort := range gridCohorts {
		for _, profile := range gridProfiles {
			for _, scheme := range gridSchemes {
				cellBytes, code := getBody(t,
					fmt.Sprintf("%s/v1/jobs/%s/result?cell=%d", gridSrv.srv.URL, gridID, i))
				if code != http.StatusOK {
					t.Fatalf("cell %d returned %d", i, code)
				}
				singleBody := fmt.Sprintf(
					`{%s, "schemes": [%s], "profiles": [%s], "cohorts": [%s]}`,
					common, scheme, profile, cohort)
				singleID := submitAndWait(t, singleSrv, singleBody)
				singleBytes, code := getBody(t, singleSrv.srv.URL+"/v1/jobs/"+singleID+"/result")
				if code != http.StatusOK {
					t.Fatalf("single job %d returned %d: %s", i, code, singleBytes)
				}
				if !bytes.Equal(cellBytes, singleBytes) {
					t.Fatalf("cell %d (scheme %s, profile %s, cohort %s) differs from its single-axis job:\n%s\nvs\n%s",
						i, scheme, profile, cohort, cellBytes, singleBytes)
				}
				// The grid's embedded cell stats agree with the verbatim bytes.
				var cellStats report.SummaryStats
				if err := json.Unmarshal(cellBytes, &cellStats); err != nil {
					t.Fatal(err)
				}
				if cellStats.Jobs != grid.Cells[i].Summary.Jobs {
					t.Fatalf("cell %d: embedded stats disagree with ?cell bytes", i)
				}
				i++
			}
		}
	}
}

// TestGridReusesCachedCells: a grid overlapping earlier single-axis jobs
// replays only its novel cells — the overlapping cells are served from
// the cell cache with byte-identical renderings.
func TestGridReusesCachedCells(t *testing.T) {
	ts := newGridServer(t)
	common := `"seed": 62, "shards": 4`
	scheme := gridSchemes[0]
	profile := gridProfiles[0]
	cohort := gridCohorts[0]

	singleID := submitAndWait(t, ts,
		fmt.Sprintf(`{%s, "schemes": [%s], "profiles": [%s], "cohorts": [%s]}`,
			common, scheme, profile, cohort))
	singleBytes, _ := getBody(t, ts.srv.URL+"/v1/jobs/"+singleID+"/result?cell=0")

	hb, _ := getBody(t, ts.srv.URL+"/healthz")
	var health struct {
		CellCacheLen int `json:"cell_cache_len"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.CellCacheLen != 1 {
		t.Fatalf("cell cache holds %d entries after one single-cell job, want 1", health.CellCacheLen)
	}

	gridID := submitAndWait(t, ts,
		fmt.Sprintf(`{%s, "schemes": [%s, %s], "profiles": [%s], "cohorts": [%s]}`,
			common, scheme, gridSchemes[1], profile, cohort))
	cellBytes, _ := getBody(t, ts.srv.URL+"/v1/jobs/"+gridID+"/result?cell=0")
	if !bytes.Equal(singleBytes, cellBytes) {
		t.Fatal("cached cell bytes differ from the original run's")
	}
}

// TestProfilesEndpointMatchesRegistry is the guard: GET /v1/profiles must
// stay in lockstep with the profile registry — every registered carrier
// schema present with its full parameter schema, every display-name alias
// attributed.
func TestProfilesEndpointMatchesRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	body, code := getBody(t, ts.URL+"/v1/profiles")
	if code != http.StatusOK {
		t.Fatalf("/v1/profiles returned %d", code)
	}
	var catalog ProfileCatalog
	if err := json.Unmarshal(body, &catalog); err != nil {
		t.Fatal(err)
	}
	assertCatalogMatches(t, "profile", catalog.Profiles,
		power.Default().Schemas(), power.Default().Aliases())
}

// TestWorkloadsEndpointMatchesRegistry is the guard for GET /v1/workloads
// against the cohort registry.
func TestWorkloadsEndpointMatchesRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	body, code := getBody(t, ts.URL+"/v1/workloads")
	if code != http.StatusOK {
		t.Fatalf("/v1/workloads returned %d", code)
	}
	var catalog WorkloadCatalog
	if err := json.Unmarshal(body, &catalog); err != nil {
		t.Fatal(err)
	}
	assertCatalogMatches(t, "cohort", catalog.Cohorts,
		workload.Cohorts().Schemas(), workload.Cohorts().Aliases())
}

// assertCatalogMatches checks a discovery payload lists exactly the
// registry's schemas — same parameter counts, kinds and defaults — and
// exactly its aliases.
func assertCatalogMatches(t *testing.T, noun string, got []spec.SchemaInfo, schemas []*spec.Schema, wantAliases []string) {
	t.Helper()
	if len(got) != len(schemas) {
		t.Fatalf("endpoint lists %d %ss, registry has %d", len(got), noun, len(schemas))
	}
	listed := map[string]spec.SchemaInfo{}
	var aliases []string
	for _, info := range got {
		listed[info.Name] = info
		aliases = append(aliases, info.Aliases...)
	}
	for _, s := range schemas {
		info, ok := listed[s.Name]
		if !ok {
			t.Fatalf("%s %q registered but not listed", noun, s.Name)
		}
		if len(info.Params) != len(s.Params) {
			t.Fatalf("%s %q: %d params listed, schema has %d", noun, s.Name, len(info.Params), len(s.Params))
		}
		for i, p := range info.Params {
			if p.Kind == "" || p.Default == "" {
				t.Fatalf("%s %q parameter %q missing kind or default", noun, s.Name, p.Name)
			}
			if p.Name != s.Params[i].Name {
				t.Fatalf("%s %q parameter order drifted: %q vs %q", noun, s.Name, p.Name, s.Params[i].Name)
			}
		}
	}
	if len(aliases) != len(wantAliases) {
		t.Fatalf("endpoint lists aliases %v, registry has %v", aliases, wantAliases)
	}
}

// TestLegacyAxisPayloadsShareFingerprints: flat profile/users payloads and
// their explicit axis forms share a fingerprint, so the second submission
// is a cache hit with byte-identical results (the axis analogue of
// TestLegacyFlatPayloadOnV1).
func TestLegacyAxisPayloadsShareFingerprints(t *testing.T) {
	ts, m := newTestServer(t)
	flat, code := postJob(t, ts,
		`{"users": 3, "seed": 63, "duration": "10m", "shards": 4, "profile": "Verizon LTE"}`)
	if code != http.StatusAccepted {
		t.Fatalf("flat submit returned %d", code)
	}
	waitDone(t, m, flat.ID)
	explicit, code := postJob(t, ts, `{"seed": 63, "shards": 4,
		"profiles": [{"label": "Verizon LTE", "name": "Verizon LTE"}],
		"cohorts": [{"name": "study-3g", "params": {"users": 3, "duration": "10m"}}]}`)
	if code != http.StatusOK {
		t.Fatalf("explicit submit returned %d, want 200 (cache hit)", code)
	}
	if !explicit.CacheHit || explicit.Fingerprint != flat.Fingerprint {
		t.Fatalf("explicit axis form did not hit the flat form's cache entry: %+v", explicit)
	}
}

// statusShim decodes just what submitAndWait needs.
type statusShim struct {
	ID string `json:"id"`
}
