// Package server exposes the job manager over HTTP — the
// simulation-as-a-service surface of the fleet runtime. The API is plain
// JSON over stdlib net/http, versioned under /v1:
//
//	POST   /v1/jobs              submit a replay spec → 202 + job status
//	                             (200 when served from the fingerprint
//	                             cache). The spec is a sweep grid: up to
//	                             three axis lists — "schemes", "profiles"
//	                             and "cohorts", each an array of
//	                             parameterized specs resolved against its
//	                             registry — whose cross product runs as
//	                             one deterministic fleet run per cell.
//	                             Legacy flat payloads ("policy"/"active"
//	                             names, a "profile" name, a bare "users"
//	                             count) map onto one-entry axes via
//	                             registry aliases with unchanged labels.
//	GET    /v1/policies          discovery: every registered policy with
//	                             its parameter schema (kind, default,
//	                             bounds), capabilities (trace-fitted,
//	                             gap-lookahead) and legacy aliases
//	GET    /v1/profiles          discovery: every registered carrier
//	                             profile — each Table 2 constant a
//	                             bounds-checked knob — plus display-name
//	                             aliases
//	GET    /v1/workloads         discovery: every registered cohort family
//	                             (population, duration, diurnal mask,
//	                             seed stride, app weights)
//	GET    /v1/jobs              list all jobs in submission order
//	GET    /v1/jobs/{id}         one job's status + progress
//	GET    /v1/jobs/{id}/stream  NDJSON feed of progress + merged
//	                             partials, terminated by the final state
//	GET    /v1/jobs/{id}/result  final summary; ?format=json (default),
//	                             csv, or text. Grid jobs render one
//	                             summary per cell; ?cell=N serves cell N's
//	                             JSON verbatim — byte-identical to the
//	                             equivalent single-axis job's result.
//	DELETE /v1/jobs/{id}         cancel (queued cancels at once, running
//	                             at the fleet's next between-jobs check)
//	GET    /v1/cells/{fp}        one finished grid cell by its
//	                             content-addressed fingerprint (the
//	                             "fingerprint" field of grid results),
//	                             served from the in-memory cell cache or
//	                             the durable store — byte-identical to the
//	                             ?cell=N rendering of any job containing
//	                             it. 404 when unknown to both tiers.
//	GET    /healthz              liveness + queue/cache gauges (plus
//	                             durable-store gauges when a store is
//	                             configured)
//
// The pre-versioning /jobs... routes remain mounted as aliases of the
// /v1 handlers, so existing clients keep working unchanged.
//
// Result bytes are rendered once per fingerprint by the jobs layer, so a
// cache-hit response is byte-identical to the cold run that populated it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/spec"
	"repro/internal/workload"
)

// pollInterval paces the stream endpoint's progress checks; tests shrink
// it. Watchers also wake immediately on job completion.
var pollInterval = 150 * time.Millisecond

// Server routes HTTP requests to a jobs.Manager.
type Server struct {
	manager *jobs.Manager
	mux     *http.ServeMux
}

// New builds the HTTP handler over a running manager. Every job route is
// mounted twice — under /v1 (the versioned surface) and at the legacy
// root paths — sharing one handler, so the two surfaces cannot drift.
func New(m *jobs.Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.health)
	for _, prefix := range []string{"", "/v1"} {
		s.mux.HandleFunc("POST "+prefix+"/jobs", s.submit)
		s.mux.HandleFunc("GET "+prefix+"/jobs", s.list)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}", s.get)
		s.mux.HandleFunc("DELETE "+prefix+"/jobs/{id}", s.cancel)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}/result", s.result)
		s.mux.HandleFunc("GET "+prefix+"/jobs/{id}/stream", s.stream)
	}
	s.mux.HandleFunc("GET /v1/cells/{fingerprint}", s.cell)
	s.mux.HandleFunc("GET /v1/policies", s.policies)
	s.mux.HandleFunc("GET /v1/profiles", s.profiles)
	s.mux.HandleFunc("GET /v1/workloads", s.workloads)
	return s
}

// PolicyCatalog is the GET /v1/policies payload: the registry's schemas,
// split by role, each with its full parameter schema, capabilities and
// legacy aliases. Clients discover the sweepable policy space from this
// instead of hardcoding names.
type PolicyCatalog struct {
	Demote []policy.SchemaInfo `json:"demote"`
	Active []policy.SchemaInfo `json:"active"`
}

// Catalog builds the discovery payload from the default registry; the
// guard test asserts it stays in lockstep with the registry itself.
func Catalog() PolicyCatalog {
	reg := policy.Default()
	return PolicyCatalog{
		Demote: reg.Describe(policy.RoleDemote),
		Active: reg.Describe(policy.RoleActive),
	}
}

func (s *Server) policies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Catalog())
}

// ProfileCatalog is the GET /v1/profiles payload: every carrier base
// schema — each Table 2 constant a parameter with kind, default and
// bounds — plus the legacy display-name aliases. Clients discover the
// sweepable profile space from this instead of hardcoding carrier names.
type ProfileCatalog struct {
	Profiles []spec.SchemaInfo `json:"profiles"`
}

// ProfilesCatalog builds the discovery payload from the default profile
// registry; the guard test asserts it stays in lockstep with the registry
// itself.
func ProfilesCatalog() ProfileCatalog {
	return ProfileCatalog{Profiles: power.Default().Describe()}
}

func (s *Server) profiles(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ProfilesCatalog())
}

// WorkloadCatalog is the GET /v1/workloads payload: every registered
// cohort family with its population knobs.
type WorkloadCatalog struct {
	Cohorts []spec.SchemaInfo `json:"cohorts"`
}

// WorkloadsCatalog builds the discovery payload from the default cohort
// registry; the guard test asserts it stays in lockstep with the registry
// itself.
func WorkloadsCatalog() WorkloadCatalog {
	return WorkloadCatalog{Cohorts: workload.Cohorts().Describe()}
}

func (s *Server) workloads(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, WorkloadsCatalog())
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	traces := s.manager.TraceCacheStats()
	body := map[string]any{
		"status":                "ok",
		"jobs":                  s.manager.Len(),
		"queue_depth":           s.manager.QueueDepth(),
		"cache_len":             s.manager.CacheLen(),
		"cell_cache_len":        s.manager.CellCacheLen(),
		"cells_executed":        s.manager.CellsExecuted(),
		"cells_in_flight":       s.manager.CellsInFlight(),
		"trace_cache_hits":      traces.Hits,
		"trace_cache_misses":    traces.Misses,
		"trace_cache_bytes":     traces.Bytes,
		"trace_cache_evictions": traces.Evictions,
	}
	if stats, ok := s.manager.StoreStats(); ok {
		body["store"] = stats
	}
	writeJSON(w, http.StatusOK, body)
}

// cell serves one finished grid cell by its content-addressed
// fingerprint, whichever tier holds it. The bytes are the cell's
// memoized JSON rendering — identical to the ?cell=N bytes of any job
// that contains the cell, and to the flat rendering of the equivalent
// single-axis job.
func (s *Server) cell(w http.ResponseWriter, r *http.Request) {
	c, ok := s.manager.Cell(r.PathValue("fingerprint"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such cell"))
		return
	}
	body, err := c.JSON()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("rendering cell: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	job, err := s.manager.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st := job.Status()
	code := http.StatusAccepted
	if st.CacheHit {
		code = http.StatusOK // already complete, served from cache
	}
	writeJSON(w, code, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.manager.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	st := job.Status()
	switch st.State {
	case jobs.StateDone:
	case jobs.StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", st.Error))
		return
	case jobs.StateCanceled:
		httpError(w, http.StatusGone, fmt.Errorf("job canceled"))
		return
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll or stream until done", st.ID, st.State))
		return
	}
	res := job.Result()
	// ?cell=N serves one grid cell's JSON verbatim: the exact bytes the
	// equivalent single-axis job's flat result would carry, which is what
	// makes grid cells comparable (and cacheable) byte for byte.
	if cellParam := r.URL.Query().Get("cell"); cellParam != "" {
		idx, err := strconv.Atoi(cellParam)
		if err != nil || idx < 0 || idx >= len(res.Cells) {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("bad cell %q (job has cells 0..%d)", cellParam, len(res.Cells)-1))
			return
		}
		body, err := res.Cells[idx].JSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("rendering cell: %w", err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		body, err := res.JSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("rendering result: %w", err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "csv":
		body, err := res.CSV()
		if err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("rendering result: %w", err))
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		w.Write(body)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text())
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json, csv, text)", format))
	}
}

// StreamEvent is one NDJSON line of the stream endpoint: the job's state
// and progress, plus compact per-scheme partial aggregates once the first
// shard lands. The final line of a stream carries a terminal state.
type StreamEvent struct {
	ID       string                  `json:"id"`
	State    jobs.State              `json:"state"`
	Progress jobs.Progress           `json:"progress"`
	Partial  map[string]PartialStats `json:"partial,omitempty"`
	Error    string                  `json:"error,omitempty"`
}

// PartialStats summarizes one scheme's merged partial aggregate.
type PartialStats struct {
	Jobs           int64   `json:"jobs"`
	EnergyMeanJ    float64 `json:"energy_mean_j"`
	SavingsPctMean float64 `json:"savings_pct_mean"`
}

func eventFor(job *jobs.Job) StreamEvent {
	st := job.Status()
	ev := StreamEvent{ID: st.ID, State: st.State, Progress: st.Progress, Error: st.Error}
	if partial := job.Partial(); partial != nil {
		ev.Partial = make(map[string]PartialStats, len(partial.Schemes))
		for _, name := range partial.SchemeNames() {
			a := partial.Schemes[name]
			ev.Partial[name] = PartialStats{
				Jobs:           a.Energy.N,
				EnergyMeanJ:    a.Energy.Mean,
				SavingsPctMean: a.SavingsPct.Mean,
			}
		}
	}
	return ev
}

// stream writes an NDJSON event per observed progress change until the job
// terminates (its final event closes the stream) or the client goes away.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	last := eventFor(job)
	emit(last)
	if last.State.Terminal() {
		return
	}
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emit(eventFor(job))
			return
		case <-ticker.C:
			ev := eventFor(job)
			if ev.State != last.State || ev.Progress != last.Progress {
				emit(ev)
				last = ev
			}
			if ev.State.Terminal() {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
