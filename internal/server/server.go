// Package server exposes the job manager over HTTP — the
// simulation-as-a-service surface of the fleet runtime. The API is plain
// JSON over stdlib net/http:
//
//	POST   /jobs              submit a cohort replay spec → 202 + job status
//	                          (200 when served from the fingerprint cache)
//	GET    /jobs              list all jobs in submission order
//	GET    /jobs/{id}         one job's status + progress
//	GET    /jobs/{id}/stream  NDJSON feed of progress + merged partials,
//	                          terminated by the job's final state
//	GET    /jobs/{id}/result  final summary; ?format=json (default),
//	                          csv, or text
//	DELETE /jobs/{id}         cancel (queued cancels at once, running at
//	                          the fleet's next between-jobs check)
//	GET    /healthz           liveness + queue/cache gauges
//
// Result bytes are rendered once per fingerprint by the jobs layer, so a
// cache-hit response is byte-identical to the cold run that populated it.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// pollInterval paces the stream endpoint's progress checks; tests shrink
// it. Watchers also wake immediately on job completion.
var pollInterval = 150 * time.Millisecond

// Server routes HTTP requests to a jobs.Manager.
type Server struct {
	manager *jobs.Manager
	mux     *http.ServeMux
}

// New builds the HTTP handler over a running manager.
func New(m *jobs.Manager) *Server {
	s := &Server{manager: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.health)
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.get)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.result)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.stream)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"jobs":        s.manager.Len(),
		"queue_depth": s.manager.QueueDepth(),
		"cache_len":   s.manager.CacheLen(),
	})
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
		return
	}
	job, err := s.manager.Submit(spec)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, jobs.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st := job.Status()
	code := http.StatusAccepted
	if st.CacheHit {
		code = http.StatusOK // already complete, served from cache
	}
	writeJSON(w, code, st)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.List())
}

func (s *Server) get(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.manager.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	st := job.Status()
	switch st.State {
	case jobs.StateDone:
	case jobs.StateFailed:
		httpError(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", st.Error))
		return
	case jobs.StateCanceled:
		httpError(w, http.StatusGone, fmt.Errorf("job canceled"))
		return
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s; poll or stream until done", st.ID, st.State))
		return
	}
	res := job.Result()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		w.Write(res.JSON)
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		w.Write(res.CSV)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json, csv, text)", format))
	}
}

// StreamEvent is one NDJSON line of the stream endpoint: the job's state
// and progress, plus compact per-scheme partial aggregates once the first
// shard lands. The final line of a stream carries a terminal state.
type StreamEvent struct {
	ID       string                  `json:"id"`
	State    jobs.State              `json:"state"`
	Progress jobs.Progress           `json:"progress"`
	Partial  map[string]PartialStats `json:"partial,omitempty"`
	Error    string                  `json:"error,omitempty"`
}

// PartialStats summarizes one scheme's merged partial aggregate.
type PartialStats struct {
	Jobs           int64   `json:"jobs"`
	EnergyMeanJ    float64 `json:"energy_mean_j"`
	SavingsPctMean float64 `json:"savings_pct_mean"`
}

func eventFor(job *jobs.Job) StreamEvent {
	st := job.Status()
	ev := StreamEvent{ID: st.ID, State: st.State, Progress: st.Progress, Error: st.Error}
	if partial := job.Partial(); partial != nil {
		ev.Partial = make(map[string]PartialStats, len(partial.Schemes))
		for _, name := range partial.SchemeNames() {
			a := partial.Schemes[name]
			ev.Partial[name] = PartialStats{
				Jobs:           a.Energy.N,
				EnergyMeanJ:    a.Energy.Mean,
				SavingsPctMean: a.SavingsPct.Mean,
			}
		}
	}
	return ev
}

// stream writes an NDJSON event per observed progress change until the job
// terminates (its final event closes the stream) or the client goes away.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.manager.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no such job"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev StreamEvent) {
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}
	last := eventFor(job)
	emit(last)
	if last.State.Terminal() {
		return
	}
	ticker := time.NewTicker(pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emit(eventFor(job))
			return
		case <-ticker.C:
			ev := eventFor(job)
			if ev.State != last.State || ev.Progress != last.Progress {
				emit(ev)
				last = ev
			}
			if ev.State.Terminal() {
				return
			}
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
