package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/jobs"
	"repro/internal/policy"
)

// TestV1RoutesAliasLegacyRoutes: the /v1 surface serves the same handlers
// as the legacy root paths — a job submitted on one is visible on the
// other, with identical result bytes.
func TestV1RoutesAliasLegacyRoutes(t *testing.T) {
	ts, m := newTestServer(t)
	st, code := postJob(t, ts, testSpecJSON(31))
	if code != http.StatusAccepted {
		t.Fatalf("submit returned %d", code)
	}
	waitDone(t, m, st.ID)
	v1, code := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("/v1 result returned %d", code)
	}
	legacy, code := getBody(t, ts.URL+"/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("legacy result returned %d", code)
	}
	if !bytes.Equal(v1, legacy) {
		t.Fatal("/v1 and legacy result bytes differ")
	}
	// And submission works on /v1 directly.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(testSpecJSON(32)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/v1 submit returned %d", resp.StatusCode)
	}
}

// TestPoliciesEndpointMatchesRegistry is the guard: GET /v1/policies must
// stay in lockstep with the policy registry — every registered schema
// present under its role, every alias attributed, every parameter carrying
// a kind and a default. A policy registered without a schema cannot exist
// (the registry rejects it), and one missing from the discovery payload
// fails here.
func TestPoliciesEndpointMatchesRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	body, code := getBody(t, ts.URL+"/v1/policies")
	if code != http.StatusOK {
		t.Fatalf("/v1/policies returned %d", code)
	}
	var catalog PolicyCatalog
	if err := json.Unmarshal(body, &catalog); err != nil {
		t.Fatal(err)
	}
	reg := policy.Default()
	for _, role := range []struct {
		role policy.Role
		got  []policy.SchemaInfo
	}{
		{policy.RoleDemote, catalog.Demote},
		{policy.RoleActive, catalog.Active},
	} {
		schemas := reg.Schemas(role.role)
		if len(role.got) != len(schemas) {
			t.Fatalf("%s: endpoint lists %d policies, registry has %d",
				role.role, len(role.got), len(schemas))
		}
		listed := map[string]policy.SchemaInfo{}
		var aliases []string
		for _, info := range role.got {
			listed[info.Name] = info
			aliases = append(aliases, info.Aliases...)
		}
		for _, s := range schemas {
			info, ok := listed[s.Name]
			if !ok {
				t.Fatalf("%s %q registered but not listed", role.role, s.Name)
			}
			if len(info.Params) != len(s.Params) {
				t.Fatalf("%s %q: %d params listed, schema has %d",
					role.role, s.Name, len(info.Params), len(s.Params))
			}
			for _, p := range info.Params {
				if p.Kind == "" || p.Default == "" {
					t.Fatalf("%s %q parameter %q missing kind or default", role.role, s.Name, p.Name)
				}
			}
			if info.TraceFitted != s.TraceFitted || info.GapLookahead != s.GapLookahead {
				t.Fatalf("%s %q capabilities drifted", role.role, s.Name)
			}
		}
		want := reg.Aliases(role.role)
		if len(aliases) != len(want) {
			t.Fatalf("%s: endpoint lists aliases %v, registry has %v", role.role, aliases, want)
		}
	}
}

// TestSweepMatchesSeparateJobs is the acceptance criterion: one POST
// /v1/jobs sweeping three parameterized fixedtail schemes returns
// per-scheme summaries byte-identical to three separate single-scheme
// jobs on the same seed.
func TestSweepMatchesSeparateJobs(t *testing.T) {
	ts, m := newTestServer(t)
	cohort := `"users": 4, "seed": 51, "duration": "15m", "shards": 4`
	schemes := []string{
		`{"policy": {"name": "fixedtail", "params": {"wait": "2s"}}}`,
		`{"policy": {"name": "fixedtail"}}`,
		`{"policy": {"name": "fixedtail", "params": {"wait": "8s"}}}`,
	}
	type result struct {
		Schemes map[string]json.RawMessage `json:"schemes"`
	}
	fetchSchemes := func(body string) map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st jobs.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s returned %d", body, resp.StatusCode)
		}
		waitDone(t, m, st.ID)
		raw, code := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("result returned %d: %s", code, raw)
		}
		var r result
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Fatal(err)
		}
		return r.Schemes
	}

	separate := map[string]json.RawMessage{}
	for _, s := range schemes {
		got := fetchSchemes(fmt.Sprintf(`{%s, "schemes": [%s]}`, cohort, s))
		if len(got) != 1 {
			t.Fatalf("single-scheme job returned %d schemes", len(got))
		}
		for label, stats := range got {
			separate[label] = stats
		}
	}
	sweep := fetchSchemes(fmt.Sprintf(`{%s, "schemes": [%s]}`, cohort, strings.Join(schemes, ", ")))
	if len(sweep) != len(schemes) {
		t.Fatalf("sweep returned %d schemes, want %d", len(sweep), len(schemes))
	}
	for label, stats := range sweep {
		want, ok := separate[label]
		if !ok {
			t.Fatalf("sweep scheme %q has no separate-job counterpart (have %v)",
				label, keysOf(separate))
		}
		if !bytes.Equal(stats, want) {
			t.Fatalf("scheme %q: sweep summary differs from the separate job:\n%s\nvs\n%s",
				label, stats, want)
		}
	}
}

// TestLegacyFlatPayloadOnV1: the back-compat mapping — a flat-name
// payload and its explicit spec form share a fingerprint, so the second
// submission is a cache hit with byte-identical results.
func TestLegacyFlatPayloadOnV1(t *testing.T) {
	ts, m := newTestServer(t)
	flat, code := postJob(t, ts, `{"users": 3, "seed": 52, "duration": "10m", "shards": 4, "policy": "4.5s"}`)
	if code != http.StatusAccepted {
		t.Fatalf("flat submit returned %d", code)
	}
	waitDone(t, m, flat.ID)
	speced, code := postJob(t, ts, `{"users": 3, "seed": 52, "duration": "10m", "shards": 4,
		"schemes": [{"label": "4.5s", "policy": {"name": "fixedtail", "params": {"wait": 4500000000}}}]}`)
	if code != http.StatusOK {
		t.Fatalf("spec-form submit returned %d, want 200 (cache hit)", code)
	}
	if !speced.CacheHit || speced.Fingerprint != flat.Fingerprint {
		t.Fatalf("spec form did not hit the flat form's cache entry: %+v", speced)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
