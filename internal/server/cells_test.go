package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/store"
)

// newStoreServer is newTestServer with a durable store under dir backing
// the manager's cell cache.
func newStoreServer(t *testing.T, dir string) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	old := pollInterval
	pollInterval = 5 * time.Millisecond
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m := jobs.NewManager(jobs.Config{Store: st})
	ts := httptest.NewServer(New(m))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		st.Close()
		pollInterval = old
	})
	return ts, m
}

// TestCellEndpoint drives GET /v1/cells/{fingerprint} across process
// lives: a grid job's cells are addressable by the fingerprints its
// result advertises, byte-identical to the ?cell=N renderings; a second
// service over the same store directory serves the same bytes with zero
// recomputation; unknown fingerprints 404; and /healthz exposes the
// store gauges.
func TestCellEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv1, m1 := newStoreServer(t, dir)
	body := fmt.Sprintf(`{"seed": 71, "shards": 2, "schemes": [%s, %s], "profiles": [%s, %s], "cohorts": [%s]}`,
		gridSchemes[0], gridSchemes[1], gridProfiles[0], gridProfiles[1],
		`{"name": "study-3g", "params": {"users": 2, "duration": "5m"}}`)
	id := submitAndWait(t, &gridServer{srv: srv1, m: m1}, body)

	raw, code := getBody(t, srv1.URL+"/v1/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result returned %d: %s", code, raw)
	}
	var grid report.GridStats
	if err := json.Unmarshal(raw, &grid); err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(grid.Cells))
	}
	wantCell := make([][]byte, len(grid.Cells))
	for i, c := range grid.Cells {
		if len(c.Fingerprint) != 64 {
			t.Fatalf("cell %d fingerprint %q is not a 64-hex key", i, c.Fingerprint)
		}
		cellN, code := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/result?cell=%d", srv1.URL, id, i))
		if code != http.StatusOK {
			t.Fatalf("?cell=%d returned %d", i, code)
		}
		byFP, code := getBody(t, srv1.URL+"/v1/cells/"+c.Fingerprint)
		if code != http.StatusOK {
			t.Fatalf("/v1/cells/%s returned %d", c.Fingerprint, code)
		}
		if !bytes.Equal(cellN, byFP) {
			t.Fatalf("cell %d: fingerprint route differs from ?cell route", i)
		}
		wantCell[i] = byFP
	}

	// A fresh service over the same store directory serves the same cells
	// without executing anything.
	srv2, m2 := newStoreServer(t, t.TempDir())
	_ = m2
	if _, code := getBody(t, srv2.URL+"/v1/cells/"+grid.Cells[0].Fingerprint); code != http.StatusNotFound {
		t.Fatalf("empty store served a cell (code %d)", code)
	}
	srv3, m3 := newStoreServer(t, dir)
	for i, c := range grid.Cells {
		got, code := getBody(t, srv3.URL+"/v1/cells/"+c.Fingerprint)
		if code != http.StatusOK {
			t.Fatalf("restarted service: /v1/cells/%s returned %d", c.Fingerprint, code)
		}
		if !bytes.Equal(wantCell[i], got) {
			t.Fatalf("restarted service: cell %d bytes differ", i)
		}
	}
	if m3.CellsExecuted() != 0 {
		t.Fatalf("restarted service executed %d cells serving store reads", m3.CellsExecuted())
	}

	if _, code := getBody(t, srv3.URL+"/v1/cells/"+strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("unknown fingerprint returned %d, want 404", code)
	}

	hb, _ := getBody(t, srv3.URL+"/healthz")
	var health struct {
		CellsExecuted uint64       `json:"cells_executed"`
		Store         *store.Stats `json:"store"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Store == nil {
		t.Fatalf("healthz missing store gauges: %s", hb)
	}
	if health.Store.Cells != 4 || health.Store.Hits < 4 {
		t.Fatalf("store gauges off: %+v", health.Store)
	}
}
