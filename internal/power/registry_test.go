package power

import (
	"strings"
	"testing"
	"time"

	"repro/internal/spec"
)

// TestProfileValidatePathological is the table-driven guard for custom
// profiles: every malformed field pattern must be rejected, and the legal
// oddities of Table 2 (t2 > t1, t2 = 0 with a dummy t2 power) must not.
func TestProfileValidatePathological(t *testing.T) {
	valid := func() Profile { return Verizon3G } // a known-good base to mutate
	cases := []struct {
		name    string
		mutate  func(*Profile)
		wantErr error // nil means the profile must validate
	}{
		{"base profile valid", func(p *Profile) {}, nil},
		{"empty name", func(p *Profile) { p.Name = "" }, ErrNoName},
		{"negative t1 timer", func(p *Profile) { p.T1 = -time.Second }, ErrBadTimer},
		{"zero t1 timer", func(p *Profile) { p.T1 = 0 }, ErrBadTimer},
		{"negative t2 timer", func(p *Profile) { p.T2 = -time.Second }, ErrBadTimer},
		{"zero send power", func(p *Profile) { p.SendMW = 0 }, ErrBadPower},
		{"negative send power", func(p *Profile) { p.SendMW = -10 }, ErrBadPower},
		{"zero recv power", func(p *Profile) { p.RecvMW = 0 }, ErrBadPower},
		{"negative t1 power", func(p *Profile) { p.T1MW = -1 }, ErrBadPower},
		{"t2 set but t2 power zero", func(p *Profile) { p.T2 = time.Second; p.T2MW = 0 }, ErrT2PowerNeeded},
		{"t2 set but t2 power negative", func(p *Profile) { p.T2 = time.Second; p.T2MW = -5 }, ErrT2PowerNeeded},
		// Table 2's T-Mobile row has t2 (16.3 s) > t1 (3.2 s): the FACH
		// stage may legitimately outlast the DCH stage.
		{"t2 longer than t1 is legal", func(p *Profile) { p.T2 = 20 * time.Second; p.T2MW = 300 }, nil},
		{"t2 zero with stale t2 power is legal", func(p *Profile) { p.T2 = 0; p.T2MW = 1130 }, nil},
		{"LTE with nonzero t2", func(p *Profile) { p.Tech = TechLTE; p.T2 = time.Second; p.T2MW = 1 }, ErrBadTech},
		{"dormancy fraction zero", func(p *Profile) { p.DormancyFraction = 0 }, ErrBadDormancy},
		{"dormancy fraction negative", func(p *Profile) { p.DormancyFraction = -0.5 }, ErrBadDormancy},
		{"dormancy fraction above one", func(p *Profile) { p.DormancyFraction = 1.5 }, ErrBadDormancy},
		{"dormancy fraction exactly one is legal", func(p *Profile) { p.DormancyFraction = 1 }, nil},
		{"zero uplink rate", func(p *Profile) { p.UplinkMbps = 0 }, ErrBadLinkRate},
		{"negative downlink rate", func(p *Profile) { p.DownlinkMbps = -1 }, ErrBadLinkRate},
		{"zero promotion delay", func(p *Profile) { p.PromotionDelay = 0 }, ErrBadPromotion},
		{"negative promotion power", func(p *Profile) { p.PromotionMW = -1 }, ErrBadPromotion},
		{"zero radio-off energy", func(p *Profile) { p.RadioOffJ = 0 }, ErrBadRadioOff},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := valid()
			c.mutate(&p)
			err := p.Validate()
			if c.wantErr == nil {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want %v", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr.Error()) {
				t.Fatalf("got %v, want %v", err, c.wantErr)
			}
		})
	}
}

// TestRegistryDefaultsMatchTable2Vars: every base schema built at its
// defaults reproduces the measured profile var field for field (the
// registry is derived from the vars, and this guards against drift).
func TestRegistryDefaultsMatchTable2Vars(t *testing.T) {
	cases := []struct {
		name string
		want Profile
	}{
		{"tmobile-3g", TMobile3G},
		{"att-hspa+", ATTHSPAPlus},
		{"verizon-3g", Verizon3G},
		{"verizon-lte", VerizonLTE},
	}
	for _, c := range cases {
		got, err := Default().NamedProfile(spec.Spec{Name: c.name}, c.want.Name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s built from defaults differs from the var:\n got %+v\nwant %+v", c.name, got, c.want)
		}
	}
}

// TestByNameShimAcceptsBothSpellings: the compatibility shim resolves
// legacy display names (keeping their spelling) and canonical names, and
// still rejects unknowns.
func TestByNameShimAcceptsBothSpellings(t *testing.T) {
	p, ok := ByName("Verizon 3G")
	if !ok || p.Name != "Verizon 3G" || p != Verizon3G {
		t.Fatalf("display-name lookup broke: ok=%v %+v", ok, p)
	}
	p, ok = ByName("verizon-lte")
	if !ok || p.Name != "verizon-lte" || p.T1 != VerizonLTE.T1 {
		t.Fatalf("canonical lookup broke: ok=%v %+v", ok, p)
	}
	if _, ok := ByName("Nokia 1G"); ok {
		t.Fatal("unknown profile resolved")
	}
	carriers := Carriers()
	want := []Profile{TMobile3G, ATTHSPAPlus, Verizon3G, VerizonLTE}
	if len(carriers) != len(want) {
		t.Fatalf("Carriers() returned %d profiles", len(carriers))
	}
	for i := range want {
		if carriers[i] != want[i] {
			t.Errorf("Carriers()[%d] = %+v, want %+v", i, carriers[i], want[i])
		}
	}
}

// TestProfileKnobOverrides: every measured constant is an overridable,
// bounds-checked knob, and overrides propagate into the built profile.
func TestProfileKnobOverrides(t *testing.T) {
	p, err := Default().Profile(spec.Spec{Name: "verizon-lte", Params: map[string]any{
		"t1": "5s", "t1power": 1000, "dormancy": 0.2, "uplink": 4.0,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if p.T1 != 5*time.Second || p.T1MW != 1000 || p.DormancyFraction != 0.2 || p.UplinkMbps != 4.0 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	if p.Name != "verizon-lte(t1=5s,t1power=1000,dormancy=0.2,uplink=4)" {
		t.Fatalf("label %q does not list the non-default knobs in declaration order", p.Name)
	}
	// Untouched knobs keep their measured defaults.
	if p.SendMW != VerizonLTE.SendMW || p.PromotionDelay != VerizonLTE.PromotionDelay {
		t.Fatalf("defaults drifted: %+v", p)
	}

	for _, bad := range []spec.Spec{
		{Name: "verizon-lte", Params: map[string]any{"t1": "-1s"}},
		{Name: "verizon-lte", Params: map[string]any{"dormancy": 1.5}},
		{Name: "verizon-lte", Params: map[string]any{"t2": "1s"}}, // LTE has no t2 knob
		{Name: "verizon-3g", Params: map[string]any{"sendmw": 100}},
		{Name: "warp-radio"},
	} {
		if _, err := Default().Profile(bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	// 3G profiles do expose t2 — including t2 > t1, per Table 2.
	p3, err := Default().Profile(spec.Spec{Name: "verizon-3g", Params: map[string]any{"t2": "12s"}})
	if err != nil {
		t.Fatal(err)
	}
	if p3.T2 != 12*time.Second {
		t.Fatalf("t2 override not applied: %+v", p3)
	}
	if p3.T2 <= p3.T1 {
		t.Fatalf("test meant to exercise t2 > t1: %+v", p3)
	}
}

// TestProfileCanonicalStability: alias spelling, omitted defaults,
// param-map order and value spellings all encode identically; any value
// change moves the encoding.
func TestProfileCanonicalStability(t *testing.T) {
	reg := Default()
	want, err := reg.Canonical(spec.Spec{Name: "verizon-lte"})
	if err != nil {
		t.Fatal(err)
	}
	equal := []spec.Spec{
		{Name: "Verizon LTE"},
		{Name: "verizon-lte", Params: map[string]any{"t1": "10.2s"}},
		{Name: "verizon-lte", Params: map[string]any{"t1": "10200ms", "dormancy": 0.5}},
		{Name: "Verizon LTE", Params: map[string]any{"uplink": 8}},
	}
	for i, s := range equal {
		got, err := reg.Canonical(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("equivalent spec %d encoded %q, want %q", i, got, want)
		}
	}
	changed, err := reg.Canonical(spec.Spec{Name: "verizon-lte", Params: map[string]any{"t1": "5s"}})
	if err != nil {
		t.Fatal(err)
	}
	if changed == want {
		t.Fatal("t1 override did not change the canonical encoding")
	}
}
