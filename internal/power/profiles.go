package power

import (
	"time"

	"repro/internal/spec"
)

// This file carries the paper's measured carrier parameters.
//
// Power and timer values are Table 2 verbatim; send/receive powers for the
// Verizon devices are Table 1 (the T-Mobile and AT&T send/recv values are
// also listed in Table 2). Promotion delays are the Boston-area measurements
// quoted in §2.1. Radio-off energy is not tabulated in the paper; we model
// it as roughly one second of Active-state power, which is the right order
// of magnitude for the radio-off sequence the paper measured, and expose it
// as plain data so it can be changed. The 0.5 dormancy fraction is the
// paper's §6.1 modelling assumption.

// TMobile3G is the T-Mobile 3G profile (Nexus S measurements).
var TMobile3G = Profile{
	Name:             "T-Mobile 3G",
	Tech:             Tech3G,
	SendMW:           1202,
	RecvMW:           737,
	T1MW:             445,
	T2MW:             343,
	T1:               3200 * time.Millisecond,
	T2:               16300 * time.Millisecond,
	PromotionDelay:   3600 * time.Millisecond,
	PromotionMW:      445,
	RadioOffJ:        0.45,
	DormancyFraction: 0.5,
	UplinkMbps:       1.0,
	DownlinkMbps:     4.0,
}

// ATTHSPAPlus is the AT&T HSPA+ profile (HTC Vivid measurements).
var ATTHSPAPlus = Profile{
	Name:             "AT&T HSPA+",
	Tech:             Tech3G,
	SendMW:           1539,
	RecvMW:           1212,
	T1MW:             916,
	T2MW:             659,
	T1:               6200 * time.Millisecond,
	T2:               10400 * time.Millisecond,
	PromotionDelay:   1400 * time.Millisecond,
	PromotionMW:      916,
	RadioOffJ:        0.92,
	DormancyFraction: 0.5,
	UplinkMbps:       1.5,
	DownlinkMbps:     6.0,
}

// Verizon3G is the Verizon 3G profile (Galaxy Nexus measurements). Table 2
// could not distinguish t1 from t2 on this network, so t2 = 0 and the whole
// tail runs at the single measured tail power.
var Verizon3G = Profile{
	Name:             "Verizon 3G",
	Tech:             Tech3G,
	SendMW:           2043,
	RecvMW:           1177,
	T1MW:             1130,
	T2MW:             1130,
	T1:               9800 * time.Millisecond,
	T2:               0,
	PromotionDelay:   1200 * time.Millisecond,
	PromotionMW:      1130,
	RadioOffJ:        1.13,
	DormancyFraction: 0.5,
	UplinkMbps:       0.8,
	DownlinkMbps:     2.0,
}

// VerizonLTE is the Verizon LTE profile (Galaxy Nexus measurements).
var VerizonLTE = Profile{
	Name:             "Verizon LTE",
	Tech:             TechLTE,
	SendMW:           2928,
	RecvMW:           1737,
	T1MW:             1325,
	T2MW:             0,
	T1:               10200 * time.Millisecond,
	T2:               0,
	PromotionDelay:   600 * time.Millisecond,
	PromotionMW:      1325,
	RadioOffJ:        1.33,
	DormancyFraction: 0.5,
	UplinkMbps:       8.0,
	DownlinkMbps:     20.0,
}

// Carriers lists the four Table 2 profiles in the order the paper's
// cross-carrier figures (17 and 18) use. It is a compatibility shim over
// the profile registry: each entry is the registry's base schema built at
// its measured defaults, carrying the legacy display name.
func Carriers() []Profile {
	r := Default()
	out := make([]Profile, 0, len(carrierOrder))
	for _, name := range carrierOrder {
		display, _ := r.display(name)
		p, err := r.NamedProfile(spec.Spec{Name: name}, display)
		if err != nil {
			panic(err) // impossible: the built-in registry builds its own defaults
		}
		out = append(out, p)
	}
	return out
}

// ByName returns the profile registered under the given name — a legacy
// display name ("Verizon 3G") or a canonical schema name ("verizon-3g") —
// if any. It is a compatibility shim over registry alias lookup: the
// returned profile keeps the requested spelling as its Name, exactly as
// the pre-registry closed set did. Parameterized lookups go through the
// registry directly (or ProfileSpec).
func ByName(name string) (Profile, bool) {
	p, err := Default().NamedProfile(spec.Spec{Name: name}, name)
	if err != nil {
		return Profile{}, false
	}
	return p, true
}
