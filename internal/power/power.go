// Package power models the radio power characteristics of a cellular
// network/device pair: per-state power draw, inactivity timer settings,
// state-switch costs and link rates.
//
// A Profile corresponds to one row of Table 2 in the paper (plus the
// transmission powers of Table 1 and the promotion delays of §2.1). The
// profiles shipped here carry the paper's measured values for the four US
// carriers; they are plain data, so downstream users can define their own.
//
// Units follow the paper's tables: power in milliwatts, time in seconds
// (expressed as time.Duration), energy in joules.
package power

import (
	"errors"
	"fmt"
	"time"
)

// Tech distinguishes the two RRC state-machine shapes in the paper (Fig. 2):
// three-state 3G (DCH / FACH / Idle) and two-state LTE (CONNECTED / IDLE).
type Tech uint8

const (
	// Tech3G is the 3GPP WCDMA-style machine with two inactivity timers.
	Tech3G Tech = iota
	// TechLTE is the LTE machine: one connected state, one timer
	// (equivalently, the 3G model with t2 = 0, per Fig. 5).
	TechLTE
)

// String returns "3G" or "LTE".
func (t Tech) String() string {
	switch t {
	case Tech3G:
		return "3G"
	case TechLTE:
		return "LTE"
	default:
		return fmt.Sprintf("Tech(%d)", uint8(t))
	}
}

// Profile describes one carrier/device combination.
//
// The zero value is not usable; construct profiles literally and check them
// with Validate, or use the predefined Table 2 profiles.
type Profile struct {
	// Name identifies the profile in reports (e.g. "Verizon 3G").
	Name string
	// Tech selects the RRC machine shape.
	Tech Tech

	// SendMW and RecvMW are the average radio power while transmitting and
	// receiving bulk data (Table 1), in milliwatts, with CPU/screen
	// subtracted.
	SendMW, RecvMW float64

	// T1MW is the power drawn in the Active tail state (Cell_DCH /
	// RRC_CONNECTED) while no data moves; T2MW likewise for the
	// high-power idle state (Cell_FACH). T2MW is ignored when T2 is zero.
	T1MW, T2MW float64

	// T1 and T2 are the inactivity timers maintained by the base station
	// (Fig. 2). T2 is zero for LTE profiles and for 3G networks where the
	// two stages cannot be distinguished (Table 2's Verizon 3G row).
	T1, T2 time.Duration

	// PromotionDelay is the measured Idle->Active switch latency (§2.1).
	// Packets that find the radio Idle are delayed by this much.
	PromotionDelay time.Duration

	// PromotionMW is the power drawn during promotion signaling. The
	// paper folds this into a fixed Eswitch; we model it explicitly so the
	// power timeline of Fig. 3 can be regenerated.
	PromotionMW float64

	// RadioOffJ is the measured energy to turn the data connection off:
	// the paper's proxy for the cost of a fast-dormancy demotion (§6.1).
	RadioOffJ float64

	// DormancyFraction scales RadioOffJ into the modelled fast-dormancy
	// demotion energy (the paper uses 0.5 and checks 0.1/0.2/0.4).
	DormancyFraction float64

	// UplinkMbps and DownlinkMbps are nominal link rates used only to
	// convert packet sizes into transmission time for the data-energy
	// term of the model (§6.1: energy within a burst is time x power).
	UplinkMbps, DownlinkMbps float64
}

// Validation errors.
var (
	ErrNoName        = errors.New("power: profile has no name")
	ErrBadPower      = errors.New("power: power values must be positive")
	ErrBadTimer      = errors.New("power: inactivity timers must be non-negative, T1 > 0")
	ErrBadTech       = errors.New("power: LTE profiles must have T2 == 0")
	ErrBadDormancy   = errors.New("power: DormancyFraction must be in (0, 1]")
	ErrBadLinkRate   = errors.New("power: link rates must be positive")
	ErrBadPromotion  = errors.New("power: promotion delay/power must be positive")
	ErrBadRadioOff   = errors.New("power: RadioOffJ must be positive")
	ErrT2PowerNeeded = errors.New("power: T2MW must be positive when T2 > 0")
)

// Validate checks profile consistency. Every public entry point that accepts
// a Profile calls this; it is exported so user-defined profiles can be
// checked eagerly.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return ErrNoName
	case p.SendMW <= 0 || p.RecvMW <= 0 || p.T1MW <= 0:
		return fmt.Errorf("%w (profile %q)", ErrBadPower, p.Name)
	case p.T1 <= 0 || p.T2 < 0:
		return fmt.Errorf("%w (profile %q)", ErrBadTimer, p.Name)
	case p.Tech == TechLTE && p.T2 != 0:
		return fmt.Errorf("%w (profile %q)", ErrBadTech, p.Name)
	case p.T2 > 0 && p.T2MW <= 0:
		return fmt.Errorf("%w (profile %q)", ErrT2PowerNeeded, p.Name)
	case p.DormancyFraction <= 0 || p.DormancyFraction > 1:
		return fmt.Errorf("%w (profile %q)", ErrBadDormancy, p.Name)
	case p.UplinkMbps <= 0 || p.DownlinkMbps <= 0:
		return fmt.Errorf("%w (profile %q)", ErrBadLinkRate, p.Name)
	case p.PromotionDelay <= 0 || p.PromotionMW <= 0:
		return fmt.Errorf("%w (profile %q)", ErrBadPromotion, p.Name)
	case p.RadioOffJ <= 0:
		return fmt.Errorf("%w (profile %q)", ErrBadRadioOff, p.Name)
	}
	return nil
}

// Tail returns the total timer-controlled tail duration t1+t2.
func (p *Profile) Tail() time.Duration { return p.T1 + p.T2 }

// PromotionJ is the energy consumed by one Idle->Active promotion:
// promotion power over the promotion delay.
func (p *Profile) PromotionJ() float64 {
	return p.PromotionMW / 1000 * p.PromotionDelay.Seconds()
}

// DormancyJ is the modelled energy of one fast-dormancy (Active->Idle)
// demotion: DormancyFraction of the measured radio-off energy.
func (p *Profile) DormancyJ() float64 {
	return p.DormancyFraction * p.RadioOffJ
}

// SwitchJ is the paper's Eswitch: the energy consumed by demoting the radio
// to Idle after a transmission and promoting it back for the next one.
func (p *Profile) SwitchJ() float64 {
	return p.DormancyJ() + p.PromotionJ()
}

// TxTime returns the modelled transmission time for size bytes in the given
// direction at the profile's nominal link rate.
func (p *Profile) TxTime(size int, uplink bool) time.Duration {
	rate := p.DownlinkMbps
	if uplink {
		rate = p.UplinkMbps
	}
	secs := float64(size) * 8 / (rate * 1e6)
	return time.Duration(secs * float64(time.Second))
}

// TxPowerMW returns the active transmission power for a direction.
func (p *Profile) TxPowerMW(uplink bool) float64 {
	if uplink {
		return p.SendMW
	}
	return p.RecvMW
}

// clone returns a copy so callers can tweak predefined profiles without
// mutating package state.
func (p Profile) clone() Profile { return p }

// WithDormancyFraction returns a copy of the profile with the fast-dormancy
// cost fraction replaced. Used by the sensitivity experiment (§6.1 caveat).
func (p Profile) WithDormancyFraction(f float64) Profile {
	q := p.clone()
	q.DormancyFraction = f
	q.Name = fmt.Sprintf("%s (dormancy %g)", p.Name, f)
	return q
}
