package power

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPredefinedProfilesValid(t *testing.T) {
	for _, p := range Carriers() {
		p := p
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestTable2Values(t *testing.T) {
	// Spot-check the constants against Table 2 of the paper.
	cases := []struct {
		p      Profile
		send   float64
		t1MW   float64
		t1, t2 time.Duration
		tech   Tech
	}{
		{TMobile3G, 1202, 445, 3200 * time.Millisecond, 16300 * time.Millisecond, Tech3G},
		{ATTHSPAPlus, 1539, 916, 6200 * time.Millisecond, 10400 * time.Millisecond, Tech3G},
		{Verizon3G, 2043, 1130, 9800 * time.Millisecond, 0, Tech3G},
		{VerizonLTE, 2928, 1325, 10200 * time.Millisecond, 0, TechLTE},
	}
	for _, c := range cases {
		if c.p.SendMW != c.send || c.p.T1MW != c.t1MW || c.p.T1 != c.t1 || c.p.T2 != c.t2 || c.p.Tech != c.tech {
			t.Errorf("%s: table values drifted: %+v", c.p.Name, c.p)
		}
	}
}

func TestTechString(t *testing.T) {
	if Tech3G.String() != "3G" || TechLTE.String() != "LTE" {
		t.Fatalf("tech strings: %v %v", Tech3G, TechLTE)
	}
	if !strings.Contains(Tech(9).String(), "9") {
		t.Fatalf("unknown tech: %v", Tech(9))
	}
}

func TestValidateRejects(t *testing.T) {
	base := ATTHSPAPlus // valid
	mutations := []struct {
		name string
		mut  func(*Profile)
	}{
		{"no name", func(p *Profile) { p.Name = "" }},
		{"zero send", func(p *Profile) { p.SendMW = 0 }},
		{"negative recv", func(p *Profile) { p.RecvMW = -1 }},
		{"zero t1 power", func(p *Profile) { p.T1MW = 0 }},
		{"zero t1", func(p *Profile) { p.T1 = 0 }},
		{"negative t2", func(p *Profile) { p.T2 = -time.Second }},
		{"t2 power missing", func(p *Profile) { p.T2MW = 0 }},
		{"lte with t2", func(p *Profile) { p.Tech = TechLTE }},
		{"dormancy 0", func(p *Profile) { p.DormancyFraction = 0 }},
		{"dormancy >1", func(p *Profile) { p.DormancyFraction = 1.5 }},
		{"zero uplink", func(p *Profile) { p.UplinkMbps = 0 }},
		{"zero downlink", func(p *Profile) { p.DownlinkMbps = 0 }},
		{"zero promotion delay", func(p *Profile) { p.PromotionDelay = 0 }},
		{"zero promotion power", func(p *Profile) { p.PromotionMW = 0 }},
		{"zero radio off", func(p *Profile) { p.RadioOffJ = 0 }},
	}
	for _, m := range mutations {
		p := base
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %q accepted", m.name)
		}
	}
}

func TestTail(t *testing.T) {
	if got := ATTHSPAPlus.Tail(); got != 16600*time.Millisecond {
		t.Fatalf("AT&T tail = %v, want 16.6s", got)
	}
	if got := VerizonLTE.Tail(); got != VerizonLTE.T1 {
		t.Fatalf("LTE tail = %v, want t1", got)
	}
}

func TestSwitchEnergyComposition(t *testing.T) {
	p := ATTHSPAPlus
	wantProm := p.PromotionMW / 1000 * p.PromotionDelay.Seconds()
	if got := p.PromotionJ(); math.Abs(got-wantProm) > 1e-12 {
		t.Fatalf("PromotionJ = %v, want %v", got, wantProm)
	}
	if got := p.DormancyJ(); math.Abs(got-0.5*p.RadioOffJ) > 1e-12 {
		t.Fatalf("DormancyJ = %v", got)
	}
	if got := p.SwitchJ(); math.Abs(got-(p.PromotionJ()+p.DormancyJ())) > 1e-12 {
		t.Fatalf("SwitchJ = %v", got)
	}
}

func TestTxTime(t *testing.T) {
	p := Profile{UplinkMbps: 1, DownlinkMbps: 8}
	// 1 Mb at 1 Mbps uplink = 1 s.
	if got := p.TxTime(125000, true); got != time.Second {
		t.Fatalf("uplink TxTime = %v, want 1s", got)
	}
	// Same bytes at 8 Mbps downlink = 125 ms.
	if got := p.TxTime(125000, false); got != 125*time.Millisecond {
		t.Fatalf("downlink TxTime = %v, want 125ms", got)
	}
	if got := p.TxTime(0, true); got != 0 {
		t.Fatalf("zero-size TxTime = %v", got)
	}
}

func TestTxPower(t *testing.T) {
	p := VerizonLTE
	if p.TxPowerMW(true) != p.SendMW || p.TxPowerMW(false) != p.RecvMW {
		t.Fatal("TxPowerMW direction mix-up")
	}
}

func TestWithDormancyFraction(t *testing.T) {
	orig := Verizon3G
	mod := orig.WithDormancyFraction(0.1)
	if mod.DormancyFraction != 0.1 {
		t.Fatalf("fraction not applied: %v", mod.DormancyFraction)
	}
	if orig.DormancyFraction != 0.5 {
		t.Fatal("WithDormancyFraction mutated the original")
	}
	if !strings.Contains(mod.Name, "0.1") {
		t.Fatalf("name should mention fraction: %q", mod.Name)
	}
	if err := mod.Validate(); err != nil {
		t.Fatalf("modified profile invalid: %v", err)
	}
}

func TestByName(t *testing.T) {
	p, ok := ByName("Verizon LTE")
	if !ok || p.Tech != TechLTE {
		t.Fatalf("ByName failed: %v %v", p, ok)
	}
	if _, ok := ByName("Sprint 5G"); ok {
		t.Fatal("unknown name found")
	}
}

func TestPropertySwitchEnergyPositiveAndMonotone(t *testing.T) {
	// For any valid dormancy fraction, SwitchJ is positive and increases
	// with the fraction.
	f := func(fracRaw uint8) bool {
		frac := 0.05 + float64(fracRaw%90)/100 // (0.05 .. 0.94]
		p := ATTHSPAPlus.WithDormancyFraction(frac)
		q := ATTHSPAPlus.WithDormancyFraction(frac + 0.05)
		return p.SwitchJ() > 0 && q.SwitchJ() > p.SwitchJ()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLTEPromotionFasterThan3G(t *testing.T) {
	// §2.1: Verizon LTE promotions (~0.6 s) are faster than its 3G (~1.2 s).
	if VerizonLTE.PromotionDelay >= Verizon3G.PromotionDelay {
		t.Fatal("LTE promotion should be faster than 3G")
	}
}
