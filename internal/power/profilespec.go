package power

import "repro/internal/spec"

// ProfileSpec is the declarative form of a carrier profile: a registered
// base schema name (or legacy alias) with parameter overrides and an
// optional summary label. It is one axis value of the service's grid jobs
// and serializes over the /v1 HTTP API.
type ProfileSpec struct {
	// Label keys the profile in grid cells and reports; empty derives the
	// registry label (canonical name plus non-default parameters, e.g.
	// "verizon-lte(t1=5s)"). Legacy flat payloads set it to the historical
	// display name so their labels stay byte-identical.
	Label string `json:"label,omitempty"`
	// Name is the schema or alias name.
	Name string `json:"name"`
	// Params overrides schema parameters (typed values, JSON numbers, or
	// canonical strings).
	Params map[string]any `json:"params,omitempty"`
}

// Spec returns the underlying spec value.
func (ps ProfileSpec) Spec() spec.Spec { return spec.Spec{Name: ps.Name, Params: ps.Params} }

// ResolvedLabel returns the profile's axis label: the explicit Label, or
// the registry-derived one.
func (ps ProfileSpec) ResolvedLabel(r *Registry) (string, error) {
	if ps.Label != "" {
		return ps.Label, nil
	}
	return r.Label(ps.Spec())
}

// Canonical returns the byte-stable encoding of the profile axis value —
// "label|canonicalProfile" — which feeds the v4 job fingerprint: stable
// across alias spelling, param-map ordering and omitted defaults; changed
// by any parameter value or label change.
func (ps ProfileSpec) Canonical(r *Registry) (string, error) {
	label, err := ps.ResolvedLabel(r)
	if err != nil {
		return "", err
	}
	canon, err := r.Canonical(ps.Spec())
	if err != nil {
		return "", err
	}
	return label + "|" + canon, nil
}

// Profile resolves and builds the validated Profile, named by the
// resolved label.
func (ps ProfileSpec) Profile(r *Registry) (Profile, error) {
	label, err := ps.ResolvedLabel(r)
	if err != nil {
		return Profile{}, err
	}
	return r.NamedProfile(ps.Spec(), label)
}

// ResolvedProfile is one resolution pass over a profile axis value: the
// runnable Profile (named by the axis label), the label itself, and the
// axis canonical encoding ("label|canonicalProfile") — each byte-identical
// to Profile, ResolvedLabel and Canonical.
type ResolvedProfile struct {
	Profile   Profile
	Label     string
	Canonical string
}

// Resolution resolves the axis value once and returns the full bundle.
func (ps ProfileSpec) Resolution(r *Registry) (ResolvedProfile, error) {
	res, err := r.Resolution(ps.Spec())
	if err != nil {
		return ResolvedProfile{}, err
	}
	label := res.Label
	if ps.Label != "" {
		label = ps.Label
		res.Profile.Name = label
	}
	return ResolvedProfile{
		Profile:   res.Profile,
		Label:     label,
		Canonical: label + "|" + res.Canonical,
	}, nil
}
