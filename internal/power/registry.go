package power

import (
	"fmt"
	"time"

	"repro/internal/spec"
)

// This file makes the Table 2 carriers a self-describing registry: each
// carrier is a base schema whose every measured constant — inactivity
// timers, state powers, promotion delay and power, radio-off energy,
// dormancy fraction, link rates — is an overridable, bounds-checked knob.
// "verizon-lte(t1=5s)" is the paper's LTE profile with a 5-second
// inactivity timer, and the cross-carrier experiments (Figs. 17-18) are a
// list of profile specs instead of a closed slice. The legacy display
// names ("Verizon 3G") are registered as aliases, so every pre-registry
// surface keeps resolving — ByName and Carriers are thin shims over this
// registry.

// profileMeta is the domain payload of a profile schema: the RRC machine
// shape (not a knob — it decides which timers exist at all) and the
// paper's display name for the carrier.
type profileMeta struct {
	tech    Tech
	display string
}

// Registry resolves profile specs — "verizon-3g", "att-hspa+(t1=4s)", or
// a legacy display name — into validated Profiles.
type Registry struct {
	reg *spec.Registry
}

// NewRegistry returns an empty profile registry.
func NewRegistry() *Registry {
	return &Registry{reg: spec.NewRegistry("profile", func(s *spec.Schema) error {
		if _, ok := s.Meta.(profileMeta); !ok {
			return fmt.Errorf("power: profile schema %q has no tech/display meta", s.Name)
		}
		return nil
	})}
}

// Resolve expands aliases and resolves a spec's parameters against the
// profile schema (unknown parameters rejected, values coerced and
// bounds-checked, omitted parameters filled from the carrier's measured
// defaults).
func (r *Registry) Resolve(s spec.Spec) (*spec.Schema, spec.Params, error) {
	return r.reg.Resolve(s)
}

// Canonical returns the byte-stable encoding of a profile spec (canonical
// name, every parameter in declaration order). The v4 job fingerprint
// hashes these.
func (r *Registry) Canonical(s spec.Spec) (string, error) { return r.reg.Canonical(s) }

// Label returns the short human-readable form: canonical name plus only
// the non-default parameters, e.g. "verizon-lte(t1=5s)".
func (r *Registry) Label(s spec.Spec) (string, error) { return r.reg.Label(s) }

// Names lists every accepted profile name — canonical and alias — sorted.
func (r *Registry) Names() []string { return r.reg.Names() }

// Aliases lists the registered alias names sorted.
func (r *Registry) Aliases() []string { return r.reg.Aliases() }

// Schemas lists the registered profile schemas sorted by name.
func (r *Registry) Schemas() []*spec.Schema { return r.reg.Schemas() }

// Describe returns the serializable registry view — the payload of the
// GET /v1/profiles discovery endpoint.
func (r *Registry) Describe() []spec.SchemaInfo { return r.reg.Describe() }

// Usage renders the profile catalog for CLI error messages.
func (r *Registry) Usage() string { return r.reg.Usage() }

// Profile resolves a spec and builds the corresponding validated Profile.
// The profile's Name is the registry label ("verizon-lte" or
// "verizon-lte(t1=5s)"); use NamedProfile to override it (the legacy
// display names flow through that path).
func (r *Registry) Profile(s spec.Spec) (Profile, error) {
	label, err := r.Label(s)
	if err != nil {
		return Profile{}, err
	}
	return r.NamedProfile(s, label)
}

// NamedProfile is Profile with an explicit report/summary name.
func (r *Registry) NamedProfile(s spec.Spec, name string) (Profile, error) {
	schema, params, err := r.Resolve(s)
	if err != nil {
		return Profile{}, err
	}
	return buildProfile(schema, params, name)
}

// buildProfile assembles and validates a Profile from a resolved schema.
func buildProfile(schema *spec.Schema, params spec.Params, name string) (Profile, error) {
	meta := schema.Meta.(profileMeta)
	p := Profile{
		Name:             name,
		Tech:             meta.tech,
		SendMW:           params.Float("send"),
		RecvMW:           params.Float("recv"),
		T1MW:             params.Float("t1power"),
		T1:               params.Duration("t1"),
		PromotionDelay:   params.Duration("promodelay"),
		PromotionMW:      params.Float("promopower"),
		RadioOffJ:        params.Float("radiooff"),
		DormancyFraction: params.Float("dormancy"),
		UplinkMbps:       params.Float("uplink"),
		DownlinkMbps:     params.Float("downlink"),
	}
	if schema.Has("t2") {
		p.T2 = params.Duration("t2")
		p.T2MW = params.Float("t2power")
	}
	if err := p.Validate(); err != nil {
		return Profile{}, fmt.Errorf("profile %q: %w", schema.Name, err)
	}
	return p, nil
}

// ProfileResolution is one resolution pass over a profile spec: the
// validated Profile (named by the registry label) plus both registry
// encodings, byte-identical to Canonical and Label.
type ProfileResolution struct {
	Profile   Profile
	Canonical string
	Label     string
}

// Resolution resolves a profile spec once and returns the full bundle.
func (r *Registry) Resolution(s spec.Spec) (ProfileResolution, error) {
	res, err := r.reg.Resolution(s)
	if err != nil {
		return ProfileResolution{}, err
	}
	p, err := buildProfile(res.Schema, res.Params, res.Label)
	if err != nil {
		return ProfileResolution{}, err
	}
	return ProfileResolution{Profile: p, Canonical: res.Canonical, Label: res.Label}, nil
}

// Register adds a carrier base schema derived from a measured Profile:
// every field becomes a knob whose default is the measurement. LTE
// profiles declare no t2/t2power knobs — the machine shape has no second
// timer stage (Fig. 5), so it is structural, not tunable.
func (r *Registry) Register(name string, base Profile, summary string) error {
	params := []spec.ParamSpec{
		{Name: "t1", Kind: spec.KindDuration, Default: base.T1,
			Min: time.Millisecond, Max: 10 * time.Minute,
			Help: "DCH/CONNECTED inactivity timer t1 (Table 2)"},
	}
	if base.Tech == Tech3G {
		params = append(params,
			spec.ParamSpec{Name: "t2", Kind: spec.KindDuration, Default: base.T2,
				Min: time.Duration(0), Max: 10 * time.Minute,
				Help: "FACH inactivity timer t2 (0 when the stages are indistinct)"},
		)
	}
	params = append(params,
		spec.ParamSpec{Name: "t1power", Kind: spec.KindFloat, Default: base.T1MW,
			Min: 1.0, Max: 100_000.0, Help: "Active-tail state power (mW)"},
	)
	if base.Tech == Tech3G {
		params = append(params,
			spec.ParamSpec{Name: "t2power", Kind: spec.KindFloat, Default: base.T2MW,
				Min: 0.0, Max: 100_000.0, Help: "FACH state power (mW); ignored when t2 = 0"},
		)
	}
	params = append(params,
		spec.ParamSpec{Name: "send", Kind: spec.KindFloat, Default: base.SendMW,
			Min: 1.0, Max: 100_000.0, Help: "bulk transmit power (mW, Table 1)"},
		spec.ParamSpec{Name: "recv", Kind: spec.KindFloat, Default: base.RecvMW,
			Min: 1.0, Max: 100_000.0, Help: "bulk receive power (mW, Table 1)"},
		spec.ParamSpec{Name: "promodelay", Kind: spec.KindDuration, Default: base.PromotionDelay,
			Min: time.Millisecond, Max: time.Minute,
			Help: "Idle->Active promotion latency (§2.1)"},
		spec.ParamSpec{Name: "promopower", Kind: spec.KindFloat, Default: base.PromotionMW,
			Min: 1.0, Max: 100_000.0, Help: "power drawn during promotion signaling (mW)"},
		spec.ParamSpec{Name: "radiooff", Kind: spec.KindFloat, Default: base.RadioOffJ,
			Min: 0.001, Max: 1_000.0, Help: "measured radio-off energy (J, §6.1)"},
		spec.ParamSpec{Name: "dormancy", Kind: spec.KindFloat, Default: base.DormancyFraction,
			Min: 0.01, Max: 1.0,
			Help: "fraction of radiooff charged per fast-dormancy demotion"},
		spec.ParamSpec{Name: "uplink", Kind: spec.KindFloat, Default: base.UplinkMbps,
			Min: 0.01, Max: 10_000.0, Help: "nominal uplink rate (Mbps)"},
		spec.ParamSpec{Name: "downlink", Kind: spec.KindFloat, Default: base.DownlinkMbps,
			Min: 0.01, Max: 10_000.0, Help: "nominal downlink rate (Mbps)"},
	)
	return r.reg.Register(&spec.Schema{
		Name:    name,
		Summary: summary,
		Params:  params,
		Meta:    profileMeta{tech: base.Tech, display: base.Name},
	})
}

// Alias maps a legacy flat name (the Table 2 display names, spaces and
// all) to a profile spec.
func (r *Registry) Alias(name string, s spec.Spec) error { return r.reg.Alias(name, s) }

// display returns the paper display name of a canonical schema name.
func (r *Registry) display(name string) (string, bool) {
	s, ok := r.reg.Lookup(name)
	if !ok {
		return "", false
	}
	return s.Meta.(profileMeta).display, true
}

// carrierOrder lists the canonical schema names in the order the paper's
// cross-carrier figures (17 and 18) use.
var carrierOrder = []string{"tmobile-3g", "att-hspa+", "verizon-3g", "verizon-lte"}

// defaultRegistry holds the built-in Table 2 carriers; registration cannot
// fail, so errors panic (programming errors caught by any test).
var defaultRegistry = buildDefaultRegistry()

// Default returns the registry of built-in carrier profiles: the four
// Table 2 rows as parameterized base schemas plus their legacy display
// names as aliases.
func Default() *Registry { return defaultRegistry }

func buildDefaultRegistry() *Registry {
	r := NewRegistry()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Register("tmobile-3g", TMobile3G,
		"T-Mobile 3G (Nexus S): two-stage WCDMA machine, short t1, long FACH tail"))
	must(r.Register("att-hspa+", ATTHSPAPlus,
		"AT&T HSPA+ (HTC Vivid): two-stage machine, highest state powers of the 3G rows"))
	must(r.Register("verizon-3g", Verizon3G,
		"Verizon 3G (Galaxy Nexus): stages indistinct (t2 = 0), 9.8 s single tail"))
	must(r.Register("verizon-lte", VerizonLTE,
		"Verizon LTE (Galaxy Nexus): one CONNECTED state, 10.2 s timer"))
	for _, name := range carrierOrder {
		display, _ := r.display(name)
		must(r.Alias(display, spec.Spec{Name: name}))
	}
	return r
}
