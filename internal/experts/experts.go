// Package experts implements the online-learning machinery of the paper's
// appendix: the fixed-share "bank of experts" algorithm of Herbster &
// Warmuth (Tracking the Best Expert, 1998) and the two-layer Learn-α
// algorithm of Monteleoni & Jaakkola that learns the switching rate α
// itself.
//
// The MakeActive learning policy (§5.2) instantiates these with experts
// proposing candidate session-delay values and a loss that trades aggregate
// delay against the number of batched sessions. The implementation is
// generic: experts are indexed 0..n-1, predictions are weighted averages of
// caller-supplied expert values, and updates consume per-expert losses.
package experts

import (
	"fmt"
	"math"
)

// FixedShare maintains a weight distribution over n experts and updates it
// with the fixed-share rule:
//
//	p_t(i) = (1/Z) * sum_j p_{t-1}(j) e^{-L(j)} P(i|j, alpha)
//
// where P(i|j, alpha) keeps probability 1-alpha on the same expert and
// spreads alpha uniformly over the others. alpha = 0 degenerates to static
// Bayesian mixing; alpha near 1 forgets quickly.
type FixedShare struct {
	alpha   float64
	weights []float64
}

// NewFixedShare returns a uniform-weight bank over n experts. It panics if
// n < 1 or alpha is outside [0, 1].
func NewFixedShare(n int, alpha float64) *FixedShare {
	if n < 1 {
		panic(fmt.Sprintf("experts: n = %d < 1", n))
	}
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("experts: alpha = %v outside [0,1]", alpha))
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}
	return &FixedShare{alpha: alpha, weights: w}
}

// N returns the number of experts.
func (f *FixedShare) N() int { return len(f.weights) }

// Alpha returns the switching rate.
func (f *FixedShare) Alpha() float64 { return f.alpha }

// Weights returns a copy of the current distribution.
func (f *FixedShare) Weights() []float64 {
	out := make([]float64, len(f.weights))
	copy(out, f.weights)
	return out
}

// Predict returns the weight-averaged prediction over the expert values.
// It panics if len(values) != N().
func (f *FixedShare) Predict(values []float64) float64 {
	if len(values) != len(f.weights) {
		panic(fmt.Sprintf("experts: %d values for %d experts", len(values), len(f.weights)))
	}
	var sum float64
	for i, w := range f.weights {
		sum += w * values[i]
	}
	return sum
}

// MixLoss returns the mixture loss -log sum_i p(i) e^{-L(i)}. This is the
// appendix's L(alpha_j, t): how well this bank as a whole predicted the
// last observation. Losses are clamped to keep the exponentials sane.
func (f *FixedShare) MixLoss(losses []float64) float64 {
	if len(losses) != len(f.weights) {
		panic(fmt.Sprintf("experts: %d losses for %d experts", len(losses), len(f.weights)))
	}
	var z float64
	for i, w := range f.weights {
		z += w * math.Exp(-clampLoss(losses[i]))
	}
	if z <= 0 {
		// All experts infinitely bad; return a large finite loss.
		return maxLoss
	}
	return -math.Log(z)
}

// Update applies one fixed-share step with the given per-expert losses
// (the losses observed for the round that just ended).
func (f *FixedShare) Update(losses []float64) {
	n := len(f.weights)
	if len(losses) != n {
		panic(fmt.Sprintf("experts: %d losses for %d experts", len(losses), n))
	}
	// Loss update: tmp_j = p(j) e^{-L(j)}.
	tmp := make([]float64, n)
	var total float64
	for j := range tmp {
		tmp[j] = f.weights[j] * math.Exp(-clampLoss(losses[j]))
		total += tmp[j]
	}
	if total <= 0 || math.IsNaN(total) {
		// Degenerate round: reset to uniform rather than dividing by zero.
		for i := range f.weights {
			f.weights[i] = 1 / float64(n)
		}
		return
	}
	// Share update: p(i) = (1-alpha) tmp_i + alpha/(n-1) * (total - tmp_i),
	// then normalize.
	var z float64
	if n == 1 {
		f.weights[0] = 1
		return
	}
	share := f.alpha / float64(n-1)
	for i := range f.weights {
		f.weights[i] = (1-f.alpha)*tmp[i] + share*(total-tmp[i])
		z += f.weights[i]
	}
	for i := range f.weights {
		f.weights[i] /= z
	}
}

// Best returns the index of the currently heaviest expert.
func (f *FixedShare) Best() int { return bestIndex(f.weights) }

func bestIndex(w []float64) int {
	best := 0
	for i := range w {
		if w[i] > w[best] {
			best = i
		}
	}
	return best
}

const maxLoss = 30.0 // e^{-30} ~ 1e-13: beyond this, precision is gone anyway

func clampLoss(l float64) float64 {
	if math.IsNaN(l) {
		return maxLoss
	}
	if l > maxLoss {
		return maxLoss
	}
	if l < -maxLoss {
		return -maxLoss
	}
	return l
}

// LearnAlpha is the two-layer algorithm: m fixed-share banks, each with its
// own alpha, and a top-layer Bayesian mixture over the banks weighted by
// how well each bank's mixture predicted past observations (appendix
// equations 3-5).
type LearnAlpha struct {
	banks   []*FixedShare
	topW    []float64
	nValues int
}

// DefaultAlphas returns a reasonable log-spaced grid of switching rates for
// the top layer.
func DefaultAlphas() []float64 {
	return []float64{0.001, 0.01, 0.05, 0.1, 0.2, 0.4}
}

// NewLearnAlpha creates a two-layer learner over n experts with one
// fixed-share bank per alpha. It panics on an empty alpha list, n < 1, or
// out-of-range alphas (delegated to NewFixedShare).
func NewLearnAlpha(n int, alphas []float64) *LearnAlpha {
	if len(alphas) == 0 {
		panic("experts: no alphas")
	}
	banks := make([]*FixedShare, len(alphas))
	topW := make([]float64, len(alphas))
	for j, a := range alphas {
		banks[j] = NewFixedShare(n, a)
		topW[j] = 1 / float64(len(alphas))
	}
	return &LearnAlpha{banks: banks, topW: topW, nValues: n}
}

// N returns the number of base experts.
func (l *LearnAlpha) N() int { return l.nValues }

// Banks returns the number of alpha-experts.
func (l *LearnAlpha) Banks() int { return len(l.banks) }

// TopWeights returns a copy of the alpha-layer distribution.
func (l *LearnAlpha) TopWeights() []float64 {
	out := make([]float64, len(l.topW))
	copy(out, l.topW)
	return out
}

// Predict implements the appendix's equation (3):
//
//	T_t = sum_j sum_i p'_t(j) p_{t,j}(i) T_i
func (l *LearnAlpha) Predict(values []float64) float64 {
	var sum float64
	for j, b := range l.banks {
		sum += l.topW[j] * b.Predict(values)
	}
	return sum
}

// Update consumes the per-expert losses of the round that just ended:
// the alpha layer re-weights each bank by e^{-MixLoss} (equation 4 with the
// loss of equation 5), then every bank runs its own fixed-share step.
func (l *LearnAlpha) Update(losses []float64) {
	var z float64
	for j, b := range l.banks {
		l.topW[j] *= math.Exp(-clampLoss(b.MixLoss(losses)))
		z += l.topW[j]
	}
	if z <= 0 || math.IsNaN(z) {
		for j := range l.topW {
			l.topW[j] = 1 / float64(len(l.topW))
		}
	} else {
		for j := range l.topW {
			l.topW[j] /= z
		}
	}
	for _, b := range l.banks {
		b.Update(losses)
	}
}

// BestAlpha returns the alpha of the currently heaviest bank.
func (l *LearnAlpha) BestAlpha() float64 {
	return l.banks[bestIndex(l.topW)].Alpha()
}
