package experts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func sumsToOne(w []float64) bool {
	var s float64
	for _, v := range w {
		if v < 0 || math.IsNaN(v) {
			return false
		}
		s += v
	}
	return almostEq(s, 1)
}

func TestNewFixedShareUniform(t *testing.T) {
	f := NewFixedShare(4, 0.1)
	if f.N() != 4 || f.Alpha() != 0.1 {
		t.Fatalf("n=%d alpha=%v", f.N(), f.Alpha())
	}
	for _, w := range f.Weights() {
		if !almostEq(w, 0.25) {
			t.Fatalf("initial weights not uniform: %v", f.Weights())
		}
	}
}

func TestNewFixedSharePanics(t *testing.T) {
	for _, c := range []struct {
		n     int
		alpha float64
	}{{0, 0.1}, {3, -0.1}, {3, 1.1}, {3, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFixedShare(%d, %v) did not panic", c.n, c.alpha)
				}
			}()
			NewFixedShare(c.n, c.alpha)
		}()
	}
}

func TestPredictWeightedAverage(t *testing.T) {
	f := NewFixedShare(2, 0)
	if got := f.Predict([]float64{2, 6}); !almostEq(got, 4) {
		t.Fatalf("uniform predict = %v, want 4", got)
	}
}

func TestPredictPanicsOnMismatch(t *testing.T) {
	f := NewFixedShare(3, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Predict did not panic")
		}
	}()
	f.Predict([]float64{1, 2})
}

func TestUpdateShiftsWeightToGoodExpert(t *testing.T) {
	f := NewFixedShare(3, 0.01)
	// Expert 0 is consistently best.
	for i := 0; i < 20; i++ {
		f.Update([]float64{0.1, 1.0, 2.0})
	}
	w := f.Weights()
	if !(w[0] > w[1] && w[1] > w[2]) {
		t.Fatalf("weights not ordered by loss: %v", w)
	}
	if f.Best() != 0 {
		t.Fatalf("Best = %d", f.Best())
	}
	if !sumsToOne(w) {
		t.Fatalf("weights do not sum to 1: %v", w)
	}
}

func TestFixedShareTracksSwitches(t *testing.T) {
	// With alpha > 0 the bank recovers when the best expert changes;
	// with alpha = 0 recovery is much slower.
	losses := func(best int, n int) []float64 {
		l := make([]float64, n)
		for i := range l {
			if i != best {
				l[i] = 2
			}
		}
		return l
	}
	adaptive := NewFixedShare(2, 0.2)
	static := NewFixedShare(2, 0)
	for i := 0; i < 30; i++ {
		adaptive.Update(losses(0, 2))
		static.Update(losses(0, 2))
	}
	for i := 0; i < 5; i++ {
		adaptive.Update(losses(1, 2))
		static.Update(losses(1, 2))
	}
	if adaptive.Weights()[1] <= static.Weights()[1] {
		t.Fatalf("fixed-share did not adapt faster: adaptive=%v static=%v",
			adaptive.Weights(), static.Weights())
	}
}

func TestUpdateDegenerateLosses(t *testing.T) {
	f := NewFixedShare(3, 0.1)
	f.Update([]float64{math.NaN(), math.Inf(1), 1e300})
	if !sumsToOne(f.Weights()) {
		t.Fatalf("weights invalid after degenerate update: %v", f.Weights())
	}
}

func TestSingleExpertStable(t *testing.T) {
	f := NewFixedShare(1, 0.5)
	f.Update([]float64{3})
	if !almostEq(f.Weights()[0], 1) {
		t.Fatalf("single-expert weight = %v", f.Weights()[0])
	}
	if got := f.Predict([]float64{7}); !almostEq(got, 7) {
		t.Fatalf("single-expert predict = %v", got)
	}
}

func TestMixLoss(t *testing.T) {
	f := NewFixedShare(2, 0)
	// Uniform over losses {0, 0}: mixture e^0 = 1 -> loss 0.
	if got := f.MixLoss([]float64{0, 0}); !almostEq(got, 0) {
		t.Fatalf("MixLoss(0,0) = %v", got)
	}
	// Uniform over {0, inf}: z = 0.5 -> loss ln 2.
	got := f.MixLoss([]float64{0, 1e9})
	if math.Abs(got-math.Log(2)) > 1e-6 {
		t.Fatalf("MixLoss = %v, want ln2", got)
	}
}

func TestMixLossPanicsOnMismatch(t *testing.T) {
	f := NewFixedShare(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.MixLoss([]float64{1})
}

func TestLearnAlphaBasics(t *testing.T) {
	l := NewLearnAlpha(5, DefaultAlphas())
	if l.N() != 5 || l.Banks() != len(DefaultAlphas()) {
		t.Fatalf("N=%d banks=%d", l.N(), l.Banks())
	}
	if !sumsToOne(l.TopWeights()) {
		t.Fatal("top weights not a distribution")
	}
	vals := []float64{1, 2, 3, 4, 5}
	if got := l.Predict(vals); !almostEq(got, 3) {
		t.Fatalf("initial predict = %v, want 3 (uniform)", got)
	}
}

func TestLearnAlphaPanicsOnNoAlphas(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLearnAlpha(3, nil)
}

func TestLearnAlphaConvergesToGoodExpert(t *testing.T) {
	l := NewLearnAlpha(4, DefaultAlphas())
	vals := []float64{1, 2, 3, 4}
	for i := 0; i < 50; i++ {
		// Expert 2 (value 3) is always best.
		l.Update([]float64{2, 1, 0.05, 1.5})
	}
	got := l.Predict(vals)
	if math.Abs(got-3) > 0.5 {
		t.Fatalf("prediction %v did not converge near 3", got)
	}
}

func TestLearnAlphaPrefersHighAlphaUnderSwitching(t *testing.T) {
	// Rapidly alternating best expert favours banks with larger alpha.
	l := NewLearnAlpha(2, []float64{0.001, 0.4})
	for i := 0; i < 60; i++ {
		best := i % 2
		losses := []float64{1.5, 1.5}
		losses[best] = 0
		l.Update(losses)
	}
	if got := l.BestAlpha(); got != 0.4 {
		t.Fatalf("BestAlpha = %v, want 0.4 under rapid switching", got)
	}
}

func TestLearnAlphaPrefersLowAlphaWhenStationary(t *testing.T) {
	l := NewLearnAlpha(2, []float64{0.001, 0.4})
	for i := 0; i < 60; i++ {
		l.Update([]float64{0, 1.5})
	}
	if got := l.BestAlpha(); got != 0.001 {
		t.Fatalf("BestAlpha = %v, want 0.001 when stationary", got)
	}
}

func TestLearnAlphaDegenerateLosses(t *testing.T) {
	l := NewLearnAlpha(3, DefaultAlphas())
	l.Update([]float64{math.Inf(1), math.NaN(), 1e308})
	if !sumsToOne(l.TopWeights()) {
		t.Fatal("top weights invalid after degenerate update")
	}
}

func TestPropertyWeightsAlwaysDistribution(t *testing.T) {
	f := func(seed int64, alphaRaw uint8, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%8 + 1
		alpha := float64(alphaRaw) / 255
		fs := NewFixedShare(n, alpha)
		la := NewLearnAlpha(n, DefaultAlphas())
		for i := 0; i < 50; i++ {
			losses := make([]float64, n)
			for j := range losses {
				losses[j] = r.Float64() * 5
			}
			fs.Update(losses)
			la.Update(losses)
			if !sumsToOne(fs.Weights()) || !sumsToOne(la.TopWeights()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPredictWithinValueRange(t *testing.T) {
	// A convex combination never leaves [min, max] of the expert values.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5
		la := NewLearnAlpha(n, DefaultAlphas())
		vals := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range vals {
			vals[i] = r.Float64() * 10
			lo = math.Min(lo, vals[i])
			hi = math.Max(hi, vals[i])
		}
		for i := 0; i < 20; i++ {
			losses := make([]float64, n)
			for j := range losses {
				losses[j] = r.Float64() * 3
			}
			la.Update(losses)
			p := la.Predict(vals)
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
