package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// The index is an append-only journal of fixed-size, individually
// checksummed operation records. Fixed framing makes recovery trivial: a
// torn append leaves a short tail (length not a multiple of the record
// size), a bit flip fails one record's CRC, and in either case replay
// simply stops at the first bad record — everything before it is intact
// by construction, everything at or after it is rebuilt from the cell
// directory itself (every cell file is independently self-verifying, so
// the journal is an accelerator and an LRU ordering, never the truth).
//
//	offset  size  field
//	0       1     op: 'P' (put) or 'D' (delete)
//	1       32    key (raw sha256 bytes)
//	33      8     record file size in bytes, little-endian ('P' only; 0 for 'D')
//	41      4     IEEE CRC32 of bytes 0..40, little-endian
const (
	indexOpPut    = 'P'
	indexOpDelete = 'D'
	indexRecLen   = 1 + keyRawLen + 8 + 4
)

// indexOp is one replayed journal operation.
type indexOp struct {
	op   byte
	key  string // lowercase hex
	size int64
}

// encodeIndexRec frames one journal record.
func encodeIndexRec(op byte, rawKey []byte, size int64) []byte {
	rec := make([]byte, 0, indexRecLen)
	rec = append(rec, op)
	rec = append(rec, rawKey...)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(size))
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	return rec
}

// decodeIndexRec parses and verifies one framed record.
func decodeIndexRec(rec []byte) (indexOp, error) {
	if len(rec) != indexRecLen {
		return indexOp{}, fmt.Errorf("store: index record is %d bytes, want %d", len(rec), indexRecLen)
	}
	body, sum := rec[:indexRecLen-4], binary.LittleEndian.Uint32(rec[indexRecLen-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return indexOp{}, fmt.Errorf("store: index record CRC mismatch")
	}
	op := body[0]
	if op != indexOpPut && op != indexOpDelete {
		return indexOp{}, fmt.Errorf("store: unknown index op %q", op)
	}
	return indexOp{
		op:   op,
		key:  fmt.Sprintf("%x", body[1:1+keyRawLen]),
		size: int64(binary.LittleEndian.Uint64(body[1+keyRawLen:])),
	}, nil
}

// replayIndex walks the journal bytes record by record, returning every
// operation up to (not including) the first torn or corrupt record, plus
// whether the journal was clean end to end. Replay never fails: damage
// truncates the usable prefix, and Open reconciles the rest against the
// cell directory.
func replayIndex(data []byte) (ops []indexOp, clean bool) {
	for len(data) >= indexRecLen {
		op, err := decodeIndexRec(data[:indexRecLen])
		if err != nil {
			return ops, false
		}
		ops = append(ops, op)
		data = data[indexRecLen:]
	}
	return ops, len(data) == 0
}
