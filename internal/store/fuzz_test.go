package store

import (
	"bytes"
	"encoding/hex"
	"testing"
)

// FuzzRecordRoundTrip is the record-codec property pair: every payload
// round-trips exactly through encode/decode, and every single-byte
// corruption of the encoded record is detected — decode must never
// return ok for damaged bytes. Seeds run under plain `go test`; `go
// test -fuzz=FuzzRecordRoundTrip ./internal/store` explores further.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add([]byte(nil), uint16(0))
	f.Add([]byte("x"), uint16(0))
	f.Add([]byte("a longer payload with structure |S:|P:|C:"), uint16(41))
	f.Add(bytes.Repeat([]byte{0}, 300), uint16(123))
	f.Fuzz(func(t *testing.T, payload []byte, flip uint16) {
		key := testKey("fuzz-record")
		rawKey, err := checkKey(key)
		if err != nil {
			t.Fatal(err)
		}
		rec := encodeRecord(rawKey, payload)
		got, err := decodeRecord(key, rec)
		if err != nil {
			t.Fatalf("clean record failed to decode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip changed payload: %d bytes -> %d", len(payload), len(got))
		}
		// Any single bit flip anywhere in the record must be caught.
		pos := int(flip) % len(rec)
		mutated := bytes.Clone(rec)
		mutated[pos] ^= 1 << (flip % 8)
		if mutated[pos] == rec[pos] {
			return
		}
		if _, err := decodeRecord(key, mutated); err == nil {
			t.Fatalf("flipped byte %d went undetected", pos)
		}
	})
}

// FuzzDecodeRecordNeverPanics throws arbitrary bytes at the record
// decoder: any input may be rejected, none may panic or be accepted
// under the wrong key digest.
func FuzzDecodeRecordNeverPanics(f *testing.F) {
	key := testKey("fuzz-decode")
	rawKey, _ := checkKey(key)
	f.Add([]byte(nil))
	f.Add([]byte(recordMagic))
	f.Add(encodeRecord(rawKey, []byte("seed payload")))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := decodeRecord(key, data)
		if err != nil {
			return
		}
		// Accepted input must be a faithful record: re-encoding the payload
		// reproduces the exact accepted bytes.
		if !bytes.Equal(encodeRecord(rawKey, payload), data) {
			t.Fatalf("decoder accepted %d bytes that are not a canonical record", len(data))
		}
	})
}

// FuzzIndexJournal replays arbitrary bytes as an index journal: replay
// must never panic, must report clean only when every byte was
// consumed, and a clean replay must re-encode to the identical journal
// (the codec is canonical both ways).
func FuzzIndexJournal(f *testing.F) {
	rawKey, _ := checkKey(testKey("fuzz-index"))
	var clean []byte
	clean = append(clean, encodeIndexRec(indexOpPut, rawKey, 123)...)
	clean = append(clean, encodeIndexRec(indexOpDelete, rawKey, 0)...)
	f.Add([]byte(nil))
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn tail
	f.Add(bytes.Repeat([]byte{0xFF}, 3*indexRecLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops, ok := replayIndex(data)
		rebuilt := rebuildJournal(t, ops)
		if ok != (len(rebuilt) == len(data)) {
			t.Fatalf("clean=%v but replayed %d of %d bytes", ok, len(rebuilt), len(data))
		}
		if ok && !bytes.Equal(rebuilt, data) {
			t.Fatal("clean journal does not re-encode canonically")
		}
	})
}

// rebuildJournal re-encodes replayed operations.
func rebuildJournal(t *testing.T, ops []indexOp) []byte {
	t.Helper()
	var out []byte
	for _, op := range ops {
		raw, err := hex.DecodeString(op.key)
		if err != nil {
			t.Fatalf("replayed op carries non-hex key %q", op.key)
		}
		out = append(out, encodeIndexRec(op.op, raw, op.size)...)
	}
	return out
}
