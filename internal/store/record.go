package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// A cell record file is fully self-verifying, so a reader never has to
// trust the filesystem: the key it claims to hold rides in the header
// (detecting misplaced or renamed files), the payload length is explicit
// (detecting truncation), and an embedded sha256 of the payload detects
// any bit damage in the body. The header fields themselves are covered
// transitively — a flipped length or key byte makes either the size check
// or the digest comparison fail.
//
//	offset  size  field
//	0       8     magic "RRCCELL1"
//	8       32    key (raw sha256 bytes; the hex filename, decoded)
//	40      8     payload length, little-endian
//	48      32    sha256(payload)
//	80      n     payload
const (
	recordMagic  = "RRCCELL1"
	recordHeader = len(recordMagic) + keyRawLen + 8 + sha256.Size
)

// keyRawLen is the decoded length of a cell key: keys are lowercase hex
// sha256 digests (the v4 cell fingerprint), 64 hex characters.
const keyRawLen = sha256.Size

// checkKey rejects anything that is not a lowercase-hex sha256 string.
// Keys double as filenames, so this also keeps path traversal impossible.
func checkKey(key string) ([]byte, error) {
	if len(key) != 2*keyRawLen {
		return nil, fmt.Errorf("store: key %q is not a %d-char hex digest", key, 2*keyRawLen)
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return nil, fmt.Errorf("store: key %q is not lowercase hex", key)
		}
	}
	return hex.AppendDecode(make([]byte, 0, keyRawLen), []byte(key))
}

// encodeRecord builds the on-disk bytes for one cell.
func encodeRecord(rawKey, payload []byte) []byte {
	rec := make([]byte, 0, recordHeader+len(payload))
	rec = append(rec, recordMagic...)
	rec = append(rec, rawKey...)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(len(payload)))
	digest := sha256.Sum256(payload)
	rec = append(rec, digest[:]...)
	rec = append(rec, payload...)
	return rec
}

// decodeRecord verifies a record file's bytes against the key it was
// looked up under and returns the payload. Any inconsistency — wrong
// magic, wrong or damaged key, torn length, digest mismatch — is an
// error; the caller quarantines the file rather than serving it.
func decodeRecord(key string, rec []byte) ([]byte, error) {
	rawKey, err := checkKey(key)
	if err != nil {
		return nil, err
	}
	if len(rec) < recordHeader {
		return nil, fmt.Errorf("store: record is %d bytes, shorter than the %d-byte header", len(rec), recordHeader)
	}
	if string(rec[:len(recordMagic)]) != recordMagic {
		return nil, fmt.Errorf("store: bad record magic %q", rec[:len(recordMagic)])
	}
	rec = rec[len(recordMagic):]
	if !bytes.Equal(rec[:keyRawLen], rawKey) {
		return nil, fmt.Errorf("store: record claims key %x, looked up as %s", rec[:keyRawLen], key)
	}
	rec = rec[keyRawLen:]
	size := binary.LittleEndian.Uint64(rec[:8])
	rec = rec[8:]
	payload := rec[sha256.Size:]
	if uint64(len(payload)) != size {
		return nil, fmt.Errorf("store: record carries %d payload bytes, header says %d", len(payload), size)
	}
	digest := sha256.Sum256(payload)
	if !bytes.Equal(digest[:], rec[:sha256.Size]) {
		return nil, fmt.Errorf("store: payload digest mismatch (bit rot or torn write)")
	}
	return payload, nil
}
