package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testKey derives a deterministic, valid cell key from a label.
func testKey(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, key string, payload []byte) {
	t.Helper()
	if err := s.Put(key, payload); err != nil {
		t.Fatalf("put %s: %v", key, err)
	}
}

// TestPutGetPersistence is the baseline contract: puts are readable in
// the same session, byte for byte, and survive a clean close + reopen.
func TestPutGetPersistence(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	payloads := map[string][]byte{}
	for i := 0; i < 10; i++ {
		key := testKey(fmt.Sprintf("cell-%d", i))
		payload := bytes.Repeat([]byte{byte(i)}, 100+i*37)
		payloads[key] = payload
		mustPut(t, s, key, payload)
	}
	for key, want := range payloads {
		got, ok := s.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("get %s: ok=%v, %d bytes, want %d", key, ok, len(got), len(want))
		}
	}
	if _, ok := s.Get(testKey("never-stored")); ok {
		t.Fatal("hit for a key never stored")
	}
	st := s.Stats()
	if st.Cells != 10 || st.Hits != 10 || st.Misses != 1 || st.Writes != 10 {
		t.Fatalf("stats %+v", st)
	}
	s.Close()

	re := mustOpen(t, Config{Dir: dir})
	for key, want := range payloads {
		got, ok := re.Get(key)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("after reopen, get %s: ok=%v", key, ok)
		}
	}
	if re.Len() != 10 {
		t.Fatalf("reopened store holds %d cells, want 10", re.Len())
	}
}

// TestRejectsBadKeys keeps the key space closed to anything that is not
// a lowercase-hex digest — keys double as filenames.
func TestRejectsBadKeys(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir()})
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), strings.ToUpper(testKey("x")),
		"../../../../etc/passwd", testKey("x") + "0",
	} {
		if err := s.Put(key, []byte("p")); err == nil {
			t.Fatalf("put accepted bad key %q", key)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("get hit on bad key %q", key)
		}
	}
}

// TestByteBudgetedEviction fills the store past MaxBytes and expects the
// least recently used cells (Get refreshes recency) to be deleted from
// disk, journaled out, and reported in the gauges.
func TestByteBudgetedEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{0xAB}, 1000)
	recSize := int64(recordHeader + len(payload))
	// Budget for three records.
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 3 * recSize})

	keys := make([]string, 5)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("evict-%d", i))
	}
	for _, k := range keys[:3] {
		mustPut(t, s, k, payload)
	}
	// Touch key 0 so key 1 is now the least recently used.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("key 0 missing before eviction")
	}
	mustPut(t, s, keys[3], payload) // evicts key 1
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU cell survived eviction")
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("recently used cell was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Cells != 3 || st.Bytes != 3*recSize {
		t.Fatalf("stats %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "cells", keys[1])); !os.IsNotExist(err) {
		t.Fatal("evicted cell file still on disk")
	}
	// The eviction state survives a reopen.
	s.Close()
	re := mustOpen(t, Config{Dir: dir, MaxBytes: 3 * recSize})
	if re.Len() != 3 {
		t.Fatalf("reopened store holds %d cells, want 3", re.Len())
	}
	if _, ok := re.Get(keys[1]); ok {
		t.Fatal("evicted cell resurrected by reopen")
	}
}

// TestReopenShrunkBudget reopens an over-budget directory with a smaller
// MaxBytes and expects Open itself to evict down to the new budget.
func TestReopenShrunkBudget(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{1}, 500)
	recSize := int64(recordHeader + len(payload))
	s := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 6; i++ {
		mustPut(t, s, testKey(fmt.Sprintf("shrink-%d", i)), payload)
	}
	s.Close()
	re := mustOpen(t, Config{Dir: dir, MaxBytes: 2 * recSize})
	if n := re.Len(); n != 2 {
		t.Fatalf("reopen kept %d cells, want 2", n)
	}
	if st := re.Stats(); st.Bytes > 2*recSize {
		t.Fatalf("reopen left %d bytes over the %d budget", st.Bytes, 2*recSize)
	}
}

// crashingStore opens a store whose write seam simulates a process death
// at the named point, but only while *armed — so survivor puts land
// normally and only the put under test crashes.
func crashingStore(t *testing.T, dir, point string) (*Store, *bool) {
	t.Helper()
	armed := new(bool)
	s, err := Open(Config{Dir: dir, crash: func(p string) bool {
		return *armed && p == point
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, armed
}

// TestCrashConsistency drives the injectable write seam through every
// crash point: a put interrupted mid-temp-write, before the rename,
// after the rename but before the index append, and mid-index-append
// (torn journal record). In every case reopening the directory must
// yield a consistent store — prior cells intact and verifiable, no temp
// litter, a clean journal — and the interrupted cell either absent (the
// write never became visible) or served with exactly the bytes that
// were being written (the rename had already committed it).
func TestCrashConsistency(t *testing.T) {
	survivor := testKey("survivor")
	victim := testKey("victim")
	survivorPayload := []byte("survivor payload: committed before the crash")
	victimPayload := []byte("victim payload: in flight at the crash")

	cases := []struct {
		point string
		// durable reports whether the victim cell must be readable after
		// recovery: once the rename has happened the cell is committed,
		// index append or not.
		durable bool
	}{
		{"temp-partial", false},
		{"rename", false},
		{"index-skip", true},
		{"index-torn", true},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			s, armed := crashingStore(t, dir, tc.point)
			mustPut(t, s, survivor, survivorPayload)
			*armed = true
			if err := s.Put(victim, victimPayload); err == nil {
				t.Fatal("crashed put reported success")
			}
			// The process "died": the crashed instance is abandoned, the
			// directory is reopened cold. That Open is the recovery under
			// test.
			re := mustOpen(t, Config{Dir: dir})
			got, ok := re.Get(survivor)
			if !ok || !bytes.Equal(got, survivorPayload) {
				t.Fatalf("survivor cell damaged by recovery: ok=%v", ok)
			}
			got, ok = re.Get(victim)
			if tc.durable {
				if !ok || !bytes.Equal(got, victimPayload) {
					t.Fatalf("committed victim cell lost: ok=%v", ok)
				}
			} else if ok {
				t.Fatalf("uncommitted victim cell visible after recovery: %q", got)
			}
			// No temp litter survives recovery.
			matches, err := filepath.Glob(filepath.Join(dir, "cells", "*.tmp"))
			if err != nil || len(matches) != 0 {
				t.Fatalf("temp files survived recovery: %v (err %v)", matches, err)
			}
			// Recovery rewrote a journal the next Open replays cleanly: a
			// second reopen must see the identical resident set.
			re.Close()
			re2 := mustOpen(t, Config{Dir: dir})
			want := 1
			if tc.durable {
				want = 2
			}
			if re2.Len() != want {
				t.Fatalf("second reopen holds %d cells, want %d", re2.Len(), want)
			}
			// And the interrupted put can simply be retried.
			mustPut(t, re2, victim, victimPayload)
			got, ok = re2.Get(victim)
			if !ok || !bytes.Equal(got, victimPayload) {
				t.Fatal("retried put not readable")
			}
		})
	}
}

// TestJournalCompaction exercises the self-compaction path: enough
// journal churn triggers a rewrite, after which the store still reopens
// with the right resident set.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir, MaxBytes: 2 * int64(recordHeader+8)})
	// Every put past the budget evicts one cell: two journal records per
	// iteration, resident set pinned at two.
	for i := 0; i < 800; i++ {
		mustPut(t, s, testKey(fmt.Sprintf("churn-%d", i)), []byte("12345678"))
	}
	info, err := os.Stat(filepath.Join(dir, "index"))
	if err != nil {
		t.Fatal(err)
	}
	if max := int64((2*4 + 1024 + 16) * indexRecLen); info.Size() > max {
		t.Fatalf("journal never compacted: %d bytes (want <= %d)", info.Size(), max)
	}
	s.Close()
	re := mustOpen(t, Config{Dir: dir})
	if re.Len() != 2 {
		t.Fatalf("reopen after compaction holds %d cells, want 2", re.Len())
	}
}
