package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// corrupt applies a mutation to a stored cell's file on disk.
func corrupt(t *testing.T, dir, key string, mutate func([]byte) []byte) {
	t.Helper()
	path := filepath.Join(dir, "cells", key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptCellQuarantined is the core anti-silent-corruption
// property: whatever byte of a persisted record is flipped or truncated
// away, the read must detect it, report a miss, and move the damaged
// file to quarantine — never serve it. A subsequent put of the same key
// must fully heal the cell.
func TestCorruptCellQuarantined(t *testing.T) {
	payload := []byte("the payload whose integrity is at stake 0123456789")
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip-magic", flipByte(0)},
		{"flip-key", flipByte(len(recordMagic) + 3)},
		{"flip-length", flipByte(len(recordMagic) + keyRawLen + 2)},
		{"flip-digest", flipByte(len(recordMagic) + keyRawLen + 8 + 5)},
		{"flip-payload", flipByte(recordHeader + 7)},
		{"flip-last-byte", func(b []byte) []byte { return flipByte(len(b) - 1)(b) }},
		{"truncate-header", func(b []byte) []byte { return b[:recordHeader/2] }},
		{"truncate-payload", func(b []byte) []byte { return b[:len(b)-9] }},
		{"truncate-empty", func(b []byte) []byte { return nil }},
		{"extend", func(b []byte) []byte { return append(b, 0xFF) }},
	}
	for i, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, Config{Dir: dir})
			key := testKey(fmt.Sprintf("corrupt-%d", i))
			mustPut(t, s, key, payload)
			corrupt(t, dir, key, m.mutate)

			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt cell served: %q", got)
			}
			if st := s.Stats(); st.Quarantined != 1 {
				t.Fatalf("stats %+v, want 1 quarantined", st)
			}
			if _, err := os.Stat(filepath.Join(dir, "quarantine", key)); err != nil {
				t.Fatalf("damaged file not quarantined: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, "cells", key)); !os.IsNotExist(err) {
				t.Fatal("damaged file still in the cell directory")
			}
			// A second read is a plain miss, not a second quarantine.
			if _, ok := s.Get(key); ok {
				t.Fatal("quarantined cell resurrected")
			}
			// The cell heals on re-put.
			mustPut(t, s, key, payload)
			got, ok := s.Get(key)
			if !ok || !bytes.Equal(got, payload) {
				t.Fatal("re-put after quarantine not readable")
			}
		})
	}
}

func flipByte(i int) func([]byte) []byte {
	return func(b []byte) []byte {
		b[i] ^= 0x40
		return b
	}
}

// TestCorruptCellSurvivesReopen corrupts a cell, reopens the store (the
// stat-based recovery cannot see body damage), and expects the read
// path to still catch it — verification happens on every read, not on
// open.
func TestCorruptCellSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	key := testKey("reopen-corrupt")
	mustPut(t, s, key, []byte("payload"))
	s.Close()
	corrupt(t, dir, key, flipByte(recordHeader)) // first payload byte

	re := mustOpen(t, Config{Dir: dir})
	if _, ok := re.Get(key); ok {
		t.Fatal("corrupt cell served after reopen")
	}
	if st := re.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want 1 quarantined", st)
	}
}

// TestCorruptIndexRecovers damages the index journal (bit flip mid-way,
// torn tail, garbage, emptied) and expects Open to fall back to the cell
// directory: every intact cell stays readable with verified bytes.
func TestCorruptIndexRecovers(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip-eleventh-record", flipByte(10*indexRecLen + 7)},
		{"flip-first-record", flipByte(3)},
		{"torn-tail", func(b []byte) []byte { return b[:len(b)-indexRecLen/3] }},
		{"half-gone", func(b []byte) []byte { return b[:len(b)/2] }},
		{"emptied", func(b []byte) []byte { return nil }},
		{"garbage", func(b []byte) []byte { return []byte("not a journal at all") }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, Config{Dir: dir})
			payloads := map[string][]byte{}
			for i := 0; i < 20; i++ {
				key := testKey(fmt.Sprintf("idx-%d", i))
				payload := []byte(fmt.Sprintf("payload %d", i))
				payloads[key] = payload
				mustPut(t, s, key, payload)
			}
			s.Close()
			idxPath := filepath.Join(dir, "index")
			data, err := os.ReadFile(idxPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(idxPath, m.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			re := mustOpen(t, Config{Dir: dir})
			if re.Len() != 20 {
				t.Fatalf("recovered %d cells, want 20", re.Len())
			}
			for key, want := range payloads {
				got, ok := re.Get(key)
				if !ok || !bytes.Equal(got, want) {
					t.Fatalf("cell %s lost to index damage: ok=%v", key, ok)
				}
			}
			// Recovery rewrote the journal; the next open replays it clean.
			re.Close()
			re2 := mustOpen(t, Config{Dir: dir})
			if re2.Len() != 20 {
				t.Fatalf("second reopen recovered %d cells, want 20", re2.Len())
			}
		})
	}
}

// TestIndexEntryWithoutFile journals a cell, deletes its file behind the
// store's back, and expects both the live read and the reopened store to
// treat it as a miss.
func TestIndexEntryWithoutFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	key := testKey("ghost")
	mustPut(t, s, key, []byte("gone soon"))
	if err := os.Remove(filepath.Join(dir, "cells", key)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("served a cell whose file is gone")
	}
	s.Close()
	re := mustOpen(t, Config{Dir: dir})
	if re.Len() != 0 {
		t.Fatalf("reopen resurrected %d ghost cells", re.Len())
	}
}

// TestStrayFilesIgnored drops non-record junk into the cell directory;
// Open must not adopt names that are not cell keys, and adopted
// key-named junk must fail verification on read.
func TestStrayFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	mustPut(t, s, testKey("legit"), []byte("legit"))
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "cells", "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	junkKey := testKey("junk")
	if err := os.WriteFile(filepath.Join(dir, "cells", junkKey), []byte("not a record"), 0o644); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Config{Dir: dir})
	if got, ok := re.Get(testKey("legit")); !ok || !bytes.Equal(got, []byte("legit")) {
		t.Fatal("legit cell lost")
	}
	if _, ok := re.Get(junkKey); ok {
		t.Fatal("junk adopted and served")
	}
	if st := re.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats %+v, want junk quarantined on read", st)
	}
}
