// Package store is the durable, content-addressed cell result store
// beneath the job layer's in-memory caches: one file per grid cell,
// keyed by the cell's v4 fingerprint, written atomically (temp file +
// fsync + rename) and read paranoidly (every record embeds a sha256 of
// its payload, so torn writes and bit rot surface as a cache miss, never
// as wrong bytes — damaged files are quarantined, not served).
//
// A persistent index journal (append-only, fixed-size CRC-framed
// records) accelerates startup and carries the LRU order and byte
// totals, but it is never the source of truth: on Open the journal's
// intact prefix is reconciled against the cell directory itself —
// entries without files are dropped, files without entries are adopted,
// torn or corrupt journal tails are discarded and the journal is
// rewritten — so a store directory recovered from any crash point is
// indistinguishable from one that missed the interrupted writes.
//
// Eviction is byte-budgeted LRU: when MaxBytes is exceeded the least
// recently used cells are deleted (journaled) until the store fits.
//
// The store's contract to the job layer is exactly the in-memory cell
// cache's: a hit returns the verbatim payload bytes a previous Put
// stored, so warm-from-store results are byte-identical to cold runs.
package store

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Stats is a point-in-time snapshot of the store's gauges, shaped for
// the health endpoint.
type Stats struct {
	// Cells and Bytes describe the resident set.
	Cells int   `json:"cells"`
	Bytes int64 `json:"bytes"`
	// Hits/Misses count Get outcomes; Writes counts successful Puts.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Writes uint64 `json:"writes"`
	// Evictions counts cells deleted by the byte budget; Quarantined
	// counts files moved aside because their contents failed
	// verification.
	Evictions   uint64 `json:"evictions"`
	Quarantined uint64 `json:"quarantined"`
}

// Config configures Open.
type Config struct {
	// Dir is the store root. It is created if missing; cells live in
	// Dir/cells, quarantined files in Dir/quarantine, the index journal
	// at Dir/index.
	Dir string
	// MaxBytes bounds the resident cell bytes (record files, as stored);
	// <= 0 means unlimited. The most recently written cell is never
	// evicted, so one record larger than the budget transiently exceeds
	// it instead of churning.
	MaxBytes int64

	// crash is the injectable write seam for crash-consistency tests:
	// when non-nil and it returns true for a named point, the in-flight
	// mutation aborts exactly as a process death there would leave it —
	// partial temp file ("temp-partial"), complete temp but no rename
	// ("rename"), renamed file but no index append ("index-skip"), or a
	// torn index append ("index-torn") — with no cleanup. The store
	// instance is then inconsistent by design; tests reopen the
	// directory with a fresh Open, which is the recovery under test.
	crash func(point string) bool //rrclint:testseam
}

// errSimulatedCrash marks a write aborted by the crash seam.
var errSimulatedCrash = errors.New("store: simulated crash")

// entry is one resident cell in the LRU index.
type entry struct {
	key  string
	size int64
}

// Store is a durable content-addressed cell store. All methods are safe
// for concurrent use.
type Store struct {
	dir       string
	cellDir   string
	quarDir   string
	indexPath string
	maxBytes  int64
	crash     func(string) bool //rrclint:testseam

	mu      sync.Mutex
	idx     *os.File                 // journal append handle
	ops     int                      // journal records since last compaction
	entries map[string]*list.Element // key -> element whose Value is *entry
	lru     *list.List               // front = least recently used
	bytes   int64
	closed  bool

	hits, misses, writes, evictions, quarantined uint64
}

// Open opens (creating or recovering as needed) the store rooted at
// cfg.Dir. See the package comment for the recovery protocol.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	s := &Store{
		dir:       cfg.Dir,
		cellDir:   filepath.Join(cfg.Dir, "cells"),
		quarDir:   filepath.Join(cfg.Dir, "quarantine"),
		indexPath: filepath.Join(cfg.Dir, "index"),
		maxBytes:  cfg.MaxBytes,
		crash:     cfg.crash,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
	}
	for _, d := range []string{s.cellDir, s.quarDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked("")
	return s, nil
}

// recover rebuilds a consistent in-memory index from the journal's
// intact prefix and the cell directory, removes crash leftovers, and
// rewrites the journal when the two disagreed.
func (s *Store) recover() error {
	names, err := os.ReadDir(s.cellDir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Actual resident files: the truth the journal is checked against.
	// Interrupted writes leave *.tmp files, which are never referenced by
	// anything — remove them. Names that are not cell keys are ignored.
	onDisk := make(map[string]int64)
	for _, de := range names {
		name := de.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.cellDir, name))
			continue
		}
		if _, err := checkKey(name); err != nil {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		onDisk[name] = info.Size()
	}

	data, err := os.ReadFile(s.indexPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	ops, clean := replayIndex(data)
	dirty := !clean

	// Replay the journal, keeping only entries whose file actually exists
	// with the journaled size; everything else is a lie the crash (or the
	// corruption) left behind.
	for _, op := range ops {
		switch {
		case op.op == indexOpDelete:
			if _, ok := s.entries[op.key]; ok {
				s.dropLocked(op.key)
			}
		case onDisk[op.key] == op.size && op.size > 0:
			s.upsertLocked(op.key, op.size)
		default:
			dirty = true // journaled entry without a matching file
			if _, ok := s.entries[op.key]; ok {
				s.dropLocked(op.key)
			}
		}
	}
	// Adopt files the journal never heard of (rename landed, index append
	// did not) in sorted order, after the journaled entries — they are at
	// least as fresh as anything journaled.
	var orphans []string
	//rrclint:ordered collects keys for the sort.Strings below; only the sorted slice is iterated for effect
	for key := range onDisk {
		if _, ok := s.entries[key]; !ok {
			orphans = append(orphans, key)
			dirty = true
		}
	}
	sort.Strings(orphans)
	for _, key := range orphans {
		s.upsertLocked(key, onDisk[key])
	}

	if dirty {
		if err := s.compactLocked(); err != nil {
			return err
		}
		return nil
	}
	idx, err := os.OpenFile(s.indexPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.idx = idx
	s.ops = len(ops)
	return nil
}

// compactLocked atomically rewrites the journal as one put record per
// resident entry in LRU order and reopens the append handle.
func (s *Store) compactLocked() error {
	if s.idx != nil {
		s.idx.Close()
		s.idx = nil
	}
	var buf []byte
	for e := s.lru.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*entry)
		rawKey, err := checkKey(ent.key)
		if err != nil {
			return err
		}
		buf = append(buf, encodeIndexRec(indexOpPut, rawKey, ent.size)...)
	}
	tmp := s.indexPath + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, s.indexPath); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.dir)
	idx, err := os.OpenFile(s.indexPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.idx = idx
	s.ops = s.lru.Len()
	return nil
}

// appendIndexLocked journals one operation, compacting first when the
// journal has grown well past the resident set.
func (s *Store) appendIndexLocked(op byte, key string, size int64) error {
	if s.ops > 4*s.lru.Len()+1024 {
		if err := s.compactLocked(); err != nil {
			return err
		}
	}
	rawKey, err := checkKey(key)
	if err != nil {
		return err
	}
	rec := encodeIndexRec(op, rawKey, size)
	if s.crashAt("index-torn") {
		s.idx.Write(rec[:indexRecLen/2])
		s.idx.Sync()
		return errSimulatedCrash
	}
	if _, err := s.idx.Write(rec); err != nil {
		return fmt.Errorf("store: index append: %w", err)
	}
	if err := s.idx.Sync(); err != nil {
		return fmt.Errorf("store: index sync: %w", err)
	}
	s.ops++
	return nil
}

func (s *Store) crashAt(point string) bool {
	return s.crash != nil && s.crash(point)
}

// upsertLocked installs or refreshes an entry at the most-recently-used
// end and maintains the byte total.
func (s *Store) upsertLocked(key string, size int64) {
	if e, ok := s.entries[key]; ok {
		ent := e.Value.(*entry)
		s.bytes += size - ent.size
		ent.size = size
		s.lru.MoveToBack(e)
		return
	}
	s.entries[key] = s.lru.PushBack(&entry{key: key, size: size})
	s.bytes += size
}

// dropLocked removes an entry from the in-memory index only.
func (s *Store) dropLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	s.bytes -= e.Value.(*entry).size
	s.lru.Remove(e)
	delete(s.entries, key)
}

// evictLocked deletes least-recently-used cells until the store fits its
// byte budget. keep, when non-empty, names the one key never evicted
// (the cell just written).
func (s *Store) evictLocked(keep string) {
	if s.maxBytes <= 0 {
		return
	}
	for e := s.lru.Front(); e != nil && s.bytes > s.maxBytes; {
		ent := e.Value.(*entry)
		e = e.Next()
		if ent.key == keep {
			continue
		}
		os.Remove(s.cellPath(ent.key))
		s.dropLocked(ent.key)
		s.evictions++
		if s.idx != nil {
			s.appendIndexLocked(indexOpDelete, ent.key, 0)
		}
	}
}

func (s *Store) cellPath(key string) string { return filepath.Join(s.cellDir, key) }

// Put durably stores one cell's payload under its key: the record is
// written to a temp file, fsynced, renamed into place, and journaled.
// An existing cell is atomically replaced (content addressing makes the
// bytes equal anyway). Put never leaves a partially visible cell: until
// the rename the store serves the old state, after it the new.
func (s *Store) Put(key string, payload []byte) error {
	rawKey, err := checkKey(key)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	rec := encodeRecord(rawKey, payload)
	tmp := s.cellPath(key) + ".tmp"
	if s.crashAt("temp-partial") {
		writeFileSync(tmp, rec[:len(rec)/2])
		return errSimulatedCrash
	}
	if err := writeFileSync(tmp, rec); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if s.crashAt("rename") {
		return errSimulatedCrash
	}
	if err := os.Rename(tmp, s.cellPath(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	syncDir(s.cellDir)
	if s.crashAt("index-skip") {
		return errSimulatedCrash
	}
	if err := s.appendIndexLocked(indexOpPut, key, int64(len(rec))); err != nil {
		return err
	}
	s.upsertLocked(key, int64(len(rec)))
	s.writes++
	s.evictLocked(key)
	return nil
}

// Get returns the payload stored under key. Every read re-verifies the
// record (magic, key, length, payload digest); a file that fails
// verification is quarantined and reported as a miss — the store never
// serves bytes it cannot prove are the ones Put stored.
func (s *Store) Get(key string) ([]byte, bool) {
	if _, err := checkKey(key); err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	rec, err := os.ReadFile(s.cellPath(key))
	if err != nil {
		// The index believed in a file that is gone; heal the index.
		s.dropLocked(key)
		if s.idx != nil {
			s.appendIndexLocked(indexOpDelete, key, 0)
		}
		s.misses++
		return nil, false
	}
	payload, err := decodeRecord(key, rec)
	if err != nil {
		s.quarantineLocked(key)
		s.misses++
		return nil, false
	}
	s.lru.MoveToBack(e)
	s.hits++
	return payload, true
}

// Has reports whether key is resident without reading or verifying the
// record (the read path still verifies, so Has is a hint, not a
// promise).
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// Quarantine moves a cell's file aside and forgets it. The store calls
// it internally on verification failures; the job layer calls it when a
// record verifies at this layer but fails higher-level decoding (a
// codec version drift), so the bad file is preserved for inspection
// instead of being served again.
func (s *Store) Quarantine(key string) {
	if _, err := checkKey(key); err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantineLocked(key)
}

func (s *Store) quarantineLocked(key string) {
	if err := os.Rename(s.cellPath(key), filepath.Join(s.quarDir, key)); err != nil {
		// Rename across the same filesystem only fails if the source is
		// already gone; removing is the next best containment.
		os.Remove(s.cellPath(key))
	}
	s.quarantined++
	if _, ok := s.entries[key]; ok {
		s.dropLocked(key)
		if s.idx != nil {
			s.appendIndexLocked(indexOpDelete, key, 0)
		}
	}
}

// Stats snapshots the store's gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Cells:       s.lru.Len(),
		Bytes:       s.bytes,
		Hits:        s.hits,
		Misses:      s.misses,
		Writes:      s.writes,
		Evictions:   s.evictions,
		Quarantined: s.quarantined,
	}
}

// Len reports the resident cell count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Close releases the journal handle. The store directory remains valid
// for a later Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.idx != nil {
		err := s.idx.Close()
		s.idx = nil
		return err
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing — the
// first half of the atomic write protocol (the rename is the other).
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best effort: not every platform supports fsync on directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
