package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func randomValidTrace(r *rand.Rand, n int) Trace {
	tr := make(Trace, n)
	var t time.Duration
	for i := range tr {
		t += time.Duration(r.Int63n(int64(5 * time.Second)))
		dir := Out
		if r.Intn(2) == 1 {
			dir = In
		}
		tr[i] = Packet{T: t, Dir: dir, Size: r.Intn(65536)}
	}
	return tr
}

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := randomValidTrace(rand.New(rand.NewSource(1)), 200)
	got, err := Collect(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("Collect(Source) lost packets")
	}
	empty, err := Collect(Trace{}.Source())
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty source: %v %v", empty, err)
	}
}

func TestStreamCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 500} {
		tr := randomValidTrace(r, n)
		var buf bytes.Buffer
		if err := WriteStream(&buf, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tr) {
			t.Fatalf("n=%d: decoded %d packets", n, len(got))
		}
		for i := range got {
			if got[i] != tr[i] {
				t.Fatalf("n=%d: packet %d: %+v vs %+v", n, i, got[i], tr[i])
			}
		}
	}
}

// TestStreamCodecByteStable: encode → decode → encode must reproduce the
// original bytes exactly (the format has one canonical encoding per
// trace).
func TestStreamCodecByteStable(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 20; round++ {
		tr := randomValidTrace(r, r.Intn(300))
		var first bytes.Buffer
		if err := WriteStream(&first, tr); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadStream(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var second bytes.Buffer
		if err := WriteStream(&second, decoded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("round %d: re-encoding changed bytes", round)
		}
	}
}

// TestStreamCodecAgreesWithTextCodec cross-checks the two codecs: the same
// trace pushed through each must decode to identical packets.
func TestStreamCodecAgreesWithTextCodec(t *testing.T) {
	tr := randomValidTrace(rand.New(rand.NewSource(4)), 400)
	var sb, tb bytes.Buffer
	if err := WriteStream(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&tb, tr); err != nil {
		t.Fatal(err)
	}
	fromStream, err := ReadStream(&sb)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadText(&tb)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromStream) != len(fromText) {
		t.Fatalf("stream %d packets vs text %d", len(fromStream), len(fromText))
	}
	for i := range fromStream {
		s, x := fromStream[i], fromText[i]
		if s.Dir != x.Dir || s.Size != x.Size {
			t.Fatalf("packet %d: stream %+v vs text %+v", i, s, x)
		}
		// The text codec round-trips timestamps through float64 seconds,
		// which can be off by a nanosecond; the stream codec is exact.
		if d := s.T - x.T; d < -time.Nanosecond || d > time.Nanosecond {
			t.Fatalf("packet %d: stream T %v vs text T %v", i, s.T, x.T)
		}
	}
}

func TestStreamWriterRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		pkts []Packet
		want error
	}{
		{"negative-time", []Packet{{T: -1, Dir: In, Size: 1}}, ErrNegativeTime},
		{"unsorted", []Packet{{T: time.Second, Dir: In, Size: 1}, {T: 0, Dir: In, Size: 1}}, ErrUnsorted},
		{"bad-dir", []Packet{{T: 0, Dir: Direction(7), Size: 1}}, ErrBadDirection},
		{"negative-size", []Packet{{T: 0, Dir: In, Size: -4}}, ErrNegativeSize},
	}
	for _, c := range cases {
		sw, err := NewStreamWriter(io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		var last error
		for _, p := range c.pkts {
			last = sw.Write(p)
		}
		if !errors.Is(last, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, last, c.want)
		}
	}
}

func TestStreamReaderRejectsBadMagic(t *testing.T) {
	if _, err := ReadStream(bytes.NewReader([]byte("RRCTRC01xxxx"))); !errors.Is(err, ErrNotStream) {
		t.Fatalf("got %v, want ErrNotStream", err)
	}
	if _, err := ReadStream(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestStreamReaderRejectsTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteStream(&buf, Trace{{T: time.Second, Dir: In, Size: 1000}}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadStream(bytes.NewReader(b[:len(b)-1])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestStreamReaderRejectsHugeSize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	buf.WriteByte(0)                                                    // delta 0
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})   // giant varint
	if _, err := ReadStream(bytes.NewReader(buf.Bytes())); err == nil { // size >> maxStreamSize
		t.Fatal("implausible size accepted")
	}
}

func TestStreamReaderRejectsTimestampOverflow(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(streamMagic[:])
	// Two frames whose deltas sum past MaxInt64.
	big := make([]byte, 10)
	nb := putUvarintMax(big)
	buf.Write(big[:nb])
	buf.WriteByte(2) // size 1, dir 0
	buf.Write(big[:nb])
	buf.WriteByte(2)
	if _, err := ReadStream(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("timestamp overflow accepted")
	}
}

// putUvarintMax encodes MaxInt64 as a uvarint.
func putUvarintMax(b []byte) int {
	v := uint64(1)<<63 - 1
	i := 0
	for v >= 0x80 {
		b[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	b[i] = byte(v)
	return i + 1
}

func TestPcapSourceMatchesReadPcap(t *testing.T) {
	tr := randomValidTrace(rand.New(rand.NewSource(5)), 300)
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadPcap(bytes.NewReader(buf.Bytes()), &PcapOptions{DeviceIP: PcapDeviceIP()})
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPcapSource(bytes.NewReader(buf.Bytes()), &PcapOptions{DeviceIP: PcapDeviceIP()})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming pcap decode differs: %d vs %d packets", len(got), len(want))
	}
}

func TestPcapSourceRequiresDevice(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, Trace{{T: 0, Dir: In, Size: 100}}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPcapSource(bytes.NewReader(buf.Bytes()), nil); err == nil {
		t.Fatal("nil options accepted")
	}
	if _, err := NewPcapSource(bytes.NewReader(buf.Bytes()), &PcapOptions{}); err == nil {
		t.Fatal("unset DeviceIP accepted")
	}
}

func TestPcapSourceRejectsOutOfOrder(t *testing.T) {
	// Hand-build a capture whose second record precedes the first.
	sorted := Trace{{T: 0, Dir: In, Size: 100}, {T: 2 * time.Second, Dir: Out, Size: 100}}
	var buf bytes.Buffer
	if err := WritePcap(&buf, sorted); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Swap the two records in place: each is 16 (header) + frame bytes.
	// Rather than parse offsets, rewrite the timestamps: record headers sit
	// after the 24-byte global header; both frames have equal length.
	rec1 := 24
	// Set record 1's seconds to 5 (after record 2's 2).
	b[rec1], b[rec1+1], b[rec1+2], b[rec1+3] = 5, 0, 0, 0
	src, err := NewPcapSource(bytes.NewReader(b), &PcapOptions{DeviceIP: PcapDeviceIP()})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(src)
	if err == nil {
		t.Fatal("out-of-order capture accepted by streaming decoder")
	}
}
