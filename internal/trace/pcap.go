package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"
)

// This file reads and writes classic libpcap capture files, so the traces
// this library consumes can come straight from tcpdump — the tool the
// paper's data collection used on the phones.
//
// Reading: the global header's magic selects byte order and timestamp
// resolution; each record's captured bytes are parsed through the link
// layer (Ethernet, Linux cooked, raw IP) down to IPv4/IPv6 to find the
// source and destination addresses. Packet direction (device -> network or
// network -> device) requires knowing which address is the phone; callers
// can supply it, or the reader infers it as the address that participates
// in the most packets (on a single-device capture, the phone is an
// endpoint of every flow).
//
// Writing: each trace packet becomes a synthetic Ethernet+IPv4+UDP frame
// of the recorded size between a fixed device address and a fixed remote,
// preserving timestamps, directions and sizes — everything this library's
// algorithms consume. Round-tripping a trace through WritePcap/ReadPcap is
// therefore lossless for our purposes (tested), though of course the
// original payloads are not reconstructed.

const (
	pcapMagicMicro   = 0xa1b2c3d4
	pcapMagicNano    = 0xa1b23c4d
	pcapVersionMajor = 2
	pcapVersionMinor = 4

	linkNull     = 0   // BSD loopback: 4-byte family
	linkEthernet = 1   // DLT_EN10MB
	linkRaw      = 101 // raw IP
	linkSLL      = 113 // Linux cooked capture
)

// ErrNotPcap is returned when the stream does not start with a pcap magic.
var ErrNotPcap = errors.New("trace: not a pcap file")

// PcapOptions tunes ReadPcap.
type PcapOptions struct {
	// DeviceIP identifies the mobile device in the capture; packets whose
	// source is DeviceIP are Out, all others In. When unset, the reader
	// infers the device as the address participating in the most packets.
	DeviceIP netip.Addr
	// KeepUnparsed, when true, keeps records whose network layer cannot
	// be parsed (ARP and friends) as zero-size In packets rather than
	// dropping them.
	KeepUnparsed bool
}

type pcapHeader struct {
	order binary.ByteOrder
	nanos bool
	link  uint32
}

// ReadPcap parses a classic pcap capture into a Trace. Timestamps are
// rebased so the first packet is at offset 0. Direction is resolved per
// PcapOptions.
func ReadPcap(r io.Reader, opts *PcapOptions) (Trace, error) {
	br := bufio.NewReader(r)
	hdr, err := readPcapHeader(br)
	if err != nil {
		return nil, err
	}

	type rawPkt struct {
		ts       time.Duration
		size     int
		src, dst netip.Addr
		parsed   bool
	}
	var pkts []rawPkt
	var rec [16]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("trace: pcap record header: %w", err)
		}
		sec := hdr.order.Uint32(rec[0:4])
		frac := hdr.order.Uint32(rec[4:8])
		caplen := hdr.order.Uint32(rec[8:12])
		origlen := hdr.order.Uint32(rec[12:16])
		const maxFrame = 256 * 1024
		if caplen > maxFrame {
			return nil, fmt.Errorf("trace: pcap caplen %d implausible", caplen)
		}
		buf := make([]byte, caplen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trace: pcap record body: %w", err)
		}
		ts := time.Duration(sec) * time.Second
		if hdr.nanos {
			ts += time.Duration(frac)
		} else {
			ts += time.Duration(frac) * time.Microsecond
		}
		src, dst, ok := parseNetwork(hdr.link, buf)
		pkts = append(pkts, rawPkt{ts: ts, size: int(origlen), src: src, dst: dst, parsed: ok})
	}
	if len(pkts) == 0 {
		return Trace{}, nil
	}

	device := netip.Addr{}
	if opts != nil && opts.DeviceIP.IsValid() {
		device = opts.DeviceIP
	} else {
		device = inferDevice(func(yield func(src, dst netip.Addr)) {
			for _, p := range pkts {
				if p.parsed {
					yield(p.src, p.dst)
				}
			}
		})
	}

	keepUnparsed := opts != nil && opts.KeepUnparsed
	base := pkts[0].ts
	var tr Trace
	for _, p := range pkts {
		if !p.parsed && !keepUnparsed {
			continue
		}
		dir := In
		if p.parsed && p.src == device {
			dir = Out
		}
		size := p.size
		if !p.parsed {
			size = 0
		}
		tr = append(tr, Packet{T: p.ts - base, Dir: dir, Size: size})
	}
	tr.Sort() // guard against out-of-order captures
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func readPcapHeader(br *bufio.Reader) (pcapHeader, error) {
	var h [24]byte
	if _, err := io.ReadFull(br, h[:]); err != nil {
		return pcapHeader{}, fmt.Errorf("trace: pcap global header: %w", err)
	}
	magicLE := binary.LittleEndian.Uint32(h[0:4])
	magicBE := binary.BigEndian.Uint32(h[0:4])
	var hdr pcapHeader
	switch {
	case magicLE == pcapMagicMicro:
		hdr.order = binary.LittleEndian
	case magicLE == pcapMagicNano:
		hdr.order, hdr.nanos = binary.LittleEndian, true
	case magicBE == pcapMagicMicro:
		hdr.order = binary.BigEndian
	case magicBE == pcapMagicNano:
		hdr.order, hdr.nanos = binary.BigEndian, true
	default:
		return pcapHeader{}, ErrNotPcap
	}
	hdr.link = hdr.order.Uint32(h[20:24])
	return hdr, nil
}

// parseNetwork walks the link layer and extracts IP endpoints.
func parseNetwork(link uint32, frame []byte) (src, dst netip.Addr, ok bool) {
	var payload []byte
	var etherType uint16
	switch link {
	case linkEthernet:
		if len(frame) < 14 {
			return src, dst, false
		}
		etherType = binary.BigEndian.Uint16(frame[12:14])
		payload = frame[14:]
		// 802.1Q VLAN tag.
		if etherType == 0x8100 && len(payload) >= 4 {
			etherType = binary.BigEndian.Uint16(payload[2:4])
			payload = payload[4:]
		}
	case linkSLL:
		if len(frame) < 16 {
			return src, dst, false
		}
		etherType = binary.BigEndian.Uint16(frame[14:16])
		payload = frame[16:]
	case linkRaw:
		payload = frame
		etherType = ipEtherType(payload)
	case linkNull:
		if len(frame) < 4 {
			return src, dst, false
		}
		payload = frame[4:]
		etherType = ipEtherType(payload)
	default:
		return src, dst, false
	}

	switch etherType {
	case 0x0800: // IPv4
		return parseIPv4(payload)
	case 0x86DD: // IPv6
		return parseIPv6(payload)
	default:
		return src, dst, false
	}
}

func ipEtherType(payload []byte) uint16 {
	if len(payload) == 0 {
		return 0
	}
	switch payload[0] >> 4 {
	case 4:
		return 0x0800
	case 6:
		return 0x86DD
	default:
		return 0
	}
}

func parseIPv4(b []byte) (src, dst netip.Addr, ok bool) {
	if len(b) < 20 || b[0]>>4 != 4 {
		return src, dst, false
	}
	src = netip.AddrFrom4([4]byte(b[12:16]))
	dst = netip.AddrFrom4([4]byte(b[16:20]))
	return src, dst, true
}

func parseIPv6(b []byte) (src, dst netip.Addr, ok bool) {
	if len(b) < 40 || b[0]>>4 != 6 {
		return src, dst, false
	}
	src = netip.AddrFrom16([16]byte(b[8:24]))
	dst = netip.AddrFrom16([16]byte(b[24:40]))
	return src, dst, true
}

// inferDevice picks the address that appears (as either endpoint) in the
// most packets: on a single-device capture that is the device.
func inferDevice(each func(func(src, dst netip.Addr))) netip.Addr {
	counts := map[netip.Addr]int{}
	each(func(src, dst netip.Addr) {
		counts[src]++
		counts[dst]++
	})
	var best netip.Addr
	bestN := -1
	for a, n := range counts {
		if n > bestN || (n == bestN && a.Less(best)) {
			best, bestN = a, n
		}
	}
	return best
}

// PcapSource is a streaming pcap decoder: it parses records one at a time
// and yields packets in O(1) memory, never materializing the capture.
//
// Two things the materializing ReadPcap does are impossible in one
// streaming pass and are therefore traded away:
//
//   - Device inference needs the whole capture, so PcapSource requires
//     PcapOptions.DeviceIP (NewPcapSource errors without it).
//   - Out-of-order captures cannot be re-sorted, so a timestamp regression
//     is an error rather than silently reordered. tcpdump single-interface
//     captures are in order; fall back to ReadPcap otherwise.
type PcapSource struct {
	br     *bufio.Reader
	hdr    pcapHeader
	device netip.Addr
	keep   bool
	based  bool
	base   time.Duration
	last   time.Duration
	idx    int
	body   []byte
	err    error
	done   bool
}

// NewPcapSource parses the global header and returns a streaming Source
// over the capture's records. opts.DeviceIP is required (see PcapSource).
func NewPcapSource(r io.Reader, opts *PcapOptions) (*PcapSource, error) {
	if opts == nil || !opts.DeviceIP.IsValid() {
		return nil, errors.New("trace: streaming pcap requires PcapOptions.DeviceIP (device inference needs the whole capture; use ReadPcap)")
	}
	br := bufio.NewReader(r)
	hdr, err := readPcapHeader(br)
	if err != nil {
		return nil, err
	}
	return &PcapSource{br: br, hdr: hdr, device: opts.DeviceIP, keep: opts.KeepUnparsed}, nil
}

// Next implements Source.
func (ps *PcapSource) Next() (Packet, bool, error) {
	for {
		if ps.done || ps.err != nil {
			return Packet{}, false, ps.err
		}
		var rec [16]byte
		if _, err := io.ReadFull(ps.br, rec[:]); err != nil {
			if err == io.EOF {
				ps.done = true
				return Packet{}, false, nil
			}
			return ps.fail(fmt.Errorf("trace: pcap record %d header: %w", ps.idx, err))
		}
		sec := ps.hdr.order.Uint32(rec[0:4])
		frac := ps.hdr.order.Uint32(rec[4:8])
		caplen := ps.hdr.order.Uint32(rec[8:12])
		origlen := ps.hdr.order.Uint32(rec[12:16])
		const maxFrame = 256 * 1024
		if caplen > maxFrame {
			return ps.fail(fmt.Errorf("trace: pcap record %d: caplen %d implausible", ps.idx, caplen))
		}
		if cap(ps.body) < int(caplen) {
			ps.body = make([]byte, caplen)
		}
		body := ps.body[:caplen]
		if _, err := io.ReadFull(ps.br, body); err != nil {
			return ps.fail(fmt.Errorf("trace: pcap record %d body: %w", ps.idx, err))
		}
		ts := time.Duration(sec) * time.Second
		if ps.hdr.nanos {
			ts += time.Duration(frac)
		} else {
			ts += time.Duration(frac) * time.Microsecond
		}
		if !ps.based {
			ps.base, ps.based = ts, true
		}
		if ts < ps.base+ps.last {
			return ps.fail(fmt.Errorf("trace: pcap record %d out of order (%v after %v); streaming decode needs an in-order capture, use ReadPcap", ps.idx, ts-ps.base, ps.last))
		}
		ps.idx++
		src, _, parsed := parseNetwork(ps.hdr.link, body)
		if !parsed && !ps.keep {
			continue
		}
		dir := In
		if parsed && src == ps.device {
			dir = Out
		}
		size := int(origlen)
		if !parsed {
			size = 0
		}
		ps.last = ts - ps.base
		return Packet{T: ps.last, Dir: dir, Size: size}, true, nil
	}
}

func (ps *PcapSource) fail(err error) (Packet, bool, error) {
	ps.err = err
	return Packet{}, false, err
}

// Synthetic endpoints used by WritePcap.
var (
	pcapDeviceIP = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	pcapRemoteIP = netip.AddrFrom4([4]byte{192, 0, 2, 80}) // TEST-NET-1
)

// PcapDeviceIP returns the device address WritePcap synthesizes, for use
// as PcapOptions.DeviceIP when round-tripping.
func PcapDeviceIP() netip.Addr { return pcapDeviceIP }

// WritePcap writes the trace as a classic little-endian microsecond pcap
// with synthetic Ethernet+IPv4+UDP framing: timestamps, directions and
// sizes round-trip; payload content is zeros.
func WritePcap(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	var gh [24]byte
	le := binary.LittleEndian
	le.PutUint32(gh[0:4], pcapMagicMicro)
	le.PutUint16(gh[4:6], pcapVersionMajor)
	le.PutUint16(gh[6:8], pcapVersionMinor)
	le.PutUint32(gh[16:20], 65535) // snaplen
	le.PutUint32(gh[20:24], linkEthernet)
	if _, err := bw.Write(gh[:]); err != nil {
		return err
	}

	const minFrame = 14 + 20 + 8 // Ethernet + IPv4 + UDP
	for _, p := range tr {
		frame := buildFrame(p)
		var rh [16]byte
		le.PutUint32(rh[0:4], uint32(p.T/time.Second))
		le.PutUint32(rh[4:8], uint32(p.T%time.Second)/1000)
		le.PutUint32(rh[8:12], uint32(len(frame)))
		origLen := p.Size
		if origLen < minFrame {
			origLen = minFrame
		}
		le.PutUint32(rh[12:16], uint32(origLen))
		if _, err := bw.Write(rh[:]); err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// buildFrame assembles the synthetic Ethernet+IPv4+UDP frame for a packet.
// The frame is capped at 2048 captured bytes (like a snaplen) — original
// sizes live in the record header.
func buildFrame(p Packet) []byte {
	size := p.Size
	const minFrame = 14 + 20 + 8
	if size < minFrame {
		size = minFrame
	}
	const snap = 2048
	capLen := size
	if capLen > snap {
		capLen = snap
	}
	frame := make([]byte, capLen)
	// Ethernet.
	copy(frame[0:6], []byte{2, 0, 0, 0, 0, 2})
	copy(frame[6:12], []byte{2, 0, 0, 0, 0, 1})
	binary.BigEndian.PutUint16(frame[12:14], 0x0800)
	// IPv4.
	ip := frame[14:]
	ip[0] = 0x45
	ipLen := size - 14
	if ipLen > 65535 {
		ipLen = 65535
	}
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = 17 // UDP
	src, dst := pcapDeviceIP, pcapRemoteIP
	if p.Dir == In {
		src, dst = dst, src
	}
	copy(ip[12:16], src.AsSlice())
	copy(ip[16:20], dst.AsSlice())
	// UDP.
	udp := ip[20:]
	binary.BigEndian.PutUint16(udp[0:2], 40000)
	binary.BigEndian.PutUint16(udp[2:4], 53)
	udpLen := ipLen - 20
	if udpLen > 65535 {
		udpLen = 65535
	}
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpLen))
	return frame
}
