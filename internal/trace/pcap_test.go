package trace

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func pcapSample() Trace {
	return Trace{
		{T: 0, Dir: Out, Size: 100},
		{T: sec(0.5), Dir: In, Size: 1400},
		{T: sec(0.6), Dir: In, Size: 1400},
		{T: sec(10), Dir: Out, Size: 60},
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, pcapSample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := pcapSample()
	if len(got) != len(want) {
		t.Fatalf("got %d packets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Dir != want[i].Dir {
			t.Errorf("packet %d direction = %v, want %v", i, got[i].Dir, want[i].Dir)
		}
		if got[i].Size != want[i].Size {
			t.Errorf("packet %d size = %d, want %d", i, got[i].Size, want[i].Size)
		}
		// Timestamps are microsecond-quantized by the format.
		if d := got[i].T - want[i].T; d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("packet %d time = %v, want %v", i, got[i].T, want[i].T)
		}
	}
}

func TestPcapExplicitDeviceIP(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, pcapSample()); err != nil {
		t.Fatal(err)
	}
	// Designating the *remote* as the device flips every direction.
	got, err := ReadPcap(&buf, &PcapOptions{DeviceIP: netip.AddrFrom4([4]byte{192, 0, 2, 80})})
	if err != nil {
		t.Fatal(err)
	}
	want := pcapSample()
	for i := range want {
		flipped := Out
		if want[i].Dir == Out {
			flipped = In
		}
		if got[i].Dir != flipped {
			t.Fatalf("packet %d direction not flipped", i)
		}
	}
}

func TestPcapDeviceInference(t *testing.T) {
	// Device 10.0.0.1 talks to two remotes; the device participates in
	// every packet and must be inferred.
	var buf bytes.Buffer
	if err := WritePcap(&buf, pcapSample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dir != Out {
		t.Fatal("first packet (from device) should be Out")
	}
	if PcapDeviceIP() != netip.AddrFrom4([4]byte{10, 0, 0, 1}) {
		t.Fatal("synthetic device IP changed")
	}
}

func TestPcapNotPcap(t *testing.T) {
	if _, err := ReadPcap(strings.NewReader("definitely not a pcap file......."), nil); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestPcapTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, pcapSample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadPcap(bytes.NewReader(b[:len(b)-10]), nil); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestPcapEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePcap(&buf, Trace{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d packets from empty capture", len(got))
	}
}

func TestPcapBigEndianAndNano(t *testing.T) {
	// Hand-build a big-endian nanosecond capture with one raw-IP packet.
	var buf bytes.Buffer
	var gh [24]byte
	be := binary.BigEndian
	be.PutUint32(gh[0:4], pcapMagicNano)
	be.PutUint16(gh[4:6], 2)
	be.PutUint16(gh[6:8], 4)
	be.PutUint32(gh[16:20], 65535)
	be.PutUint32(gh[20:24], linkRaw)
	buf.Write(gh[:])

	ip := make([]byte, 20)
	ip[0] = 0x45
	be.PutUint16(ip[2:4], 20)
	ip[9] = 17
	copy(ip[12:16], []byte{10, 1, 1, 1})
	copy(ip[16:20], []byte{8, 8, 8, 8})

	var rh [16]byte
	be.PutUint32(rh[0:4], 100) // 100 s
	be.PutUint32(rh[4:8], 500) // 500 ns
	be.PutUint32(rh[8:12], uint32(len(ip)))
	be.PutUint32(rh[12:16], uint32(len(ip)))
	buf.Write(rh[:])
	buf.Write(ip)

	got, err := ReadPcap(&buf, &PcapOptions{DeviceIP: netip.AddrFrom4([4]byte{10, 1, 1, 1})})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dir != Out || got[0].Size != 20 {
		t.Fatalf("parsed %+v", got)
	}
}

func TestPcapLinuxSLL(t *testing.T) {
	var buf bytes.Buffer
	var gh [24]byte
	le := binary.LittleEndian
	le.PutUint32(gh[0:4], pcapMagicMicro)
	le.PutUint32(gh[20:24], linkSLL)
	buf.Write(gh[:])

	// SLL header (16 bytes) + IPv6 header (40 bytes).
	sll := make([]byte, 16)
	binary.BigEndian.PutUint16(sll[14:16], 0x86DD)
	ip6 := make([]byte, 40)
	ip6[0] = 0x60
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("2001:db8::2")
	copy(ip6[8:24], src.AsSlice())
	copy(ip6[24:40], dst.AsSlice())

	frame := append(sll, ip6...)
	var rh [16]byte
	le.PutUint32(rh[8:12], uint32(len(frame)))
	le.PutUint32(rh[12:16], uint32(len(frame)))
	buf.Write(rh[:])
	buf.Write(frame)

	got, err := ReadPcap(&buf, &PcapOptions{DeviceIP: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dir != Out {
		t.Fatalf("SLL/IPv6 parse: %+v", got)
	}
}

func TestPcapUnparseableDropped(t *testing.T) {
	// An Ethernet frame with an ARP ethertype is dropped by default and
	// kept (as zero-size In) with KeepUnparsed.
	var buf bytes.Buffer
	var gh [24]byte
	le := binary.LittleEndian
	le.PutUint32(gh[0:4], pcapMagicMicro)
	le.PutUint32(gh[20:24], linkEthernet)
	buf.Write(gh[:])
	frame := make([]byte, 60)
	binary.BigEndian.PutUint16(frame[12:14], 0x0806) // ARP
	var rh [16]byte
	le.PutUint32(rh[8:12], uint32(len(frame)))
	le.PutUint32(rh[12:16], uint32(len(frame)))
	buf.Write(rh[:])
	buf.Write(frame)
	data := buf.Bytes()

	got, err := ReadPcap(bytes.NewReader(data), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("ARP kept by default: %+v", got)
	}
	got, err = ReadPcap(bytes.NewReader(data), &PcapOptions{KeepUnparsed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Size != 0 {
		t.Fatalf("KeepUnparsed: %+v", got)
	}
}

func TestPcapVLANTag(t *testing.T) {
	var buf bytes.Buffer
	var gh [24]byte
	le := binary.LittleEndian
	le.PutUint32(gh[0:4], pcapMagicMicro)
	le.PutUint32(gh[20:24], linkEthernet)
	buf.Write(gh[:])

	eth := make([]byte, 14)
	binary.BigEndian.PutUint16(eth[12:14], 0x8100) // 802.1Q
	vlan := []byte{0x00, 0x01, 0x08, 0x00}         // tag + IPv4 ethertype
	ip := make([]byte, 20)
	ip[0] = 0x45
	copy(ip[12:16], []byte{10, 0, 0, 9})
	copy(ip[16:20], []byte{1, 1, 1, 1})
	frame := append(append(eth, vlan...), ip...)

	var rh [16]byte
	le.PutUint32(rh[8:12], uint32(len(frame)))
	le.PutUint32(rh[12:16], uint32(len(frame)))
	buf.Write(rh[:])
	buf.Write(frame)

	got, err := ReadPcap(&buf, &PcapOptions{DeviceIP: netip.AddrFrom4([4]byte{10, 0, 0, 9})})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dir != Out {
		t.Fatalf("VLAN parse: %+v", got)
	}
}

func TestPropertyPcapRoundTripPreservesSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%40 + 1
		tr := make(Trace, n)
		var ts time.Duration
		for i := range tr {
			ts += time.Duration(r.Int63n(int64(5 * time.Second)))
			dir := In
			if r.Intn(2) == 0 {
				dir = Out
			}
			// Sizes at least the minimal frame so they round-trip exactly.
			tr[i] = Packet{T: ts, Dir: dir, Size: 42 + r.Intn(1400)}
		}
		var buf bytes.Buffer
		if err := WritePcap(&buf, tr); err != nil {
			return false
		}
		got, err := ReadPcap(&buf, &PcapOptions{DeviceIP: PcapDeviceIP()})
		if err != nil || len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i].Dir != tr[i].Dir || got[i].Size != tr[i].Size {
				return false
			}
			// First packet rebased to 0.
			wantT := tr[i].T - tr[0].T
			if d := got[i].T - wantT; d > time.Microsecond || d < -time.Microsecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
