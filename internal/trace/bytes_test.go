package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// drain pulls every packet out of a Source, returning the packets, the
// terminal error (nil on clean EOF) and the index at which it occurred.
func drain(src Source) (Trace, int, error) {
	var tr Trace
	for {
		p, ok, err := src.Next()
		if err != nil {
			return tr, len(tr), err
		}
		if !ok {
			return tr, len(tr), nil
		}
		tr = append(tr, p)
	}
}

func TestEncodeStreamMatchesWriteStream(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 3, 500} {
		tr := randomValidTrace(r, n)
		var want bytes.Buffer
		if err := WriteStream(&want, tr); err != nil {
			t.Fatal(err)
		}
		got, err := EncodeStream(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("n=%d: EncodeStream bytes differ from WriteStream", n)
		}
	}
}

func TestBytesSourceRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for _, n := range []int{0, 1, 3, 500} {
		tr := randomValidTrace(r, n)
		slab, err := EncodeStream(tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewBytesSource(slab)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := drain(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tr) || (n > 0 && !reflect.DeepEqual(got, tr)) {
			t.Fatalf("n=%d: BytesSource replay differs from the original trace", n)
		}
		// A drained source keeps reporting clean EOF, like every Source.
		if _, ok, err := src.Next(); ok || err != nil {
			t.Fatalf("n=%d: Next after EOF: ok=%v err=%v", n, ok, err)
		}
	}
}

func TestBytesSourceReset(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomValidTrace(r, 40)
	b := randomValidTrace(r, 7)
	slabA, err := EncodeStream(a.Source())
	if err != nil {
		t.Fatal(err)
	}
	slabB, err := EncodeStream(b.Source())
	if err != nil {
		t.Fatal(err)
	}
	var src BytesSource
	// One value replays slab A, then slab B, then slab A again — the reuse
	// pattern workers depend on — with no state leaking between slabs.
	for i, want := range []Trace{a, b, a} {
		var slab []byte
		if reflect.DeepEqual(want, b) {
			slab = slabB
		} else {
			slab = slabA
		}
		if err := src.Reset(slab); err != nil {
			t.Fatalf("reset %d: %v", i, err)
		}
		got, _, err := drain(&src)
		if err != nil {
			t.Fatalf("reset %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("reset %d: replay differs", i)
		}
	}
	// Reset mid-stream rewinds: reading half of A then resetting must
	// reproduce A in full.
	if err := src.Reset(slabA); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(a)/2; i++ {
		if _, ok, err := src.Next(); !ok || err != nil {
			t.Fatalf("mid-stream read %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := src.Reset(slabA); err != nil {
		t.Fatal(err)
	}
	got, _, err := drain(&src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatal("replay after mid-stream Reset differs")
	}
}

func TestBytesSourceBadInput(t *testing.T) {
	if _, err := NewBytesSource(nil); !errors.Is(err, ErrNotStream) {
		t.Fatalf("nil slab: %v", err)
	}
	if _, err := NewBytesSource([]byte("RRC")); !errors.Is(err, ErrNotStream) {
		t.Fatalf("short slab: %v", err)
	}
	if _, err := NewBytesSource([]byte("NOTASTRM garbage")); !errors.Is(err, ErrNotStream) {
		t.Fatalf("bad magic: %v", err)
	}
	// A failed Reset must not clobber the source's current slab.
	tr := Trace{{T: time.Second, Dir: In, Size: 9}}
	slab, err := EncodeStream(tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	var src BytesSource
	if err := src.Reset(slab); err != nil {
		t.Fatal(err)
	}
	if err := src.Reset([]byte("xx")); !errors.Is(err, ErrNotStream) {
		t.Fatalf("bad reset: %v", err)
	}
	got, _, err := drain(&src)
	if err != nil || !reflect.DeepEqual(got, tr) {
		t.Fatalf("replay after failed Reset: %v %v", got, err)
	}
	// A failing source stays failed: truncate a valid slab mid-frame and
	// the error must repeat on every subsequent Next.
	bad := slab[:len(slab)-1]
	fsrc, err := NewBytesSource(bad)
	if err != nil {
		t.Fatal(err)
	}
	_, _, first := drain(fsrc)
	if first == nil {
		t.Fatal("truncated slab decoded cleanly")
	}
	if _, ok, again := fsrc.Next(); ok || again == nil {
		t.Fatalf("Next after error: ok=%v err=%v", ok, again)
	}
}

// FuzzBytesSource holds BytesSource to StreamReader's behaviour on
// arbitrary bytes: both decoders must yield the identical packet sequence
// and agree on whether the input is clean or corrupt — and neither may
// panic. This is the property the trace cache leans on: replaying a cached
// slab is indistinguishable from re-reading the stream that produced it.
func FuzzBytesSource(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("RRCSTRM1"))
	seedTrace := Trace{
		{T: 0, Dir: Out, Size: 100},
		{T: time.Second, Dir: In, Size: 1400},
		{T: 2 * time.Second, Dir: Out, Size: 0},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, seedTrace); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()-1])
	f.Add(append(append([]byte(nil), buf.Bytes()...), 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		bsrc, berr := NewBytesSource(data)
		rsrc, rerr := NewStreamReader(bytes.NewReader(data))
		if (berr == nil) != (rerr == nil) {
			t.Fatalf("constructor disagreement: bytes=%v reader=%v", berr, rerr)
		}
		if berr != nil {
			if !errors.Is(berr, ErrNotStream) || !errors.Is(rerr, ErrNotStream) {
				t.Fatalf("non-magic constructor error: bytes=%v reader=%v", berr, rerr)
			}
			return
		}
		btr, bidx, berr2 := drain(bsrc)
		rtr, ridx, rerr2 := drain(rsrc)
		if (berr2 == nil) != (rerr2 == nil) || bidx != ridx {
			t.Fatalf("decode disagreement at %d/%d: bytes=%v reader=%v",
				bidx, ridx, berr2, rerr2)
		}
		if len(btr) != len(rtr) || (len(btr) > 0 && !reflect.DeepEqual(btr, rtr)) {
			t.Fatalf("packet disagreement: %d vs %d packets", len(btr), len(rtr))
		}
		if berr2 == nil {
			if err := btr.Validate(); err != nil {
				t.Fatalf("clean decode yielded invalid trace: %v", err)
			}
		}
	})
}
