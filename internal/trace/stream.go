package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// This file implements the streaming binary trace format ("rrcstream"): a
// framed codec designed so both ends run in O(1) memory. Unlike the rrcbin
// container (which front-loads a packet count and fixed-size records), a
// stream file is just a magic header followed by self-delimiting frames —
// a writer can emit packets as a generator produces them, and a reader can
// feed a replay engine without ever holding the trace.
//
// Frame layout, per packet:
//
//	uvarint   delta   timestamp delta to the previous packet, nanoseconds
//	uvarint   sd      size<<1 | dir   (dir: 0 = out/uplink, 1 = in/downlink)
//
// Delta encoding exploits the sortedness invariant (deltas are always
// >= 0) and makes typical packets 2-5 bytes instead of rrcbin's fixed 13.
// End of stream is end of input; a truncated final frame is an error.

// streamMagic identifies the streaming trace format.
var streamMagic = [8]byte{'R', 'R', 'C', 'S', 'T', 'R', 'M', '1'}

// ErrNotStream is returned when input does not start with the streaming
// trace magic.
var ErrNotStream = errors.New("trace: bad magic (not a streaming trace)")

// maxStreamSize bounds a single decoded packet size: large enough for any
// real frame, small enough that a forged varint cannot smuggle an absurd
// value into int arithmetic downstream (decoded sizes fit a 32-bit int).
const maxStreamSize int64 = 1 << 31

// StreamWriter encodes packets into the streaming binary format as they
// arrive. It enforces the Trace invariants (sorted timestamps, valid
// directions, non-negative sizes) at the boundary, so any file it produces
// decodes back to a valid trace.
type StreamWriter struct {
	bw    *bufio.Writer
	last  time.Duration
	wrote bool
	buf   [2 * binary.MaxVarintLen64]byte
}

// NewStreamWriter writes the format magic and returns a writer ready for
// packets. Call Flush when done.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(streamMagic[:]); err != nil {
		return nil, err
	}
	return &StreamWriter{bw: bw}, nil
}

// Write appends one packet frame.
func (sw *StreamWriter) Write(p Packet) error {
	if p.T < 0 {
		return fmt.Errorf("%w: at %v", ErrNegativeTime, p.T)
	}
	if sw.wrote && p.T < sw.last {
		return fmt.Errorf("%w: %v after %v", ErrUnsorted, p.T, sw.last)
	}
	if !p.Dir.Valid() {
		return fmt.Errorf("%w: %v", ErrBadDirection, p.Dir)
	}
	if p.Size < 0 {
		return fmt.Errorf("%w: %d", ErrNegativeSize, p.Size)
	}
	if int64(p.Size) >= maxStreamSize {
		return fmt.Errorf("trace: packet size %d exceeds the stream format limit", p.Size)
	}
	delta := p.T - sw.last
	if !sw.wrote {
		delta = p.T
	}
	n := binary.PutUvarint(sw.buf[:], uint64(delta))
	n += binary.PutUvarint(sw.buf[n:], uint64(p.Size)<<1|uint64(p.Dir&1))
	if _, err := sw.bw.Write(sw.buf[:n]); err != nil {
		return err
	}
	sw.last, sw.wrote = p.T, true
	return nil
}

// Flush drains buffered frames to the underlying writer.
func (sw *StreamWriter) Flush() error { return sw.bw.Flush() }

// StreamReader decodes the streaming binary format as a Source. Decoded
// packets are validated frame by frame (the delta encoding makes unsorted
// or negative timestamps unrepresentable; sizes are bounded), so a
// StreamReader never yields an invalid packet.
type StreamReader struct {
	br   *bufio.Reader
	last time.Duration
	idx  int
	err  error
	done bool
}

// NewStreamReader checks the magic and returns a Source over the frames.
// Input shorter than the magic reports ErrNotStream (it cannot be a
// stream), so format-sniffing callers can fall through to other codecs
// while genuine frame corruption stays a distinct, loud error.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: input shorter than the magic", ErrNotStream)
		}
		return nil, fmt.Errorf("trace: reading stream magic: %w", err)
	}
	if magic != streamMagic {
		return nil, ErrNotStream
	}
	return &StreamReader{br: br}, nil
}

// Next implements Source.
func (sr *StreamReader) Next() (Packet, bool, error) {
	if sr.done || sr.err != nil {
		return Packet{}, false, sr.err
	}
	delta, err := binary.ReadUvarint(sr.br)
	if err == io.EOF {
		sr.done = true
		return Packet{}, false, nil
	}
	if err != nil {
		return sr.fail(fmt.Errorf("trace: stream frame %d: reading delta: %w", sr.idx, err))
	}
	sd, err := binary.ReadUvarint(sr.br)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return sr.fail(fmt.Errorf("trace: stream frame %d: reading size: %w", sr.idx, err))
	}
	if delta > uint64(math.MaxInt64)-uint64(sr.last) {
		return sr.fail(fmt.Errorf("trace: stream frame %d: timestamp overflow", sr.idx))
	}
	size := sd >> 1
	if size >= uint64(maxStreamSize) {
		return sr.fail(fmt.Errorf("trace: stream frame %d: implausible size %d", sr.idx, size))
	}
	sr.last += time.Duration(delta)
	p := Packet{T: sr.last, Dir: Direction(sd & 1), Size: int(size)}
	sr.idx++
	return p, true, nil
}

func (sr *StreamReader) fail(err error) (Packet, bool, error) {
	sr.err = err
	return Packet{}, false, err
}

// WriteStream writes a materialized trace in the streaming binary format.
func WriteStream(w io.Writer, tr Trace) error {
	sw, err := NewStreamWriter(w)
	if err != nil {
		return err
	}
	for _, p := range tr {
		if err := sw.Write(p); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// ReadStream materializes a streaming binary trace. The result is valid by
// construction (see StreamReader).
func ReadStream(r io.Reader) (Trace, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	return Collect(sr)
}
