// Package trace provides the packet-trace substrate used throughout the
// library: packet records, whole traces, pull-based streaming sources,
// burst/session segmentation, and summary statistics.
//
// The algorithms in this repository (MakeIdle, MakeActive and the baselines
// they are compared against) consume nothing but packet timestamps,
// directions and lengths, exactly as the control module of the paper observes
// them at the socket layer. A Trace is therefore the universal currency of
// the simulator: synthetic workload generators produce them, codecs persist
// them, and the simulation engine replays them against a radio model.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// Direction tells whether a packet was sent by the mobile device or received
// from the network. The energy model charges uplink and downlink traffic at
// different power levels (Table 1 of the paper).
type Direction uint8

const (
	// Out is an uplink packet (mobile -> base station).
	Out Direction = iota
	// In is a downlink packet (base station -> mobile).
	In
)

// String returns "out" or "in".
func (d Direction) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

// Valid reports whether d is one of the two defined directions.
func (d Direction) Valid() bool { return d == Out || d == In }

// Packet is a single captured packet: an offset from the beginning of the
// trace, a direction, and a length in bytes. This mirrors what tcpdump
// provided the paper's trace-driven simulator.
type Packet struct {
	// T is the packet timestamp as an offset from the trace origin.
	T time.Duration
	// Dir is the packet direction.
	Dir Direction
	// Size is the packet length in bytes, including headers.
	Size int
}

// Trace is a time-ordered sequence of packets.
type Trace []Packet

// Common validation errors returned by Validate.
var (
	ErrUnsorted     = errors.New("trace: packets not sorted by timestamp")
	ErrNegativeTime = errors.New("trace: packet with negative timestamp")
	ErrBadDirection = errors.New("trace: packet with invalid direction")
	ErrNegativeSize = errors.New("trace: packet with negative size")
)

// Validate checks the invariants every other package relies on: timestamps
// are non-negative and non-decreasing, directions are valid and sizes are
// non-negative. It returns the first violation found.
func (tr Trace) Validate() error {
	var last time.Duration
	for i, p := range tr {
		if p.T < 0 {
			return fmt.Errorf("%w: packet %d at %v", ErrNegativeTime, i, p.T)
		}
		if p.T < last {
			return fmt.Errorf("%w: packet %d at %v after %v", ErrUnsorted, i, p.T, last)
		}
		if !p.Dir.Valid() {
			return fmt.Errorf("%w: packet %d", ErrBadDirection, i)
		}
		if p.Size < 0 {
			return fmt.Errorf("%w: packet %d", ErrNegativeSize, i)
		}
		last = p.T
	}
	return nil
}

// Duration returns the time span from the trace origin to the last packet.
// An empty trace has zero duration.
func (tr Trace) Duration() time.Duration {
	if len(tr) == 0 {
		return 0
	}
	return tr[len(tr)-1].T
}

// Bytes returns the total payload volume, split by direction.
func (tr Trace) Bytes() (out, in int64) {
	for _, p := range tr {
		if p.Dir == Out {
			out += int64(p.Size)
		} else {
			in += int64(p.Size)
		}
	}
	return out, in
}

// InterArrivals returns the len(tr)-1 gaps between consecutive packets.
// It returns nil for traces with fewer than two packets.
func (tr Trace) InterArrivals() []time.Duration {
	if len(tr) < 2 {
		return nil
	}
	gaps := make([]time.Duration, len(tr)-1)
	for i := 1; i < len(tr); i++ {
		gaps[i-1] = tr[i].T - tr[i-1].T
	}
	return gaps
}

// Sort orders the trace by timestamp (stably, so simultaneous packets keep
// their relative order). Generators that interleave several application
// models use this before handing out a trace.
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool { return tr[i].T < tr[j].T })
}

// Clone returns a deep copy of the trace.
func (tr Trace) Clone() Trace {
	out := make(Trace, len(tr))
	copy(out, tr)
	return out
}

// Shift returns a copy of the trace with every timestamp moved by d.
// It panics if the shift would make a timestamp negative.
func (tr Trace) Shift(d time.Duration) Trace {
	out := make(Trace, len(tr))
	for i, p := range tr {
		p.T += d
		if p.T < 0 {
			panic(fmt.Sprintf("trace: Shift(%v) drives packet %d negative", d, i))
		}
		out[i] = p
	}
	return out
}

// Slice returns the sub-trace with timestamps in [from, to), re-based so the
// first returned packet keeps its absolute offset (timestamps are not
// shifted). The result aliases no memory with tr.
func (tr Trace) Slice(from, to time.Duration) Trace {
	var out Trace
	for _, p := range tr {
		if p.T >= from && p.T < to {
			out = append(out, p)
		}
	}
	return out
}

// Concat joins traces end-to-end: each subsequent trace is shifted to
// begin gap after the previous one's last packet. Useful for composing
// multi-day captures from daily segments.
func Concat(gap time.Duration, traces ...Trace) Trace {
	if gap < 0 {
		panic("trace: Concat requires a non-negative gap")
	}
	var out Trace
	var offset time.Duration
	for _, t := range traces {
		if len(t) == 0 {
			continue
		}
		base := t[0].T
		for _, p := range t {
			p.T = p.T - base + offset
			out = append(out, p)
		}
		offset = out[len(out)-1].T + gap
	}
	return out
}

// Merge combines several traces into one time-ordered trace. Inputs are not
// modified. This is how per-application traces combine into a per-user
// workload (the paper's users ran several background apps concurrently).
func Merge(traces ...Trace) Trace {
	var n int
	for _, t := range traces {
		n += len(t)
	}
	out := make(Trace, 0, n)
	for _, t := range traces {
		out = append(out, t...)
	}
	out.Sort()
	return out
}

// Burst is a maximal run of packets in which no inter-arrival gap is
// larger than the segmentation threshold. The paper calls these "sessions"
// or "traffic bursts"; MakeActive operates on them.
type Burst struct {
	// Start and End are the timestamps of the first and last packet.
	Start, End time.Duration
	// Packets is the sub-slice of the original trace (aliased, not copied).
	Packets Trace
}

// Span returns the burst's duration (zero for single-packet bursts).
func (b Burst) Span() time.Duration { return b.End - b.Start }

// Bursts segments the trace into bursts using gap as the split threshold:
// a new burst begins whenever the inter-arrival time exceeds gap.
// It panics if gap is not positive.
func (tr Trace) Bursts(gap time.Duration) []Burst {
	if gap <= 0 {
		panic("trace: Bursts requires a positive gap")
	}
	if len(tr) == 0 {
		return nil
	}
	var bursts []Burst
	start := 0
	for i := 1; i < len(tr); i++ {
		if tr[i].T-tr[i-1].T > gap {
			bursts = append(bursts, Burst{
				Start:   tr[start].T,
				End:     tr[i-1].T,
				Packets: tr[start:i],
			})
			start = i
		}
	}
	bursts = append(bursts, Burst{
		Start:   tr[start].T,
		End:     tr[len(tr)-1].T,
		Packets: tr[start:],
	})
	return bursts
}

// Stats summarises a trace for reports and sanity checks.
type Stats struct {
	Packets      int
	OutBytes     int64
	InBytes      int64
	Duration     time.Duration
	MeanGap      time.Duration
	MedianGap    time.Duration
	MaxGap       time.Duration
	Bursts       int           // segmented at the gap passed to Summarize
	MeanBurstLen float64       // packets per burst
	BurstGap     time.Duration // the segmentation gap used
}

// Summarize computes Stats with bursts segmented at burstGap.
func (tr Trace) Summarize(burstGap time.Duration) Stats {
	s := Stats{Packets: len(tr), Duration: tr.Duration(), BurstGap: burstGap}
	s.OutBytes, s.InBytes = tr.Bytes()
	gaps := tr.InterArrivals()
	if len(gaps) > 0 {
		sorted := make([]time.Duration, len(gaps))
		copy(sorted, gaps)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, g := range sorted {
			sum += g
		}
		s.MeanGap = sum / time.Duration(len(sorted))
		s.MedianGap = sorted[len(sorted)/2]
		s.MaxGap = sorted[len(sorted)-1]
	}
	if burstGap > 0 && len(tr) > 0 {
		bursts := tr.Bursts(burstGap)
		s.Bursts = len(bursts)
		s.MeanBurstLen = float64(len(tr)) / float64(len(bursts))
	}
	return s
}

// QuantileGap returns the q-th quantile (0 <= q <= 1) of the inter-arrival
// distribution, using linear interpolation between order statistics. This is
// the primitive behind the paper's "95% IAT" baseline. It returns 0 for
// traces with fewer than two packets and panics on q outside [0, 1].
func (tr Trace) QuantileGap(q float64) time.Duration {
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("trace: quantile %v out of [0,1]", q))
	}
	gaps := tr.InterArrivals()
	if len(gaps) == 0 {
		return 0
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	if len(gaps) == 1 {
		return gaps[0]
	}
	pos := q * float64(len(gaps)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return gaps[lo]
	}
	frac := pos - float64(lo)
	return gaps[lo] + time.Duration(frac*float64(gaps[hi]-gaps[lo]))
}
