package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// This file is the in-memory face of the rrcstream codec (stream.go): a
// zero-copy Source over an encoded byte slab, and the encoder that
// produces such slabs from any Source. Together they back the trace
// cache — a generated cohort trace is streamed once through the codec
// into a compact slab (2-5 bytes per packet instead of the 24-byte
// in-memory Packet), and every later replay decodes straight out of
// those shared bytes without copying or materializing.

// BytesSource is a Source decoding rrcstream frames directly from a byte
// slice. It is StreamReader without the io.Reader plumbing: no buffering,
// no per-frame reader calls, and no copy of the input — many BytesSources
// may replay one shared slab concurrently (each holds only its own
// cursor; the slab is never written). The validation is StreamReader's:
// the delta encoding makes unsorted or negative timestamps
// unrepresentable, sizes are bounded, and a truncated or overflowing
// frame is an error, so a BytesSource never yields an invalid packet.
type BytesSource struct {
	b    []byte
	off  int
	last time.Duration
	idx  int
	err  error
	done bool
}

// NewBytesSource checks the magic and returns a Source over the slab's
// frames. Input shorter than the magic reports ErrNotStream, like
// NewStreamReader.
func NewBytesSource(b []byte) (*BytesSource, error) {
	s := &BytesSource{}
	if err := s.Reset(b); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-points the source at a slab and rewinds it, so one BytesSource
// value can replay many slabs (or the same slab repeatedly) without
// allocating. It reports ErrNotStream when the slab does not start with
// the rrcstream magic.
func (s *BytesSource) Reset(b []byte) error {
	if len(b) < len(streamMagic) {
		return fmt.Errorf("%w: input shorter than the magic", ErrNotStream)
	}
	if !bytes.Equal(b[:len(streamMagic)], streamMagic[:]) {
		return ErrNotStream
	}
	*s = BytesSource{b: b, off: len(streamMagic)}
	return nil
}

// Next implements Source.
func (s *BytesSource) Next() (Packet, bool, error) {
	if s.done || s.err != nil {
		return Packet{}, false, s.err
	}
	if s.off == len(s.b) {
		s.done = true
		return Packet{}, false, nil
	}
	delta, n := binary.Uvarint(s.b[s.off:])
	if n <= 0 {
		return s.fail(fmt.Errorf("trace: stream frame %d: reading delta: truncated or overlong varint", s.idx))
	}
	s.off += n
	sd, n := binary.Uvarint(s.b[s.off:])
	if n <= 0 {
		return s.fail(fmt.Errorf("trace: stream frame %d: reading size: truncated or overlong varint", s.idx))
	}
	s.off += n
	if delta > uint64(math.MaxInt64)-uint64(s.last) {
		return s.fail(fmt.Errorf("trace: stream frame %d: timestamp overflow", s.idx))
	}
	size := sd >> 1
	if size >= uint64(maxStreamSize) {
		return s.fail(fmt.Errorf("trace: stream frame %d: implausible size %d", s.idx, size))
	}
	s.last += time.Duration(delta)
	p := Packet{T: s.last, Dir: Direction(sd & 1), Size: int(size)}
	s.idx++
	return p, true, nil
}

func (s *BytesSource) fail(err error) (Packet, bool, error) {
	s.err = err
	return Packet{}, false, err
}

// EncodeStream drains src through the rrcstream codec and returns the
// encoded slab — the bytes WriteStream would have produced for the
// collected trace, but built in one pass without materializing a Packet
// slice. The slab round-trips: a BytesSource (or StreamReader) over it
// yields exactly the packets src yielded, so replaying the slab is
// byte-identical to replaying the source.
func EncodeStream(src Source) ([]byte, error) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		return nil, err
	}
	for {
		p, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := sw.Write(p); err != nil {
			return nil, err
		}
	}
	if err := sw.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
