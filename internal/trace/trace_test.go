package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func sample() Trace {
	return Trace{
		{T: 0, Dir: Out, Size: 100},
		{T: sec(0.1), Dir: In, Size: 1400},
		{T: sec(0.2), Dir: In, Size: 1400},
		{T: sec(5), Dir: Out, Size: 60},
		{T: sec(5.05), Dir: In, Size: 900},
		{T: sec(30), Dir: Out, Size: 60},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	if err := (Trace{}).Validate(); err != nil {
		t.Fatalf("empty trace rejected: %v", err)
	}
}

func TestValidateUnsorted(t *testing.T) {
	tr := Trace{{T: sec(2)}, {T: sec(1)}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestValidateNegativeTime(t *testing.T) {
	tr := Trace{{T: -sec(1)}}
	if err := tr.Validate(); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestValidateBadDirection(t *testing.T) {
	tr := Trace{{T: 0, Dir: Direction(7)}}
	if err := tr.Validate(); err == nil {
		t.Fatal("bad direction accepted")
	}
}

func TestValidateNegativeSize(t *testing.T) {
	tr := Trace{{T: 0, Dir: In, Size: -1}}
	if err := tr.Validate(); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestDirectionString(t *testing.T) {
	if Out.String() != "out" || In.String() != "in" {
		t.Fatalf("direction strings: %q %q", Out, In)
	}
	if !strings.Contains(Direction(9).String(), "9") {
		t.Fatalf("unknown direction string: %q", Direction(9))
	}
}

func TestDuration(t *testing.T) {
	if got := sample().Duration(); got != sec(30) {
		t.Fatalf("Duration = %v, want 30s", got)
	}
	if got := (Trace{}).Duration(); got != 0 {
		t.Fatalf("empty Duration = %v, want 0", got)
	}
}

func TestBytes(t *testing.T) {
	out, in := sample().Bytes()
	if out != 220 || in != 3700 {
		t.Fatalf("Bytes = %d,%d want 220,3700", out, in)
	}
}

func TestInterArrivals(t *testing.T) {
	gaps := sample().InterArrivals()
	want := []time.Duration{sec(0.1), sec(0.1), sec(4.8), sec(0.05), sec(24.95)}
	if len(gaps) != len(want) {
		t.Fatalf("got %d gaps, want %d", len(gaps), len(want))
	}
	for i := range want {
		if d := gaps[i] - want[i]; d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	if (Trace{{T: 0}}).InterArrivals() != nil {
		t.Fatal("single-packet trace should have nil gaps")
	}
}

func TestSortAndMerge(t *testing.T) {
	a := Trace{{T: sec(1), Dir: In}, {T: sec(3), Dir: In}}
	b := Trace{{T: sec(0), Dir: Out}, {T: sec(2), Dir: Out}}
	m := Merge(a, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if len(m) != 4 || m[0].Dir != Out || m[1].Dir != In {
		t.Fatalf("merge order wrong: %+v", m)
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := Trace{{T: sec(1), Size: 1}}
	b := Trace{{T: sec(1), Size: 2}}
	m := Merge(a, b)
	if m[0].Size != 1 || m[1].Size != 2 {
		t.Fatalf("tie order not stable: %+v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := sample()
	cl := tr.Clone()
	cl[0].Size = 9999
	if tr[0].Size == 9999 {
		t.Fatal("Clone aliases original")
	}
}

func TestShift(t *testing.T) {
	tr := sample().Shift(sec(10))
	if tr[0].T != sec(10) {
		t.Fatalf("shifted origin = %v", tr[0].T)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative shift did not panic")
		}
	}()
	sample().Shift(-sec(1))
}

func TestSlice(t *testing.T) {
	got := sample().Slice(sec(0.1), sec(5.05))
	if len(got) != 3 {
		t.Fatalf("Slice len = %d, want 3", len(got))
	}
	if got[0].T != sec(0.1) || got[2].T != sec(5) {
		t.Fatalf("Slice bounds wrong: %+v", got)
	}
}

func TestBursts(t *testing.T) {
	bursts := sample().Bursts(sec(1))
	if len(bursts) != 3 {
		t.Fatalf("got %d bursts, want 3", len(bursts))
	}
	if len(bursts[0].Packets) != 3 || len(bursts[1].Packets) != 2 || len(bursts[2].Packets) != 1 {
		t.Fatalf("burst sizes wrong: %d %d %d",
			len(bursts[0].Packets), len(bursts[1].Packets), len(bursts[2].Packets))
	}
	if bursts[1].Start != sec(5) || bursts[1].End != sec(5.05) {
		t.Fatalf("burst 1 span [%v %v]", bursts[1].Start, bursts[1].End)
	}
	if bursts[2].Span() != 0 {
		t.Fatalf("single-packet burst span = %v", bursts[2].Span())
	}
}

func TestBurstsPanicsOnBadGap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bursts(0) did not panic")
		}
	}()
	sample().Bursts(0)
}

func TestBurstsEmpty(t *testing.T) {
	if got := (Trace{}).Bursts(sec(1)); got != nil {
		t.Fatalf("empty trace bursts = %v", got)
	}
}

func TestBurstsCoverAllPackets(t *testing.T) {
	tr := sample()
	total := 0
	for _, b := range tr.Bursts(sec(1)) {
		total += len(b.Packets)
	}
	if total != len(tr) {
		t.Fatalf("bursts cover %d packets, trace has %d", total, len(tr))
	}
}

func TestSummarize(t *testing.T) {
	s := sample().Summarize(sec(1))
	if s.Packets != 6 || s.Bursts != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MaxGap != sec(24.95) {
		t.Fatalf("MaxGap = %v", s.MaxGap)
	}
	if s.MeanBurstLen != 2 {
		t.Fatalf("MeanBurstLen = %v, want 2", s.MeanBurstLen)
	}
}

func TestQuantileGap(t *testing.T) {
	tr := Trace{{T: 0}, {T: sec(1)}, {T: sec(3)}, {T: sec(6)}, {T: sec(10)}}
	// gaps: 1,2,3,4
	if got := tr.QuantileGap(0); got != sec(1) {
		t.Fatalf("q0 = %v", got)
	}
	if got := tr.QuantileGap(1); got != sec(4) {
		t.Fatalf("q1 = %v", got)
	}
	mid := tr.QuantileGap(0.5)
	if mid < sec(2.4) || mid > sec(2.6) {
		t.Fatalf("q0.5 = %v, want 2.5s", mid)
	}
}

func TestQuantileGapDegenerate(t *testing.T) {
	if got := (Trace{{T: 0}}).QuantileGap(0.95); got != 0 {
		t.Fatalf("degenerate quantile = %v", got)
	}
	if got := (Trace{{T: 0}, {T: sec(2)}}).QuantileGap(0.5); got != sec(2) {
		t.Fatalf("single-gap quantile = %v", got)
	}
}

func TestQuantileGapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuantileGap(2) did not panic")
		}
	}()
	sample().QuantileGap(2)
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, sample())
	}
}

func TestTextComments(t *testing.T) {
	in := "# comment\n\n0.5 in 100\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 1 || tr[0].Dir != In || tr[0].Size != 100 {
		t.Fatalf("parsed %+v", tr)
	}
}

func TestTextErrors(t *testing.T) {
	cases := []string{
		"0.5 in",                 // too few fields
		"x in 100",               // bad time
		"0.5 sideways 100",       // bad direction
		"0.5 in x",               // bad size
		"1.0 in 100\n0.5 in 100", // unsorted
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sample()) {
		t.Fatalf("round trip mismatch")
	}
}

func TestBinaryEmptyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d packets", len(got))
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("notatrace........")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

// randomTrace builds a valid random trace for property tests.
func randomTrace(r *rand.Rand, n int) Trace {
	tr := make(Trace, n)
	var t time.Duration
	for i := range tr {
		t += time.Duration(r.Int63n(int64(10 * time.Second)))
		dir := In
		if r.Intn(2) == 0 {
			dir = Out
		}
		tr[i] = Packet{T: t, Dir: dir, Size: r.Intn(1500)}
	}
	return tr
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(nRaw)%64)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBurstsPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8, gapMillis uint16) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, int(nRaw)%100+1)
		gap := time.Duration(gapMillis%5000+1) * time.Millisecond
		bursts := tr.Bursts(gap)
		// Partition: every packet appears exactly once, in order.
		idx := 0
		for _, b := range bursts {
			for _, p := range b.Packets {
				if p != tr[idx] {
					return false
				}
				idx++
			}
			// Intra-burst gaps must be <= gap.
			for i := 1; i < len(b.Packets); i++ {
				if b.Packets[i].T-b.Packets[i-1].T > gap {
					return false
				}
			}
		}
		return idx == len(tr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomTrace(r, 50)
		last := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := tr.QuantileGap(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
