package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// This file implements two on-disk formats for traces:
//
//   - a line-oriented text format ("rrctxt"), one packet per line:
//         <seconds> <in|out> <bytes>
//     with '#' comments, convenient for hand-written fixtures and for
//     feeding data from other tools; and
//
//   - a compact binary format ("rrcbin"), a pcap-like container with a magic
//     header followed by fixed-size little-endian records, used by
//     cmd/tracegen for day-scale user traces where the text form is bulky.
//
// Both formats round-trip losslessly (timestamps at nanosecond resolution).

// Magic identifies the binary trace format.
var binMagic = [8]byte{'R', 'R', 'C', 'T', 'R', 'C', '0', '1'}

// ErrBadMagic is returned when a binary stream does not start with the
// expected file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a binary trace)")

// WriteText writes the trace in the line-oriented text format.
func WriteText(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# rrctxt packets=%d\n", len(tr)); err != nil {
		return err
	}
	for _, p := range tr {
		if _, err := fmt.Fprintf(bw, "%.9f %s %d\n", p.T.Seconds(), p.Dir, p.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the line-oriented text format. Blank lines and lines
// starting with '#' are ignored. The returned trace is validated.
func ReadText(r io.Reader) (Trace, error) {
	var tr Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineno, len(fields))
		}
		secs, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", lineno, err)
		}
		var dir Direction
		switch fields[1] {
		case "in":
			dir = In
		case "out":
			dir = Out
		default:
			return nil, fmt.Errorf("trace: line %d: bad direction %q", lineno, fields[1])
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad size: %v", lineno, err)
		}
		tr = append(tr, Packet{T: time.Duration(secs * float64(time.Second)), Dir: dir, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// WriteBinary writes the trace in the compact binary format.
func WriteBinary(w io.Writer, tr Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(tr))); err != nil {
		return err
	}
	var rec [13]byte
	for _, p := range tr {
		binary.LittleEndian.PutUint64(rec[0:8], uint64(p.T))
		rec[8] = byte(p.Dir)
		binary.LittleEndian.PutUint32(rec[9:13], uint32(p.Size))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format and validates the result.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, ErrBadMagic
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	const maxReasonable = 1 << 30
	if count > maxReasonable {
		return nil, fmt.Errorf("trace: implausible packet count %d", count)
	}
	// Pre-allocate from the header's claim, but never trust it for more
	// than a bounded hint: a forged count must not cause a giant
	// allocation before the records fail to materialize.
	capHint := count
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	tr := make(Trace, 0, capHint)
	var rec [13]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		p := Packet{
			T:    time.Duration(binary.LittleEndian.Uint64(rec[0:8])),
			Dir:  Direction(rec[8]),
			Size: int(binary.LittleEndian.Uint32(rec[9:13])),
		}
		tr = append(tr, p)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
