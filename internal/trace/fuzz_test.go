package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// These tests feed adversarial bytes into every reader: whatever happens,
// the readers must return errors (or valid traces), never panic, and never
// attempt absurd allocations.

func corpusSeeds(t *testing.T) [][]byte {
	t.Helper()
	tr := Trace{
		{T: 0, Dir: Out, Size: 100},
		{T: time.Second, Dir: In, Size: 1400},
	}
	var bin, pc, txt bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WritePcap(&pc, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	return [][]byte{bin.Bytes(), pc.Bytes(), txt.Bytes()}
}

func mutate(r *rand.Rand, b []byte) []byte {
	out := append([]byte(nil), b...)
	switch r.Intn(4) {
	case 0: // truncate
		if len(out) > 0 {
			out = out[:r.Intn(len(out))]
		}
	case 1: // flip bytes
		for i := 0; i < 8 && len(out) > 0; i++ {
			out[r.Intn(len(out))] ^= byte(1 << r.Intn(8))
		}
	case 2: // extend with garbage
		extra := make([]byte, r.Intn(64))
		r.Read(extra)
		out = append(out, extra...)
	case 3: // splice random prefix
		pre := make([]byte, r.Intn(24))
		r.Read(pre)
		out = append(pre, out...)
	}
	return out
}

func TestReadersSurviveMutatedInputs(t *testing.T) {
	seeds := corpusSeeds(t)
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 600; round++ {
		base := seeds[r.Intn(len(seeds))]
		data := mutate(r, base)
		// Each reader either errors or returns a valid trace; it must not
		// panic (the test fails by panicking) and must not hang.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadBinary returned invalid trace: %v", err)
			}
		}
		if tr, err := ReadPcap(bytes.NewReader(data), nil); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadPcap returned invalid trace: %v", err)
			}
		}
		if tr, err := ReadText(bytes.NewReader(data)); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadText returned invalid trace: %v", err)
			}
		}
	}
}

func TestBinaryReaderRejectsHugeCounts(t *testing.T) {
	// A forged header claiming 2^40 packets must be rejected before any
	// allocation, not OOM the process.
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0}) // count = 2^40, little endian
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestPcapReaderRejectsHugeCaplen(t *testing.T) {
	var buf bytes.Buffer
	var gh [24]byte
	copy(gh[0:4], []byte{0xd4, 0xc3, 0xb2, 0xa1}) // LE micro magic
	gh[20] = 1                                    // ethernet
	buf.Write(gh[:])
	var rh [16]byte
	rh[8], rh[9], rh[10], rh[11] = 0xff, 0xff, 0xff, 0x7f // caplen ~2^31
	buf.Write(rh[:])
	if _, err := ReadPcap(&buf, nil); err == nil {
		t.Fatal("huge caplen accepted")
	}
}
