package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// These tests feed adversarial bytes into every reader: whatever happens,
// the readers must return errors (or valid traces), never panic, and never
// attempt absurd allocations.

func corpusSeeds(t *testing.T) [][]byte {
	t.Helper()
	tr := Trace{
		{T: 0, Dir: Out, Size: 100},
		{T: time.Second, Dir: In, Size: 1400},
	}
	var bin, pc, txt, strm bytes.Buffer
	if err := WriteBinary(&bin, tr); err != nil {
		t.Fatal(err)
	}
	if err := WritePcap(&pc, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteText(&txt, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteStream(&strm, tr); err != nil {
		t.Fatal(err)
	}
	return [][]byte{bin.Bytes(), pc.Bytes(), txt.Bytes(), strm.Bytes()}
}

func mutate(r *rand.Rand, b []byte) []byte {
	out := append([]byte(nil), b...)
	switch r.Intn(4) {
	case 0: // truncate
		if len(out) > 0 {
			out = out[:r.Intn(len(out))]
		}
	case 1: // flip bytes
		for i := 0; i < 8 && len(out) > 0; i++ {
			out[r.Intn(len(out))] ^= byte(1 << r.Intn(8))
		}
	case 2: // extend with garbage
		extra := make([]byte, r.Intn(64))
		r.Read(extra)
		out = append(out, extra...)
	case 3: // splice random prefix
		pre := make([]byte, r.Intn(24))
		r.Read(pre)
		out = append(pre, out...)
	}
	return out
}

func TestReadersSurviveMutatedInputs(t *testing.T) {
	seeds := corpusSeeds(t)
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 600; round++ {
		base := seeds[r.Intn(len(seeds))]
		data := mutate(r, base)
		// Each reader either errors or returns a valid trace; it must not
		// panic (the test fails by panicking) and must not hang.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadBinary returned invalid trace: %v", err)
			}
		}
		if tr, err := ReadPcap(bytes.NewReader(data), nil); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadPcap returned invalid trace: %v", err)
			}
		}
		if tr, err := ReadText(bytes.NewReader(data)); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadText returned invalid trace: %v", err)
			}
		}
		if tr, err := ReadStream(bytes.NewReader(data)); err == nil {
			if err := tr.Validate(); err != nil {
				t.Fatalf("ReadStream returned invalid trace: %v", err)
			}
		}
	}
}

// TestStreamCodecRoundTripFuzz drives random valid traces through the
// streaming codec: every decode must reproduce the packets exactly, and
// re-encoding the decode must reproduce the bytes exactly.
func TestStreamCodecRoundTripFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		n := r.Intn(120)
		tr := make(Trace, n)
		var ts time.Duration
		for i := range tr {
			ts += time.Duration(r.Int63n(int64(time.Minute)))
			tr[i] = Packet{T: ts, Dir: Direction(r.Intn(2)), Size: r.Intn(1 << 20)}
		}
		var enc bytes.Buffer
		if err := WriteStream(&enc, tr); err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		dec, err := ReadStream(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if len(dec) != len(tr) {
			t.Fatalf("round %d: %d packets decoded, want %d", round, len(dec), len(tr))
		}
		for i := range dec {
			if dec[i] != tr[i] {
				t.Fatalf("round %d: packet %d: %+v vs %+v", round, i, dec[i], tr[i])
			}
		}
		var re bytes.Buffer
		if err := WriteStream(&re, dec); err != nil {
			t.Fatalf("round %d: re-encode: %v", round, err)
		}
		if !bytes.Equal(enc.Bytes(), re.Bytes()) {
			t.Fatalf("round %d: re-encoding not byte-stable", round)
		}
	}
}

func TestBinaryReaderRejectsHugeCounts(t *testing.T) {
	// A forged header claiming 2^40 packets must be rejected before any
	// allocation, not OOM the process.
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	buf.Write([]byte{0, 0, 0, 0, 0, 1, 0, 0}) // count = 2^40, little endian
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestPcapReaderRejectsHugeCaplen(t *testing.T) {
	var buf bytes.Buffer
	var gh [24]byte
	copy(gh[0:4], []byte{0xd4, 0xc3, 0xb2, 0xa1}) // LE micro magic
	gh[20] = 1                                    // ethernet
	buf.Write(gh[:])
	var rh [16]byte
	rh[8], rh[9], rh[10], rh[11] = 0xff, 0xff, 0xff, 0x7f // caplen ~2^31
	buf.Write(rh[:])
	if _, err := ReadPcap(&buf, nil); err == nil {
		t.Fatal("huge caplen accepted")
	}
}
