package trace

import (
	"fmt"
	"time"
)

// Source is a pull-based packet iterator: the streaming counterpart of a
// materialized Trace. Next returns the next packet in timestamp order, then
// ok=false at end of stream. A non-nil error ends the stream (decoders
// surface malformed input this way); once Next has returned ok=false or an
// error, further calls must keep doing so.
//
// Everything downstream of a Source — the replay engine, the fleet workers,
// the codec writers — pulls packets one at a time, so a cohort's memory
// footprint is bounded by burst structure, never by trace length.
type Source interface {
	Next() (p Packet, ok bool, err error)
}

// SliceSource adapts a materialized Trace to the Source interface. The
// zero value is an empty source; Reset repoints it at a trace without
// allocating, which is how the replay engine reuses one across runs.
type SliceSource struct {
	tr Trace
	i  int
}

// Source returns a fresh Source reading the trace from the beginning.
func (tr Trace) Source() *SliceSource { return &SliceSource{tr: tr} }

// Reset repoints the source at tr and rewinds it.
func (s *SliceSource) Reset(tr Trace) { s.tr, s.i = tr, 0 }

// Next implements Source.
func (s *SliceSource) Next() (Packet, bool, error) {
	if s.i >= len(s.tr) {
		return Packet{}, false, nil
	}
	p := s.tr[s.i]
	s.i++
	return p, true, nil
}

// Collect drains a source into a materialized Trace. It is the inverse of
// Trace.Source and the bridge from any streaming decoder or generator to
// code that still wants a slice. The result is not validated; run
// Trace.Validate if the source is untrusted.
func Collect(src Source) (Trace, error) {
	var tr Trace
	for {
		p, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return tr, nil
		}
		tr = append(tr, p)
	}
}

// CopySource pipes every packet of src into w (any streaming consumer
// with a Write method, e.g. a StreamWriter) and reports the packet count
// plus the last packet's timestamp — the stream's span.
func CopySource(w interface{ Write(Packet) error }, src Source) (n int, span time.Duration, err error) {
	for {
		p, ok, err := src.Next()
		if err != nil {
			return n, span, err
		}
		if !ok {
			return n, span, nil
		}
		if err := w.Write(p); err != nil {
			return n, span, fmt.Errorf("trace: copying packet %d: %w", n, err)
		}
		n++
		span = p.T
	}
}
