package core
