// Package core implements the paper's control module (Fig. 4): the
// component that, on a real device, sits between the socket layer and the
// radio. It observes every socket send/receive, runs the MakeIdle decision
// after each packet to schedule fast dormancy, and runs MakeActive when a
// new session finds the radio Idle, buffering the session so that others
// can share the same promotion.
//
// The Controller is deliberately I/O-free and clock-free: callers feed it
// timestamped events (from a socket shim in deployment, from a trace replay
// in tests and benchmarks) and poll Tick for due actions. That makes the
// same code testable, benchmarkable (§6.6's overhead measurement), and
// usable inside the simulator-driven examples.
package core

import (
	"fmt"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/rrc"
	"repro/internal/trace"
)

// Verdict tells the socket layer what to do with a packet it just handed
// to the controller.
type Verdict struct {
	// Buffered is true when the packet starts a session that MakeActive
	// is holding back; the socket layer should queue it (and everything
	// after it in the same session) until ReleaseAt.
	Buffered bool
	// ReleaseAt is when the buffered session will be released (only
	// meaningful when Buffered).
	ReleaseAt time.Duration
}

// Config assembles a Controller.
type Config struct {
	// Profile is the carrier the device is attached to.
	Profile power.Profile
	// Demote decides fast dormancy; defaults to the status quo (never).
	Demote policy.DemotePolicy
	// Active batches sessions; nil disables MakeActive.
	Active policy.ActivePolicy
	// BurstGap separates sessions (default 1 s).
	BurstGap time.Duration
}

// Controller is the control module. It is not safe for concurrent use; on
// a device it would be driven from a single event loop, which is also how
// the benchmarks drive it.
type Controller struct {
	machine  *rrc.Machine
	demote   policy.DemotePolicy
	active   policy.ActivePolicy
	burstGap time.Duration

	lastPacket   time.Duration
	sawPacket    bool
	dormancyAt   time.Duration // scheduled fast dormancy; Never when none
	batchOpenAt  time.Duration // release time of the open batching window
	batchOpen    bool
	batchedCount int

	dormancies int
	episodes   int
}

// New builds a Controller. The profile must validate.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Profile.Validate(); err != nil {
		return nil, err
	}
	m, err := rrc.New(cfg.Profile, false)
	if err != nil {
		return nil, err
	}
	d := cfg.Demote
	if d == nil {
		d = policy.StatusQuo{}
	}
	gap := cfg.BurstGap
	if gap <= 0 {
		gap = time.Second
	}
	return &Controller{
		machine:    m,
		demote:     d,
		active:     cfg.Active,
		burstGap:   gap,
		dormancyAt: policy.Never,
	}, nil
}

// Machine exposes the underlying RRC machine (read-only use intended).
func (c *Controller) Machine() *rrc.Machine { return c.machine }

// Dormancies returns how many fast-dormancy requests the controller issued.
func (c *Controller) Dormancies() int { return c.dormancies }

// Episodes returns how many batching windows were opened.
func (c *Controller) Episodes() int { return c.episodes }

// Tick advances the controller's clock to now, firing any scheduled fast
// dormancy that came due. Call it periodically (or just before OnPacket
// with the packet's timestamp, which OnPacket does internally).
func (c *Controller) Tick(now time.Duration) {
	if c.dormancyAt != policy.Never && now >= c.dormancyAt {
		at := c.dormancyAt
		c.dormancyAt = policy.Never
		c.machine.AdvanceTo(at)
		if c.machine.State() != rrc.Idle {
			c.machine.FastDormancy(at)
			c.dormancies++
		}
	}
	c.machine.AdvanceTo(now)
	if c.batchOpen && now >= c.batchOpenAt {
		c.batchOpen = false
	}
}

// OnPacket reports one socket event to the controller. Events must arrive
// in non-decreasing time order; it panics otherwise (programming error in
// the shim, matching the trace invariants everywhere else).
func (c *Controller) OnPacket(now time.Duration, dir trace.Direction, size int) Verdict {
	if size < 0 || !dir.Valid() {
		panic(fmt.Sprintf("core: bad packet (dir=%v size=%d)", dir, size))
	}
	if c.sawPacket && now < c.lastPacket {
		panic(fmt.Sprintf("core: time running backwards: %v < %v", now, c.lastPacket))
	}
	c.Tick(now)

	verdict := Verdict{}
	newSession := !c.sawPacket || now-c.lastPacket > c.burstGap

	if c.active != nil && newSession && c.machine.State() == rrc.Idle {
		if c.batchOpen {
			// Session joins the already-open window.
			c.batchedCount++
			verdict = Verdict{Buffered: true, ReleaseAt: c.batchOpenAt}
		} else {
			d := c.active.Delay(now)
			if d < 0 {
				d = 0
			}
			if d > 0 {
				c.batchOpen = true
				c.batchOpenAt = now + d
				c.batchedCount = 1
				c.episodes++
				verdict = Verdict{Buffered: true, ReleaseAt: c.batchOpenAt}
			}
		}
	}

	if !verdict.Buffered {
		// The packet goes out now: the radio must be (or become) Active.
		c.observeAndDecide(now)
	} else {
		// The radio stays Idle; the release will be reported to the
		// controller as ordinary traffic at ReleaseAt by the socket shim.
		c.lastPacket = now
		c.sawPacket = true
	}
	return verdict
}

// observeAndDecide passes the packet into the RRC machine, feeds the demote
// policy and schedules the next dormancy.
func (c *Controller) observeAndDecide(now time.Duration) {
	if c.sawPacket {
		c.demote.Observe(now - c.lastPacket)
	}
	c.machine.OnPacket(now)
	c.lastPacket = now
	c.sawPacket = true

	w := c.demote.Decide(now)
	if w == policy.Never {
		c.dormancyAt = policy.Never
		return
	}
	if w < 0 {
		w = 0
	}
	c.dormancyAt = now + w
}

// ReleaseBatch tells the controller that the socket layer is releasing the
// buffered batch at now (its packets follow as ordinary OnPacket events).
// The release is what actually wakes the radio: the controller promotes it
// here so the following packets pass straight through, and reports the
// episode to the active policy with the observed session arrivals.
func (c *Controller) ReleaseBatch(now time.Duration, arrivals []time.Duration) {
	if c.active == nil {
		return
	}
	c.active.ObserveEpisode(0, arrivals)
	c.batchOpen = false
	c.machine.AdvanceTo(now)
	if c.machine.State() == rrc.Idle {
		c.machine.OnPacket(now)
		c.lastPacket = now
		c.sawPacket = true
	}
}
