package core

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/rrc"
	"repro/internal/trace"
)

func prof() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestDefaultsToStatusQuo(t *testing.T) {
	c := mustNew(t, Config{Profile: prof()})
	c.OnPacket(0, trace.In, 100)
	c.Tick(sec(3))
	if c.Dormancies() != 0 {
		t.Fatal("status quo default should never trigger dormancy")
	}
	if c.Machine().State() != rrc.DCH {
		t.Fatalf("state = %v", c.Machine().State())
	}
	// Timers still demote eventually.
	c.Tick(sec(20))
	if c.Machine().State() != rrc.Idle {
		t.Fatalf("state = %v after tail", c.Machine().State())
	}
}

func TestFastDormancyScheduled(t *testing.T) {
	c := mustNew(t, Config{Profile: prof(), Demote: &policy.FixedTail{Wait: sec(2)}})
	c.OnPacket(0, trace.Out, 100)
	c.Tick(sec(1))
	if c.Machine().State() != rrc.DCH {
		t.Fatal("radio should still be up before the wait expires")
	}
	c.Tick(sec(2.5))
	if c.Machine().State() != rrc.Idle {
		t.Fatalf("state = %v, want Idle after fast dormancy", c.Machine().State())
	}
	if c.Dormancies() != 1 {
		t.Fatalf("dormancies = %d", c.Dormancies())
	}
}

func TestDormancyCanceledByTraffic(t *testing.T) {
	c := mustNew(t, Config{Profile: prof(), Demote: &policy.FixedTail{Wait: sec(2)}})
	c.OnPacket(0, trace.Out, 100)
	c.OnPacket(sec(1), trace.In, 100) // re-schedules dormancy to t=3
	c.Tick(sec(2.5))
	if c.Machine().State() == rrc.Idle {
		t.Fatal("dormancy fired despite fresh traffic")
	}
	c.Tick(sec(3.5))
	if c.Machine().State() != rrc.Idle {
		t.Fatal("rescheduled dormancy never fired")
	}
}

func TestBatchingVerdict(t *testing.T) {
	c := mustNew(t, Config{
		Profile: prof(),
		Demote:  &policy.FixedTail{Wait: sec(1)},
		Active:  &policy.FixedDelay{Bound: sec(5)},
	})
	// First session: radio idle -> buffered.
	v := c.OnPacket(0, trace.Out, 100)
	if !v.Buffered || v.ReleaseAt != sec(5) {
		t.Fatalf("first session verdict: %+v", v)
	}
	if c.Episodes() != 1 {
		t.Fatalf("episodes = %d", c.Episodes())
	}
	// Another session inside the window joins it.
	v2 := c.OnPacket(sec(3), trace.Out, 100)
	if !v2.Buffered || v2.ReleaseAt != sec(5) {
		t.Fatalf("second session verdict: %+v", v2)
	}
	// The release: socket layer reports the batch and replays packets.
	c.ReleaseBatch(sec(5), []time.Duration{0, sec(3)})
	v3 := c.OnPacket(sec(5), trace.Out, 100)
	if v3.Buffered {
		t.Fatal("release packet buffered again (gap below burstGap should pass through)")
	}
	if c.Machine().State() != rrc.DCH {
		t.Fatalf("state after release = %v", c.Machine().State())
	}
}

func TestNoBatchingWhenRadioActive(t *testing.T) {
	c := mustNew(t, Config{
		Profile: prof(),
		Active:  &policy.FixedDelay{Bound: sec(5)},
	})
	c.OnPacket(0, trace.Out, 100) // idle -> buffered (episode 1)
	c.ReleaseBatch(sec(5), []time.Duration{0})
	c.OnPacket(sec(5), trace.Out, 100)
	// New session 2 s later: radio in DCH (status quo timers), so the
	// packet must pass through unbuffered.
	v := c.OnPacket(sec(7.5), trace.Out, 100)
	if v.Buffered {
		t.Fatal("buffered a session while the radio was active")
	}
}

func TestZeroDelayDoesNotBuffer(t *testing.T) {
	c := mustNew(t, Config{Profile: prof(), Active: policy.NoBatching{}})
	v := c.OnPacket(0, trace.Out, 100)
	if v.Buffered {
		t.Fatal("NoBatching must not buffer")
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	c := mustNew(t, Config{Profile: prof()})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative size accepted")
			}
		}()
		c.OnPacket(0, trace.In, -1)
	}()
	c.OnPacket(sec(1), trace.In, 10)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backwards time accepted")
			}
		}()
		c.OnPacket(0, trace.In, 10)
	}()
}

func TestMakeIdleIntegration(t *testing.T) {
	p := prof()
	mi, err := policy.NewMakeIdle(p, policy.WithMinSample(5))
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Profile: p, Demote: mi})
	// Feed long-gap traffic; after warmup MakeIdle schedules dormancy and
	// the radio should spend most time Idle.
	now := time.Duration(0)
	for i := 0; i < 20; i++ {
		c.OnPacket(now, trace.In, 200)
		now += sec(60)
		c.Tick(now - sec(1))
	}
	if c.Dormancies() == 0 {
		t.Fatal("MakeIdle never triggered dormancy through the controller")
	}
	idle := c.Machine().Residency(rrc.Idle)
	total := now - sec(1)
	if float64(idle)/float64(total) < 0.5 {
		t.Fatalf("radio idle only %v of %v under MakeIdle", idle, total)
	}
}
