package core

import (
	"time"

	"repro/internal/rrc"
	"repro/internal/trace"
)

// ReplayResult summarises a trace replayed through the live Controller —
// the event-driven counterpart of internal/sim's analytic accounting.
type ReplayResult struct {
	// Promotions and FastDormancies are the radio's transition counts.
	Promotions     int
	FastDormancies int
	// Buffered is how many sessions MakeActive held back.
	Buffered int
	// Episodes is the number of batching windows opened.
	Episodes int
	// Residency per state at the end of the replay.
	IdleTime, FACHTime, DCHTime time.Duration
}

// Replay drives a Controller with a trace through the same socket-shim
// protocol a device integration would use: packets arrive in time order;
// packets the controller buffers are re-queued at their release time, and
// the batch release is reported via ReleaseBatch. The replay ends after
// the trailing tail settles.
//
// Replay exists both as a deployment blueprint and as a cross-check: its
// transition counts track internal/sim's analytic accounting for the same
// trace and policies (tested in this package).
func Replay(c *Controller, tr trace.Trace) ReplayResult {
	var held trace.Trace         // packets queued during the open window
	var arrivals []time.Duration // session-start offsets within the window
	var release time.Duration
	var episodeStart time.Duration
	buffered := 0

	flush := func() {
		if len(held) == 0 {
			return
		}
		c.ReleaseBatch(release, arrivals)
		for _, h := range held {
			// Released packets flow as ordinary traffic at the release
			// instant (sessions keep their internal spacing relative to
			// the release; for the counts this replay collects, the
			// release instant is what matters).
			c.OnPacket(release, h.Dir, h.Size)
		}
		held = held[:0]
		arrivals = arrivals[:0]
	}

	for _, p := range tr {
		if len(held) > 0 {
			if p.T < release {
				// The window is open: the socket layer queues everything
				// that arrives before the release — the held session's
				// own packets and any new sessions alike.
				if p.T-held[len(held)-1].T > c.burstGap {
					arrivals = append(arrivals, p.T-episodeStart)
					buffered++
				}
				held = append(held, p)
				continue
			}
			flush()
		}
		v := c.OnPacket(p.T, p.Dir, p.Size)
		if v.Buffered {
			episodeStart = p.T
			release = v.ReleaseAt
			held = append(held, p)
			arrivals = append(arrivals, 0)
			buffered++
		}
	}
	flush()
	// Let the trailing tail settle.
	end := tr.Duration() + c.machine.Profile().Tail() + time.Minute
	c.Tick(end)

	m := c.Machine()
	return ReplayResult{
		Promotions:     m.Promotions(),
		FastDormancies: c.Dormancies(),
		Buffered:       buffered,
		Episodes:       c.Episodes(),
		IdleTime:       m.Residency(rrc.Idle),
		FACHTime:       m.Residency(rrc.FACH),
		DCHTime:        m.Residency(rrc.DCH),
	}
}
