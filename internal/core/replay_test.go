package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestReplayStatusQuoMatchesSim(t *testing.T) {
	// The live controller and the analytic simulator implement the same
	// model from opposite ends; under the status quo their promotion
	// counts must agree exactly.
	p := prof()
	tr := workload.Generate(workload.Email(), 4, 2*time.Hour)

	c := mustNew(t, Config{Profile: p})
	got := Replay(c, tr)

	want, err := sim.Run(tr, p, policy.StatusQuo{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Promotions != want.Promotions {
		t.Fatalf("promotions: controller %d vs sim %d", got.Promotions, want.Promotions)
	}
	if got.FastDormancies != 0 {
		t.Fatalf("status quo triggered %d dormancies", got.FastDormancies)
	}
}

func TestReplayFixedTailMatchesSim(t *testing.T) {
	p := prof()
	tr := workload.Generate(workload.News(), 9, 2*time.Hour)

	c := mustNew(t, Config{Profile: p, Demote: &policy.FixedTail{Wait: sec(2)}})
	got := Replay(c, tr)

	want, err := sim.Run(tr, p, &policy.FixedTail{Wait: sec(2)}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The controller fires dormancy timers only at Tick points (packet
	// arrivals and the final settle), so a dormancy scheduled between two
	// nearby packets can be pre-empted where the analytic engine charges
	// it. Allow a small relative slack.
	if d := math.Abs(float64(got.Promotions - want.Promotions)); d > 0.05*float64(want.Promotions)+2 {
		t.Fatalf("promotions diverge: controller %d vs sim %d", got.Promotions, want.Promotions)
	}
}

func TestReplayMakeIdleIdlesRadio(t *testing.T) {
	p := prof()
	tr := workload.Generate(workload.Email(), 4, 2*time.Hour)
	mi, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Profile: p, Demote: mi})
	got := Replay(c, tr)
	if got.FastDormancies == 0 {
		t.Fatal("MakeIdle never triggered dormancy through Replay")
	}
	total := got.IdleTime + got.FACHTime + got.DCHTime
	if got.IdleTime < total/2 {
		t.Fatalf("radio idle only %v of %v under MakeIdle", got.IdleTime, total)
	}
}

func TestReplayWithBatching(t *testing.T) {
	p := prof()
	u := workload.User{Name: "u", Apps: []workload.AppModel{workload.IM(), workload.Email()}}
	tr := u.Generate(6, time.Hour)
	mi, err := policy.NewMakeIdle(p)
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{
		Profile: p,
		Demote:  mi,
		Active:  &policy.FixedDelay{Bound: 5 * time.Second},
	})
	got := Replay(c, tr)
	if got.Episodes == 0 || got.Buffered == 0 {
		t.Fatalf("no batching through Replay: %+v", got)
	}
	if got.Promotions == 0 {
		t.Fatal("no promotions at all")
	}
}

func TestReplayResidencyConservation(t *testing.T) {
	p := prof()
	tr := workload.Generate(workload.Game(), 2, time.Hour)
	c := mustNew(t, Config{Profile: p, Demote: &policy.FixedTail{Wait: sec(1)}})
	got := Replay(c, tr)
	total := got.IdleTime + got.FACHTime + got.DCHTime
	want := tr.Duration() + p.Tail() + time.Minute
	if total != want {
		t.Fatalf("residency %v != elapsed %v", total, want)
	}
}
