package policy

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/power"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Role distinguishes the two policy slots of a scheme, matching the two
// halves of the control module (Fig. 4): demote policies run while the
// radio is Active, active (batching) policies while it is Idle.
type Role string

// The two policy roles.
const (
	RoleDemote Role = "demote"
	RoleActive Role = "active"
)

// Schema is one registered policy: its name, parameter declarations,
// capabilities, and builder. Exactly one of NewDemote/NewActive is set,
// matching Role. Builders receive fully resolved Params (every parameter
// present, coerced and bounds-checked) plus the trace and profile; tr is
// nil unless TraceFitted is set, so only trace-fitted builders may touch
// it.
type Schema struct {
	Name    string
	Role    Role
	Summary string
	Params  []ParamSpec

	// TraceFitted marks policies whose builder must see the materialized
	// trace (the 95% IAT quantile fit, the MakeActive-Fix bound). The
	// fleet uses this capability to decide which jobs need a fit pass.
	TraceFitted bool
	// GapLookahead marks clairvoyant policies (the Oracle): the simulator
	// feeds them the next inter-arrival gap before each decision.
	GapLookahead bool

	NewDemote func(p Params, tr trace.Trace, prof power.Profile) (DemotePolicy, error)
	NewActive func(p Params, tr trace.Trace, prof power.Profile) (ActivePolicy, error)
}

// validateRole rejects schemas whose role and builders disagree; the
// structural checks (name charset, parameter declarations) belong to the
// shared spec registry.
func (s *Schema) validateRole() error {
	switch s.Role {
	case RoleDemote:
		if s.NewDemote == nil || s.NewActive != nil {
			return fmt.Errorf("policy: demote schema %q must set exactly NewDemote", s.Name)
		}
	case RoleActive:
		if s.NewActive == nil || s.NewDemote != nil {
			return fmt.Errorf("policy: active schema %q must set exactly NewActive", s.Name)
		}
	default:
		return fmt.Errorf("policy: schema %q has unknown role %q", s.Name, s.Role)
	}
	return nil
}

// Registry holds policy schemas by (role, name) plus legacy flat-name
// aliases that expand to parameterized specs — two shared spec.Registry
// instances, one per role, with the policy payload (capabilities and
// builders) carried in each schema's Meta. It is the single authority on
// which policies exist, what their knobs are, and what capabilities they
// have.
type Registry struct {
	regs map[Role]*spec.Registry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{regs: map[Role]*spec.Registry{
		RoleDemote: spec.NewRegistry("demote policy", nil),
		RoleActive: spec.NewRegistry("active policy", nil),
	}}
}

// reg returns the role's underlying registry (an empty one for unknown
// roles, so lookups fail with the registry's own error paths).
func (r *Registry) reg(role Role) *spec.Registry {
	if reg, ok := r.regs[role]; ok {
		return reg
	}
	return spec.NewRegistry(string(role)+" policy", nil)
}

// Register adds a schema, rejecting malformed or duplicate ones.
func (r *Registry) Register(s *Schema) error {
	if err := s.validateRole(); err != nil {
		return err
	}
	return r.reg(s.Role).Register(&spec.Schema{
		Name: s.Name, Summary: s.Summary, Params: s.Params, Meta: s,
	})
}

// Alias maps a legacy flat name to a spec, which must itself fully
// resolve — name, parameter coercion and bounds — so a broken alias can
// never register and poison later lookups.
func (r *Registry) Alias(role Role, name string, spec Spec) error {
	return r.reg(role).Alias(name, spec)
}

// Lookup returns the schema registered under a canonical name (aliases do
// not resolve here; use Resolve for full name resolution).
func (r *Registry) Lookup(role Role, name string) (*Schema, bool) {
	s, ok := r.reg(role).Lookup(name)
	if !ok {
		return nil, false
	}
	return s.Meta.(*Schema), true
}

// Schemas lists a role's registered schemas sorted by name.
func (r *Registry) Schemas(role Role) []*Schema {
	raw := r.reg(role).Schemas()
	out := make([]*Schema, len(raw))
	for i, s := range raw {
		out[i] = s.Meta.(*Schema)
	}
	return out
}

// Aliases lists a role's alias names sorted.
func (r *Registry) Aliases(role Role) []string { return r.reg(role).Aliases() }

// Names lists every accepted name for a role — canonical schema names and
// aliases — sorted.
func (r *Registry) Names(role Role) []string { return r.reg(role).Names() }

// Resolve expands aliases and resolves a spec's parameters against the
// schema: unknown parameters are rejected, values coerced to their
// canonical types and bounds-checked, and omitted parameters filled from
// defaults. The returned Params is complete — builders never see a
// missing key.
func (r *Registry) Resolve(role Role, sp Spec) (*Schema, Params, error) {
	schema, params, err := r.reg(role).Resolve(sp)
	if err != nil {
		return nil, nil, err
	}
	return schema.Meta.(*Schema), params, nil
}

// Canonical returns the byte-stable encoding of a spec: the canonical
// schema name followed by every parameter — defaults resolved — in schema
// declaration order, values in canonical string form. Two specs that
// denote the same policy configuration (alias vs canonical name, omitted
// vs explicit defaults, "4500ms" vs "4.5s", any param-map ordering)
// encode identically, and any parameter value change changes the
// encoding. The job fingerprint (v4) hashes these encodings.
func (r *Registry) Canonical(role Role, sp Spec) (string, error) {
	return r.reg(role).Canonical(sp)
}

// Label returns the human-readable short form of a spec: the canonical
// name plus only the non-default parameters. Sweep summaries key schemes
// by these, so "fixedtail(wait=2s)" and plain "fixedtail" (the 4.5 s
// default) stay distinct and readable.
func (r *Registry) Label(role Role, sp Spec) (string, error) {
	return r.reg(role).Label(sp)
}

// Resolution is one resolution pass over a policy spec: the policy schema
// (builders, capabilities), the resolved parameters, and both registry
// encodings — byte-identical to Canonical and Label. Admission paths that
// need the builder and the encodings resolve once instead of per product.
type Resolution struct {
	Schema    *Schema
	Params    Params
	Canonical string
	Label     string
}

// Resolution resolves a spec once and returns the full bundle.
func (r *Registry) Resolution(role Role, sp Spec) (Resolution, error) {
	res, err := r.reg(role).Resolution(sp)
	if err != nil {
		return Resolution{}, err
	}
	return Resolution{
		Schema:    res.Schema.Meta.(*Schema),
		Params:    res.Params,
		Canonical: res.Canonical,
		Label:     res.Label,
	}, nil
}

// BuildDemote resolves and constructs a demote policy. tr may be nil
// unless the resolved schema is TraceFitted.
func (r *Registry) BuildDemote(spec Spec, tr trace.Trace, prof power.Profile) (DemotePolicy, error) {
	schema, params, err := r.Resolve(RoleDemote, spec)
	if err != nil {
		return nil, err
	}
	return schema.NewDemote(params, tr, prof)
}

// BuildActive resolves and constructs an active (batching) policy; the
// "none" policy yields nil, meaning batching disabled.
func (r *Registry) BuildActive(spec Spec, tr trace.Trace, prof power.Profile) (ActivePolicy, error) {
	schema, params, err := r.Resolve(RoleActive, spec)
	if err != nil {
		return nil, err
	}
	return schema.NewActive(params, tr, prof)
}

// ParamInfo is the serializable view of a ParamSpec, values in canonical
// string form (the same forms Canonical uses).
type ParamInfo = spec.ParamInfo

// SchemaInfo is the serializable view of a Schema plus its aliases — the
// payload of the /v1/policies discovery endpoint.
type SchemaInfo struct {
	Name         string      `json:"name"`
	Role         Role        `json:"role"`
	Summary      string      `json:"summary,omitempty"`
	Params       []ParamInfo `json:"params"`
	TraceFitted  bool        `json:"trace_fitted"`
	GapLookahead bool        `json:"gap_lookahead"`
	Aliases      []string    `json:"aliases,omitempty"`
}

// Describe returns the serializable view of a role's schemas, sorted by
// name, each carrying the alias names that expand to it.
func (r *Registry) Describe(role Role) []SchemaInfo {
	raw := r.reg(role).Describe()
	out := make([]SchemaInfo, 0, len(raw))
	for _, info := range raw {
		s, _ := r.Lookup(role, info.Name)
		out = append(out, SchemaInfo{
			Name: info.Name, Role: role, Summary: info.Summary,
			Params:      info.Params,
			TraceFitted: s.TraceFitted, GapLookahead: s.GapLookahead,
			Aliases: info.Aliases,
		})
	}
	return out
}

// Usage renders a role's policies as an indented reference block for CLI
// error messages: one line per schema with its parameter grid, then the
// aliases.
func (r *Registry) Usage(role Role) string { return r.reg(role).Usage() }

// defaultRegistry holds the built-in policies; construction cannot fail,
// so registration errors panic (they would be programming errors caught by
// any test touching the registry).
var defaultRegistry = buildDefaultRegistry()

// Default returns the registry of built-in policies: the paper's baselines
// and contributions as parameterized schemas, plus the legacy flat-name
// aliases ("4.5s", "95iat") every pre-registry surface accepted.
func Default() *Registry { return defaultRegistry }

func buildDefaultRegistry() *Registry {
	r := NewRegistry()
	mustRegister := func(s *Schema) {
		if err := r.Register(s); err != nil {
			panic(err)
		}
	}
	mustRegister(&Schema{
		Name: "statusquo", Role: RoleDemote,
		Summary: "carrier inactivity timers only (the normalization baseline)",
		NewDemote: func(Params, trace.Trace, power.Profile) (DemotePolicy, error) {
			return StatusQuo{}, nil
		},
	})
	mustRegister(&Schema{
		Name: "fixedtail", Role: RoleDemote,
		Summary: "fast dormancy a fixed wait after every packet (§6.2's 4.5-second tail)",
		Params: []ParamSpec{{
			Name: "wait", Kind: KindDuration, Default: 4500 * time.Millisecond,
			Min: time.Millisecond, Max: 10 * time.Minute,
			Help: "dormancy timer applied after each packet",
		}},
		NewDemote: func(p Params, _ trace.Trace, _ power.Profile) (DemotePolicy, error) {
			f := &FixedTail{Wait: p.Duration("wait")}
			// The simulator stamps Name() on every result; freeze the
			// derived "FixedTail(wait)" form here so replays don't
			// rebuild the string once per run.
			f.Label = f.Name()
			return f, nil
		},
	})
	mustRegister(&Schema{
		Name: "pctiat", Role: RoleDemote,
		Summary:     "fast dormancy after a whole-trace inter-arrival percentile (§6.2's 95% IAT)",
		TraceFitted: true,
		Params: []ParamSpec{{
			Name: "q", Kind: KindFloat, Default: 0.95, Min: 0.01, Max: 0.999,
			Help: "inter-arrival quantile the timer is fitted to",
		}},
		NewDemote: func(p Params, tr trace.Trace, _ power.Profile) (DemotePolicy, error) {
			return NewPercentileIAT(tr, p.Float("q")), nil
		},
	})
	mustRegister(&Schema{
		Name: "oracle", Role: RoleDemote,
		Summary:      "clairvoyant upper bound: demote iff the next gap exceeds the threshold (§6.2)",
		GapLookahead: true,
		Params: []ParamSpec{{
			Name: "threshold", Kind: KindDuration, Default: time.Duration(0), Min: time.Duration(0),
			Help: "demotion threshold; 0 derives t_threshold from the power profile",
		}},
		NewDemote: func(p Params, _ trace.Trace, prof power.Profile) (DemotePolicy, error) {
			th := p.Duration("threshold")
			if th <= 0 {
				th = energy.Threshold(&prof)
			}
			return NewOracle(th), nil
		},
	})
	mustRegister(&Schema{
		Name: "makeidle", Role: RoleDemote,
		Summary: "the paper's §4 policy: maximize expected gain over a windowed IAT distribution",
		Params: []ParamSpec{
			{Name: "window", Kind: KindInt, Default: 100, Min: 1, Max: 1_000_000,
				Help: "recent inter-arrivals kept in the distribution (Fig. 13's n)"},
			{Name: "gridsteps", Kind: KindInt, Default: 40, Min: 2, Max: 10_000,
				Help: "candidate waits evaluated across [0, t_threshold]"},
			{Name: "minsample", Kind: KindInt, Default: 10, Min: 1, Max: 1_000_000,
				Help: "gaps observed before the policy starts demoting"},
		},
		NewDemote: func(p Params, _ trace.Trace, prof power.Profile) (DemotePolicy, error) {
			return NewMakeIdle(prof,
				WithWindowSize(p.Int("window")),
				WithGridSteps(p.Int("gridsteps")),
				WithMinSample(p.Int("minsample")))
		},
	})

	mustRegister(&Schema{
		Name: "none", Role: RoleActive,
		Summary: "batching disabled: promote on the first packet of every session",
		NewActive: func(Params, trace.Trace, power.Profile) (ActivePolicy, error) {
			return nil, nil
		},
	})
	mustRegister(&Schema{
		Name: "learn", Role: RoleActive,
		Summary: "the §5.2 MakeActive: expert bank over per-second deadlines, Learn-alpha combined",
		Params: []ParamSpec{
			{Name: "maxdelay", Kind: KindDuration, Default: 10 * time.Second,
				Min: time.Second, Max: 10 * time.Minute,
				Help: "largest expert's batching deadline (one expert per whole second)"},
			{Name: "gamma", Kind: KindFloat, Default: 0.008, Min: 1e-6, Max: 10.0,
				Help: "delay vs batching trade-off in the expert loss"},
		},
		NewActive: func(p Params, _ trace.Trace, _ power.Profile) (ActivePolicy, error) {
			return NewLearnedDelay(
				WithMaxDelay(p.Duration("maxdelay")),
				WithGamma(p.Float("gamma"))), nil
		},
	})
	mustRegister(&Schema{
		Name: "fix", Role: RoleActive,
		Summary:     "the §5.1 fixed bound T_fix = k·(t1+t2), fitted to the trace's burst structure",
		TraceFitted: true,
		Params: []ParamSpec{{
			Name: "burstgap", Kind: KindDuration, Default: time.Second,
			Min: time.Millisecond, Max: 10 * time.Minute,
			Help: "burst segmentation gap used to fit k (bursts per active period)",
		}},
		NewActive: func(p Params, tr trace.Trace, prof power.Profile) (ActivePolicy, error) {
			return NewFixedDelay(tr, &prof, p.Duration("burstgap")), nil
		},
	})

	mustAlias := func(role Role, name string, spec Spec) {
		if err := r.Alias(role, name, spec); err != nil {
			panic(err)
		}
	}
	mustAlias(RoleDemote, "4.5s", Spec{Name: "fixedtail", Params: map[string]any{"wait": 4500 * time.Millisecond}})
	mustAlias(RoleDemote, "95iat", Spec{Name: "pctiat", Params: map[string]any{"q": 0.95}})
	return r
}
