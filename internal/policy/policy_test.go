package policy

import (
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestStatusQuo(t *testing.T) {
	var p StatusQuo
	if p.Decide(0) != Never {
		t.Fatal("StatusQuo should never demote")
	}
	p.Observe(time.Second) // no-ops must not panic
	p.Reset()
	if p.Name() != "StatusQuo" {
		t.Fatalf("name %q", p.Name())
	}
}

func TestFixedTail(t *testing.T) {
	f := NewFourPointFive()
	if f.Decide(0) != 4500*time.Millisecond {
		t.Fatalf("4.5-second wait = %v", f.Decide(0))
	}
	if f.Name() != "4.5-second" {
		t.Fatalf("name %q", f.Name())
	}
	g := &FixedTail{Wait: time.Second}
	if g.Name() == "" {
		t.Fatal("unnamed FixedTail should synthesize a name")
	}
	f.Observe(time.Second)
	f.Reset()
}

func TestPercentileIAT(t *testing.T) {
	tr := trace.Trace{{T: 0}, {T: sec(1)}, {T: sec(2)}, {T: sec(3)}, {T: sec(100)}}
	p := NewPercentileIAT(tr, 0.5)
	if p.Wait() < sec(0.9) || p.Wait() > sec(1.1) {
		t.Fatalf("median IAT = %v, want ~1s", p.Wait())
	}
	if p.Decide(0) != p.Wait() {
		t.Fatal("Decide should return the percentile wait")
	}
	if p.Name() != "50% IAT" {
		t.Fatalf("name %q, want the quantile-derived label", p.Name())
	}
	if q95 := NewPercentileIAT(tr, 0.95); q95.Name() != "95% IAT" {
		t.Fatalf("name %q, want the paper's 95%% IAT label", q95.Name())
	}
	p.Observe(time.Second)
	p.Reset()
}

func TestOracle(t *testing.T) {
	o := NewOracle(sec(2))
	if o.Name() != "Oracle" {
		t.Fatalf("name %q", o.Name())
	}
	o.ObserveNextGap(sec(5))
	if o.Decide(0) != 0 {
		t.Fatal("Oracle should demote immediately on a long coming gap")
	}
	o.ObserveNextGap(sec(1))
	if o.Decide(0) != Never {
		t.Fatal("Oracle should stay up for a short coming gap")
	}
	o.Reset()
	if o.Decide(0) != 0 {
		t.Fatal("after Reset the oracle assumes an infinite gap (end of trace)")
	}
	o.Observe(time.Second)
}

func TestOracleDemotes(t *testing.T) {
	if OracleDemotes(sec(1), sec(2)) {
		t.Fatal("short gap should not demote")
	}
	if !OracleDemotes(sec(3), sec(2)) {
		t.Fatal("long gap should demote")
	}
	if OracleDemotes(sec(2), sec(2)) {
		t.Fatal("boundary gap should not demote (strict inequality)")
	}
}

func TestMeanBurstsPerActivePeriod(t *testing.T) {
	p := power.ATTHSPAPlus // tail 16.6 s
	// Three bursts: first two 5 s apart (same active period), third 60 s
	// later (new period). k = 3 bursts / 2 periods = 1.5.
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 100},
		{T: sec(5), Dir: trace.In, Size: 100},
		{T: sec(65), Dir: trace.In, Size: 100},
	}
	k := MeanBurstsPerActivePeriod(tr, &p, sec(1))
	if k != 1.5 {
		t.Fatalf("k = %v, want 1.5", k)
	}
	if got := MeanBurstsPerActivePeriod(trace.Trace{}, &p, sec(1)); got != 1 {
		t.Fatalf("empty-trace k = %v, want 1", got)
	}
}

func TestNewFixedDelay(t *testing.T) {
	p := power.ATTHSPAPlus
	tr := trace.Trace{
		{T: 0, Dir: trace.In, Size: 100},
		{T: sec(5), Dir: trace.In, Size: 100},
		{T: sec(65), Dir: trace.In, Size: 100},
	}
	f := NewFixedDelay(tr, &p, sec(1))
	want := time.Duration(1.5 * float64(p.Tail()))
	if f.Bound != want {
		t.Fatalf("Bound = %v, want %v", f.Bound, want)
	}
	if f.Delay(0) != f.Bound {
		t.Fatal("Delay should return the bound")
	}
	f.ObserveEpisode(f.Bound, []time.Duration{0})
	f.Reset()
	if f.Name() != "MakeActive-Fix" {
		t.Fatalf("name %q", f.Name())
	}
}

func TestNoBatching(t *testing.T) {
	var n NoBatching
	if n.Delay(0) != 0 {
		t.Fatal("NoBatching must not delay")
	}
	n.ObserveEpisode(0, nil)
	n.Reset()
	if n.Name() != "NoBatching" {
		t.Fatalf("name %q", n.Name())
	}
}
