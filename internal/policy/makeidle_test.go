package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/energy"
	"repro/internal/power"
)

// idleProfile returns the round-number profile used across policy tests:
// Pt1 = 1 W, Pt2 = 0.5 W, t1 = 4 s, t2 = 8 s, Eswitch = 1.5 J,
// t_threshold = 1.5 s.
func idleProfile() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func mustMakeIdle(t *testing.T, opts ...MakeIdleOption) *MakeIdle {
	t.Helper()
	m, err := NewMakeIdle(idleProfile(), opts...)
	if err != nil {
		t.Fatalf("NewMakeIdle: %v", err)
	}
	return m
}

func TestNewMakeIdleRejectsInvalidProfile(t *testing.T) {
	if _, err := NewMakeIdle(power.Profile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestMakeIdleWarmup(t *testing.T) {
	m := mustMakeIdle(t, WithMinSample(5))
	for i := 0; i < 4; i++ {
		m.Observe(time.Minute)
		if m.Decide(0) != Never {
			t.Fatal("should defer to timers before min sample")
		}
	}
	m.Observe(time.Minute)
	if m.Decide(0) == Never {
		t.Fatal("with 5 long gaps observed, should demote")
	}
}

func TestMakeIdleDemotesOnLongGapHistory(t *testing.T) {
	m := mustMakeIdle(t)
	// All observed gaps are a minute: the status quo wastes the full tail
	// plus a switch every time; demoting immediately is clearly better.
	for i := 0; i < 50; i++ {
		m.Observe(time.Minute)
	}
	w := m.Decide(0)
	if w == Never {
		t.Fatal("MakeIdle failed to demote on uniformly long gaps")
	}
	if w > m.Threshold() {
		t.Fatalf("wait %v beyond threshold %v", w, m.Threshold())
	}
	if w != 0 {
		t.Fatalf("with all gaps long, optimal wait is 0, got %v", w)
	}
	if m.LastWait() != w {
		t.Fatal("LastWait out of sync")
	}
}

func TestMakeIdleStaysUpOnShortGapHistory(t *testing.T) {
	m := mustMakeIdle(t)
	// All gaps 50 ms: traffic is a continuous burst; switching would pay
	// Eswitch per packet for nothing.
	for i := 0; i < 50; i++ {
		m.Observe(50 * time.Millisecond)
	}
	if w := m.Decide(0); w != Never {
		t.Fatalf("MakeIdle demoted (wait %v) amid dense traffic", w)
	}
}

func TestMakeIdleBimodalPicksInteriorWait(t *testing.T) {
	m := mustMakeIdle(t, WithGridSteps(60))
	// Bimodal: most gaps are 0.5 s (inside a burst), some are a minute.
	// The optimal strategy waits out the short mode (~0.5 s) and then
	// demotes — an interior wait, neither 0 nor Never.
	for i := 0; i < 70; i++ {
		m.Observe(500 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		m.Observe(time.Minute)
	}
	w := m.Decide(0)
	if w == Never {
		t.Fatal("should demote with 30% long gaps")
	}
	if w <= 0 {
		t.Fatal("waiting 0 would false-switch on 70% of gaps; expected interior wait")
	}
	if w < 500*time.Millisecond || w > m.Threshold() {
		t.Fatalf("wait %v should cover the short mode (0.5s..threshold)", w)
	}
}

func TestMakeIdleThresholdMatchesEnergy(t *testing.T) {
	m := mustMakeIdle(t)
	p := idleProfile()
	if m.Threshold() != energy.Threshold(&p) {
		t.Fatal("policy threshold should equal energy.Threshold")
	}
}

func TestMakeIdleReset(t *testing.T) {
	m := mustMakeIdle(t)
	for i := 0; i < 50; i++ {
		m.Observe(time.Minute)
	}
	if m.Decide(0) == Never {
		t.Fatal("precondition: should demote")
	}
	m.Reset()
	if m.WindowLen() != 0 {
		t.Fatal("Reset should clear the window")
	}
	if m.Decide(0) != Never {
		t.Fatal("after Reset the policy must defer to timers")
	}
	if m.LastWait() != Never {
		t.Fatal("LastWait should reset")
	}
}

func TestMakeIdleWindowSlides(t *testing.T) {
	m := mustMakeIdle(t, WithWindowSize(20))
	// Fill with long gaps -> demote; then flood with short gaps -> the
	// old evidence ages out and the policy stops demoting.
	for i := 0; i < 20; i++ {
		m.Observe(time.Minute)
	}
	if m.Decide(0) == Never {
		t.Fatal("precondition failed")
	}
	for i := 0; i < 20; i++ {
		m.Observe(20 * time.Millisecond)
	}
	if m.Decide(0) != Never {
		t.Fatal("window did not slide: stale long gaps still dominate")
	}
}

func TestMakeIdleOptionClamps(t *testing.T) {
	m, err := NewMakeIdle(idleProfile(), WithWindowSize(0), WithGridSteps(1), WithMinSample(0))
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(time.Minute)
	// Must not panic with degenerate options.
	m.Decide(0)
}

func TestMakeIdleName(t *testing.T) {
	if mustMakeIdle(t).Name() != "MakeIdle" {
		t.Fatal("name")
	}
}

func TestMakeIdlePaperExpectationDegeneratesToZeroWait(t *testing.T) {
	// Under the paper's literal E[E_wait_switch] = Eswitch + E(t_wait),
	// the argmax is t_wait = 0 whenever demotion pays at all.
	m := mustMakeIdle(t, WithPaperExpectation())
	for i := 0; i < 70; i++ {
		m.Observe(500 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		m.Observe(time.Minute)
	}
	w := m.Decide(0)
	if w != 0 && w != Never {
		t.Fatalf("paper expectation should never choose an interior wait, got %v", w)
	}
	// The default (strategy expectation) picks an interior wait on the
	// same bimodal history — that contrast is the ablation's point.
	def := mustMakeIdle(t)
	for i := 0; i < 70; i++ {
		def.Observe(500 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		def.Observe(time.Minute)
	}
	if dw := def.Decide(0); dw <= 0 || dw == Never {
		t.Fatalf("default expectation should pick an interior wait, got %v", dw)
	}
}

func TestPropertyMakeIdleWaitWithinBounds(t *testing.T) {
	// Whatever the gap history, the chosen wait is either Never or within
	// [0, threshold].
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := NewMakeIdle(idleProfile())
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			m.Observe(time.Duration(r.Int63n(int64(30 * time.Second))))
			w := m.Decide(0)
			if w != Never && (w < 0 || w > m.Threshold()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMakeIdleExpectedGainNonNegative(t *testing.T) {
	// When MakeIdle chooses to demote, replaying its own expectation must
	// show a strictly positive predicted gain; verify by recomputing the
	// two expectations over the same window.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := idleProfile()
		m, err := NewMakeIdle(p)
		if err != nil {
			return false
		}
		var gaps []time.Duration
		for i := 0; i < 100; i++ {
			g := time.Duration(r.Int63n(int64(20 * time.Second)))
			gaps = append(gaps, g)
			m.Observe(g)
		}
		w := m.Decide(0)
		if w == Never {
			return true
		}
		window := gaps[len(gaps)-100:]
		var eNo, eWait float64
		for _, g := range window {
			eNo += energy.GapJ(&p, g)
			if g <= w {
				eWait += energy.TailJ(&p, g)
			} else {
				eWait += energy.TailJ(&p, w) + p.SwitchJ()
			}
		}
		return eNo > eWait
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
