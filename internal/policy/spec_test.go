package policy

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"makeidle", Spec{Name: "makeidle"}},
		{"  fixedtail ( wait = 2s ) ", Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}},
		{"learn(maxdelay=5s,gamma=0.01)", Spec{Name: "learn",
			Params: map[string]any{"maxdelay": "5s", "gamma": "0.01"}}},
		{"statusquo()", Spec{Name: "statusquo"}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got.Name != c.want.Name || len(got.Params) != len(c.want.Params) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		for k, v := range c.want.Params {
			if got.Params[k] != v {
				t.Fatalf("ParseSpec(%q) param %s = %v, want %v", c.in, k, got.Params[k], v)
			}
		}
	}
	for _, bad := range []string{"", "fixedtail(wait=2s", "(wait=2s)", "fixedtail(wait)", "fixedtail(wait=2s,wait=3s)", "fixedtail(=2s)"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestCanonicalStability: the byte-stable encoding is invariant under
// every way of writing the same configuration — alias vs canonical name,
// omitted vs explicit defaults, string vs numeric value forms, and any
// param-map construction order — and moves whenever a value changes.
func TestCanonicalStability(t *testing.T) {
	reg := Default()
	equal := []Spec{
		{Name: "fixedtail"},
		{Name: "fixedtail", Params: map[string]any{"wait": "4.5s"}},
		{Name: "fixedtail", Params: map[string]any{"wait": "4500ms"}},
		{Name: "fixedtail", Params: map[string]any{"wait": 4500 * time.Millisecond}},
		{Name: "fixedtail", Params: map[string]any{"wait": float64(4500000000)}},
		{Name: "4.5s"},
		{Name: "4.5s", Params: map[string]any{"wait": "4.5s"}},
	}
	want, err := reg.Canonical(RoleDemote, equal[0])
	if err != nil {
		t.Fatal(err)
	}
	if want != "fixedtail(wait=4.5s)" {
		t.Fatalf("canonical %q", want)
	}
	for i, s := range equal {
		got, err := reg.Canonical(RoleDemote, s)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("spec %d canonical %q, want %q", i, got, want)
		}
	}
	changed, err := reg.Canonical(RoleDemote, Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}})
	if err != nil {
		t.Fatal(err)
	}
	if changed == want {
		t.Fatal("changing a parameter value did not change the canonical encoding")
	}

	// Multi-parameter schema: construction order of the map cannot matter
	// (encoding follows schema declaration order), and every single-value
	// change moves the encoding.
	base := map[string]any{"window": 200, "gridsteps": 50, "minsample": 20}
	canon := func(p map[string]any) string {
		c, err := reg.Canonical(RoleDemote, Spec{Name: "makeidle", Params: p})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	ref := canon(base)
	for trial := 0; trial < 20; trial++ { // map iteration order is randomized per trial
		rebuilt := map[string]any{}
		for k, v := range base {
			rebuilt[k] = v
		}
		if canon(rebuilt) != ref {
			t.Fatal("canonical encoding depends on param map ordering")
		}
	}
	seen := map[string]bool{ref: true}
	for k := range base {
		mutated := map[string]any{}
		for k2, v2 := range base {
			mutated[k2] = v2
		}
		mutated[k] = mutated[k].(int) + 1
		c := canon(mutated)
		if seen[c] {
			t.Fatalf("mutating %q did not change the canonical encoding", k)
		}
		seen[c] = true
	}
}

func TestLabelShowsOnlyNonDefaults(t *testing.T) {
	reg := Default()
	cases := []struct {
		role Role
		spec Spec
		want string
	}{
		{RoleDemote, Spec{Name: "fixedtail"}, "fixedtail"},
		{RoleDemote, Spec{Name: "4.5s"}, "fixedtail"},
		{RoleDemote, Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}, "fixedtail(wait=2s)"},
		{RoleDemote, Spec{Name: "makeidle", Params: map[string]any{"window": 250}}, "makeidle(window=250)"},
		{RoleActive, Spec{Name: "learn", Params: map[string]any{"maxdelay": "5s", "gamma": 0.008}}, "learn(maxdelay=5s)"},
	}
	for _, c := range cases {
		got, err := reg.Label(c.role, c.spec)
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestResolveRejects(t *testing.T) {
	reg := Default()
	if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "extra-fast"}); err == nil ||
		!strings.Contains(err.Error(), "statusquo") {
		t.Fatalf("unknown name error should list valid names, got %v", err)
	}
	if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "fixedtail", Params: map[string]any{"delay": "2s"}}); err == nil ||
		!strings.Contains(err.Error(), "wait") {
		t.Fatalf("unknown param error should list params, got %v", err)
	}
	if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "fixedtail", Params: map[string]any{"wait": "20m"}}); err == nil {
		t.Fatal("out-of-bounds value accepted")
	}
	if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "fixedtail", Params: map[string]any{"wait": "soonish"}}); err == nil {
		t.Fatal("unparseable value accepted")
	}
	if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "makeidle", Params: map[string]any{"window": 2.5}}); err == nil {
		t.Fatal("fractional int accepted")
	}
	// NaN compares false against every bound, so it must die in coercion —
	// otherwise pctiat(q=NaN) would panic inside a fleet worker.
	for _, v := range []any{"NaN", math.NaN(), "+Inf", math.Inf(-1)} {
		if _, _, err := reg.Resolve(RoleDemote, Spec{Name: "pctiat", Params: map[string]any{"q": v}}); err == nil {
			t.Fatalf("non-finite float %v accepted", v)
		}
	}
}

// TestLegacyAliases maps every pre-registry flat name to its spec and
// checks both the expansion and the policy it builds.
func TestLegacyAliases(t *testing.T) {
	reg := Default()
	tr := workload.Generate(workload.Email(), 1, time.Hour)
	prof := power.Verizon3G

	demotes := map[string]string{
		"statusquo": "statusquo",
		"4.5s":      "fixedtail(wait=4.5s)",
		"95iat":     "pctiat(q=0.95)",
		"oracle":    "oracle(threshold=0s)",
		"makeidle":  "makeidle(window=100,gridsteps=40,minsample=10)",
	}
	for name, want := range demotes {
		got, err := reg.Canonical(RoleDemote, Spec{Name: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s canonical %q, want %q", name, got, want)
		}
		p, err := reg.BuildDemote(Spec{Name: name}, tr, prof)
		if err != nil || p == nil {
			t.Fatalf("%s: build: %v", name, err)
		}
	}
	actives := map[string]string{
		"none":  "none",
		"learn": "learn(maxdelay=10s,gamma=0.008)",
		"fix":   "fix(burstgap=1s)",
	}
	for name, want := range actives {
		got, err := reg.Canonical(RoleActive, Spec{Name: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s canonical %q, want %q", name, got, want)
		}
		a, err := reg.BuildActive(Spec{Name: name}, tr, prof)
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		if (a == nil) != (name == "none") {
			t.Fatalf("%s built %v", name, a)
		}
	}
}

// TestBuiltPoliciesHonorParams: parameter overrides reach the constructed
// policies.
func TestBuiltPoliciesHonorParams(t *testing.T) {
	reg := Default()
	prof := power.Verizon3G
	d, err := reg.BuildDemote(Spec{Name: "fixedtail", Params: map[string]any{"wait": "2s"}}, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	if ft := d.(*FixedTail); ft.Wait != 2*time.Second {
		t.Fatalf("wait %v", ft.Wait)
	}
	tr := trace.Trace{{T: 0}, {T: time.Second}, {T: 3 * time.Second}}
	d, err = reg.BuildDemote(Spec{Name: "pctiat", Params: map[string]any{"q": 0.5}}, tr, prof)
	if err != nil {
		t.Fatal(err)
	}
	if p := d.(*PercentileIAT); p.Name() != "50% IAT" {
		t.Fatalf("pctiat label %q", p.Name())
	}
	a, err := reg.BuildActive(Spec{Name: "learn", Params: map[string]any{"maxdelay": "3s"}}, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	if ld := a.(*LearnedDelay); ld.MaxDelay() != 3*time.Second {
		t.Fatalf("maxdelay %v", ld.MaxDelay())
	}
	d, err = reg.BuildDemote(Spec{Name: "oracle", Params: map[string]any{"threshold": "7s"}}, nil, prof)
	if err != nil {
		t.Fatal(err)
	}
	if o := d.(*Oracle); o.Threshold != 7*time.Second {
		t.Fatalf("threshold %v", o.Threshold)
	}
}

// TestCapabilities: the registry's capability bits replace the old
// hand-maintained TraceFitted switches and match the built policies.
func TestCapabilities(t *testing.T) {
	reg := Default()
	for name, fitted := range map[string]bool{
		"statusquo": false, "fixedtail": false, "pctiat": true, "oracle": false, "makeidle": false,
	} {
		s, ok := reg.Lookup(RoleDemote, name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if s.TraceFitted != fitted {
			t.Errorf("%s TraceFitted = %v, want %v", name, s.TraceFitted, fitted)
		}
	}
	for name, fitted := range map[string]bool{"none": false, "learn": false, "fix": true} {
		s, ok := reg.Lookup(RoleActive, name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if s.TraceFitted != fitted {
			t.Errorf("%s TraceFitted = %v, want %v", name, s.TraceFitted, fitted)
		}
	}
	oracle, _ := reg.Lookup(RoleDemote, "oracle")
	if !oracle.GapLookahead {
		t.Error("oracle not marked gap-lookahead")
	}
	built, err := reg.BuildDemote(Spec{Name: "oracle"}, nil, power.Verizon3G)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := built.(GapLookahead); !ok {
		t.Error("built oracle does not implement GapLookahead")
	}
}

// TestRegisterValidation: malformed schemas cannot enter a registry, so
// every registered policy is guaranteed self-describing.
func TestRegisterValidation(t *testing.T) {
	dem := func(Params, trace.Trace, power.Profile) (DemotePolicy, error) { return StatusQuo{}, nil }
	act := func(Params, trace.Trace, power.Profile) (ActivePolicy, error) { return nil, nil }
	bad := []*Schema{
		{Role: RoleDemote, NewDemote: dem},                            // no name
		{Name: "x(y)", Role: RoleDemote, NewDemote: dem},              // reserved chars
		{Name: "x", Role: "sideways", NewDemote: dem},                 // bad role
		{Name: "x", Role: RoleDemote},                                 // no builder
		{Name: "x", Role: RoleDemote, NewDemote: dem, NewActive: act}, // both builders
		{Name: "x", Role: RoleActive, NewDemote: dem},                 // wrong builder
		{Name: "x", Role: RoleDemote, NewDemote: dem, Params: []ParamSpec{{ // no default
			Name: "p", Kind: KindInt}}},
		{Name: "x", Role: RoleDemote, NewDemote: dem, Params: []ParamSpec{{ // mistyped default
			Name: "p", Kind: KindInt, Default: "ten"}}},
		{Name: "x", Role: RoleDemote, NewDemote: dem, Params: []ParamSpec{{ // default out of bounds
			Name: "p", Kind: KindInt, Default: 0, Min: 1}}},
		{Name: "x", Role: RoleDemote, NewDemote: dem, Params: []ParamSpec{ // duplicate param
			{Name: "p", Kind: KindInt, Default: 1}, {Name: "p", Kind: KindInt, Default: 2}}},
	}
	for i, s := range bad {
		if err := NewRegistry().Register(s); err == nil {
			t.Errorf("schema %d accepted: %+v", i, s)
		}
	}
	r := NewRegistry()
	ok := &Schema{Name: "x", Role: RoleDemote, NewDemote: dem}
	if err := r.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := r.Alias(RoleDemote, "y", Spec{Name: "nope"}); err == nil {
		t.Error("alias to unknown schema accepted")
	}
	if err := r.Alias(RoleDemote, "x", Spec{Name: "x"}); err == nil {
		t.Error("alias shadowing a schema accepted")
	}
	if err := r.Alias(RoleDemote, "y", Spec{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Alias(RoleDemote, "y", Spec{Name: "x"}); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func TestUsageListsEverything(t *testing.T) {
	usage := Default().Usage(RoleDemote)
	for _, want := range []string{"statusquo", "fixedtail", "pctiat", "oracle", "makeidle",
		"wait", "default 4.5s", "4.5s", "95iat"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage missing %q:\n%s", want, usage)
		}
	}
}
