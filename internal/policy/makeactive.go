package policy

import (
	"time"

	"repro/internal/experts"
)

// LearnedDelay is the §5.2 MakeActive variant: a bank of experts, each
// proposing a fixed session delay T_i = i seconds (i = 1..n), combined by
// the two-layer Learn-alpha algorithm of the appendix. After each batching
// episode the experts are scored with the loss
//
//	L(i) = gamma * Delay(T_i) + 1/b_i
//
// where Delay(T_i) = sum over the b_i bursts that would have arrived within
// T_i of (T_i - arrival offset), i.e. the aggregate delay expert i would
// have imposed, and 1/b_i rewards batching more sessions. gamma trades the
// two; the paper uses 0.008 (with delays in seconds).
type LearnedDelay struct {
	gamma   float64
	values  []float64 // T_i in seconds
	alphas  []float64
	learner *experts.LearnAlpha

	episodes  int
	lastDelay time.Duration
}

// LearnedDelayOption customizes construction.
type LearnedDelayOption func(*learnedDelayConfig)

type learnedDelayConfig struct {
	maxDelay time.Duration
	gamma    float64
	alphas   []float64
}

// WithMaxDelay bounds the largest expert's proposed delay (default 10 s,
// one expert per whole second, matching the appendix's T_i = i).
func WithMaxDelay(d time.Duration) LearnedDelayOption {
	return func(c *learnedDelayConfig) { c.maxDelay = d }
}

// WithGamma sets the delay/batching trade-off (default 0.008, §5.2).
func WithGamma(g float64) LearnedDelayOption {
	return func(c *learnedDelayConfig) { c.gamma = g }
}

// WithAlphas sets the Learn-alpha switching-rate grid.
func WithAlphas(a []float64) LearnedDelayOption {
	return func(c *learnedDelayConfig) { c.alphas = a }
}

// NewLearnedDelay constructs the learning MakeActive policy.
func NewLearnedDelay(opts ...LearnedDelayOption) *LearnedDelay {
	cfg := learnedDelayConfig{
		maxDelay: 10 * time.Second,
		gamma:    0.008,
		alphas:   experts.DefaultAlphas(),
	}
	for _, o := range opts {
		o(&cfg)
	}
	n := int(cfg.maxDelay / time.Second)
	if n < 1 {
		n = 1
	}
	values := make([]float64, n)
	for i := range values {
		values[i] = float64(i + 1) // T_i = i seconds, i = 1..n
	}
	return &LearnedDelay{
		gamma:   cfg.gamma,
		values:  values,
		alphas:  cfg.alphas,
		learner: experts.NewLearnAlpha(n, cfg.alphas),
	}
}

// Name implements ActivePolicy.
func (l *LearnedDelay) Name() string { return "MakeActive-Learn" }

// MaxDelay returns the largest expert's proposal — the learning horizon the
// simulator should report arrivals within.
func (l *LearnedDelay) MaxDelay() time.Duration {
	return time.Duration(l.values[len(l.values)-1] * float64(time.Second))
}

// Episodes returns how many batching episodes have been observed.
func (l *LearnedDelay) Episodes() int { return l.episodes }

// LastDelay returns the most recently proposed delay (Fig. 16 plots its
// trajectory).
func (l *LearnedDelay) LastDelay() time.Duration { return l.lastDelay }

// Delay implements ActivePolicy: the weighted average of expert proposals
// (appendix eq. 3).
func (l *LearnedDelay) Delay(time.Duration) time.Duration {
	d := time.Duration(l.learner.Predict(l.values) * float64(time.Second))
	if d < 0 {
		d = 0
	}
	l.lastDelay = d
	return d
}

// Losses computes the per-expert losses for an episode given the arrival
// offsets of bursts within the learning horizon. Exposed for tests.
func (l *LearnedDelay) Losses(arrivals []time.Duration) []float64 {
	losses := make([]float64, len(l.values))
	for i, ti := range l.values {
		var delaySum float64 // seconds
		b := 0
		for _, a := range arrivals {
			as := a.Seconds()
			if as <= ti {
				delaySum += ti - as
				b++
			}
		}
		if b == 0 {
			// Cannot happen when the first burst (offset 0) is included,
			// but stay safe: an expert that batches nothing is maximally
			// penalized on the 1/b term.
			losses[i] = l.gamma*ti + 1
			continue
		}
		losses[i] = l.gamma*delaySum + 1/float64(b)
	}
	return losses
}

// ObserveEpisode implements ActivePolicy: score every expert on the episode
// and run the two-layer update.
func (l *LearnedDelay) ObserveEpisode(_ time.Duration, arrivals []time.Duration) {
	if len(arrivals) == 0 {
		return
	}
	l.learner.Update(l.Losses(arrivals))
	l.episodes++
}

// Reset implements ActivePolicy.
func (l *LearnedDelay) Reset() {
	l.learner = experts.NewLearnAlpha(len(l.values), l.alphas)
	l.episodes = 0
	l.lastDelay = 0
}
