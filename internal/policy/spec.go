package policy

import (
	"fmt"

	"repro/internal/spec"
)

// This file is the policy-flavored surface of the shared parameter-spec
// machinery in internal/spec: a Spec names a registered policy and
// overrides some of its parameters; a ParamSpec declares one tunable knob
// (type, default, bounds) inside a Schema (registry.go). Every hardcoded
// paper constant — the 4.5 s dormancy tail, the 95th IAT percentile, the
// MakeActive deadline, the burst-segmentation gap — is a ParamSpec, so the
// evaluation's parameter sweeps (§6) are expressible as lists of Specs
// instead of new code. The types are aliases: a policy.Spec IS a
// spec.Spec, so the job layer can treat scheme, profile and cohort axes
// uniformly.

// ParamKind is the value type of a policy parameter.
type ParamKind = spec.ParamKind

// The supported parameter kinds, re-exported from the shared spec package.
const (
	KindDuration = spec.KindDuration
	KindFloat    = spec.KindFloat
	KindInt      = spec.KindInt
)

// ParamSpec declares one tunable parameter of a policy: its kind, default,
// and inclusive bounds.
type ParamSpec = spec.ParamSpec

// Params is a fully resolved parameter set: every schema parameter
// present, values in their canonical Go types.
type Params = spec.Params

// Spec selects a registered policy by name and overrides some of its
// parameters. Param values may be typed Go values, JSON-decoded numbers,
// or canonical strings; the registry coerces and bounds-checks them
// against the policy's schema when the spec is resolved. The zero Spec is
// invalid (no name).
type Spec = spec.Spec

// ParseSpec parses the CLI spec syntax: a bare policy name, or
// "name(k=v,k2=v2)" with values in their canonical string forms, e.g.
// "fixedtail(wait=2s)" or "makeidle(window=250)". The result still needs
// registry resolution (alias expansion, coercion, bounds).
func ParseSpec(s string) (Spec, error) {
	sp, err := spec.Parse(s)
	if err != nil {
		return Spec{}, fmt.Errorf("policy: %w", err)
	}
	return sp, nil
}
