// Package policy implements the radio-control policies evaluated in the
// paper: the status quo (carrier inactivity timers), the 4.5-second-tail and
// 95th-percentile-IAT baselines, the clairvoyant Oracle, and the paper's two
// contributions — MakeIdle (§4) and MakeActive (§5).
//
// Policies come in two kinds, matching the two halves of the control module
// in Fig. 4:
//
//   - A DemotePolicy runs while the radio is Active and decides, after each
//     packet, how long to keep the radio in its timer tail before triggering
//     fast dormancy.
//   - An ActivePolicy runs while the radio is Idle and decides how long to
//     delay a new session so that later sessions can batch into the same
//     Idle->Active promotion.
//
// internal/sim drives both against a trace.
package policy

import (
	"fmt"
	"math"
	"time"

	"repro/internal/power"
	"repro/internal/trace"
)

// Never is the wait value meaning "do not trigger fast dormancy; leave
// demotion to the base-station inactivity timers".
const Never time.Duration = math.MaxInt64

// DemotePolicy decides when to move the radio from Active to Idle.
//
// The simulator calls, for each packet in time order:
//
//	Observe(gap)   // the inter-arrival that just ended at this packet
//	Decide(now)    // the dormancy wait to apply after this packet
//
// Observe is not called for the first packet (there is no preceding gap).
type DemotePolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns how long after the packet at time now the radio
	// should trigger fast dormancy if no further packet arrives.
	// Returning Never (or any value >= the profile tail) defers to the
	// inactivity timers.
	Decide(now time.Duration) time.Duration
	// Observe feeds the policy the inter-arrival gap that just closed.
	Observe(gap time.Duration)
	// Reset clears learned state so the policy can run another trace.
	Reset()
}

// GapLookahead is implemented by clairvoyant policies (the Oracle). When a
// DemotePolicy also implements GapLookahead, the simulator tells it the
// *next* inter-arrival gap before calling Decide.
type GapLookahead interface {
	ObserveNextGap(gap time.Duration)
}

// StatusQuo is the deployed behaviour: never trigger fast dormancy, ride
// the inactivity timers (the paper's normalization baseline).
type StatusQuo struct{}

// Name implements DemotePolicy.
func (StatusQuo) Name() string { return "StatusQuo" }

// Decide implements DemotePolicy; always Never.
func (StatusQuo) Decide(time.Duration) time.Duration { return Never }

// Observe implements DemotePolicy.
func (StatusQuo) Observe(time.Duration) {}

// Reset implements DemotePolicy.
func (StatusQuo) Reset() {}

// FixedTail triggers fast dormancy a fixed wait after every packet — the
// "4.5-second tail" proposal of Falaki et al. evaluated in §6.2.
type FixedTail struct {
	// Wait is the fixed dormancy timer (4.5 s in the paper).
	Wait time.Duration
	// Label overrides Name (defaults to "4.5-second" style naming).
	Label string
}

// NewFourPointFive returns the paper's exact "4.5-second" baseline.
func NewFourPointFive() *FixedTail {
	return &FixedTail{Wait: 4500 * time.Millisecond, Label: "4.5-second"}
}

// Name implements DemotePolicy.
func (f *FixedTail) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "FixedTail(" + f.Wait.String() + ")"
}

// Decide implements DemotePolicy.
func (f *FixedTail) Decide(time.Duration) time.Duration { return f.Wait }

// Observe implements DemotePolicy.
func (f *FixedTail) Observe(time.Duration) {}

// Reset implements DemotePolicy.
func (f *FixedTail) Reset() {}

// PercentileIAT triggers fast dormancy after the q-th percentile of the
// whole trace's inter-arrival distribution — the "95% IAT" baseline. As in
// the paper, the percentile is computed over the same trace the policy is
// then evaluated on, which deliberately grants it training-on-test leeway.
type PercentileIAT struct {
	wait  time.Duration
	q     float64
	label string
}

// NewPercentileIAT builds the baseline for a trace at quantile q (0..1).
// The label rounds q*100 to 6 significant digits so binary float
// artifacts (0.29*100 = 28.999999999999996) never leak into reports.
func NewPercentileIAT(tr trace.Trace, q float64) *PercentileIAT {
	return &PercentileIAT{wait: tr.QuantileGap(q), q: q,
		label: fmt.Sprintf("%.6g%% IAT", q*100)}
}

// Name implements DemotePolicy.
func (p *PercentileIAT) Name() string { return p.label }

// Wait exposes the computed timer value (reported in §6.3).
func (p *PercentileIAT) Wait() time.Duration { return p.wait }

// Decide implements DemotePolicy.
func (p *PercentileIAT) Decide(time.Duration) time.Duration { return p.wait }

// Observe implements DemotePolicy.
func (p *PercentileIAT) Observe(time.Duration) {}

// Reset implements DemotePolicy.
func (p *PercentileIAT) Reset() {}

// Oracle knows the next inter-arrival time before deciding (§6.2): it
// demotes immediately when the coming gap exceeds t_threshold and otherwise
// keeps the radio up. It upper-bounds the savings achievable without
// delaying traffic.
type Oracle struct {
	// Threshold is t_threshold for the profile (energy.Threshold).
	Threshold time.Duration
	nextGap   time.Duration
}

// NewOracle builds an Oracle for the given threshold.
func NewOracle(threshold time.Duration) *Oracle {
	return &Oracle{Threshold: threshold, nextGap: Never}
}

// Name implements DemotePolicy.
func (*Oracle) Name() string { return "Oracle" }

// ObserveNextGap implements GapLookahead.
func (o *Oracle) ObserveNextGap(gap time.Duration) { o.nextGap = gap }

// Decide implements DemotePolicy.
func (o *Oracle) Decide(time.Duration) time.Duration {
	if o.nextGap > o.Threshold {
		return 0
	}
	return Never
}

// Observe implements DemotePolicy.
func (o *Oracle) Observe(time.Duration) {}

// Reset implements DemotePolicy.
func (o *Oracle) Reset() { o.nextGap = Never }

// OracleDemotes reports the ground-truth decision for a gap: whether the
// Oracle would demote (gap exceeds the threshold). metrics uses this for
// false/missed-switch scoring (§6.3).
func OracleDemotes(gap, threshold time.Duration) bool { return gap > threshold }

// ActivePolicy decides how long to delay a new session when the radio is
// Idle, so that nearby sessions share one promotion (§5).
type ActivePolicy interface {
	// Name identifies the policy in reports.
	Name() string
	// Delay is called when a burst arrives at time now and finds the
	// radio Idle with no batching window open; it returns how long to
	// buffer before promoting.
	Delay(now time.Duration) time.Duration
	// ObserveEpisode reports a finished batching episode: the delay that
	// was applied and the arrival offsets (from the episode start, offset
	// 0 = the first burst) of every burst that arrived within the
	// learning horizon.
	ObserveEpisode(chosen time.Duration, arrivals []time.Duration)
	// Reset clears learned state.
	Reset()
}

// FixedDelay is the §5.1 strawman: a constant bound T_fix = k * (t1 + t2),
// where k is the average number of bursts per radio active period.
type FixedDelay struct {
	// Bound is the delay applied to every episode.
	Bound time.Duration
}

// MaxFixedDelayBound caps T_fix. The paper's k (bursts per active period)
// is well-behaved on its real traces, but heartbeat-dominated traffic can
// drive k arbitrarily high (every heartbeat is a burst and none of them
// ever lets the timers expire), and a delay bound beyond tens of seconds
// stops being a plausible background-traffic deferral. Session delays the
// paper reports are single-digit seconds (Table 3).
const MaxFixedDelayBound = 30 * time.Second

// NewFixedDelay computes T_fix from a trace and profile: it segments the
// trace into bursts, groups bursts whose spacing is within the timer tail
// into "active periods" (no state switch between them under the status
// quo), and sets k to the mean number of bursts per active period. The
// bound is capped at MaxFixedDelayBound.
func NewFixedDelay(tr trace.Trace, p *power.Profile, burstGap time.Duration) *FixedDelay {
	k := MeanBurstsPerActivePeriod(tr, p, burstGap)
	bound := time.Duration(k * float64(p.Tail()))
	if bound > MaxFixedDelayBound {
		bound = MaxFixedDelayBound
	}
	return &FixedDelay{Bound: bound}
}

// MeanBurstsPerActivePeriod computes the paper's k: bursts separated by
// less than t1+t2 share an active period.
func MeanBurstsPerActivePeriod(tr trace.Trace, p *power.Profile, burstGap time.Duration) float64 {
	bursts := tr.Bursts(burstGap)
	if len(bursts) == 0 {
		return 1
	}
	periods := 1
	for i := 1; i < len(bursts); i++ {
		if bursts[i].Start-bursts[i-1].End > p.Tail() {
			periods++
		}
	}
	return float64(len(bursts)) / float64(periods)
}

// Name implements ActivePolicy.
func (f *FixedDelay) Name() string { return "MakeActive-Fix" }

// Delay implements ActivePolicy.
func (f *FixedDelay) Delay(time.Duration) time.Duration { return f.Bound }

// ObserveEpisode implements ActivePolicy (the fixed bound does not learn).
func (f *FixedDelay) ObserveEpisode(time.Duration, []time.Duration) {}

// Reset implements ActivePolicy.
func (f *FixedDelay) Reset() {}

// NoBatching is an ActivePolicy that never delays; useful as an explicit
// "MakeActive disabled" marker.
type NoBatching struct{}

// Name implements ActivePolicy.
func (NoBatching) Name() string { return "NoBatching" }

// Delay implements ActivePolicy.
func (NoBatching) Delay(time.Duration) time.Duration { return 0 }

// ObserveEpisode implements ActivePolicy.
func (NoBatching) ObserveEpisode(time.Duration, []time.Duration) {}

// Reset implements ActivePolicy.
func (NoBatching) Reset() {}
