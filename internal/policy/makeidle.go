package policy

import (
	"time"

	"repro/internal/energy"
	"repro/internal/power"
)

// MakeIdle is the paper's §4 algorithm. After each packet it chooses the
// dormancy wait t_wait that maximizes the expected energy gain over the
// status quo, using the empirical inter-arrival distribution of the last n
// packets:
//
//	f(t_wait) = E[E_no_switch] - E[E_wait_switch(t_wait)]
//
// where, against the windowed distribution of gaps g,
//
//	E[E_no_switch]        = mean_g E(g)            (the paper's eq. 1)
//	E[E_wait_switch(w)]   = mean_g  { Tail(g)              if g <= w
//	                                  Tail(w) + E_switch   if g  > w }
//
// The second expectation spells out the strategy "wait w; if a packet
// arrives first just pay the tail; otherwise demote and later promote".
// E(g) is energy.GapJ — the status-quo cost of a gap, including the switch
// the timers themselves eventually pay on long gaps. The candidate waits
// are a grid over [0, t_threshold] (§4.2 notes waits beyond t_threshold
// leave no room for savings); if even the best wait shows no expected gain,
// MakeIdle leaves the timers in charge for this packet.
//
// Every energy term above is a pure function of the profile and either a
// windowed gap or a fixed grid wait, so the implementation precomputes
// them — per gap at Observe time, per candidate wait at construction —
// and Decide reduces to compare-and-add over the window. The summation
// order (window order, oldest gap first) and every individual term are
// unchanged, so the chosen waits are bit-identical to evaluating the
// energy functions inline.
type MakeIdle struct {
	profile   power.Profile
	threshold time.Duration
	grid      []time.Duration
	minSample int
	paperExp  bool

	// ring is the sliding window of recent inter-arrivals with their
	// energy terms memoized: ring[i].tailJ = TailJ(gap) (the arrival
	// branch of E[E_wait_switch]) and ring[i].gapJ = E(gap) (the
	// status-quo cost). head is the slot the next Observe writes; count
	// the number of valid samples.
	ring  []gapSample
	head  int
	count int

	// gridCost[i] = TailJ(grid[i]) + Eswitch: the no-arrival branch of
	// E[E_wait_switch(grid[i])], and (addition being commutative) also the
	// paper's literal Eswitch + E(t_wait) used under WithPaperExpectation.
	gridCost []float64
	// satGapJ = TailJ(tail) + Eswitch: E(g) for gaps past the timer tail,
	// where the status-quo cost saturates.
	satGapJ float64
	tail    time.Duration

	lastWait time.Duration
}

// gapSample is one windowed inter-arrival with its memoized energy terms.
type gapSample struct {
	gap   time.Duration
	tailJ float64
	gapJ  float64
}

// MakeIdleOption customizes construction.
type MakeIdleOption func(*makeIdleConfig)

type makeIdleConfig struct {
	windowSize int
	gridSteps  int
	minSample  int
	paperExp   bool
}

// WithWindowSize sets the number of recent inter-arrivals used to build the
// distribution (the paper's n; default 100, swept in Fig. 13).
func WithWindowSize(n int) MakeIdleOption {
	return func(c *makeIdleConfig) { c.windowSize = n }
}

// WithGridSteps sets how many candidate waits are evaluated across
// [0, t_threshold] (default 40).
func WithGridSteps(n int) MakeIdleOption {
	return func(c *makeIdleConfig) { c.gridSteps = n }
}

// WithMinSample sets how many gaps must be observed before MakeIdle starts
// demoting (default 10; below this it defers to the timers).
func WithMinSample(n int) MakeIdleOption {
	return func(c *makeIdleConfig) { c.minSample = n }
}

// WithPaperExpectation switches E[E_wait_switch] to the paper's literal
// formula, Eswitch + E(t_wait), which charges the switch unconditionally
// instead of only on the no-arrival branch. Under that formula f(t_wait)
// is maximized at t_wait = 0 whenever demotion is profitable at all, so
// the policy degenerates to demote-immediately-or-never. Kept as an
// ablation (DESIGN.md §5, decision 2); the default is the full strategy
// expectation, which the paper's step-1 conditional-probability argument
// implies.
func WithPaperExpectation() MakeIdleOption {
	return func(c *makeIdleConfig) { c.paperExp = true }
}

// NewMakeIdle builds the policy for a profile. The profile must be valid.
func NewMakeIdle(p power.Profile, opts ...MakeIdleOption) (*MakeIdle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cfg := makeIdleConfig{windowSize: 100, gridSteps: 40, minSample: 10}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.windowSize < 1 {
		cfg.windowSize = 1
	}
	if cfg.gridSteps < 2 {
		cfg.gridSteps = 2
	}
	if cfg.minSample < 1 {
		cfg.minSample = 1
	}
	th := energy.Threshold(&p)
	eswitch := p.SwitchJ()
	grid := make([]time.Duration, cfg.gridSteps)
	gridCost := make([]float64, cfg.gridSteps)
	for i := range grid {
		grid[i] = th * time.Duration(i) / time.Duration(cfg.gridSteps-1)
		gridCost[i] = energy.TailJ(&p, grid[i]) + eswitch
	}
	return &MakeIdle{
		profile:   p,
		threshold: th,
		grid:      grid,
		gridCost:  gridCost,
		satGapJ:   energy.TailJ(&p, p.Tail()) + eswitch,
		tail:      p.Tail(),
		ring:      make([]gapSample, cfg.windowSize),
		minSample: cfg.minSample,
		paperExp:  cfg.paperExp,
		lastWait:  Never,
	}, nil
}

// Name implements DemotePolicy.
func (m *MakeIdle) Name() string { return "MakeIdle" }

// Threshold exposes the computed t_threshold.
func (m *MakeIdle) Threshold() time.Duration { return m.threshold }

// WindowLen reports how many gaps the distribution currently holds.
func (m *MakeIdle) WindowLen() int { return m.count }

// LastWait returns the wait chosen by the most recent Decide (Never when
// the policy deferred to the timers). Fig. 14 plots this trajectory.
func (m *MakeIdle) LastWait() time.Duration { return m.lastWait }

// Observe implements DemotePolicy: slide the window forward, memoizing the
// gap's two energy terms so Decide never re-evaluates them.
func (m *MakeIdle) Observe(gap time.Duration) {
	tj := energy.TailJ(&m.profile, gap)
	gj := tj
	if gap > m.tail {
		gj = m.satGapJ
	}
	m.ring[m.head] = gapSample{gap: gap, tailJ: tj, gapJ: gj}
	m.head = (m.head + 1) % len(m.ring)
	if m.count < len(m.ring) {
		m.count++
	}
}

// window returns the ring's live samples as (up to) two contiguous spans,
// oldest gap first — the same iteration order dist.Window.Each used, which
// fixes the float summation order in Decide.
func (m *MakeIdle) window() (a, b []gapSample) {
	start := m.head - m.count
	if start < 0 {
		start += len(m.ring)
	}
	if start+m.count <= len(m.ring) {
		return m.ring[start : start+m.count], nil
	}
	return m.ring[start:], m.ring[:start+m.count-len(m.ring)]
}

// Decide implements DemotePolicy.
func (m *MakeIdle) Decide(time.Duration) time.Duration {
	if m.count < m.minSample {
		m.lastWait = Never
		return Never
	}
	wa, wb := m.window()
	// Expected status-quo energy for a gap drawn from the window.
	n := float64(m.count)
	var eNoSwitch float64
	for i := range wa {
		eNoSwitch += wa[i].gapJ
	}
	for i := range wb {
		eNoSwitch += wb[i].gapJ
	}
	eNoSwitch /= n

	bestWait := Never
	bestGain := 0.0 // only accept strictly positive expected gain
	for i, w := range m.grid {
		var eWait float64
		if m.paperExp {
			// Paper's literal eq.: Eswitch + E(t_wait), unconditionally.
			eWait = m.gridCost[i]
		} else {
			wcost := m.gridCost[i]
			for k := range wa {
				if wa[k].gap <= w {
					eWait += wa[k].tailJ
				} else {
					eWait += wcost
				}
			}
			for k := range wb {
				if wb[k].gap <= w {
					eWait += wb[k].tailJ
				} else {
					eWait += wcost
				}
			}
			eWait /= n
		}
		if gain := eNoSwitch - eWait; gain > bestGain {
			bestGain = gain
			bestWait = w
		}
	}
	m.lastWait = bestWait
	return bestWait
}

// Reset implements DemotePolicy.
func (m *MakeIdle) Reset() {
	m.head, m.count = 0, 0
	m.lastWait = Never
}
