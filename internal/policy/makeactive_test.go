package policy

import (
	"math"
	"testing"
	"time"
)

func TestLearnedDelayDefaults(t *testing.T) {
	l := NewLearnedDelay()
	if l.Name() != "MakeActive-Learn" {
		t.Fatalf("name %q", l.Name())
	}
	if l.MaxDelay() != 10*time.Second {
		t.Fatalf("MaxDelay = %v", l.MaxDelay())
	}
	// Uniform initial weights over T_i = 1..10 -> mean 5.5 s.
	d := l.Delay(0)
	if d < 5*time.Second || d > 6*time.Second {
		t.Fatalf("initial delay = %v, want ~5.5s", d)
	}
	if l.LastDelay() != d {
		t.Fatal("LastDelay out of sync")
	}
}

func TestLearnedDelayOptions(t *testing.T) {
	l := NewLearnedDelay(WithMaxDelay(3*time.Second), WithGamma(0.1))
	if l.MaxDelay() != 3*time.Second {
		t.Fatalf("MaxDelay = %v", l.MaxDelay())
	}
	if got := l.Delay(0); got < 1500*time.Millisecond || got > 2500*time.Millisecond {
		t.Fatalf("initial delay over 3 experts = %v, want ~2s", got)
	}
	// Degenerate max delay clamps to one expert.
	l2 := NewLearnedDelay(WithMaxDelay(100 * time.Millisecond))
	if l2.MaxDelay() != time.Second {
		t.Fatalf("clamped MaxDelay = %v", l2.MaxDelay())
	}
}

func TestLossesShape(t *testing.T) {
	l := NewLearnedDelay(WithMaxDelay(4 * time.Second))
	// One burst at offset 0 and one at 2.5 s.
	arrivals := []time.Duration{0, 2500 * time.Millisecond}
	losses := l.Losses(arrivals)
	if len(losses) != 4 {
		t.Fatalf("%d losses", len(losses))
	}
	// Expert T1 = 1 s batches only the first burst: L = gamma*1 + 1/1.
	want1 := 0.008*1 + 1.0
	if math.Abs(losses[0]-want1) > 1e-9 {
		t.Fatalf("L(T=1) = %v, want %v", losses[0], want1)
	}
	// Expert T3 = 3 s batches both: delay = 3 + 0.5; L = gamma*3.5 + 1/2.
	want3 := 0.008*3.5 + 0.5
	if math.Abs(losses[2]-want3) > 1e-9 {
		t.Fatalf("L(T=3) = %v, want %v", losses[2], want3)
	}
	// With the paper's small gamma, batching two bursts beats batching one.
	if losses[2] >= losses[0] {
		t.Fatal("batching more sessions should have lower loss at small gamma")
	}
}

func TestLossesEmptyExpertPenalized(t *testing.T) {
	l := NewLearnedDelay(WithMaxDelay(2 * time.Second))
	// No arrival within T1 = 1 s (degenerate input without offset 0).
	losses := l.Losses([]time.Duration{1500 * time.Millisecond})
	if losses[0] <= 1 {
		t.Fatalf("expert that batches nothing should be heavily penalized: %v", losses[0])
	}
}

func TestLearnedDelayShrinksWhenBurstsComeEarly(t *testing.T) {
	// Fig. 16's dynamic: if every follow-up burst arrives within ~1 s,
	// long delays pay delay cost for no extra batching, so the learned
	// delay should drop well below the uniform prior (5.5 s).
	l := NewLearnedDelay()
	before := l.Delay(0)
	for i := 0; i < 60; i++ {
		l.ObserveEpisode(before, []time.Duration{0, 300 * time.Millisecond, 800 * time.Millisecond})
	}
	after := l.Delay(0)
	if after >= before {
		t.Fatalf("delay did not shrink: %v -> %v", before, after)
	}
	if after > 4*time.Second {
		t.Fatalf("delay %v still large after 60 early-arrival episodes", after)
	}
	if l.Episodes() != 60 {
		t.Fatalf("episodes = %d", l.Episodes())
	}
}

func TestLearnedDelayGrowsWhenBurstsSpreadOut(t *testing.T) {
	// If bursts trickle in over many seconds, larger delays batch more
	// sessions and the 1/b term dominates the small gamma delay penalty.
	l := NewLearnedDelay()
	for i := 0; i < 60; i++ {
		l.ObserveEpisode(0, []time.Duration{
			0, 2 * time.Second, 4 * time.Second, 6 * time.Second, 8 * time.Second, 9 * time.Second,
		})
	}
	d := l.Delay(0)
	if d < 6*time.Second {
		t.Fatalf("delay %v should grow toward the horizon when arrivals spread out", d)
	}
}

func TestLearnedDelayEmptyEpisodeIgnored(t *testing.T) {
	l := NewLearnedDelay()
	l.ObserveEpisode(time.Second, nil)
	if l.Episodes() != 0 {
		t.Fatal("empty episode should not count")
	}
}

func TestLearnedDelayReset(t *testing.T) {
	l := NewLearnedDelay()
	for i := 0; i < 30; i++ {
		l.ObserveEpisode(0, []time.Duration{0, 100 * time.Millisecond})
	}
	trained := l.Delay(0)
	l.Reset()
	if l.Episodes() != 0 {
		t.Fatal("episodes not reset")
	}
	fresh := l.Delay(0)
	if math.Abs(fresh.Seconds()-5.5) > 0.5 {
		t.Fatalf("reset learner should be back at the uniform prior, got %v", fresh)
	}
	if trained == fresh {
		t.Log("note: trained delay coincided with prior (unlikely but harmless)")
	}
}

func TestLearnedDelayRespectsCustomAlphasOnReset(t *testing.T) {
	l := NewLearnedDelay(WithAlphas([]float64{0.3}))
	l.ObserveEpisode(0, []time.Duration{0})
	l.Reset()
	// Must not panic and must still predict within range.
	d := l.Delay(0)
	if d < 0 || d > l.MaxDelay() {
		t.Fatalf("delay %v out of range after reset", d)
	}
}

func TestLearnedDelayNeverNegativeNorBeyondHorizon(t *testing.T) {
	l := NewLearnedDelay()
	for i := 0; i < 100; i++ {
		arr := []time.Duration{0}
		if i%3 == 0 {
			arr = append(arr, time.Duration(i%10)*time.Second)
		}
		l.ObserveEpisode(l.Delay(0), arr)
		d := l.Delay(0)
		if d < 0 || d > l.MaxDelay() {
			t.Fatalf("delay %v escaped [0, %v]", d, l.MaxDelay())
		}
	}
}
