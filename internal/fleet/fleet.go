package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultShards is the shard count used when Options.Shards is unset. It is
// a fixed constant — deliberately not tied to GOMAXPROCS — so default
// aggregates are reproducible across machines with different core counts.
// 64 shards keep every worker busy on any realistic core count while
// leaving shards coarse enough that per-shard accumulator overhead is
// negligible.
const DefaultShards = 64

// ErrCanceled is returned by Run when Options.Cancel closes before every
// shard completes. Wrapped errors satisfy errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("fleet: run canceled")

// Progress counts a run's completed work. Shard counts are the unit of
// observation because the shard is the unit of scheduling and reduction.
type Progress struct {
	// DoneShards / Shards count completed vs total shards.
	DoneShards, Shards int
	// DoneJobs / TotalJobs count replays inside completed shards.
	DoneJobs, TotalJobs int
}

// Options tunes a fleet run. The zero value gives GOMAXPROCS workers and
// DefaultShards shards.
type Options struct {
	// Workers is the number of concurrent replay goroutines. <= 0 means
	// runtime.GOMAXPROCS(0). Workers = 1 degrades to a serial run with
	// identical results.
	Workers int
	// Shards is the number of aggregate partitions. <= 0 means
	// DefaultShards. More shards expose more parallelism; the shard count
	// (not the worker count) fixes the reduction grouping.
	Shards int
	// OnShard, when non-nil, is called after each shard completes
	// successfully. Calls are serialized (never concurrent) and arrive in
	// shard completion order, which varies run to run; the counts
	// themselves are monotone. The callback runs on a worker goroutine, so
	// it should be quick.
	OnShard func(Progress)
	// Cancel, when non-nil, aborts the run once closed. Cancellation is
	// observed between jobs: in-flight replays finish, no further job
	// starts, and Run returns ErrCanceled. The final aggregate is
	// discarded — a canceled run never exposes a partial total.
	Cancel <-chan struct{}
	// TraceCache, when non-nil, memoizes materialized traces for Source
	// jobs that carry a CacheKey, so repeated sweeps over the same cohort
	// synthesize each user's packets once instead of once per cell. Safe
	// to share across concurrent runs.
	TraceCache *TraceCache
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) shards(jobs int) int {
	s := o.Shards
	if s <= 0 {
		s = DefaultShards
	}
	if s > jobs {
		s = jobs
	}
	if s < 1 {
		s = 1
	}
	return s
}

// NumShards reports the shard count a run of n jobs uses under these
// options (the configured count clamped to the job count) — exported so
// layers that split one submission into several fleet runs can total
// progress denominators up front.
func (o Options) NumShards(n int) int { return o.shards(n) }

// Job is one replay: a packet source (streamed from a constructor,
// generated in-worker from the seed, or an explicit trace), a carrier
// profile, and the policy pair to replay it under.
type Job struct {
	// Seed is passed to Source/Gen; it also identifies the job in reports.
	// Seeds are the caller's contract for determinism: same seed, same
	// packets.
	Seed int64
	// Trace is a materialized packet trace to replay. Prefer Source at
	// fleet scale.
	Trace trace.Trace
	// Gen builds the job's trace from Seed inside the worker (the trace
	// lives only for the duration of the job).
	Gen func(seed int64) trace.Trace
	// Source constructs a streaming packet source from Seed. This is the
	// preferred form at fleet scale: the worker pulls packets on demand,
	// so per-worker memory is independent of trace duration. The
	// constructor is invoked once per replay (twice with Baseline set), so
	// it must be deterministic in Seed. At least one of Trace, Gen or
	// Source must be set; when several are, Trace wins over Gen, which
	// wins over Source (a materialized form always takes precedence).
	Source func(seed int64) trace.Source
	// Profile is the carrier power profile to replay against.
	Profile power.Profile
	// Scheme labels the policy pair in aggregates (e.g. "MakeIdle").
	Scheme string
	// Demote constructs the demote policy for this job. Called once per
	// job with the job's trace, so trace-fitted baselines (95% IAT) work;
	// must return a fresh policy (jobs share nothing). Streaming jobs
	// call it with a nil trace unless FitTrace is set.
	Demote func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error)
	// Active constructs the batching policy; a nil factory (or a nil
	// policy from it) disables batching. Errors fail the job like Demote
	// errors do.
	Active func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error)
	// FitTrace marks policy factories that must see the materialized
	// trace (95% IAT quantile fitting, MakeActive-Fix). A Source job with
	// FitTrace set collects its source into a slice for one fit pass —
	// the policy factories run against it — then frees the slice and
	// replays streaming, so only the fit itself is O(trace) in memory and
	// both replays stay O(1) like any other Source job.
	FitTrace bool
	// Opts are the simulation options for both the run and its baseline.
	Opts *sim.Options
	// Baseline also replays the trace under policy.StatusQuo so the fold
	// can compute relative metrics (savings, switch ratio).
	Baseline bool
	// CacheKey, when non-empty on a Source job, lets Options.TraceCache
	// memoize the materialized packets. The key must determine the packet
	// stream completely (generator config plus Seed); Cohort.Jobs derives
	// one from the cohort's canonical encoding. Empty disables caching for
	// this job.
	CacheKey string
	// PolicyKey, when non-empty on a non-FitTrace job, lets workers reuse
	// one constructed policy pair per (PolicyKey, Profile) across jobs,
	// relying on the engine's per-run policy Reset. The key must determine
	// the factories' output completely (the registry's canonical spec
	// encoding qualifies). Empty constructs fresh policies per job.
	PolicyKey string
}

// Outcome hands one finished job to the fold. Result and Baseline are only
// valid during the Fold call for jobs the accumulator does not retain; the
// standard aggregates copy the scalars they need and drop the rest.
type Outcome struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Job points at the submitted job (shared, read-only).
	Job *Job
	// Result is the replay outcome under the job's policy pair.
	Result *sim.Result
	// Baseline is the StatusQuo outcome, nil unless Job.Baseline.
	Baseline *sim.Result
}

// Accumulator reduces outcomes. New creates an empty (per-shard)
// accumulator; Fold folds one outcome into it and returns it (Fold runs
// sequentially within a shard, so no locking is needed); Merge combines two
// shard accumulators, left side first in shard order.
type Accumulator[A any] struct {
	New   func() A
	Fold  func(A, Outcome) A
	Merge func(A, A) A
}

// workerState is the scratch one worker goroutine carries across jobs: a
// reusable engine plus a cache of constructed policies keyed by
// (Job.PolicyKey, profile). Both live across runs via workerPool, so a
// sweep of N cells allocates O(workers) engines and policy sets, not
// O(cells). The policy cache relies on the engine's contract of Resetting
// policies at the start of every run; each state is owned by exactly one
// goroutine at a time, so no locking.
type workerState struct {
	engine   *sim.Engine
	policies map[policyCacheKey]cachedPolicies
}

// policyCacheKey identifies a reusable policy pair. The profile is part of
// the key (not just its name) because factories close over profile values
// and callers may sweep parameterized profiles sharing a name.
type policyCacheKey struct {
	key  string
	prof power.Profile
}

type cachedPolicies struct {
	demote policy.DemotePolicy
	active policy.ActivePolicy
}

// maxPolicyCache bounds a worker's policy cache; beyond it the cache is
// dropped wholesale (sweeps cycle a small scheme set, so this never fires
// in practice — it only guards pathological key churn).
const maxPolicyCache = 256

var workerPool = sync.Pool{New: func() any {
	return &workerState{
		engine:   sim.NewEngine(),
		policies: map[policyCacheKey]cachedPolicies{},
	}
}}

// policyPair returns the job's constructed policy pair, reusing the
// worker's cache when the job allows it (PolicyKey set, not trace-fitted).
func (ws *workerState) policyPair(job *Job, fit trace.Trace) (policy.DemotePolicy, policy.ActivePolicy, error) {
	cacheable := job.PolicyKey != "" && !job.FitTrace
	ck := policyCacheKey{key: job.PolicyKey, prof: job.Profile}
	if cacheable {
		if p, ok := ws.policies[ck]; ok {
			return p.demote, p.active, nil
		}
	}
	demote, err := job.Demote(fit, job.Profile)
	if err != nil {
		return nil, nil, err
	}
	var active policy.ActivePolicy
	if job.Active != nil {
		if active, err = job.Active(fit, job.Profile); err != nil {
			return nil, nil, err
		}
	}
	if cacheable {
		if len(ws.policies) >= maxPolicyCache {
			clear(ws.policies)
		}
		ws.policies[ck] = cachedPolicies{demote: demote, active: active}
	}
	return demote, active, nil
}

// Run executes every job across the worker pool and returns the merged
// accumulator. It fails on the first job error (reported in job order).
func Run[A any](jobs []Job, opts Options, acc Accumulator[A]) (A, error) {
	return runHooked(jobs, opts, acc, nil)
}

// runHooked is Run plus an optional per-shard hook receiving the completed
// shard's index and (read-only) partial accumulator along with the progress
// counts. The hook runs under the same serialization lock as
// Options.OnShard; the partial it sees is final — no goroutine touches a
// shard accumulator after its shard completes until the end-of-run merge.
func runHooked[A any](jobs []Job, opts Options, acc Accumulator[A], hook func(shard int, partial A, p Progress)) (A, error) {
	var zero A
	for i := range jobs {
		if jobs[i].Trace == nil && jobs[i].Gen == nil && jobs[i].Source == nil {
			return zero, fmt.Errorf("fleet: job %d has no Trace, Gen or Source", i)
		}
		if jobs[i].Demote == nil {
			return zero, fmt.Errorf("fleet: job %d has no Demote factory", i)
		}
	}
	if len(jobs) == 0 {
		return acc.New(), nil
	}

	nshards := opts.shards(len(jobs))
	workers := opts.workers()
	if workers > nshards {
		workers = nshards
	}

	partials := make([]A, nshards)
	errs := make([]error, nshards)
	var (
		mu       sync.Mutex
		progress = Progress{Shards: nshards, TotalJobs: len(jobs)}
	)
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := workerPool.Get().(*workerState)
			defer workerPool.Put(ws)
			for s := range shardCh {
				partials[s], errs[s] = runShard(jobs, s, nshards, ws, acc, opts)
				if errs[s] != nil || (hook == nil && opts.OnShard == nil) {
					continue
				}
				lo, hi := shardRange(len(jobs), s, nshards)
				mu.Lock()
				progress.DoneShards++
				progress.DoneJobs += hi - lo
				p := progress
				if hook != nil {
					hook(s, partials[s], p)
				}
				if opts.OnShard != nil {
					opts.OnShard(p)
				}
				mu.Unlock()
			}
		}()
	}
	for s := 0; s < nshards; s++ {
		shardCh <- s
	}
	close(shardCh)
	wg.Wait()

	for s := 0; s < nshards; s++ {
		if errs[s] != nil {
			return zero, errs[s]
		}
	}
	merged := acc.New()
	for s := 0; s < nshards; s++ {
		merged = acc.Merge(merged, partials[s])
	}
	return merged, nil
}

// canceled reports whether the (possibly nil) cancel channel is closed.
func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// Map runs fn(0..n-1) across the worker pool and returns the results in
// index order; the first error (by index) aborts the run. Each invocation
// gets the worker's reusable engine, so fn can replay traces without
// allocating its own. Map is the runtime's escape hatch for parallel work
// that is not a single (trace × profile × policy) replay — parameter
// sweeps, composite sub-simulations — while keeping the same deterministic
// index-ordered semantics as Run.
func Map[T any](n int, opts Options, fn func(i int, engine *sim.Engine) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	nshards := opts.shards(n)
	workers := opts.workers()
	if workers > nshards {
		workers = nshards
	}
	results := make([]T, n)
	errs := make([]error, n)
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := workerPool.Get().(*workerState)
			defer workerPool.Put(ws)
			for s := range shardCh {
				lo, hi := shardRange(n, s, nshards)
				for i := lo; i < hi; i++ {
					results[i], errs[i] = fn(i, ws.engine)
				}
			}
		}()
	}
	for s := 0; s < nshards; s++ {
		shardCh <- s
	}
	close(shardCh)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// Collect is an accumulator retaining every outcome, keyed by job index —
// for table-rendering experiments whose cohorts are small enough to hold.
// Fleet-scale runs should reduce with SummaryAccumulator instead.
func Collect() Accumulator[map[int]Outcome] {
	return Accumulator[map[int]Outcome]{
		New: func() map[int]Outcome { return map[int]Outcome{} },
		Fold: func(m map[int]Outcome, out Outcome) map[int]Outcome {
			m[out.Index] = out
			return m
		},
		Merge: func(a, b map[int]Outcome) map[int]Outcome {
			for k, v := range b {
				a[k] = v
			}
			return a
		},
	}
}

// shardRange returns the contiguous job range [lo, hi) of shard s: jobs
// split as evenly as possible, earlier shards one longer on remainder.
func shardRange(jobs, s, nshards int) (lo, hi int) {
	q, r := jobs/nshards, jobs%nshards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// runShard replays the shard's jobs in order on one engine, folding each
// outcome as it completes. Cancellation is checked before every job.
func runShard[A any](jobs []Job, s, nshards int, ws *workerState, acc Accumulator[A], opts Options) (A, error) {
	a := acc.New()
	lo, hi := shardRange(len(jobs), s, nshards)
	for i := lo; i < hi; i++ {
		if canceled(opts.Cancel) {
			var zero A
			return zero, fmt.Errorf("fleet: shard %d at job %d: %w", s, i, ErrCanceled)
		}
		out, err := runJob(&jobs[i], i, ws, opts.TraceCache)
		if err != nil {
			var zero A
			return zero, fmt.Errorf("fleet: job %d (scheme %q, seed %d): %w",
				i, jobs[i].Scheme, jobs[i].Seed, err)
		}
		a = acc.Fold(a, out)
	}
	return a, nil
}

// runJob replays the job (plus its baseline) on the worker's engine:
// streaming straight from the source constructor when one is given,
// falling back to a materialized trace for explicit traces and Gen jobs.
// Cacheable Source jobs (CacheKey set, cache provided) replay the memoized
// materialized trace instead — byte-identical to streaming the same seed,
// but synthesized once per cache lifetime rather than per replay.
func runJob(job *Job, index int, ws *workerState, tc *TraceCache) (Outcome, error) {
	if job.Source != nil && job.Trace == nil && job.Gen == nil {
		if tc != nil && job.CacheKey != "" {
			return runJobCached(job, index, ws, tc)
		}
		return runJobStreaming(job, index, ws)
	}
	tr := job.Trace
	if tr == nil {
		tr = job.Gen(job.Seed)
	}
	out := Outcome{Index: index, Job: job}
	if job.Baseline {
		base, err := ws.engine.Run(tr, job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	demote, active, err := ws.policyPair(job, tr)
	if err != nil {
		return out, err
	}
	res, err := ws.engine.Run(tr, job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// runJobCached replays a cacheable Source job from the trace cache,
// collecting and memoizing the source on miss. Policy factories keep the
// streaming path's semantics — nil trace unless FitTrace — so a job
// behaves identically whether or not its trace happened to be cached.
func runJobCached(job *Job, index int, ws *workerState, tc *TraceCache) (Outcome, error) {
	out := Outcome{Index: index, Job: job}
	tr, ok := tc.Get(job.CacheKey)
	if !ok {
		var err error
		if tr, err = trace.Collect(job.Source(job.Seed)); err != nil {
			return out, fmt.Errorf("collecting source: %w", err)
		}
		tc.Put(job.CacheKey, tr)
	}
	var fit trace.Trace
	if job.FitTrace {
		fit = tr
	}
	demote, active, err := ws.policyPair(job, fit)
	if err != nil {
		return out, err
	}
	if job.Baseline {
		base, err := ws.engine.Run(tr, job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	res, err := ws.engine.Run(tr, job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// runJobStreaming replays a Source job without materializing: each replay
// pulls a fresh source from the constructor, so worker memory stays
// bounded by burst structure regardless of trace duration. Policy
// factories receive a nil trace, unless FitTrace is set — then the source
// is collected once for the fit pass, the factories run against the
// materialized trace, and the slice is dropped before the replays start,
// so only the fit is O(trace) and the replays stream like any other job
// (sim.RunSource and sim.Run are byte-identical on the same packets, so
// fitting materialized and replaying streamed changes nothing).
func runJobStreaming(job *Job, index int, ws *workerState) (Outcome, error) {
	out := Outcome{Index: index, Job: job}
	demote, active, err := fitPolicies(job, ws)
	if err != nil {
		return out, err
	}
	if job.Baseline {
		base, err := ws.engine.RunSource(job.Source(job.Seed), job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	res, err := ws.engine.RunSource(job.Source(job.Seed), job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// fitPolicies constructs a streaming job's policy pair. For FitTrace jobs
// the source is collected here so the fit-pass trace is a local that
// becomes unreachable — and collectable — as soon as construction
// returns, before any replay allocates its lookahead.
func fitPolicies(job *Job, ws *workerState) (policy.DemotePolicy, policy.ActivePolicy, error) {
	var fit trace.Trace
	if job.FitTrace {
		var err error
		if fit, err = trace.Collect(job.Source(job.Seed)); err != nil {
			return nil, nil, fmt.Errorf("collecting source for fit: %w", err)
		}
	}
	return ws.policyPair(job, fit)
}
