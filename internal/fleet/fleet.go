package fleet

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultShards is the shard count used when Options.Shards is unset. It is
// a fixed constant — deliberately not tied to GOMAXPROCS — so default
// aggregates are reproducible across machines with different core counts.
// 64 shards keep every worker busy on any realistic core count while
// leaving shards coarse enough that per-shard accumulator overhead is
// negligible.
const DefaultShards = 64

// ErrCanceled is returned by Run when Options.Cancel closes before every
// shard completes. Wrapped errors satisfy errors.Is(err, ErrCanceled).
var ErrCanceled = errors.New("fleet: run canceled")

// Progress counts a run's completed work. Shard counts are the unit of
// observation because the shard is the unit of scheduling and reduction.
type Progress struct {
	// DoneShards / Shards count completed vs total shards.
	DoneShards, Shards int
	// DoneJobs / TotalJobs count replays inside completed shards.
	DoneJobs, TotalJobs int
}

// Options tunes a fleet run. The zero value gives GOMAXPROCS workers and
// DefaultShards shards.
type Options struct {
	// Workers is the number of concurrent replay goroutines. <= 0 means
	// runtime.GOMAXPROCS(0). Workers = 1 degrades to a serial run with
	// identical results.
	Workers int
	// Shards is the number of aggregate partitions. <= 0 means
	// DefaultShards. More shards expose more parallelism; the shard count
	// (not the worker count) fixes the reduction grouping.
	Shards int
	// OnShard, when non-nil, is called after each shard completes
	// successfully. Calls are serialized (never concurrent) and arrive in
	// shard completion order, which varies run to run; the counts
	// themselves are monotone. The callback runs on a worker goroutine, so
	// it should be quick.
	OnShard func(Progress)
	// Cancel, when non-nil, aborts the run once closed. Cancellation is
	// observed between jobs: in-flight replays finish, no further job
	// starts, and Run returns ErrCanceled. The final aggregate is
	// discarded — a canceled run never exposes a partial total.
	Cancel <-chan struct{}
	// TraceCache, when non-nil, memoizes generated traffic (as encoded
	// byte slabs) for Source jobs that carry a CacheKey, so repeated
	// sweeps over the same cohort synthesize each user's packets once
	// instead of twice per job per cell. Safe to share across concurrent
	// runs; generation is single-flight per key.
	TraceCache *TraceCache
	// Budget, when non-nil, bounds this run's worker goroutines against a
	// shared machine-wide token pool. The run's FIRST worker spawns
	// unconditionally — the caller is assumed to hold one token on the
	// run's behalf (the cell dispatcher acquires it before launching the
	// run) — and each worker beyond the first requires a TryAcquire,
	// released when that worker exits. Acquisition failure just means
	// fewer workers; results never depend on the worker count.
	Budget TokenSource
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) shards(jobs int) int {
	s := o.Shards
	if s <= 0 {
		s = DefaultShards
	}
	if s > jobs {
		s = jobs
	}
	if s < 1 {
		s = 1
	}
	return s
}

// NumShards reports the shard count a run of n jobs uses under these
// options (the configured count clamped to the job count) — exported so
// layers that split one submission into several fleet runs can total
// progress denominators up front.
func (o Options) NumShards(n int) int { return o.shards(n) }

// Job is one replay: a packet source (streamed from a constructor,
// generated in-worker from the seed, or an explicit trace), a carrier
// profile, and the policy pair to replay it under.
type Job struct {
	// Seed is passed to Source/Gen; it also identifies the job in reports.
	// Seeds are the caller's contract for determinism: same seed, same
	// packets.
	Seed int64
	// Trace is a materialized packet trace to replay. Prefer Source at
	// fleet scale.
	Trace trace.Trace
	// Gen builds the job's trace from Seed inside the worker (the trace
	// lives only for the duration of the job).
	Gen func(seed int64) trace.Trace
	// Source constructs a streaming packet source from Seed. This is the
	// preferred form at fleet scale: the worker pulls packets on demand,
	// so per-worker memory is independent of trace duration. The
	// constructor is invoked once per replay (twice with Baseline set), so
	// it must be deterministic in Seed. At least one of Trace, Gen or
	// Source must be set; when several are, Trace wins over Gen, which
	// wins over Source (a materialized form always takes precedence).
	Source func(seed int64) trace.Source
	// Profile is the carrier power profile to replay against.
	Profile power.Profile
	// Scheme labels the policy pair in aggregates (e.g. "MakeIdle").
	Scheme string
	// Demote constructs the demote policy for this job. Called once per
	// job with the job's trace, so trace-fitted baselines (95% IAT) work;
	// must return a fresh policy (jobs share nothing). Streaming jobs
	// call it with a nil trace unless FitTrace is set.
	Demote func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error)
	// Active constructs the batching policy; a nil factory (or a nil
	// policy from it) disables batching. Errors fail the job like Demote
	// errors do.
	Active func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error)
	// FitTrace marks policy factories that must see the materialized
	// trace (95% IAT quantile fitting, MakeActive-Fix). A Source job with
	// FitTrace set collects its source into a slice for one fit pass —
	// the policy factories run against it — then frees the slice and
	// replays streaming, so only the fit itself is O(trace) in memory and
	// both replays stay O(1) like any other Source job.
	FitTrace bool
	// Opts are the simulation options for both the run and its baseline.
	Opts *sim.Options
	// Baseline also replays the trace under policy.StatusQuo so the fold
	// can compute relative metrics (savings, switch ratio).
	Baseline bool
	// CacheKey, when non-empty on a Source job, lets Options.TraceCache
	// memoize the materialized packets. The key must determine the packet
	// stream completely (generator config plus Seed); Cohort.Jobs derives
	// one from the cohort's canonical encoding. Empty disables caching for
	// this job.
	CacheKey string
	// PolicyKey, when non-empty, lets workers reuse one constructed policy
	// pair across jobs, relying on the engine's per-run policy Reset. The
	// key must determine the factories' output completely up to the trace
	// and profile (the registry's canonical spec encoding qualifies).
	// Non-FitTrace jobs reuse per (PolicyKey, Profile); FitTrace jobs
	// additionally need a CacheKey pinning the fit trace's identity and
	// then reuse per (PolicyKey, CacheKey, Profile) — the fit-output
	// memoization. Empty constructs fresh policies per job.
	PolicyKey string
}

// Outcome hands one finished job to the fold. Result and Baseline are only
// valid during the Fold call for jobs the accumulator does not retain; the
// standard aggregates copy the scalars they need and drop the rest.
type Outcome struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Job points at the submitted job (shared, read-only).
	Job *Job
	// Result is the replay outcome under the job's policy pair.
	Result *sim.Result
	// Baseline is the StatusQuo outcome, nil unless Job.Baseline.
	Baseline *sim.Result
}

// Accumulator reduces outcomes. New creates an empty (per-shard)
// accumulator; Fold folds one outcome into it and returns it (Fold runs
// sequentially within a shard, so no locking is needed); Merge combines two
// shard accumulators, left side first in shard order.
//
// The optional fields unlock the runtime's reuse paths; all of them may be
// left unset (Collect does) at the cost of O(shards) accumulator
// allocations per run:
//
//   - Reset empties an accumulator in place for reuse; when set, the run
//     keeps a free list of merged-out shard accumulators and allocates
//     only O(workers) of them regardless of the shard count.
//   - Clone deep-copies an accumulator such that later mutations of the
//     original never show through the copy. Required for progress
//     snapshots (runHooked), because the reuse machinery recycles shard
//     partials as soon as they merge.
//   - Transient declares that Fold never retains Outcome.Result or
//     Outcome.Baseline past the call; the run then reuses one Result pair
//     per worker across every replay instead of allocating two per job.
type Accumulator[A any] struct {
	New   func() A
	Fold  func(A, Outcome) A
	Merge func(A, A) A

	Reset     func(A) A
	Clone     func(A) A
	Transient bool
}

// workerState is the scratch one worker goroutine carries across jobs: a
// reusable engine plus a cache of constructed policies keyed by
// (Job.PolicyKey, profile). Both live across runs via workerPool, so a
// sweep of N cells allocates O(workers) engines and policy sets, not
// O(cells). The policy cache relies on the engine's contract of Resetting
// policies at the start of every run; each state is owned by exactly one
// goroutine at a time, so no locking.
type workerState struct {
	engine   *sim.Engine
	policies map[policyCacheKey]cachedPolicies

	// base and main are the worker's reusable Result pair, used when the
	// run's accumulator is Transient (Fold copies what it needs and retains
	// nothing): each replay overwrites a slot in place, reusing its slice
	// capacity, so a shard of N jobs allocates zero Results instead of
	// 2N. Two slots because a job's baseline and policy outcomes are alive
	// simultaneously during the fold.
	base, main sim.Result

	// bytes is the worker's reusable slab decoder: cached-trace replays
	// Reset it onto the shared slab instead of allocating a source per
	// replay. Each replay finishes before the next Reset, so one cursor
	// per worker suffices.
	bytes trace.BytesSource
}

// slots returns the Result pair replays should write into, or nils when
// the accumulator may retain results (each replay then allocates fresh).
func (ws *workerState) slots(reuse bool) (base, main *sim.Result) {
	if reuse {
		return &ws.base, &ws.main
	}
	return nil, nil
}

// runTrace replays a materialized trace on the worker's engine, into slot
// when one is given.
func (ws *workerState) runTrace(slot *sim.Result, tr trace.Trace, prof power.Profile,
	demote policy.DemotePolicy, active policy.ActivePolicy, opts *sim.Options) (*sim.Result, error) {
	if slot == nil {
		return ws.engine.Run(tr, prof, demote, active, opts)
	}
	if err := ws.engine.RunInto(slot, tr, prof, demote, active, opts); err != nil {
		return nil, err
	}
	return slot, nil
}

// runSrc is runTrace for a streaming source.
func (ws *workerState) runSrc(slot *sim.Result, src trace.Source, prof power.Profile,
	demote policy.DemotePolicy, active policy.ActivePolicy, opts *sim.Options) (*sim.Result, error) {
	if slot == nil {
		return ws.engine.RunSource(src, prof, demote, active, opts)
	}
	if err := ws.engine.RunSourceInto(slot, src, prof, demote, active, opts); err != nil {
		return nil, err
	}
	return slot, nil
}

// policyCacheKey identifies a reusable policy pair. The profile is part of
// the key (not just its name) because factories close over profile values
// and callers may sweep parameterized profiles sharing a name. fit is the
// job's trace cache key for trace-fitted schemes (empty otherwise): a
// fitted policy is a pure function of (scheme, trace, profile), so adding
// the trace's identity to the key lets workers memoize fit outputs —
// each worker fits a (scheme, user) pair once per sweep instead of once
// per cell.
type policyCacheKey struct {
	key  string
	fit  string
	prof power.Profile
}

type cachedPolicies struct {
	demote policy.DemotePolicy
	active policy.ActivePolicy
}

// maxPolicyCache bounds a worker's policy cache; beyond it the cache is
// dropped wholesale (sweeps cycle a small scheme set, so this never fires
// in practice — it only guards pathological key churn).
const maxPolicyCache = 256

var workerPool = sync.Pool{New: func() any {
	return &workerState{
		engine:   sim.NewEngine(),
		policies: map[policyCacheKey]cachedPolicies{},
	}
}}

// policyPair returns the job's constructed policy pair, reusing the
// worker's cache when the key is sound: PolicyKey set, and — for
// trace-fitted schemes — a fit-trace identity (ck.fit) that pins which
// trace the policies were fitted to. fit supplies the trace handed to
// the factories and is invoked only on a cache miss (nil means no
// trace), so a memoized fit skips even the trace materialization.
func (ws *workerState) policyPair(job *Job, ck policyCacheKey, fit func() (trace.Trace, error)) (policy.DemotePolicy, policy.ActivePolicy, error) {
	cacheable := ck.key != "" && (!job.FitTrace || ck.fit != "")
	if cacheable {
		if p, ok := ws.policies[ck]; ok {
			return p.demote, p.active, nil
		}
	}
	var ft trace.Trace
	if fit != nil {
		var err error
		if ft, err = fit(); err != nil {
			return nil, nil, err
		}
	}
	demote, err := job.Demote(ft, job.Profile)
	if err != nil {
		return nil, nil, err
	}
	var active policy.ActivePolicy
	if job.Active != nil {
		if active, err = job.Active(ft, job.Profile); err != nil {
			return nil, nil, err
		}
	}
	if cacheable {
		if len(ws.policies) >= maxPolicyCache {
			clear(ws.policies)
		}
		ws.policies[ck] = cachedPolicies{demote: demote, active: active}
	}
	return demote, active, nil
}

// Run executes every job across the worker pool and returns the merged
// accumulator. It fails on the first job error (reported in job order).
func Run[A any](jobs []Job, opts Options, acc Accumulator[A]) (A, error) {
	return runHooked(jobs, opts, acc, nil)
}

// runHooked is Run plus an optional per-shard hook receiving the progress
// counts and a snap function that builds the accumulator over every shard
// finished so far — lazily, only when called. Hooks require acc.Clone (see
// the snapshot determinism argument below); hooks and Options.OnShard are
// serialized under one lock, and snap is safe to call from any goroutine,
// during the run or after it returns — including synchronously from the
// hook itself. The hook runs on a worker goroutine; keep it quick.
//
// Reduction strategy: shard partials merge EAGERLY, in shard index order,
// into a single prefix accumulator (created up front by acc.New). A shard
// finishing out of order parks in a pending map until every earlier shard
// has merged. The op sequence — New, ⊕s0, ⊕s1, … ⊕sN — is exactly the
// end-of-run loop the sequential reduction performed, so the final
// accumulator is bit-identical; but merged-out partials can now be recycled
// (acc.Reset) onto a free list, making accumulator allocations O(workers),
// not O(shards).
//
// Snapshots stay deterministic under reuse: snap clones the prefix (built
// from shards 0..k in index order) and merges the still-pending shards in
// index order on top. That is the same op sequence as merging every
// completed shard in index order into a fresh accumulator, so a snapshot's
// content remains a pure function of the set of completed shards.
func runHooked[A any](jobs []Job, opts Options, acc Accumulator[A], hook func(snap func() A, p Progress)) (A, error) {
	var zero A
	for i := range jobs {
		if jobs[i].Trace == nil && jobs[i].Gen == nil && jobs[i].Source == nil {
			return zero, fmt.Errorf("fleet: job %d has no Trace, Gen or Source", i)
		}
		if jobs[i].Demote == nil {
			return zero, fmt.Errorf("fleet: job %d has no Demote factory", i)
		}
	}
	if len(jobs) == 0 {
		return acc.New(), nil
	}
	if hook != nil && acc.Clone == nil {
		return zero, fmt.Errorf("fleet: progress hooks require Accumulator.Clone")
	}

	nshards := opts.shards(len(jobs))
	workers := opts.workers()
	if workers > nshards {
		workers = nshards
	}

	var (
		// hookMu serializes hook/OnShard callbacks (and keeps their progress
		// counts monotone); mu guards the merge state. Lock order is always
		// hookMu → mu; snap takes only mu, so a hook that calls snap
		// synchronously cannot deadlock.
		hookMu   sync.Mutex
		mu       sync.Mutex //rrclint:lockafter hookMu
		progress = Progress{Shards: nshards, TotalJobs: len(jobs)}
		merged   = acc.New()   // the ordered prefix: New ⊕ s0 ⊕ s1 ⊕ …
		next     int           // next shard index the prefix absorbs
		pending  = map[int]A{} // completed shards beyond the prefix
		free     []A           // recycled scratch accumulators (Reset set)
		errs     = make([]error, nshards)
	)
	snap := func() A {
		mu.Lock()
		defer mu.Unlock()
		s := acc.Clone(merged)
		for i := next; i < nshards; i++ {
			if p, ok := pending[i]; ok {
				s = acc.Merge(s, p)
			}
		}
		return s
	}
	// complete parks shard s's partial, advances the prefix over every
	// in-order pending shard, and fires the callbacks with the updated
	// counts.
	complete := func(s int, a A) {
		hookMu.Lock()
		mu.Lock()
		pending[s] = a
		for {
			p, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			merged = acc.Merge(merged, p)
			if acc.Reset != nil {
				free = append(free, acc.Reset(p))
			}
			next++
		}
		lo, hi := shardRange(len(jobs), s, nshards)
		progress.DoneShards++
		progress.DoneJobs += hi - lo
		p := progress
		mu.Unlock()
		if hook != nil {
			hook(snap, p)
		}
		if opts.OnShard != nil {
			opts.OnShard(p)
		}
		hookMu.Unlock()
	}
	// scratch pops a recycled accumulator, or reports that the worker must
	// allocate a fresh one (outside the lock).
	scratch := func() (A, bool) {
		mu.Lock()
		defer mu.Unlock()
		if n := len(free); n > 0 {
			a := free[n-1]
			free = free[:n-1]
			return a, true
		}
		return zero, false
	}

	shardCh := make(chan int)
	var wg sync.WaitGroup
	worker := func(budgeted bool) {
		defer wg.Done()
		if budgeted {
			defer opts.Budget.Release()
		}
		ws := workerPool.Get().(*workerState)
		defer workerPool.Put(ws)
		for s := range shardCh {
			a, ok := scratch()
			if !ok {
				a = acc.New()
			}
			a, err := runShard(jobs, s, nshards, ws, acc, opts, a)
			if err != nil {
				mu.Lock()
				errs[s] = err
				mu.Unlock()
				continue
			}
			complete(s, a)
		}
	}
	// The first worker always runs — under a budget it is covered by the
	// token the caller holds for this run. Extras are opportunistic.
	wg.Add(1)
	go worker(false)
	for w := 1; w < workers; w++ {
		if opts.Budget != nil && !opts.Budget.TryAcquire() {
			break
		}
		wg.Add(1)
		go worker(opts.Budget != nil)
	}
	for s := 0; s < nshards; s++ {
		shardCh <- s
	}
	close(shardCh)
	wg.Wait()

	for s := 0; s < nshards; s++ {
		if errs[s] != nil {
			return zero, errs[s]
		}
	}
	return merged, nil
}

// canceled reports whether the (possibly nil) cancel channel is closed.
func canceled(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// Map runs fn(0..n-1) across the worker pool and returns the results in
// index order; the first error (by index) aborts the run. Each invocation
// gets the worker's reusable engine, so fn can replay traces without
// allocating its own. Map is the runtime's escape hatch for parallel work
// that is not a single (trace × profile × policy) replay — parameter
// sweeps, composite sub-simulations — while keeping the same deterministic
// index-ordered semantics as Run.
func Map[T any](n int, opts Options, fn func(i int, engine *sim.Engine) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	nshards := opts.shards(n)
	workers := opts.workers()
	if workers > nshards {
		workers = nshards
	}
	results := make([]T, n)
	errs := make([]error, n)
	shardCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := workerPool.Get().(*workerState)
			defer workerPool.Put(ws)
			for s := range shardCh {
				lo, hi := shardRange(n, s, nshards)
				for i := lo; i < hi; i++ {
					results[i], errs[i] = fn(i, ws.engine)
				}
			}
		}()
	}
	for s := 0; s < nshards; s++ {
		shardCh <- s
	}
	close(shardCh)
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return results, nil
}

// Collect is an accumulator retaining every outcome, keyed by job index —
// for table-rendering experiments whose cohorts are small enough to hold.
// Fleet-scale runs should reduce with SummaryAccumulator instead.
func Collect() Accumulator[map[int]Outcome] {
	return Accumulator[map[int]Outcome]{
		New: func() map[int]Outcome { return map[int]Outcome{} },
		Fold: func(m map[int]Outcome, out Outcome) map[int]Outcome {
			m[out.Index] = out
			return m
		},
		Merge: func(a, b map[int]Outcome) map[int]Outcome {
			//rrclint:ordered map-to-map copy of distinct job indices; the result is a map, no order reaches bytes
			for k, v := range b {
				a[k] = v
			}
			return a
		},
	}
}

// shardRange returns the contiguous job range [lo, hi) of shard s: jobs
// split as evenly as possible, earlier shards one longer on remainder.
func shardRange(jobs, s, nshards int) (lo, hi int) {
	q, r := jobs/nshards, jobs%nshards
	lo = s*q + min(s, r)
	hi = lo + q
	if s < r {
		hi++
	}
	return lo, hi
}

// runShard replays the shard's jobs in order on one engine, folding each
// outcome into the caller-provided (empty) accumulator as it completes.
// Cancellation is checked before every job. Transient accumulators let the
// replays reuse the worker's Result pair instead of allocating per run.
func runShard[A any](jobs []Job, s, nshards int, ws *workerState, acc Accumulator[A], opts Options, a A) (A, error) {
	reuse := acc.Transient
	lo, hi := shardRange(len(jobs), s, nshards)
	for i := lo; i < hi; i++ {
		if canceled(opts.Cancel) {
			var zero A
			return zero, fmt.Errorf("fleet: shard %d at job %d: %w", s, i, ErrCanceled)
		}
		out, err := runJob(&jobs[i], i, ws, opts.TraceCache, reuse)
		if err != nil {
			var zero A
			return zero, fmt.Errorf("fleet: job %d (scheme %q, seed %d): %w",
				i, jobs[i].Scheme, jobs[i].Seed, err)
		}
		a = acc.Fold(a, out)
	}
	return a, nil
}

// runJob replays the job (plus its baseline) on the worker's engine:
// streaming straight from the source constructor when one is given,
// falling back to a materialized trace for explicit traces and Gen jobs.
// Cacheable Source jobs (CacheKey set, cache provided) replay the memoized
// materialized trace instead — byte-identical to streaming the same seed,
// but synthesized once per cache lifetime rather than per replay. reuse
// (from Accumulator.Transient) routes both replays into the worker's
// Result pair; the Outcome then aliases worker scratch and is valid only
// during the fold, exactly what Outcome's contract already says.
func runJob(job *Job, index int, ws *workerState, tc *TraceCache, reuse bool) (Outcome, error) {
	if job.Source != nil && job.Trace == nil && job.Gen == nil {
		if tc != nil && job.CacheKey != "" {
			return runJobCached(job, index, ws, tc, reuse)
		}
		return runJobStreaming(job, index, ws, reuse)
	}
	tr := job.Trace
	if tr == nil {
		tr = job.Gen(job.Seed)
	}
	baseSlot, mainSlot := ws.slots(reuse)
	out := Outcome{Index: index, Job: job}
	if job.Baseline {
		base, err := ws.runTrace(baseSlot, tr, job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	demote, active, err := ws.policyPair(job,
		policyCacheKey{key: job.PolicyKey, prof: job.Profile},
		func() (trace.Trace, error) { return tr, nil })
	if err != nil {
		return out, err
	}
	res, err := ws.runTrace(mainSlot, tr, job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// runJobCached replays a cacheable Source job from the trace cache: the
// first toucher of the job's key streams the generator through the
// rrcstream codec into a shared byte slab (single-flight — concurrent
// cells wait rather than duplicate the generation) and every replay
// decodes zero-copy out of those bytes. The codec round-trips exactly
// and sim.Run(Source) is byte-identical on the same packets, so results
// match the streaming path bit for bit. Policy factories keep the
// streaming path's semantics — nil trace unless FitTrace, in which case
// the fit trace materializes from the slab (not from a fresh generation)
// and the fitted pair is memoized per worker under (scheme, trace,
// profile).
func runJobCached(job *Job, index int, ws *workerState, tc *TraceCache, reuse bool) (Outcome, error) {
	out := Outcome{Index: index, Job: job}
	slab, err := tc.Slab(job.CacheKey, func() trace.Source { return job.Source(job.Seed) })
	if err != nil {
		return out, fmt.Errorf("memoizing source: %w", err)
	}
	ck := policyCacheKey{key: job.PolicyKey, prof: job.Profile}
	var fit func() (trace.Trace, error)
	if job.FitTrace {
		ck.fit = job.CacheKey
		fit = func() (trace.Trace, error) {
			if err := ws.bytes.Reset(slab); err != nil {
				return nil, err
			}
			return trace.Collect(&ws.bytes)
		}
	}
	demote, active, err := ws.policyPair(job, ck, fit)
	if err != nil {
		return out, err
	}
	baseSlot, mainSlot := ws.slots(reuse)
	if job.Baseline {
		if err := ws.bytes.Reset(slab); err != nil {
			return out, err
		}
		base, err := ws.runSrc(baseSlot, &ws.bytes, job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	if err := ws.bytes.Reset(slab); err != nil {
		return out, err
	}
	res, err := ws.runSrc(mainSlot, &ws.bytes, job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// runJobStreaming replays a Source job without materializing: each replay
// pulls a fresh source from the constructor, so worker memory stays
// bounded by burst structure regardless of trace duration. Policy
// factories receive a nil trace, unless FitTrace is set — then the source
// is collected once for the fit pass, the factories run against the
// materialized trace, and the slice is dropped before the replays start,
// so only the fit is O(trace) and the replays stream like any other job
// (sim.RunSource and sim.Run are byte-identical on the same packets, so
// fitting materialized and replaying streamed changes nothing).
func runJobStreaming(job *Job, index int, ws *workerState, reuse bool) (Outcome, error) {
	out := Outcome{Index: index, Job: job}
	demote, active, err := fitPolicies(job, ws)
	if err != nil {
		return out, err
	}
	baseSlot, mainSlot := ws.slots(reuse)
	if job.Baseline {
		base, err := ws.runSrc(baseSlot, job.Source(job.Seed), job.Profile, policy.StatusQuo{}, nil, job.Opts)
		if err != nil {
			return out, fmt.Errorf("baseline: %w", err)
		}
		out.Baseline = base
	}
	res, err := ws.runSrc(mainSlot, job.Source(job.Seed), job.Profile, demote, active, job.Opts)
	if err != nil {
		return out, err
	}
	out.Result = res
	return out, nil
}

// fitPolicies constructs a streaming job's policy pair. For FitTrace jobs
// the source is collected inside the fit supplier so the fit-pass trace
// is a local that becomes unreachable — and collectable — as soon as
// construction returns, before any replay allocates its lookahead.
func fitPolicies(job *Job, ws *workerState) (policy.DemotePolicy, policy.ActivePolicy, error) {
	ck := policyCacheKey{key: job.PolicyKey, prof: job.Profile}
	var fit func() (trace.Trace, error)
	if job.FitTrace {
		fit = func() (trace.Trace, error) {
			tr, err := trace.Collect(job.Source(job.Seed))
			if err != nil {
				return nil, fmt.Errorf("collecting source for fit: %w", err)
			}
			return tr, nil
		}
	}
	return ws.policyPair(job, ck, fit)
}
