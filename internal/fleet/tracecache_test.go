package fleet

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// cacheTestTrace returns a small deterministic trace distinguishable by
// tag, for asserting which generation produced a slab.
func cacheTestTrace(tag int) trace.Trace {
	return trace.Trace{
		{T: time.Duration(tag+1) * time.Second, Dir: trace.Out, Size: 100 + tag},
		{T: time.Duration(tag+2) * time.Second, Dir: trace.In, Size: 1400},
	}
}

func slabFor(t *testing.T, tag int) []byte {
	t.Helper()
	slab, err := trace.EncodeStream(cacheTestTrace(tag).Source())
	if err != nil {
		t.Fatal(err)
	}
	return slab
}

func TestTraceCacheSingleFlight(t *testing.T) {
	c := NewTraceCache(1 << 20)
	var gens atomic.Int64
	const callers = 16
	slabs := make([][]byte, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			slab, err := c.Slab("k", func() trace.Source {
				gens.Add(1)
				return cacheTestTrace(0).Source()
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			slabs[i] = slab
		}(i)
	}
	start.Done()
	done.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times, want 1", n)
	}
	want := slabFor(t, 0)
	for i, slab := range slabs {
		if !bytes.Equal(slab, want) {
			t.Fatalf("caller %d got a different slab", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats after single-flight: %+v", st)
	}
	if st.Entries != 1 || st.Bytes != int64(len(want)) {
		t.Fatalf("retained state: %+v", st)
	}
}

func TestTraceCacheLRUEviction(t *testing.T) {
	one := slabFor(t, 1)
	// Budget fits exactly two of the (equal-sized) slabs.
	c := NewTraceCache(int64(2 * len(one)))
	gen := func(tag int) func() trace.Source {
		return func() trace.Source { return cacheTestTrace(tag).Source() }
	}
	mustSlab := func(key string, tag int) []byte {
		t.Helper()
		slab, err := c.Slab(key, gen(tag))
		if err != nil {
			t.Fatal(err)
		}
		return slab
	}
	mustSlab("a", 1)
	mustSlab("b", 2)
	if c.Len() != 2 {
		t.Fatalf("retained %d slabs, want 2", c.Len())
	}
	// Touch a so b becomes the LRU victim when c arrives.
	mustSlab("a", 1)
	mustSlab("c", 3)
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after eviction: %+v", st)
	}
	// a survived (hit), b was evicted (regenerates: a fresh miss).
	missesBefore := st.Misses
	mustSlab("a", 1)
	if got := c.Stats().Misses; got != missesBefore {
		t.Fatalf("a was evicted: misses %d -> %d", missesBefore, got)
	}
	mustSlab("b", 2)
	if got := c.Stats().Misses; got != missesBefore+1 {
		t.Fatalf("b still cached after eviction: misses %d -> %d", missesBefore, got)
	}
}

func TestTraceCacheOversizedSlabNotRetained(t *testing.T) {
	c := NewTraceCache(4) // smaller than any slab (magic alone is 8 bytes)
	slab, err := c.Slab("big", func() trace.Source { return cacheTestTrace(0).Source() })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slab, slabFor(t, 0)) {
		t.Fatal("oversized slab not returned intact")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized slab retained: %+v", st)
	}
	// The key is re-generated on the next call, not served from the cache.
	if _, err := c.Slab("big", func() trace.Source { return cacheTestTrace(0).Source() }); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Misses; got != 2 {
		t.Fatalf("oversized key served from cache: misses = %d, want 2", got)
	}
}

// failingSource errors on the first Next call.
type failingSource struct{}

func (failingSource) Next() (trace.Packet, bool, error) {
	return trace.Packet{}, false, errors.New("synthetic generation failure")
}

func TestTraceCacheErrorNotCached(t *testing.T) {
	c := NewTraceCache(1 << 20)
	var gens atomic.Int64
	if _, err := c.Slab("k", func() trace.Source {
		gens.Add(1)
		return failingSource{}
	}); err == nil {
		t.Fatal("generation error not surfaced")
	}
	if c.Len() != 0 {
		t.Fatal("failed generation retained")
	}
	// The next caller retries — and a now-healthy generator succeeds.
	slab, err := c.Slab("k", func() trace.Source {
		gens.Add(1)
		return cacheTestTrace(0).Source()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slab, slabFor(t, 0)) {
		t.Fatal("retry returned wrong slab")
	}
	if n := gens.Load(); n != 2 {
		t.Fatalf("generator ran %d times, want 2 (fail, then retry)", n)
	}
}

func TestTraceCacheDisabled(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		if c := NewTraceCache(budget); c != nil {
			t.Fatalf("NewTraceCache(%d) = %v, want nil", budget, c)
		}
	}
	var c *TraceCache
	if st := c.Stats(); st != (TraceCacheStats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len != 0")
	}
}
