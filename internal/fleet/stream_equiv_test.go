package fleet_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/trace"

	"repro/internal/fleet"
)

// summaryJSON renders a summary the way the HTTP service does, so
// equality here is the service-level byte-identity guarantee.
func summaryJSON(t *testing.T, s *fleet.Summary) []byte {
	t.Helper()
	b, err := report.JSON(report.SummaryStatsOf(s))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// materialize converts Source jobs into Gen jobs (the pre-streaming form)
// without changing anything else.
func materialize(jobs []fleet.Job) []fleet.Job {
	out := make([]fleet.Job, len(jobs))
	for i, j := range jobs {
		src := j.Source
		j.Source = nil
		j.Gen = func(seed int64) trace.Trace {
			tr, err := trace.Collect(src(seed))
			if err != nil {
				panic(err)
			}
			return tr
		}
		out[i] = j
	}
	return out
}

// TestStreamedCohortMatchesMaterialized is the fleet-level determinism
// property: the same cohort replayed from source constructors (streaming,
// O(1) per worker) and from materialized traces produces byte-identical
// rendered summaries at every worker count.
func TestStreamedCohortMatchesMaterialized(t *testing.T) {
	cohort := fleet.Cohort{Users: 10, Seed: 5, Duration: 45 * time.Minute, Diurnal: true}
	schemes := []fleet.Scheme{fleet.MakeIdleScheme(), fleet.CombinedScheme()}
	streamed := cohort.Jobs(power.Verizon3G, schemes)
	slices := materialize(cohort.Jobs(power.Verizon3G, schemes))

	var want []byte
	for _, workers := range []int{1, 3, 8} {
		opts := fleet.Options{Workers: workers, Shards: 4}
		s1, err := fleet.RunSummary(streamed, opts, fleet.SummaryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := fleet.RunSummary(slices, opts, fleet.SummaryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		j1, j2 := summaryJSON(t, s1), summaryJSON(t, s2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("workers=%d: streamed and materialized summaries differ:\n%s\nvs\n%s", workers, j1, j2)
		}
		if want == nil {
			want = j1
		} else if !bytes.Equal(want, j1) {
			t.Fatalf("workers=%d: summary differs from workers=1 run", workers)
		}
	}
}

// TestFitTraceSchemeStreams: a trace-fitted scheme (95% IAT) on Source
// jobs materializes in-worker and still matches the Gen-backed run.
func TestFitTraceSchemeStreams(t *testing.T) {
	scheme, err := fleet.NamedScheme(fleet.Policy95IAT, fleet.ActiveNone, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !scheme.FitTrace {
		t.Fatal("95iat scheme not marked trace-fitted")
	}
	cohort := fleet.Cohort{Users: 4, Seed: 9, Duration: 30 * time.Minute}
	streamed := cohort.Jobs(power.Verizon3G, []fleet.Scheme{scheme})
	slices := materialize(cohort.Jobs(power.Verizon3G, []fleet.Scheme{scheme}))
	s1, err := fleet.RunSummary(streamed, fleet.Options{Workers: 2, Shards: 2}, fleet.SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fleet.RunSummary(slices, fleet.Options{Workers: 2, Shards: 2}, fleet.SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryJSON(t, s1), summaryJSON(t, s2)) {
		t.Fatal("trace-fitted streamed run differs from materialized run")
	}
	if s1.Schemes[scheme.Name].Energy.N != 4 {
		t.Fatalf("folded %d users, want 4", s1.Schemes[scheme.Name].Energy.N)
	}
}

// TestFitPassSeesTraceThenReplayStreams: a FitTrace Source job hands its
// policy factories the materialized trace exactly once (the fit pass) and
// still produces results identical to a fully materialized run — the
// factories must not rely on the trace surviving into the replay, because
// the worker drops it before replaying.
func TestFitPassSeesTraceThenReplayStreams(t *testing.T) {
	cohort := fleet.Cohort{Users: 3, Seed: 13, Duration: 20 * time.Minute}
	var fits, calls int
	scheme := fleet.Scheme{
		Name:     "recording-95iat",
		FitTrace: true,
		Demote: func(tr trace.Trace, _ power.Profile) (policy.DemotePolicy, error) {
			calls++
			if tr == nil {
				t.Error("FitTrace factory called with a nil trace")
			} else {
				fits++
			}
			return policy.NewPercentileIAT(tr, 0.95), nil
		},
	}
	streamed := cohort.Jobs(power.Verizon3G, []fleet.Scheme{scheme})
	s1, err := fleet.RunSummary(streamed, fleet.Options{Workers: 1, Shards: 1}, fleet.SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || fits != 3 {
		t.Fatalf("factory saw %d/%d materialized traces, want 3/3", fits, calls)
	}
	slices := materialize(cohort.Jobs(power.Verizon3G, []fleet.Scheme{scheme}))
	s2, err := fleet.RunSummary(slices, fleet.Options{Workers: 1, Shards: 1}, fleet.SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryJSON(t, s1), summaryJSON(t, s2)) {
		t.Fatal("fit-then-stream run differs from materialized run")
	}
}

// TestOnlineSchemesNotMarkedFitted: the fleet-scale schemes stay
// streaming-eligible.
func TestOnlineSchemesNotMarkedFitted(t *testing.T) {
	for _, name := range []string{fleet.PolicyStatusQuo, fleet.PolicyFourFive, fleet.PolicyOracle, fleet.PolicyMakeIdle} {
		s, err := fleet.NamedScheme(name, fleet.ActiveLearn, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if s.FitTrace {
			t.Errorf("%s+learn wrongly marked trace-fitted", name)
		}
	}
	if s, _ := fleet.NamedScheme(fleet.PolicyMakeIdle, fleet.ActiveFix, time.Second); !s.FitTrace {
		t.Error("active=fix not marked trace-fitted")
	}
}
