package fleet

import "runtime"

// TokenSource is the seam between a fleet run and a machine-wide worker
// budget: a counting semaphore the run consults when spawning workers
// beyond its first. Injectable so tests can observe or bound acquisition;
// Budget is the production implementation.
//
// The contract runs on opportunism: TryAcquire never blocks, and a caller
// that fails to acquire simply runs with fewer workers — results never
// depend on the worker count, so budget pressure degrades throughput,
// not output.
type TokenSource interface {
	// TryAcquire takes one worker token when available; false means the
	// budget is exhausted right now.
	TryAcquire() bool
	// Release returns one token taken by TryAcquire (or, for Budget, by
	// Acquire).
	Release()
}

// Budget is a counting-semaphore TokenSource sized to a machine's worker
// capacity. One Budget is shared between inter-cell parallelism (a
// dispatcher blocks in Acquire for the token that admits a cell) and
// intra-cell shard workers (each extra worker TryAcquires), so the total
// number of replay goroutines stays bounded by the budget no matter how
// many cells, jobs, or runners are in flight.
type Budget struct {
	tokens chan struct{}
}

// NewBudget returns a budget of n tokens; n <= 0 sizes it to
// runtime.GOMAXPROCS(0).
func NewBudget(n int) *Budget {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	b := &Budget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Cap returns the budget's token capacity.
func (b *Budget) Cap() int { return cap(b.tokens) }

// TryAcquire implements TokenSource.
func (b *Budget) TryAcquire() bool {
	select {
	case <-b.tokens:
		return true
	default:
		return false
	}
}

// Acquire blocks until a token is available or cancel closes; false means
// canceled (no token is held). Safe to call with a nil cancel channel
// (blocks until a token frees). Acquire cannot deadlock against the fleet:
// every held token belongs to a worker that completes without ever needing
// another token — extra workers are strictly opportunistic.
func (b *Budget) Acquire(cancel <-chan struct{}) bool {
	select {
	case <-b.tokens:
		return true
	case <-cancel:
		return false
	}
}

// Release implements TokenSource.
func (b *Budget) Release() {
	select {
	case b.tokens <- struct{}{}:
	default:
		panic("fleet: Budget.Release without matching Acquire")
	}
}
