package fleet

import (
	"fmt"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
)

// Legacy flat policy names, kept as the canonical spellings every
// pre-registry surface accepted (CLI flags, flat job payloads). Each is
// either a canonical schema name or a registered alias in
// policy.Default(); LegacySchemeSpec maps them to parameterized specs.
const (
	PolicyStatusQuo = "statusquo"
	PolicyFourFive  = "4.5s"
	Policy95IAT     = "95iat"
	PolicyOracle    = "oracle"
	PolicyMakeIdle  = "makeidle"

	ActiveNone  = "none"
	ActiveLearn = "learn"
	ActiveFix   = "fix"
)

// SchemeSpec is the declarative form of a Scheme: a demote policy spec,
// an optional batching policy spec, and a summary label. It is the unit
// of the service's sweep jobs — one job carries a list of SchemeSpecs —
// and serializes over the /v1 HTTP API.
type SchemeSpec struct {
	// Label keys the scheme in summaries; empty derives
	// "demoteLabel[+activeLabel]" from the resolved specs (only
	// non-default parameters appear, so "fixedtail(wait=2s)" and plain
	// "fixedtail" stay distinct).
	Label string `json:"label,omitempty"`
	// Policy is the demote policy spec.
	Policy policy.Spec `json:"policy"`
	// Active is the batching policy spec; nil means "none".
	Active *policy.Spec `json:"active,omitempty"`
}

// activeSpec returns the effective active spec ("none" when unset).
func (ss SchemeSpec) activeSpec() policy.Spec {
	if ss.Active == nil {
		return policy.Spec{Name: ActiveNone}
	}
	return *ss.Active
}

// ResolvedLabel returns the scheme's summary key: the explicit Label, or
// the derived one.
func (ss SchemeSpec) ResolvedLabel(reg *policy.Registry) (string, error) {
	if ss.Label != "" {
		return ss.Label, nil
	}
	label, err := reg.Label(policy.RoleDemote, ss.Policy)
	if err != nil {
		return "", err
	}
	aspec := ss.activeSpec()
	aschema, _, err := reg.Resolve(policy.RoleActive, aspec)
	if err != nil {
		return "", err
	}
	if aschema.Name != ActiveNone {
		alabel, err := reg.Label(policy.RoleActive, aspec)
		if err != nil {
			return "", err
		}
		label += "+" + alabel
	}
	return label, nil
}

// Canonical returns the byte-stable encoding of the scheme spec —
// "label|demoteCanonical|activeCanonical" — which feeds the v3 job
// fingerprint: stable across param-map ordering, alias spelling and
// omitted defaults; changed by any parameter value or label change.
func (ss SchemeSpec) Canonical(reg *policy.Registry) (string, error) {
	label, err := ss.ResolvedLabel(reg)
	if err != nil {
		return "", err
	}
	dc, err := reg.Canonical(policy.RoleDemote, ss.Policy)
	if err != nil {
		return "", err
	}
	ac, err := reg.Canonical(policy.RoleActive, ss.activeSpec())
	if err != nil {
		return "", err
	}
	return label + "|" + dc + "|" + ac, nil
}

// ResolvedScheme is one resolution pass over a scheme axis value: the
// runnable Scheme (named by the axis label), the label itself, and the
// axis canonical encoding ("label|demoteCanonical|activeCanonical") — each
// byte-identical to SchemeFromSpec, ResolvedLabel and Canonical.
type ResolvedScheme struct {
	Scheme    Scheme
	Label     string
	Canonical string
}

// ResolveScheme resolves a SchemeSpec against a registry in one pass per
// role: parameters are coerced and bounds-checked eagerly (so typos and
// out-of-range sweeps fail before a fleet spins up), FitTrace is derived
// from the schemas' trace-fitted capability instead of being hand-set,
// and the policy factories close over the resolved parameters.
func ResolveScheme(reg *policy.Registry, ss SchemeSpec) (ResolvedScheme, error) {
	d, err := reg.Resolution(policy.RoleDemote, ss.Policy)
	if err != nil {
		return ResolvedScheme{}, err
	}
	a, err := reg.Resolution(policy.RoleActive, ss.activeSpec())
	if err != nil {
		return ResolvedScheme{}, err
	}
	label := ss.Label
	if label == "" {
		label = d.Label
		if a.Schema.Name != ActiveNone {
			label += "+" + a.Label
		}
	}
	s := Scheme{
		Name: label,
		Demote: func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
			return d.Schema.NewDemote(d.Params, tr, prof)
		},
		FitTrace: d.Schema.TraceFitted || a.Schema.TraceFitted,
	}
	if a.Schema.Name != ActiveNone {
		s.Active = func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error) {
			return a.Schema.NewActive(a.Params, tr, prof)
		}
	}
	// Registry-built factories are pure functions of the canonical spec,
	// the fit trace and the profile, so every registry scheme advertises a
	// policy reuse key: non-fitted schemes reuse per (key, profile),
	// trace-fitted ones per (key, trace cache key, profile) — the workers'
	// fit-output memoization.
	s.PolicyKey = d.Canonical + "|" + a.Canonical
	return ResolvedScheme{
		Scheme:    s,
		Label:     label,
		Canonical: label + "|" + d.Canonical + "|" + a.Canonical,
	}, nil
}

// SchemeFromSpec is ResolveScheme reduced to the runnable Scheme.
func SchemeFromSpec(reg *policy.Registry, ss SchemeSpec) (Scheme, error) {
	rs, err := ResolveScheme(reg, ss)
	if err != nil {
		return Scheme{}, err
	}
	return rs.Scheme, nil
}

// WithFixBurstGap injects a session-level burst gap into an active spec
// that names the trace-fitted "fix" policy without pinning its own
// burstgap parameter. Every surface that carries a job/CLI burst-gap knob
// (rrcsim's -burstgap flag, jobs.Spec.BurstGap, the legacy flat-name
// mapping) threads it through this one helper, so the inheritance rule
// cannot drift between surfaces. The caller's param map is copied, never
// mutated.
func WithFixBurstGap(spec policy.Spec, burstGap time.Duration) policy.Spec {
	if spec.Name != ActiveFix || burstGap <= 0 {
		return spec
	}
	if _, ok := spec.Params["burstgap"]; ok {
		return spec
	}
	params := map[string]any{"burstgap": burstGap}
	//rrclint:ordered map-to-map copy; the copied params map is itself unordered, no order reaches bytes
	for k, v := range spec.Params {
		params[k] = v
	}
	spec.Params = params
	return spec
}

// LegacySchemeSpec maps flat legacy names (plus the shared burst-gap knob,
// which pre-registry surfaces threaded into the trace-fitted MakeActive)
// to a SchemeSpec with the legacy label "pol" or "pol+act" — so flat-name
// payloads keep their historical summary keys, byte for byte. The names
// are not validated here; resolution reports unknown ones with the
// registry's accepted list.
func LegacySchemeSpec(polName, actName string, burstGap time.Duration) SchemeSpec {
	if actName == "" {
		actName = ActiveNone
	}
	ss := SchemeSpec{Label: polName, Policy: policy.Spec{Name: polName}}
	if actName != ActiveNone {
		ss.Label = polName + "+" + actName
		active := WithFixBurstGap(policy.Spec{Name: actName}, burstGap)
		ss.Active = &active
	}
	return ss
}

// NamedScheme resolves a legacy flat name pair through the default
// registry — the one-call form of
// SchemeFromSpec(policy.Default(), LegacySchemeSpec(...)).
func NamedScheme(polName, actName string, burstGap time.Duration) (Scheme, error) {
	s, err := SchemeFromSpec(policy.Default(), LegacySchemeSpec(polName, actName, burstGap))
	if err != nil {
		return Scheme{}, fmt.Errorf("fleet: %w", err)
	}
	return s, nil
}
