package fleet

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
)

// Policy and active-policy names accepted by NamedScheme, shared by every
// surface that takes policy names (cmd/rrcsim flags, the job service).
const (
	PolicyStatusQuo = "statusquo"
	PolicyFourFive  = "4.5s"
	Policy95IAT     = "95iat"
	PolicyOracle    = "oracle"
	PolicyMakeIdle  = "makeidle"

	ActiveNone  = "none"
	ActiveLearn = "learn"
	ActiveFix   = "fix"
)

// TraceFitted reports whether the named demote policy must be fitted to
// the materialized trace before replay (so streaming jobs have to collect
// their source first). Unknown names report false; NamedDemote is the
// authority on name validity.
func TraceFitted(polName string) bool { return polName == Policy95IAT }

// ActiveTraceFitted is TraceFitted for batching-policy names.
func ActiveTraceFitted(actName string) bool { return actName == ActiveFix }

// NamedDemote maps a CLI/service policy name to a demote policy for a
// concrete trace and profile. Trace-fitted policies (95iat) accept a nil
// trace for eager name validation but need the real one to replay.
func NamedDemote(name string, tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
	switch name {
	case PolicyStatusQuo:
		return policy.StatusQuo{}, nil
	case PolicyFourFive:
		return policy.NewFourPointFive(), nil
	case Policy95IAT:
		return policy.NewPercentileIAT(tr, 0.95), nil
	case PolicyOracle:
		return policy.NewOracle(energy.Threshold(&prof)), nil
	case PolicyMakeIdle:
		return policy.NewMakeIdle(prof)
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

// NamedActive maps a CLI/service batching-policy name to an active policy;
// ActiveNone yields nil (batching disabled).
func NamedActive(name string, tr trace.Trace, prof power.Profile, burstGap time.Duration) (policy.ActivePolicy, error) {
	switch name {
	case ActiveNone:
		return nil, nil
	case ActiveLearn:
		return policy.NewLearnedDelay(), nil
	case ActiveFix:
		return policy.NewFixedDelay(tr, &prof, burstGap), nil
	default:
		return nil, fmt.Errorf("unknown active policy %q", name)
	}
}

// NamedScheme builds the fleet scheme for a (policy, active) name pair,
// validating both names eagerly (on a nil trace) so typos fail before a
// fleet spins up. The scheme label is "policy" or "policy+active".
func NamedScheme(polName, actName string, burstGap time.Duration) (Scheme, error) {
	if _, err := NamedDemote(polName, nil, power.Verizon3G); err != nil {
		return Scheme{}, err
	}
	if _, err := NamedActive(actName, nil, power.Verizon3G, burstGap); err != nil {
		return Scheme{}, err
	}
	name := polName
	if actName != ActiveNone {
		name += "+" + actName
	}
	s := Scheme{
		Name: name,
		Demote: func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
			return NamedDemote(polName, tr, prof)
		},
		FitTrace: TraceFitted(polName) || ActiveTraceFitted(actName),
	}
	if actName != ActiveNone {
		s.Active = func(tr trace.Trace, prof power.Profile) policy.ActivePolicy {
			a, _ := NamedActive(actName, tr, prof, burstGap)
			return a
		}
	}
	return s, nil
}
