// Package fleet is the sharded, parallel multi-user simulation runtime: it
// fans (trace × profile × policy) replay jobs across a worker pool and
// reduces per-job outcomes into mergeable aggregates without retaining
// per-user results.
//
// # Determinism
//
// Results are bit-identical for any worker count. Jobs are partitioned into
// contiguous shards by submission order; a shard is the unit of scheduling,
// and within a shard jobs run sequentially in order. Each shard folds its
// outcomes into its own accumulator, and shard accumulators merge in shard
// index order after all workers finish. Worker count therefore only decides
// which goroutine runs a shard, never the order of any floating-point
// reduction. Changing the shard count regroups the reduction and may move
// results by float-rounding noise; changing the worker count cannot.
//
// # Memory
//
// Each worker owns one reusable sim.Engine, and each shard holds one
// accumulator. Aggregating an n-user cohort therefore costs O(workers +
// shards) live state, not O(n): traces are generated in-worker from the
// job's seed, replayed, folded, and dropped.
//
// # Progress and cancellation
//
// Options.OnShard delivers a Progress count after every completed shard,
// and RunSummaryWithProgress additionally snapshots a merged partial
// Summary over the shards finished so far. Both observe the run from the
// outside: partial views merge only completed shard accumulators (always
// in shard index order), so watching progress never perturbs the final
// shard-ordered reduction — the end result stays bit-identical whether or
// not anyone is listening.
//
// A run aborts early when Options.Cancel is closed. Cancellation is
// checked between jobs, so the replay in flight on each worker finishes
// before the run returns ErrCanceled; no partially folded outcome is ever
// observed.
package fleet
