package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// SummaryConfig fixes the histogram layouts of a Summary. All shards of a
// run must share one config or the histograms refuse to merge.
type SummaryConfig struct {
	// EnergyMaxJ is the upper edge of the per-user energy histogram
	// (default 10000 J; overflow clamps into the last bin).
	EnergyMaxJ float64
	// DelayMaxS is the upper edge of the per-burst batching-delay
	// histogram in seconds (default 30 s).
	DelayMaxS float64
	// SignalMax is the upper edge of the per-user promotion-count
	// histogram (default 10000).
	SignalMax float64
	// Bins is the bin count of every histogram (default 50).
	Bins int
}

func (c SummaryConfig) withDefaults() SummaryConfig {
	if c.EnergyMaxJ <= 0 {
		c.EnergyMaxJ = 10_000
	}
	if c.DelayMaxS <= 0 {
		c.DelayMaxS = 30
	}
	if c.SignalMax <= 0 {
		c.SignalMax = 10_000
	}
	if c.Bins <= 0 {
		c.Bins = 50
	}
	return c
}

// SchemeSummary aggregates every job of one scheme: streaming moments over
// per-user scalars plus mergeable histograms for energy, delay and
// signaling. No per-user result survives the fold.
type SchemeSummary struct {
	// Energy streams per-user total energy (J).
	Energy metrics.Stream
	// SavingsPct streams per-user savings vs the StatusQuo baseline in
	// percent; empty when jobs carry no baseline.
	SavingsPct metrics.Stream
	// SwitchRatio streams per-user promotions / baseline promotions;
	// empty without baselines.
	SwitchRatio metrics.Stream
	// Promotions streams per-user promotion counts (signaling load).
	Promotions metrics.Stream
	// BurstDelay streams per-burst batching delays in seconds.
	BurstDelay metrics.Stream
	// EnergyHist bins per-user energy (J); DelayHist per-burst delays
	// (s); SignalHist per-user promotion counts. Embedded by value: a
	// fleet run allocates one SchemeSummary per (shard, scheme), and the
	// three histogram headers ride in that allocation instead of adding
	// three more.
	EnergyHist, DelayHist, SignalHist metrics.Histogram
}

func newSchemeSummary(cfg SummaryConfig) *SchemeSummary {
	s := new(SchemeSummary)
	// One slab backs all three histograms (full slice expressions keep an
	// append from ever crossing into a neighbour's bins).
	n := cfg.Bins
	slab := make([]int64, 3*n)
	s.EnergyHist.InitCounts(0, cfg.EnergyMaxJ, slab[0:n:n])
	s.DelayHist.InitCounts(0, cfg.DelayMaxS, slab[n:2*n:2*n])
	s.SignalHist.InitCounts(0, cfg.SignalMax, slab[2*n:3*n:3*n])
	return s
}

func (s *SchemeSummary) fold(out Outcome) {
	r := out.Result
	s.Energy.Add(r.TotalJ())
	s.EnergyHist.Add(r.TotalJ())
	s.Promotions.Add(float64(r.Promotions))
	s.SignalHist.Add(float64(r.Promotions))
	for _, d := range r.BurstDelays {
		s.BurstDelay.AddDuration(d)
		s.DelayHist.Add(d.Seconds())
	}
	if out.Baseline != nil {
		s.SavingsPct.Add(metrics.SavingsPercent(out.Baseline, r))
		s.SwitchRatio.Add(metrics.SwitchRatio(out.Baseline, r))
	}
}

// clone returns an independent bitwise copy: the streams are value
// structs, and the histograms get a fresh slab carved exactly like
// newSchemeSummary's with the counts (and totals) copied over.
func (s *SchemeSummary) clone() *SchemeSummary {
	c := new(SchemeSummary)
	*c = *s // streams by value; histogram headers share slabs until re-carved
	n := len(s.EnergyHist.Counts)
	slab := make([]int64, 3*n)
	copy(slab[0:n], s.EnergyHist.Counts)
	copy(slab[n:2*n], s.DelayHist.Counts)
	copy(slab[2*n:3*n], s.SignalHist.Counts)
	c.EnergyHist.Counts = slab[0:n:n]
	c.DelayHist.Counts = slab[n : 2*n : 2*n]
	c.SignalHist.Counts = slab[2*n : 3*n : 3*n]
	return c
}

// reset zeroes the aggregate in place for reuse: streams back to their
// zero values, histogram bins and totals cleared, layout and slab kept.
func (s *SchemeSummary) reset() {
	s.Energy = metrics.Stream{}
	s.SavingsPct = metrics.Stream{}
	s.SwitchRatio = metrics.Stream{}
	s.Promotions = metrics.Stream{}
	s.BurstDelay = metrics.Stream{}
	s.EnergyHist.Zero()
	s.DelayHist.Zero()
	s.SignalHist.Zero()
}

func (s *SchemeSummary) merge(o *SchemeSummary) error {
	s.Energy.Merge(o.Energy)
	s.SavingsPct.Merge(o.SavingsPct)
	s.SwitchRatio.Merge(o.SwitchRatio)
	s.Promotions.Merge(o.Promotions)
	s.BurstDelay.Merge(o.BurstDelay)
	if err := s.EnergyHist.Merge(&o.EnergyHist); err != nil {
		return err
	}
	if err := s.DelayHist.Merge(&o.DelayHist); err != nil {
		return err
	}
	return s.SignalHist.Merge(&o.SignalHist)
}

// Summary is the standard fleet aggregate: per-scheme mergeable statistics
// over an entire cohort.
type Summary struct {
	cfg SummaryConfig
	// Jobs counts folded jobs across all schemes.
	Jobs int64
	// Schemes maps scheme label to its aggregate.
	Schemes map[string]*SchemeSummary

	// spare holds zeroed SchemeSummaries recycled by Reset, popped before
	// allocating. Only scratch accumulators inside a run ever carry spares
	// — every Summary a caller sees has a nil spare, so DeepEqual
	// comparisons and the codecs are unaffected.
	spare []*SchemeSummary //rrclint:scratch
}

// NewSummary returns an empty summary with the given histogram layouts.
func NewSummary(cfg SummaryConfig) *Summary {
	return &Summary{cfg: cfg.withDefaults(), Schemes: map[string]*SchemeSummary{}}
}

// Clone returns an independent bitwise copy of the summary: mutating
// either side (folds, merges) never shows through the other. The spare
// list is scratch and not cloned.
func (s *Summary) Clone() *Summary {
	c := NewSummary(s.cfg)
	c.Jobs = s.Jobs
	//rrclint:ordered map-to-map clone keyed by the same labels; no order reaches bytes
	for k, v := range s.Schemes {
		c.Schemes[k] = v.clone()
	}
	return c
}

// Reset empties the summary for reuse as a scratch accumulator, moving its
// scheme aggregates onto the spare list (zeroed, layout kept) so the next
// fold into the same labels allocates nothing. An empty map — rather than
// zeroed entries left in place — matters for correctness, not just
// hygiene: merging a summary that carries empty scheme entries would
// create spurious keys in the destination.
func (s *Summary) Reset() *Summary {
	s.Jobs = 0
	//rrclint:ordered spare-list order is scratch-only: every spare is zeroed with the identical cfg layout, so which one a later fold pops is unobservable
	for k, agg := range s.Schemes {
		agg.reset()
		s.spare = append(s.spare, agg)
		delete(s.Schemes, k)
	}
	return s
}

// scheme returns the aggregate for label k, reusing a spare before
// allocating.
func (s *Summary) scheme(k string) *SchemeSummary {
	agg := s.Schemes[k]
	if agg == nil {
		if n := len(s.spare); n > 0 {
			agg = s.spare[n-1]
			s.spare = s.spare[:n-1]
		} else {
			agg = newSchemeSummary(s.cfg)
		}
		s.Schemes[k] = agg
	}
	return agg
}

// Fold folds one outcome into the summary.
func (s *Summary) Fold(out Outcome) {
	s.Jobs++
	s.scheme(out.Job.Scheme).fold(out)
}

// Merge folds another summary into s, scheme by scheme in sorted label
// order (a fixed order, so merged floats are reproducible).
func (s *Summary) Merge(o *Summary) error {
	s.Jobs += o.Jobs
	if len(o.Schemes) <= 1 {
		// One key needs no ordering; grid cells run a single scheme, so
		// their shard merges skip the sorted-keys allocation entirely.
		//rrclint:ordered at most one key under the len<=1 guard; a single iteration has no order
		for k, v := range o.Schemes {
			if err := s.mergeScheme(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	keys := make([]string, 0, len(o.Schemes))
	for k := range o.Schemes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := s.mergeScheme(k, o.Schemes[k]); err != nil {
			return err
		}
	}
	return nil
}

func (s *Summary) mergeScheme(k string, o *SchemeSummary) error {
	if err := s.scheme(k).merge(o); err != nil {
		return fmt.Errorf("fleet: scheme %s: %w", k, err)
	}
	return nil
}

// SchemeNames returns the aggregated scheme labels in sorted order.
func (s *Summary) SchemeNames() []string {
	keys := make([]string, 0, len(s.Schemes))
	for k := range s.Schemes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the per-scheme aggregate table plus delay quantiles.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet summary: %d jobs, %d schemes\n", s.Jobs, len(s.Schemes))
	for _, name := range s.SchemeNames() {
		a := s.Schemes[name]
		fmt.Fprintf(&sb, "%-28s energy/user %s\n", name, a.Energy.String())
		if a.SavingsPct.N > 0 {
			fmt.Fprintf(&sb, "%-28s saved%%     %s\n", "", a.SavingsPct.String())
			fmt.Fprintf(&sb, "%-28s sw-ratio   %s\n", "", a.SwitchRatio.String())
		}
		fmt.Fprintf(&sb, "%-28s promotions %s\n", "", a.Promotions.String())
		if a.BurstDelay.N > 0 {
			fmt.Fprintf(&sb, "%-28s delay(s)   %s p50=%.2f p95=%.2f\n", "",
				a.BurstDelay.String(), a.DelayHist.Quantile(0.5), a.DelayHist.Quantile(0.95))
		}
	}
	return sb.String()
}

// SummaryAccumulator is the ready-made Accumulator reducing into a Summary.
// Layout mismatches cannot occur (every shard shares cfg), so Merge's error
// path is unreachable and swallowed. It opts into every reuse path: Reset
// and Clone let the runtime recycle shard accumulators (O(workers) summary
// allocations per run) while keeping snapshots deterministic, and Transient
// is safe because Fold copies scalars out of the Results and retains
// nothing.
func SummaryAccumulator(cfg SummaryConfig) Accumulator[*Summary] {
	cfg = cfg.withDefaults()
	return Accumulator[*Summary]{
		New: func() *Summary { return NewSummary(cfg) },
		Fold: func(s *Summary, out Outcome) *Summary {
			s.Fold(out)
			return s
		},
		Merge: func(a, b *Summary) *Summary {
			if err := a.Merge(b); err != nil {
				panic(err) // impossible: all shards share one layout
			}
			return a
		},
		Reset:     func(s *Summary) *Summary { return s.Reset() },
		Clone:     func(s *Summary) *Summary { return s.Clone() },
		Transient: true,
	}
}

// RunSummary runs the jobs and reduces them into the standard Summary.
func RunSummary(jobs []Job, opts Options, cfg SummaryConfig) (*Summary, error) {
	return Run(jobs, opts, SummaryAccumulator(cfg))
}

// RunSummaryLazyProgress is RunSummary plus a deferred-partial feed: after
// each shard completes, onProgress receives the progress counts and a snap
// function that builds the merged Summary over every shard finished so far
// — but only when called. Callers that sample partials (a status endpoint
// polled a handful of times per run) pay the merge on read instead of once
// per shard; callers that never read pay nothing.
//
// snap builds its summary by the same op sequence as merging every
// completed shard in shard index order into a fresh accumulator (see
// runHooked: a clone of the eagerly merged in-order prefix plus the
// still-pending shards in index order), so a snapshot's content is a
// deterministic function of the *set* of completed shards, and the final
// result remains bit-identical to RunSummary. snap is safe to call from
// any goroutine, during the run or after it returns; later calls observe
// newly completed shards. Each snap() result is an independent Summary the
// caller may retain. onProgress runs serialized on a worker goroutine;
// keep it quick.
func RunSummaryLazyProgress(jobs []Job, opts Options, cfg SummaryConfig, onProgress func(snap func() *Summary, p Progress)) (*Summary, error) {
	if onProgress == nil {
		return RunSummary(jobs, opts, cfg)
	}
	return runHooked(jobs, opts, SummaryAccumulator(cfg), onProgress)
}

// RunSummaryWithProgress is RunSummaryLazyProgress with eager snapshots:
// onPartial receives a freshly merged Summary after every shard. Prefer
// the lazy form on hot paths — eager snapshots cost one full merge per
// shard whether or not anyone looks at them.
func RunSummaryWithProgress(jobs []Job, opts Options, cfg SummaryConfig, onPartial func(partial *Summary, p Progress)) (*Summary, error) {
	if onPartial == nil {
		return RunSummary(jobs, opts, cfg)
	}
	return RunSummaryLazyProgress(jobs, opts, cfg, func(snap func() *Summary, p Progress) {
		onPartial(snap(), p)
	})
}

// SeedStride spaces per-user seeds so adjacent users draw well-separated
// RNG streams (the prime stride the experiments layer already used).
const SeedStride = 104729

// UserSeed returns the trace seed of user i in a cohort rooted at seed.
func UserSeed(seed int64, i int) int64 { return seed + int64(i)*SeedStride }
