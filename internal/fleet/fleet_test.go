package fleet

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/trace"
)

func testCohort(users int) Cohort {
	return Cohort{Users: users, Seed: 7, Duration: 20 * time.Minute}
}

func testJobs(t *testing.T, users int) []Job {
	t.Helper()
	return testCohort(users).Jobs(power.Verizon3G, []Scheme{MakeIdleScheme(), CombinedScheme()})
}

// TestShardRangeCoversAllJobs checks the contiguous partition is exact:
// every job in exactly one shard, order preserved.
func TestShardRangeCoversAllJobs(t *testing.T) {
	for _, tc := range []struct{ jobs, shards int }{
		{1, 1}, {5, 2}, {7, 7}, {64, 5}, {100, 64}, {3, 64},
	} {
		next := 0
		for s := 0; s < tc.shards && s < tc.jobs; s++ {
			lo, hi := shardRange(tc.jobs, s, min(tc.shards, tc.jobs))
			if lo != next {
				t.Fatalf("jobs=%d shards=%d: shard %d starts at %d, want %d",
					tc.jobs, tc.shards, s, lo, next)
			}
			if hi <= lo {
				t.Fatalf("jobs=%d shards=%d: empty shard %d", tc.jobs, tc.shards, s)
			}
			next = hi
		}
		if next != tc.jobs {
			t.Fatalf("jobs=%d shards=%d: covered %d jobs", tc.jobs, tc.shards, next)
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the tentpole guarantee: the same
// seed must yield bit-identical aggregates under 1, 4 and 16 workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(t, 12)
	var want *Summary
	for _, workers := range []int{1, 4, 16} {
		got, err := RunSummary(jobs, Options{Workers: workers}, SummaryConfig{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Jobs != int64(len(jobs)) {
			t.Fatalf("workers=%d: folded %d jobs, want %d", workers, got.Jobs, len(jobs))
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: aggregates differ from workers=1:\n%s\nvs\n%s",
				workers, got, want)
		}
	}
	// Sanity: the aggregate is not vacuous — MakeIdle saves energy on this
	// workload and the histograms saw every user.
	mi := want.Schemes["MakeIdle"]
	if mi == nil || mi.SavingsPct.N != 12 || mi.SavingsPct.Mean <= 0 {
		t.Fatalf("MakeIdle aggregate implausible: %+v", mi)
	}
	if mi.EnergyHist.Count() != 12 {
		t.Fatalf("energy histogram saw %d users", mi.EnergyHist.Count())
	}
}

// TestDeterministicWithExplicitShards pins shards explicitly (as the CLIs
// can) and again demands identical results for every worker count.
func TestDeterministicWithExplicitShards(t *testing.T) {
	jobs := testJobs(t, 9)
	var want *Summary
	for _, workers := range []int{1, 3, 16} {
		got, err := RunSummary(jobs, Options{Workers: workers, Shards: 5}, SummaryConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d shards=5 differs", workers)
		}
	}
}

// TestConcurrentFoldIsolation runs a custom accumulator under many workers;
// with -race this doubles as the concurrency test (per-shard accumulators
// must never be shared between goroutines).
func TestConcurrentFoldIsolation(t *testing.T) {
	jobs := testJobs(t, 16)
	var folds atomic.Int64
	type counts struct{ jobs, delays int }
	acc := Accumulator[*counts]{
		New: func() *counts { return &counts{} },
		Fold: func(c *counts, out Outcome) *counts {
			folds.Add(1)
			c.jobs++
			c.delays += len(out.Result.BurstDelays)
			return c
		},
		Merge: func(a, b *counts) *counts {
			a.jobs += b.jobs
			a.delays += b.delays
			return a
		},
	}
	got, err := Run(jobs, Options{Workers: 16, Shards: 16}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.jobs != len(jobs) || folds.Load() != int64(len(jobs)) {
		t.Fatalf("folded %d/%d jobs (merge saw %d)", folds.Load(), len(jobs), got.jobs)
	}
}

// TestRunPropagatesFirstErrorInJobOrder makes a mid-fleet job fail and
// checks the error is deterministic (first failing job in order), not
// whichever shard lost the race.
func TestRunPropagatesFirstErrorInJobOrder(t *testing.T) {
	jobs := testJobs(t, 8)
	boom := fmt.Errorf("boom")
	jobs[5].Demote = func(trace.Trace, power.Profile) (policy.DemotePolicy, error) {
		return nil, boom
	}
	jobs[11].Demote = jobs[5].Demote
	for _, workers := range []int{1, 8} {
		_, err := RunSummary(jobs, Options{Workers: workers, Shards: 8}, SummaryConfig{})
		if err == nil {
			t.Fatalf("workers=%d: error not propagated", workers)
		}
		want := "fleet: job 5"
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("workers=%d: got error %q, want prefix %q", workers, got, want)
		}
	}
}

// TestJobValidation rejects unusable jobs up front.
func TestJobValidation(t *testing.T) {
	if _, err := RunSummary([]Job{{Profile: power.Verizon3G}}, Options{}, SummaryConfig{}); err == nil {
		t.Fatal("job without trace/gen accepted")
	}
	jobs := testJobs(t, 1)
	jobs[0].Demote = nil
	if _, err := RunSummary(jobs, Options{}, SummaryConfig{}); err == nil {
		t.Fatal("job without demote factory accepted")
	}
}

// TestEmptyJobList returns an empty (usable) aggregate.
func TestEmptyJobList(t *testing.T) {
	s, err := RunSummary(nil, Options{}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 0 || len(s.Schemes) != 0 {
		t.Fatalf("empty run produced %+v", s)
	}
}

// TestExplicitTraceJobs exercises the Trace (no Gen) path with a
// trace-fitted baseline, as cmd/rrcsim submits them.
func TestExplicitTraceJobs(t *testing.T) {
	base := Cohort{Users: 1, Seed: 3, Duration: 15 * time.Minute}
	src := base.Jobs(power.Verizon3G, []Scheme{MakeIdleScheme()})[0].Source
	fixed, err := trace.Collect(src(base.Seed))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{{
		Seed:    1,
		Trace:   fixed,
		Profile: power.Verizon3G,
		Scheme:  "95% IAT",
		Demote: func(tr trace.Trace, _ power.Profile) (policy.DemotePolicy, error) {
			return policy.NewPercentileIAT(tr, 0.95), nil
		},
		Baseline: true,
	}}
	s, err := RunSummary(jobs, Options{}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Schemes["95% IAT"].Energy.N != 1 {
		t.Fatalf("trace job not aggregated: %s", s)
	}
}
