package fleet

import (
	"strconv"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scheme couples a label with the policy factories that realize it. The
// factories receive the job's trace and profile so trace-fitted baselines
// (95% IAT, MakeActive-Fix) can be built inside the worker; FitTrace marks
// schemes that actually need that trace, forcing streaming jobs to
// materialize (see Job.FitTrace). Schemes whose policies learn online
// leave it unset and replay in O(1) memory.
type Scheme struct {
	Name     string
	Demote   func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error)
	Active   func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error)
	FitTrace bool
	// PolicyKey, when non-empty, marks the factories as pure functions of
	// (key, fit trace, profile), letting workers reuse constructed
	// policies across jobs (see Job.PolicyKey; trace-fitted schemes also
	// need a trace cache key before workers memoize their fits).
	// SchemeFromSpec derives it from the registry's canonical encoding;
	// hand-built schemes may leave it empty to always construct fresh.
	PolicyKey string
}

// Cohort describes a synthetic multi-user population to fan out.
type Cohort struct {
	// Users is the population size. Mixes cycle, so any size reuses the
	// configured app blends.
	Users int
	// Seed roots every per-user trace seed (UserSeed spacing).
	Seed int64
	// Duration is the per-user trace length.
	Duration time.Duration
	// Diurnal wraps each user in the day/night activity mask, turning the
	// stationary mixes into day-scale load (workload.DayUser).
	Diurnal bool
	// Mixes are the user blends the population cycles through; nil keeps
	// the historical default, the Verizon 3G study cohort.
	Mixes []workload.User
	// SeedStride multiplies the per-user seed index (user i draws
	// UserSeed(Seed, i*SeedStride)); <= 1 keeps the historical spacing.
	SeedStride int
	// Opts are the simulation options applied to every job (burst gap,
	// recording); nil gives the simulator defaults.
	Opts *sim.Options
	// CacheKeyBase, when non-empty, stamps every expanded job with a trace
	// cache key of "base|seed" so Options.TraceCache can memoize the
	// cohort's per-user traces across cells. It must determine the packet
	// stream up to the seed — the cohort's canonical encoding (users,
	// duration, mixes, diurnal, stride) qualifies; jobs.plan supplies
	// exactly that. Empty disables trace caching for the cohort.
	CacheKeyBase string

	// srcs and cacheKeys cache Prepare's precomputations. They are derived
	// from the exported fields, so they are only ever set by Prepare,
	// immediately after those fields reach their final values; mutating
	// the cohort afterwards would leave them stale.
	srcs      []func(int64) trace.Source
	cacheKeys []string
}

// prepareKeysMaxUsers bounds the populations whose per-user trace cache
// keys Prepare materializes: small cohorts are exactly the ones whose jobs
// the trace cache can actually hold, and huge ones must not pin O(users)
// strings for the grid's lifetime.
const prepareKeysMaxUsers = 1 << 16

// Prepare precomputes what every Jobs expansion of this cohort rebuilds —
// the per-mix source constructors, and (for populations small enough to
// cache) the per-user trace cache keys. A grid expands one cell per
// scheme × profile over the same cohort, so cells copying the Cohort value
// share the work. Call it once the other fields are final; Jobs works
// without it, building everything locally.
func (c *Cohort) Prepare() {
	c.srcs = c.buildSources()
	c.cacheKeys = nil
	if c.CacheKeyBase != "" && c.Users <= prepareKeysMaxUsers {
		stride := c.SeedStride
		if stride < 1 {
			stride = 1
		}
		c.cacheKeys = make([]string, c.Users)
		for i := range c.cacheKeys {
			seed := UserSeed(c.Seed, i*stride)
			c.cacheKeys[i] = c.CacheKeyBase + "|" + strconv.FormatInt(seed, 10)
		}
	}
}

// buildSources constructs one trace-source builder per mix the population
// actually uses: users cycle through the mixes, so with fewer users than
// mixes only the first Users blends are ever drawn.
func (c *Cohort) buildSources() []func(int64) trace.Source {
	mixes := c.Mixes
	if len(mixes) == 0 {
		mixes = workload.Verizon3GUsers()
	}
	n := len(mixes)
	if c.Users > 0 && c.Users < n {
		n = c.Users
	}
	srcs := make([]func(int64) trace.Source, n)
	for i := 0; i < n; i++ {
		u := mixes[i]
		if c.Diurnal {
			u = workload.DayUser(u)
		}
		d := c.Duration
		srcs[i] = func(seed int64) trace.Source { return u.Stream(seed, d) }
	}
	return srcs
}

// Jobs expands the cohort into one job per (user, scheme) against the
// profile. Jobs carry source constructors, not traces: each worker streams
// its user's packets from the seed on demand, replays them once per
// scheme, and never holds the trace — per-worker memory is independent of
// c.Duration (except under FitTrace schemes, which materialize). Baselines
// are enabled so summaries get relative metrics.
func (c Cohort) Jobs(prof power.Profile, schemes []Scheme) []Job {
	stride := c.SeedStride
	if stride < 1 {
		stride = 1
	}
	// Users cycle through a small mix set, so the diurnal wrap and the
	// source constructor are built once per mix, not once per user: users
	// sharing a mix differ only by their seed, which the constructor takes
	// as an argument. Prepared cohorts amortize even that across cells.
	srcs := c.srcs
	if srcs == nil {
		srcs = c.buildSources()
	}
	jobs := make([]Job, 0, c.Users*len(schemes))
	for i := 0; i < c.Users; i++ {
		src := srcs[i%len(srcs)]
		seed := UserSeed(c.Seed, i*stride)
		cacheKey := ""
		if i < len(c.cacheKeys) {
			cacheKey = c.cacheKeys[i]
		} else if c.CacheKeyBase != "" {
			cacheKey = c.CacheKeyBase + "|" + strconv.FormatInt(seed, 10)
		}
		for _, s := range schemes {
			jobs = append(jobs, Job{
				Seed:      seed,
				Source:    src,
				Profile:   prof,
				Scheme:    s.Name,
				Demote:    s.Demote,
				Active:    s.Active,
				FitTrace:  s.FitTrace,
				Opts:      c.Opts,
				Baseline:  true,
				CacheKey:  cacheKey,
				PolicyKey: s.PolicyKey,
			})
		}
	}
	return jobs
}

// MakeIdleScheme is the paper's §4 policy as a fleet scheme.
func MakeIdleScheme() Scheme {
	return Scheme{
		Name: "MakeIdle",
		Demote: func(_ trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
			return policy.NewMakeIdle(prof)
		},
	}
}

// CombinedScheme is MakeIdle plus the learning MakeActive (§5.2).
func CombinedScheme() Scheme {
	s := MakeIdleScheme()
	s.Name = "MakeIdle+MakeActive Learn"
	s.Active = func(trace.Trace, power.Profile) (policy.ActivePolicy, error) {
		return policy.NewLearnedDelay(), nil
	}
	return s
}

// StatusQuoScheme replays the deployed timer behaviour (useful when a run
// wants absolute baseline aggregates alongside the relative ones).
func StatusQuoScheme() Scheme {
	return Scheme{
		Name: "StatusQuo",
		Demote: func(trace.Trace, power.Profile) (policy.DemotePolicy, error) {
			return policy.StatusQuo{}, nil
		},
	}
}
