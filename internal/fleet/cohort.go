package fleet

import (
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scheme couples a label with the policy factories that realize it. The
// factories receive the job's trace and profile so trace-fitted baselines
// (95% IAT, MakeActive-Fix) can be built inside the worker; FitTrace marks
// schemes that actually need that trace, forcing streaming jobs to
// materialize (see Job.FitTrace). Schemes whose policies learn online
// leave it unset and replay in O(1) memory.
type Scheme struct {
	Name     string
	Demote   func(tr trace.Trace, prof power.Profile) (policy.DemotePolicy, error)
	Active   func(tr trace.Trace, prof power.Profile) (policy.ActivePolicy, error)
	FitTrace bool
}

// Cohort describes a synthetic multi-user population to fan out.
type Cohort struct {
	// Users is the population size. Mixes cycle, so any size reuses the
	// configured app blends.
	Users int
	// Seed roots every per-user trace seed (UserSeed spacing).
	Seed int64
	// Duration is the per-user trace length.
	Duration time.Duration
	// Diurnal wraps each user in the day/night activity mask, turning the
	// stationary mixes into day-scale load (workload.DayUser).
	Diurnal bool
	// Mixes are the user blends the population cycles through; nil keeps
	// the historical default, the Verizon 3G study cohort.
	Mixes []workload.User
	// SeedStride multiplies the per-user seed index (user i draws
	// UserSeed(Seed, i*SeedStride)); <= 1 keeps the historical spacing.
	SeedStride int
	// Opts are the simulation options applied to every job (burst gap,
	// recording); nil gives the simulator defaults.
	Opts *sim.Options
}

// Jobs expands the cohort into one job per (user, scheme) against the
// profile. Jobs carry source constructors, not traces: each worker streams
// its user's packets from the seed on demand, replays them once per
// scheme, and never holds the trace — per-worker memory is independent of
// c.Duration (except under FitTrace schemes, which materialize). Baselines
// are enabled so summaries get relative metrics.
func (c Cohort) Jobs(prof power.Profile, schemes []Scheme) []Job {
	mixes := c.Mixes
	if len(mixes) == 0 {
		mixes = workload.Verizon3GUsers()
	}
	stride := c.SeedStride
	if stride < 1 {
		stride = 1
	}
	jobs := make([]Job, 0, c.Users*len(schemes))
	for i := 0; i < c.Users; i++ {
		u := mixes[i%len(mixes)]
		if c.Diurnal {
			u = workload.DayUser(u)
		}
		src := func(u workload.User) func(int64) trace.Source {
			return func(seed int64) trace.Source { return u.Stream(seed, c.Duration) }
		}(u)
		for _, s := range schemes {
			jobs = append(jobs, Job{
				Seed:     UserSeed(c.Seed, i*stride),
				Source:   src,
				Profile:  prof,
				Scheme:   s.Name,
				Demote:   s.Demote,
				Active:   s.Active,
				FitTrace: s.FitTrace,
				Opts:     c.Opts,
				Baseline: true,
			})
		}
	}
	return jobs
}

// MakeIdleScheme is the paper's §4 policy as a fleet scheme.
func MakeIdleScheme() Scheme {
	return Scheme{
		Name: "MakeIdle",
		Demote: func(_ trace.Trace, prof power.Profile) (policy.DemotePolicy, error) {
			return policy.NewMakeIdle(prof)
		},
	}
}

// CombinedScheme is MakeIdle plus the learning MakeActive (§5.2).
func CombinedScheme() Scheme {
	s := MakeIdleScheme()
	s.Name = "MakeIdle+MakeActive Learn"
	s.Active = func(trace.Trace, power.Profile) (policy.ActivePolicy, error) {
		return policy.NewLearnedDelay(), nil
	}
	return s
}

// StatusQuoScheme replays the deployed timer behaviour (useful when a run
// wants absolute baseline aggregates alongside the relative ones).
func StatusQuoScheme() Scheme {
	return Scheme{
		Name: "StatusQuo",
		Demote: func(trace.Trace, power.Profile) (policy.DemotePolicy, error) {
			return policy.StatusQuo{}, nil
		},
	}
}
