package fleet

import (
	"bytes"
	"reflect"
	"testing"
)

// codecSummary runs a small real fleet job so the encoded summary has
// every field populated: savings/switch ratios (baseline-bearing
// schemes), burst delays, non-trivial histogram counts.
func codecSummary(t *testing.T) *Summary {
	t.Helper()
	s, err := RunSummary(testJobs(t, 6), Options{Workers: 2, Shards: 3}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSummaryCodecRoundTrip is the store's byte-identity foundation: a
// decoded summary must equal the original down to unexported state, so
// everything rendered from it (JSON, CSV, text, quantiles) is
// byte-identical to a never-persisted run.
func TestSummaryCodecRoundTrip(t *testing.T) {
	orig := codecSummary(t)
	enc := EncodeSummary(orig)
	dec, err := DecodeSummary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, dec) {
		t.Fatalf("round trip changed the summary:\n%+v\nvs\n%+v", orig, dec)
	}
	if orig.String() != dec.String() {
		t.Fatal("rendered text differs after round trip")
	}
	// The encoding itself is canonical: re-encoding the decoded summary
	// reproduces the identical bytes.
	if !bytes.Equal(enc, EncodeSummary(dec)) {
		t.Fatal("re-encoding is not canonical")
	}
	// An empty summary round-trips too.
	empty := NewSummary(SummaryConfig{})
	dec2, err := DecodeSummary(EncodeSummary(empty))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(empty, dec2) {
		t.Fatal("empty summary round trip differs")
	}
}

// TestDecodedSummaryMerges checks a decoded summary is a full citizen:
// merging it into a live aggregate gives exactly what merging the
// original would have — the resume path's cross-cell merge property.
func TestDecodedSummaryMerges(t *testing.T) {
	orig := codecSummary(t)
	dec, err := DecodeSummary(EncodeSummary(orig))
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewSummary(SummaryConfig{}), NewSummary(SummaryConfig{})
	if err := a.Merge(orig); err != nil {
		t.Fatal(err)
	}
	if err := b.Merge(dec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("merging decoded vs original summaries diverges")
	}
}

// TestSummaryCodecRejects refuses structurally damaged encodings — the
// codec never guesses. (Bit rot inside float payloads is the store
// record digest's job, not the codec's.)
func TestSummaryCodecRejects(t *testing.T) {
	enc := EncodeSummary(codecSummary(t))
	cases := map[string][]byte{
		"empty":          nil,
		"bad-version":    append([]byte("FSUM9"), enc[5:]...),
		"header-only":    enc[:8],
		"truncated-half": enc[:len(enc)/2],
		"truncated-tail": enc[:len(enc)-3],
		"trailing-bytes": append(bytes.Clone(enc), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := DecodeSummary(data); err == nil {
			t.Errorf("%s: decoder accepted damaged bytes", name)
		}
	}
}
