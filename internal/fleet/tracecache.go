package fleet

import (
	"sync"

	"repro/internal/trace"
)

// TraceCache memoizes materialized traces across fleet runs, keyed by a
// caller-chosen string that must capture everything the packets depend on
// (generator config and seed — Cohort.Jobs derives one from the cohort's
// canonical encoding). Grid sweeps replay the same cohort against every
// (scheme, profile) cell; without the cache each cell re-synthesizes its
// users' traffic from the seed, and generation — RNG setup, the reorder
// buffer, the diurnal mask — dominates the cost of short-trace cells. With
// it, generation runs once per user and every later cell replays the
// memoized slice (replaying a materialized trace is byte-identical to
// streaming the same seed, so results are unchanged).
//
// Capacity is bounded in *packets*, not entries, since traces vary wildly
// in length; eviction is FIFO — sweeps touch seeds in a stable order, so
// recency adds nothing. A nil *TraceCache disables caching everywhere it
// is consulted.
type TraceCache struct {
	mu      sync.Mutex
	cap     int // max total packets held
	total   int
	entries map[string]trace.Trace
	order   []string // insertion order, for FIFO eviction
}

// NewTraceCache returns a cache bounded to maxPackets total packets;
// maxPackets <= 0 returns nil (caching disabled).
func NewTraceCache(maxPackets int) *TraceCache {
	if maxPackets <= 0 {
		return nil
	}
	return &TraceCache{cap: maxPackets, entries: map[string]trace.Trace{}}
}

// Get returns the cached trace for key. The returned slice is shared:
// callers must treat it as read-only.
func (c *TraceCache) Get(key string) (trace.Trace, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	tr, ok := c.entries[key]
	c.mu.Unlock()
	return tr, ok
}

// Put stores a trace under key, evicting oldest entries as needed. Traces
// longer than the whole capacity are not stored.
func (c *TraceCache) Put(key string, tr trace.Trace) {
	if c == nil || len(tr) > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for c.total+len(tr) > c.cap && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		c.total -= len(c.entries[old])
		delete(c.entries, old)
	}
	c.entries[key] = tr
	c.order = append(c.order, key)
	c.total += len(tr)
}

// Len reports the number of cached traces (for tests and introspection).
func (c *TraceCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
