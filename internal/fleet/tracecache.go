package fleet

import (
	"container/list"
	"sync"

	"repro/internal/trace"
)

// TraceCache memoizes generated cohort traffic across fleet runs as
// rrcstream-encoded byte slabs, keyed by a caller-chosen string that must
// capture everything the packets depend on (generator config and seed —
// Cohort.Jobs derives one from the cohort's canonical encoding). Grid
// sweeps replay the same cohort against every (scheme, profile) cell;
// without the cache each replay re-synthesizes its user's traffic from
// the seed, and generation — RNG setup, the reorder buffer, the diurnal
// mask — dominates the cost of short-trace cells. With it, generation
// runs once per key per cache lifetime: the first toucher streams the
// generator through the codec into a compact slab (2-5 bytes per packet
// versus the 24-byte in-memory Packet), and every later replay decodes
// straight out of the shared bytes via trace.BytesSource. The codec
// round-trips exactly (Generate = Collect(Stream) is bit-stable), so
// cached and uncached replays are byte-identical.
//
// Generation is single-flight: concurrent callers of one key wait for the
// first caller's generation instead of duplicating it, so N cells racing
// over a shared cohort still synthesize each user once. Waiting is safe
// under the worker budget — a generating worker needs no further tokens
// to finish, so a waiter blocked while holding its own token can never be
// part of a cycle (see Slab).
//
// Capacity is a byte budget over retained slabs, evicted LRU; an entry
// mid-generation holds no budget and is never evicted. A slab larger than
// the whole budget is returned to its generator but not retained. A nil
// *TraceCache disables caching everywhere it is consulted.
type TraceCache struct {
	mu     sync.Mutex
	budget int64
	total  int64
	// entries holds ready slabs and in-flight generations; lru orders only
	// the ready ones (front = coldest).
	entries map[string]*traceEntry
	lru     *list.List

	hits, misses, evictions uint64
}

// traceEntry is one cached (or generating) slab. done closes once slab
// and err are final; both are immutable afterwards. elem is the entry's
// LRU position, nil while generating or once dropped.
type traceEntry struct {
	key  string
	done chan struct{}
	slab []byte
	err  error
	elem *list.Element
}

// TraceCacheStats is a point-in-time snapshot of the cache gauges.
// Misses count generations actually run (single-flight waiters count as
// hits: they reused another caller's generation); Bytes and Entries
// cover retained slabs only.
type TraceCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

// NewTraceCache returns a cache bounded to maxBytes of retained slab
// bytes; maxBytes <= 0 returns nil (caching disabled).
func NewTraceCache(maxBytes int64) *TraceCache {
	if maxBytes <= 0 {
		return nil
	}
	return &TraceCache{
		budget:  maxBytes,
		entries: map[string]*traceEntry{},
		lru:     list.New(),
	}
}

// Slab returns the encoded trace for key, generating it exactly once per
// cache lifetime: on a miss the calling goroutine drains gen() through
// the rrcstream codec while concurrent callers of the same key block
// until the slab (or the generation error) is final. The returned bytes
// are shared and must be treated as read-only; replay them with
// trace.BytesSource.
//
// Deadlock-freedom under a worker budget: generation runs entirely on the
// calling goroutine and acquires nothing — no budget tokens, no cache
// lock while generating — so a generator always finishes and waiters
// always wake, even when every waiter holds a token the generator could
// be presumed to want. Generation errors are returned to every waiter
// but never cached: the failing entry is dropped, so a later caller
// retries.
func (c *TraceCache) Slab(key string, gen func() trace.Source) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.lru.MoveToBack(e.elem)
		}
		c.hits++
		c.mu.Unlock()
		<-e.done
		return e.slab, e.err
	}
	e := &traceEntry{key: key, done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	slab, err := trace.EncodeStream(gen())
	e.slab, e.err = slab, err

	c.mu.Lock()
	if err != nil || int64(len(slab)) > c.budget {
		delete(c.entries, key)
	} else {
		e.elem = c.lru.PushBack(e)
		c.total += int64(len(slab))
		for c.total > c.budget {
			oldest := c.lru.Remove(c.lru.Front()).(*traceEntry)
			oldest.elem = nil
			delete(c.entries, oldest.key)
			c.total -= int64(len(oldest.slab))
			c.evictions++
		}
	}
	c.mu.Unlock()
	close(e.done)
	return slab, err
}

// Stats snapshots the cache gauges. A nil cache reports zeros.
func (c *TraceCache) Stats() TraceCacheStats {
	if c == nil {
		return TraceCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return TraceCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.lru.Len(),
		Bytes:     c.total,
	}
}

// Len reports the number of retained slabs (for tests and introspection).
func (c *TraceCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
