package fleet

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/metrics"
)

// This file is the durable serialization of a Summary — the payload the
// content-addressed cell store persists. The encoding is canonical and
// bit-exact: schemes in sorted label order, every float carried as its
// IEEE-754 bit pattern, so DecodeSummary(EncodeSummary(s)) reproduces s
// down to the last bit and a summary re-rendered after a round trip
// yields byte-identical JSON/CSV/text. A version tag leads the bytes;
// unknown versions decode to an error (the store treats that as a miss),
// never to a guess.

// summaryCodecVersion tags the encoding. Bump it whenever the Summary
// shape or the encoding changes; old cells then read as misses and are
// recomputed rather than misinterpreted.
const summaryCodecVersion = "FSUM1"

// Config returns the summary's histogram layout configuration (the
// normalized form NewSummary stored). The codec persists it so a decoded
// summary merges with — and renders exactly like — the live summaries of
// the same configuration.
func (s *Summary) Config() SummaryConfig { return s.cfg }

// EncodeSummary serializes a summary into its canonical binary form.
func EncodeSummary(s *Summary) []byte {
	b := make([]byte, 0, 256)
	b = append(b, summaryCodecVersion...)
	b = appendFloat(b, s.cfg.EnergyMaxJ)
	b = appendFloat(b, s.cfg.DelayMaxS)
	b = appendFloat(b, s.cfg.SignalMax)
	b = binary.AppendUvarint(b, uint64(s.cfg.Bins))
	b = binary.AppendUvarint(b, uint64(s.Jobs))
	names := s.SchemeNames()
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = binary.AppendUvarint(b, uint64(len(name)))
		b = append(b, name...)
		agg := s.Schemes[name]
		for _, st := range []*metrics.Stream{
			&agg.Energy, &agg.SavingsPct, &agg.SwitchRatio, &agg.Promotions, &agg.BurstDelay,
		} {
			b = appendStream(b, st)
		}
		for _, h := range []*metrics.Histogram{&agg.EnergyHist, &agg.DelayHist, &agg.SignalHist} {
			b = appendHistogram(b, h)
		}
	}
	return b
}

// DecodeSummary reconstructs a summary from EncodeSummary's bytes. Any
// structural inconsistency — wrong version, truncation, trailing bytes,
// a histogram layout that contradicts the encoded config — is an error.
func DecodeSummary(data []byte) (*Summary, error) {
	d := &decoder{data: data}
	if string(d.take(len(summaryCodecVersion))) != summaryCodecVersion {
		return nil, fmt.Errorf("fleet: summary codec version mismatch (want %s)", summaryCodecVersion)
	}
	cfg := SummaryConfig{
		EnergyMaxJ: d.float(),
		DelayMaxS:  d.float(),
		SignalMax:  d.float(),
		Bins:       int(d.uvarint()),
	}
	if d.err != nil {
		return nil, d.err
	}
	if cfg != cfg.withDefaults() {
		return nil, fmt.Errorf("fleet: encoded summary config %+v is not normalized", cfg)
	}
	s := NewSummary(cfg)
	s.Jobs = int64(d.uvarint())
	n := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if n > uint64(len(data)) { // cheap bound: each scheme costs >> 1 byte
		return nil, fmt.Errorf("fleet: implausible scheme count %d", n)
	}
	prev := ""
	for i := uint64(0); i < n; i++ {
		name := string(d.take(int(d.uvarint())))
		if d.err != nil {
			return nil, d.err
		}
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("fleet: scheme labels out of canonical order (%q after %q)", name, prev)
		}
		prev = name
		agg := newSchemeSummary(cfg)
		for _, st := range []*metrics.Stream{
			&agg.Energy, &agg.SavingsPct, &agg.SwitchRatio, &agg.Promotions, &agg.BurstDelay,
		} {
			d.stream(st)
		}
		for _, h := range []*metrics.Histogram{&agg.EnergyHist, &agg.DelayHist, &agg.SignalHist} {
			if err := d.histogram(h); err != nil {
				return nil, err
			}
		}
		if d.err != nil {
			return nil, d.err
		}
		s.Schemes[name] = agg
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after summary", len(d.data))
	}
	return s, nil
}

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendStream(b []byte, s *metrics.Stream) []byte {
	b = binary.AppendUvarint(b, uint64(s.N))
	b = appendFloat(b, s.Mean)
	b = appendFloat(b, s.M2)
	b = appendFloat(b, s.Min)
	return appendFloat(b, s.Max)
}

func appendHistogram(b []byte, h *metrics.Histogram) []byte {
	b = appendFloat(b, h.Lo)
	b = appendFloat(b, h.Hi)
	b = binary.AppendUvarint(b, uint64(len(h.Counts)))
	for _, c := range h.Counts {
		b = binary.AppendUvarint(b, uint64(c))
	}
	return b
}

// decoder is a sticky-error cursor over the encoded bytes.
type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("fleet: "+format, args...)
		d.data = nil
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.data) {
		d.fail("truncated summary (need %d bytes, have %d)", n, len(d.data))
		return nil
	}
	out := d.data[:n]
	d.data = d.data[n:]
	return out
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) float() float64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *decoder) stream(s *metrics.Stream) {
	s.N = int64(d.uvarint())
	s.Mean = d.float()
	s.M2 = d.float()
	s.Min = d.float()
	s.Max = d.float()
}

// histogram decodes into an already-laid-out histogram (the layout comes
// from the summary config) and cross-checks the encoded layout against
// it, so a tampered config cannot silently re-bin counts.
func (d *decoder) histogram(h *metrics.Histogram) error {
	lo, hi := d.float(), d.float()
	n := d.uvarint()
	if d.err != nil {
		return d.err
	}
	if lo != h.Lo || hi != h.Hi || n != uint64(len(h.Counts)) {
		return fmt.Errorf("fleet: histogram layout [%g,%g)x%d contradicts config layout [%g,%g)x%d",
			lo, hi, n, h.Lo, h.Hi, len(h.Counts))
	}
	counts := make([]int64, n)
	for i := range counts {
		c := d.uvarint()
		if c > math.MaxInt64 {
			d.fail("bin count overflow")
		}
		counts[i] = int64(c)
	}
	if d.err != nil {
		return d.err
	}
	return h.RestoreCounts(counts)
}
