package fleet

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/power"
	"repro/internal/trace"
)

// TestProgressCountsAreMonotoneAndComplete watches OnShard under a parallel
// run: counts must rise monotonically, never exceed the totals, and end
// exactly at (shards, jobs).
func TestProgressCountsAreMonotoneAndComplete(t *testing.T) {
	jobs := testJobs(t, 12)
	var (
		mu   sync.Mutex
		seen []Progress
	)
	opts := Options{Workers: 8, Shards: 6, OnShard: func(p Progress) {
		mu.Lock()
		seen = append(seen, p)
		mu.Unlock()
	}}
	sum, err := RunSummary(jobs, opts, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != int64(len(jobs)) {
		t.Fatalf("summary folded %d jobs, want %d", sum.Jobs, len(jobs))
	}
	if len(seen) != 6 {
		t.Fatalf("OnShard fired %d times, want 6", len(seen))
	}
	for i, p := range seen {
		if p.Shards != 6 || p.TotalJobs != len(jobs) {
			t.Fatalf("event %d has wrong totals: %+v", i, p)
		}
		if p.DoneShards != i+1 {
			t.Fatalf("event %d: DoneShards=%d, want %d (serialized monotone counts)",
				i, p.DoneShards, i+1)
		}
		if i > 0 && p.DoneJobs <= seen[i-1].DoneJobs {
			t.Fatalf("event %d: DoneJobs not monotone: %d after %d",
				i, p.DoneJobs, seen[i-1].DoneJobs)
		}
	}
	if last := seen[len(seen)-1]; last.DoneJobs != len(jobs) {
		t.Fatalf("final DoneJobs=%d, want %d", last.DoneJobs, len(jobs))
	}
}

// TestRunSummaryWithProgressMatchesPlainRun is the invariant the service
// depends on: streaming partial snapshots must not perturb the final
// shard-ordered reduction, and the last snapshot must equal the final
// summary exactly.
func TestRunSummaryWithProgressMatchesPlainRun(t *testing.T) {
	jobs := testJobs(t, 10)
	want, err := RunSummary(jobs, Options{Workers: 4, Shards: 5}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu        sync.Mutex
		snapshots []*Summary
	)
	got, err := RunSummaryWithProgress(jobs, Options{Workers: 4, Shards: 5}, SummaryConfig{},
		func(partial *Summary, p Progress) {
			mu.Lock()
			snapshots = append(snapshots, partial)
			mu.Unlock()
		})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("progress run diverged from plain run:\n%s\nvs\n%s", got, want)
	}
	if len(snapshots) != 5 {
		t.Fatalf("got %d snapshots, want 5", len(snapshots))
	}
	for i, s := range snapshots {
		if s.Jobs == 0 || s.Jobs > int64(len(jobs)) {
			t.Fatalf("snapshot %d folded %d jobs", i, s.Jobs)
		}
	}
	last := snapshots[len(snapshots)-1]
	if !reflect.DeepEqual(last, want) {
		t.Fatalf("final snapshot differs from final summary:\n%s\nvs\n%s", last, want)
	}
}

// TestCancelMidShard closes the cancel channel while a shard is mid-flight
// (a job's Source blocks until cancellation is requested) and expects
// ErrCanceled: the in-flight job finishes, the next one never starts.
func TestCancelMidShard(t *testing.T) {
	jobs := testJobs(t, 4)
	cancel := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	inner := jobs[1].Source
	jobs[1].Source = func(seed int64) trace.Source {
		once.Do(func() { close(entered) })
		<-cancel
		return inner(seed)
	}
	go func() {
		<-entered
		close(cancel)
	}()
	_, err := RunSummary(jobs, Options{Workers: 1, Shards: 1, Cancel: cancel}, SummaryConfig{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

// TestCancelBeforeStart rejects the whole run when the channel is already
// closed: no job ever executes.
func TestCancelBeforeStart(t *testing.T) {
	jobs := testJobs(t, 4)
	ran := false
	jobs[0].Source = func(seed int64) trace.Source {
		ran = true
		return testCohort(1).Jobs(power.Verizon3G, []Scheme{MakeIdleScheme()})[0].Source(seed)
	}
	cancel := make(chan struct{})
	close(cancel)
	_, err := RunSummary(jobs, Options{Workers: 2, Cancel: cancel}, SummaryConfig{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("a job ran despite pre-closed cancel channel")
	}
}
