package fleet

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// countingSource wraps a Budget and records the high-water mark of
// outstanding tokens, so tests can prove worker spawning respects the
// budget.
type countingSource struct {
	inner       *Budget
	outstanding atomic.Int64
	peak        atomic.Int64
	acquires    atomic.Int64
}

func (c *countingSource) TryAcquire() bool {
	if !c.inner.TryAcquire() {
		return false
	}
	c.acquires.Add(1)
	n := c.outstanding.Add(1)
	for {
		p := c.peak.Load()
		if n <= p || c.peak.CompareAndSwap(p, n) {
			return true
		}
	}
}

func (c *countingSource) Release() {
	c.outstanding.Add(-1)
	c.inner.Release()
}

// TestBudgetSemantics pins the counting-semaphore contract: capacity
// tokens exactly, non-blocking TryAcquire, Acquire honoring cancel, and a
// panic on an unmatched Release.
func TestBudgetSemantics(t *testing.T) {
	b := NewBudget(2)
	if b.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", b.Cap())
	}
	if !b.TryAcquire() || !b.TryAcquire() {
		t.Fatal("fresh budget must hold its capacity in tokens")
	}
	if b.TryAcquire() {
		t.Fatal("TryAcquire succeeded past capacity")
	}
	canceled := make(chan struct{})
	close(canceled)
	if b.Acquire(canceled) {
		t.Fatal("Acquire succeeded on a closed cancel channel with no tokens")
	}
	b.Release()
	if !b.Acquire(nil) {
		t.Fatal("Acquire failed with a token free")
	}
	b.Release()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched Release did not panic")
		}
	}()
	b.Release()
}

// TestBudgetedRunMatchesUnbudgeted is the budget half of the determinism
// guarantee: a run whose extra workers are gated (and mostly refused) by a
// near-empty budget folds the exact same aggregate as an unconstrained
// run — the budget throttles goroutines, never results. The counting
// wrapper proves the gate was honored: outstanding budgeted workers never
// exceeded the budget's capacity, and every acquire was released.
func TestBudgetedRunMatchesUnbudgeted(t *testing.T) {
	jobs := testJobs(t, 12)
	want, err := RunSummary(jobs, Options{Workers: 8, Shards: 8}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tokens := range []int{1, 2, 8} {
		src := &countingSource{inner: NewBudget(tokens)}
		got, err := RunSummary(jobs, Options{Workers: 8, Shards: 8, Budget: src}, SummaryConfig{})
		if err != nil {
			t.Fatalf("tokens=%d: %v", tokens, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("tokens=%d: budgeted aggregate differs from unbudgeted", tokens)
		}
		if peak := src.peak.Load(); peak > int64(tokens) {
			t.Fatalf("tokens=%d: %d budgeted workers outstanding at peak", tokens, peak)
		}
		if n := src.outstanding.Load(); n != 0 {
			t.Fatalf("tokens=%d: %d tokens leaked", tokens, n)
		}
	}
}

// TestBudgetAcquireBlocksUntilRelease covers the blocking path the cell
// dispatcher uses: Acquire parks until another holder releases.
func TestBudgetAcquireBlocksUntilRelease(t *testing.T) {
	b := NewBudget(1)
	if !b.TryAcquire() {
		t.Fatal("TryAcquire failed on fresh budget")
	}
	var wg sync.WaitGroup
	wg.Add(1)
	acquired := make(chan struct{})
	go func() {
		defer wg.Done()
		if b.Acquire(nil) {
			close(acquired)
			b.Release()
		}
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire returned with no token free")
	default:
	}
	b.Release()
	wg.Wait()
	<-acquired
}

// TestSummaryAccumulatorSteadyStateAllocs pins the O(workers) accumulator
// property: a transient accumulator with Reset recycles merged-out shard
// partials, so a 64-shard single-worker run allocates at most two
// summaries (the merged prefix and one scratch) — not one per shard.
func TestSummaryAccumulatorSteadyStateAllocs(t *testing.T) {
	jobs := testJobs(t, 16)
	acc := SummaryAccumulator(SummaryConfig{})
	var news atomic.Int64
	inner := acc.New
	acc.New = func() *Summary {
		news.Add(1)
		return inner()
	}
	got, err := Run(jobs, Options{Workers: 1, Shards: 16}, acc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Jobs != int64(len(jobs)) {
		t.Fatalf("folded %d jobs, want %d", got.Jobs, len(jobs))
	}
	if n := news.Load(); n > 2 {
		t.Fatalf("16 shards on 1 worker allocated %d summaries, want <= 2", n)
	}
	// The recycled result must still match a fresh-accumulator run exactly.
	want, err := RunSummary(jobs, Options{Workers: 1, Shards: 16}, SummaryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recycled accumulators changed the aggregate")
	}
}
