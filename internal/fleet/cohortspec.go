package fleet

import (
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/workload"
)

// CohortSpec is the declarative form of a Cohort: a registered cohort
// family (or alias) with parameter overrides and an optional summary
// label. It is one axis value of the service's grid jobs and serializes
// over the /v1 HTTP API. The root seed is deliberately not part of the
// spec — it is job-level state shared by every grid cell, so the same
// cohort axis replays the identical population in every cell.
type CohortSpec struct {
	// Label keys the cohort in grid cells; empty derives the registry
	// label (canonical name plus non-default parameters, e.g.
	// "study-3g(users=1000)").
	Label string `json:"label,omitempty"`
	// Name is the cohort family or alias name.
	Name string `json:"name"`
	// Params overrides schema parameters (typed values, JSON values, or
	// canonical strings).
	Params map[string]any `json:"params,omitempty"`
}

// Spec returns the underlying spec value.
func (cs CohortSpec) Spec() spec.Spec { return spec.Spec{Name: cs.Name, Params: cs.Params} }

// ResolvedLabel returns the cohort's axis label: the explicit Label, or
// the registry-derived one.
func (cs CohortSpec) ResolvedLabel(r *workload.CohortRegistry) (string, error) {
	if cs.Label != "" {
		return cs.Label, nil
	}
	return r.Label(cs.Spec())
}

// Canonical returns the byte-stable encoding of the cohort axis value —
// "label|canonicalCohort" — which feeds the v4 job fingerprint: stable
// across alias spelling, param-map ordering and omitted defaults; changed
// by any parameter value or label change.
func (cs CohortSpec) Canonical(r *workload.CohortRegistry) (string, error) {
	label, err := cs.ResolvedLabel(r)
	if err != nil {
		return "", err
	}
	canon, err := r.Canonical(cs.Spec())
	if err != nil {
		return "", err
	}
	return label + "|" + canon, nil
}

// CohortFromSpec resolves a CohortSpec against a registry into a runnable
// Cohort rooted at seed: parameters are coerced and bounds-checked eagerly
// (so typos and out-of-range populations fail before a fleet spins up) and
// the resolved plan's mixes, duration, diurnal mask and seed stride carry
// over. opts applies to every replay of the cohort (burst gap, recording).
func CohortFromSpec(r *workload.CohortRegistry, cs CohortSpec, seed int64, opts *sim.Options) (Cohort, error) {
	plan, err := r.Plan(cs.Spec())
	if err != nil {
		return Cohort{}, err
	}
	return cohortFromPlan(plan, seed, opts), nil
}

func cohortFromPlan(plan workload.CohortPlan, seed int64, opts *sim.Options) Cohort {
	return Cohort{
		Users:      plan.Users,
		Seed:       seed,
		Duration:   plan.Duration,
		Diurnal:    plan.Diurnal,
		Mixes:      plan.Mixes,
		SeedStride: plan.SeedStride,
		Opts:       opts,
	}
}

// ResolvedCohort is one resolution pass over a cohort axis value: the
// runnable Cohort, the axis label, and the axis canonical encoding
// ("label|canonicalCohort") — each byte-identical to CohortFromSpec,
// ResolvedLabel and Canonical.
type ResolvedCohort struct {
	Cohort    Cohort
	Label     string
	Canonical string
}

// ResolveCohort resolves the axis value once and returns the full bundle.
func ResolveCohort(r *workload.CohortRegistry, cs CohortSpec, seed int64, opts *sim.Options) (ResolvedCohort, error) {
	res, err := r.Resolution(cs.Spec())
	if err != nil {
		return ResolvedCohort{}, err
	}
	label := cs.Label
	if label == "" {
		label = res.Label
	}
	c := cohortFromPlan(res.Plan, seed, opts)
	// The cohort canonical determines the packet streams up to the seed,
	// which is exactly the trace cache's key contract — every cell of this
	// cohort replays the same memoized traffic.
	c.CacheKeyBase = label + "|" + res.Canonical
	// Every field Prepare derives from is final here, so the per-mix
	// source constructors (and small cohorts' per-user cache keys) are
	// built once; every grid cell's Jobs expansion (cells copy the Cohort
	// value) shares them.
	c.Prepare()
	return ResolvedCohort{
		Cohort:    c,
		Label:     label,
		Canonical: c.CacheKeyBase,
	}, nil
}

// LegacyCohortSpec maps the flat legacy population fields (a bare Users
// int plus job-level duration and diurnal flags) to a CohortSpec on the
// historical default family — the Verizon 3G study mixes — so flat
// payloads and their explicit cohort form resolve, encode and fingerprint
// identically.
func LegacyCohortSpec(users int, duration string, diurnal bool) CohortSpec {
	return CohortSpec{
		Name: "study-3g",
		Params: map[string]any{
			"users":    users,
			"duration": duration,
			"diurnal":  diurnal,
		},
	}
}
