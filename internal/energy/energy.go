// Package energy implements the paper's energy mathematics (§4.1, Fig. 5):
// the piecewise inter-packet energy function E(t), tail energy, and the
// demotion threshold t_threshold at which triggering fast dormancy becomes
// cheaper than riding the inactivity timers.
//
// All functions take a power.Profile and express energy in joules. They are
// pure functions of their inputs — the stateful radio accounting lives in
// internal/rrc and internal/sim.
package energy

import (
	"math"
	"time"

	"repro/internal/power"
)

// TailJ returns the energy spent keeping the radio in its timer-controlled
// tail for a duration d after the last packet: Active-tail power for up to
// t1 seconds, then high-power-idle power for up to t2 more, then nothing.
// This is the integral of the Fig. 5 power profile from 0 to d, excluding
// any switch energy.
func TailJ(p *power.Profile, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	t1 := p.T1.Seconds()
	t2 := p.T2.Seconds()
	t := d.Seconds()

	inT1 := math.Min(t, t1)
	e := inT1 * p.T1MW / 1000
	if t > t1 {
		inT2 := math.Min(t-t1, t2)
		e += inT2 * p.T2MW / 1000
	}
	return e
}

// GapJ is the paper's E(t): the energy the status-quo RRC protocol consumes
// between two packets separated by t. For t <= t1+t2 it is pure tail energy;
// beyond that, the tail saturates and the device additionally pays Eswitch
// for the demotion to Idle and the later promotion back to Active.
func GapJ(p *power.Profile, t time.Duration) float64 {
	if t <= p.Tail() {
		return TailJ(p, t)
	}
	return TailJ(p, p.Tail()) + p.SwitchJ()
}

// Threshold computes t_threshold (§4.1): the smallest gap for which
// demoting the radio immediately after a packet (paying Eswitch) beats
// keeping it in the tail (paying E(t)). Because E is monotonically
// non-decreasing, the threshold is unique.
//
// Piecewise inversion of E(t) = Eswitch:
//
//	Eswitch <= t1*Pt1            -> t* = Eswitch/Pt1
//	Eswitch <= t1*Pt1 + t2*Pt2   -> t* = t1 + (Eswitch - t1*Pt1)/Pt2
//	otherwise                    -> t* = t1 + t2 (past which E jumps by Eswitch)
func Threshold(p *power.Profile) time.Duration {
	eswitch := p.SwitchJ()
	t1 := p.T1.Seconds()
	t2 := p.T2.Seconds()
	pt1 := p.T1MW / 1000
	pt2 := p.T2MW / 1000

	if eswitch <= t1*pt1 {
		return secs(eswitch / pt1)
	}
	if t2 > 0 && eswitch <= t1*pt1+t2*pt2 {
		return secs(t1 + (eswitch-t1*pt1)/pt2)
	}
	return p.Tail()
}

// TxJ returns the data energy for one packet: its modelled transmission time
// at the profile's link rate multiplied by the direction's bulk-transfer
// power (§6.1's "energy consumed per second" model).
func TxJ(p *power.Profile, size int, uplink bool) float64 {
	return p.TxTime(size, uplink).Seconds() * p.TxPowerMW(uplink) / 1000
}

// Breakdown splits the energy of a radio period into the categories of
// Fig. 1. Values are joules.
type Breakdown struct {
	DataJ   float64 // transmitting or receiving packets
	T1TailJ float64 // idling in the Active/DCH tail ("DCH Timer")
	T2TailJ float64 // idling in the high-power-idle/FACH tail ("FACH Timer")
	SwitchJ float64 // demotion + promotion signaling ("State Switch")
}

// Total returns the sum of all categories.
func (b Breakdown) Total() float64 {
	return b.DataJ + b.T1TailJ + b.T2TailJ + b.SwitchJ
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.DataJ += o.DataJ
	b.T1TailJ += o.T1TailJ
	b.T2TailJ += o.T2TailJ
	b.SwitchJ += o.SwitchJ
}

// Fractions returns each category as a fraction of the total (all zero for
// an empty breakdown).
func (b Breakdown) Fractions() (data, t1, t2, sw float64) {
	tot := b.Total()
	if tot == 0 {
		return 0, 0, 0, 0
	}
	return b.DataJ / tot, b.T1TailJ / tot, b.T2TailJ / tot, b.SwitchJ / tot
}

// TailBreakdown splits tail time d into the T1 and T2 stages, returning the
// energy of each (the same split TailJ integrates).
func TailBreakdown(p *power.Profile, d time.Duration) (t1J, t2J float64) {
	if d <= 0 {
		return 0, 0
	}
	t1 := p.T1.Seconds()
	t2 := p.T2.Seconds()
	t := d.Seconds()
	t1J = math.Min(t, t1) * p.T1MW / 1000
	if t > t1 {
		t2J = math.Min(t-t1, t2) * p.T2MW / 1000
	}
	return t1J, t2J
}

func secs(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
