package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
)

// testProfile is a round-number profile that makes the piecewise arithmetic
// easy to verify by hand: Pt1 = 1000 mW = 1 W, Pt2 = 500 mW, t1 = 4 s,
// t2 = 8 s.
func testProfile() power.Profile {
	return power.Profile{
		Name:             "test",
		Tech:             power.Tech3G,
		SendMW:           2000,
		RecvMW:           1000,
		T1MW:             1000,
		T2MW:             500,
		T1:               4 * time.Second,
		T2:               8 * time.Second,
		PromotionDelay:   time.Second,
		PromotionMW:      1000,
		RadioOffJ:        1.0,
		DormancyFraction: 0.5,
		UplinkMbps:       1,
		DownlinkMbps:     8,
	}
}

func TestTailJPiecewise(t *testing.T) {
	p := testProfile()
	cases := []struct {
		d    time.Duration
		want float64
	}{
		{0, 0},
		{-time.Second, 0},
		{2 * time.Second, 2.0},        // inside t1 at 1 W
		{4 * time.Second, 4.0},        // all of t1
		{6 * time.Second, 4.0 + 1.0},  // t1 + 2 s at 0.5 W
		{12 * time.Second, 4.0 + 4.0}, // full tail
		{20 * time.Second, 4.0 + 4.0}, // saturated
	}
	for _, c := range cases {
		if got := TailJ(&p, c.d); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TailJ(%v) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestGapJ(t *testing.T) {
	p := testProfile()
	// Inside the tail: same as TailJ.
	if got, want := GapJ(&p, 3*time.Second), 3.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("GapJ(3s) = %v, want %v", got, want)
	}
	// Beyond the tail: saturated tail + Eswitch.
	want := 8.0 + p.SwitchJ()
	if got := GapJ(&p, time.Minute); math.Abs(got-want) > 1e-9 {
		t.Fatalf("GapJ(1m) = %v, want %v", got, want)
	}
}

func TestGapJMonotone(t *testing.T) {
	p := testProfile()
	prev := -1.0
	for d := time.Duration(0); d <= 30*time.Second; d += 100 * time.Millisecond {
		e := GapJ(&p, d)
		if e < prev-1e-12 {
			t.Fatalf("E(t) decreased at %v: %v < %v", d, e, prev)
		}
		prev = e
	}
}

func TestThresholdInT1Region(t *testing.T) {
	p := testProfile()
	// Eswitch = 0.5*1.0 + 1.0 = 1.5 J; at 1 W in the T1 region the
	// threshold is 1.5 s, inside t1 = 4 s.
	want := 1500 * time.Millisecond
	got := Threshold(&p)
	if d := got - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("Threshold = %v, want %v", got, want)
	}
	// Defining property: E(t* + eps) > Eswitch >= E(t* - eps).
	eps := 10 * time.Millisecond
	if GapJ(&p, got+eps) <= p.SwitchJ() {
		t.Fatal("E just above threshold should exceed Eswitch")
	}
	if GapJ(&p, got-eps) > p.SwitchJ() {
		t.Fatal("E just below threshold should not exceed Eswitch")
	}
}

func TestThresholdInT2Region(t *testing.T) {
	p := testProfile()
	p.RadioOffJ = 8.0 // Eswitch = 4 + 1 = 5 J > t1*Pt1 = 4 J
	// Remaining 1 J at 0.5 W = 2 s into t2: threshold = 6 s.
	want := 6 * time.Second
	got := Threshold(&p)
	if d := got - want; d > time.Millisecond || d < -time.Millisecond {
		t.Fatalf("Threshold = %v, want %v", got, want)
	}
}

func TestThresholdSaturated(t *testing.T) {
	p := testProfile()
	p.RadioOffJ = 100 // Eswitch far exceeds the whole tail energy (8 J)
	if got := Threshold(&p); got != p.Tail() {
		t.Fatalf("Threshold = %v, want tail %v", got, p.Tail())
	}
}

func TestThresholdLTE(t *testing.T) {
	p := power.VerizonLTE
	th := Threshold(&p)
	if th <= 0 || th > p.Tail() {
		t.Fatalf("LTE threshold out of range: %v", th)
	}
	// Known value: Eswitch/Pt1 with Eswitch = 0.5*1.33 + 1.325*0.6 = 1.46 J,
	// Pt1 = 1.325 W -> ~1.1 s.
	want := (0.5*1.33 + 1.325*0.6) / 1.325
	if math.Abs(th.Seconds()-want) > 0.01 {
		t.Fatalf("LTE threshold = %v s, want %.3f s", th.Seconds(), want)
	}
}

func TestThresholdATTRoughlyPaperValue(t *testing.T) {
	// §4.1: on AT&T the paper computes t_threshold ~ 1.2 s. Our Eswitch is
	// modelled, not measured, so allow a loose band — same order, < t1.
	p := power.ATTHSPAPlus
	th := Threshold(&p)
	if th < 500*time.Millisecond || th > 4*time.Second {
		t.Fatalf("AT&T threshold = %v, want around 1-2 s", th)
	}
}

func TestTxJ(t *testing.T) {
	p := testProfile()
	// 125000 B = 1 Mb at 1 Mbps uplink = 1 s at 2 W = 2 J.
	if got := TxJ(&p, 125000, true); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("TxJ uplink = %v, want 2", got)
	}
	// Downlink at 8 Mbps = 0.125 s at 1 W = 0.125 J.
	if got := TxJ(&p, 125000, false); math.Abs(got-0.125) > 1e-9 {
		t.Fatalf("TxJ downlink = %v, want 0.125", got)
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{DataJ: 1, T1TailJ: 2, T2TailJ: 3, SwitchJ: 4})
	b.Add(Breakdown{DataJ: 1})
	if b.Total() != 11 {
		t.Fatalf("Total = %v", b.Total())
	}
	data, t1, t2, sw := b.Fractions()
	if math.Abs(data-2.0/11) > 1e-9 || math.Abs(t1-2.0/11) > 1e-9 ||
		math.Abs(t2-3.0/11) > 1e-9 || math.Abs(sw-4.0/11) > 1e-9 {
		t.Fatalf("Fractions = %v %v %v %v", data, t1, t2, sw)
	}
}

func TestBreakdownEmptyFractions(t *testing.T) {
	var b Breakdown
	d, a, c, s := b.Fractions()
	if d != 0 || a != 0 || c != 0 || s != 0 {
		t.Fatal("empty breakdown fractions should be zero")
	}
}

func TestTailBreakdownMatchesTailJ(t *testing.T) {
	p := testProfile()
	for _, d := range []time.Duration{0, time.Second, 5 * time.Second, 30 * time.Second} {
		a, b := TailBreakdown(&p, d)
		if got, want := a+b, TailJ(&p, d); math.Abs(got-want) > 1e-9 {
			t.Errorf("TailBreakdown(%v) sums to %v, TailJ = %v", d, got, want)
		}
	}
}

func TestPropertyThresholdIsCrossover(t *testing.T) {
	// For random valid profiles, E(t) < Eswitch for t well below the
	// threshold and E(t) >= Eswitch at or above it.
	f := func(radioOffRaw, t1Raw, t2Raw uint8) bool {
		p := testProfile()
		p.RadioOffJ = 0.1 + float64(radioOffRaw)/16
		p.T1 = time.Duration(1+int(t1Raw)%10) * time.Second
		p.T2 = time.Duration(int(t2Raw)%10) * time.Second
		if p.T2 == 0 {
			p.T2MW = 0
		}
		th := Threshold(&p)
		if th <= 0 {
			return false
		}
		below := th - th/10
		if below > 0 && GapJ(&p, below) > p.SwitchJ()+1e-9 {
			return false
		}
		// At any point beyond the threshold, keeping the radio on (or the
		// status quo behaviour) is at least as expensive as switching.
		above := th + th/10 + time.Millisecond
		return GapJ(&p, above) >= p.SwitchJ()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTailNeverExceedsFullTail(t *testing.T) {
	f := func(dRaw uint16) bool {
		p := testProfile()
		d := time.Duration(dRaw) * time.Millisecond * 10
		full := TailJ(&p, p.Tail())
		return TailJ(&p, d) <= full+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
