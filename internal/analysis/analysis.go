// Package analysis assembles rrclint, the repo's determinism-aware static
// analyzer suite. Every byte-identity invariant this reproduction depends
// on — sorted map keys before encoding, no ambient clocks or global RNG in
// replay paths, test seams unreachable from production code, the documented
// mutex lock order, scratch buffers that never escape — is enforced at
// compile time by a custom go/analysis pass registered here and run via
// `go vet -vettool` (see scripts/lint.sh and cmd/rrclint).
//
// Control comments use the shared //rrclint: prefix; see
// internal/analysis/internal/directive for the marker/suppression split and
// docs/architecture.md for the per-analyzer contract.
package analysis

import (
	goanalysis "golang.org/x/tools/go/analysis"

	"repro/internal/analysis/detrange"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nowallclock"
	"repro/internal/analysis/scratchescape"
	"repro/internal/analysis/testseam"
)

// All returns every rrclint analyzer, in stable name order. cmd/rrclint
// registers exactly this list; a guard test asserts the list covers every
// analyzer package in this directory.
func All() []*goanalysis.Analyzer {
	return []*goanalysis.Analyzer{
		detrange.Analyzer,
		lockorder.Analyzer,
		nowallclock.Analyzer,
		scratchescape.Analyzer,
		testseam.Analyzer,
	}
}
