// Package detrange flags `for range` over maps in the deterministic
// fingerprint/codec/merge/render paths. Go randomizes map iteration order,
// so a map range that feeds an encoder, a hash, a merge or a rendered table
// is a byte-identity bug waiting for a different schedule.
//
// A map range inside the scoped packages is accepted only when
//
//   - it is the benign collect-keys idiom — the loop body is exactly
//     `keys = append(keys, k)` with the keys sorted before use — or
//   - the loop carries an explicit `//rrclint:ordered <reason>` suppression
//     on its own line or the line above, asserting that iteration order
//     cannot reach any encoded byte.
//
// Everything else is reported. Test files are exempt.
package detrange

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/internal/directive"
	"repro/internal/analysis/internal/scope"
)

// DefaultScope is the set of packages whose map iteration can reach
// fingerprints, codecs, merges or rendered results.
const DefaultScope = "internal/spec,internal/jobs,internal/fleet,internal/store,internal/report"

var scopeFlag string

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag nondeterministic map iteration in fingerprint/codec/merge/render paths\n\n" +
		"Map ranges in the scoped packages must either collect keys for sorting or carry\n" +
		"a //rrclint:ordered <reason> suppression.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "scope", DefaultScope,
		"comma-separated import-path substrings the analyzer applies to (\"all\" for every package)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass.Pkg.Path(), scopeFlag) {
		return nil, nil
	}
	dirs := directive.Parse(pass)
	for _, f := range pass.Files {
		if dirs.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv := pass.TypesInfo.TypeOf(rs.X)
			if tv == nil {
				return true
			}
			if _, isMap := tv.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectKeys(pass, rs) {
				return true
			}
			if ok, bare := dirs.Suppressed(rs.Pos(), "ordered"); ok {
				return true
			} else if bare != nil {
				pass.Reportf(bare.Pos, "//rrclint:ordered needs a reason explaining why iteration order is harmless")
				return true
			}
			pass.Reportf(rs.Pos(), "range over map %s in a deterministic path: iterate sorted keys, or annotate //rrclint:ordered <reason>",
				types.TypeString(tv, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil, nil
}

// isCollectKeys recognizes the sorted-iteration prologue
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//
// — a key-only range whose body is a single self-append of the key. The
// subsequent sort makes the real iteration deterministic, so the range
// itself is harmless.
func isCollectKeys(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if rs.Value != nil || rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, ok := rs.Key.(*ast.Ident)
	if !ok {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if obj, ok := pass.TypesInfo.Uses[fn]; !ok || obj != types.Universe.Lookup("append") {
		return false
	}
	// append(dst, k) where dst is the assignment target and k the range key.
	if !sameObject(pass, as.Lhs[0], call.Args[0]) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	if !ok {
		return false
	}
	ko := pass.TypesInfo.Defs[key]
	ao := pass.TypesInfo.Uses[arg]
	return ko != nil && ko == ao
}

func sameObject(pass *analysis.Pass, a, b ast.Expr) bool {
	oa := exprObject(pass, a)
	return oa != nil && oa == exprObject(pass, b)
}

func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
