// Test files are exempt: determinism lint polices shipped encode paths,
// not assertions.
package spec

func rangeFreely(m map[string]int) (total int) {
	for _, v := range m {
		total += v
	}
	return total
}
