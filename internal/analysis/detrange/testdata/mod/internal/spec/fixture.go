// Package spec is a detrange fixture: its import path contains
// "internal/spec", putting it inside the analyzer's default scope.
package spec

import "sort"

// Flagged: a map range feeding appended output — iteration order reaches
// the result bytes.
func EncodeUnsorted(m map[string]int) []string {
	var out []string
	for k, v := range m { // want "range over map"
		_ = v
		out = append(out, k)
	}
	return out
}

// Accepted: the collect-keys idiom — key-only range whose body is a single
// self-append; the sort below makes the effective iteration deterministic.
func EncodeSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Accepted: an explicit suppression with a reason.
func CountAll(m map[string]int) int {
	n := 0
	//rrclint:ordered order-independent count, no byte of output depends on iteration order
	for range m {
		n++
	}
	return n
}

// Flagged: a suppression without a reason does not suppress.
func DrainBare(m map[string]int) {
	//rrclint:ordered // want "needs a reason"
	for k := range m {
		_ = k
	}
}

// Not flagged: ranging a slice is always fine.
func Slices(s []string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
