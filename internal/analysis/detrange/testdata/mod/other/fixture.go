// Package other is outside detrange's default scope: map iteration here is
// not reported even when it reaches output.
package other

func Unscoped(m map[string]int) []string {
	var out []string
	for k := range m {
		_ = k
		out = append(out, "x")
	}
	return out
}
