module scrfix

go 1.22
