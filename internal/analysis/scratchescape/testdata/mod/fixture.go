// Package scr is a scratchescape fixture: exported functions must not
// return aliases of //rrclint:scratch memory.
package scr

type Engine struct {
	merged  []byte //rrclint:scratch
	decided []int  //rrclint:scratch
	out     []byte
}

// Flagged: handing the scratch buffer itself to the caller.
func (e *Engine) Leak() []byte {
	return e.merged // want "alias of reusable scratch merged"
}

// Flagged: a reslice still aliases the backing array.
func (e *Engine) LeakSlice() []byte {
	return e.merged[:0] // want "alias of reusable scratch merged"
}

// Flagged: the address of scratch escapes the same way.
func (e *Engine) LeakAddr() *[]int {
	return &e.decided // want "alias of reusable scratch decided"
}

// Accepted: returning a copy.
func (e *Engine) Copy() []byte {
	out := make([]byte, len(e.merged))
	copy(out, e.merged)
	return out
}

// Accepted: non-scratch fields are the caller-visible surface.
func (e *Engine) Out() []byte {
	return e.out
}

// Accepted: unexported functions are intra-package plumbing; the exported
// surface is where aliases become hazards.
func (e *Engine) reuse() []byte {
	return e.merged
}

// Accepted: an element read is a value copy, not an alias.
func (e *Engine) First() int {
	return e.decided[0]
}

// Accepted: an explicit suppression with a reason.
func (e *Engine) Transient() []byte {
	//rrclint:escapeok documented transient view; contract requires use before the next Run
	return e.merged
}

// Flagged: a bare suppression does not suppress.
func (e *Engine) TransientBare() []byte {
	//rrclint:escapeok // want "needs a reason"
	return e.merged
}
