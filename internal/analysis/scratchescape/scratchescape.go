// Package scratchescape flags exported functions that return aliases of
// pooled or reusable scratch memory.
//
// The hot paths recycle aggressively: sim.Engine keeps per-run scratch
// buffers, RunInto overwrites caller-owned Results, fleet accumulators
// recycle merged-out partials through a free list (Transient). A scratch
// buffer that leaks through an exported return value becomes aliased state
// the next Reset/Run silently clobbers — a classic heisenbug. Scratch
// declarations are marked
//
//	merged trace.Trace //rrclint:scratch
//
// and this analyzer reports any exported function or method in non-test
// code whose return statement yields a marked object directly, its address,
// or a reslice of it. Returning a copy is always fine; a provably safe
// alias return carries //rrclint:escapeok <reason>.
package scratchescape

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/internal/directive"
)

// Analyzer is the scratchescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchescape",
	Doc: "exported functions must not return aliases of //rrclint:scratch memory\n\n" +
		"Reusable scratch handed out through an exported API will be clobbered by the\n" +
		"next run; return a copy or annotate //rrclint:escapeok <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Parse(pass)
	marked := markedObjects(pass, dirs)
	if len(marked) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if dirs.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkReturns(pass, dirs, marked, fd)
		}
	}
	return nil, nil
}

// checkReturns inspects the return statements that belong to fd itself
// (not to nested function literals, which are not part of the exported
// surface).
func checkReturns(pass *analysis.Pass, dirs *directive.Map, marked map[types.Object]bool, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				obj := aliasRoot(pass, res)
				if obj == nil || !marked[obj] {
					continue
				}
				if ok, bare := dirs.Suppressed(n.Pos(), "escapeok"); ok {
					continue
				} else if bare != nil {
					pass.Reportf(bare.Pos, "//rrclint:escapeok needs a reason")
					continue
				}
				pass.Reportf(n.Pos(), "exported %s returns an alias of reusable scratch %s; the next run will clobber it — return a copy or annotate //rrclint:escapeok <reason>",
					fd.Name.Name, obj.Name())
			}
		}
		return true
	})
}

// aliasRoot walks an expression down to the object it aliases: the object
// itself, its address, or a reslice of it. Index expressions are treated as
// element copies and not reported.
func aliasRoot(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if x.Op.String() != "&" {
				return nil
			}
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			return pass.TypesInfo.Uses[x.Sel]
		default:
			return nil
		}
	}
}

func markedObjects(pass *analysis.Pass, dirs *directive.Map) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	note := func(id *ast.Ident) {
		if id == nil {
			return
		}
		if _, ok := dirs.Marker(id.Pos(), "scratch"); !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			marked[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				for _, name := range n.Names {
					note(name)
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					note(name)
				}
			}
			return true
		})
	}
	return marked
}
