// Package nowallclock forbids ambient nondeterminism — wall-clock reads,
// the global math/rand state, and environment lookups — inside the replay
// and workload-generation packages. Same seed plus any schedule must give
// byte-identical results, so every clock and every random stream has to
// flow in as an explicit parameter (a simulated timestamp, a seeded
// *rand.Rand), never be sampled from the process.
//
// Banned in scoped, non-test files:
//
//   - time.Now, time.Since, time.Until
//   - package-level math/rand and math/rand/v2 functions that touch the
//     shared global generator (rand.Int, rand.Intn, rand.Float64, rand.Perm,
//     rand.Shuffle, rand.Seed, ...). Constructors that build an explicitly
//     seeded generator (rand.New, rand.NewSource, rand.NewZipf, rand.NewPCG,
//     rand.NewChaCha8) stay legal.
//   - os.Getenv, os.LookupEnv, os.Environ
//
// A site that genuinely needs ambient state (none exists today) must carry
// `//rrclint:wallclock <reason>`.
package nowallclock

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/internal/directive"
	"repro/internal/analysis/internal/scope"
)

// DefaultScope is the set of packages that replay traces or generate
// workloads and therefore must be schedule- and wall-clock-independent.
const DefaultScope = "internal/sim,internal/fleet,internal/trace,internal/workload"

var scopeFlag string

// Analyzer is the nowallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nowallclock",
	Doc: "forbid wall clocks, global math/rand and env reads in replay/generation paths\n\n" +
		"Seeds and clocks must flow in as parameters; suppress a deliberate exception\n" +
		"with //rrclint:wallclock <reason>.",
	Run: run,
}

func init() {
	Analyzer.Flags.StringVar(&scopeFlag, "scope", DefaultScope,
		"comma-separated import-path substrings the analyzer applies to (\"all\" for every package)")
}

// allowedRandConstructors build explicitly seeded generators and are the
// sanctioned way to obtain randomness in replay paths.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !scope.Match(pass.Pkg.Path(), scopeFlag) {
		return nil, nil
	}
	dirs := directive.Parse(pass)
	for _, f := range pass.Files {
		if dirs.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil {
				return true
			}
			what := banned(fn)
			if what == "" {
				return true
			}
			if ok, bare := dirs.Suppressed(call.Pos(), "wallclock"); ok {
				return true
			} else if bare != nil {
				pass.Reportf(bare.Pos, "//rrclint:wallclock needs a reason explaining the ambient dependency")
				return true
			}
			pass.Reportf(call.Pos(), "%s in a replay/generation path: %s; pass it in as a parameter or annotate //rrclint:wallclock <reason>",
				fn.FullName(), what)
			return true
		})
	}
	return nil, nil
}

// calleeFunc resolves the called package-level function, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil // methods (e.g. (*rand.Rand).Intn) are always fine
	}
	return fn
}

// banned classifies a package-level function, returning a short description
// of the ambient state it reads, or "" if it is allowed.
func banned(fn *types.Func) string {
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "reads the wall clock"
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandConstructors[fn.Name()] {
			return "draws from the shared global generator"
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			return "reads the process environment"
		}
	}
	return ""
}
