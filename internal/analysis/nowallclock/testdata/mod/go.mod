module nwcfix

go 1.22
