// Package sim is a nowallclock fixture inside the default scope.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Flagged: ambient clock, environment and global-RNG reads in a replay
// path.
func Ambient() time.Duration {
	t := time.Now()                    // want "reads the wall clock"
	_ = os.Getenv("RRC_ENV")           // want "reads the process environment"
	_, _ = os.LookupEnv("X")           // want "reads the process environment"
	_ = rand.Intn(4)                   // want "shared global generator"
	rand.Shuffle(1, func(i, j int) {}) // want "shared global generator"
	return time.Since(t)               // want "reads the wall clock"
}

// Accepted: explicitly seeded generators and methods on them.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Accepted: an explicit suppression with a reason.
func Stamp() int64 {
	//rrclint:wallclock diagnostic log stamp, never folded into any replay result
	return time.Now().UnixNano()
}

// Flagged: a bare suppression does not suppress.
func StampBare() int64 {
	//rrclint:wallclock // want "needs a reason"
	return time.Now().UnixNano()
}
