// Test files may read clocks (timing assertions, bench setup).
package sim

import "time"

func elapsed(start time.Time) time.Duration { return time.Since(start) }
