// Package tool is outside nowallclock's scope: daemons and CLIs own the
// wall clock (job timestamps, graceful-shutdown deadlines).
package tool

import "time"

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Stamp() time.Time { return time.Now() }
