// Package lock is a lockorder fixture for //rrclint:lockafter checking.
package lock

import "sync"

type mgr struct {
	hookMu sync.Mutex
	mu     sync.Mutex //rrclint:lockafter hookMu
	n      int
}

// Accepted: the declared order — hookMu first, mu inside it.
func Declared(m *mgr) {
	m.hookMu.Lock()
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
	m.hookMu.Unlock()
}

// Flagged: acquiring hookMu while mu is held inverts the declaration.
func Inverted(m *mgr) {
	m.mu.Lock()
	m.hookMu.Lock() // want "inverts the declared order"
	m.hookMu.Unlock()
	m.mu.Unlock()
}

// Accepted: sequential acquisition — mu is released before hookMu.
func Sequential(m *mgr) {
	m.mu.Lock()
	m.n++
	m.mu.Unlock()
	m.hookMu.Lock()
	m.hookMu.Unlock()
}

// Accepted: a deferred unlock holds mu to the end, but taking only mu
// never violates an edge.
func Deferred(m *mgr) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Flagged: the deferred unlock means mu is still held at the hookMu
// acquisition.
func DeferredInverted(m *mgr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hookMu.Lock() // want "inverts the declared order"
	m.hookMu.Unlock()
}

// Accepted: an explicit suppression with a reason.
func InitPath(m *mgr) {
	m.mu.Lock()
	//rrclint:lockok constructor path, no other goroutine can hold hookMu yet
	m.hookMu.Lock()
	m.hookMu.Unlock()
	m.mu.Unlock()
}

// Local variables carry the same discipline as fields.
func Locals() {
	var first sync.Mutex
	var second sync.Mutex //rrclint:lockafter first
	second.Lock()
	first.Lock() // want "inverts the declared order"
	first.Unlock()
	second.Unlock()
}

// Closures are scanned independently with an empty held set: the declared
// order inside the literal is still enforced.
func Closure(m *mgr) func() {
	return func() {
		m.mu.Lock()
		m.hookMu.Lock() // want "inverts the declared order"
		m.hookMu.Unlock()
		m.mu.Unlock()
	}
}

// Flagged: a lockafter marker without a mutex name is a broken
// declaration.
type halfAnnotated struct {
	mu sync.Mutex //rrclint:lockafter // want "needs the name"
}
