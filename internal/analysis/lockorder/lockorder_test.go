package lockorder_test

import (
	"testing"

	"repro/internal/analysis/internal/atest"
)

func TestFixtures(t *testing.T) {
	atest.Run(t, "lockorder", "testdata/mod")
}
