// Package lockorder machine-checks the annotated mutex acquisition order.
//
// The fleet reduction path holds two locks with a documented discipline
// (hookMu is always acquired before mu — PR 8's "hookMu → mu"). That
// discipline becomes checkable by annotating the later lock's declaration:
//
//	hookMu sync.Mutex
//	mu     sync.Mutex //rrclint:lockafter hookMu
//
// meaning "mu is only ever acquired after hookMu"; equivalently, code
// holding mu must never acquire hookMu. The analyzer walks every function
// (and every function literal, each with an empty incoming lock set) in
// source order, tracking Lock/RLock and Unlock/RUnlock calls on named
// mutexes, and reports an acquisition of X while Y is held when Y is
// declared `lockafter X`. Deferred unlocks hold to the end of the scan.
//
// The check is a linear source-order approximation — it does not model
// branches or cross-function call graphs — so it enforces the local shape
// of the discipline, which is exactly where the PR 8 ordering lives. A
// knowingly safe violation of the letter carries //rrclint:lockok <reason>.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/internal/directive"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check //rrclint:lockafter mutex acquisition order declarations\n\n" +
		"`mu sync.Mutex //rrclint:lockafter other` means mu is acquired only while other\n" +
		"is (or could legally be) already held; acquiring other while holding mu is the\n" +
		"inversion this analyzer reports.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Parse(pass)
	after := annotations(pass, dirs)
	if len(after) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body != nil {
				scanBody(pass, dirs, after, body)
			}
			return true // nested literals are visited (and scanned) on their own
		})
	}
	return nil, nil
}

// annotations maps each annotated mutex object to the name of the mutex
// that must be acquired before it.
func annotations(pass *analysis.Pass, dirs *directive.Map) map[types.Object]string {
	after := make(map[types.Object]string)
	note := func(id *ast.Ident) {
		if id == nil {
			return
		}
		d, ok := dirs.Marker(id.Pos(), "lockafter")
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			return
		}
		if d.Arg == "" {
			pass.Reportf(d.Pos, "//rrclint:lockafter needs the name of the mutex acquired first")
			return
		}
		after[obj] = d.Arg
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				for _, name := range n.Names {
					note(name)
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					note(name)
				}
			}
			return true
		})
	}
	return after
}

// scanBody runs the linear source-order lock simulation over one function
// body, not descending into nested function literals (each gets its own
// scan with an empty held set).
func scanBody(pass *analysis.Pass, dirs *directive.Map, after map[types.Object]string, body *ast.BlockStmt) {
	held := make(map[types.Object]token.Pos) // mutex object -> Lock position
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			return false // deferred unlocks release past the end of the scan
		case *ast.CallExpr:
			obj, method := lockCall(pass, n)
			if obj == nil {
				return true
			}
			switch method {
			case "Lock", "RLock", "TryLock", "TryRLock":
				for h := range held {
					if after[h] == obj.Name() {
						if ok, bare := dirs.Suppressed(n.Pos(), "lockok"); ok {
							continue
						} else if bare != nil {
							pass.Reportf(bare.Pos, "//rrclint:lockok needs a reason")
							continue
						}
						pass.Reportf(n.Pos(), "acquiring %s while holding %s inverts the declared order (%s is //rrclint:lockafter %s)",
							obj.Name(), h.Name(), h.Name(), obj.Name())
					}
				}
				held[obj] = n.Pos()
			case "Unlock", "RUnlock":
				delete(held, obj)
			}
		}
		return true
	})
}

// lockCall resolves a call of the form x.Lock() / x.Unlock() (and RW/Try
// variants) to the mutex-valued object x and the method name.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	var obj types.Object
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	}
	if obj == nil {
		return nil, ""
	}
	return obj, sel.Sel.Name
}
