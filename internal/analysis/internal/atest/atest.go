// Package atest is the fixture harness for the rrclint analyzers. It runs
// each analyzer exactly the way CI and scripts/lint.sh do — a compiled
// cmd/rrclint binary driven by `go vet -vettool` over a self-contained
// fixture module under testdata/ — and checks the emitted diagnostics
// against `// want "substring"` expectations in the fixture sources. The
// x/tools analysistest package is deliberately not used: it depends on
// go/packages (a much larger vendoring surface), and driving the real vet
// protocol also proves the unitchecker wiring end to end.
//
// Expectation syntax, on the line the diagnostic is reported at:
//
//	for k, v := range m { // want "range over map"
//
// Multiple `// want "a" "b"` substrings on one line each need a matching
// diagnostic. A fixture line with no want comment must produce no
// diagnostic, and every want must be hit.
package atest

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

// Bin compiles cmd/rrclint once per test process and returns its path.
func Bin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "rrclint-atest-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "rrclint")
		cmd := exec.Command("go", "build", "-o", binPath, "repro/cmd/rrclint")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building rrclint: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// Run vets the fixture module at dir with only the named analyzer enabled
// (vet semantics: naming one analyzer flag disables the others) and
// compares diagnostics against the fixture's want comments. extraFlags are
// passed through to vet (e.g. "-detrange.scope=all").
func Run(t *testing.T, analyzer, dir string, extraFlags ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	args := append([]string{"vet", "-vettool=" + Bin(t), "-" + analyzer}, extraFlags...)
	args = append(args, "./...")
	cmd := exec.Command("go", args...)
	cmd.Dir = abs
	out, _ := cmd.CombinedOutput() // vet exits non-zero when it reports; that is expected

	got := parseDiagnostics(t, out)
	want := collectWants(t, abs)
	compare(t, got, want, out)
}

// diag is one reported diagnostic, keyed by base filename and line.
type diag struct {
	file    string // base name
	line    int
	message string
	matched bool
}

// wantExp is one expectation from a `// want "..."` comment.
type wantExp struct {
	file    string // base name
	line    int
	substr  string
	matched bool
}

var diagRe = regexp.MustCompile(`^(.*\.go):(\d+)(?::\d+)?: (.*)$`)

func parseDiagnostics(t *testing.T, out []byte) []*diag {
	t.Helper()
	var diags []*diag
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "exit status") {
			continue
		}
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			// Anything unparseable (compile errors, vettool protocol noise)
			// fails loudly: a broken fixture must not pass vacuously.
			t.Errorf("unparseable vet output line: %q", line)
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			t.Fatalf("bad line number in %q", line)
		}
		diags = append(diags, &diag{file: filepath.Base(m[1]), line: n, message: m[3]})
	}
	return diags
}

var wantRe = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var strRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, dir string) []*wantExp {
	t.Helper()
	var wants []*wantExp
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, s := range strRe.FindAllStringSubmatch(m[1], -1) {
				wants = append(wants, &wantExp{file: filepath.Base(path), line: i + 1, substr: s[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

func compare(t *testing.T, got []*diag, want []*wantExp, raw []byte) {
	t.Helper()
	for _, w := range want {
		for _, g := range got {
			if g.matched || g.file != w.file || g.line != w.line {
				continue
			}
			if strings.Contains(g.message, w.substr) {
				g.matched, w.matched = true, true
				break
			}
		}
	}
	failed := false
	for _, w := range want {
		if !w.matched {
			failed = true
			t.Errorf("missing diagnostic: %s:%d want message containing %q", w.file, w.line, w.substr)
		}
	}
	for _, g := range got {
		if !g.matched {
			failed = true
			t.Errorf("unexpected diagnostic: %s:%d: %s", g.file, g.line, g.message)
		}
	}
	if failed {
		t.Logf("full vet output:\n%s", raw)
	}
}
