package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

const src = `package p

type s struct {
	marked   int //rrclint:testseam
	after    int //rrclint:lockafter marked
	unmarked int
}

func f() {
	//rrclint:ordered map copy, order free
	_ = 1
	_ = 2 //rrclint:wallclock trailing reason
	//rrclint:ordered
	_ = 3
	_ = 4 //rrclint:seamok // want "still bare"
}
`

func parsePass(t *testing.T) (*analysis.Pass, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}}, f
}

// posOnLine returns some position on the given 1-based line.
func posOnLine(t *testing.T, fset *token.FileSet, f *ast.File, line int) token.Pos {
	t.Helper()
	tf := fset.File(f.Pos())
	if line > tf.LineCount() {
		t.Fatalf("line %d out of range", line)
	}
	return tf.LineStart(line)
}

func TestMarkerMatchesOnlyItsOwnLine(t *testing.T) {
	pass, f := parsePass(t)
	m := Parse(pass)

	markedLine := lineOf(t, "marked   int")
	afterLine := lineOf(t, "after    int")

	if _, ok := m.Marker(posOnLine(t, pass.Fset, f, markedLine), "testseam"); !ok {
		t.Error("testseam marker not found on its own line")
	}
	// The line BELOW a trailing marker must not inherit it: that is the
	// var-block bleed Marker exists to prevent.
	if _, ok := m.Marker(posOnLine(t, pass.Fset, f, markedLine+1), "testseam"); ok {
		t.Error("testseam marker bled onto the following declaration line")
	}
	if d, ok := m.Marker(posOnLine(t, pass.Fset, f, afterLine), "lockafter"); !ok || d.Arg != "marked" {
		t.Errorf("lockafter marker = %+v, %v; want Arg \"marked\"", d, ok)
	}
}

func TestSuppressedRequiresReason(t *testing.T) {
	pass, f := parsePass(t)
	m := Parse(pass)

	// Standalone suppression applies to the line below.
	if ok, bare := m.Suppressed(posOnLine(t, pass.Fset, f, lineOf(t, "_ = 1")), "ordered"); !ok || bare != nil {
		t.Errorf("reasoned standalone suppression: ok=%v bare=%v", ok, bare)
	}
	// Trailing suppression applies to its own line.
	if ok, _ := m.Suppressed(posOnLine(t, pass.Fset, f, lineOf(t, "_ = 2")), "wallclock"); !ok {
		t.Error("reasoned trailing suppression not honored")
	}
	// A bare suppression does not suppress and is surfaced for reporting.
	if ok, bare := m.Suppressed(posOnLine(t, pass.Fset, f, lineOf(t, "_ = 3")), "ordered"); ok || bare == nil {
		t.Errorf("bare suppression: ok=%v bare=%v; want false, non-nil", ok, bare)
	}
	// A `// want` suffix is fixture metadata, not a reason.
	if ok, bare := m.Suppressed(posOnLine(t, pass.Fset, f, lineOf(t, "_ = 4")), "seamok"); ok || bare == nil {
		t.Errorf("want-suffixed suppression: ok=%v bare=%v; want false, non-nil", ok, bare)
	}
	// Absent directive: neither suppressed nor bare.
	if ok, bare := m.Suppressed(posOnLine(t, pass.Fset, f, lineOf(t, "unmarked int")), "ordered"); ok || bare != nil {
		t.Errorf("absent directive: ok=%v bare=%v", ok, bare)
	}
}

// lineOf finds the 1-based line containing the (unique) needle in src.
func lineOf(t *testing.T, needle string) int {
	t.Helper()
	for i, l := range strings.Split(src, "\n") {
		if strings.Contains(l, needle) {
			return i + 1
		}
	}
	t.Fatalf("needle %q not in src", needle)
	return 0
}
