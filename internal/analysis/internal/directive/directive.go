// Package directive parses //rrclint: control comments out of the files an
// analysis pass covers and answers positional queries about them.
//
// A directive is a line comment of the form
//
//	//rrclint:<name> <argument...>
//
// attached either to the source line it annotates (a trailing comment) or to
// the line immediately above it. Two kinds exist by convention:
//
//   - markers (testseam, scratch, lockafter) declare a property of the
//     declaration they sit on; their argument is part of the declaration
//     (e.g. the mutex that must be acquired first) and may be empty.
//   - suppressions (ordered, wallclock, seamok, lockok, escapeok) waive one
//     diagnostic at one site and MUST carry a non-empty reason; analyzers
//     report a bare suppression as its own diagnostic so silent waivers
//     cannot accumulate.
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Prefix is the comment prefix shared by every rrclint control comment.
const Prefix = "//rrclint:"

// D is one parsed directive.
type D struct {
	Name string    // directive name, e.g. "ordered"
	Arg  string    // remainder of the comment line, space-trimmed
	Pos  token.Pos // position of the comment
}

// Map indexes every rrclint directive in a pass by file and line.
type Map struct {
	fset   *token.FileSet
	byFile map[*token.File]map[int][]D
}

// Parse scans all comments in the pass's files.
func Parse(pass *analysis.Pass) *Map {
	m := &Map{fset: pass.Fset, byFile: make(map[*token.File]map[int][]D)}
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseOne(c)
				if !ok {
					continue
				}
				lines := m.byFile[tf]
				if lines == nil {
					lines = make(map[int][]D)
					m.byFile[tf] = lines
				}
				line := tf.Line(c.Pos())
				lines[line] = append(lines[line], d)
			}
		}
	}
	return m
}

func parseOne(c *ast.Comment) (D, bool) {
	text := c.Text
	if !strings.HasPrefix(text, Prefix) {
		return D{}, false
	}
	rest := text[len(Prefix):]
	// A fixture can append a `// want "..."` expectation to the directive's
	// own comment (a line comment can't be followed by a second one); that
	// suffix is test metadata, not part of the argument.
	if i := strings.Index(rest, "// want"); i >= 0 {
		rest = rest[:i]
	}
	rest = strings.TrimRight(rest, " \t")
	name := rest
	arg := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, arg = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return D{}, false
	}
	return D{Name: name, Arg: arg, Pos: c.Pos()}, true
}

// Marker returns the directive with the given name on exactly the source
// line of pos. Markers (testseam, scratch, lockafter) must trail the
// declaration they annotate; matching the line above would let a marker on
// one var-block line bleed onto the declaration below it.
func (m *Map) Marker(pos token.Pos, name string) (D, bool) {
	tf := m.fset.File(pos)
	if tf == nil {
		return D{}, false
	}
	for _, d := range m.byFile[tf][tf.Line(pos)] {
		if d.Name == name {
			return d, true
		}
	}
	return D{}, false
}

// At returns the directive with the given name attached to the source line
// of pos: on the same line, or on the line directly above.
func (m *Map) At(pos token.Pos, name string) (D, bool) {
	tf := m.fset.File(pos)
	if tf == nil {
		return D{}, false
	}
	lines := m.byFile[tf]
	if lines == nil {
		return D{}, false
	}
	line := tf.Line(pos)
	for _, cand := range [2]int{line, line - 1} {
		for _, d := range lines[cand] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return D{}, false
}

// Suppressed reports whether a diagnostic at pos is waived by the named
// suppression directive. A suppression without a reason does not suppress;
// instead the analyzer should report it via the second return so the
// missing reason surfaces as its own finding.
func (m *Map) Suppressed(pos token.Pos, name string) (ok bool, bare *D) {
	d, found := m.At(pos, name)
	if !found {
		return false, nil
	}
	if d.Arg == "" {
		bare = &d
		return false, bare
	}
	return true, nil
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The determinism analyzers police shipped replay/encode paths only; tests
// are free to range maps, read clocks and poke seams.
func (m *Map) IsTestFile(pos token.Pos) bool {
	tf := m.fset.File(pos)
	return tf != nil && strings.HasSuffix(tf.Name(), "_test.go")
}
