// Package scope implements the import-path scoping shared by the
// path-restricted determinism analyzers (detrange, nowallclock). A scope is
// a comma-separated list of import-path substrings; a package is in scope
// when its path contains any of them. The special value "all" matches every
// package (used by fixtures and by one-off audits of the whole tree).
package scope

import "strings"

// All is the wildcard scope value.
const All = "all"

// Match reports whether pkgPath falls inside the comma-separated scope.
func Match(pkgPath, scopes string) bool {
	if pkgPath == "" {
		return false
	}
	for _, s := range strings.Split(scopes, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if s == All || strings.Contains(pkgPath, s) {
			return true
		}
	}
	return false
}
