package scope

import "testing"

func TestMatch(t *testing.T) {
	cases := []struct {
		pkg, scopes string
		want        bool
	}{
		{"repro/internal/spec", "internal/spec,internal/jobs", true},
		{"repro/internal/jobs", "internal/spec,internal/jobs", true},
		{"repro/internal/server", "internal/spec,internal/jobs", false},
		{"detfix/internal/spec", "internal/spec", true},
		{"anything/at/all", "all", true},
		{"anything/at/all", " internal/spec , all ", true},
		{"", "all", false},
		{"repro/internal/spec", "", false},
		{"repro/internal/spec", " , ,", false},
	}
	for _, c := range cases {
		if got := Match(c.pkg, c.scopes); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pkg, c.scopes, got, c.want)
		}
	}
}
