module seamfix

go 1.22
