// Package seam is a testseam fixture: marked seams may be read and plumbed
// by production code but only tests may set them.
package seam

type engine struct {
	forceGeneric bool //rrclint:testseam
	workers      int
}

type config struct {
	crash func(string) bool //rrclint:testseam
}

type system struct {
	crash func(string) bool //rrclint:testseam
}

// Flagged: production code activating a seam.
func EnableGeneric(e *engine) {
	e.forceGeneric = true // want "test-only seam forceGeneric"
}

// Flagged: a composite literal injecting a live seam value.
func Rigged() *system {
	return &system{crash: func(string) bool { return true }} // want "test-only seam crash"
}

// Accepted: seam-to-seam propagation — plumbing a config seam into the
// built system is how the seam reaches its consumer.
func Build(cfg config) *system {
	return &system{crash: cfg.crash}
}

// Accepted: reads are the seam's production-side consumers.
func Replay(e *engine) int {
	if e.forceGeneric {
		return 1
	}
	return e.workers
}

// Accepted: assigning unmarked fields is of course fine.
func Tune(e *engine) {
	e.workers = 4
}

// Accepted: an explicit suppression with a reason.
func MigrationShim(e *engine) {
	e.forceGeneric = true //rrclint:seamok temporary rollout toggle, tracked by issue 99
}

// Flagged: a bare suppression does not suppress.
func ShimBare(e *engine) {
	e.forceGeneric = true //rrclint:seamok // want "needs a reason"
}
