// Tests own the seams: assignments here are the whole point.
package seam

func forceBothPaths(e *engine) {
	e.forceGeneric = true
}

func withCrash(point string) *system {
	return &system{crash: func(p string) bool { return p == point }}
}
