// Package testseam keeps test-only seams out of production control flow.
//
// A seam is an unexported hook that exists purely so tests can steer
// internals — sim.Engine's forceGeneric fast-path override, the store's
// injectable crash func(point). Production behavior must never depend on a
// seam being set, so the seam's declaration is marked
//
//	forceGeneric bool //rrclint:testseam
//
// and this analyzer reports any non-test code that activates it: an
// assignment to the marked object, or a composite-literal element setting
// it. Plumbing a seam between marked declarations (crash: cfg.crash) is
// propagation, not activation, and stays legal — as do reads, which are the
// seam's production-side consumers. A deliberate exception needs
// //rrclint:seamok <reason>.
package testseam

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/internal/directive"
)

// Analyzer is the testseam pass.
var Analyzer = &analysis.Analyzer{
	Name: "testseam",
	Doc: "test-only seams (//rrclint:testseam) must never be set by non-test code\n\n" +
		"Assignments and composite-literal writes to marked objects are reported unless\n" +
		"the value is itself a marked seam (propagation) or carries //rrclint:seamok <reason>.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	dirs := directive.Parse(pass)
	marked := markedObjects(pass, dirs, "testseam")
	if len(marked) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		if dirs.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					obj := exprObject(pass, lhs)
					if obj == nil || !marked[obj] {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					report(pass, dirs, marked, n.Pos(), obj, rhs)
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.TypesInfo.Uses[key]
					if obj == nil || !marked[obj] {
						continue
					}
					report(pass, dirs, marked, kv.Pos(), obj, kv.Value)
				}
			}
			return true
		})
	}
	return nil, nil
}

func report(pass *analysis.Pass, dirs *directive.Map, marked map[types.Object]bool, pos token.Pos, obj types.Object, rhs ast.Expr) {
	if rhs != nil {
		if ro := exprObject(pass, rhs); ro != nil && marked[ro] {
			return // seam-to-seam propagation
		}
	}
	if ok, bare := dirs.Suppressed(pos, "seamok"); ok {
		return
	} else if bare != nil {
		pass.Reportf(bare.Pos, "//rrclint:seamok needs a reason")
		return
	}
	pass.Reportf(pos, "test-only seam %s set in non-test code; seams are reachable from tests only (or annotate //rrclint:seamok <reason>)", obj.Name())
}

// markedObjects collects every object whose declaration line carries the
// named marker directive: struct fields and package- or function-level vars.
func markedObjects(pass *analysis.Pass, dirs *directive.Map, marker string) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	note := func(id *ast.Ident) {
		if id == nil {
			return
		}
		if _, ok := dirs.Marker(id.Pos(), marker); !ok {
			return
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			marked[obj] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				for _, name := range n.Names {
					note(name)
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					note(name)
				}
			}
			return true
		})
	}
	return marked
}

func exprObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pass.TypesInfo.Uses[e]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
