package analysis_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestAllCoversAnalyzerPackages asserts the registry and the directory
// tree cannot drift: every analyzer subpackage of internal/analysis must
// be registered in All() under its package name, and every registered
// analyzer must have a package directory. Adding a sixth analyzer package
// without wiring it into All() (and thus into cmd/rrclint) fails here.
func TestAllCoversAnalyzerPackages(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && e.Name() != "internal" && e.Name() != "testdata" {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)

	var names []string
	for _, a := range analysis.All() {
		names = append(names, a.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("All() is not in stable name order: %v", names)
	}
	sort.Strings(names)

	if strings.Join(dirs, ",") != strings.Join(names, ",") {
		t.Fatalf("analyzer packages and All() drifted:\n  packages:   %v\n  registered: %v", dirs, names)
	}
}

// TestAnalyzersAreWellFormed runs the frameworks's own validation-relevant
// invariants: unique non-empty names, docs, and run functions.
func TestAnalyzersAreWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range analysis.All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing name, doc or run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestXToolsStaysOutOfProductionPackages walks every non-test Go file in
// the module outside the analyzer suite and cmd/rrclint and asserts none
// imports golang.org/x/tools: the repo's first dependency stays fenced
// inside the lint tooling, so production binaries remain stdlib-only.
func TestXToolsStaysOutOfProductionPackages(t *testing.T) {
	root := filepath.Join("..", "..")
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		rel = filepath.ToSlash(rel)
		if d.IsDir() {
			switch {
			case rel == "vendor", rel == ".git",
				rel == "internal/analysis", rel == "cmd/rrclint",
				strings.HasSuffix(rel, "/testdata"), rel == "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			if strings.HasPrefix(strings.Trim(imp.Path.Value, `"`), "golang.org/x/tools") {
				t.Errorf("%s imports %s: golang.org/x/tools must stay confined to internal/analysis and cmd/rrclint", rel, imp.Path.Value)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
