package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStreamMoments(t *testing.T) {
	var s Stream
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N != int64(len(xs)) {
		t.Fatalf("N=%d", s.N)
	}
	if !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("mean=%v", s.Mean)
	}
	if !almost(s.Variance(), 4, 1e-12) {
		t.Fatalf("variance=%v", s.Variance())
	}
	if !almost(s.Std(), 2, 1e-12) {
		t.Fatalf("std=%v", s.Std())
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min=%v max=%v", s.Min, s.Max)
	}
	if !almost(s.Sum(), 40, 1e-9) {
		t.Fatalf("sum=%v", s.Sum())
	}
}

func TestStreamMergeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 17
	}
	var serial Stream
	for _, x := range xs {
		serial.Add(x)
	}
	// Split into uneven shards, merge in order.
	var merged Stream
	for _, bounds := range [][2]int{{0, 137}, {137, 4000}, {4000, 4001}, {4001, 10_000}} {
		var shard Stream
		for _, x := range xs[bounds[0]:bounds[1]] {
			shard.Add(x)
		}
		merged.Merge(shard)
	}
	if merged.N != serial.N || merged.Min != serial.Min || merged.Max != serial.Max {
		t.Fatalf("counts/extrema differ: %+v vs %+v", merged, serial)
	}
	if !almost(merged.Mean, serial.Mean, 1e-9) {
		t.Fatalf("mean %v vs %v", merged.Mean, serial.Mean)
	}
	if !almost(merged.Variance(), serial.Variance(), 1e-6) {
		t.Fatalf("variance %v vs %v", merged.Variance(), serial.Variance())
	}
}

func TestStreamMergeEmptySides(t *testing.T) {
	var a, b Stream
	b.Add(3)
	b.Add(5)
	a.Merge(b) // empty <- full adopts
	if a.N != 2 || a.Mean != 4 {
		t.Fatalf("adopt failed: %+v", a)
	}
	before := a
	a.Merge(Stream{}) // full <- empty is a no-op
	if a != before {
		t.Fatalf("no-op merge changed stream: %+v", a)
	}
}

func TestStreamAddDuration(t *testing.T) {
	var s Stream
	s.AddDuration(1500 * time.Millisecond)
	s.AddDuration(500 * time.Millisecond)
	if !almost(s.Mean, 1.0, 1e-12) {
		t.Fatalf("mean=%v", s.Mean)
	}
}

func TestHistogramBinningAndQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9 uniformly
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Fatalf("bin %d count %d, want 10", i, c)
		}
	}
	if q := h.Quantile(0.5); !almost(q, 5, 1e-9) {
		t.Fatalf("median=%v", q)
	}
	if q := h.Quantile(1); !almost(q, 10, 1e-9) {
		t.Fatalf("q100=%v", q)
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Count() != 2 {
		t.Fatalf("edge clamping failed: %v", h.Counts)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	for i := 0; i < 50; i++ {
		a.Add(float64(i % 10))
		b.Add(float64(i % 10))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 100 {
		t.Fatalf("merged count=%d", a.Count())
	}
	bad := NewHistogram(0, 20, 5)
	bad.Add(1)
	if err := a.Merge(bad); err == nil {
		t.Fatal("layout mismatch not detected")
	}
	// Merging an empty mismatched histogram is a harmless no-op.
	if err := a.Merge(NewHistogram(0, 20, 5)); err != nil {
		t.Fatalf("empty merge: %v", err)
	}
}
