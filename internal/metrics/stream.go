// Mergeable streaming aggregates for fleet-scale simulation. A shard folds
// every per-user result into a handful of Streams and Histograms as it goes,
// so aggregating a million-user cohort needs O(shards) memory instead of
// O(users); shard partials then Merge pairwise into the fleet total.
//
// Merging is exact for counts and bins and uses the parallel-variance
// formula of Chan, Golub & LeVeque for the moments, so a merged Stream
// reports the same mean/variance (up to float rounding of a fixed merge
// order) as a single Stream fed every sample.

package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Stream accumulates count, mean and variance of a sample stream in O(1)
// space (Welford update), plus min/max and sum. The zero value is an empty
// stream, ready to use. Streams merge with Merge.
type Stream struct {
	N    int64
	Mean float64
	// M2 is the sum of squared deviations from the mean (Welford's
	// aggregate); Variance derives from it.
	M2       float64
	Min, Max float64
}

// Add folds one sample into the stream.
func (s *Stream) Add(x float64) {
	s.N++
	if s.N == 1 {
		s.Mean, s.M2 = x, 0
		s.Min, s.Max = x, x
		return
	}
	d := x - s.Mean
	s.Mean += d / float64(s.N)
	s.M2 += d * (x - s.Mean)
	if x < s.Min {
		s.Min = x
	}
	if x > s.Max {
		s.Max = x
	}
}

// AddDuration folds a duration sample, in seconds.
func (s *Stream) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Merge folds another stream into s using the Chan et al. parallel update.
// Either side may be empty.
func (s *Stream) Merge(o Stream) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	n := float64(s.N + o.N)
	d := o.Mean - s.Mean
	s.M2 += o.M2 + d*d*float64(s.N)*float64(o.N)/n
	s.Mean += d * float64(o.N) / n
	s.N += o.N
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Sum returns the sample total.
func (s Stream) Sum() float64 { return s.Mean * float64(s.N) }

// Variance returns the population variance (0 for fewer than 2 samples).
func (s Stream) Variance() float64 {
	if s.N < 2 {
		return 0
	}
	return s.M2 / float64(s.N)
}

// Std returns the population standard deviation.
func (s Stream) Std() float64 { return math.Sqrt(s.Variance()) }

// String renders the stream compactly for reports.
func (s Stream) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g max=%.3g",
		s.N, s.Mean, s.Std(), s.Min, s.Max)
}

// Histogram is a mergeable fixed-bin histogram over [Lo, Hi). Samples below
// Lo land in the first bin, samples at or above Hi in the last, so no sample
// is dropped and merged totals stay exact. Two histograms merge only if
// their layouts match.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram builds a histogram of n bins over [lo, hi). n < 1 is clamped
// to 1; hi <= lo is widened to lo+1 so the layout is always valid.
func NewHistogram(lo, hi float64, n int) *Histogram {
	h := new(Histogram)
	h.Init(lo, hi, n)
	return h
}

// Init (re)initializes h in place with n bins over [lo, hi), applying the
// same clamping as NewHistogram. It lets aggregates embed histograms by
// value instead of holding three separately allocated ones.
func (h *Histogram) Init(lo, hi float64, n int) {
	if n < 1 {
		n = 1
	}
	h.InitCounts(lo, hi, make([]int64, n))
}

// InitCounts is Init with caller-provided bin storage: counts (non-empty,
// all zero; its length is the bin count) becomes the histogram's Counts,
// so aggregates holding several histograms can carve them from one slab.
func (h *Histogram) InitCounts(lo, hi float64, counts []int64) {
	if hi <= lo {
		hi = lo + 1
	}
	*h = Histogram{Lo: lo, Hi: hi, Counts: counts}
}

// RestoreCounts overwrites the histogram's bin counts in place — the
// deserialization path of a persisted histogram. The layout (Lo, Hi, bin
// count) is unchanged and must match len(counts); the sample total is
// recomputed as the counts' sum, which is exact because every Add and
// Merge keeps total equal to that sum.
func (h *Histogram) RestoreCounts(counts []int64) error {
	if len(counts) != len(h.Counts) {
		return fmt.Errorf("metrics: restoring %d bins into a %d-bin histogram", len(counts), len(h.Counts))
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("metrics: negative bin count %d at bin %d", c, i)
		}
		h.Counts[i] = c
		total += c
	}
	h.total = total
	return nil
}

// bin returns the bin index for a sample, clamped to the edge bins.
func (h *Histogram) bin(x float64) int {
	if x < h.Lo {
		return 0
	}
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// Add folds one sample into the histogram.
func (h *Histogram) Add(x float64) {
	h.Counts[h.bin(x)]++
	h.total++
}

// Count returns the number of samples added.
func (h *Histogram) Count() int64 { return h.total }

// Zero clears every bin and the sample count in place, keeping the bin
// layout and backing storage — the reset half of reusing a histogram as
// scratch across merges.
func (h *Histogram) Zero() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.total = 0
}

// Merge folds another histogram into h. It returns an error when the bin
// layouts differ (merging those would silently misbin samples).
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("metrics: histogram layout mismatch: [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
	return nil
}

// Quantile returns the q-th (0..1) quantile estimated from the bin counts:
// the upper edge of the bin where the cumulative count crosses q. An empty
// histogram returns Lo.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return h.Lo
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			return h.Lo + float64(i+1)*width
		}
	}
	return h.Hi
}

// String renders a sparkline-style summary: one row per non-empty bin.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "(empty histogram)"
	}
	var sb strings.Builder
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	var peak int64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+int(29*c/peak))
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %7d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	return sb.String()
}
