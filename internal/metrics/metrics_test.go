package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/sim"
)

func res(totalJ float64, promotions int) *sim.Result {
	return &sim.Result{
		Breakdown:  energy.Breakdown{DataJ: totalJ},
		Promotions: promotions,
	}
}

func TestSavingsPercent(t *testing.T) {
	if got := SavingsPercent(res(100, 1), res(40, 1)); math.Abs(got-60) > 1e-9 {
		t.Fatalf("savings = %v, want 60", got)
	}
	if got := SavingsPercent(res(100, 1), res(120, 1)); math.Abs(got+20) > 1e-9 {
		t.Fatalf("negative savings = %v, want -20", got)
	}
	if got := SavingsPercent(res(0, 1), res(10, 1)); got != 0 {
		t.Fatalf("zero baseline savings = %v", got)
	}
}

func TestSwitchRatio(t *testing.T) {
	if got := SwitchRatio(res(1, 10), res(1, 35)); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("ratio = %v", got)
	}
	if got := SwitchRatio(res(1, 0), res(1, 5)); got != 0 {
		t.Fatalf("zero-baseline ratio = %v", got)
	}
}

func TestEnergySavedPerSwitch(t *testing.T) {
	if got := EnergySavedPerSwitchJ(res(100, 10), res(40, 20)); math.Abs(got-3) > 1e-9 {
		t.Fatalf("J/switch = %v, want 3", got)
	}
	if got := EnergySavedPerSwitchJ(res(100, 10), res(40, 0)); got != 0 {
		t.Fatalf("zero-switch J/switch = %v", got)
	}
}

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func TestScore(t *testing.T) {
	th := sec(2)
	decisions := []sim.GapDecision{
		{Gap: sec(5), Demoted: true},  // TP
		{Gap: sec(1), Demoted: true},  // FP
		{Gap: sec(5), Demoted: false}, // FN (missed)
		{Gap: sec(1), Demoted: false}, // TN
		{Gap: sec(3), Demoted: true},  // TP
	}
	c := Score(decisions, th)
	if c.TruePositives != 2 || c.FalsePositives != 1 || c.MissedSwitches != 1 || c.TrueNegatives != 1 {
		t.Fatalf("confusion: %+v", c)
	}
	if got := c.FalsePositiveRate(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("FPR = %v, want 50", got)
	}
	if got := c.FalseNegativeRate(); math.Abs(got-100.0/3) > 1e-9 {
		t.Fatalf("FNR = %v, want 33.3", got)
	}
}

func TestConfusionEmptyRates(t *testing.T) {
	var c Confusion
	if c.FalsePositiveRate() != 0 || c.FalseNegativeRate() != 0 {
		t.Fatal("empty confusion rates should be 0")
	}
}

func TestDelays(t *testing.T) {
	s := Delays([]time.Duration{sec(4), sec(1), sec(3), sec(2)})
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Mean != sec(2.5) {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != sec(3) { // upper median of even-length sample
		t.Fatalf("median = %v", s.Median)
	}
	if s.Max != sec(4) {
		t.Fatalf("max = %v", s.Max)
	}
	if got := Delays(nil); got != (DelayStats{}) {
		t.Fatalf("empty delays = %+v", got)
	}
}

func TestDelaysDoesNotMutateInput(t *testing.T) {
	in := []time.Duration{sec(3), sec(1)}
	Delays(in)
	if in[0] != sec(3) {
		t.Fatal("Delays sorted the caller's slice")
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("err = %v", got)
	}
	if got := RelativeError(90, 100); math.Abs(got+0.1) > 1e-12 {
		t.Fatalf("err = %v", got)
	}
	if got := RelativeError(5, 0); got != 0 {
		t.Fatalf("zero-truth err = %v", got)
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-0.1, 0.3}); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("MeanAbs = %v", got)
	}
	if MeanAbs(nil) != 0 {
		t.Fatal("empty MeanAbs should be 0")
	}
}

func TestBatteryEnergy(t *testing.T) {
	// 1500 mAh at 3.7 V = 1.5 * 3.7 * 3600 J = 19980 J.
	if got := NexusS.EnergyJ(); math.Abs(got-19980) > 1e-9 {
		t.Fatalf("NexusS energy = %v J", got)
	}
}

func TestBatteryLifetime(t *testing.T) {
	b := Battery{CapacitymAh: 1000, Voltage: 3.6}
	// 3.6 Wh at 1 W = 3.6 h.
	want := time.Duration(3.6 * float64(time.Hour))
	got := b.Lifetime(1000)
	if d := got - want; d > time.Second || d < -time.Second {
		t.Fatalf("Lifetime = %v, want %v", got, want)
	}
	if b.Lifetime(0) != 0 || b.Lifetime(-5) != 0 {
		t.Fatal("non-positive draw should return 0")
	}
}

func TestLifetimeGainMatchesPaperBallpark(t *testing.T) {
	// The paper speculates: if the 3G radio accounts for the 2G->3G talk
	// time drop (14 h -> ~6.7 h on the Nexus S), saving 66% of radio
	// energy buys back several hours. Model: at a total draw giving ~6.7 h
	// with the radio ~52% of it, a 66% radio saving should add hours.
	totalMW := NexusS.EnergyJ() / (6.7 * 3600) * 1000 // draw for 6.7 h life
	gain := NexusS.LifetimeGain(totalMW, 0.52, 66)
	if gain < 2*time.Hour || gain > 8*time.Hour {
		t.Fatalf("lifetime gain = %v, want single-digit hours", gain)
	}
	// More savings, more gain.
	if NexusS.LifetimeGain(totalMW, 0.52, 75) <= gain {
		t.Fatal("gain not monotone in savings")
	}
	if NexusS.LifetimeGain(0, 0.5, 50) != 0 {
		t.Fatal("degenerate total draw should return 0")
	}
	if NexusS.LifetimeGain(1000, 1.5, 50) != 0 {
		t.Fatal("out-of-range radio share should return 0")
	}
}
