package metrics

import (
	"math"
	"sort"
	"time"

	"repro/internal/policy"
	"repro/internal/sim"
)

// SavingsPercent returns the energy saved by a policy run relative to a
// status-quo run, in percent (negative when the policy uses more energy).
// A zero-energy baseline yields 0.
func SavingsPercent(statusQuo, candidate *sim.Result) float64 {
	base := statusQuo.TotalJ()
	if base == 0 {
		return 0
	}
	return 100 * (base - candidate.TotalJ()) / base
}

// SwitchRatio returns the candidate's Idle->Active switch count divided by
// the status quo's (Figs. 10b, 11b, 18). A zero baseline yields 0.
func SwitchRatio(statusQuo, candidate *sim.Result) float64 {
	if statusQuo.Promotions == 0 {
		return 0
	}
	return float64(candidate.Promotions) / float64(statusQuo.Promotions)
}

// EnergySavedPerSwitchJ returns joules saved per state switch performed
// (Figs. 10c, 11c): total savings divided by the candidate's promotions.
func EnergySavedPerSwitchJ(statusQuo, candidate *sim.Result) float64 {
	if candidate.Promotions == 0 {
		return 0
	}
	saved := statusQuo.TotalJ() - candidate.TotalJ()
	return saved / float64(candidate.Promotions)
}

// Confusion holds the false/missed switch rates of §6.3.
type Confusion struct {
	// FalsePositives counts gaps where the policy demoted but the Oracle
	// would not have; TrueNegatives where both kept the radio up.
	FalsePositives, TrueNegatives int
	// MissedSwitches counts gaps where the policy kept the radio up but
	// the Oracle would have demoted; TruePositives where both demoted.
	MissedSwitches, TruePositives int
}

// FalsePositiveRate is NFS / (NFS + NTN), in percent.
func (c Confusion) FalsePositiveRate() float64 {
	d := c.FalsePositives + c.TrueNegatives
	if d == 0 {
		return 0
	}
	return 100 * float64(c.FalsePositives) / float64(d)
}

// FalseNegativeRate is NMS / (NMS + NTP), in percent.
func (c Confusion) FalseNegativeRate() float64 {
	d := c.MissedSwitches + c.TruePositives
	if d == 0 {
		return 0
	}
	return 100 * float64(c.MissedSwitches) / float64(d)
}

// Score compares a policy's per-gap decisions against the Oracle ground
// truth: the Oracle demotes exactly when the gap exceeds threshold.
func Score(decisions []sim.GapDecision, threshold time.Duration) Confusion {
	var c Confusion
	for _, d := range decisions {
		oracle := policy.OracleDemotes(d.Gap, threshold)
		switch {
		case d.Demoted && oracle:
			c.TruePositives++
		case d.Demoted && !oracle:
			c.FalsePositives++
		case !d.Demoted && oracle:
			c.MissedSwitches++
		default:
			c.TrueNegatives++
		}
	}
	return c
}

// DelayStats summarises session batching delays (Fig. 15, Table 3).
type DelayStats struct {
	Count  int
	Mean   time.Duration
	Median time.Duration
	Max    time.Duration
}

// Delays computes statistics over a delay sample. An empty sample returns
// the zero value.
func Delays(sample []time.Duration) DelayStats {
	if len(sample) == 0 {
		return DelayStats{}
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return DelayStats{
		Count:  len(sorted),
		Mean:   sum / time.Duration(len(sorted)),
		Median: sorted[len(sorted)/2],
		Max:    sorted[len(sorted)-1],
	}
}

// RelativeError returns (estimate - truth) / truth; 0 when truth is 0.
// Fig. 8 plots this for the energy model validation.
func RelativeError(estimate, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	return (estimate - truth) / truth
}

// MeanAbs returns the mean of absolute values (used to summarise Fig. 8's
// error distribution).
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

// Battery describes a device battery for lifetime estimates.
type Battery struct {
	// CapacitymAh is the rated capacity in milliamp-hours.
	CapacitymAh float64
	// Voltage is the nominal cell voltage.
	Voltage float64
}

// NexusS is the battery of the paper's conclusion arithmetic (1500 mAh,
// 3.7 V Li-ion).
var NexusS = Battery{CapacitymAh: 1500, Voltage: 3.7}

// EnergyJ returns the battery's total energy in joules.
func (b Battery) EnergyJ() float64 {
	return b.CapacitymAh / 1000 * b.Voltage * 3600
}

// Lifetime returns how long the battery lasts at a constant average power
// draw in milliwatts. Non-positive draw returns 0.
func (b Battery) Lifetime(avgMW float64) time.Duration {
	if avgMW <= 0 {
		return 0
	}
	secs := b.EnergyJ() / (avgMW / 1000)
	return time.Duration(secs * float64(time.Second))
}

// LifetimeGain estimates the battery-lifetime extension from saving a
// fraction of the radio's share of a constant total draw — the paper's
// concluding estimate ("saving 66% ... might correspond to ... about 4.8
// hours"). radioShare is the fraction of total power the radio accounts
// for; savingsPct is the percentage of radio energy saved.
func (b Battery) LifetimeGain(totalMW, radioShare, savingsPct float64) time.Duration {
	if totalMW <= 0 || radioShare < 0 || radioShare > 1 {
		return 0
	}
	before := b.Lifetime(totalMW)
	after := b.Lifetime(totalMW * (1 - radioShare*savingsPct/100))
	return after - before
}
